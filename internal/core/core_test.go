package core

import (
	"context"
	"fmt"
	"sync"
	"testing"
	"time"

	"neurospatial/internal/circuit"
	"neurospatial/internal/engine"
	"neurospatial/internal/geom"
)

func tinyModel(t testing.TB, neurons int) *Model {
	t.Helper()
	p := circuit.DefaultParams()
	p.Neurons = neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(250, 250, 250))
	m, err := BuildModel(p, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	return m
}

func TestBuildModelValidation(t *testing.T) {
	p := circuit.DefaultParams()
	p.Neurons = 0
	if _, err := BuildModel(p, DefaultOptions()); err == nil {
		t.Error("zero-neuron model accepted")
	}
}

func TestRangeQueryExact(t *testing.T) {
	m := tinyModel(t, 8)
	q := geom.BoxAround(geom.V(125, 125, 125), 40)
	ids, _ := m.RangeQuery(q)
	if len(ids) == 0 {
		t.Fatal("central query found nothing")
	}
	// Sorted, unique, and exactly the oracle set (capsule-exact).
	want := m.Circuit.ElementsIn(q)
	if len(ids) != len(want) {
		t.Fatalf("got %d, oracle %d", len(ids), len(want))
	}
	for i := range ids {
		if ids[i] != want[i] {
			t.Fatalf("result %d: got %d want %d", i, ids[i], want[i])
		}
	}
}

func TestCompareRangeQuery(t *testing.T) {
	m := tinyModel(t, 10)
	q := geom.BoxAround(geom.V(125, 125, 125), 35)
	cmp := m.CompareRangeQuery(q)
	if cmp.Results == 0 {
		t.Fatal("no results")
	}
	if cmp.FlatStats.Results != int64(cmp.Results) || cmp.RTreeStats.Results != int64(cmp.Results) {
		t.Error("stats result counts inconsistent")
	}
	if cmp.FlatTime <= 0 || cmp.RTreeTime <= 0 {
		t.Error("times not measured")
	}
	// The comparison is meaningful only if both did real work.
	if cmp.FlatStats.TotalReads() == 0 || cmp.RTreeStats.TotalReads() == 0 {
		t.Error("no I/O recorded")
	}
}

func TestAnalyzeRegion(t *testing.T) {
	m := tinyModel(t, 8)
	region := geom.BoxAround(geom.V(125, 125, 125), 50)
	st := m.AnalyzeRegion(region)
	if st.Elements == 0 || st.Neurons == 0 {
		t.Fatal("empty analysis of a central region")
	}
	if st.Neurons > 8 {
		t.Errorf("more neurons than the circuit has: %d", st.Neurons)
	}
	if st.TotalLength <= 0 || st.MeanRadius <= 0 {
		t.Error("degenerate geometry stats")
	}
	wantDensity := float64(st.Elements) / region.Volume()
	if st.Density != wantDensity {
		t.Errorf("density = %v, want %v", st.Density, wantDensity)
	}
	// Empty region.
	empty := m.AnalyzeRegion(geom.BoxAround(geom.V(1e6, 0, 0), 1))
	if empty.Elements != 0 || empty.MeanRadius != 0 {
		t.Error("far region not empty")
	}
}

func TestPrefetcherRegistry(t *testing.T) {
	m := tinyModel(t, 6)
	names := []string{"none", "hilbert", "extrapolation", "scout"}
	got := m.Prefetchers()
	if len(got) != len(names) {
		t.Fatalf("prefetchers = %d", len(got))
	}
	for i, p := range got {
		if p.Name() != names[i] {
			t.Errorf("prefetcher %d = %q, want %q", i, p.Name(), names[i])
		}
		byName, err := m.PrefetcherByName(names[i])
		if err != nil || byName.Name() != names[i] {
			t.Errorf("PrefetcherByName(%q): %v", names[i], err)
		}
	}
	if _, err := m.PrefetcherByName("markov"); err == nil {
		t.Error("unknown prefetcher accepted")
	}
}

func TestJoinRegistry(t *testing.T) {
	m := tinyModel(t, 6)
	names := []string{"NestedLoop", "SweepLine", "PBSM", "S3", "TOUCH"}
	got := m.JoinAlgorithms()
	if len(got) != len(names) {
		t.Fatalf("algorithms = %d", len(got))
	}
	for i, a := range got {
		if a.Name() != names[i] {
			t.Errorf("algorithm %d = %q, want %q", i, a.Name(), names[i])
		}
	}
	if _, err := m.JoinByName("TOUCH"); err != nil {
		t.Error(err)
	}
	if _, err := m.JoinByName("hashjoin"); err == nil {
		t.Error("unknown join accepted")
	}
}

func TestExplore(t *testing.T) {
	m := tinyModel(t, 8)
	neuron, branch, _ := m.Circuit.LongestPath()
	cfg := ExploreConfig{ThinkTime: 200 * time.Millisecond}
	sc, err := m.PrefetcherByName("scout")
	if err != nil {
		t.Fatal(err)
	}
	run, err := m.Explore(neuron, branch, sc, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(run.Steps) < 5 {
		t.Fatalf("walkthrough too short: %d steps", len(run.Steps))
	}
	if run.Elements == 0 {
		t.Error("walkthrough retrieved nothing")
	}
	// Bad branch.
	if _, err := m.Explore(neuron, 1<<30, sc, cfg); err == nil {
		t.Error("invalid branch accepted")
	}
}

func TestSynapseInputsPartition(t *testing.T) {
	m := tinyModel(t, 8)
	axons, dendrites := m.SynapseInputs(m.Circuit.Bounds)
	if len(axons) == 0 || len(dendrites) == 0 {
		t.Fatal("empty join operands")
	}
	// No element appears in both sets; somas in neither.
	seen := make(map[int32]byte)
	for _, o := range axons {
		seen[o.ID] |= 1
	}
	for _, o := range dendrites {
		seen[o.ID] |= 2
	}
	for id, mask := range seen {
		if mask == 3 {
			t.Fatalf("element %d in both operands", id)
		}
		if m.Circuit.Elements[id].Branch < 0 {
			t.Fatalf("soma %d in join input", id)
		}
	}
	// Restricting the region shrinks the inputs.
	smallA, smallD := m.SynapseInputs(geom.BoxAround(geom.V(125, 125, 125), 30))
	if len(smallA) >= len(axons) || len(smallD) >= len(dendrites) {
		t.Error("region restriction did not shrink operands")
	}
}

func TestFindSynapsesConsistentAcrossAlgorithms(t *testing.T) {
	m := tinyModel(t, 8)
	region := geom.BoxAround(geom.V(125, 125, 125), 60)
	eps := 2.0
	var baseline []Synapse
	for i, alg := range m.JoinAlgorithms() {
		syn, st := m.FindSynapses(region, eps, alg)
		if st.Results < int64(len(syn)) {
			t.Fatalf("%s: fewer raw results than synapses", alg.Name())
		}
		if i == 0 {
			baseline = syn
			continue
		}
		if len(syn) != len(baseline) {
			t.Fatalf("%s found %d synapses, baseline %d", alg.Name(), len(syn), len(baseline))
		}
		for k := range syn {
			if syn[k].Axon != baseline[k].Axon || syn[k].Dendrite != baseline[k].Dendrite {
				t.Fatalf("%s synapse %d differs from baseline", alg.Name(), k)
			}
		}
	}
	if len(baseline) == 0 {
		t.Log("warning: no synapses in test region (workload may be too sparse)")
	}
	// Synapses never connect a neuron to itself.
	for _, s := range baseline {
		if m.Circuit.Elements[s.Axon].Neuron == m.Circuit.Elements[s.Dendrite].Neuron {
			t.Fatal("self-synapse emitted")
		}
	}
}

func TestSegmentAccessor(t *testing.T) {
	m := tinyModel(t, 6)
	for _, id := range []int32{0, int32(len(m.Circuit.Elements) - 1)} {
		if m.Segment(id) != m.Circuit.Elements[id].Shape {
			t.Errorf("Segment(%d) mismatch", id)
		}
	}
}

// TestModelMutateAndSessions: the model's Dataset applies batched mutations,
// the default session re-pins to the new epoch, and an explicitly opened
// session stays frozen on its own.
func TestModelMutateAndSessions(t *testing.T) {
	m := tinyModel(t, 6)
	ctx := context.Background()
	center := m.Circuit.Params.Volume.Center()
	req := engine.WithinDistanceRequest(center, 30)

	pinned, err := m.OpenSession()
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()
	before, err := pinned.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}

	var newID int32
	snap, err := m.Mutate(func(tx *engine.Tx) error {
		newID = tx.Insert(geom.BoxAround(center, 1))
		tx.Delete(0)
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if snap.Epoch() != 1 {
		t.Fatalf("epoch = %d, want 1", snap.Epoch())
	}
	if m.Session().Snapshot().Epoch() != 1 {
		t.Fatal("default session not re-pinned")
	}

	// The default session sees the insert; the pinned one does not.
	after, err := m.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	found := false
	for _, h := range after.Hits {
		if h.ID == newID {
			found = true
		}
	}
	if !found {
		t.Fatal("mutated session missed the inserted item")
	}
	still, err := pinned.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(still.Hits) != len(before.Hits) {
		t.Fatalf("pinned session drifted: %d hits, had %d", len(still.Hits), len(before.Hits))
	}
	for i := range still.Hits {
		if still.Hits[i] != before.Hits[i] {
			t.Fatal("pinned session hit stream drifted")
		}
	}

	// A failed apply rolls back without publishing an epoch.
	if _, err := m.Mutate(func(tx *engine.Tx) error {
		tx.Delete(1)
		return fmt.Errorf("change of heart")
	}); err == nil {
		t.Fatal("failing apply committed")
	}
	if got := m.Dataset.Stats().Epoch; got != 1 {
		t.Fatalf("rolled-back mutate advanced the epoch to %d", got)
	}

	// Compact folds the overlay; the front door still answers identically.
	preCompact, err := m.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := m.Compact(); err != nil {
		t.Fatal(err)
	}
	postCompact, err := m.Do(ctx, req)
	if err != nil {
		t.Fatal(err)
	}
	if len(postCompact.Hits) != len(preCompact.Hits) {
		t.Fatalf("compaction changed results: %d vs %d", len(postCompact.Hits), len(preCompact.Hits))
	}
	for i := range postCompact.Hits {
		if postCompact.Hits[i] != preCompact.Hits[i] {
			t.Fatal("compaction changed the hit stream")
		}
	}
	if st := m.Dataset.Stats(); st.DeltaEntries != 0 || st.Tombstones != 0 {
		t.Fatalf("compaction left overlay: %+v", st)
	}
}

// TestModelMutateConcurrentWithQueries: Mutate re-pins the default session
// while queries are in flight — the pointer swap is synchronized and a query
// that already fetched the old session keeps working (immutable snapshot).
func TestModelMutateConcurrentWithQueries(t *testing.T) {
	m := tinyModel(t, 6)
	ctx := context.Background()
	center := m.Circuit.Params.Volume.Center()
	var wg sync.WaitGroup
	stop := make(chan struct{})

	wg.Add(1)
	go func() { // mutator
		defer wg.Done()
		defer close(stop)
		for i := 0; i < 20; i++ {
			if _, err := m.Mutate(func(tx *engine.Tx) error {
				tx.Insert(geom.BoxAround(center, 1))
				return nil
			}); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	for r := 0; r < 3; r++ {
		wg.Add(1)
		go func() { // readers through the default session
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				if _, err := m.Do(ctx, engine.WithinDistanceRequest(center, 20)); err != nil {
					t.Error(err)
					return
				}
			}
		}()
	}
	wg.Wait()
	if got := m.Dataset.Stats().Epoch; got != 20 {
		t.Fatalf("epoch = %d, want 20", got)
	}
}
