// Package core is the integrated face of this repository: the programmatic
// equivalent of the demonstration tool the paper presents. One Model bundles
// a tissue circuit with the three spatial data-management techniques the demo
// showcases, exposing the workflows of the paper's three sections:
//
//   - §2  RangeQuery / CompareRangeQuery — efficient spatial querying with
//     FLAT, side by side with the R-tree baseline and its per-level
//     statistics;
//   - §3  Explore — walkthrough query sequences with pluggable prefetchers
//     (none, Hilbert, extrapolation, SCOUT);
//   - §4  FindSynapses — distance-join synapse discovery with pluggable join
//     algorithms (nested loop, sweep, PBSM, S3, TOUCH).
//
// The example programs under examples/ and the experiment drivers under cmd/
// are all thin wrappers over this package.
package core

import (
	"context"
	"fmt"
	"sort"
	"sync"
	"time"

	"neurospatial/internal/circuit"
	"neurospatial/internal/engine"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/join"
	"neurospatial/internal/morphology"
	"neurospatial/internal/pager"
	"neurospatial/internal/prefetch"
	"neurospatial/internal/query"
	"neurospatial/internal/rtree"
	"neurospatial/internal/scout"
	"neurospatial/internal/touch"
)

// Options configures model construction.
type Options struct {
	// Flat configures the FLAT index.
	Flat flat.Options
	// RTreeFanout is the node capacity of the element-level comparison
	// R-tree. Values <= 0 select the FLAT page size, making one leaf
	// correspond to one page so I/O counts are comparable.
	RTreeFanout int
	// Shards is the spatial shard count of the sharded scatter-gather
	// contender. Values <= 0 select 4.
	Shards int
	// DatasetCompactMin and DatasetCompactRatio tune the model dataset's
	// auto-compaction trigger (see engine.DatasetOptions); zero values keep
	// the engine defaults.
	DatasetCompactMin   int
	DatasetCompactRatio float64
}

// DefaultOptions returns the configuration used by the experiments.
func DefaultOptions() Options {
	return Options{Flat: flat.DefaultOptions()}
}

// Model is a built tissue model with its indexes.
type Model struct {
	// Circuit is the underlying tissue data.
	Circuit *circuit.Circuit
	// Flat is the FLAT index over the circuit's elements.
	Flat *flat.Index
	// RTree is the element-level R-tree baseline, with fanout equal to the
	// FLAT page size so node reads and page reads are comparable.
	RTree *rtree.Tree
	// Engine is the unified query layer over the circuit as built: the FLAT,
	// R-tree, grid and sharded contenders behind one engine.SpatialIndex
	// interface, with the stats-driven planner routing batches between them.
	// The walkthrough/prefetch harnesses and the legacy experiment tables
	// query through it; it serves the initial build (epoch 0) and is not
	// affected by Mutate — mutable reads go through Session/Do/DoBatch.
	Engine *engine.Planner
	// Dataset is the model's mutable ownership layer: the same four
	// contenders as epoch-0 bases of an engine.Dataset, so batched mutations
	// (Mutate) publish new snapshot epochs and sessions pin consistent
	// views. Compaction rebuilds fresh contender instances; Engine, Flat and
	// RTree above keep serving the initial build.
	Dataset *engine.Dataset
	// session is the model's query front door: a Session pinned to the
	// Dataset's latest snapshot, re-pinned (under sessMu) after every
	// Mutate/Compact.
	sessMu  sync.RWMutex //neurospatial:lock core.session
	session *engine.Session
	opts    Options
}

// Session returns the model's query front door: an engine.Session pinned to
// the Dataset's latest committed snapshot, planner-routed over all four
// contender views. All request kinds (range, kNN, point stabbing,
// within-distance) execute through it with context cancellation; per-kind
// routing sharpens as the session observes executed costs. The session is
// replaced (re-pinned) by Mutate and Compact; use OpenSession for a view
// that must stay frozen while the model mutates.
//
// Session, Do, DoBatch, Mutate and Compact are safe for concurrent use: a
// query holds the session it started with (pinned snapshots are immutable,
// so a concurrently landing commit cannot disturb it). Note the pin
// accounting is released when Mutate swaps the default session out, so
// Dataset.Stats().Pinned is advisory for in-flight default-session queries.
func (m *Model) Session() *engine.Session {
	m.sessMu.RLock()
	defer m.sessMu.RUnlock()
	return m.session
}

// OpenSession opens a new snapshot-pinned session on the model's Dataset:
// it sees the current epoch, consistently, no matter how many Mutate calls
// land afterwards. The caller owns it and must Close it.
func (m *Model) OpenSession() (*engine.Session, error) {
	return engine.Open(engine.WithDataset(m.Dataset))
}

// Mutate applies one batched mutation to the model's dataset: apply buffers
// Insert/Delete/Update operations on the transaction, and a nil error
// commits them atomically, publishing (and returning) a new snapshot epoch.
// The model's default Session is re-pinned to it; sessions opened earlier
// keep their epochs. A non-nil error from apply rolls the batch back.
//
// Mutations change what the engine serves, not the Circuit: elements stay
// the geometric ground truth of the initial build (joins and walkthrough
// harnesses read them directly), while the dataset tracks the evolving item
// set the query front door answers for.
func (m *Model) Mutate(apply func(tx *engine.Tx) error) (*engine.Snapshot, error) {
	tx := m.Dataset.Begin()
	if err := apply(tx); err != nil {
		tx.Rollback()
		return nil, err
	}
	snap, err := tx.Commit()
	if snap != nil {
		// A snapshot was published even if err != nil (a committed batch
		// whose auto-compaction failed — see Tx.Commit); the default session
		// must still advance to it.
		if rerr := m.repin(); rerr != nil && err == nil {
			err = rerr
		}
	}
	return snap, err
}

// Compact folds the dataset's delta overlay into a fresh base build (see
// engine.Dataset.Compact) and re-pins the model's default session.
func (m *Model) Compact() (*engine.Snapshot, error) {
	snap, err := m.Dataset.Compact()
	if err != nil {
		return nil, err
	}
	return snap, m.repin()
}

// repin replaces the default session with one pinned to the latest
// snapshot. Concurrent Mutates may race here, so the swap is epoch-guarded:
// a session pinned to an older epoch never replaces a newer one (the loser
// of the race closes its own session instead). The replaced session is
// closed after the swap; a query that already fetched it keeps working (its
// snapshot stays alive — Close only drops the advisory pin count).
func (m *Model) repin() error {
	sess, err := engine.Open(engine.WithDataset(m.Dataset))
	if err != nil {
		return fmt.Errorf("core: re-pinning session: %w", err)
	}
	m.sessMu.Lock()
	old := m.session
	if old != nil && old.Snapshot().Epoch() >= sess.Snapshot().Epoch() {
		m.sessMu.Unlock()
		sess.Close()
		return nil
	}
	m.session = sess
	m.sessMu.Unlock()
	if old != nil {
		old.Close()
	}
	return nil
}

// Do executes one typed request through the model's session. Pagination
// fields pass straight through: a Limit/Offset/Cursor request runs on the
// lazy streaming pipeline of the pinned snapshot's routed contender, and the
// returned Result carries the next page's cursor when the page filled its
// Limit. Cursors minted here stay valid across Mutate/Compact for any
// session still pinning the epoch they were minted on; the default session
// re-pins on commit, so long-lived page walks should hold their own
// OpenSession.
func (m *Model) Do(ctx context.Context, req engine.Request) (engine.Result, error) {
	return m.Session().Do(ctx, req)
}

// DoBatch executes a (possibly mixed-kind) request batch through the
// model's session with the repository-wide workers semantics. Pagination
// passes through per request, as in Do.
func (m *Model) DoBatch(ctx context.Context, reqs []engine.Request, workers int) ([]engine.Result, error) {
	return m.Session().DoBatch(ctx, reqs, workers)
}

// EngineIndex returns the named engine contender ("flat", "rtree", "grid",
// "sharded").
func (m *Model) EngineIndex(name string) (engine.SpatialIndex, error) {
	if ix := m.Engine.Index(name); ix != nil {
		return ix, nil
	}
	return nil, fmt.Errorf("core: unknown engine index %q (have flat, rtree, grid, sharded)", name)
}

// BuildModel constructs the circuit and both indexes.
func BuildModel(p circuit.Params, opts Options) (*Model, error) {
	c, err := circuit.Build(p)
	if err != nil {
		return nil, fmt.Errorf("core: building circuit: %w", err)
	}
	return NewModel(c, opts)
}

// NewModel indexes an existing circuit.
func NewModel(c *circuit.Circuit, opts Options) (*Model, error) {
	if opts.Flat.PageSize <= 0 {
		opts.Flat = flat.DefaultOptions()
	}
	if opts.RTreeFanout <= 0 {
		opts.RTreeFanout = opts.Flat.PageSize
	}
	items := make([]rtree.Item, len(c.Elements))
	for i := range c.Elements {
		items[i] = rtree.Item{Box: c.Elements[i].Bounds(), ID: c.Elements[i].ID}
	}
	f, err := flat.Build(items, opts.Flat)
	if err != nil {
		return nil, fmt.Errorf("core: building FLAT: %w", err)
	}
	rt, err := rtree.STR(items, opts.RTreeFanout)
	if err != nil {
		return nil, fmt.Errorf("core: building R-tree: %w", err)
	}
	ert, err := engine.WrapRTree(rt)
	if err != nil {
		return nil, fmt.Errorf("core: paging R-tree: %w", err)
	}
	eg := engine.NewGrid(engine.GridOptions{PageSize: opts.Flat.PageSize})
	if err := eg.Build(items); err != nil {
		return nil, fmt.Errorf("core: building grid index: %w", err)
	}
	es := engine.NewSharded(engine.ShardedOptions{Shards: opts.Shards, Index: "flat", Flat: opts.Flat})
	if err := es.Build(items); err != nil {
		return nil, fmt.Errorf("core: building sharded index: %w", err)
	}
	eflat := engine.WrapFlat(f)
	planner := engine.NewPlanner(eflat, ert, eg, es)
	// The same contender instances double as the dataset's epoch-0 bases:
	// snapshots share them read-only, and compactions build fresh ones from
	// the options below.
	ds, err := engine.NewDataset(items, engine.DatasetOptions{
		Contenders:   []string{"flat", "rtree", "grid", "sharded"},
		Flat:         opts.Flat,
		RTreeFanout:  opts.RTreeFanout,
		Grid:         engine.GridOptions{PageSize: opts.Flat.PageSize},
		Shards:       opts.Shards,
		CompactMin:   opts.DatasetCompactMin,
		CompactRatio: opts.DatasetCompactRatio,
		Bases:        []engine.SpatialIndex{eflat, ert, eg, es},
	})
	if err != nil {
		return nil, fmt.Errorf("core: building dataset: %w", err)
	}
	m := &Model{Circuit: c, Flat: f, RTree: rt, Engine: planner, Dataset: ds, opts: opts}
	if err := m.repin(); err != nil {
		return nil, err
	}
	return m, nil
}

// Segment returns the capsule geometry of an element.
func (m *Model) Segment(id int32) geom.Segment { return m.Circuit.Elements[id].Shape }

// RangeQuery returns the IDs of elements whose capsules intersect q, exact
// (box filter via FLAT, capsule refinement), sorted ascending.
func (m *Model) RangeQuery(q geom.AABB) ([]int32, flat.QueryStats) {
	var out []int32
	st := m.Flat.Query(q, nil, func(id int32) {
		if m.Circuit.Elements[id].Shape.IntersectsBox(q) {
			out = append(out, id)
		}
	})
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out, st
}

// QueryComparison contrasts FLAT and the R-tree on one query — the two
// columns of the demo's Figure 3 statistics panel. Both profiles are the
// engine layer's unified QueryStats: for FLAT, IndexReads are seed-tree
// accesses and PagesRead the crawl; for the R-tree, PagesRead are node
// accesses (one node per page) with the per-level breakdown attached.
type QueryComparison struct {
	// Results is the number of matching elements (identical for both).
	Results int
	// FlatStats is FLAT's execution record.
	FlatStats engine.QueryStats
	// FlatTime is FLAT's wall-clock execution time.
	FlatTime time.Duration
	// RTreeStats is the R-tree's execution record (per-level node reads).
	RTreeStats engine.QueryStats
	// RTreeTime is the R-tree's wall-clock execution time.
	RTreeTime time.Duration
}

// CompareRangeQuery runs the same box-filter query on the engine's FLAT and
// R-tree contenders — through the Request front door — and returns both cost
// profiles. It panics if the two indexes disagree on the result — they never
// should.
func (m *Model) CompareRangeQuery(q geom.AABB) QueryComparison {
	var cmp QueryComparison
	eflat, ertree := m.Engine.Index("flat"), m.Engine.Index("rtree")
	req := engine.RangeRequest(q)
	run := func(ix engine.SpatialIndex) (engine.QueryStats, int, time.Duration) {
		start := time.Now()
		count := 0
		st, err := ix.Do(context.Background(), req, func(engine.Hit) { count++ })
		if err != nil { // unreachable: the request is valid and ctx background
			panic(fmt.Sprintf("core: CompareRangeQuery on %s: %v", ix.Name(), err))
		}
		return st, count, time.Since(start)
	}
	var flatCount, treeCount int
	cmp.FlatStats, flatCount, cmp.FlatTime = run(eflat)
	cmp.RTreeStats, treeCount, cmp.RTreeTime = run(ertree)

	if flatCount != treeCount {
		panic(fmt.Sprintf("core: FLAT (%d) and R-tree (%d) disagree on %v",
			flatCount, treeCount, q))
	}
	cmp.Results = flatCount
	return cmp
}

// TissueStats summarizes a region of the model — the §2.1 use case ("FLAT is
// currently used by the neuroscientists to compute statistics (tissue
// density etc.)").
type TissueStats struct {
	// Region is the analyzed box.
	Region geom.AABB
	// Elements is the number of capsules intersecting the region.
	Elements int
	// Neurons is the number of distinct neurons contributing them.
	Neurons int
	// TotalLength is the summed axis length of the intersecting capsules.
	TotalLength float64
	// Density is elements per unit volume.
	Density float64
	// MeanRadius is the average capsule radius.
	MeanRadius float64
}

// AnalyzeRegion computes tissue statistics for a region via a FLAT query.
func (m *Model) AnalyzeRegion(region geom.AABB) TissueStats {
	ids, _ := m.RangeQuery(region)
	st := TissueStats{Region: region, Elements: len(ids)}
	neurons := make(map[int32]struct{})
	var radiusSum float64
	for _, id := range ids {
		e := &m.Circuit.Elements[id]
		neurons[e.Neuron] = struct{}{}
		st.TotalLength += e.Shape.Length()
		radiusSum += e.Shape.Radius
	}
	st.Neurons = len(neurons)
	if v := region.Volume(); v > 0 {
		st.Density = float64(st.Elements) / v
	}
	if st.Elements > 0 {
		st.MeanRadius = radiusSum / float64(st.Elements)
	}
	return st
}

// Prefetchers returns the prefetching methods the demo offers, in display
// order: none, hilbert, extrapolation, scout (§3.2).
func (m *Model) Prefetchers() []prefetch.Prefetcher {
	return []prefetch.Prefetcher{
		prefetch.None{},
		prefetch.Hilbert{},
		prefetch.Extrapolation{},
		scout.New(scout.Options{}),
	}
}

// PrefetcherByName returns the named prefetching method.
func (m *Model) PrefetcherByName(name string) (prefetch.Prefetcher, error) {
	for _, p := range m.Prefetchers() {
		if p.Name() == name {
			return p, nil
		}
	}
	return nil, fmt.Errorf("core: unknown prefetcher %q (have none, hilbert, extrapolation, scout)", name)
}

// ExploreConfig parameterizes a walkthrough simulation.
type ExploreConfig struct {
	// Stride is the arc-length distance between consecutive queries.
	// Default 8.
	Stride float64
	// Radius is the query half-extent. Default 15.
	Radius float64
	// ThinkTime is the user's pause between queries. Default 500ms.
	ThinkTime time.Duration
	// PoolPages is the buffer-pool capacity; 0 sizes it to hold the whole
	// dataset (the in-memory regime of the demo).
	PoolPages int
	// Cost is the I/O cost model; the zero value selects the default.
	Cost pager.CostModel
	// Index names the engine contender serving the walkthrough ("flat",
	// "rtree", "grid" or "sharded"); empty selects "flat", the paper's
	// configuration. Every contender sits on paged storage — the sharded
	// one via its dense global page remap — so the same buffer-pool +
	// prefetch stack applies to each.
	Index string
}

func (c ExploreConfig) sanitize(served prefetch.Served) ExploreConfig {
	if c.Stride <= 0 {
		c.Stride = 8
	}
	if c.Radius <= 0 {
		c.Radius = 15
	}
	if c.ThinkTime <= 0 {
		c.ThinkTime = 500 * time.Millisecond
	}
	if c.PoolPages <= 0 {
		c.PoolPages = served.NumPages()
	}
	if c.Cost.PageRead <= 0 {
		c.Cost = pager.DefaultCostModel()
	}
	return c
}

// Explore simulates following the stem-to-tip path of the given branch with
// the given prefetching method (§3.2's interactive walk-through), served by
// the engine index cfg.Index names.
func (m *Model) Explore(neuron int32, branch int, method prefetch.Prefetcher,
	cfg ExploreConfig) (prefetch.RunStats, error) {
	name := cfg.Index
	if name == "" {
		name = "flat"
	}
	ix, err := m.EngineIndex(name)
	if err != nil {
		return prefetch.RunStats{}, err
	}
	served, ok := ix.(prefetch.Served)
	if !ok {
		return prefetch.RunStats{}, fmt.Errorf("core: engine index %q cannot serve walkthroughs", name)
	}
	cfg = cfg.sanitize(served)
	path, err := m.Circuit.BranchPath(neuron, branch)
	if err != nil {
		return prefetch.RunStats{}, err
	}
	seq, err := query.Walkthrough(path, cfg.Stride, cfg.Radius)
	if err != nil {
		return prefetch.RunStats{}, err
	}
	boxes := make([]geom.AABB, seq.Len())
	for i, s := range seq.Steps {
		boxes[i] = s.Box
	}
	sim := &prefetch.Simulator{
		Index:     served,
		Segment:   m.Segment,
		Cost:      cfg.Cost,
		ThinkTime: cfg.ThinkTime,
		PoolPages: cfg.PoolPages,
	}
	return sim.Run(method, boxes)
}

// JoinAlgorithms returns the join methods the demo offers, in display order:
// NestedLoop, SweepLine, PBSM, S3, TOUCH (§4.2).
func (m *Model) JoinAlgorithms() []join.Algorithm {
	return []join.Algorithm{
		join.NestedLoop{},
		join.SweepLine{},
		join.PBSM{},
		join.S3{},
		touch.New(),
	}
}

// JoinByName returns the named join algorithm.
func (m *Model) JoinByName(name string) (join.Algorithm, error) {
	for _, a := range m.JoinAlgorithms() {
		if a.Name() == name {
			return a, nil
		}
	}
	return nil, fmt.Errorf("core: unknown join algorithm %q (have NestedLoop, SweepLine, PBSM, S3, TOUCH)", name)
}

// Synapse is one synapse candidate: an axon segment of one neuron within the
// synaptic gap of a dendrite segment of another.
type Synapse struct {
	// Axon is the presynaptic element ID.
	Axon int32
	// Dendrite is the postsynaptic element ID.
	Dendrite int32
	// Location is the midpoint between the two capsule axes, where the demo
	// highlights the synapse (Figure 7).
	Location geom.Vec
}

// SynapseInputs extracts the two join operands for a region: axonal segments
// (dataset A) and dendritic segments (dataset B) intersecting it. Pass the
// circuit bounds to join the whole model.
func (m *Model) SynapseInputs(region geom.AABB) (axons, dendrites []join.Object) {
	for i := range m.Circuit.Elements {
		e := &m.Circuit.Elements[i]
		if e.Branch < 0 {
			continue // somas do not form synapses in this model
		}
		if !e.Bounds().Intersects(region) {
			continue
		}
		kind := m.Circuit.Morphologies[e.Neuron].Branches[e.Branch].Kind
		switch kind {
		case morphology.KindAxon:
			axons = append(axons, join.Make(e.ID, e.Shape))
		case morphology.KindDendrite:
			dendrites = append(dendrites, join.Make(e.ID, e.Shape))
		}
	}
	return axons, dendrites
}

// FindSynapses runs the §4 workload: a distance join between axonal and
// dendritic segments in the region, keeping only pairs from different
// neurons. eps is the synaptic gap ("close enough for electrical impulses to
// leap over").
func (m *Model) FindSynapses(region geom.AABB, eps float64, alg join.Algorithm) ([]Synapse, join.Stats) {
	axons, dendrites := m.SynapseInputs(region)
	var out []Synapse
	st := alg.Join(axons, dendrites, eps, func(p join.Pair) {
		a := &m.Circuit.Elements[p.A]
		d := &m.Circuit.Elements[p.B]
		if a.Neuron == d.Neuron {
			return // same-cell contacts are not synapses
		}
		out = append(out, Synapse{
			Axon:     p.A,
			Dendrite: p.B,
			Location: a.Shape.Center().Add(d.Shape.Center()).Scale(0.5),
		})
	})
	sort.Slice(out, func(i, j int) bool {
		if out[i].Axon != out[j].Axon {
			return out[i].Axon < out[j].Axon
		}
		return out[i].Dendrite < out[j].Dendrite
	})
	return out, st
}
