package prefetch

import (
	"testing"
	"time"

	"neurospatial/internal/circuit"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/query"
	"neurospatial/internal/rtree"
)

type fixture struct {
	circ  *circuit.Circuit
	index *flat.Index
	boxes []geom.AABB
}

func buildFixture(t testing.TB, neurons int) *fixture {
	t.Helper()
	p := circuit.DefaultParams()
	p.Neurons = neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(300, 300, 300))
	c, err := circuit.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]rtree.Item, len(c.Elements))
	for i := range c.Elements {
		items[i] = rtree.Item{Box: c.Elements[i].Bounds(), ID: c.Elements[i].ID}
	}
	idx, err := flat.Build(items, flat.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, _, path := c.LongestPath()
	seq, err := query.Walkthrough(path, 8, 15)
	if err != nil {
		t.Fatal(err)
	}
	boxes := make([]geom.AABB, seq.Len())
	for i, s := range seq.Steps {
		boxes[i] = s.Box
	}
	return &fixture{circ: c, index: idx, boxes: boxes}
}

func (f *fixture) simulator() *Simulator {
	return &Simulator{
		Index:     f.index,
		Segment:   func(id int32) geom.Segment { return f.circ.Elements[id].Shape },
		Cost:      pager.DefaultCostModel(),
		ThinkTime: 500 * time.Millisecond,
		PoolPages: f.index.NumPages(),
	}
}

func TestBudget(t *testing.T) {
	s := &Simulator{Cost: pager.CostModel{PageRead: 5 * time.Millisecond}, ThinkTime: 500 * time.Millisecond}
	if got := s.Budget(); got != 100 {
		t.Errorf("Budget = %d, want 100", got)
	}
	s.Cost.PageRead = 0
	if got := s.Budget(); got != 0 {
		t.Errorf("zero-cost Budget = %d", got)
	}
}

func TestNonePrefetcher(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	run, err := sim.Run(None{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.Method != "none" {
		t.Errorf("method = %q", run.Method)
	}
	if run.PrefetchReads != 0 || run.PrefetchHits != 0 {
		t.Errorf("none prefetched: %+v", run)
	}
	if run.DemandReads == 0 || run.Latency == 0 {
		t.Error("walkthrough did no I/O")
	}
	if run.Accuracy() != 1 {
		t.Errorf("vacuous accuracy = %v", run.Accuracy())
	}
	if len(run.Steps) != len(f.boxes) {
		t.Errorf("steps = %d, want %d", len(run.Steps), len(f.boxes))
	}
	// Latency equals cost model on demand reads.
	want := time.Duration(run.DemandReads) * sim.Cost.PageRead
	if run.Latency != want {
		t.Errorf("latency %v, want %v", run.Latency, want)
	}
}

func TestHilbertPrefetcherFetchesLayoutNeighbors(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	run, err := sim.Run(Hilbert{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.PrefetchReads == 0 {
		t.Fatal("hilbert prefetched nothing")
	}
	// Walking a branch through an STR layout yields some locality hits.
	if run.PrefetchHits == 0 {
		t.Error("hilbert had zero hits on a locality-friendly layout")
	}
	// Latency is never worse than no prefetching (prefetch I/O is free
	// during think time and the pool is large enough not to evict).
	none, err := sim.Run(None{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.Latency > none.Latency {
		t.Errorf("hilbert latency %v worse than none %v", run.Latency, none.Latency)
	}
}

func TestExtrapolationPrefetcher(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	run, err := sim.Run(Extrapolation{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	// No prediction on step one (needs two history points).
	if run.Steps[0].PrefetchReads != 0 {
		t.Error("extrapolation predicted with one history point")
	}
	if run.PrefetchReads == 0 {
		t.Fatal("extrapolation prefetched nothing")
	}
	none, err := sim.Run(None{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.Latency > none.Latency {
		t.Errorf("extrapolation latency %v worse than none %v", run.Latency, none.Latency)
	}
	if run.Elements != none.Elements {
		t.Error("prefetching changed query results")
	}
}

// TestExtrapolationAnisotropicQueryBox: the predicted range must keep the
// query box's per-axis half-extents. The pre-fix code built a cube from the
// X half-extent alone, so a query box long on another axis (here Y ≫ X, a
// "flat" box) had its predicted range collapsed to the X size on every axis
// and the pages along Y were never prefetched.
func TestExtrapolationAnisotropicQueryBox(t *testing.T) {
	// Items are points strung along the Y axis, so FLAT's STR layout pages
	// them in Y runs and page MBRs segment the axis.
	items := make([]rtree.Item, 200)
	for i := range items {
		p := geom.V(0, float64(i), 0)
		items[i] = rtree.Item{Box: geom.Box(p, p), ID: int32(i)}
	}
	idx, err := flat.Build(items, flat.Options{PageSize: 8})
	if err != nil {
		t.Fatal(err)
	}

	// The user sweeps a Y-elongated box (half-extents 1×25×1) up the axis
	// in +Y steps of 10: centers y=30 then y=40, predicted next y=50.
	box := func(y float64) geom.AABB {
		c := geom.V(0, y, 0)
		return geom.AABB{Min: c.Sub(geom.V(1, 25, 1)), Max: c.Add(geom.V(1, 25, 1))}
	}
	q := box(40)
	ctx := &Context{Index: idx, History: []geom.AABB{box(30), q}}

	pages := Extrapolation{}.Predict(ctx, q, nil, 1000)
	if len(pages) == 0 {
		t.Fatal("no prediction from two history points")
	}
	got := make(map[pager.PageID]bool)
	for _, p := range pages {
		got[p] = true
	}
	// The predicted box is y ∈ [25, 75]; the page holding the item at y=70
	// is squarely inside it but far outside the pre-fix cube y ∈ [49, 51].
	if farPage := idx.PageOf(70); !got[farPage] {
		t.Fatalf("prediction missed page %d (item y=70) — predicted range "+
			"under-covers the query's long axis; got pages %v", farPage, pages)
	}
}

func TestExtrapolationOnStraightPathIsAccurate(t *testing.T) {
	// On a perfectly straight trajectory, dead reckoning is the right
	// model: verify the baseline is not artificially crippled.
	f := buildFixture(t, 8)
	sim := f.simulator()
	var boxes []geom.AABB
	for i := 0; i < 12; i++ {
		boxes = append(boxes, geom.BoxAround(geom.V(20+float64(i)*15, 150, 150), 15))
	}
	run, err := sim.Run(Extrapolation{}, boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.PrefetchHits == 0 {
		t.Error("extrapolation missed on a straight line")
	}
}

func TestRunStatsAccounting(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	run, err := sim.Run(Hilbert{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	var demand, pref, hits, elems int64
	var lat time.Duration
	for _, s := range run.Steps {
		demand += s.DemandReads
		pref += s.PrefetchReads
		hits += s.PrefetchHits
		elems += s.Results
		lat += s.Latency
	}
	if demand != run.DemandReads || pref != run.PrefetchReads ||
		hits != run.PrefetchHits || elems != run.Elements || lat != run.Latency {
		t.Error("per-step records do not sum to totals")
	}
	if run.PrefetchHits > run.PrefetchReads {
		t.Error("more hits than prefetches")
	}
}

func TestBudgetCapsPrefetching(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	sim.ThinkTime = 15 * time.Millisecond // budget of 3 pages
	run, err := sim.Run(Hilbert{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range run.Steps {
		if s.PrefetchReads > 3 {
			t.Fatalf("step %d prefetched %d pages over budget 3", i, s.PrefetchReads)
		}
	}
}

func TestSmallPoolStillCorrect(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	sim.PoolPages = 4 // pathological thrashing
	run, err := sim.Run(Hilbert{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	none, err := sim.Run(None{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.Elements != none.Elements {
		t.Error("thrashing pool changed results")
	}
}
