package prefetch

import (
	"testing"
	"time"

	"neurospatial/internal/circuit"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/query"
	"neurospatial/internal/rtree"
)

type fixture struct {
	circ  *circuit.Circuit
	index *flat.Index
	boxes []geom.AABB
}

func buildFixture(t testing.TB, neurons int) *fixture {
	t.Helper()
	p := circuit.DefaultParams()
	p.Neurons = neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(300, 300, 300))
	c, err := circuit.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]rtree.Item, len(c.Elements))
	for i := range c.Elements {
		items[i] = rtree.Item{Box: c.Elements[i].Bounds(), ID: c.Elements[i].ID}
	}
	idx, err := flat.Build(items, flat.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	_, _, path := c.LongestPath()
	seq, err := query.Walkthrough(path, 8, 15)
	if err != nil {
		t.Fatal(err)
	}
	boxes := make([]geom.AABB, seq.Len())
	for i, s := range seq.Steps {
		boxes[i] = s.Box
	}
	return &fixture{circ: c, index: idx, boxes: boxes}
}

func (f *fixture) simulator() *Simulator {
	return &Simulator{
		Index:     f.index,
		Segment:   func(id int32) geom.Segment { return f.circ.Elements[id].Shape },
		Cost:      pager.DefaultCostModel(),
		ThinkTime: 500 * time.Millisecond,
		PoolPages: f.index.NumPages(),
	}
}

func TestBudget(t *testing.T) {
	s := &Simulator{Cost: pager.CostModel{PageRead: 5 * time.Millisecond}, ThinkTime: 500 * time.Millisecond}
	if got := s.Budget(); got != 100 {
		t.Errorf("Budget = %d, want 100", got)
	}
	s.Cost.PageRead = 0
	if got := s.Budget(); got != 0 {
		t.Errorf("zero-cost Budget = %d", got)
	}
}

func TestNonePrefetcher(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	run, err := sim.Run(None{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.Method != "none" {
		t.Errorf("method = %q", run.Method)
	}
	if run.PrefetchReads != 0 || run.PrefetchHits != 0 {
		t.Errorf("none prefetched: %+v", run)
	}
	if run.DemandReads == 0 || run.Latency == 0 {
		t.Error("walkthrough did no I/O")
	}
	if run.Accuracy() != 1 {
		t.Errorf("vacuous accuracy = %v", run.Accuracy())
	}
	if len(run.Steps) != len(f.boxes) {
		t.Errorf("steps = %d, want %d", len(run.Steps), len(f.boxes))
	}
	// Latency equals cost model on demand reads.
	want := time.Duration(run.DemandReads) * sim.Cost.PageRead
	if run.Latency != want {
		t.Errorf("latency %v, want %v", run.Latency, want)
	}
}

func TestHilbertPrefetcherFetchesLayoutNeighbors(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	run, err := sim.Run(Hilbert{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.PrefetchReads == 0 {
		t.Fatal("hilbert prefetched nothing")
	}
	// Walking a branch through an STR layout yields some locality hits.
	if run.PrefetchHits == 0 {
		t.Error("hilbert had zero hits on a locality-friendly layout")
	}
	// Latency is never worse than no prefetching (prefetch I/O is free
	// during think time and the pool is large enough not to evict).
	none, err := sim.Run(None{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.Latency > none.Latency {
		t.Errorf("hilbert latency %v worse than none %v", run.Latency, none.Latency)
	}
}

func TestExtrapolationPrefetcher(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	run, err := sim.Run(Extrapolation{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	// No prediction on step one (needs two history points).
	if run.Steps[0].PrefetchReads != 0 {
		t.Error("extrapolation predicted with one history point")
	}
	if run.PrefetchReads == 0 {
		t.Fatal("extrapolation prefetched nothing")
	}
	none, err := sim.Run(None{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.Latency > none.Latency {
		t.Errorf("extrapolation latency %v worse than none %v", run.Latency, none.Latency)
	}
	if run.Elements != none.Elements {
		t.Error("prefetching changed query results")
	}
}

func TestExtrapolationOnStraightPathIsAccurate(t *testing.T) {
	// On a perfectly straight trajectory, dead reckoning is the right
	// model: verify the baseline is not artificially crippled.
	f := buildFixture(t, 8)
	sim := f.simulator()
	var boxes []geom.AABB
	for i := 0; i < 12; i++ {
		boxes = append(boxes, geom.BoxAround(geom.V(20+float64(i)*15, 150, 150), 15))
	}
	run, err := sim.Run(Extrapolation{}, boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.PrefetchHits == 0 {
		t.Error("extrapolation missed on a straight line")
	}
}

func TestRunStatsAccounting(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	run, err := sim.Run(Hilbert{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	var demand, pref, hits, elems int64
	var lat time.Duration
	for _, s := range run.Steps {
		demand += s.DemandReads
		pref += s.PrefetchReads
		hits += s.PrefetchHits
		elems += s.Results
		lat += s.Latency
	}
	if demand != run.DemandReads || pref != run.PrefetchReads ||
		hits != run.PrefetchHits || elems != run.Elements || lat != run.Latency {
		t.Error("per-step records do not sum to totals")
	}
	if run.PrefetchHits > run.PrefetchReads {
		t.Error("more hits than prefetches")
	}
}

func TestBudgetCapsPrefetching(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	sim.ThinkTime = 15 * time.Millisecond // budget of 3 pages
	run, err := sim.Run(Hilbert{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	for i, s := range run.Steps {
		if s.PrefetchReads > 3 {
			t.Fatalf("step %d prefetched %d pages over budget 3", i, s.PrefetchReads)
		}
	}
}

func TestSmallPoolStillCorrect(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	sim.PoolPages = 4 // pathological thrashing
	run, err := sim.Run(Hilbert{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	none, err := sim.Run(None{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.Elements != none.Elements {
		t.Error("thrashing pool changed results")
	}
}
