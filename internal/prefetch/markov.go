package prefetch

import (
	"sort"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
)

// Markov is the history-learning prefetcher class §3 of the paper discusses
// and dismisses: "Other approaches learn from past user behavior to predict
// future positions [8]. For massive models like in our scenario, however,
// learning from past user behavior does not significantly improve prediction
// accuracy because the probability that several users follow the same paths
// is small."
//
// The implementation is a first-order Markov chain over page transitions, in
// the spirit of the neighbor-selection Markov chain of Lee et al. (ADVIS'02):
// Train it with the page sequences of past sessions; at query time it
// prefetches the pages most often seen to follow the current query's pages.
// The E4 supplement reproduces the paper's verdict: trained on *other* users'
// walkthroughs it barely predicts anything (paths don't repeat), while
// trained on the *same* path it is nearly perfect — useful only for replays.
type Markov struct {
	// transitions[p][q] counts how often page q was demanded in the query
	// after one that demanded page p.
	transitions map[pager.PageID]map[pager.PageID]int
	// prev holds the previous query's pages within the current session.
	prev []pager.PageID
}

// NewMarkov returns an untrained Markov prefetcher.
func NewMarkov() *Markov {
	return &Markov{transitions: make(map[pager.PageID]map[pager.PageID]int)}
}

// Name implements Prefetcher.
func (m *Markov) Name() string { return "markov" }

// Reset implements Prefetcher. It clears the session state but keeps the
// trained transition table: training is across sessions by design.
func (m *Markov) Reset() { m.prev = nil }

// Train records one past session: a sequence of page sets, one per query.
func (m *Markov) Train(sessions ...[][]pager.PageID) {
	for _, session := range sessions {
		for i := 1; i < len(session); i++ {
			for _, p := range session[i-1] {
				row := m.transitions[p]
				if row == nil {
					row = make(map[pager.PageID]int)
					m.transitions[p] = row
				}
				for _, q := range session[i] {
					row[q]++
				}
			}
		}
	}
}

// TrainFromWalkthrough replays a query-box sequence against an index and
// trains on the page sets it touches.
func (m *Markov) TrainFromWalkthrough(ctx *Context, boxes []geom.AABB) {
	session := make([][]pager.PageID, len(boxes))
	for i, q := range boxes {
		session[i] = ctx.Index.PagesInRange(q)
	}
	m.Train(session)
}

// Predict implements Prefetcher: rank pages by the transition counts out of
// the current query's pages, excluding pages the current query already
// demanded.
func (m *Markov) Predict(ctx *Context, q geom.AABB, _ []int32, budget int) []pager.PageID {
	cur := ctx.Index.PagesInRange(q)
	m.prev = cur
	inCur := make(map[pager.PageID]bool, len(cur))
	for _, p := range cur {
		inCur[p] = true
	}
	votes := make(map[pager.PageID]int)
	for _, p := range cur {
		for q, n := range m.transitions[p] {
			if !inCur[q] {
				votes[q] += n
			}
		}
	}
	if len(votes) == 0 {
		return nil
	}
	type scored struct {
		page pager.PageID
		n    int
	}
	ranked := make([]scored, 0, len(votes))
	for p, n := range votes {
		ranked = append(ranked, scored{p, n})
	}
	sort.Slice(ranked, func(i, j int) bool {
		if ranked[i].n != ranked[j].n {
			return ranked[i].n > ranked[j].n
		}
		return ranked[i].page < ranked[j].page
	})
	if len(ranked) > budget {
		ranked = ranked[:budget]
	}
	out := make([]pager.PageID, len(ranked))
	for i, s := range ranked {
		out[i] = s.page
	}
	return out
}
