package prefetch

import (
	"testing"

	"neurospatial/internal/geom"
	"neurospatial/internal/query"
)

func TestMarkovUntrainedPredictsNothing(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	run, err := sim.Run(NewMarkov(), f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.PrefetchReads != 0 {
		t.Errorf("untrained markov prefetched %d pages", run.PrefetchReads)
	}
	if run.Method != "markov" {
		t.Errorf("method = %q", run.Method)
	}
}

// Trained on the exact same path, the Markov chain is a replay predictor:
// high accuracy (the sanity check that the implementation works).
func TestMarkovReplayIsAccurate(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	m := NewMarkov()
	ctx := &Context{Index: f.index}
	m.TrainFromWalkthrough(ctx, f.boxes)
	run, err := sim.Run(m, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.PrefetchReads == 0 {
		t.Fatal("trained markov prefetched nothing on a replay")
	}
	if run.PrefetchHits == 0 {
		t.Error("trained markov had no hits on its own training path")
	}
	none, err := sim.Run(None{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	if run.Latency >= none.Latency {
		t.Errorf("replay markov latency %v not better than none %v", run.Latency, none.Latency)
	}
}

// The paper's §3 claim: trained on OTHER paths, history learning barely
// helps, because users do not follow the same paths through a massive model.
func TestMarkovCrossPathBarelyHelps(t *testing.T) {
	f := buildFixture(t, 12)
	sim := f.simulator()

	// Train on walkthroughs of different neurons than the one explored.
	m := NewMarkov()
	ctx := &Context{Index: f.index}
	trained := 0
	for ni := range f.circ.Morphologies {
		if trained == 3 {
			break
		}
		tips := f.circ.Morphologies[ni].Terminals()
		path, err := f.circ.BranchPath(int32(ni), tips[0])
		if err != nil || len(path) < 4 {
			continue
		}
		seq, err := query.Walkthrough(path, 8, 15)
		if err != nil {
			continue
		}
		boxes := make([]geom.AABB, seq.Len())
		for i, s := range seq.Steps {
			boxes[i] = s.Box
		}
		// Skip the test path itself: cross-user means disjoint paths.
		if boxes[0] == f.boxes[0] {
			continue
		}
		m.TrainFromWalkthrough(ctx, boxes)
		trained++
	}
	if trained == 0 {
		t.Skip("no training paths available")
	}
	markov, err := sim.Run(m, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	none, err := sim.Run(None{}, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	// The verdict: cross-path history learning recovers only a small share
	// of the demand reads (the paper's "does not significantly improve").
	saved := none.DemandReads - markov.DemandReads
	if float64(saved) > 0.5*float64(none.DemandReads) {
		t.Errorf("cross-path markov saved %d of %d reads — too effective for the paper's claim",
			saved, none.DemandReads)
	}
}

func TestMarkovResetKeepsTraining(t *testing.T) {
	f := buildFixture(t, 8)
	m := NewMarkov()
	ctx := &Context{Index: f.index}
	m.TrainFromWalkthrough(ctx, f.boxes)
	sim := f.simulator()
	r1, err := sim.Run(m, f.boxes)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(m, f.boxes) // Run calls Reset; training must survive
	if err != nil {
		t.Fatal(err)
	}
	if r2.PrefetchReads == 0 {
		t.Error("training lost after Reset")
	}
	if r1.DemandReads != r2.DemandReads {
		t.Errorf("markov runs not reproducible: %d vs %d", r1.DemandReads, r2.DemandReads)
	}
}
