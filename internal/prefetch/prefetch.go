// Package prefetch provides the prefetching framework of §3 of the paper and
// the two location-only baselines the demo lets the audience compare SCOUT
// against:
//
//   - None — no prefetching: every page of every query is a demand read.
//   - Hilbert — the web-GIS policy of Park & Kim (TKDE 2001): prefetch the
//     pages adjacent, in storage-curve order, to the pages the current query
//     touched. FLAT's STR layout is a space-filling order, so curve
//     neighbors are spatial neighbors; the policy uses "only the current
//     location" (§3).
//   - Extrapolation — linear dead reckoning: extrapolate the next query
//     center from "the last few positions" (§3) and prefetch the pages of
//     the predicted range.
//
// SCOUT (package scout) implements the same Prefetcher interface and is the
// content-aware policy that makes the comparison.
//
// The package also provides the walkthrough Simulator that produces the
// numbers of the demo's statistics panel (Figure 6): per-method demand reads,
// prefetch accuracy, and the simulated end-to-end latency of the query
// sequence under the pager's cost model, where prefetch I/O overlaps the
// user's think time.
package prefetch

import (
	"time"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
)

// PageGeometry is the page-layout surface prefetchers need from the index
// serving a walkthrough: how a spatial range maps to pages. flat.Index and
// every engine.SpatialIndex wrapper satisfy it, so prefetching is no longer
// FLAT-specific.
type PageGeometry interface {
	// PagesInRange returns the pages a query of box q would touch.
	PagesInRange(q geom.AABB) []pager.PageID
	// PageOf returns the page holding element id.
	PageOf(id int32) pager.PageID
	// NumPages returns the number of data pages.
	NumPages() int
}

// Served is the full index surface the walkthrough Simulator drives: page
// geometry for prediction, the page store to cache, and a query path that
// reads through a buffer pool (so demand reads, hits and prefetch hits are
// accounted). flat.Index satisfies it directly; the engine layer's indexes
// (FLAT, R-tree, grid) all satisfy it too, which is what lets the
// buffer-pool + prefetch/SCOUT stack sit beneath any index.
type Served interface {
	PageGeometry
	// Store returns the page store the simulator wraps in a pool.
	Store() *pager.Store
	// PagedQuery executes one range query reading pages through pool.
	PagedQuery(q geom.AABB, pool *pager.BufferPool, visit func(id int32))
}

// Context gives prefetchers access to the data layout and the query history.
// It is rebuilt by the simulator for every walkthrough.
type Context struct {
	// Index is the page geometry of the index serving the walkthrough;
	// prefetchers use it to turn predictions into pages.
	Index PageGeometry
	// Segment returns the capsule geometry of an element ID. Content-aware
	// prefetchers (SCOUT) reconstruct structures from it.
	Segment func(id int32) geom.Segment
	// History holds the boxes of all queries issued so far, oldest first,
	// including the most recent one.
	History []geom.AABB
}

// Prefetcher predicts which pages to fetch during the think time after a
// query.
type Prefetcher interface {
	// Name returns the display name used in experiment tables.
	Name() string
	// Reset clears per-sequence state; the simulator calls it before every
	// walkthrough.
	Reset()
	// Predict is called after a query completes, with the query's box, its
	// result (element IDs), and the budget: the maximum number of pages the
	// think time can hide. It returns the pages to prefetch, most valuable
	// first; the simulator truncates to the budget.
	Predict(ctx *Context, q geom.AABB, result []int32, budget int) []pager.PageID
}

// None is the no-prefetching baseline.
type None struct{}

// Name implements Prefetcher.
func (None) Name() string { return "none" }

// Reset implements Prefetcher.
func (None) Reset() {}

// Predict implements Prefetcher.
func (None) Predict(*Context, geom.AABB, []int32, int) []pager.PageID { return nil }

// Hilbert prefetches the storage-order neighbors of the pages the current
// query touched: pages p±1, p±2, … around the maximum and minimum page the
// query read, alternating outward, up to the budget. With a space-filling
// layout these are the spatially adjacent pages — the classic tile-based GIS
// policy.
type Hilbert struct{}

// Name implements Prefetcher.
func (Hilbert) Name() string { return "hilbert" }

// Reset implements Prefetcher.
func (Hilbert) Reset() {}

// Predict implements Prefetcher.
func (Hilbert) Predict(ctx *Context, q geom.AABB, _ []int32, budget int) []pager.PageID {
	pages := ctx.Index.PagesInRange(q)
	if len(pages) == 0 {
		return nil
	}
	lo, hi := pages[0], pages[0]
	for _, p := range pages[1:] {
		if p < lo {
			lo = p
		}
		if p > hi {
			hi = p
		}
	}
	n := pager.PageID(ctx.Index.NumPages())
	var out []pager.PageID
	for d := pager.PageID(1); int(d) <= budget; d++ {
		if hi+d < n {
			out = append(out, hi+d)
		}
		if lo-d >= 0 {
			out = append(out, lo-d)
		}
		if len(out) >= budget {
			break
		}
	}
	if len(out) > budget {
		out = out[:budget]
	}
	return out
}

// Extrapolation predicts the next query center by dead reckoning from the
// last two query centers and prefetches the predicted range's pages. On the
// jagged trajectories of neuron branches the straight-line assumption
// misfires at every turn — the weakness §3 attributes to location-only
// approaches.
type Extrapolation struct{}

// Name implements Prefetcher.
func (Extrapolation) Name() string { return "extrapolation" }

// Reset implements Prefetcher.
func (Extrapolation) Reset() {}

// Predict implements Prefetcher.
func (Extrapolation) Predict(ctx *Context, q geom.AABB, _ []int32, budget int) []pager.PageID {
	h := ctx.History
	if len(h) < 2 {
		return nil
	}
	cur := h[len(h)-1].Center()
	prev := h[len(h)-2].Center()
	step := cur.Sub(prev)
	// The predicted range keeps the query's own per-axis half-extents: a
	// cube sized from one axis alone would mis-cover anisotropic query
	// boxes on the other two.
	next := cur.Add(step)
	half := q.Size().Scale(0.5)
	predicted := geom.AABB{Min: next.Sub(half), Max: next.Add(half)}
	pages := ctx.Index.PagesInRange(predicted)
	if len(pages) > budget {
		pages = pages[:budget]
	}
	return pages
}

// StepResult records one query of a simulated walkthrough.
type StepResult struct {
	// DemandReads is the number of pages the user had to wait for.
	DemandReads int64
	// PrefetchReads is the number of pages prefetched after this query.
	PrefetchReads int64
	// PrefetchHits is the number of this query's pages served from earlier
	// prefetches.
	PrefetchHits int64
	// Results is the element count of the query.
	Results int64
	// Latency is the simulated stall time of this query.
	Latency time.Duration
}

// RunStats aggregates a simulated walkthrough, the quantities of the demo's
// Figure 6 panel ("how much data was prefetched in total, how much was
// correctly prefetched and how much data needed to be retrieved
// additionally").
type RunStats struct {
	// Method is the prefetcher's name.
	Method string
	// Steps holds per-query records.
	Steps []StepResult
	// DemandReads totals pages the user stalled on.
	DemandReads int64
	// PrefetchReads totals pages fetched speculatively.
	PrefetchReads int64
	// PrefetchHits totals prefetched pages that a later query actually
	// needed.
	PrefetchHits int64
	// Latency is the total simulated stall time across the sequence.
	Latency time.Duration
	// Elements totals query results.
	Elements int64
}

// Accuracy returns the fraction of prefetched pages that were later needed
// (1 when nothing was prefetched: an empty prediction is vacuously precise).
func (r RunStats) Accuracy() float64 {
	if r.PrefetchReads == 0 {
		return 1
	}
	return float64(r.PrefetchHits) / float64(r.PrefetchReads)
}

// Simulator executes query sequences against any Served index with a
// prefetcher filling the think time between steps.
type Simulator struct {
	// Index serves the queries.
	Index Served
	// Segment exposes element geometry to content-aware prefetchers.
	Segment func(id int32) geom.Segment
	// Cost converts page reads into time.
	Cost pager.CostModel
	// ThinkTime is how long the user inspects each result before the next
	// query; prefetch I/O runs during it for free. The demo's interactive
	// pace is modelled by the default half second.
	ThinkTime time.Duration
	// PoolPages is the buffer-pool capacity used for each run.
	PoolPages int
}

// Budget returns how many page reads fit into the think time.
func (s *Simulator) Budget() int {
	if s.Cost.PageRead <= 0 {
		return 0
	}
	return int(s.ThinkTime / s.Cost.PageRead)
}

// Run executes the sequence of query boxes with the given prefetcher on a
// cold buffer pool and returns the aggregated statistics.
func (s *Simulator) Run(p Prefetcher, boxes []geom.AABB) (RunStats, error) {
	pool, err := pager.NewBufferPool(s.Index.Store(), s.PoolPages)
	if err != nil {
		return RunStats{}, err
	}
	p.Reset()
	ctx := &Context{Index: s.Index, Segment: s.Segment}
	run := RunStats{Method: p.Name()}
	budget := s.Budget()

	for _, q := range boxes {
		ctx.History = append(ctx.History, q)
		before := pool.Stats()
		var result []int32
		s.Index.PagedQuery(q, pool, func(id int32) { result = append(result, id) })
		delta := pool.Stats().Sub(before)

		step := StepResult{
			DemandReads:  delta.DemandReads,
			PrefetchHits: delta.PrefetchHits,
			Results:      int64(len(result)),
			Latency:      s.Cost.DemandLatency(delta),
		}

		// Think time: the prefetcher predicts and the pool fetches, capped
		// by what the think time can hide.
		preds := p.Predict(ctx, q, result, budget)
		if len(preds) > budget {
			preds = preds[:budget]
		}
		prefBefore := pool.Stats()
		for _, pg := range preds {
			pool.Prefetch(pg)
		}
		step.PrefetchReads = pool.Stats().Sub(prefBefore).PrefetchReads

		run.Steps = append(run.Steps, step)
		run.DemandReads += step.DemandReads
		run.PrefetchReads += step.PrefetchReads
		run.PrefetchHits += step.PrefetchHits
		run.Latency += step.Latency
		run.Elements += step.Results
	}
	return run, nil
}
