package circuit

import (
	"bytes"
	"testing"

	"neurospatial/internal/geom"
	"neurospatial/internal/morphology"
)

// tinyParams keeps unit-test circuits fast.
func tinyParams() Params {
	p := DefaultParams()
	p.Neurons = 8
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	return p
}

func TestBuildValidation(t *testing.T) {
	p := tinyParams()
	p.Neurons = 0
	if _, err := Build(p); err == nil {
		t.Error("zero neurons accepted")
	}
	p = tinyParams()
	p.Volume = geom.EmptyAABB()
	if _, err := Build(p); err == nil {
		t.Error("empty volume accepted")
	}
}

func TestBuildDeterministic(t *testing.T) {
	a := MustBuild(tinyParams())
	b := MustBuild(tinyParams())
	if len(a.Elements) != len(b.Elements) {
		t.Fatalf("element counts differ: %d vs %d", len(a.Elements), len(b.Elements))
	}
	for i := range a.Elements {
		if a.Elements[i] != b.Elements[i] {
			t.Fatalf("element %d differs", i)
		}
	}
	p := tinyParams()
	p.Seed = 99
	c := MustBuild(p)
	if len(c.Elements) == len(a.Elements) && c.Elements[0] == a.Elements[0] {
		t.Error("different seeds produced identical circuits")
	}
}

func TestElementProvenance(t *testing.T) {
	c := MustBuild(tinyParams())
	if len(c.Morphologies) != 8 {
		t.Fatalf("morphologies = %d", len(c.Morphologies))
	}
	somas := 0
	for i, e := range c.Elements {
		if int(e.ID) != i {
			t.Fatalf("element %d has ID %d", i, e.ID)
		}
		if e.Neuron < 0 || int(e.Neuron) >= len(c.Morphologies) {
			t.Fatalf("element %d has neuron %d", i, e.Neuron)
		}
		m := c.Morphologies[e.Neuron]
		if e.Branch == -1 {
			somas++
			if e.Shape != m.Soma {
				t.Fatalf("soma element %d shape mismatch", i)
			}
			continue
		}
		if int(e.Branch) >= len(m.Branches) {
			t.Fatalf("element %d has branch %d", i, e.Branch)
		}
		b := m.Branches[e.Branch]
		if int(e.Seg) >= b.NumSegments() {
			t.Fatalf("element %d has segment %d of %d", i, e.Seg, b.NumSegments())
		}
		if e.Shape != b.Segment(int(e.Seg)) {
			t.Fatalf("element %d shape mismatch", i)
		}
	}
	if somas != 8 {
		t.Errorf("somas = %d", somas)
	}
	// Total count matches the morphologies.
	want := 0
	for _, m := range c.Morphologies {
		want += m.NumSegments()
	}
	if len(c.Elements) != want {
		t.Errorf("elements = %d, want %d", len(c.Elements), want)
	}
}

func TestSomasInsideVolume(t *testing.T) {
	c := MustBuild(tinyParams())
	for i, m := range c.Morphologies {
		if !c.Params.Volume.Contains(m.Soma.A) {
			t.Errorf("soma %d at %v outside volume", i, m.Soma.A)
		}
	}
	if !c.Bounds.ContainsBox(c.Params.Volume.Intersect(c.Bounds)) {
		t.Error("bounds inconsistent")
	}
	for _, e := range c.Elements {
		if !c.Bounds.ContainsBox(e.Bounds()) {
			t.Fatalf("element %d escapes circuit bounds", e.ID)
		}
	}
}

func TestDensityScalesWithNeuronCount(t *testing.T) {
	small := MustBuild(tinyParams())
	p := tinyParams()
	p.Neurons = 32
	big := MustBuild(p)
	if big.Density() < small.Density()*2 {
		t.Errorf("density did not scale: %v vs %v", small.Density(), big.Density())
	}
}

func TestElementsInOracle(t *testing.T) {
	c := MustBuild(tinyParams())
	q := geom.BoxAround(geom.V(100, 100, 100), 40)
	ids := c.ElementsIn(q)
	if len(ids) == 0 {
		t.Fatal("central query found nothing")
	}
	seen := make(map[int32]bool)
	for _, id := range ids {
		if seen[id] {
			t.Fatal("duplicate ID in oracle result")
		}
		seen[id] = true
		if !c.Elements[id].Shape.IntersectsBox(q) {
			t.Fatal("oracle returned non-intersecting element")
		}
	}
	for i := range c.Elements {
		if c.Elements[i].Shape.IntersectsBox(q) && !seen[c.Elements[i].ID] {
			t.Fatal("oracle missed an intersecting element")
		}
	}
	// A query far outside finds nothing.
	if got := c.ElementsIn(geom.BoxAround(geom.V(1e6, 1e6, 1e6), 10)); len(got) != 0 {
		t.Errorf("far query found %d elements", len(got))
	}
}

func TestBranchPath(t *testing.T) {
	c := MustBuild(tinyParams())
	m := c.Morphologies[0]
	tips := m.Terminals()
	path, err := c.BranchPath(0, tips[0])
	if err != nil {
		t.Fatal(err)
	}
	if len(path) < 3 {
		t.Fatalf("path too short: %d points", len(path))
	}
	// The path ends at the tip of the terminal branch.
	tipBranch := m.Branches[tips[0]]
	if path[len(path)-1] != tipBranch.Points[len(tipBranch.Points)-1] {
		t.Error("path does not end at the branch tip")
	}
	// The path starts at the stem root (on the soma surface).
	d := path[0].Dist(m.Soma.A)
	if d > m.Soma.Radius*1.01 || d < m.Soma.Radius*0.99 {
		t.Errorf("path start %v not on soma surface (dist %v)", path[0], d)
	}
	// Consecutive points are within the step length.
	for i := 0; i+1 < len(path); i++ {
		if path[i].Dist(path[i+1]) > c.Params.Morphology.StepLength+1e-9 {
			t.Fatal("path step too long")
		}
	}
	if _, err := c.BranchPath(-1, 0); err == nil {
		t.Error("negative neuron accepted")
	}
	if _, err := c.BranchPath(0, 10_000); err == nil {
		t.Error("out-of-range branch accepted")
	}
}

func TestLongestPath(t *testing.T) {
	c := MustBuild(tinyParams())
	n, b, path := c.LongestPath()
	if len(path) < 10 {
		t.Fatalf("longest path only %d points", len(path))
	}
	direct, err := c.BranchPath(n, b)
	if err != nil {
		t.Fatal(err)
	}
	if len(direct) != len(path) {
		t.Error("LongestPath disagrees with BranchPath")
	}
	// No other tip path is longer.
	best := pathLength(path)
	for ni := range c.Morphologies {
		for _, tip := range c.Morphologies[ni].Terminals() {
			p, _ := c.BranchPath(int32(ni), tip)
			if pathLength(p) > best+1e-9 {
				t.Fatal("LongestPath missed a longer path")
			}
		}
	}
}

func TestSerializeRoundTrip(t *testing.T) {
	c := MustBuild(tinyParams())
	var buf bytes.Buffer
	if err := WriteElements(&buf, c.Elements); err != nil {
		t.Fatal(err)
	}
	got, err := ReadElements(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(c.Elements) {
		t.Fatalf("roundtrip count %d, want %d", len(got), len(c.Elements))
	}
	for i := range got {
		if got[i] != c.Elements[i] {
			t.Fatalf("element %d differs after roundtrip", i)
		}
	}
}

func TestReadElementsRejectsGarbage(t *testing.T) {
	if _, err := ReadElements(bytes.NewReader([]byte("not a circuit"))); err == nil {
		t.Error("garbage accepted")
	}
	if _, err := ReadElements(bytes.NewReader(nil)); err == nil {
		t.Error("empty input accepted")
	}
	// Truncated payload.
	c := MustBuild(tinyParams())
	var buf bytes.Buffer
	if err := WriteElements(&buf, c.Elements[:4]); err != nil {
		t.Fatal(err)
	}
	trunc := buf.Bytes()[:buf.Len()-10]
	if _, err := ReadElements(bytes.NewReader(trunc)); err == nil {
		t.Error("truncated input accepted")
	}
}

func TestMorphologyParamsRespected(t *testing.T) {
	p := tinyParams()
	p.Morphology = morphology.DefaultParams()
	p.Morphology.IncludeAxon = false
	p.Morphology.NumDendrites = 2
	c := MustBuild(p)
	for _, m := range c.Morphologies {
		if got := len(m.Children(-1)); got != 2 {
			t.Fatalf("stems = %d, want 2", got)
		}
	}
}

func TestCorticalLayersSkewDensity(t *testing.T) {
	p := tinyParams()
	p.Neurons = 60
	p.Layers = CorticalLayers()
	c := MustBuild(p)
	if len(c.Morphologies) != 60 {
		t.Fatalf("neurons = %d", len(c.Morphologies))
	}
	// Count somas per layer band and compare the packed granular layer (L4)
	// with the nearly cell-free L1.
	layers := CorticalLayers()
	var heightSum float64
	for _, l := range layers {
		heightSum += l.Height
	}
	counts := make([]int, len(layers))
	extent := p.Volume.Size().Y
	for _, m := range c.Morphologies {
		y := m.Soma.A.Y - p.Volume.Min.Y
		y0 := 0.0
		for i, l := range layers {
			h := extent * l.Height / heightSum
			if y >= y0 && y < y0+h {
				counts[i]++
				break
			}
			y0 += h
		}
	}
	if counts[0] >= counts[2] {
		t.Errorf("L1 (%d somas) not sparser than L4 (%d)", counts[0], counts[2])
	}
	total := 0
	for _, n := range counts {
		total += n
	}
	if total < 58 { // allow boundary effects
		t.Errorf("layer counting lost somas: %d", total)
	}
}

func TestLayerValidation(t *testing.T) {
	p := tinyParams()
	p.Layers = []Layer{{Height: -1, Weight: 1}}
	if _, err := Build(p); err == nil {
		t.Error("negative layer height accepted")
	}
	p.Layers = []Layer{{Height: 1, Weight: 0}}
	if _, err := Build(p); err == nil {
		t.Error("zero total weight accepted")
	}
}

func TestLayeredDeterministic(t *testing.T) {
	p := tinyParams()
	p.Layers = CorticalLayers()
	a := MustBuild(p)
	b := MustBuild(p)
	for i := range a.Elements {
		if a.Elements[i] != b.Elements[i] {
			t.Fatal("layered build not deterministic")
		}
	}
}
