// Package circuit builds tissue models: collections of synthetic neuron
// morphologies placed in a volume, flattened into the element arrays the
// spatial indexes and joins operate on.
//
// A circuit plays the role of the Blue Brain Project microcircuits the demo
// uses: §1 of the paper describes models of thousands to a million neurons,
// each neuron contributing thousands of branch segments. Density — the number
// of elements per unit volume — is the key experimental variable (FLAT's
// advantage grows with it), so the builder exposes it directly: the same
// volume can be filled with increasing neuron counts.
package circuit

import (
	"fmt"
	"math"
	"math/rand"

	"neurospatial/internal/geom"
	"neurospatial/internal/morphology"
	"neurospatial/internal/parallel"
)

// Element is one indexable spatial object: a single capsule segment of a
// neuron, tagged with its provenance so results can be mapped back to
// morphology ground truth.
type Element struct {
	// ID is the element's index in Circuit.Elements.
	ID int32
	// Neuron is the index of the owning neuron in Circuit.Morphologies.
	Neuron int32
	// Branch is the Branch.ID within the neuron, or -1 for the soma.
	Branch int32
	// Seg is the segment index within the branch (0 for the soma).
	Seg int32
	// Shape is the capsule geometry.
	Shape geom.Segment
}

// Bounds returns the bounding box of the element's capsule.
func (e *Element) Bounds() geom.AABB { return e.Shape.Bounds() }

// Layer describes one horizontal band of a layered circuit: a fraction of
// the volume's Y extent holding a fraction of the neurons. Cortical tissue is
// organized in such layers, with cell densities differing several-fold
// between them — the "dense and sparse regions" the demo lets the audience
// query (§2.2) and the skew that separates data-oriented from space-oriented
// partitioning (§4.1).
type Layer struct {
	// Height is the layer's share of the volume's Y extent; heights are
	// normalized, so only ratios matter.
	Height float64
	// Weight is the layer's share of the neurons; weights are normalized.
	Weight float64
}

// CorticalLayers returns a five-layer profile with density contrasts in the
// range reported for rodent neocortex: thin, packed granular layers between
// sparse ones.
func CorticalLayers() []Layer {
	return []Layer{
		{Height: 0.12, Weight: 0.02}, // L1: nearly cell-free
		{Height: 0.20, Weight: 0.30}, // L2/3
		{Height: 0.12, Weight: 0.28}, // L4: packed granular
		{Height: 0.26, Weight: 0.25}, // L5
		{Height: 0.30, Weight: 0.15}, // L6
	}
}

// Params configures a circuit build.
type Params struct {
	// Volume is the tissue region somas are placed in. Branches may extend
	// beyond it, as they do at the boundaries of real microcircuits.
	Volume geom.AABB
	// Neurons is the number of cells to place.
	Neurons int
	// Morphology configures the per-neuron generator.
	Morphology morphology.Params
	// Layers optionally stratifies the volume along Y; nil places somas
	// uniformly. Use CorticalLayers for the realistic skewed profile.
	Layers []Layer
	// Seed makes the build deterministic; neuron i uses sub-seed
	// Seed*1e9 + i.
	Seed int64
	// Workers parallelizes morphology generation across neurons. Every
	// neuron draws from its own sub-seeded generator, so the built circuit
	// is bit-identical for any worker count. 0 or 1 generates serially;
	// values > 1 use that many workers; negative values use one worker per
	// CPU.
	Workers int
}

// DefaultParams returns a small but non-trivial circuit: 64 neurons in a
// 400 µm cube, ≈30k segments.
func DefaultParams() Params {
	return Params{
		Volume:     geom.Box(geom.V(0, 0, 0), geom.V(400, 400, 400)),
		Neurons:    64,
		Morphology: morphology.DefaultParams(),
		Seed:       1,
	}
}

// Circuit is a built tissue model.
type Circuit struct {
	// Params echoes the build configuration.
	Params Params
	// Morphologies holds every neuron, indexed by Element.Neuron.
	Morphologies []*morphology.Morphology
	// Elements is the flattened dataset all indexes consume.
	Elements []Element
	// Bounds is the union of all element bounds (generally larger than
	// Params.Volume because branches overhang).
	Bounds geom.AABB
}

// Build constructs a circuit. Somas are placed on a jittered grid so cell
// bodies are spread through the volume the way cortical somas are, and every
// neuron gets an independent deterministic morphology.
func Build(p Params) (*Circuit, error) {
	if p.Neurons <= 0 {
		return nil, fmt.Errorf("circuit: need at least one neuron, got %d", p.Neurons)
	}
	if p.Volume.IsEmpty() {
		return nil, fmt.Errorf("circuit: empty volume %v", p.Volume)
	}
	c := &Circuit{Params: p, Bounds: geom.EmptyAABB()}
	rng := rand.New(rand.NewSource(p.Seed))

	positions, err := layeredPositions(rng, p)
	if err != nil {
		return nil, err
	}
	// Morphology generation is the expensive part of a build and every
	// neuron is independently sub-seeded, so it parallelizes cleanly; the
	// flattening below stays serial because element IDs encode the append
	// order.
	workers := 1
	if p.Workers != 0 && p.Workers != 1 {
		workers = parallel.Workers(p.Workers)
	}
	c.Morphologies = parallel.Map(workers, p.Neurons, func(_, i int) *morphology.Morphology {
		return morphology.Generate(positions[i], p.Morphology, p.Seed*1_000_000_007+int64(i))
	})
	for i, m := range c.Morphologies {
		c.appendElements(int32(i), m)
	}
	return c, nil
}

// MustBuild is Build for static configurations that cannot fail.
func MustBuild(p Params) *Circuit {
	c, err := Build(p)
	if err != nil {
		panic(err)
	}
	return c
}

// appendElements flattens one morphology into the element array.
func (c *Circuit) appendElements(neuron int32, m *morphology.Morphology) {
	add := func(branch, seg int32, s geom.Segment) {
		e := Element{
			ID:     int32(len(c.Elements)),
			Neuron: neuron,
			Branch: branch,
			Seg:    seg,
			Shape:  s,
		}
		c.Elements = append(c.Elements, e)
		c.Bounds = c.Bounds.Union(s.Bounds())
	}
	add(-1, 0, m.Soma)
	for _, b := range m.Branches {
		for i := 0; i < b.NumSegments(); i++ {
			add(int32(b.ID), int32(i), b.Segment(i))
		}
	}
}

// Density returns the number of elements per unit volume of the soma
// placement region.
func (c *Circuit) Density() float64 {
	return float64(len(c.Elements)) / c.Params.Volume.Volume()
}

// ElementsIn returns the IDs of all elements whose capsules intersect the
// query box, by brute force. It is the oracle the index tests compare
// against.
func (c *Circuit) ElementsIn(q geom.AABB) []int32 {
	var out []int32
	for i := range c.Elements {
		if c.Elements[i].Shape.IntersectsBox(q) {
			out = append(out, c.Elements[i].ID)
		}
	}
	return out
}

// BranchPath returns the polyline running from the first point of the stem
// ancestor of branch (neuron, branchID) out to that branch's tip. It is the
// ground-truth trajectory the SCOUT walkthroughs follow.
func (c *Circuit) BranchPath(neuron int32, branchID int) ([]geom.Vec, error) {
	if neuron < 0 || int(neuron) >= len(c.Morphologies) {
		return nil, fmt.Errorf("circuit: neuron %d out of range", neuron)
	}
	m := c.Morphologies[neuron]
	if branchID < 0 || branchID >= len(m.Branches) {
		return nil, fmt.Errorf("circuit: branch %d out of range", branchID)
	}
	ids := m.PathToRoot(branchID)
	// PathToRoot lists tip→stem; walk it in reverse to go stem→tip.
	var path []geom.Vec
	for i := len(ids) - 1; i >= 0; i-- {
		b := m.Branches[ids[i]]
		pts := b.Points
		if len(path) > 0 {
			pts = pts[1:] // first point duplicates the bifurcation point
		}
		path = append(path, pts...)
	}
	return path, nil
}

// LongestPath returns the (neuron, branch) pair whose stem-to-tip path is the
// longest in the circuit, along with the path itself. Experiment drivers use
// it to script interesting walkthroughs.
func (c *Circuit) LongestPath() (neuron int32, branch int, path []geom.Vec) {
	best := -1.0
	for ni, m := range c.Morphologies {
		for _, tip := range m.Terminals() {
			p, err := c.BranchPath(int32(ni), tip)
			if err != nil {
				continue
			}
			l := pathLength(p)
			if l > best {
				best = l
				neuron, branch, path = int32(ni), tip, p
			}
		}
	}
	return neuron, branch, path
}

func pathLength(p []geom.Vec) float64 {
	var l float64
	for i := 0; i+1 < len(p); i++ {
		l += p[i].Dist(p[i+1])
	}
	return l
}

// layeredPositions distributes somas across the configured layers (or the
// whole volume when no layers are set).
func layeredPositions(rng *rand.Rand, p Params) ([]geom.Vec, error) {
	if len(p.Layers) == 0 {
		return somaPositions(rng, p.Volume, p.Neurons), nil
	}
	var heightSum, weightSum float64
	for _, l := range p.Layers {
		if l.Height <= 0 || l.Weight < 0 {
			return nil, fmt.Errorf("circuit: invalid layer %+v", l)
		}
		heightSum += l.Height
		weightSum += l.Weight
	}
	if weightSum <= 0 {
		return nil, fmt.Errorf("circuit: layer weights sum to zero")
	}
	var out []geom.Vec
	y0 := p.Volume.Min.Y
	extent := p.Volume.Size().Y
	remaining := p.Neurons
	for i, l := range p.Layers {
		h := extent * l.Height / heightSum
		n := int(math.Round(float64(p.Neurons) * l.Weight / weightSum))
		if i == len(p.Layers)-1 {
			n = remaining // absorb rounding
		}
		if n > remaining {
			n = remaining
		}
		if n > 0 {
			band := p.Volume
			band.Min.Y = y0
			band.Max.Y = y0 + h
			out = append(out, somaPositions(rng, band, n)...)
			remaining -= n
		}
		y0 += h
	}
	// Rounding may leave a remainder; place it in the heaviest layer.
	if remaining > 0 {
		heaviest := 0
		for i, l := range p.Layers {
			if l.Weight > p.Layers[heaviest].Weight {
				heaviest = i
			}
		}
		y0 = p.Volume.Min.Y
		for i := 0; i < heaviest; i++ {
			y0 += extent * p.Layers[i].Height / heightSum
		}
		band := p.Volume
		band.Min.Y = y0
		band.Max.Y = y0 + extent*p.Layers[heaviest].Height/heightSum
		out = append(out, somaPositions(rng, band, remaining)...)
	}
	// Deterministic shuffle so neuron index does not encode the layer.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out, nil
}

// somaPositions places n somas on a jittered grid inside the volume. The grid
// spreads cells evenly; the jitter removes the artificial regularity.
func somaPositions(rng *rand.Rand, vol geom.AABB, n int) []geom.Vec {
	// Choose grid dimensions with cells as cubic as possible.
	size := vol.Size()
	k := math.Cbrt(float64(n) / math.Max(size.X*size.Y*size.Z, 1e-12))
	nx := maxInt(1, int(math.Round(size.X*k)))
	ny := maxInt(1, int(math.Round(size.Y*k)))
	nz := maxInt(1, int(math.Round(size.Z*k)))
	for nx*ny*nz < n {
		// Grow the axis with the largest per-cell extent.
		cx, cy, cz := size.X/float64(nx), size.Y/float64(ny), size.Z/float64(nz)
		switch {
		case cx >= cy && cx >= cz:
			nx++
		case cy >= cz:
			ny++
		default:
			nz++
		}
	}
	cell := geom.V(size.X/float64(nx), size.Y/float64(ny), size.Z/float64(nz))
	out := make([]geom.Vec, 0, n)
	for iz := 0; iz < nz && len(out) < n; iz++ {
		for iy := 0; iy < ny && len(out) < n; iy++ {
			for ix := 0; ix < nx && len(out) < n; ix++ {
				p := geom.Vec{
					X: vol.Min.X + (float64(ix)+0.25+rng.Float64()*0.5)*cell.X,
					Y: vol.Min.Y + (float64(iy)+0.25+rng.Float64()*0.5)*cell.Y,
					Z: vol.Min.Z + (float64(iz)+0.25+rng.Float64()*0.5)*cell.Z,
				}
				out = append(out, p)
			}
		}
	}
	// Deterministic shuffle so truncating the last grid layer does not bias
	// soma positions toward low Z.
	rng.Shuffle(len(out), func(i, j int) { out[i], out[j] = out[j], out[i] })
	return out
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
