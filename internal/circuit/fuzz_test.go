package circuit

import (
	"bytes"
	"math"
	"testing"

	"neurospatial/internal/geom"
)

// elementsEquivalent compares element slices field-by-field; float fields
// are compared by bit pattern so NaN payloads and signed zeros round-trip
// honestly.
func elementsEquivalent(a, b []Element) bool {
	if len(a) != len(b) {
		return false
	}
	sameF := func(x, y float64) bool { return math.Float64bits(x) == math.Float64bits(y) }
	sameV := func(x, y geom.Vec) bool {
		return sameF(x.X, y.X) && sameF(x.Y, y.Y) && sameF(x.Z, y.Z)
	}
	for i := range a {
		if a[i].ID != b[i].ID || a[i].Neuron != b[i].Neuron ||
			a[i].Branch != b[i].Branch || a[i].Seg != b[i].Seg {
			return false
		}
		if !sameV(a[i].Shape.A, b[i].Shape.A) || !sameV(a[i].Shape.B, b[i].Shape.B) ||
			!sameF(a[i].Shape.Radius, b[i].Shape.Radius) {
			return false
		}
	}
	return true
}

// FuzzElementsRoundTrip serializes fuzzer-built element arrays and asserts
// the binary format round-trips every field exactly — including NaN, ±Inf
// and subnormal geometry the generator would never produce but a corrupt or
// foreign file could. Seed corpus: testdata/fuzz.
func FuzzElementsRoundTrip(f *testing.F) {
	f.Add(int32(0), int32(-1), int32(0), 0.0, 0.0, 0.0, 1.0, 1.0, 1.0, 0.5, uint8(1))
	f.Add(int32(7), int32(3), int32(9), -10.5, 200.25, 3e5, math.Inf(1), math.NaN(), -0.0, 1e-308, uint8(5))
	f.Add(int32(-2147483648), int32(2147483647), int32(-1), 1.5, 2.5, 3.5, 4.5, 5.5, 6.5, 7.5, uint8(200))
	f.Fuzz(func(t *testing.T, neuron, branch, seg int32,
		ax, ay, az, bx, by, bz, radius float64, countRaw uint8) {

		count := int(countRaw)%16 + 1
		elems := make([]Element, count)
		for i := range elems {
			elems[i] = Element{
				// ReadElements reassigns IDs sequentially, so build them
				// that way for a comparable round trip.
				ID:     int32(i),
				Neuron: neuron + int32(i),
				Branch: branch,
				Seg:    seg ^ int32(i),
				Shape: geom.Segment{
					A:      geom.V(ax+float64(i), ay, az),
					B:      geom.V(bx, by-float64(i), bz),
					Radius: radius,
				},
			}
		}
		var buf bytes.Buffer
		if err := WriteElements(&buf, elems); err != nil {
			t.Fatalf("write: %v", err)
		}
		got, err := ReadElements(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("read back: %v", err)
		}
		if !elementsEquivalent(elems, got) {
			t.Fatalf("round trip diverged: wrote %d elements, read %d", len(elems), len(got))
		}
	})
}

// FuzzReadElementsArbitraryBytes feeds raw bytes to the deserializer: it
// must reject or accept without panicking or over-allocating, and anything
// it accepts must re-serialize to a file it reads back identically (the
// parser and printer agree on the format).
func FuzzReadElementsArbitraryBytes(f *testing.F) {
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x43, 0x53, 0x4e, 0, 0, 0, 0})             // magic + zero count
	f.Add([]byte{0x31, 0x43, 0x53, 0x4e, 0xff, 0xff, 0xff, 0xff}) // huge count, no data
	// One well-formed single-element file.
	{
		var buf bytes.Buffer
		_ = WriteElements(&buf, []Element{{
			Neuron: 1, Branch: 2, Seg: 3,
			Shape: geom.Segment{A: geom.V(1, 2, 3), B: geom.V(4, 5, 6), Radius: 7},
		}})
		f.Add(buf.Bytes())
	}
	f.Fuzz(func(t *testing.T, data []byte) {
		elems, err := ReadElements(bytes.NewReader(data))
		if err != nil {
			return // rejected: fine, as long as it did not panic
		}
		var buf bytes.Buffer
		if err := WriteElements(&buf, elems); err != nil {
			t.Fatalf("re-serialize accepted input: %v", err)
		}
		again, err := ReadElements(bytes.NewReader(buf.Bytes()))
		if err != nil {
			t.Fatalf("re-read own output: %v", err)
		}
		if !elementsEquivalent(elems, again) {
			t.Fatal("write(read(data)) is not a fixed point")
		}
	})
}
