package circuit

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"

	"neurospatial/internal/geom"
)

// Binary circuit format, little endian:
//
//	magic   uint32  'NSC1'
//	nElems  uint32
//	elements: per element
//	    neuron  int32
//	    branch  int32
//	    seg     int32
//	    ax, ay, az, bx, by, bz, radius  float64
//
// Only the flattened element array is serialized; morphological ground truth
// is regenerated from the deterministic seed when needed, which keeps files
// compact enough for the million-element experiment datasets.

const magic uint32 = 0x4e534331 // "NSC1"

// WriteElements serializes the element array to w.
func WriteElements(w io.Writer, elems []Element) error {
	bw := bufio.NewWriterSize(w, 1<<20)
	var hdr [8]byte
	binary.LittleEndian.PutUint32(hdr[0:], magic)
	binary.LittleEndian.PutUint32(hdr[4:], uint32(len(elems)))
	if _, err := bw.Write(hdr[:]); err != nil {
		return fmt.Errorf("circuit: writing header: %w", err)
	}
	var buf [12 + 7*8]byte
	for i := range elems {
		e := &elems[i]
		binary.LittleEndian.PutUint32(buf[0:], uint32(e.Neuron))
		binary.LittleEndian.PutUint32(buf[4:], uint32(e.Branch))
		binary.LittleEndian.PutUint32(buf[8:], uint32(e.Seg))
		putF64 := func(off int, v float64) {
			binary.LittleEndian.PutUint64(buf[off:], math.Float64bits(v))
		}
		putF64(12, e.Shape.A.X)
		putF64(20, e.Shape.A.Y)
		putF64(28, e.Shape.A.Z)
		putF64(36, e.Shape.B.X)
		putF64(44, e.Shape.B.Y)
		putF64(52, e.Shape.B.Z)
		putF64(60, e.Shape.Radius)
		if _, err := bw.Write(buf[:]); err != nil {
			return fmt.Errorf("circuit: writing element %d: %w", i, err)
		}
	}
	return bw.Flush()
}

// ReadElements deserializes an element array written by WriteElements.
// Element IDs are reassigned sequentially.
func ReadElements(r io.Reader) ([]Element, error) {
	br := bufio.NewReaderSize(r, 1<<20)
	var hdr [8]byte
	if _, err := io.ReadFull(br, hdr[:]); err != nil {
		return nil, fmt.Errorf("circuit: reading header: %w", err)
	}
	if got := binary.LittleEndian.Uint32(hdr[0:]); got != magic {
		return nil, fmt.Errorf("circuit: bad magic %#x", got)
	}
	n := binary.LittleEndian.Uint32(hdr[4:])
	// The count is untrusted input: cap the pre-allocation so a corrupt
	// header cannot demand gigabytes up front. The slice still grows to the
	// real element count; a short file fails with an honest read error on
	// the first missing element.
	prealloc := n
	if prealloc > 1<<16 {
		prealloc = 1 << 16
	}
	elems := make([]Element, 0, prealloc)
	var buf [12 + 7*8]byte
	for i := uint32(0); i < n; i++ {
		if _, err := io.ReadFull(br, buf[:]); err != nil {
			return nil, fmt.Errorf("circuit: reading element %d: %w", i, err)
		}
		getF64 := func(off int) float64 {
			return math.Float64frombits(binary.LittleEndian.Uint64(buf[off:]))
		}
		e := Element{
			ID:     int32(i),
			Neuron: int32(binary.LittleEndian.Uint32(buf[0:])),
			Branch: int32(binary.LittleEndian.Uint32(buf[4:])),
			Seg:    int32(binary.LittleEndian.Uint32(buf[8:])),
			Shape: geom.Segment{
				A:      geom.V(getF64(12), getF64(20), getF64(28)),
				B:      geom.V(getF64(36), getF64(44), getF64(52)),
				Radius: getF64(60),
			},
		}
		elems = append(elems, e)
	}
	return elems, nil
}
