package rtree

import (
	"neurospatial/internal/geom"
	"neurospatial/internal/parallel"
)

// BatchQuery executes many range queries concurrently over the shared worker
// pool and returns the per-query statistics, indexed like qs. The tree must
// not be mutated while a batch runs; queries are read-only and share the
// structure freely.
//
// Determinism: visit receives exactly the (query, item) pairs a serial loop
// of Query calls would produce, in the same order — each query's hits are
// buffered and delivered in query order after the pool drains. visit runs on
// the calling goroutine only; a nil visit skips result buffering entirely
// (stats only). Like every Workers knob in the repository, workers 0 or 1
// executes serially on the calling goroutine, values > 1 use that many
// workers, and negative values use one worker per CPU.
func (t *Tree) BatchQuery(qs []geom.AABB, workers int, visit func(q int, it Item)) []QueryStats {
	stats := make([]QueryStats, len(qs))
	w := 1
	if workers != 0 && workers != 1 {
		w = parallel.Workers(workers)
	}
	if w <= 1 || len(qs) <= 1 {
		for qi := range qs {
			qi := qi
			stats[qi] = t.Query(qs[qi], func(it Item) {
				if visit != nil {
					visit(qi, it)
				}
			})
		}
		return stats
	}
	if visit == nil {
		parallel.ForEach(w, len(qs), func(_, qi int) {
			stats[qi] = t.Query(qs[qi], func(Item) {})
		})
		return stats
	}
	hits := make([][]Item, len(qs))
	parallel.ForEach(w, len(qs), func(_, qi int) {
		stats[qi] = t.Query(qs[qi], func(it Item) {
			hits[qi] = append(hits[qi], it)
		})
	})
	for qi := range hits {
		for _, it := range hits[qi] {
			visit(qi, it)
		}
	}
	return stats
}

// Aggregate sums per-query statistics into batch totals; NodesPerLevel is
// summed element-wise.
func Aggregate(sts []QueryStats) QueryStats {
	var out QueryStats
	for i := range sts {
		for l, c := range sts[i].NodesPerLevel {
			for len(out.NodesPerLevel) <= l {
				out.NodesPerLevel = append(out.NodesPerLevel, 0)
			}
			out.NodesPerLevel[l] += c
		}
		out.EntriesTested += sts[i].EntriesTested
		out.Results += sts[i].Results
	}
	return out
}
