package rtree

import (
	"neurospatial/internal/geom"
	"neurospatial/internal/parallel"
)

// BatchQuery executes many range queries concurrently over the shared worker
// pool and returns the per-query statistics, indexed like qs. The tree must
// not be mutated while a batch runs; queries are read-only and share the
// structure freely.
//
// It is a thin compatibility wrapper over parallel.Batch, the generic
// deterministic batch executor every index shares: visit receives exactly
// the (query, item) pairs a serial loop of Query calls would produce, in the
// same order, for any worker count, and the usual Workers semantics apply
// (0 or 1 serial, > 1 that many workers, negative one per CPU).
func (t *Tree) BatchQuery(qs []geom.AABB, workers int, visit func(q int, it Item)) []QueryStats {
	return parallel.Batch(workers, len(qs), func(qi int, emit func(Item)) QueryStats {
		return t.Query(qs[qi], emit)
	}, visit)
}

// Aggregate sums per-query statistics into batch totals; the per-level
// breakdown is summed element-wise. Allocation-free: the level counters are
// inline arrays on both sides.
func Aggregate(sts []QueryStats) QueryStats {
	var out QueryStats
	for i := range sts {
		for l, c := range sts[i].LevelNodes[:sts[i].Levels] {
			out.LevelNodes[l] += c
		}
		if sts[i].Levels > out.Levels {
			out.Levels = sts[i].Levels
		}
		out.EntriesTested += sts[i].EntriesTested
		out.Results += sts[i].Results
	}
	return out
}
