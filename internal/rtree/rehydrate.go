package rtree

import "fmt"

// FromLeafRuns reconstructs a bulk-loaded tree from its recorded leaf
// packing: items holds every indexed item in leaf pre-order, and runLens
// gives the length of each consecutive leaf run. Packing the given runs with
// the same level-by-level build STR uses yields a tree identical to the one
// the runs were recorded from — the durable-snapshot path relies on this to
// recover an R-tree without re-sorting anything.
func FromLeafRuns(items []Item, runLens []int32, fanout int) (*Tree, error) {
	t, err := New(fanout)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		if len(runLens) != 0 {
			return nil, fmt.Errorf("rtree: %d leaf runs over zero items", len(runLens))
		}
		return t, nil
	}
	leaves := make([]*node, 0, len(runLens))
	off := 0
	for i, rl := range runLens {
		n := int(rl)
		if n <= 0 || n > t.fanout || off+n > len(items) {
			return nil, fmt.Errorf("rtree: leaf run %d has invalid length %d (fanout %d, %d items left)",
				i, n, t.fanout, len(items)-off)
		}
		leaf := &node{level: 0, items: append([]Item(nil), items[off:off+n]...)}
		leaf.recomputeBox()
		leaves = append(leaves, leaf)
		off += n
	}
	if off != len(items) {
		return nil, fmt.Errorf("rtree: leaf runs cover %d of %d items", off, len(items))
	}
	t.size = len(items)
	t.root = buildUp(leaves, t.fanout)
	return t, nil
}

// LeafRuns records the tree's leaf packing in pre-order: the items of every
// leaf concatenated, plus each leaf's length. It is the inverse of
// FromLeafRuns for any tree built by consecutive-run packing (STR or a prior
// FromLeafRuns).
func (t *Tree) LeafRuns() (items []Item, runLens []int32) {
	root, ok := t.Root()
	if !ok || t.size == 0 {
		return nil, nil
	}
	items = make([]Item, 0, t.size)
	var walk func(v NodeView)
	walk = func(v NodeView) {
		if v.IsLeaf() {
			items = append(items, v.Items()...)
			runLens = append(runLens, int32(len(v.Items())))
			return
		}
		for i := 0; i < v.NumChildren(); i++ {
			walk(v.Child(i))
		}
	}
	walk(root)
	return items, runLens
}
