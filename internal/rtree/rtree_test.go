package rtree

import (
	"math"
	"math/rand"
	"sort"
	"testing"
	"testing/quick"

	"neurospatial/internal/geom"
)

// randItems produces n random small boxes in a cube of the given extent.
func randItems(rng *rand.Rand, n int, extent float64) []Item {
	items := make([]Item, n)
	for i := range items {
		c := geom.V(rng.Float64()*extent, rng.Float64()*extent, rng.Float64()*extent)
		half := rng.Float64()*extent/100 + extent/1000
		items[i] = Item{Box: geom.BoxAround(c, half), ID: int32(i)}
	}
	return items
}

// bruteQuery is the oracle for range queries.
func bruteQuery(items []Item, q geom.AABB) map[int32]bool {
	out := make(map[int32]bool)
	for _, it := range items {
		if it.Box.Intersects(q) {
			out[it.ID] = true
		}
	}
	return out
}

func collectIDs(t *Tree, q geom.AABB) map[int32]bool {
	got := make(map[int32]bool)
	t.Query(q, func(it Item) {
		if got[it.ID] {
			panic("duplicate result")
		}
		got[it.ID] = true
	})
	return got
}

func sameIDSet(t *testing.T, got, want map[int32]bool) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("result size %d, want %d", len(got), len(want))
	}
	for id := range want {
		if !got[id] {
			t.Fatalf("missing ID %d", id)
		}
	}
}

func TestNewValidation(t *testing.T) {
	if _, err := New(3); err == nil {
		t.Error("fanout 3 accepted")
	}
	tr, err := New(0)
	if err != nil || tr.Fanout() != DefaultFanout {
		t.Errorf("default fanout: %v %d", err, tr.Fanout())
	}
	if tr.Height() != 0 || tr.Size() != 0 {
		t.Error("empty tree metadata wrong")
	}
}

func TestSTREqualsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	items := randItems(rng, 3000, 100)
	tr, err := STR(items, 16)
	if err != nil {
		t.Fatal(err)
	}
	if tr.Size() != 3000 {
		t.Fatalf("size = %d", tr.Size())
	}
	if n, err := tr.CheckInvariants(); err != nil || n != 3000 {
		t.Fatalf("invariants: %v (n=%d)", err, n)
	}
	for i := 0; i < 50; i++ {
		q := geom.BoxAround(geom.V(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100),
			rng.Float64()*15+1)
		sameIDSet(t, collectIDs(tr, q), bruteQuery(items, q))
	}
	// Whole-space query returns everything.
	all := collectIDs(tr, tr.Bounds())
	if len(all) != 3000 {
		t.Errorf("full query returned %d", len(all))
	}
}

func TestSTRLeavesAreFull(t *testing.T) {
	rng := rand.New(rand.NewSource(32))
	items := randItems(rng, 1000, 50)
	tr, _ := STR(items, 10)
	var leafSizes []int
	tr.WalkLeaves(func(_ geom.AABB, items []Item) {
		leafSizes = append(leafSizes, len(items))
	})
	total := 0
	full := 0
	for _, s := range leafSizes {
		total += s
		if s == 10 {
			full++
		}
	}
	if total != 1000 {
		t.Fatalf("leaves hold %d items", total)
	}
	// STR packs: all but a few boundary leaves are full.
	if float64(full) < 0.8*float64(len(leafSizes)) {
		t.Errorf("only %d/%d leaves full", full, len(leafSizes))
	}
}

func TestInsertEqualsBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	items := randItems(rng, 2000, 100)
	tr, _ := New(8)
	for _, it := range items {
		tr.Insert(it)
	}
	if tr.Size() != 2000 {
		t.Fatalf("size = %d", tr.Size())
	}
	if n, err := tr.CheckInvariants(); err != nil || n != 2000 {
		t.Fatalf("invariants: %v (n=%d)", err, n)
	}
	for i := 0; i < 50; i++ {
		q := geom.BoxAround(geom.V(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100),
			rng.Float64()*10+1)
		sameIDSet(t, collectIDs(tr, q), bruteQuery(items, q))
	}
}

func TestDelete(t *testing.T) {
	rng := rand.New(rand.NewSource(34))
	items := randItems(rng, 800, 60)
	tr, _ := STR(items, 8)
	// Delete a random half.
	perm := rng.Perm(len(items))
	deleted := make(map[int32]bool)
	for _, i := range perm[:400] {
		if !tr.Delete(items[i]) {
			t.Fatalf("Delete(%d) failed", items[i].ID)
		}
		deleted[items[i].ID] = true
	}
	if tr.Size() != 400 {
		t.Fatalf("size after deletes = %d", tr.Size())
	}
	if n, err := tr.CheckInvariants(); err != nil || n != 400 {
		t.Fatalf("invariants after deletes: %v (n=%d)", err, n)
	}
	// Deleting again fails.
	if tr.Delete(items[perm[0]]) {
		t.Error("double delete succeeded")
	}
	// Remaining items still queryable.
	var remaining []Item
	for _, it := range items {
		if !deleted[it.ID] {
			remaining = append(remaining, it)
		}
	}
	for i := 0; i < 30; i++ {
		q := geom.BoxAround(geom.V(rng.Float64()*60, rng.Float64()*60, rng.Float64()*60),
			rng.Float64()*8+1)
		sameIDSet(t, collectIDs(tr, q), bruteQuery(remaining, q))
	}
	// Delete everything.
	for _, it := range remaining {
		if !tr.Delete(it) {
			t.Fatalf("final Delete(%d) failed", it.ID)
		}
	}
	if tr.Size() != 0 || tr.Height() != 0 {
		t.Errorf("tree not empty: size=%d height=%d", tr.Size(), tr.Height())
	}
}

func TestMixedInsertDeleteRandomized(t *testing.T) {
	rng := rand.New(rand.NewSource(35))
	tr, _ := New(6)
	live := make(map[int32]Item)
	nextID := int32(0)
	for step := 0; step < 3000; step++ {
		if len(live) == 0 || rng.Intn(3) != 0 {
			it := Item{
				Box: geom.BoxAround(geom.V(rng.Float64()*40, rng.Float64()*40, rng.Float64()*40),
					rng.Float64()+0.05),
				ID: nextID,
			}
			nextID++
			tr.Insert(it)
			live[it.ID] = it
		} else {
			// Delete a random live item.
			var victim Item
			for _, it := range live {
				victim = it
				break
			}
			if !tr.Delete(victim) {
				t.Fatalf("step %d: delete failed", step)
			}
			delete(live, victim.ID)
		}
		if step%500 == 0 {
			if n, err := tr.CheckInvariants(); err != nil || n != len(live) {
				t.Fatalf("step %d: invariants: %v (n=%d live=%d)", step, err, n, len(live))
			}
		}
	}
	if tr.Size() != len(live) {
		t.Fatalf("size=%d live=%d", tr.Size(), len(live))
	}
	q := geom.BoxAround(geom.V(20, 20, 20), 10)
	want := make(map[int32]bool)
	for _, it := range live {
		if it.Box.Intersects(q) {
			want[it.ID] = true
		}
	}
	sameIDSet(t, collectIDs(tr, q), want)
}

func TestSeedInRange(t *testing.T) {
	rng := rand.New(rand.NewSource(36))
	items := randItems(rng, 2000, 100)
	tr, _ := STR(items, 16)
	for i := 0; i < 100; i++ {
		q := geom.BoxAround(geom.V(rng.Float64()*100, rng.Float64()*100, rng.Float64()*100),
			rng.Float64()*10+0.5)
		want := bruteQuery(items, q)
		it, stats, ok := tr.SeedInRange(q)
		if ok != (len(want) > 0) {
			t.Fatalf("seed ok=%v but %d matches exist", ok, len(want))
		}
		if ok {
			if !want[it.ID] {
				t.Fatalf("seed returned non-matching item %d", it.ID)
			}
			if stats.NodeAccesses() == 0 {
				t.Fatal("seed reported no node accesses")
			}
		}
	}
	// Empty tree.
	empty, _ := New(8)
	if _, _, ok := empty.SeedInRange(geom.BoxAround(geom.V(0, 0, 0), 1)); ok {
		t.Error("seed found item in empty tree")
	}
}

// Seed queries in dense regions should touch about one node per level —
// the property FLAT's first phase relies on.
func TestSeedCheapInDenseRegion(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	items := randItems(rng, 5000, 50)
	tr, _ := STR(items, 16)
	q := geom.BoxAround(geom.V(25, 25, 25), 10) // dense center: thousands match
	_, stats, ok := tr.SeedInRange(q)
	if !ok {
		t.Fatal("no seed found in dense region")
	}
	if stats.NodeAccesses() > int64(3*tr.Height()) {
		t.Errorf("seed touched %d nodes for height %d", stats.NodeAccesses(), tr.Height())
	}
}

func TestKNN(t *testing.T) {
	rng := rand.New(rand.NewSource(38))
	items := randItems(rng, 1500, 80)
	tr, _ := STR(items, 16)
	for trial := 0; trial < 20; trial++ {
		p := geom.V(rng.Float64()*80, rng.Float64()*80, rng.Float64()*80)
		k := 1 + rng.Intn(20)
		got, _ := tr.KNN(p, k)
		if len(got) != k {
			t.Fatalf("KNN returned %d of %d", len(got), k)
		}
		// Oracle: sort all items by box distance.
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = it.Box.Dist2Point(p)
		}
		sort.Float64s(dists)
		for i, it := range got {
			d := it.Box.Dist2Point(p)
			if d < dists[i]-1e-12 || d > dists[i]+1e-12 {
				// Allow ties: distance must equal the i-th oracle distance.
				t.Fatalf("KNN[%d] dist %v, oracle %v", i, d, dists[i])
			}
			if i > 0 && d+1e-12 < got[i-1].Box.Dist2Point(p) {
				t.Fatal("KNN not sorted")
			}
		}
	}
	if got, _ := tr.KNN(geom.V(0, 0, 0), 0); got != nil {
		t.Error("KNN(0) returned items")
	}
	if got, _ := tr.KNN(geom.V(0, 0, 0), 5000); len(got) != 1500 {
		t.Errorf("KNN(k>n) returned %d", len(got))
	}
}

func TestQueryStatsPerLevel(t *testing.T) {
	rng := rand.New(rand.NewSource(39))
	items := randItems(rng, 4000, 100)
	tr, _ := STR(items, 8)
	q := geom.BoxAround(geom.V(50, 50, 50), 20)
	stats := tr.Query(q, func(Item) {})
	if stats.Levels != tr.Height() {
		t.Fatalf("levels in stats = %d, height = %d", stats.Levels, tr.Height())
	}
	// Exactly one root access.
	if stats.LevelNodes[tr.Height()-1] != 1 {
		t.Errorf("root accesses = %d", stats.LevelNodes[tr.Height()-1])
	}
	// Leaf accesses dominate.
	if stats.LevelNodes[0] == 0 {
		t.Error("no leaf accesses for a central query")
	}
	if stats.Results == 0 || stats.EntriesTested < stats.Results {
		t.Errorf("results=%d tested=%d", stats.Results, stats.EntriesTested)
	}
	if stats.NodeAccesses() <= int64(tr.Height()) {
		t.Error("central query should touch multiple nodes per level")
	}
}

func TestPackSTR(t *testing.T) {
	rng := rand.New(rand.NewSource(40))
	items := randItems(rng, 777, 60)
	tiles := PackSTR(items, 16)
	total := 0
	seen := make(map[int32]bool)
	for _, tile := range tiles {
		if len(tile) == 0 || len(tile) > 16 {
			t.Fatalf("tile size %d", len(tile))
		}
		total += len(tile)
		for _, it := range tile {
			if seen[it.ID] {
				t.Fatal("item in two tiles")
			}
			seen[it.ID] = true
		}
	}
	if total != 777 {
		t.Fatalf("tiles cover %d items", total)
	}
	if PackSTR(nil, 16) != nil {
		t.Error("PackSTR(nil) != nil")
	}
}

func TestNodeView(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	items := randItems(rng, 300, 30)
	tr, _ := STR(items, 8)
	root, ok := tr.Root()
	if !ok {
		t.Fatal("no root view")
	}
	count := 0
	var walk func(v NodeView)
	walk = func(v NodeView) {
		if v.IsLeaf() {
			count += len(v.Items())
			if v.Level() != 0 {
				t.Fatal("leaf at nonzero level")
			}
			return
		}
		for i := 0; i < v.NumChildren(); i++ {
			c := v.Child(i)
			if !v.Box().ContainsBox(c.Box()) {
				t.Fatal("child escapes parent in view")
			}
			walk(c)
		}
	}
	walk(root)
	if count != 300 {
		t.Fatalf("view walk found %d items", count)
	}
	empty, _ := New(8)
	if _, ok := empty.Root(); ok {
		t.Error("empty tree returned a root view")
	}
}

func TestEmptyTreeQueries(t *testing.T) {
	tr, _ := New(8)
	if stats := tr.Query(geom.BoxAround(geom.V(0, 0, 0), 1), func(Item) {
		t.Error("visit on empty tree")
	}); stats.NodeAccesses() != 0 {
		t.Error("empty query touched nodes")
	}
	if tr.Count(geom.BoxAround(geom.V(0, 0, 0), 1)) != 0 {
		t.Error("empty count nonzero")
	}
}

// Property (testing/quick): for arbitrary item sets, an STR-built tree and a
// brute-force scan agree on the count of items intersecting a query derived
// from the same coordinates.
func TestQuickSTRCountMatchesBrute(t *testing.T) {
	f := func(seed int64, nRaw uint8, qx, qy, qz, qr float64) bool {
		n := int(nRaw)%200 + 1
		rng := rand.New(rand.NewSource(seed))
		items := randItems(rng, n, 50)
		tr, err := STR(items, 8)
		if err != nil {
			return false
		}
		clamp := func(v float64) float64 {
			if v != v || v > 1e6 || v < -1e6 { // NaN or extreme
				return 25
			}
			return math.Mod(math.Abs(v), 50)
		}
		q := geom.BoxAround(geom.V(clamp(qx), clamp(qy), clamp(qz)), clamp(qr)/2+0.1)
		want := 0
		for _, it := range items {
			if it.Box.Intersects(q) {
				want++
			}
		}
		return tr.Count(q) == want
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 150}); err != nil {
		t.Error(err)
	}
}

// Property (testing/quick): insertion order never changes query results.
func TestQuickInsertOrderInvariance(t *testing.T) {
	f := func(seed int64, nRaw uint8) bool {
		n := int(nRaw)%100 + 2
		rng := rand.New(rand.NewSource(seed))
		items := randItems(rng, n, 30)
		a, _ := New(6)
		b, _ := New(6)
		for _, it := range items {
			a.Insert(it)
		}
		perm := rng.Perm(n)
		for _, i := range perm {
			b.Insert(items[i])
		}
		q := geom.BoxAround(geom.V(15, 15, 15), 10)
		return a.Count(q) == b.Count(q) && a.Size() == b.Size()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 80}); err != nil {
		t.Error(err)
	}
}
