package rtree

import (
	"fmt"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
)

// PagedTree lays an R-tree's nodes onto simulated disk pages (one node per
// page, the classic disk R-tree layout) and executes queries through a
// pager.BufferPool, so R-tree I/O is accounted by the same buffer-pool
// machinery FLAT's data pages use. The E1-style comparisons can then be run
// with warm caches on both sides: the demo's statistics panel counts *disk
// pages retrieved*, and a hot root should not count against either index.
//
// The wrapper assigns page IDs in a deterministic pre-order walk at
// construction; the wrapped tree must not be mutated afterwards.
type PagedTree struct {
	tree   *Tree
	store  *pager.Store
	pageOf map[NodeView]pager.PageID
}

// NewPaged wraps a built tree. The store's pages record, for bookkeeping
// symmetry with FLAT's element pages, the IDs of the items under each leaf
// (internal nodes get empty pages — their payload is the child MBRs, which
// have no element IDs).
func NewPaged(t *Tree) (*PagedTree, error) {
	root, ok := t.Root()
	if !ok {
		return nil, fmt.Errorf("rtree: cannot page an empty tree")
	}
	builder, err := pager.NewBuilder(maxInt(1, t.Fanout()))
	if err != nil {
		return nil, err
	}
	p := &PagedTree{tree: t, pageOf: make(map[NodeView]pager.PageID)}
	var walk func(v NodeView)
	walk = func(v NodeView) {
		id := pager.PageID(len(p.pageOf))
		p.pageOf[v] = id
		if v.IsLeaf() {
			for _, it := range v.Items() {
				builder.Add(it.ID)
			}
			builder.FlushPage()
		} else {
			builder.Add(-1) // placeholder payload for an internal node
			builder.FlushPage()
			for i := 0; i < v.NumChildren(); i++ {
				walk(v.Child(i))
			}
		}
	}
	walk(root)
	p.store = builder.Build()
	if p.store.NumPages() != len(p.pageOf) {
		return nil, fmt.Errorf("rtree: page bookkeeping diverged: %d pages, %d nodes",
			p.store.NumPages(), len(p.pageOf))
	}
	return p, nil
}

// Store returns the node-per-page store; wrap it in a pager.BufferPool to
// run cached queries.
func (p *PagedTree) Store() *pager.Store { return p.store }

// Tree returns the wrapped tree.
func (p *PagedTree) Tree() *Tree { return p.tree }

// NumPages returns the page count (equals the node count).
func (p *PagedTree) NumPages() int { return p.store.NumPages() }

// PageOf returns the page a node is laid out on.
func (p *PagedTree) PageOf(v NodeView) pager.PageID { return p.pageOf[v] }

// Query reports every item intersecting q, charging one pool access per node
// visited. A nil pool degenerates to the unpaged Query.
func (p *PagedTree) Query(q geom.AABB, pool *pager.BufferPool, visit func(Item)) QueryStats {
	if pool == nil {
		return p.tree.Query(q, visit)
	}
	return p.QueryVia(q, pool, visit)
}

// QueryVia is Query reading node pages through an arbitrary PageSource; a
// nil source degenerates to the unpaged Query. It is the execution path the
// engine layer routes through so the buffer-pool + prefetch stack can sit
// beneath the R-tree exactly as it does beneath FLAT.
func (p *PagedTree) QueryVia(q geom.AABB, src pager.PageSource, visit func(Item)) QueryStats {
	if src == nil {
		return p.tree.Query(q, visit)
	}
	var stats QueryStats
	root, ok := p.tree.Root()
	if !ok {
		return stats
	}
	p.query(root, q, src, visit, &stats)
	return stats
}

// PagesInRange returns the pages of every node a query of box q would visit,
// in visit (pre-)order. Prefetchers use it to turn a predicted range into
// page requests, symmetrically with flat.Index.PagesInRange.
func (p *PagedTree) PagesInRange(q geom.AABB) []pager.PageID {
	root, ok := p.tree.Root()
	if !ok {
		return nil
	}
	var out []pager.PageID
	var walk func(v NodeView)
	walk = func(v NodeView) {
		out = append(out, p.pageOf[v])
		if v.IsLeaf() {
			return
		}
		for i := 0; i < v.NumChildren(); i++ {
			c := v.Child(i)
			if c.Box().Intersects(q) {
				walk(c)
			}
		}
	}
	if root.Box().Intersects(q) {
		walk(root)
	}
	return out
}

func (p *PagedTree) query(v NodeView, q geom.AABB, src pager.PageSource,
	visit func(Item), stats *QueryStats) {
	stats.visit(v.Level())
	src.ReadPage(p.pageOf[v])
	if v.IsLeaf() {
		for _, it := range v.Items() {
			stats.EntriesTested++
			if it.Box.Intersects(q) {
				stats.Results++
				visit(it)
			}
		}
		return
	}
	for i := 0; i < v.NumChildren(); i++ {
		c := v.Child(i)
		if c.Box().Intersects(q) {
			p.query(c, q, src, visit, stats)
		}
	}
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
