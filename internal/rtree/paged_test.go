package rtree

import (
	"math/rand"
	"testing"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
)

func TestNewPagedValidation(t *testing.T) {
	empty, _ := New(8)
	if _, err := NewPaged(empty); err == nil {
		t.Error("paging an empty tree accepted")
	}
}

func TestPagedQueryMatchesUnpaged(t *testing.T) {
	rng := rand.New(rand.NewSource(91))
	items := randItems(rng, 2000, 80)
	tr, err := STR(items, 16)
	if err != nil {
		t.Fatal(err)
	}
	pt, err := NewPaged(tr)
	if err != nil {
		t.Fatal(err)
	}
	pool, err := pager.NewBufferPool(pt.Store(), pt.NumPages())
	if err != nil {
		t.Fatal(err)
	}
	for trial := 0; trial < 30; trial++ {
		q := geom.BoxAround(
			geom.V(rng.Float64()*80, rng.Float64()*80, rng.Float64()*80),
			rng.Float64()*12+1)
		plain := collectIDs(tr, q)
		paged := make(map[int32]bool)
		stats := pt.Query(q, pool, func(it Item) { paged[it.ID] = true })
		sameIDSet(t, paged, plain)
		// Node accesses equal pool activity for this query.
		if stats.NodeAccesses() == 0 && len(plain) > 0 {
			t.Fatal("paged query reported no node accesses")
		}
	}
}

func TestPagedQueryChargesPool(t *testing.T) {
	rng := rand.New(rand.NewSource(92))
	items := randItems(rng, 1000, 50)
	tr, _ := STR(items, 16)
	pt, err := NewPaged(tr)
	if err != nil {
		t.Fatal(err)
	}
	pool, _ := pager.NewBufferPool(pt.Store(), pt.NumPages())
	q := geom.BoxAround(geom.V(25, 25, 25), 15)
	st := pt.Query(q, pool, func(Item) {})
	poolStats := pool.Stats()
	if poolStats.DemandReads != st.NodeAccesses() {
		t.Fatalf("pool reads %d != node accesses %d", poolStats.DemandReads, st.NodeAccesses())
	}
	// Warm re-run: all hits, no new reads.
	st2 := pt.Query(q, pool, func(Item) {})
	delta := pool.Stats().Sub(poolStats)
	if delta.DemandReads != 0 || delta.Hits != st2.NodeAccesses() {
		t.Errorf("warm re-run: %+v", delta)
	}
}

func TestPagedLayoutOneNodePerPage(t *testing.T) {
	rng := rand.New(rand.NewSource(93))
	items := randItems(rng, 500, 40)
	tr, _ := STR(items, 8)
	pt, err := NewPaged(tr)
	if err != nil {
		t.Fatal(err)
	}
	// Count nodes by walking the view.
	root, _ := tr.Root()
	nodes := 0
	itemsSeen := 0
	var walk func(v NodeView)
	walk = func(v NodeView) {
		nodes++
		if v.IsLeaf() {
			itemsSeen += len(v.Items())
			// Leaf pages hold exactly the leaf's item IDs.
			page := pt.Store().Page(pt.PageOf(v))
			if len(page) != len(v.Items()) {
				t.Fatalf("leaf page has %d IDs, leaf has %d items", len(page), len(v.Items()))
			}
			return
		}
		for i := 0; i < v.NumChildren(); i++ {
			walk(v.Child(i))
		}
	}
	walk(root)
	if pt.NumPages() != nodes {
		t.Fatalf("pages = %d, nodes = %d", pt.NumPages(), nodes)
	}
	if itemsSeen != 500 {
		t.Fatalf("walk saw %d items", itemsSeen)
	}
}

func TestPagedNilPoolFallsBack(t *testing.T) {
	rng := rand.New(rand.NewSource(94))
	items := randItems(rng, 300, 30)
	tr, _ := STR(items, 8)
	pt, err := NewPaged(tr)
	if err != nil {
		t.Fatal(err)
	}
	q := geom.BoxAround(geom.V(15, 15, 15), 8)
	a := make(map[int32]bool)
	pt.Query(q, nil, func(it Item) { a[it.ID] = true })
	b := collectIDs(tr, q)
	sameIDSet(t, a, b)
}
