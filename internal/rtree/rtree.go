// Package rtree implements an in-memory R-tree over axis-aligned boxes, the
// baseline index the paper's demo compares FLAT against and the building
// block several other components reuse:
//
//   - FLAT uses a small R-tree (STR bulk-loaded, as in the FLAT paper) to
//     find the seed element of its crawl;
//   - TOUCH builds its data-oriented partitioning by STR-packing dataset A;
//   - the S3 join baseline synchronously traverses two R-trees.
//
// The tree supports STR bulk loading (Leutenegger et al., ICDE'97), dynamic
// insertion with quadratic node splitting (Guttman, SIGMOD'84), deletion with
// subtree reinsertion, range queries, seed queries (first match), and
// best-first k-nearest-neighbor search. Range queries report the per-level
// node-access counts that the demo's statistics panel displays: under MBR
// overlap an R-tree touches several nodes per level, which is exactly the
// effect FLAT's density-independent execution avoids.
package rtree

import (
	"fmt"
	"sort"

	"neurospatial/internal/geom"
)

// Item is one indexed entry: a bounding box and the caller's element ID.
type Item struct {
	Box geom.AABB
	ID  int32
}

// node is an R-tree node. Leaves (level 0) carry items; internal nodes carry
// children. MBRs are maintained exactly on every mutation.
type node struct {
	box      geom.AABB
	level    int
	items    []Item  // level == 0
	children []*node // level > 0
}

func (n *node) isLeaf() bool { return n.level == 0 }

func (n *node) recomputeBox() {
	b := geom.EmptyAABB()
	if n.isLeaf() {
		for i := range n.items {
			b = b.Union(n.items[i].Box)
		}
	} else {
		for _, c := range n.children {
			b = b.Union(c.box)
		}
	}
	n.box = b
}

func (n *node) fanoutUsed() int {
	if n.isLeaf() {
		return len(n.items)
	}
	return len(n.children)
}

// Tree is an R-tree with a fixed maximum fanout. The zero value is not
// usable; construct trees with New or STR.
type Tree struct {
	root    *node
	fanout  int
	minFill int
	size    int
}

// DefaultFanout is the node capacity used when callers pass fanout <= 0. The
// value 16 models a disk page of sixteen 3-D MBR entries, small enough that
// tree height effects are visible at experiment scale.
const DefaultFanout = 16

// New returns an empty tree with the given maximum node fanout (minimum 4;
// values <= 0 select DefaultFanout).
func New(fanout int) (*Tree, error) {
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if fanout < 4 {
		return nil, fmt.Errorf("rtree: fanout %d too small (minimum 4)", fanout)
	}
	return &Tree{
		root:    &node{level: 0, box: geom.EmptyAABB()},
		fanout:  fanout,
		minFill: fanout * 2 / 5, // 40%, the classic m = 0.4M
	}, nil
}

// Size returns the number of items in the tree.
func (t *Tree) Size() int { return t.size }

// Fanout returns the maximum node fanout.
func (t *Tree) Fanout() int { return t.fanout }

// Height returns the number of levels (0 for an empty tree, 1 for a
// root-leaf).
func (t *Tree) Height() int {
	if t.size == 0 {
		return 0
	}
	return t.root.level + 1
}

// Bounds returns the MBR of the whole tree (empty when the tree is empty).
func (t *Tree) Bounds() geom.AABB { return t.root.box }

// STR bulk-loads a tree from items using Sort-Tile-Recursive packing: sort by
// X center, slice into vertical slabs, sort each slab by Y, tile into runs,
// sort runs by Z and pack consecutive items into leaves. The resulting leaves
// are near-full and spatially compact, which is why both FLAT and TOUCH use
// STR for their partitioning phases.
func STR(items []Item, fanout int) (*Tree, error) {
	t, err := New(fanout)
	if err != nil {
		return nil, err
	}
	if len(items) == 0 {
		return t, nil
	}
	own := make([]Item, len(items))
	copy(own, items)

	leaves := strPackItems(own, t.fanout)
	t.size = len(own)
	t.root = buildUp(leaves, t.fanout)
	return t, nil
}

// strPackItems tiles items into leaf nodes of at most fanout entries.
func strPackItems(items []Item, fanout int) []*node {
	nLeaves := (len(items) + fanout - 1) / fanout
	// S = number of slabs per axis ~ cube root of leaf count.
	s := int(cbrtCeil(nLeaves))
	sliceX := s * s * fanout // items per X slab
	sliceY := s * fanout     // items per Y run

	sort.Slice(items, func(i, j int) bool {
		return items[i].Box.Center().X < items[j].Box.Center().X
	})
	var leaves []*node
	for x := 0; x < len(items); x += sliceX {
		xe := minInt(x+sliceX, len(items))
		slab := items[x:xe]
		sort.Slice(slab, func(i, j int) bool {
			return slab[i].Box.Center().Y < slab[j].Box.Center().Y
		})
		for y := 0; y < len(slab); y += sliceY {
			ye := minInt(y+sliceY, len(slab))
			run := slab[y:ye]
			sort.Slice(run, func(i, j int) bool {
				return run[i].Box.Center().Z < run[j].Box.Center().Z
			})
			for z := 0; z < len(run); z += fanout {
				ze := minInt(z+fanout, len(run))
				leaf := &node{level: 0, items: append([]Item(nil), run[z:ze]...)}
				leaf.recomputeBox()
				leaves = append(leaves, leaf)
			}
		}
	}
	return leaves
}

// buildUp packs nodes level by level until a single root remains. Nodes are
// packed in the order produced by STR, which preserves spatial locality.
func buildUp(nodes []*node, fanout int) *node {
	for len(nodes) > 1 {
		var parents []*node
		for i := 0; i < len(nodes); i += fanout {
			e := minInt(i+fanout, len(nodes))
			p := &node{level: nodes[i].level + 1, children: append([]*node(nil), nodes[i:e]...)}
			p.recomputeBox()
			parents = append(parents, p)
		}
		nodes = parents
	}
	return nodes[0]
}

// Insert adds one item using Guttman's choose-leaf descent (least volume
// enlargement, ties by smaller volume) and quadratic splitting on overflow.
func (t *Tree) Insert(it Item) {
	t.size++
	split := t.insertAt(t.root, it, 0)
	if split != nil {
		// Root split: grow the tree by one level.
		newRoot := &node{level: t.root.level + 1, children: []*node{t.root, split}}
		newRoot.recomputeBox()
		t.root = newRoot
	}
}

// insertAt inserts it into the subtree at n, targeting the given level (0 for
// items; >0 is used by condense-tree reinsertion of orphan subtrees). It
// returns a new sibling when n split.
func (t *Tree) insertAt(n *node, it Item, level int) *node {
	n.box = n.box.Union(it.Box)
	if n.level == level {
		n.items = append(n.items, it)
		if len(n.items) > t.fanout {
			return t.splitLeaf(n)
		}
		return nil
	}
	child := chooseSubtree(n, it.Box)
	if split := t.insertAt(child, it, level); split != nil {
		n.children = append(n.children, split)
		if len(n.children) > t.fanout {
			return t.splitInternal(n)
		}
	}
	return nil
}

// insertSubtree reattaches an orphan subtree at the height where it fits.
func (t *Tree) insertSubtree(n *node, sub *node) *node {
	n.box = n.box.Union(sub.box)
	if n.level == sub.level+1 {
		n.children = append(n.children, sub)
		if len(n.children) > t.fanout {
			return t.splitInternal(n)
		}
		return nil
	}
	child := chooseSubtree(n, sub.box)
	if split := t.insertSubtree(child, sub); split != nil {
		n.children = append(n.children, split)
		if len(n.children) > t.fanout {
			return t.splitInternal(n)
		}
	}
	return nil
}

// chooseSubtree picks the child needing the least volume enlargement.
func chooseSubtree(n *node, b geom.AABB) *node {
	best := n.children[0]
	bestEnl := best.box.Enlargement(b)
	bestVol := best.box.Volume()
	for _, c := range n.children[1:] {
		enl := c.box.Enlargement(b)
		vol := c.box.Volume()
		if enl < bestEnl || (enl == bestEnl && vol < bestVol) {
			best, bestEnl, bestVol = c, enl, vol
		}
	}
	return best
}

// splitLeaf splits an overfull leaf with the quadratic method and returns the
// new sibling.
func (t *Tree) splitLeaf(n *node) *node {
	boxes := make([]geom.AABB, len(n.items))
	for i := range n.items {
		boxes[i] = n.items[i].Box
	}
	groupA, groupB := quadraticSplit(boxes, t.minFill)
	itemsA := make([]Item, 0, len(groupA))
	itemsB := make([]Item, 0, len(groupB))
	for _, i := range groupA {
		itemsA = append(itemsA, n.items[i])
	}
	for _, i := range groupB {
		itemsB = append(itemsB, n.items[i])
	}
	sib := &node{level: 0, items: itemsB}
	n.items = itemsA
	n.recomputeBox()
	sib.recomputeBox()
	return sib
}

// splitInternal splits an overfull internal node.
func (t *Tree) splitInternal(n *node) *node {
	boxes := make([]geom.AABB, len(n.children))
	for i := range n.children {
		boxes[i] = n.children[i].box
	}
	groupA, groupB := quadraticSplit(boxes, t.minFill)
	chA := make([]*node, 0, len(groupA))
	chB := make([]*node, 0, len(groupB))
	for _, i := range groupA {
		chA = append(chA, n.children[i])
	}
	for _, i := range groupB {
		chB = append(chB, n.children[i])
	}
	sib := &node{level: n.level, children: chB}
	n.children = chA
	n.recomputeBox()
	sib.recomputeBox()
	return sib
}

// quadraticSplit partitions the indices of boxes into two groups using
// Guttman's quadratic heuristic: seed with the pair wasting the most volume,
// then greedily assign the entry with the strongest preference, respecting
// the minimum fill.
func quadraticSplit(boxes []geom.AABB, minFill int) (a, b []int) {
	// Pick seeds: the pair whose union wastes the most volume.
	seedA, seedB := 0, 1
	worst := -1.0
	for i := 0; i < len(boxes); i++ {
		for j := i + 1; j < len(boxes); j++ {
			waste := boxes[i].Union(boxes[j]).Volume() - boxes[i].Volume() - boxes[j].Volume()
			if waste > worst {
				worst = waste
				seedA, seedB = i, j
			}
		}
	}
	a = []int{seedA}
	b = []int{seedB}
	boxA, boxB := boxes[seedA], boxes[seedB]
	rest := make([]int, 0, len(boxes)-2)
	for i := range boxes {
		if i != seedA && i != seedB {
			rest = append(rest, i)
		}
	}
	for len(rest) > 0 {
		// Force-assign when one group must take everything left to reach
		// the minimum fill.
		if len(a)+len(rest) == minFill {
			for _, i := range rest {
				a = append(a, i)
			}
			break
		}
		if len(b)+len(rest) == minFill {
			for _, i := range rest {
				b = append(b, i)
			}
			break
		}
		// Pick the entry with the largest |d(A) - d(B)| preference.
		bestIdx, bestDiff := 0, -1.0
		for k, i := range rest {
			dA := boxA.Enlargement(boxes[i])
			dB := boxB.Enlargement(boxes[i])
			diff := dA - dB
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff = diff
				bestIdx = k
			}
		}
		i := rest[bestIdx]
		rest[bestIdx] = rest[len(rest)-1]
		rest = rest[:len(rest)-1]
		dA := boxA.Enlargement(boxes[i])
		dB := boxB.Enlargement(boxes[i])
		if dA < dB || (dA == dB && len(a) < len(b)) {
			a = append(a, i)
			boxA = boxA.Union(boxes[i])
		} else {
			b = append(b, i)
			boxB = boxB.Union(boxes[i])
		}
	}
	return a, b
}

// Delete removes the item with the given box and ID. It returns false when no
// such item exists. Underfull nodes are dissolved and their entries
// reinserted (Guttman's condense-tree).
func (t *Tree) Delete(it Item) bool {
	leaf, path := t.findLeaf(t.root, it, nil)
	if leaf == nil {
		return false
	}
	for i := range leaf.items {
		if leaf.items[i].ID == it.ID && leaf.items[i].Box == it.Box {
			leaf.items = append(leaf.items[:i], leaf.items[i+1:]...)
			break
		}
	}
	t.size--
	t.condense(leaf, path)
	// Shrink the root while it has a single child.
	for !t.root.isLeaf() && len(t.root.children) == 1 {
		t.root = t.root.children[0]
	}
	if t.size == 0 {
		t.root = &node{level: 0, box: geom.EmptyAABB()}
	}
	return true
}

// findLeaf locates the leaf containing it, returning the leaf and the root
// path leading to it (excluding the leaf).
func (t *Tree) findLeaf(n *node, it Item, path []*node) (*node, []*node) {
	if n.isLeaf() {
		for i := range n.items {
			if n.items[i].ID == it.ID && n.items[i].Box == it.Box {
				return n, path
			}
		}
		return nil, nil
	}
	for _, c := range n.children {
		if c.box.ContainsBox(it.Box) {
			if leaf, p := t.findLeaf(c, it, append(path, n)); leaf != nil {
				return leaf, p
			}
		}
	}
	return nil, nil
}

// condense walks the path bottom-up, removing underfull nodes and queueing
// their contents for reinsertion, then reinserts.
func (t *Tree) condense(leaf *node, path []*node) {
	var orphanItems []Item
	var orphanNodes []*node

	n := leaf
	for i := len(path) - 1; i >= 0; i-- {
		parent := path[i]
		if n.fanoutUsed() < t.minFill {
			// Unlink n from parent and queue its contents.
			for k, c := range parent.children {
				if c == n {
					parent.children = append(parent.children[:k], parent.children[k+1:]...)
					break
				}
			}
			if n.isLeaf() {
				orphanItems = append(orphanItems, n.items...)
			} else {
				orphanNodes = append(orphanNodes, n.children...)
			}
		} else {
			n.recomputeBox()
		}
		n = parent
	}
	t.root.recomputeBox()

	for _, sub := range orphanNodes {
		if t.root.level <= sub.level {
			// The tree shrank below the subtree's height; splice it in by
			// growing a new root.
			newRoot := &node{level: sub.level + 1, children: []*node{t.root, sub}}
			if t.root.level < sub.level {
				// Rare: wrap the old root until heights match.
				for t.root.level < sub.level {
					wrap := &node{level: t.root.level + 1, children: []*node{t.root}}
					wrap.recomputeBox()
					t.root = wrap
				}
				newRoot = &node{level: sub.level + 1, children: []*node{t.root, sub}}
			}
			newRoot.recomputeBox()
			t.root = newRoot
			continue
		}
		if split := t.insertSubtree(t.root, sub); split != nil {
			newRoot := &node{level: t.root.level + 1, children: []*node{t.root, split}}
			newRoot.recomputeBox()
			t.root = newRoot
		}
	}
	for _, it := range orphanItems {
		t.size-- // Insert will re-increment
		t.Insert(it)
	}
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func cbrtCeil(n int) int {
	k := 1
	for k*k*k < n {
		k++
	}
	return k
}
