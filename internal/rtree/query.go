package rtree

import (
	"neurospatial/internal/geom"
)

// QueryStats describes the work one query performed. The demo's statistics
// panel (Figure 3 of the paper) shows exactly these numbers for the R-tree:
// node accesses broken down by level, which exposes how MBR overlap forces an
// R-tree to read several nodes per level in dense regions.
// MaxLevels bounds the per-level node-access breakdown. An STR tree of
// height 32 holds at least 2^32 items even at fanout 2, far past anything the
// engine indexes; deeper accesses (unreachable in practice) fold into the
// top bucket rather than growing the record.
const MaxLevels = 32

type QueryStats struct {
	// LevelNodes[l] counts node accesses at level l (0 = leaves); entries at
	// Levels and beyond are zero. An inline array rather than a slice so a
	// stats record never allocates — the caller-retained per-level slice was
	// the rtree Do path's only remaining per-query heap allocation.
	LevelNodes [MaxLevels]int64
	// Levels is the number of meaningful LevelNodes entries — the height of
	// the deepest access recorded.
	Levels int
	// EntriesTested counts box comparisons against leaf entries.
	EntriesTested int64
	// Results counts items reported.
	Results int64
}

// NodesPerLevel renders the per-level breakdown (leaves first) as a freshly
// allocated slice, nil when no nodes were accessed — the display form. Hot
// paths read LevelNodes[:Levels] in place instead.
func (s QueryStats) NodesPerLevel() []int64 {
	if s.Levels == 0 {
		return nil
	}
	out := make([]int64, s.Levels)
	copy(out, s.LevelNodes[:s.Levels])
	return out
}

// NodeAccesses returns the total node accesses across all levels. Under the
// one-node-per-page layout this is the query's page-read count.
func (s QueryStats) NodeAccesses() int64 {
	var n int64
	for _, c := range s.LevelNodes[:s.Levels] {
		n += c
	}
	return n
}

func (s *QueryStats) visit(level int) {
	if level >= MaxLevels {
		level = MaxLevels - 1
	}
	s.LevelNodes[level]++
	if level+1 > s.Levels {
		s.Levels = level + 1
	}
}

// Query reports every item whose box intersects q to visit, in unspecified
// order, and returns the access statistics.
func (t *Tree) Query(q geom.AABB, visit func(Item)) QueryStats {
	var stats QueryStats
	if t.size == 0 {
		return stats
	}
	t.query(t.root, q, visit, &stats)
	return stats
}

func (t *Tree) query(n *node, q geom.AABB, visit func(Item), stats *QueryStats) {
	stats.visit(n.level)
	if n.isLeaf() {
		for i := range n.items {
			stats.EntriesTested++
			if n.items[i].Box.Intersects(q) {
				stats.Results++
				visit(n.items[i])
			}
		}
		return
	}
	for _, c := range n.children {
		if c.box.Intersects(q) {
			t.query(c, q, visit, stats)
		}
	}
}

// Count returns the number of items intersecting q without materializing
// them.
func (t *Tree) Count(q geom.AABB) int {
	n := 0
	t.Query(q, func(Item) { n++ })
	return n
}

// SeedInRange returns one arbitrary item whose box intersects q, preferring
// items near the query center. It is the first phase of FLAT's execution
// strategy: finding *any* element in the range needs only one root-to-leaf
// descent in the common case (§2.1 of the paper: "typically only depends on
// the height of the R-Tree"), after which FLAT's crawl takes over. The
// returned stats record the nodes the descent touched.
func (t *Tree) SeedInRange(q geom.AABB) (Item, QueryStats, bool) {
	var stats QueryStats
	if t.size == 0 {
		return Item{}, stats, false
	}
	c := q.Center()
	it, ok := t.seed(t.root, q, c, &stats)
	return it, stats, ok
}

func (t *Tree) seed(n *node, q geom.AABB, center geom.Vec, stats *QueryStats) (Item, bool) {
	stats.visit(n.level)
	if n.isLeaf() {
		bestIdx := -1
		bestD := 0.0
		for i := range n.items {
			stats.EntriesTested++
			if !n.items[i].Box.Intersects(q) {
				continue
			}
			d := n.items[i].Box.Dist2Point(center)
			if bestIdx < 0 || d < bestD {
				bestIdx, bestD = i, d
			}
		}
		if bestIdx >= 0 {
			stats.Results++
			return n.items[bestIdx], true
		}
		return Item{}, false
	}
	// Visit intersecting children closest to the query center first: in a
	// dense region the first descent succeeds immediately.
	order := make([]int, 0, len(n.children))
	for i, c := range n.children {
		if c.box.Intersects(q) {
			order = append(order, i)
		}
	}
	for k := 1; k < len(order); k++ {
		for j := k; j > 0 && n.children[order[j]].box.Dist2Point(center) <
			n.children[order[j-1]].box.Dist2Point(center); j-- {
			order[j], order[j-1] = order[j-1], order[j]
		}
	}
	for _, i := range order {
		if it, ok := t.seed(n.children[i], q, center, stats); ok {
			return it, true
		}
	}
	return Item{}, false
}

// SeedInRangeCount is the allocation-free form of SeedInRange: identical
// traversal (so identical node-access and entries-tested counts and the
// identical returned item), but reporting plain counters instead of a
// QueryStats whose per-level slice would allocate. It is the seed call of
// FLAT's zero-alloc Do path.
func (t *Tree) SeedInRangeCount(q geom.AABB) (it Item, nodes, tested int64, ok bool) {
	if t.size == 0 {
		return Item{}, 0, 0, false
	}
	it, ok = t.seedCount(t.root, q, q.Center(), &nodes, &tested)
	return it, nodes, tested, ok
}

// seedCount mirrors seed's descent order without materializing the sorted
// child order: instead of building an order slice, it repeatedly selects the
// next intersecting child in ascending (Dist2Point(center), child index) —
// exactly the order seed's stable insertion sort produces — using a
// (lastD, lastI) cursor. O(fanout²) selection in the worst case, zero
// allocations always.
func (t *Tree) seedCount(n *node, q geom.AABB, center geom.Vec, nodes, tested *int64) (Item, bool) {
	*nodes++
	if n.isLeaf() {
		bestIdx := -1
		bestD := 0.0
		for i := range n.items {
			*tested++
			if !n.items[i].Box.Intersects(q) {
				continue
			}
			d := n.items[i].Box.Dist2Point(center)
			if bestIdx < 0 || d < bestD {
				bestIdx, bestD = i, d
			}
		}
		if bestIdx >= 0 {
			return n.items[bestIdx], true
		}
		return Item{}, false
	}
	lastD, lastI := -1.0, -1 // Dist2Point is >= 0, so (-1, -1) precedes all
	for {
		bestI, bestD := -1, 0.0
		for i := range n.children {
			c := n.children[i]
			if !c.box.Intersects(q) {
				continue
			}
			d := c.box.Dist2Point(center)
			if d < lastD || (d == lastD && i <= lastI) {
				continue // already descended into
			}
			if bestI < 0 || d < bestD || (d == bestD && i < bestI) {
				bestI, bestD = i, d
			}
		}
		if bestI < 0 {
			return Item{}, false
		}
		lastD, lastI = bestD, bestI
		if it, ok := t.seedCount(n.children[bestI], q, center, nodes, tested); ok {
			return it, true
		}
	}
}

// QueryCount is the allocation-free form of Query: the same traversal and
// visit order, reporting plain counters instead of a QueryStats whose
// per-level slice would allocate.
func (t *Tree) QueryCount(q geom.AABB, visit func(Item)) (nodes, tested, results int64) {
	if t.size == 0 {
		return 0, 0, 0
	}
	t.queryCount(t.root, q, visit, &nodes, &tested, &results)
	return nodes, tested, results
}

func (t *Tree) queryCount(n *node, q geom.AABB, visit func(Item), nodes, tested, results *int64) {
	*nodes++
	if n.isLeaf() {
		for i := range n.items {
			*tested++
			if n.items[i].Box.Intersects(q) {
				*results++
				visit(n.items[i])
			}
		}
		return
	}
	for _, c := range n.children {
		if c.box.Intersects(q) {
			t.queryCount(c, q, visit, nodes, tested, results)
		}
	}
}

// knnEntry is a priority-queue element for best-first KNN search.
type knnEntry struct {
	dist2 float64
	node  *node // nil when this entry is an item
	item  Item
}

// knnHeap is a concrete-typed min-heap by dist2. The sift operations
// replicate container/heap's algorithm exactly (same comparisons, same swap
// order), so equal-distance entries pop in the order the previous
// container/heap-backed implementation produced — but without boxing every
// entry into an interface value on each push.
type knnHeap []knnEntry

func (h *knnHeap) push(e knnEntry) {
	s := append(*h, e)
	*h = s
	j := len(s) - 1
	for j > 0 {
		i := (j - 1) / 2
		if !(s[j].dist2 < s[i].dist2) {
			break
		}
		s[i], s[j] = s[j], s[i]
		j = i
	}
}

func (h *knnHeap) pop() knnEntry {
	s := *h
	n := len(s) - 1
	s[0], s[n] = s[n], s[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= n {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < n && s[j2].dist2 < s[j1].dist2 {
			j = j2
		}
		if !(s[j].dist2 < s[i].dist2) {
			break
		}
		s[i], s[j] = s[j], s[i]
		i = j
	}
	top := s[n]
	*h = s[:n]
	return top
}

// KNN returns the k items whose boxes are nearest to p (by box distance),
// closest first, using best-first search (Hjaltason & Samet). Fewer than k
// items are returned when the tree is smaller than k.
func (t *Tree) KNN(p geom.Vec, k int) ([]Item, QueryStats) {
	var stats QueryStats
	if t.size == 0 || k <= 0 {
		return nil, stats
	}
	h := knnHeap{{dist2: t.root.box.Dist2Point(p), node: t.root}}
	out := make([]Item, 0, k)
	for len(h) > 0 && len(out) < k {
		e := h.pop()
		if e.node == nil {
			out = append(out, e.item)
			stats.Results++
			continue
		}
		n := e.node
		stats.visit(n.level)
		if n.isLeaf() {
			for i := range n.items {
				stats.EntriesTested++
				h.push(knnEntry{dist2: n.items[i].Box.Dist2Point(p), item: n.items[i]})
			}
		} else {
			for _, c := range n.children {
				h.push(knnEntry{dist2: c.box.Dist2Point(p), node: c})
			}
		}
	}
	return out, stats
}

// NodeView is a read-only handle on a tree node, exposed so other packages
// (the S3 synchronized traversal, TOUCH's hierarchy walk, the paged layout)
// can traverse the structure without mutating it.
type NodeView struct{ n *node }

// Root returns a view of the root node; ok is false for an empty tree.
func (t *Tree) Root() (NodeView, bool) {
	if t.size == 0 {
		return NodeView{}, false
	}
	return NodeView{t.root}, true
}

// Box returns the node's MBR.
func (v NodeView) Box() geom.AABB { return v.n.box }

// Level returns the node's level (0 = leaf).
func (v NodeView) Level() int { return v.n.level }

// IsLeaf reports whether the node is a leaf.
func (v NodeView) IsLeaf() bool { return v.n.isLeaf() }

// NumChildren returns the child count of an internal node (0 for leaves).
func (v NodeView) NumChildren() int { return len(v.n.children) }

// Child returns the i-th child of an internal node.
func (v NodeView) Child(i int) NodeView { return NodeView{v.n.children[i]} }

// Items returns the leaf's items. The slice is shared and must not be
// modified.
func (v NodeView) Items() []Item { return v.n.items }

// WalkLeaves calls fn for every leaf in left-to-right order. For STR-built
// trees this order follows the packing order and is spatially coherent.
func (t *Tree) WalkLeaves(fn func(box geom.AABB, items []Item)) {
	if t.size == 0 {
		return
	}
	walkLeaves(t.root, fn)
}

func walkLeaves(n *node, fn func(geom.AABB, []Item)) {
	if n.isLeaf() {
		fn(n.box, n.items)
		return
	}
	for _, c := range n.children {
		walkLeaves(c, fn)
	}
}

// PackSTR partitions items into STR tiles of at most fanout entries and
// returns the tiles in packing order. FLAT uses it to lay elements out on
// disk pages; TOUCH uses it to data-orient its partitions. The input slice is
// not modified.
func PackSTR(items []Item, fanout int) [][]Item {
	if fanout <= 0 {
		fanout = DefaultFanout
	}
	if len(items) == 0 {
		return nil
	}
	own := make([]Item, len(items))
	copy(own, items)
	leaves := strPackItems(own, fanout)
	out := make([][]Item, len(leaves))
	for i, l := range leaves {
		out[i] = l.items
	}
	return out
}

// CheckInvariants verifies structural invariants (MBR containment, level
// monotonicity, fill bounds) and returns the number of items found. Tests
// call it after mutation sequences.
func (t *Tree) CheckInvariants() (int, error) {
	if t.size == 0 {
		return 0, nil
	}
	return checkNode(t.root, t.fanout, true)
}

func checkNode(n *node, fanout int, isRoot bool) (int, error) {
	if n.isLeaf() {
		if len(n.items) > fanout {
			return 0, errOverfull(n.level, len(n.items), fanout)
		}
		for i := range n.items {
			if !n.box.ContainsBox(n.items[i].Box) {
				return 0, errEscape(n.level)
			}
		}
		return len(n.items), nil
	}
	if len(n.children) > fanout {
		return 0, errOverfull(n.level, len(n.children), fanout)
	}
	if !isRoot && len(n.children) == 0 {
		return 0, errEmptyInternal(n.level)
	}
	total := 0
	for _, c := range n.children {
		if c.level != n.level-1 {
			return 0, errLevel(n.level, c.level)
		}
		if !n.box.ContainsBox(c.box) {
			return 0, errEscape(n.level)
		}
		k, err := checkNode(c, fanout, false)
		if err != nil {
			return 0, err
		}
		total += k
	}
	return total, nil
}

type invariantError string

func (e invariantError) Error() string { return string(e) }

func errOverfull(level, n, fanout int) error {
	return invariantError("rtree: overfull node")
}
func errEscape(level int) error        { return invariantError("rtree: child escapes parent MBR") }
func errLevel(p, c int) error          { return invariantError("rtree: level mismatch") }
func errEmptyInternal(level int) error { return invariantError("rtree: empty internal node") }
