// Package stats provides the small reporting toolkit the experiment
// harnesses share: fixed-width tables rendered to plain text (the repository
// equivalent of the demo's live statistics panels) and numeric helpers for
// formatting counts, byte sizes and speedup factors consistently across
// every table in EXPERIMENTS.md.
package stats

import (
	"fmt"
	"io"
	"strings"
	"time"
)

// Table accumulates rows and renders them with aligned columns.
type Table struct {
	title   string
	headers []string
	rows    [][]string
}

// NewTable creates a table with the given title and column headers.
func NewTable(title string, headers ...string) *Table {
	return &Table{title: title, headers: headers}
}

// AddRow appends a row; cells are stringified with %v.
func (t *Table) AddRow(cells ...interface{}) {
	row := make([]string, len(cells))
	for i, c := range cells {
		row[i] = fmt.Sprintf("%v", c)
	}
	t.rows = append(t.rows, row)
}

// NumRows returns the number of data rows.
func (t *Table) NumRows() int { return len(t.rows) }

// Render writes the table as aligned plain text.
func (t *Table) Render(w io.Writer) error {
	widths := make([]int, len(t.headers))
	for i, h := range t.headers {
		widths[i] = len(h)
	}
	for _, row := range t.rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	var b strings.Builder
	if t.title != "" {
		fmt.Fprintf(&b, "%s\n", t.title)
	}
	writeRow := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(c)
			if i < len(cells)-1 {
				b.WriteString(strings.Repeat(" ", widths[i]-len(c)))
			}
		}
		b.WriteByte('\n')
	}
	writeRow(t.headers)
	sep := make([]string, len(t.headers))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	writeRow(sep)
	for _, row := range t.rows {
		writeRow(row)
	}
	_, err := io.WriteString(w, b.String())
	return err
}

// String renders the table to a string.
func (t *Table) String() string {
	var b strings.Builder
	_ = t.Render(&b)
	return b.String()
}

// Count formats an integer with thousands separators (1234567 -> "1,234,567").
// The sign is split off the formatted digits rather than by negating n, so
// math.MinInt64 (whose negation overflows) formats correctly.
func Count(n int64) string {
	s := fmt.Sprintf("%d", n)
	sign := ""
	if s[0] == '-' {
		sign, s = "-", s[1:]
	}
	var parts []string
	for len(s) > 3 {
		parts = append([]string{s[len(s)-3:]}, parts...)
		s = s[:len(s)-3]
	}
	parts = append([]string{s}, parts...)
	return sign + strings.Join(parts, ",")
}

// Bytes formats a byte count with a binary unit (4096 -> "4.0 KiB").
func Bytes(n int64) string {
	const unit = 1024
	if n < unit {
		return fmt.Sprintf("%d B", n)
	}
	div, exp := int64(unit), 0
	for m := n / unit; m >= unit; m /= unit {
		div *= unit
		exp++
	}
	return fmt.Sprintf("%.1f %ciB", float64(n)/float64(div), "KMGTPE"[exp])
}

// Speedup formats a ratio as a factor ("12.3x"); infinite or undefined
// ratios render as "-".
func Speedup(base, other time.Duration) string {
	if other <= 0 || base <= 0 {
		return "-"
	}
	return fmt.Sprintf("%.1fx", float64(base)/float64(other))
}

// Ratio formats a fraction as a percentage ("87.5%"); a zero denominator
// renders as "-".
func Ratio(num, den int64) string {
	if den == 0 {
		return "-"
	}
	return fmt.Sprintf("%.1f%%", 100*float64(num)/float64(den))
}

// Running is an online accumulator of a scalar series: count, mean and
// variance in one pass (Welford's method). The engine's planner keeps one per
// index and metric — observed I/O cost per query, selectivity per unit query
// volume — and routes batches to the index with the lowest estimated cost.
type Running struct {
	n    int64
	mean float64
	m2   float64
}

// Add folds one observation into the accumulator.
func (r *Running) Add(x float64) {
	r.n++
	d := x - r.mean
	r.mean += d / float64(r.n)
	r.m2 += d * (x - r.mean)
}

// N returns the observation count.
func (r *Running) N() int64 { return r.n }

// Mean returns the running mean (0 with no observations).
func (r *Running) Mean() float64 { return r.mean }

// Var returns the running population variance (0 with fewer than two
// observations).
func (r *Running) Var() float64 {
	if r.n < 2 {
		return 0
	}
	return r.m2 / float64(r.n)
}

// Merge folds another accumulator into this one (Chan et al.'s parallel
// update), so per-worker accumulators can be combined deterministically.
func (r *Running) Merge(o Running) {
	if o.n == 0 {
		return
	}
	if r.n == 0 {
		*r = o
		return
	}
	n := r.n + o.n
	d := o.mean - r.mean
	r.mean += d * float64(o.n) / float64(n)
	r.m2 += o.m2 + d*d*float64(r.n)*float64(o.n)/float64(n)
	r.n = n
}

// Dur formats a duration rounded to a reporting-friendly precision.
func Dur(d time.Duration) string {
	switch {
	case d >= time.Second:
		return fmt.Sprintf("%.2fs", d.Seconds())
	case d >= time.Millisecond:
		return fmt.Sprintf("%.2fms", float64(d)/float64(time.Millisecond))
	case d >= time.Microsecond:
		return fmt.Sprintf("%.1fµs", float64(d)/float64(time.Microsecond))
	default:
		return d.String()
	}
}
