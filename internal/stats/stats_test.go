package stats

import (
	"math"
	"strings"
	"testing"
	"time"
)

func TestTableRendering(t *testing.T) {
	tb := NewTable("Methods", "name", "time", "pages")
	tb.AddRow("FLAT", "1.2ms", 17)
	tb.AddRow("R-Tree", "9.8ms", 143)
	out := tb.String()
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 5 { // title, header, separator, 2 rows
		t.Fatalf("lines = %d:\n%s", len(lines), out)
	}
	if lines[0] != "Methods" {
		t.Errorf("title line = %q", lines[0])
	}
	if !strings.HasPrefix(lines[1], "name") || !strings.Contains(lines[1], "pages") {
		t.Errorf("header = %q", lines[1])
	}
	// Columns align: "time" column starts at the same offset in every row.
	col := strings.Index(lines[1], "time")
	if !strings.HasPrefix(lines[3][col:], "1.2ms") {
		t.Errorf("misaligned row: %q", lines[3])
	}
	if !strings.HasPrefix(lines[4][col:], "9.8ms") {
		t.Errorf("misaligned row: %q", lines[4])
	}
	if tb.NumRows() != 2 {
		t.Errorf("NumRows = %d", tb.NumRows())
	}
}

func TestTableWithoutTitle(t *testing.T) {
	tb := NewTable("", "a", "b")
	tb.AddRow(1, 2)
	out := tb.String()
	if strings.HasPrefix(out, "\n") {
		t.Error("empty title produced a blank line")
	}
	if !strings.HasPrefix(out, "a") {
		t.Errorf("output = %q", out)
	}
}

func TestCount(t *testing.T) {
	cases := map[int64]string{
		0:          "0",
		999:        "999",
		1000:       "1,000",
		1234567:    "1,234,567",
		-9876543:   "-9,876,543",
		1000000000: "1,000,000,000",
		// The int64 extremes: -MinInt64 overflows, so the sign must be
		// handled without negating.
		math.MaxInt64:     "9,223,372,036,854,775,807",
		math.MinInt64:     "-9,223,372,036,854,775,808",
		math.MinInt64 + 1: "-9,223,372,036,854,775,807",
		-1:                "-1",
		-999:              "-999",
		-1000:             "-1,000",
	}
	for in, want := range cases {
		if got := Count(in); got != want {
			t.Errorf("Count(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestBytes(t *testing.T) {
	cases := map[int64]string{
		512:             "512 B",
		4096:            "4.0 KiB",
		1536:            "1.5 KiB",
		3 * 1024 * 1024: "3.0 MiB",
		5 << 30:         "5.0 GiB",
	}
	for in, want := range cases {
		if got := Bytes(in); got != want {
			t.Errorf("Bytes(%d) = %q, want %q", in, got, want)
		}
	}
}

func TestSpeedupAndRatio(t *testing.T) {
	if got := Speedup(10*time.Second, 1*time.Second); got != "10.0x" {
		t.Errorf("Speedup = %q", got)
	}
	if got := Speedup(time.Second, 0); got != "-" {
		t.Errorf("Speedup zero = %q", got)
	}
	if got := Ratio(3, 4); got != "75.0%" {
		t.Errorf("Ratio = %q", got)
	}
	if got := Ratio(1, 0); got != "-" {
		t.Errorf("Ratio zero den = %q", got)
	}
}

func TestDur(t *testing.T) {
	cases := map[time.Duration]string{
		2500 * time.Millisecond: "2.50s",
		3200 * time.Microsecond: "3.20ms",
		1500 * time.Nanosecond:  "1.5µs",
		800 * time.Nanosecond:   "800ns",
	}
	for in, want := range cases {
		if got := Dur(in); got != want {
			t.Errorf("Dur(%v) = %q, want %q", in, got, want)
		}
	}
}

func TestRunning(t *testing.T) {
	var r Running
	if r.N() != 0 || r.Mean() != 0 || r.Var() != 0 {
		t.Error("zero value not empty")
	}
	for _, x := range []float64{2, 4, 4, 4, 5, 5, 7, 9} {
		r.Add(x)
	}
	if r.N() != 8 {
		t.Errorf("N = %d", r.N())
	}
	if r.Mean() != 5 {
		t.Errorf("Mean = %v, want 5", r.Mean())
	}
	if v := r.Var(); v < 4-1e-9 || v > 4+1e-9 {
		t.Errorf("Var = %v, want 4", v)
	}
}

func TestRunningMerge(t *testing.T) {
	xs := []float64{1, 3, 3, 7, 10, 12, 12, 13, 20}
	var whole Running
	for _, x := range xs {
		whole.Add(x)
	}
	var a, b Running
	for _, x := range xs[:4] {
		a.Add(x)
	}
	for _, x := range xs[4:] {
		b.Add(x)
	}
	a.Merge(b)
	if a.N() != whole.N() {
		t.Fatalf("merged N = %d, want %d", a.N(), whole.N())
	}
	if d := a.Mean() - whole.Mean(); d < -1e-9 || d > 1e-9 {
		t.Errorf("merged Mean = %v, want %v", a.Mean(), whole.Mean())
	}
	if d := a.Var() - whole.Var(); d < -1e-9 || d > 1e-9 {
		t.Errorf("merged Var = %v, want %v", a.Var(), whole.Var())
	}
	// Merging into an empty accumulator copies.
	var c Running
	c.Merge(whole)
	if c.N() != whole.N() || c.Mean() != whole.Mean() {
		t.Error("merge into empty accumulator lost data")
	}
	whole.Merge(Running{}) // merging empty is a no-op
	if whole.N() != int64(len(xs)) {
		t.Error("merging empty changed the accumulator")
	}
}
