package flat

import (
	"fmt"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// Rehydrate reconstructs a FLAT index from its recorded page layout: pages
// lists, per page, the item IDs laid out on it, exactly as a prior Build
// placed them. The expensive phase of Build — the STR pack that decides the
// layout — is skipped; everything else (page MBRs, coordinate sidecar,
// neighborhood graph, seed tree) is re-derived from the layout with the same
// code paths Build uses, so the result is indistinguishable from the
// original index. Item IDs must be dense in [0, len(items)) and each must
// appear on exactly one page.
func Rehydrate(items []rtree.Item, pages [][]int32, opts Options) (*Index, error) {
	o := opts.sanitize()
	idx := &Index{opts: o, boxes: make([]geom.AABB, len(items))}
	for _, it := range items {
		if it.ID < 0 || int(it.ID) >= len(items) {
			return nil, fmt.Errorf("flat: item ID %d not dense in [0,%d)", it.ID, len(items))
		}
		idx.boxes[it.ID] = it.Box
	}

	builder, err := pager.NewBuilder(o.PageSize)
	if err != nil {
		return nil, err
	}
	idx.pageOf = make([]pager.PageID, len(items))
	idx.pageBox = make([]geom.AABB, 0, len(pages))
	placed := make([]bool, len(items))
	total := 0
	for p, page := range pages {
		if len(page) == 0 || len(page) > o.PageSize {
			return nil, fmt.Errorf("flat: recorded page %d holds %d items, want 1..%d", p, len(page), o.PageSize)
		}
		box := geom.EmptyAABB()
		for _, id := range page {
			if id < 0 || int(id) >= len(items) || placed[id] {
				return nil, fmt.Errorf("flat: recorded page %d places invalid or duplicate item %d", p, id)
			}
			placed[id] = true
			pid := builder.Add(id)
			idx.pageOf[id] = pid
			box = box.Union(idx.boxes[id])
		}
		builder.FlushPage()
		idx.pageBox = append(idx.pageBox, box)
		total += len(page)
	}
	if total != len(items) {
		return nil, fmt.Errorf("flat: recorded layout places %d of %d items", total, len(items))
	}
	idx.store = builder.Build()
	if idx.store.NumPages() != len(idx.pageBox) {
		return nil, fmt.Errorf("flat: page bookkeeping diverged: %d pages, %d boxes",
			idx.store.NumPages(), len(idx.pageBox))
	}
	idx.coords = pager.BuildCoords(idx.store, func(id int32) geom.AABB { return idx.boxes[id] })

	if err := idx.buildNeighborhood(); err != nil {
		return nil, err
	}

	pageItems := make([]rtree.Item, len(idx.pageBox))
	for p, b := range idx.pageBox {
		pageItems[p] = rtree.Item{Box: b, ID: int32(p)}
	}
	idx.seedTree, err = rtree.STR(pageItems, o.SeedFanout)
	if err != nil {
		return nil, err
	}
	return idx, nil
}
