// Package flat implements FLAT (Tauheed et al., ICDE'12), the
// density-independent range-query execution strategy that §2 of the
// demonstrated paper presents.
//
// FLAT splits query execution into two phases, both independent of data
// density:
//
//  1. Seed: a small R-tree over *page* MBRs (not elements) locates one
//     arbitrary page inside the query range. Finding an arbitrary page needs
//     roughly one root-to-leaf descent regardless of how dense the data is,
//     unlike finding all matches, which suffers from MBR overlap.
//  2. Crawl: precomputed neighborhood links between pages are followed
//     breadth-first from the seed, visiting exactly the pages whose MBRs
//     intersect the range. The crawl's cost depends only on the result size.
//
// The indexing phase lays elements out on disk pages with STR packing (the
// layout the FLAT paper uses), computes each page's MBR, and derives the
// neighborhood graph: two pages are neighbors when their MBRs, expanded by
// half the neighborhood tolerance, intersect. In dense neuroscience data the
// page MBRs overlap heavily, so the graph is strongly connected wherever
// there is data.
//
// Degenerate sparse regions can still split the query range across several
// graph components; FLAT remains exact by re-seeding: after a crawl
// exhausts a component, the seed tree is probed for unvisited pages in the
// range. Every re-seed is reported in the query statistics, and the E1/E6
// experiments confirm re-seeds are rare on real densities.
package flat

import (
	"fmt"
	"slices"
	"sync"

	"neurospatial/internal/geom"
	"neurospatial/internal/grid"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// Options configures index construction.
type Options struct {
	// PageSize is the number of elements per disk page. Default 64.
	PageSize int
	// SeedFanout is the fanout of the R-tree over page MBRs. Default
	// rtree.DefaultFanout.
	SeedFanout int
	// Tolerance is the neighborhood distance: pages whose MBRs come within
	// this distance are linked. Zero links exactly touching/overlapping
	// MBRs; a small positive value bridges hairline gaps in sparse regions.
	// Default 0.
	Tolerance float64
}

// DefaultOptions returns the configuration used by the experiments.
func DefaultOptions() Options {
	return Options{PageSize: 64, SeedFanout: rtree.DefaultFanout}
}

func (o Options) sanitize() Options {
	if o.PageSize <= 0 {
		o.PageSize = 64
	}
	if o.SeedFanout <= 0 {
		o.SeedFanout = rtree.DefaultFanout
	}
	if o.Tolerance < 0 {
		o.Tolerance = 0
	}
	return o
}

// Index is a built FLAT index over a set of items.
type Index struct {
	opts Options
	// boxes[i] is the MBR of item with dense ID i.
	boxes []geom.AABB
	// store holds the page layout: page -> element IDs.
	store *pager.Store
	// pageBox[p] is the MBR of page p.
	pageBox []geom.AABB
	// pageOf[i] is the page of item i.
	pageOf []pager.PageID
	// neighbors[p] lists the pages adjacent to page p.
	neighbors [][]pager.PageID
	// seedTree indexes page MBRs; item IDs are page IDs.
	seedTree *rtree.Tree
	// coords is the struct-of-arrays sidecar of store: per-page contiguous
	// min/max coordinate runs, so the crawl's range filter scans each loaded
	// page with sequential loads instead of strided idx.boxes decodes.
	coords *pager.Coords
}

// Build constructs a FLAT index. Item IDs must be dense in [0, len(items));
// they are the IDs reported by queries.
func Build(items []rtree.Item, opts Options) (*Index, error) {
	o := opts.sanitize()
	idx := &Index{opts: o, boxes: make([]geom.AABB, len(items))}
	for _, it := range items {
		if it.ID < 0 || int(it.ID) >= len(items) {
			return nil, fmt.Errorf("flat: item ID %d not dense in [0,%d)", it.ID, len(items))
		}
		idx.boxes[it.ID] = it.Box
	}

	// Phase 1: STR-pack items onto pages.
	tiles := rtree.PackSTR(items, o.PageSize)
	builder, err := pager.NewBuilder(o.PageSize)
	if err != nil {
		return nil, err
	}
	idx.pageOf = make([]pager.PageID, len(items))
	idx.pageBox = make([]geom.AABB, 0, len(tiles))
	for _, tile := range tiles {
		box := geom.EmptyAABB()
		for _, it := range tile {
			pid := builder.Add(it.ID)
			idx.pageOf[it.ID] = pid
			box = box.Union(it.Box)
		}
		builder.FlushPage()
		idx.pageBox = append(idx.pageBox, box)
	}
	idx.store = builder.Build()
	if idx.store.NumPages() != len(idx.pageBox) {
		return nil, fmt.Errorf("flat: page bookkeeping diverged: %d pages, %d boxes",
			idx.store.NumPages(), len(idx.pageBox))
	}
	idx.coords = pager.BuildCoords(idx.store, func(id int32) geom.AABB { return idx.boxes[id] })

	// Phase 2: derive the page neighborhood graph with a uniform grid over
	// the page MBRs expanded by tol/2 each (so pages within tol link).
	if err := idx.buildNeighborhood(); err != nil {
		return nil, err
	}

	// Phase 3: the seed R-tree over page MBRs.
	pageItems := make([]rtree.Item, len(idx.pageBox))
	for p, b := range idx.pageBox {
		pageItems[p] = rtree.Item{Box: b, ID: int32(p)}
	}
	idx.seedTree, err = rtree.STR(pageItems, o.SeedFanout)
	if err != nil {
		return nil, err
	}
	return idx, nil
}

func (idx *Index) buildNeighborhood() error {
	n := len(idx.pageBox)
	idx.neighbors = make([][]pager.PageID, n)
	if n <= 1 {
		return nil
	}
	expanded := make([]geom.AABB, n)
	bounds := geom.EmptyAABB()
	for p, b := range idx.pageBox {
		expanded[p] = b.Expand(idx.opts.Tolerance / 2)
		bounds = bounds.Union(expanded[p])
	}
	g, err := grid.NewAuto(bounds, expanded, 6)
	if err != nil {
		return err
	}
	g.ForEachCandidatePair(func(i, j int32) {
		idx.neighbors[i] = append(idx.neighbors[i], pager.PageID(j))
		idx.neighbors[j] = append(idx.neighbors[j], pager.PageID(i))
	})
	// Deterministic crawl order.
	for p := range idx.neighbors {
		slices.Sort(idx.neighbors[p])
	}
	return nil
}

// Store returns the page store holding the index's element layout. Callers
// wrap it in a pager.BufferPool to run cached experiments.
func (idx *Index) Store() *pager.Store { return idx.store }

// NumPages returns the number of data pages.
func (idx *Index) NumPages() int { return idx.store.NumPages() }

// NumItems returns the number of indexed items.
func (idx *Index) NumItems() int { return len(idx.boxes) }

// Bounds returns the MBR of the indexed data (empty when the index is
// empty).
func (idx *Index) Bounds() geom.AABB { return idx.seedTree.Bounds() }

// Options returns the configuration the index was built with.
func (idx *Index) Options() Options { return idx.opts }

// PageBox returns the MBR of page p.
func (idx *Index) PageBox(p pager.PageID) geom.AABB { return idx.pageBox[p] }

// ItemBox returns the MBR of item id — the exact-geometry handle the
// engine's distance-based query kinds (kNN, within-distance) refine against.
func (idx *Index) ItemBox(id int32) geom.AABB { return idx.boxes[id] }

// PageOf returns the page an item is laid out on.
func (idx *Index) PageOf(id int32) pager.PageID { return idx.pageOf[id] }

// Coords returns the struct-of-arrays coordinate sidecar of the page layout
// (position-aligned with Store's pages). The engine's streaming path uses it
// for sequential per-page range filtering.
func (idx *Index) Coords() *pager.Coords { return idx.coords }

// Neighbors returns the neighbor pages of p. The slice is shared and must not
// be modified.
func (idx *Index) Neighbors(p pager.PageID) []pager.PageID { return idx.neighbors[p] }

// SeedTreeHeight returns the height of the page R-tree (for reporting).
func (idx *Index) SeedTreeHeight() int { return idx.seedTree.Height() }

// GraphStats summarizes the neighborhood graph.
type GraphStats struct {
	// Pages is the page count.
	Pages int
	// Edges is the undirected link count.
	Edges int
	// AvgDegree is 2*Edges/Pages.
	AvgDegree float64
	// MaxDegree is the largest neighbor list.
	MaxDegree int
	// Components is the number of connected components (1 = fully crawlable
	// from any seed).
	Components int
}

// GraphStats computes summary statistics of the neighborhood graph.
func (idx *Index) GraphStats() GraphStats {
	st := GraphStats{Pages: len(idx.neighbors)}
	for _, ns := range idx.neighbors {
		st.Edges += len(ns)
		if len(ns) > st.MaxDegree {
			st.MaxDegree = len(ns)
		}
	}
	st.Edges /= 2
	if st.Pages > 0 {
		st.AvgDegree = 2 * float64(st.Edges) / float64(st.Pages)
	}
	// Count components with a BFS.
	visited := make([]bool, st.Pages)
	for p := range visited {
		if visited[p] {
			continue
		}
		st.Components++
		queue := []pager.PageID{pager.PageID(p)}
		visited[p] = true
		for len(queue) > 0 {
			cur := queue[0]
			queue = queue[1:]
			for _, nb := range idx.neighbors[cur] {
				if !visited[nb] {
					visited[nb] = true
					queue = append(queue, nb)
				}
			}
		}
	}
	return st
}

// QueryStats describes the work of one FLAT query, split into the two phases
// the paper describes. PagesRead is the number FLAT's row of the demo's
// statistics panel reports.
type QueryStats struct {
	// SeedNodeAccesses counts seed-tree node reads (the small R-tree over
	// page MBRs), including any re-seed probes.
	SeedNodeAccesses int64
	// PagesRead counts data pages loaded by the crawl.
	PagesRead int64
	// Reseeds counts extra seed probes needed because the query range
	// spanned disconnected graph components (0 on dense data).
	Reseeds int64
	// EntriesTested counts item-box comparisons on loaded pages.
	EntriesTested int64
	// Results counts items reported.
	Results int64
	// CrawlOrder, filled only when requested, lists the data pages in the
	// order the crawl visited them (the order Figure 4 of the paper
	// animates).
	CrawlOrder []pager.PageID
}

// TotalReads returns seed accesses plus data-page reads, FLAT's total I/O
// under the one-node-per-page accounting used for the R-tree comparison.
func (s QueryStats) TotalReads() int64 { return s.SeedNodeAccesses + s.PagesRead }

// Query reports the IDs of all items whose boxes intersect q. When pool is
// non-nil, data pages are read through it (so buffer hits and prefetches are
// accounted); a nil pool models a cold read per page.
func (idx *Index) Query(q geom.AABB, pool *pager.BufferPool, visit func(int32)) QueryStats {
	return idx.query(q, poolSource(idx, pool), visit, false)
}

// QueryVia is Query reading data pages through an arbitrary PageSource; a nil
// source reads the index's own store cold. It is the execution path the
// engine layer routes through, so the same buffer-pool + prefetch stack can
// sit beneath FLAT as beneath any other index.
func (idx *Index) QueryVia(q geom.AABB, src pager.PageSource, visit func(int32)) QueryStats {
	if src == nil {
		src = idx.store
	}
	return idx.query(q, src, visit, false)
}

// PagedQuery implements the prefetch.Served query path: Query through a pool
// with the stats discarded (the pool's own accounting is the record).
func (idx *Index) PagedQuery(q geom.AABB, pool *pager.BufferPool, visit func(int32)) {
	idx.Query(q, pool, visit)
}

// QueryTraced is Query but additionally records the crawl order for
// visualization.
func (idx *Index) QueryTraced(q geom.AABB, pool *pager.BufferPool, visit func(int32)) QueryStats {
	return idx.query(q, poolSource(idx, pool), visit, true)
}

// poolSource resolves the legacy nil-pool convention onto a PageSource.
func poolSource(idx *Index, pool *pager.BufferPool) pager.PageSource {
	if pool == nil {
		return idx.store
	}
	return pool
}

// crawlScratch is the pooled per-query working set of the crawl: a stamped
// visited-set and a FIFO queue, reset (not reallocated) between queries, plus
// the re-seed exclusion visitor created once per scratch so the hot path
// allocates no closure. The pool makes repeated queries on an index of any
// size allocation-free in the steady state.
type crawlScratch struct {
	// visited[p] == stamp marks page p visited this query; bumping stamp
	// clears the set in O(1), with a one-time re-zero on wraparound.
	visited []uint32
	stamp   uint32
	queue   []pager.PageID
	// re-seed exclusion state driven by excl, bound to this scratch once.
	found rtree.Item
	ok    bool
	excl  func(rtree.Item)
}

var crawlPool = sync.Pool{New: func() any {
	s := &crawlScratch{}
	s.excl = func(it rtree.Item) {
		if !s.ok && s.visited[it.ID] != s.stamp {
			s.found, s.ok = it, true
		}
	}
	return s
}}

// getCrawl returns a scratch with a cleared visited-set covering n pages.
func getCrawl(n int) *crawlScratch {
	s := crawlPool.Get().(*crawlScratch)
	if cap(s.visited) < n {
		s.visited = make([]uint32, n)
	}
	s.visited = s.visited[:n]
	s.stamp++
	if s.stamp == 0 { // wrapped: stale slots may hold any value; re-zero once
		clear(s.visited)
		s.stamp = 1
	}
	s.queue = s.queue[:0]
	return s
}

func (idx *Index) query(q geom.AABB, src pager.PageSource, visit func(int32), trace bool) QueryStats {
	var stats QueryStats
	if len(idx.pageBox) == 0 {
		return stats
	}
	sc := getCrawl(len(idx.pageBox))
	// Deferred so the scratch is returned on every exit path, including a
	// cancellation panic unwinding from a ctx-wrapped PageSource.
	defer crawlPool.Put(sc)

	// Phase 1: seed (the allocation-free counter form of SeedInRange —
	// identical descent, identical node-access count).
	seedItem, seedNodes, _, ok := idx.seedTree.SeedInRangeCount(q)
	stats.SeedNodeAccesses += seedNodes
	if !ok {
		return stats
	}

	for {
		// Phase 2: crawl breadth-first through the neighborhood links,
		// visiting pages whose MBR intersects the range. Index-based FIFO
		// over the scratch queue — same visit order as the old pop-front
		// slice queue, no per-query allocation.
		sc.queue = append(sc.queue[:0], pager.PageID(seedItem.ID))
		sc.visited[seedItem.ID] = sc.stamp
		for qi := 0; qi < len(sc.queue); qi++ {
			p := sc.queue[qi]
			idx.readPage(p, q, src, visit, &stats, trace)
			for _, nb := range idx.neighbors[p] {
				if sc.visited[nb] != sc.stamp && idx.pageBox[nb].Intersects(q) {
					sc.visited[nb] = sc.stamp
					sc.queue = append(sc.queue, nb)
				}
			}
		}
		// Completeness: re-seed if an unvisited page still intersects the
		// range (possible only across graph components; never on dense
		// data). The probe is one more cheap descent of the page tree.
		next, reseedStats, found := idx.seedExcluding(q, sc)
		stats.SeedNodeAccesses += reseedStats
		if !found {
			return stats
		}
		stats.Reseeds++
		seedItem = next
	}
}

// readPage loads page p and tests its items against the range, scanning the
// SoA coordinate sidecar sequentially (position-aligned with the page's
// resident IDs) instead of strided idx.boxes loads.
func (idx *Index) readPage(p pager.PageID, q geom.AABB, src pager.PageSource,
	visit func(int32), stats *QueryStats, trace bool) {
	stats.PagesRead++
	if trace {
		stats.CrawlOrder = append(stats.CrawlOrder, p)
	}
	base := idx.coords.PageOffset(p)
	for i, id := range src.ReadPage(p) {
		stats.EntriesTested++
		if idx.coords.IntersectsAt(base+i, q) {
			stats.Results++
			visit(id)
		}
	}
}

// seedExcluding finds a page intersecting q that the scratch has not visited.
// It reuses the seed tree's range traversal (counter form) but keeps only the
// first unvisited hit via the scratch's pre-bound exclusion visitor.
func (idx *Index) seedExcluding(q geom.AABB, sc *crawlScratch) (rtree.Item, int64, bool) {
	sc.ok = false
	// The tree API has no early exit, but the extra accesses are counted
	// honestly and occur only in the rare re-seed path.
	nodes, _, _ := idx.seedTree.QueryCount(q, sc.excl)
	return sc.found, nodes, sc.ok
}

// PagesInRange returns the pages whose MBRs intersect q, via the seed tree.
// Prefetchers use it to turn a predicted range into page requests.
func (idx *Index) PagesInRange(q geom.AABB) []pager.PageID {
	var out []pager.PageID
	idx.seedTree.Query(q, func(it rtree.Item) {
		out = append(out, pager.PageID(it.ID))
	})
	return out
}
