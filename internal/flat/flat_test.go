package flat

import (
	"math/rand"
	"testing"

	"neurospatial/internal/circuit"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// testItems builds items from a small deterministic circuit so the data has
// realistic branch structure.
func testItems(t testing.TB, neurons int) ([]rtree.Item, *circuit.Circuit) {
	p := circuit.DefaultParams()
	p.Neurons = neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(250, 250, 250))
	c, err := circuit.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]rtree.Item, len(c.Elements))
	for i := range c.Elements {
		items[i] = rtree.Item{Box: c.Elements[i].Bounds(), ID: c.Elements[i].ID}
	}
	return items, c
}

func TestBuildValidation(t *testing.T) {
	items := []rtree.Item{{Box: geom.BoxAround(geom.V(0, 0, 0), 1), ID: 5}}
	if _, err := Build(items, DefaultOptions()); err == nil {
		t.Error("non-dense IDs accepted")
	}
	if _, err := Build(nil, DefaultOptions()); err != nil {
		t.Errorf("empty build failed: %v", err)
	}
}

func TestQueryEqualsBruteForce(t *testing.T) {
	items, _ := testItems(t, 12)
	idx, err := Build(items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		q := geom.BoxAround(
			geom.V(rng.Float64()*250, rng.Float64()*250, rng.Float64()*250),
			rng.Float64()*30+2)
		got := make(map[int32]bool)
		stats := idx.Query(q, nil, func(id int32) {
			if got[id] {
				t.Fatal("duplicate result")
			}
			got[id] = true
		})
		want := 0
		for _, it := range items {
			w := it.Box.Intersects(q)
			if w {
				want++
			}
			if w != got[it.ID] {
				t.Fatalf("trial %d: item %d got %v want %v", trial, it.ID, got[it.ID], w)
			}
		}
		if int(stats.Results) != want {
			t.Fatalf("stats.Results = %d, want %d", stats.Results, want)
		}
	}
}

func TestEmptyRangeQuery(t *testing.T) {
	items, _ := testItems(t, 6)
	idx, err := Build(items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stats := idx.Query(geom.BoxAround(geom.V(1e5, 1e5, 1e5), 5), nil, func(int32) {
		t.Error("empty range produced a result")
	})
	if stats.PagesRead != 0 {
		t.Errorf("empty range read %d pages", stats.PagesRead)
	}
	if stats.SeedNodeAccesses == 0 {
		t.Error("seed descent not counted")
	}
}

func TestEmptyIndexQuery(t *testing.T) {
	idx, err := Build(nil, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	stats := idx.Query(geom.BoxAround(geom.V(0, 0, 0), 1), nil, func(int32) {
		t.Error("result from empty index")
	})
	if stats.TotalReads() != 0 {
		t.Error("empty index performed I/O")
	}
}

func TestPageLayout(t *testing.T) {
	items, _ := testItems(t, 10)
	opts := DefaultOptions()
	opts.PageSize = 32
	idx, err := Build(items, opts)
	if err != nil {
		t.Fatal(err)
	}
	if idx.NumItems() != len(items) {
		t.Fatalf("NumItems = %d", idx.NumItems())
	}
	wantPages := (len(items) + 31) / 32
	if idx.NumPages() != wantPages {
		t.Fatalf("NumPages = %d, want %d", idx.NumPages(), wantPages)
	}
	// Every item is on exactly one page, inside that page's MBR.
	seen := make(map[int32]bool)
	for p := 0; p < idx.NumPages(); p++ {
		box := idx.PageBox(pager.PageID(p))
		for _, id := range idx.Store().Page(pager.PageID(p)) {
			if seen[id] {
				t.Fatalf("item %d on two pages", id)
			}
			seen[id] = true
			if idx.PageOf(id) != pager.PageID(p) {
				t.Fatalf("PageOf(%d) = %d, want %d", id, idx.PageOf(id), p)
			}
			if !box.ContainsBox(items[id].Box) {
				t.Fatalf("item %d escapes page MBR", id)
			}
		}
	}
	if len(seen) != len(items) {
		t.Fatalf("pages hold %d items, want %d", len(seen), len(items))
	}
}

func TestNeighborhoodGraph(t *testing.T) {
	items, _ := testItems(t, 10)
	idx, err := Build(items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	st := idx.GraphStats()
	if st.Pages != idx.NumPages() {
		t.Fatalf("graph pages = %d", st.Pages)
	}
	if st.AvgDegree < 1 {
		t.Errorf("avg degree %v too low for dense data", st.AvgDegree)
	}
	// Symmetry.
	for p := 0; p < idx.NumPages(); p++ {
		for _, nb := range idx.Neighbors(pager.PageID(p)) {
			found := false
			for _, back := range idx.Neighbors(nb) {
				if back == pager.PageID(p) {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("edge %d->%d not symmetric", p, nb)
			}
		}
	}
	// Neighbor MBRs actually come within tolerance.
	for p := 0; p < idx.NumPages(); p++ {
		pb := idx.PageBox(pager.PageID(p))
		for _, nb := range idx.Neighbors(pager.PageID(p)) {
			if !pb.Expand(1e-9).Intersects(idx.PageBox(nb)) {
				t.Fatalf("neighbor pages %d,%d do not touch", p, nb)
			}
		}
	}
	// Dense circuit data should form a single crawlable component.
	if st.Components != 1 {
		t.Errorf("graph has %d components on dense data", st.Components)
	}
}

func TestCrawlStatsAndTrace(t *testing.T) {
	items, _ := testItems(t, 12)
	idx, err := Build(items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := geom.BoxAround(geom.V(125, 125, 125), 50)
	stats := idx.QueryTraced(q, nil, func(int32) {})
	if stats.Results == 0 {
		t.Fatal("central query found nothing")
	}
	if int64(len(stats.CrawlOrder)) != stats.PagesRead {
		t.Fatalf("trace %d entries, %d pages read", len(stats.CrawlOrder), stats.PagesRead)
	}
	// Each crawled page intersects the range and appears once.
	seen := make(map[pager.PageID]bool)
	for _, p := range stats.CrawlOrder {
		if seen[p] {
			t.Fatal("page crawled twice")
		}
		seen[p] = true
		if !idx.PageBox(p).Intersects(q) {
			t.Fatal("crawled page outside range")
		}
	}
	// Every crawled page after the first neighbors an earlier one: the
	// crawl is connected (Figure 4's animation property).
	for i, p := range stats.CrawlOrder {
		if i == 0 {
			continue
		}
		connected := false
		for _, nb := range idx.Neighbors(p) {
			for _, prev := range stats.CrawlOrder[:i] {
				if nb == prev {
					connected = true
					break
				}
			}
			if connected {
				break
			}
		}
		if !connected && stats.Reseeds == 0 {
			t.Fatalf("crawl order disconnected at %d", i)
		}
	}
	// Untraced query records no order.
	stats2 := idx.Query(q, nil, func(int32) {})
	if stats2.CrawlOrder != nil {
		t.Error("untraced query recorded crawl order")
	}
	if stats2.PagesRead != stats.PagesRead || stats2.Results != stats.Results {
		t.Error("traced and untraced queries disagree")
	}
}

func TestSeedCostIndependentOfResultSize(t *testing.T) {
	items, _ := testItems(t, 16)
	idx, err := Build(items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	small := idx.Query(geom.BoxAround(geom.V(125, 125, 125), 5), nil, func(int32) {})
	large := idx.Query(geom.BoxAround(geom.V(125, 125, 125), 80), nil, func(int32) {})
	if large.Results <= small.Results {
		t.Skip("query sizing did not produce growth")
	}
	// The seed phase costs about tree height for both; it must not grow
	// with the result.
	if large.SeedNodeAccesses > small.SeedNodeAccesses*3+6 {
		t.Errorf("seed cost grew with result: %d -> %d",
			small.SeedNodeAccesses, large.SeedNodeAccesses)
	}
	// Crawl I/O is bounded by pages holding results plus boundary pages.
	if large.PagesRead > large.Results {
		t.Errorf("pages read (%d) exceeded results (%d) on a dense query",
			large.PagesRead, large.Results)
	}
}

func TestBufferPoolIntegration(t *testing.T) {
	items, _ := testItems(t, 10)
	idx, err := Build(items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	pool, err := pager.NewBufferPool(idx.Store(), idx.NumPages())
	if err != nil {
		t.Fatal(err)
	}
	q := geom.BoxAround(geom.V(125, 125, 125), 40)
	s1 := idx.Query(q, pool, func(int32) {})
	st1 := pool.Stats()
	if st1.DemandReads != s1.PagesRead {
		t.Fatalf("pool reads %d, crawl pages %d", st1.DemandReads, s1.PagesRead)
	}
	// Re-running hits the pool for every page.
	idx.Query(q, pool, func(int32) {})
	st2 := pool.Stats().Sub(st1)
	if st2.DemandReads != 0 || st2.Hits != s1.PagesRead {
		t.Errorf("warm re-run: %+v", st2)
	}
}

func TestPagesInRange(t *testing.T) {
	items, _ := testItems(t, 10)
	idx, err := Build(items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	q := geom.BoxAround(geom.V(125, 125, 125), 30)
	pages := idx.PagesInRange(q)
	want := make(map[pager.PageID]bool)
	for p := 0; p < idx.NumPages(); p++ {
		if idx.PageBox(pager.PageID(p)).Intersects(q) {
			want[pager.PageID(p)] = true
		}
	}
	if len(pages) != len(want) {
		t.Fatalf("PagesInRange = %d, want %d", len(pages), len(want))
	}
	for _, p := range pages {
		if !want[p] {
			t.Fatal("PagesInRange returned non-intersecting page")
		}
	}
}

// FLAT must agree with an element-level R-tree on every query (the two
// stations of the demo show identical results, different costs).
func TestAgreesWithRTree(t *testing.T) {
	items, _ := testItems(t, 12)
	idx, err := Build(items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	tr, err := rtree.STR(items, 16)
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(62))
	for trial := 0; trial < 25; trial++ {
		q := geom.BoxAround(
			geom.V(rng.Float64()*250, rng.Float64()*250, rng.Float64()*250),
			rng.Float64()*25+2)
		flatIDs := make(map[int32]bool)
		idx.Query(q, nil, func(id int32) { flatIDs[id] = true })
		treeIDs := make(map[int32]bool)
		tr.Query(q, func(it rtree.Item) { treeIDs[it.ID] = true })
		if len(flatIDs) != len(treeIDs) {
			t.Fatalf("trial %d: FLAT %d vs R-tree %d results", trial, len(flatIDs), len(treeIDs))
		}
		for id := range treeIDs {
			if !flatIDs[id] {
				t.Fatalf("trial %d: FLAT missed %d", trial, id)
			}
		}
	}
}

// Sparse pathological data exercises the re-seed path: two distant clusters
// inside one query range.
func TestReseedAcrossComponents(t *testing.T) {
	var items []rtree.Item
	id := int32(0)
	for i := 0; i < 200; i++ {
		items = append(items, rtree.Item{
			Box: geom.BoxAround(geom.V(float64(i%10), float64((i/10)%10), float64(i/100)), 0.6),
			ID:  id,
		})
		id++
	}
	for i := 0; i < 200; i++ {
		items = append(items, rtree.Item{
			Box: geom.BoxAround(geom.V(1000+float64(i%10), float64((i/10)%10), float64(i/100)), 0.6),
			ID:  id,
		})
		id++
	}
	idx, err := Build(items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	if idx.GraphStats().Components < 2 {
		t.Skip("clusters unexpectedly connected")
	}
	q := geom.Box(geom.V(-5, -5, -5), geom.V(1015, 15, 15))
	got := make(map[int32]bool)
	stats := idx.Query(q, nil, func(id int32) { got[id] = true })
	if len(got) != 400 {
		t.Fatalf("got %d of 400 results across components", len(got))
	}
	if stats.Reseeds == 0 {
		t.Error("no re-seed despite disconnected components")
	}
}

// A positive tolerance bridges hairline gaps: the two-cluster dataset from
// TestReseedAcrossComponents stays disconnected, but a tolerance larger than
// the gap unifies closer clusters.
func TestToleranceBridgesGaps(t *testing.T) {
	var items []rtree.Item
	id := int32(0)
	for c := 0; c < 2; c++ {
		base := float64(c) * 14 // clusters ~4 units apart after extent
		for i := 0; i < 128; i++ {
			items = append(items, rtree.Item{
				Box: geom.BoxAround(geom.V(base+float64(i%4), float64((i/4)%4), float64(i/16)), 0.5),
				ID:  id,
			})
			id++
		}
	}
	strict, err := Build(items, DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	opts := DefaultOptions()
	opts.Tolerance = 30
	loose, err := Build(items, opts)
	if err != nil {
		t.Fatal(err)
	}
	if strict.GraphStats().Components <= loose.GraphStats().Components &&
		strict.GraphStats().Components != 1 {
		t.Errorf("tolerance did not reduce components: %d vs %d",
			strict.GraphStats().Components, loose.GraphStats().Components)
	}
	// Results identical either way.
	q := geom.Box(geom.V(-2, -2, -2), geom.V(20, 6, 10))
	a := map[int32]bool{}
	strict.Query(q, nil, func(id int32) { a[id] = true })
	b := map[int32]bool{}
	loose.Query(q, nil, func(id int32) { b[id] = true })
	if len(a) != len(b) {
		t.Fatalf("tolerance changed results: %d vs %d", len(a), len(b))
	}
}
