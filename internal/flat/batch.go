package flat

import (
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/parallel"
)

// BatchQuery executes many range queries concurrently over the shared worker
// pool and returns the per-query statistics, indexed like qs. The index is
// immutable after Build, so queries share it freely; when pool is non-nil
// all workers read data pages through it (the pool is concurrency-safe and
// its counters aggregate every worker's reads — snapshot pool.Stats() around
// the call for batch totals).
//
// It is a thin compatibility wrapper over parallel.Batch, the generic
// deterministic batch executor every index shares: visit receives exactly
// the (query, id) pairs a serial loop of Query calls would produce, in the
// same order, for any worker count, and the usual Workers semantics apply
// (0 or 1 serial, > 1 that many workers, negative one per CPU).
func (idx *Index) BatchQuery(qs []geom.AABB, pool *pager.BufferPool, workers int,
	visit func(q int, id int32)) []QueryStats {

	src := poolSource(idx, pool)
	return parallel.Batch(workers, len(qs), func(qi int, emit func(int32)) QueryStats {
		return idx.query(qs[qi], src, emit, false)
	}, visit)
}

// Aggregate sums per-query statistics into batch totals. CrawlOrder is not
// aggregated (it only exists on traced queries).
func Aggregate(sts []QueryStats) QueryStats {
	var out QueryStats
	for i := range sts {
		out.SeedNodeAccesses += sts[i].SeedNodeAccesses
		out.PagesRead += sts[i].PagesRead
		out.Reseeds += sts[i].Reseeds
		out.EntriesTested += sts[i].EntriesTested
		out.Results += sts[i].Results
	}
	return out
}
