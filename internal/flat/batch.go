package flat

import (
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/parallel"
)

// BatchQuery executes many range queries concurrently over the shared worker
// pool and returns the per-query statistics, indexed like qs. The index is
// immutable after Build, so queries share it freely; when pool is non-nil
// all workers read data pages through it (the pool is concurrency-safe and
// its counters aggregate every worker's reads — snapshot pool.Stats() around
// the call for batch totals).
//
// Determinism: visit receives exactly the (query, id) pairs a serial loop of
// Query calls would produce, in the same order — each query's hits are
// buffered and delivered in query order after the pool drains. visit runs on
// the calling goroutine only; a nil visit skips result buffering entirely
// (stats only). Like every Workers knob in the repository, workers 0 or 1
// executes serially on the calling goroutine, values > 1 use that many
// workers, and negative values use one worker per CPU.
func (idx *Index) BatchQuery(qs []geom.AABB, pool *pager.BufferPool, workers int,
	visit func(q int, id int32)) []QueryStats {

	stats := make([]QueryStats, len(qs))
	w := 1
	if workers != 0 && workers != 1 {
		w = parallel.Workers(workers)
	}
	if w <= 1 || len(qs) <= 1 {
		for qi := range qs {
			qi := qi
			stats[qi] = idx.query(qs[qi], pool, func(id int32) {
				if visit != nil {
					visit(qi, id)
				}
			}, false)
		}
		return stats
	}
	if visit == nil {
		parallel.ForEach(w, len(qs), func(_, qi int) {
			stats[qi] = idx.query(qs[qi], pool, func(int32) {}, false)
		})
		return stats
	}
	ids := make([][]int32, len(qs))
	parallel.ForEach(w, len(qs), func(_, qi int) {
		stats[qi] = idx.query(qs[qi], pool, func(id int32) {
			ids[qi] = append(ids[qi], id)
		}, false)
	})
	for qi := range ids {
		for _, id := range ids[qi] {
			visit(qi, id)
		}
	}
	return stats
}

// Aggregate sums per-query statistics into batch totals. CrawlOrder is not
// aggregated (it only exists on traced queries).
func Aggregate(sts []QueryStats) QueryStats {
	var out QueryStats
	for i := range sts {
		out.SeedNodeAccesses += sts[i].SeedNodeAccesses
		out.PagesRead += sts[i].PagesRead
		out.Reseeds += sts[i].Reseeds
		out.EntriesTested += sts[i].EntriesTested
		out.Results += sts[i].Results
	}
	return out
}
