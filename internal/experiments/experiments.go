// Package experiments implements the reproduction harness: one runner per
// table/figure of the paper, as indexed in DESIGN.md. Each runner generates
// its workload, executes every contender, and returns typed rows plus a
// rendered table; the cmd/ drivers print them and the repository-level
// benchmarks wrap them in testing.B loops. EXPERIMENTS.md records the
// paper-vs-measured outcome for every runner.
//
// The experiments:
//
//	E1 — Fig. 2+3: FLAT vs R-tree range-query cost across data density.
//	E2 — Fig. 4:   FLAT crawl vs result size; R-tree per-level node reads.
//	E3 — Fig. 5:   SCOUT candidate-set pruning along a walkthrough.
//	E4 — Fig. 6:   walkthrough speedup per prefetching method.
//	E5 — Fig. 7:   synapse join: time / memory / comparisons per algorithm.
//	E6 — §1 scaling narrative: index build and query cost vs dataset size.
package experiments

import (
	"context"
	"fmt"
	"time"

	"neurospatial/internal/circuit"
	"neurospatial/internal/core"
	"neurospatial/internal/engine"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/rtree"
	"neurospatial/internal/stats"
)

// buildModel constructs the standard experiment circuit: neurons cells in a
// cube of the given edge, indexed with default options. workers follows the
// repository-wide convention verbatim (0 or 1 serial, > 1 that many,
// negative one per CPU); builds are seed-deterministic for any value, and
// the Default* configs select -1.
func buildModel(neurons int, edge float64, seed int64, workers int) (*core.Model, error) {
	p := circuit.DefaultParams()
	p.Neurons = neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(edge, edge, edge))
	p.Seed = seed
	p.Workers = workers
	return core.BuildModel(p, core.DefaultOptions())
}

// buildLayeredModel is buildModel with the cortical layer profile, the
// skewed-density regime of real tissue.
func buildLayeredModel(neurons int, edge float64, seed int64, workers int) (*core.Model, error) {
	p := circuit.DefaultParams()
	p.Neurons = neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(edge, edge, edge))
	p.Layers = circuit.CorticalLayers()
	p.Seed = seed
	p.Workers = workers
	return core.BuildModel(p, core.DefaultOptions())
}

// centerQueries returns n deterministic query boxes of the given half-extent
// scattered around the middle of the volume (where walkover effects from the
// boundary are smallest).
func centerQueries(vol geom.AABB, n int, radius float64, seed int64) []geom.AABB {
	rng := newRand(seed)
	c := vol.Center()
	span := vol.Size().Scale(0.25)
	out := make([]geom.AABB, n)
	for i := range out {
		p := geom.V(
			c.X+(rng.Float64()*2-1)*span.X,
			c.Y+(rng.Float64()*2-1)*span.Y,
			c.Z+(rng.Float64()*2-1)*span.Z,
		)
		out[i] = geom.BoxAround(p, radius)
	}
	return out
}

// E1Config parameterizes the density experiment.
type E1Config struct {
	// Densities lists the neuron counts; the volume stays fixed so element
	// density scales with them.
	Densities []int
	// Edge is the cubic volume edge in µm.
	Edge float64
	// QueryRadius is the query half-extent in µm.
	QueryRadius float64
	// Queries is the number of queries averaged per density.
	Queries int
	// Seed drives circuit construction and query placement.
	Seed int64
	// Workers is the circuit-construction worker count, with the
	// repository-wide semantics (0 or 1 serial, > 1 that many workers,
	// negative one per CPU). Results are worker-count-invariant; the
	// Default* configs select -1.
	Workers int
}

// DefaultE1 returns the configuration used in EXPERIMENTS.md.
func DefaultE1() E1Config {
	return E1Config{
		Densities:   []int{16, 32, 64, 128, 256},
		Edge:        300,
		QueryRadius: 25,
		Queries:     20,
		Seed:        1,
		Workers:     -1,
	}
}

// E1Row is one density point of experiment E1.
type E1Row struct {
	// Neurons is the cell count of this density step.
	Neurons int
	// Elements is the resulting segment count.
	Elements int
	// Density is elements per µm³.
	Density float64
	// Results is the mean result size per query.
	Results float64
	// FlatPages is FLAT's mean data-page reads per query (the crawl). These
	// are the disk reads: FLAT's only per-element storage is the data
	// pages.
	FlatPages float64
	// FlatSeed is FLAT's mean seed-tree node accesses per query, including
	// the completeness probe. The seed tree indexes *pages*, so it is ~page
	// size× smaller than an element-level R-tree and RAM-resident at any
	// realistic scale (at the paper's 10⁸-element models the element tree
	// is tens of GB while the page tree fits in memory); the accesses are
	// reported but are not disk I/O.
	FlatSeed float64
	// RTreeSTRReads is the STR-bulk-loaded element-level R-tree's mean node
	// reads; every node of the element tree is a disk page.
	RTreeSTRReads float64
	// RTreeDynReads is the insertion-built R-tree's mean node reads — the
	// degradation mode models under construction suffer (neurons are added
	// incrementally while the model is built).
	RTreeDynReads float64
	// FlatPerResult and RTreeSTRPerResult normalize disk reads by result
	// size: the paper's density-independence claim is that FLAT's value
	// stays flat while the R-tree's grows with density.
	FlatPerResult, RTreeSTRPerResult, RTreeDynPerResult float64
	// FlatTime and RTreeTime are mean wall-clock execution times.
	FlatTime, RTreeTime time.Duration
}

// RunE1 executes the density sweep. All contenders run through the engine
// layer: FLAT and the STR R-tree via the model's CompareRangeQuery, and the
// insertion-built comparator tree wrapped as one more engine configuration.
func RunE1(cfg E1Config) ([]E1Row, error) {
	var rows []E1Row
	for _, n := range cfg.Densities {
		m, err := buildModel(n, cfg.Edge, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: E1 density %d: %w", n, err)
		}
		// Insertion-built comparator tree with the same fanout, wrapped as
		// an engine contender after the mutation phase ends.
		dynTree, err := rtree.New(m.Flat.Store().Capacity())
		if err != nil {
			return nil, err
		}
		for i := range m.Circuit.Elements {
			dynTree.Insert(rtree.Item{Box: m.Circuit.Elements[i].Bounds(), ID: m.Circuit.Elements[i].ID})
		}
		dyn, err := engine.WrapRTree(dynTree)
		if err != nil {
			return nil, err
		}

		queries := centerQueries(m.Circuit.Params.Volume, cfg.Queries, cfg.QueryRadius, cfg.Seed+int64(n))
		row := E1Row{
			Neurons:  n,
			Elements: len(m.Circuit.Elements),
			Density:  m.Circuit.Density(),
		}
		for _, q := range queries {
			cmp := m.CompareRangeQuery(q)
			row.Results += float64(cmp.Results)
			row.FlatPages += float64(cmp.FlatStats.PagesRead)
			row.FlatSeed += float64(cmp.FlatStats.IndexReads)
			row.RTreeSTRReads += float64(cmp.RTreeStats.PagesRead)
			row.FlatTime += cmp.FlatTime
			row.RTreeTime += cmp.RTreeTime
			dynStats, err := dyn.Do(context.Background(), engine.RangeRequest(q), nil)
			if err != nil {
				return nil, fmt.Errorf("experiments: E1 dynamic-tree query: %w", err)
			}
			row.RTreeDynReads += float64(dynStats.PagesRead)
		}
		k := float64(len(queries))
		row.Results /= k
		row.FlatPages /= k
		row.FlatSeed /= k
		row.RTreeSTRReads /= k
		row.RTreeDynReads /= k
		row.FlatTime /= time.Duration(len(queries))
		row.RTreeTime /= time.Duration(len(queries))
		if row.Results > 0 {
			// Per-1000-results normalization keeps the numbers readable.
			row.FlatPerResult = 1000 * row.FlatPages / row.Results
			row.RTreeSTRPerResult = 1000 * row.RTreeSTRReads / row.Results
			row.RTreeDynPerResult = 1000 * row.RTreeDynReads / row.Results
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E1Table renders the rows in the layout of EXPERIMENTS.md.
func E1Table(rows []E1Row) *stats.Table {
	tb := stats.NewTable("E1 (Fig. 2+3): range-query disk reads vs density, fixed 50 µm queries"+
		"\n(FLAT seed accesses hit the RAM-resident page tree and are listed separately)",
		"neurons", "elements", "density", "results", "FLAT pages", "FLAT seed", "R-tree(STR)", "R-tree(dyn)",
		"FLAT/1k res", "STR/1k res", "dyn/1k res")
	for _, r := range rows {
		tb.AddRow(
			r.Neurons,
			r.Elements,
			fmt.Sprintf("%.4f", r.Density),
			fmt.Sprintf("%.0f", r.Results),
			fmt.Sprintf("%.1f", r.FlatPages),
			fmt.Sprintf("%.1f", r.FlatSeed),
			fmt.Sprintf("%.1f", r.RTreeSTRReads),
			fmt.Sprintf("%.1f", r.RTreeDynReads),
			fmt.Sprintf("%.1f", r.FlatPerResult),
			fmt.Sprintf("%.1f", r.RTreeSTRPerResult),
			fmt.Sprintf("%.1f", r.RTreeDynPerResult),
		)
	}
	return tb
}

// E2Config parameterizes the crawl experiment.
type E2Config struct {
	// Neurons is the model size.
	Neurons int
	// Edge is the volume edge.
	Edge float64
	// Radii is the sweep of query half-extents.
	Radii []float64
	// Seed drives construction.
	Seed int64
	// Workers is the circuit-construction worker count (repository-wide
	// semantics; the Default* configs select -1).
	Workers int
}

// DefaultE2 returns the configuration used in EXPERIMENTS.md.
func DefaultE2() E2Config {
	return E2Config{Neurons: 128, Edge: 300, Radii: []float64{5, 10, 20, 40, 80}, Seed: 2, Workers: -1}
}

// E2Row is one query-size point of experiment E2.
type E2Row struct {
	// Radius is the query half-extent.
	Radius float64
	// Results is the result size.
	Results int64
	// SeedReads is FLAT's seed-phase node accesses.
	SeedReads int64
	// CrawlPages is FLAT's crawl-phase page reads.
	CrawlPages int64
	// Reseeds counts FLAT component re-seeds (expected 0).
	Reseeds int64
	// RTreePerLevel is the R-tree's node accesses per level, leaves first.
	RTreePerLevel []int64
}

// RunE2 executes the crawl experiment: one model, growing queries at the
// center, both contenders queried through the engine layer.
func RunE2(cfg E2Config) ([]E2Row, error) {
	m, err := buildModel(cfg.Neurons, cfg.Edge, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: E2: %w", err)
	}
	eflat, ertree := m.Engine.Index("flat"), m.Engine.Index("rtree")
	center := m.Circuit.Params.Volume.Center()
	ctx := context.Background()
	var rows []E2Row
	for _, r := range cfg.Radii {
		q := geom.BoxAround(center, r)
		fs, err := eflat.Do(ctx, engine.RangeRequest(q), nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: E2 FLAT query: %w", err)
		}
		ts, err := ertree.Do(ctx, engine.RangeRequest(q), nil)
		if err != nil {
			return nil, fmt.Errorf("experiments: E2 R-tree query: %w", err)
		}
		rows = append(rows, E2Row{
			Radius:        r,
			Results:       fs.Results,
			SeedReads:     fs.IndexReads,
			CrawlPages:    fs.PagesRead,
			Reseeds:       fs.Reseeds,
			RTreePerLevel: ts.NodesPerLevel(),
		})
	}
	return rows, nil
}

// E2Table renders the rows.
func E2Table(rows []E2Row) *stats.Table {
	tb := stats.NewTable("E2 (Fig. 4): FLAT crawl cost vs result size; R-tree reads per level",
		"radius", "results", "seed reads", "crawl pages", "reseeds", "pages/1k res", "R-tree per-level (leaf..root)")
	for _, r := range rows {
		perRes := "-"
		if r.Results > 0 {
			perRes = fmt.Sprintf("%.1f", 1000*float64(r.CrawlPages)/float64(r.Results))
		}
		tb.AddRow(
			r.Radius,
			r.Results,
			r.SeedReads,
			r.CrawlPages,
			r.Reseeds,
			perRes,
			fmt.Sprintf("%v", r.RTreePerLevel),
		)
	}
	return tb
}

// FlatIndexForModel exposes the model's FLAT index to the ablation benches.
func FlatIndexForModel(m *core.Model) *flat.Index { return m.Flat }
