package experiments

import "math/rand"

// newRand returns a deterministic PRNG for workload placement; every
// experiment derives its randomness from explicit seeds so runs are exactly
// reproducible.
func newRand(seed int64) *rand.Rand { return rand.New(rand.NewSource(seed)) }
