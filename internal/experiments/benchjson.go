package experiments

import (
	"encoding/json"
	"fmt"
	"io"
	"time"
)

// BenchHeadline is one experiment's headline numbers in the machine-readable
// benchmark report (BENCH_engine.json). Values are scalars so CI trend
// tooling can diff runs without parsing tables.
type BenchHeadline struct {
	// Experiment names the runner ("E1", "E4", "E7").
	Experiment string `json:"experiment"`
	// Metrics holds named scalar results.
	Metrics map[string]float64 `json:"metrics"`
}

// BenchReport is the top-level BENCH_engine.json document.
type BenchReport struct {
	// Schema versions the document layout.
	Schema int `json:"schema"`
	// Engine records that the numbers were produced through the unified
	// engine layer (contender names in planner priority order).
	Engine []string `json:"engine"`
	// Headlines holds one entry per experiment.
	Headlines []BenchHeadline `json:"headlines"`
}

// BenchConfigs bundles the experiment configurations the JSON bench mode
// runs. QuickBenchConfigs scales them down for CI.
type BenchConfigs struct {
	E1  E1Config
	E4  E4Config
	E7  E7Config
	E8  E8Config
	E9  E9Config
	E10 E10Config
	E11 E11Config
	E12 E12Config
	E13 E13Config
}

// DefaultBenchConfigs returns the EXPERIMENTS.md-scale configurations.
func DefaultBenchConfigs() BenchConfigs {
	return BenchConfigs{E1: DefaultE1(), E4: DefaultE4(), E7: DefaultE7(), E8: DefaultE8(),
		E9: DefaultE9(), E10: DefaultE10(), E11: DefaultE11(), E12: DefaultE12(), E13: DefaultE13()}
}

// QuickBenchConfigs returns reduced configurations sized for a CI smoke
// run: the same shapes, smaller models and fewer repetitions.
func QuickBenchConfigs() BenchConfigs {
	c := DefaultBenchConfigs()
	c.E1.Densities = []int{16, 32, 64}
	c.E1.Queries = 8
	c.E4.Neurons = 24
	c.E4.AxonExtent = 900
	c.E4.Walkthroughs = 2
	c.E7.Neurons = 64
	c.E7.Queries = 32
	c.E7.WorkerCounts = []int{1, 2, 4}
	c.E8.Neurons = 64
	c.E8.Queries = 32
	c.E8.ShardCounts = []int{1, 4}
	c.E8.WorkerCounts = []int{1, 2}
	c.E9.Neurons = 64
	c.E9.Requests = 32
	c.E9.WorkerCounts = []int{1, 2}
	c.E10.Neurons = 32
	c.E10.Rounds = 3
	c.E10.Ops = 32
	c.E10.Requests = 16
	c.E10.UpdateRates = []float64{0, 1}
	c.E10.CompactMin = 32
	c.E10.CompactRatio = 0.01
	c.E11.Items = 30_000
	c.E11.Edge = 300
	c.E12.Items = 10_000
	c.E12.Ops = 16
	c.E12.ChurnOps = []int{0, 64}
	c.E12.Rounds = 10
	c.E13.Items = 30_000
	c.E13.Edge = 300
	return c
}

// RunBenchJSON executes E1, E4, E7, E8, E9, E10, E11, E12 and E13 with the
// given configurations and writes the headline numbers as indented JSON to w.
// Schema 3 added the E9 mixed-workload headlines (per-kind totals and
// planner routing); schema 4 added the E10 churn headlines (update-rate
// sweep, overlay work, compactions, copy-on-write layout reuse); schema 5
// added the E11 streaming headlines (first-page versus full-drain page reads
// and allocations on the large-result range query); schema 6 added the E12
// hot-path allocation headlines (allocs/op per contender × kind, the unpooled
// reduction factor, and the plan cache's hit rate and probe count); schema 7
// adds the E13 durable-reopen headlines (cold OpenDataset versus full
// re-index, zero page reads through open, per-contender cold-query page
// faults).
func RunBenchJSON(w io.Writer, cfgs BenchConfigs) error {
	report := BenchReport{Schema: 7, Engine: []string{"flat", "rtree", "grid", "sharded"}}

	e1, err := RunE1(cfgs.E1)
	if err != nil {
		return err
	}
	if len(e1) == 0 {
		return fmt.Errorf("experiments: bench JSON: E1 produced no rows (empty Densities?)")
	}
	last := e1[len(e1)-1] // densest point: the paper's headline comparison
	report.Headlines = append(report.Headlines, BenchHeadline{
		Experiment: "E1",
		Metrics: map[string]float64{
			"densest_neurons":            float64(last.Neurons),
			"densest_flat_pages":         last.FlatPages,
			"densest_rtree_str_reads":    last.RTreeSTRReads,
			"densest_flat_per_1k_res":    last.FlatPerResult,
			"densest_str_per_1k_res":     last.RTreeSTRPerResult,
			"densest_flat_time_ms":       float64(last.FlatTime) / float64(time.Millisecond),
			"densest_rtree_time_ms":      float64(last.RTreeTime) / float64(time.Millisecond),
			"density_points":             float64(len(e1)),
			"densest_results_per_query":  last.Results,
			"densest_elements_in_volume": float64(last.Elements),
		},
	})

	e4, err := RunE4(cfgs.E4)
	if err != nil {
		return err
	}
	if len(e4) == 0 {
		return fmt.Errorf("experiments: bench JSON: E4 produced no rows")
	}
	e4m := map[string]float64{"queries": float64(e4[0].Queries)}
	for _, r := range e4 {
		e4m[r.Method+"_speedup"] = r.Speedup
		e4m[r.Method+"_accuracy"] = r.Accuracy
		e4m[r.Method+"_stall_ms"] = float64(r.Latency) / float64(time.Millisecond)
	}
	report.Headlines = append(report.Headlines, BenchHeadline{Experiment: "E4", Metrics: e4m})

	e7, err := RunE7(cfgs.E7)
	if err != nil {
		return err
	}
	if len(e7) == 0 {
		return fmt.Errorf("experiments: bench JSON: E7 produced no rows (empty WorkerCounts?)")
	}
	e7last := e7[len(e7)-1] // widest worker count
	report.Headlines = append(report.Headlines, BenchHeadline{
		Experiment: "E7",
		Metrics: map[string]float64{
			"workers":          float64(e7last.Workers),
			"flat_speedup":     e7last.FlatSpeedup,
			"rtree_speedup":    e7last.RTreeSpeedup,
			"batch_queries":    float64(cfgs.E7.Queries),
			"flat_serial_ms":   float64(e7[0].FlatTime) / float64(time.Millisecond),
			"rtree_serial_ms":  float64(e7[0].RTreeTime) / float64(time.Millisecond),
			"total_pages_read": float64(e7last.PagesRead),
			"total_results":    float64(e7last.Results),
		},
	})

	e8, err := RunE8(cfgs.E8)
	if err != nil {
		return err
	}
	if len(e8.Rows) == 0 {
		return fmt.Errorf("experiments: bench JSON: E8 produced no rows (empty ShardCounts/WorkerCounts?)")
	}
	e8last := e8.Rows[len(e8.Rows)-1] // widest shard × worker point
	routedSharded := 0.0
	if e8.Routing.Index != nil && e8.Routing.Index.Name() == "sharded" {
		routedSharded = 1
	}
	report.Headlines = append(report.Headlines, BenchHeadline{
		Experiment: "E8",
		Metrics: map[string]float64{
			"shards":               float64(e8last.Shards),
			"workers":              float64(e8last.Workers),
			"speedup":              e8last.Speedup,
			"time_ms":              float64(e8last.Time) / float64(time.Millisecond),
			"batch_queries":        float64(cfgs.E8.Queries),
			"total_pages_read":     float64(e8last.PagesRead),
			"total_results":        float64(e8last.Results),
			"shard_fanout_per_q":   float64(e8last.ShardsTouched) / float64(e8last.Queries),
			"planner_routed_shard": routedSharded,
		},
	})

	e9, err := RunE9(cfgs.E9)
	if err != nil {
		return err
	}
	if len(e9.Rows) == 0 || len(e9.Kinds) == 0 {
		return fmt.Errorf("experiments: bench JSON: E9 produced no rows (empty WorkerCounts?)")
	}
	e9last := e9.Rows[len(e9.Rows)-1] // widest worker count
	e9m := map[string]float64{
		"requests":         float64(cfgs.E9.Requests),
		"workers":          float64(e9last.Workers),
		"speedup":          e9last.Speedup,
		"time_ms":          float64(e9last.Time) / float64(time.Millisecond),
		"total_pages_read": float64(e9last.PagesRead),
		"total_results":    float64(e9last.Results),
		"kinds":            float64(len(e9.Kinds)),
	}
	for _, k := range e9.Kinds {
		e9m[k.Kind.String()+"_results"] = float64(k.Results)
		e9m[k.Kind.String()+"_pages"] = float64(k.PagesRead)
		e9m[k.Kind.String()+"_est_cost"] = k.Cost
		e9m[k.Kind.String()+"_routed_"+k.Index] = 1
	}
	report.Headlines = append(report.Headlines, BenchHeadline{Experiment: "E9", Metrics: e9m})

	e10, err := RunE10(cfgs.E10)
	if err != nil {
		return err
	}
	if len(e10.Rows) == 0 {
		return fmt.Errorf("experiments: bench JSON: E10 produced no rows (empty UpdateRates?)")
	}
	e10last := e10.Rows[len(e10.Rows)-1] // highest update rate
	e10m := map[string]float64{
		"update_rate":       e10last.Rate,
		"rounds":            float64(cfgs.E10.Rounds),
		"ops_applied":       float64(e10last.OpsApplied),
		"mutate_ms":         float64(e10last.MutateTime) / float64(time.Millisecond),
		"query_ms":          float64(e10last.QueryTime) / float64(time.Millisecond),
		"total_pages_read":  float64(e10last.PagesRead),
		"total_results":     float64(e10last.Results),
		"delta_tested":      float64(e10last.DeltaEntries),
		"tombs_filtered":    float64(e10last.Tombstones),
		"final_epoch":       float64(e10last.Epoch),
		"compactions":       float64(e10last.Compactions),
		"layout_shared":     float64(e10last.Cow.Shared),
		"layout_patched":    float64(e10last.Cow.Patched),
		"layout_appended":   float64(e10last.Cow.Appended),
		"isolation_upheld":  1, // the runner fails the sweep otherwise
		"workers_invariant": 1, // likewise
	}
	for _, rr := range e10.Routing {
		if rr.Rate == e10last.Rate && rr.Index != "" {
			e10m[rr.Kind.String()+"_routed_"+rr.Index] = 1
		}
	}
	report.Headlines = append(report.Headlines, BenchHeadline{Experiment: "E10", Metrics: e10m})

	e11, err := RunE11(cfgs.E11)
	if err != nil {
		return err
	}
	if len(e11) == 0 {
		return fmt.Errorf("experiments: bench JSON: E11 produced no rows")
	}
	e11m := map[string]float64{
		"limit":       float64(cfgs.E11.Limit),
		"result_size": float64(e11[0].Hits),
	}
	for _, r := range e11 {
		// The runner enforces limit_pages < full_pages per contender; the
		// headline records the margins (counts, so the bench gate diffs them).
		e11m[r.Contender+"_full_pages"] = float64(r.FullReads)
		e11m[r.Contender+"_limit_pages"] = float64(r.LimitReads)
		e11m[r.Contender+"_resume_pages"] = float64(r.ResumeReads)
		e11m[r.Contender+"_full_alloc_mb"] = r.FullAllocMB
		e11m[r.Contender+"_limit_alloc_kb"] = r.LimitAllocKB
		e11m[r.Contender+"_full_time_ms"] = float64(r.FullTime) / float64(time.Millisecond)
		e11m[r.Contender+"_limit_time_ms"] = float64(r.LimitTime) / float64(time.Millisecond)
	}
	report.Headlines = append(report.Headlines, BenchHeadline{Experiment: "E11", Metrics: e11m})

	e12, err := RunE12(cfgs.E12)
	if err != nil {
		return err
	}
	e12m := map[string]float64{
		// "allocs"/"probes" metric names are gated by cmd/benchgate (counts,
		// not timings); the sharded scatter and the churned overlay cells use
		// "alloc_est" instead — their counts carry scheduling and pool-refill
		// noise — and ns figures are reported but never gated.
		"unpooled_flat_range_allocs": e12.BaselineAllocs,
		"flat_range_reduction_x":     e12.Reduction,
		"plan_cache_hit_rate":        e12.HitRate,
		"plan_cache_misses":          float64(e12.CacheMisses),
		"plan_probes_run":            float64(e12.ProbesRun),
	}
	for _, r := range e12.Rows {
		name := r.Contender + "_" + r.Kind.String()
		switch {
		case r.Churn > 0:
			e12m[name+"_churn_alloc_est"] = r.AllocsPerOp
		case r.Contender == "sharded":
			e12m[name+"_alloc_est"] = r.AllocsPerOp
			e12m[name+"_ns"] = r.NsPerOp
		default:
			e12m[name+"_allocs"] = r.AllocsPerOp
			e12m[name+"_ns"] = r.NsPerOp
		}
	}
	report.Headlines = append(report.Headlines, BenchHeadline{Experiment: "E12", Metrics: e12m})

	e13, err := RunE13(cfgs.E13)
	if err != nil {
		return err
	}
	e13m := map[string]float64{
		// Times move with the runner; the counts ("*_pages", "*_reads") are
		// deterministic under the fixed seed and gated by cmd/benchgate.
		// open_page_reads is the no-rescan witness — the runner already
		// failed if it was nonzero, so the gate pins it at zero forever.
		"items":           float64(e13.Items),
		"open_page_reads": float64(e13.OpenReads),
		"reindex_ms":      float64(e13.BuildTime) / float64(time.Millisecond),
		"create_ms":       float64(e13.CreateTime) / float64(time.Millisecond),
		"open_ms":         float64(e13.OpenTime) / float64(time.Millisecond),
		"open_speedup_x":  e13.OpenSpeedup(),
		"disk_mb":         float64(e13.DiskBytes) / (1 << 20),
	}
	for _, r := range e13.Rows {
		e13m[r.Contender+"_segment_pages"] = float64(r.SegmentPages)
		e13m[r.Contender+"_cold_pages"] = float64(r.ColdReads)
		e13m[r.Contender+"_warm_pages"] = float64(r.WarmReads)
		e13m[r.Contender+"_cold_query_ms"] = float64(r.ColdTime) / float64(time.Millisecond)
	}
	report.Headlines = append(report.Headlines, BenchHeadline{Experiment: "E13", Metrics: e13m})

	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(report)
}
