package experiments

import (
	"context"
	"fmt"
	"math"
	"time"

	"neurospatial/internal/engine"
	"neurospatial/internal/join"
	"neurospatial/internal/stats"
	"neurospatial/internal/touch"
)

// E5Config parameterizes the synapse-join experiment.
type E5Config struct {
	// Neurons is the model size.
	Neurons int
	// Edge is the volume edge.
	Edge float64
	// Eps is the synaptic gap distance.
	Eps float64
	// IncludeNestedLoop toggles the quadratic baseline (slow at scale).
	IncludeNestedLoop bool
	// Workers, when not 0 or 1, additionally runs the parallel variants of
	// PBSM, S3 and TOUCH with that many workers (negative: one per CPU).
	// The cross-check below verifies they emit exactly as many pairs as the
	// serial methods. It also drives circuit construction with the
	// repository-wide semantics (0 or 1 serial); construction is
	// worker-count-invariant.
	Workers int
	// Seed drives construction.
	Seed int64
}

// DefaultE5 returns the configuration used in EXPERIMENTS.md. The circuit
// uses the cortical layer profile: synapse placement runs on layered tissue,
// and density skew is exactly where data-oriented partitioning differs from
// space-oriented grids.
func DefaultE5() E5Config {
	return E5Config{Neurons: 128, Edge: 350, Eps: 2.0, IncludeNestedLoop: true, Seed: 5}
}

// E5Row is one join algorithm's record.
type E5Row struct {
	// Method is the algorithm name.
	Method string
	// Results is the emitted pair count (identical across methods).
	Results int64
	// Time is build + probe wall-clock time.
	Time time.Duration
	// Comparisons is the total pairwise test count (box filter tests plus
	// exact predicate evaluations) — the "number of pairwise comparisons
	// needed" of §4.2. Exact-predicate counts alone are nearly identical
	// across correct filter-and-refine joins; the filter work is where the
	// algorithms differ.
	Comparisons int64
	// ExtraBytes is the estimated auxiliary memory.
	ExtraBytes int64
	// SlowdownVsTouch is Time relative to TOUCH's.
	SlowdownVsTouch float64
}

// RunE5 executes the join comparison on the axon×dendrite workload over a
// cortically layered circuit. In addition to the five registered methods it
// runs PBSM with a fine grid ("PBSM-fine"), which buys back speed at the cost
// of the replication memory §4.1 criticizes.
func RunE5(cfg E5Config) ([]E5Row, error) {
	m, err := buildLayeredModel(cfg.Neurons, cfg.Edge, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: E5: %w", err)
	}
	axons, dendrites := m.SynapseInputs(m.Circuit.Bounds)
	algs := m.JoinAlgorithms()
	algs = append(algs, namedAlgorithm{join.PBSM{PerCell: 4}, "PBSM-fine"})
	if w := cfg.Workers; w != 0 && w != 1 {
		algs = append(algs,
			namedAlgorithm{join.PBSM{Workers: w}, "PBSM-par"},
			namedAlgorithm{join.S3{Workers: w}, "S3-par"},
			namedAlgorithm{&touch.Touch{Opts: touch.Options{Workers: w}}, "TOUCH-par"},
		)
	}
	var rows []E5Row
	for _, alg := range algs {
		if !cfg.IncludeNestedLoop && alg.Name() == "NestedLoop" {
			continue
		}
		count := int64(0)
		st := alg.Join(axons, dendrites, cfg.Eps, func(join.Pair) { count++ })
		rows = append(rows, E5Row{
			Method:      alg.Name(),
			Results:     count,
			Time:        st.TotalTime(),
			Comparisons: st.BoxTests + st.Comparisons,
			ExtraBytes:  st.ExtraBytes,
		})
	}
	var touchTime time.Duration
	for _, r := range rows {
		if r.Method == "TOUCH" {
			touchTime = r.Time
		}
	}
	for i := range rows {
		if touchTime > 0 {
			rows[i].SlowdownVsTouch = float64(rows[i].Time) / float64(touchTime)
		}
	}
	// Cross-check: all methods must agree.
	for _, r := range rows[1:] {
		if r.Results != rows[0].Results {
			return nil, fmt.Errorf("experiments: E5: %s found %d pairs, %s found %d",
				r.Method, r.Results, rows[0].Method, rows[0].Results)
		}
	}
	return rows, nil
}

// E5Table renders the rows.
func E5Table(rows []E5Row) *stats.Table {
	tb := stats.NewTable("E5 (Fig. 7 / §4.1): synapse join — time, memory, comparisons",
		"method", "pairs", "time", "vs TOUCH", "comparisons", "memory")
	for _, r := range rows {
		tb.AddRow(
			r.Method,
			r.Results,
			stats.Dur(r.Time),
			fmt.Sprintf("%.1fx", r.SlowdownVsTouch),
			stats.Count(r.Comparisons),
			stats.Bytes(r.ExtraBytes),
		)
	}
	return tb
}

// E5EpsSweep runs TOUCH and PBSM across a sweep of eps values, showing the
// robustness of the winner's margin to the join selectivity.
func E5EpsSweep(cfg E5Config, epsValues []float64) (*stats.Table, error) {
	m, err := buildLayeredModel(cfg.Neurons, cfg.Edge, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: E5 eps sweep: %w", err)
	}
	axons, dendrites := m.SynapseInputs(m.Circuit.Bounds)
	tb := stats.NewTable("E5 supplement: TOUCH vs PBSM across the synaptic gap ε",
		"eps", "pairs", "TOUCH time", "PBSM time", "TOUCH cmps", "PBSM cmps")
	touchAlg, err := m.JoinByName("TOUCH")
	if err != nil {
		return nil, err
	}
	pbsmAlg, err := m.JoinByName("PBSM")
	if err != nil {
		return nil, err
	}
	for _, eps := range epsValues {
		tCount := int64(0)
		tst := touchAlg.Join(axons, dendrites, eps, func(join.Pair) { tCount++ })
		pCount := int64(0)
		pst := pbsmAlg.Join(axons, dendrites, eps, func(join.Pair) { pCount++ })
		if tCount != pCount {
			return nil, fmt.Errorf("experiments: E5 sweep: eps=%v TOUCH %d vs PBSM %d pairs",
				eps, tCount, pCount)
		}
		tb.AddRow(
			eps,
			tCount,
			stats.Dur(tst.TotalTime()),
			stats.Dur(pst.TotalTime()),
			stats.Count(tst.BoxTests+tst.Comparisons),
			stats.Count(pst.BoxTests+pst.Comparisons),
		)
	}
	return tb, nil
}

// E6Config parameterizes the scaling experiment.
type E6Config struct {
	// Sizes lists the neuron counts; the volume grows with them so density
	// stays constant (the "build bigger models" axis of §1, as opposed to
	// E1's densification axis).
	Sizes []int
	// BaseEdge is the volume edge for the first size; volume scales
	// linearly with neuron count.
	BaseEdge float64
	// QueryRadius is the fixed query half-extent.
	QueryRadius float64
	// Queries per size.
	Queries int
	// Seed drives construction.
	Seed int64
	// Workers is the circuit-construction worker count (repository-wide
	// semantics; the Default* configs select -1).
	Workers int
}

// DefaultE6 returns the configuration used in EXPERIMENTS.md.
func DefaultE6() E6Config {
	return E6Config{
		Sizes:       []int{32, 64, 128, 256, 512},
		BaseEdge:    250,
		QueryRadius: 20,
		Queries:     12,
		Seed:        6,
		Workers:     -1,
	}
}

// E6Row is one size point.
type E6Row struct {
	// Neurons and Elements describe the dataset.
	Neurons, Elements int
	// BuildTime is the FLAT index construction time (STR + neighborhood +
	// seed tree).
	BuildTime time.Duration
	// QueryReads is FLAT's mean reads for the fixed query.
	QueryReads float64
	// QueryResults is the mean result size.
	QueryResults float64
	// SeedHeight is the page-tree height (grows logarithmically).
	SeedHeight int
}

// RunE6 executes the scaling sweep.
func RunE6(cfg E6Config) ([]E6Row, error) {
	var rows []E6Row
	base := float64(cfg.Sizes[0])
	for _, n := range cfg.Sizes {
		edge := cfg.BaseEdge * cbrt(float64(n)/base)
		start := time.Now()
		m, err := buildModel(n, edge, cfg.Seed, cfg.Workers)
		if err != nil {
			return nil, fmt.Errorf("experiments: E6 size %d: %w", n, err)
		}
		build := time.Since(start)
		eflat := m.Engine.Index("flat")
		queries := centerQueries(m.Circuit.Params.Volume, cfg.Queries, cfg.QueryRadius, cfg.Seed+int64(n))
		row := E6Row{
			Neurons:    n,
			Elements:   len(m.Circuit.Elements),
			BuildTime:  build,
			SeedHeight: m.Flat.SeedTreeHeight(),
		}
		for _, q := range queries {
			st, err := eflat.Do(context.Background(), engine.RangeRequest(q), nil)
			if err != nil {
				return nil, fmt.Errorf("experiments: E6 query: %w", err)
			}
			row.QueryReads += float64(st.TotalReads())
			row.QueryResults += float64(st.Results)
		}
		row.QueryReads /= float64(len(queries))
		row.QueryResults /= float64(len(queries))
		rows = append(rows, row)
	}
	return rows, nil
}

// E6Table renders the rows.
func E6Table(rows []E6Row) *stats.Table {
	tb := stats.NewTable("E6 (§1 scaling): constant-density growth — fixed query stays result-bound",
		"neurons", "elements", "build", "tree height", "query reads", "query results")
	for _, r := range rows {
		tb.AddRow(
			r.Neurons,
			r.Elements,
			stats.Dur(r.BuildTime),
			r.SeedHeight,
			fmt.Sprintf("%.1f", r.QueryReads),
			fmt.Sprintf("%.0f", r.QueryResults),
		)
	}
	return tb
}

func cbrt(x float64) float64 { return math.Cbrt(x) }

// namedAlgorithm renames a join algorithm for table display (used for the
// fine-grid PBSM variant).
type namedAlgorithm struct {
	join.Algorithm
	name string
}

// Name implements join.Algorithm.
func (n namedAlgorithm) Name() string { return n.name }
