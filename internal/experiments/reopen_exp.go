package experiments

// Experiment E13 — durable reopen: cold OpenDataset versus a full re-index.
//
// The durable layer's whole bargain is that a checkpointed dataset comes back
// without rebuilding anything: OpenDataset parses a manifest, thaws the
// serialized index skeletons, and attaches every contender to its on-disk
// page segment — item pages stay on disk until a query faults them in. E13
// measures both sides of that bargain on the million-item Hilbert set: the
// wall-clock cost of a full in-memory build (what reopening used to require),
// the cost of CreateDataset (build + checkpoint), and the cost of a cold
// OpenDataset, plus the first-query latency through the still-cold disk
// store for every contender.
//
// The runner does not trust timings alone. The page file's own physical-read
// counter must be zero through open (opening reads headers, not pages), the
// cold first query must fault in only a sliver of the contender's segment
// (anything near half the segment means the open path degenerated into a
// scan), the repeated query must read zero new pages (the frame cache
// holds), and all contenders must agree on the hit set.

import (
	"context"
	"fmt"
	"math"
	"os"
	"path/filepath"
	"time"

	"neurospatial/internal/engine"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/stats"
)

// E13Config parameterizes the durable-reopen experiment.
type E13Config struct {
	// Items is the dataset size.
	Items int
	// Edge is the volume edge.
	Edge float64
	// HalfMin and HalfMax bound the item half-extents.
	HalfMin, HalfMax float64
	// PageSize is the contenders' disk-page capacity.
	PageSize int
	// Seed drives item placement.
	Seed int64
	// Dir, when non-empty, is the directory the durable dataset is written
	// to (it must not exist; it is left behind for inspection). Empty uses
	// a temporary directory that is removed when the run ends.
	Dir string
}

// DefaultE13 returns the configuration used in EXPERIMENTS.md: the same
// million-item Hilbert-ordered set E11 streams over, checkpointed to disk
// and reopened cold.
func DefaultE13() E13Config {
	return E13Config{
		Items:    1_000_000,
		Edge:     1000,
		HalfMin:  0.5,
		HalfMax:  2,
		PageSize: 64,
		Seed:     31,
	}
}

// E13Row is one contender's cold-versus-warm first query through the
// reopened dataset.
type E13Row struct {
	// Contender names the index.
	Contender string
	// Hits is the query's result size (identical across contenders by
	// construction; the runner fails otherwise).
	Hits int64
	// SegmentPages is the contender's on-disk segment size in pages.
	SegmentPages int64
	// ColdReads is the number of page slots the first query faulted in from
	// disk, counted by the page file's own physical-read counter. The
	// runner fails unless 0 < ColdReads < SegmentPages/2.
	ColdReads int64
	// WarmReads is the number of additional physical reads of the repeated
	// query — zero when the frame cache holds (the runner enforces it).
	WarmReads int64
	// ColdTime and WarmTime are the two queries' wall-clock times.
	ColdTime, WarmTime time.Duration
}

// E13Result is the full reopen experiment: the three build/open timings and
// the per-contender cold-query rows.
type E13Result struct {
	// Items is the dataset size actually persisted and recovered.
	Items int
	// BuildTime is the full in-memory re-index (engine.NewDataset over all
	// contenders) — the cost OpenDataset replaces.
	BuildTime time.Duration
	// CreateTime is CreateDataset: the same build plus the initial
	// checkpoint (snapshot + page file + WAL + manifest, fsynced).
	CreateTime time.Duration
	// OpenTime is the cold OpenDataset on the checkpointed directory.
	OpenTime time.Duration
	// OpenReads is the page file's physical-read count through open — the
	// no-rescan witness; the runner fails unless it is zero.
	OpenReads int64
	// DiskBytes is the durable directory's total size.
	DiskBytes int64
	// Rows are the per-contender cold first queries.
	Rows []E13Row
}

// OpenSpeedup is the headline ratio: full re-index time over cold open time.
func (r *E13Result) OpenSpeedup() float64 {
	if r.OpenTime <= 0 {
		return 0
	}
	return float64(r.BuildTime) / float64(r.OpenTime)
}

// RunE13 checkpoints the Hilbert set to disk, reopens it cold, and runs the
// first query through every contender's disk segment.
func RunE13(cfg E13Config) (*E13Result, error) {
	if cfg.Items <= 0 {
		return nil, fmt.Errorf("experiments: E13: Items must be positive")
	}
	items := hilbertItems(E11Config{Items: cfg.Items, Edge: cfg.Edge,
		HalfMin: cfg.HalfMin, HalfMax: cfg.HalfMax, Seed: cfg.Seed})
	contenders := []string{"flat", "rtree", "grid", "sharded"}
	opts := engine.DatasetOptions{
		Contenders: contenders,
		Flat:       flat.Options{PageSize: cfg.PageSize},
		Grid:       engine.GridOptions{PageSize: cfg.PageSize},
		PageSize:   cfg.PageSize,
	}

	// The cost OpenDataset replaces: a full build of every contender.
	t0 := time.Now()
	if _, err := engine.NewDataset(items, opts); err != nil {
		return nil, fmt.Errorf("experiments: E13: re-index build: %w", err)
	}
	res := &E13Result{Items: cfg.Items, BuildTime: time.Since(t0)}

	dir := cfg.Dir
	if dir == "" {
		tmp, err := os.MkdirTemp("", "neurospatial-e13-*")
		if err != nil {
			return nil, err
		}
		defer os.RemoveAll(tmp)
		dir = tmp
	} else {
		if err := os.Mkdir(dir, 0o755); err != nil {
			return nil, fmt.Errorf("experiments: E13: create dataset dir: %w", err)
		}
	}

	t0 = time.Now()
	dd, err := engine.CreateDataset(dir, items, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: E13: CreateDataset: %w", err)
	}
	res.CreateTime = time.Since(t0)
	if err := dd.Close(); err != nil {
		return nil, err
	}
	ents, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	for _, ent := range ents {
		if info, err := os.Stat(filepath.Join(dir, ent.Name())); err == nil {
			res.DiskBytes += info.Size()
		}
	}

	t0 = time.Now()
	re, err := engine.OpenDataset(dir)
	if err != nil {
		return nil, fmt.Errorf("experiments: E13: OpenDataset: %w", err)
	}
	res.OpenTime = time.Since(t0)
	defer re.Close()
	if got := re.Current().NumItems(); got != cfg.Items {
		return nil, fmt.Errorf("experiments: E13: reopened dataset holds %d items, want %d", got, cfg.Items)
	}
	pf := re.PageFiles()[len(re.PageFiles())-1]
	res.OpenReads = pf.Reads()
	if res.OpenReads != 0 {
		return nil, fmt.Errorf("experiments: E13: open issued %d physical page reads, want 0 (full-store scan?)", res.OpenReads)
	}

	// A small interior box sized so the expected hit count stays near 100
	// at any Items scale: large enough that every contender does real work,
	// small enough that a cold read of even a tenth of a segment is a red
	// flag.
	side := cfg.Edge * math.Cbrt(100/float64(cfg.Items))
	lo := geom.V(cfg.Edge*0.25, cfg.Edge*0.25, cfg.Edge*0.25)
	query := engine.RangeRequest(geom.Box(lo, geom.V(lo.X+side, lo.Y+side, lo.Z+side)))

	var canonical []engine.Hit
	for _, name := range contenders {
		sess, err := engine.Open(engine.WithDataset(re.Dataset), engine.WithIndexName(name))
		if err != nil {
			return nil, err
		}
		seg, err := pf.Segment(name)
		if err != nil {
			sess.Close()
			return nil, fmt.Errorf("experiments: E13: %s has no disk segment: %w", name, err)
		}
		row := E13Row{Contender: name, SegmentPages: int64(seg.NumPages())}

		before := pf.Reads()
		t0 = time.Now()
		cold, err := sess.Do(context.Background(), query)
		row.ColdTime = time.Since(t0)
		if err != nil {
			sess.Close()
			return nil, fmt.Errorf("experiments: E13: %s cold query: %w", name, err)
		}
		row.ColdReads = pf.Reads() - before
		row.Hits = int64(len(cold.Hits))

		before = pf.Reads()
		t0 = time.Now()
		warm, err := sess.Do(context.Background(), query)
		row.WarmTime = time.Since(t0)
		sess.Close()
		if err != nil {
			return nil, fmt.Errorf("experiments: E13: %s warm query: %w", name, err)
		}
		row.WarmReads = pf.Reads() - before

		if row.ColdReads == 0 {
			return nil, fmt.Errorf("experiments: E13: %s cold query read no pages through the disk segment", name)
		}
		if row.ColdReads >= row.SegmentPages/2 {
			return nil, fmt.Errorf("experiments: E13: %s cold query read %d of %d segment pages — a scan, not a lookup",
				name, row.ColdReads, row.SegmentPages)
		}
		if row.WarmReads != 0 {
			return nil, fmt.Errorf("experiments: E13: %s warm query re-read %d pages — the frame cache did not hold", name, row.WarmReads)
		}
		if len(warm.Hits) != len(cold.Hits) {
			return nil, fmt.Errorf("experiments: E13: %s warm query returned %d hits, cold %d", name, len(warm.Hits), len(cold.Hits))
		}
		if canonical == nil {
			if len(cold.Hits) == 0 {
				return nil, fmt.Errorf("experiments: E13: the probe query hit nothing — widen the box")
			}
			canonical = cold.Hits
		} else if !sameHitIDs(canonical, cold.Hits) {
			return nil, fmt.Errorf("experiments: E13: %s disagrees with %s on the cold hit set", name, res.Rows[0].Contender)
		}
		res.Rows = append(res.Rows, row)
	}
	return res, nil
}

// sameHitIDs reports whether two hit lists carry the same IDs in the same
// order (contenders emit canonical ascending-ID order, so order is part of
// the contract).
func sameHitIDs(a, b []engine.Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return false
		}
	}
	return true
}

// E13Table renders the reopen experiment.
func E13Table(r *E13Result) *stats.Table {
	tb := stats.NewTable(fmt.Sprintf(
		"E13: cold OpenDataset vs full re-index (%s items, %s on disk)"+
			"\nre-index %s   create+checkpoint %s   cold open %s (%.0fx faster than re-index, %d page reads)",
		stats.Count(int64(r.Items)), stats.Bytes(r.DiskBytes),
		stats.Dur(r.BuildTime), stats.Dur(r.CreateTime), stats.Dur(r.OpenTime),
		r.OpenSpeedup(), r.OpenReads),
		"contender", "hits", "segment pages", "cold pages", "warm pages", "cold query", "warm query")
	for _, row := range r.Rows {
		tb.AddRow(row.Contender, row.Hits, row.SegmentPages, row.ColdReads, row.WarmReads,
			stats.Dur(row.ColdTime), stats.Dur(row.WarmTime))
	}
	return tb
}
