package experiments

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"time"

	"neurospatial/internal/engine"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/race"
	"neurospatial/internal/rtree"
	"neurospatial/internal/stats"
)

// E12Config parameterizes the hot-path allocation experiment: allocs/op and
// ns/op for every (contender × kind × churn) Do cell, plus the plan cache's
// hit rate on a repeated-shape workload. Churn 0 measures the raw contenders
// (the zero-alloc surface of the pooled-scratch rework); churn > 0 applies
// that many same-box updates to a Dataset and measures through the epoch's
// snapshot views, where the delta/tombstone merge necessarily allocates its
// overlay state. It is not a figure of the paper; it pins the engineering
// guarantees the demo's interactive latency rests on (steady-state queries
// must not generate garbage-collection pressure).
type E12Config struct {
	// Items is the item count.
	Items int
	// Edge is the volume edge.
	Edge float64
	// HalfMin and HalfMax bound the item half-extents.
	HalfMin, HalfMax float64
	// PageSize is the contenders' disk-page capacity.
	PageSize int
	// Ops is the number of measured executions per cell.
	Ops int
	// ChurnOps are the churn levels: same-box updates applied to the Dataset
	// before measuring (0 = raw contenders, no overlay).
	ChurnOps []int
	// Rounds is the repeated-shape plan-cache workload length (rounds × one
	// request per kind).
	Rounds int
	// Seed drives item placement.
	Seed int64
}

// DefaultE12 returns the configuration used in EXPERIMENTS.md.
func DefaultE12() E12Config {
	return E12Config{
		Items:    50_000,
		Edge:     1000,
		HalfMin:  0.5,
		HalfMax:  2,
		PageSize: 64,
		Ops:      64,
		ChurnOps: []int{0, 512},
		Rounds:   20,
		Seed:     31,
	}
}

// E12Row is one (contender, kind, churn) cell.
type E12Row struct {
	Contender string
	Kind      engine.Kind
	// Churn is the overlay size the cell ran against (0 = raw index).
	Churn int
	// AllocsPerOp and BytesPerOp are heap allocation counts and bytes per
	// execution (runtime.MemStats deltas over the warm measurement loop).
	AllocsPerOp, BytesPerOp float64
	// NsPerOp is wall-clock per execution. Reported, never gated: it moves
	// with the runner hardware.
	NsPerOp float64
	// Results is the per-query result count (proof the cell measured real
	// traversals, and a deterministic count for the bench gate).
	Results int64
}

// E12Result is the full sweep plus the plan-cache workload summary.
type E12Result struct {
	Rows []E12Row
	// BaselineAllocs is the allocs/op of the unpooled reference execution of
	// the flat Range path (fresh collector slice + per-call closure — the
	// pre-pooling implementation shape); Reduction is BaselineAllocs over the
	// measured flat/Range/churn-0 cell, capped at 1000 when the cell rounds
	// to zero.
	BaselineAllocs float64
	Reduction      float64
	// CacheHits/CacheMisses/HitRate/ProbesRun summarize the repeated-shape
	// planner workload.
	CacheHits, CacheMisses int64
	HitRate                float64
	ProbesRun              int64
}

// e12Requests builds the per-kind request sets: deterministic centers, one
// shape bucket per kind so the plan-cache workload is repeated-shape.
func e12Requests(cfg E12Config, rng interface{ Float64() float64 }) map[engine.Kind][]engine.Request {
	const perKind = 8
	out := make(map[engine.Kind][]engine.Request, 4)
	for i := 0; i < perKind; i++ {
		c := geom.V(
			cfg.Edge*(0.25+0.5*rng.Float64()),
			cfg.Edge*(0.25+0.5*rng.Float64()),
			cfg.Edge*(0.25+0.5*rng.Float64()))
		out[engine.Range] = append(out[engine.Range], engine.RangeRequest(geom.BoxAround(c, cfg.Edge*0.05)))
		out[engine.KNN] = append(out[engine.KNN], engine.KNNRequest(c, 8))
		out[engine.Point] = append(out[engine.Point], engine.PointRequest(c))
		out[engine.WithinDistance] = append(out[engine.WithinDistance],
			engine.WithinDistanceRequest(c, cfg.Edge*0.04))
	}
	return out
}

// measureCell runs the request set Ops times through ix.Do and reports the
// cell's allocation and timing profile. The set is executed once unmeasured
// first, so pools are warm and lazily derived structures exist.
func measureCell(ix engine.SpatialIndex, reqs []engine.Request, ops int) (E12Row, error) {
	ctx := context.Background()
	sink := func(engine.Hit) {}
	var results int64
	for _, r := range reqs {
		st, err := ix.Do(ctx, r, sink)
		if err != nil {
			return E12Row{}, err
		}
		results += st.Results
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	t0 := time.Now()
	for i := 0; i < ops; i++ {
		if _, err := ix.Do(ctx, reqs[i%len(reqs)], sink); err != nil {
			return E12Row{}, err
		}
	}
	el := time.Since(t0)
	runtime.ReadMemStats(&m1)
	return E12Row{
		AllocsPerOp: float64(m1.Mallocs-m0.Mallocs) / float64(ops),
		BytesPerOp:  float64(m1.TotalAlloc-m0.TotalAlloc) / float64(ops),
		NsPerOp:     float64(el.Nanoseconds()) / float64(ops),
		Results:     results / int64(len(reqs)),
	}, nil
}

// e12Escape forces the unpooled reference's per-call state onto the heap the
// way the pre-pooling code's interface boundaries did — without it the
// compiler stack-allocates the collector and the comparison measures nothing.
var e12Escape any

// unpooledFlatRange is the reference execution the reduction factor is
// measured against: the pre-pooling flat Range Do shape — a from-nil collector
// slice grown per query, a fresh emit closure, and a fresh Hit buffer per
// call.
func unpooledFlatRange(idx *flat.Index, reqs []engine.Request, ops int) float64 {
	run := func(q geom.AABB) {
		var ids []int32
		collect := func(id int32) { ids = append(ids, id) }
		e12Escape = collect
		idx.QueryVia(q, idx.Store(), collect)
		slices.Sort(ids)
		hits := make([]engine.Hit, 0, len(ids))
		for _, id := range ids {
			hits = append(hits, engine.Hit{ID: id})
		}
		e12Escape = hits
	}
	for _, r := range reqs {
		run(r.Box)
	}
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	for i := 0; i < ops; i++ {
		run(reqs[i%len(reqs)].Box)
	}
	runtime.ReadMemStats(&m1)
	return float64(m1.Mallocs-m0.Mallocs) / float64(ops)
}

// RunE12 executes the allocation sweep and the plan-cache workload. Under an
// uninstrumented build it self-enforces the rework's guarantees: the flat and
// grid Range/Point churn-0 cells are allocation-free, the flat Range path
// allocates at least 10× less than the unpooled reference, and the
// repeated-shape workload's plan-cache hit rate is at least 90%. Race-detector
// builds (whose instrumentation allocates) report the numbers unenforced.
func RunE12(cfg E12Config) (*E12Result, error) {
	if cfg.Items <= 0 || cfg.Ops <= 0 || cfg.Rounds <= 0 {
		return nil, fmt.Errorf("experiments: E12: Items, Ops and Rounds must be positive")
	}
	if len(cfg.ChurnOps) == 0 || cfg.ChurnOps[0] != 0 {
		return nil, fmt.Errorf("experiments: E12: ChurnOps must start with 0 (the raw-contender cells)")
	}
	rng := newRand(cfg.Seed)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(cfg.Edge, cfg.Edge, cfg.Edge))
	items := make([]rtree.Item, cfg.Items)
	for i := range items {
		c := geom.V(rng.Float64()*cfg.Edge, rng.Float64()*cfg.Edge, rng.Float64()*cfg.Edge)
		h := cfg.HalfMin + rng.Float64()*(cfg.HalfMax-cfg.HalfMin)
		items[i] = rtree.Item{ID: int32(i), Box: geom.BoxAround(c, h).Intersect(vol)}
	}
	reqs := e12Requests(cfg, rng)
	kinds := engine.Kinds()

	res := &E12Result{}
	contenders := func() []engine.SpatialIndex {
		return []engine.SpatialIndex{
			engine.NewFlat(flat.Options{PageSize: cfg.PageSize}),
			engine.NewRTree(0),
			engine.NewGrid(engine.GridOptions{PageSize: cfg.PageSize}),
			engine.NewSharded(engine.ShardedOptions{Flat: flat.Options{PageSize: cfg.PageSize}}),
		}
	}

	raw := contenders()
	var flatInner *flat.Index
	for _, ix := range raw {
		if err := ix.Build(items); err != nil {
			return nil, fmt.Errorf("experiments: E12: building %s: %w", ix.Name(), err)
		}
		if f, ok := ix.(*engine.Flat); ok {
			flatInner = f.Inner()
		}
	}

	for _, churn := range cfg.ChurnOps {
		var views []engine.SpatialIndex
		if churn == 0 {
			views = raw
		} else {
			ds, err := engine.NewDataset(items, engine.DatasetOptions{
				Contenders: []string{"flat", "rtree", "grid", "sharded"},
				Flat:       flat.Options{PageSize: cfg.PageSize},
			})
			if err != nil {
				return nil, fmt.Errorf("experiments: E12: dataset: %w", err)
			}
			tx := ds.Begin()
			for i := 0; i < churn; i++ {
				id := items[i%len(items)].ID
				tx.Update(id, items[i%len(items)].Box)
			}
			if _, err := tx.Commit(); err != nil {
				return nil, fmt.Errorf("experiments: E12: churn commit: %w", err)
			}
			views = ds.Current().Indexes()
		}
		for _, ix := range views {
			for _, k := range kinds {
				row, err := measureCell(ix, reqs[k], cfg.Ops)
				if err != nil {
					return nil, fmt.Errorf("experiments: E12: %s/%s churn %d: %w", ix.Name(), k, churn, err)
				}
				row.Contender, row.Kind, row.Churn = ix.Name(), k, churn
				res.Rows = append(res.Rows, row)
			}
		}
	}

	res.BaselineAllocs = unpooledFlatRange(flatInner, reqs[engine.Range], cfg.Ops)
	for _, r := range res.Rows {
		if r.Contender == "flat" && r.Kind == engine.Range && r.Churn == 0 {
			if r.AllocsPerOp < res.BaselineAllocs/1000 {
				res.Reduction = 1000
			} else {
				res.Reduction = res.BaselineAllocs / r.AllocsPerOp
			}
		}
	}

	// Plan-cache workload: a fresh planner over the raw contenders serving
	// Rounds repeated-shape rounds of all four kinds.
	p := engine.NewPlanner(contenders()...)
	for _, ix := range p.Indexes() {
		if err := ix.Build(items); err != nil {
			return nil, fmt.Errorf("experiments: E12: planner build %s: %w", ix.Name(), err)
		}
	}
	sess, err := engine.Open(engine.WithPlanner(p))
	if err != nil {
		return nil, err
	}
	defer sess.Close()
	for round := 0; round < cfg.Rounds; round++ {
		for _, k := range kinds {
			r := reqs[k][round%len(reqs[k])]
			if _, err := sess.Do(context.Background(), r); err != nil {
				return nil, fmt.Errorf("experiments: E12: plan-cache workload %s: %w", k, err)
			}
		}
	}
	res.CacheHits, res.CacheMisses = p.PlanCacheStats()
	if total := res.CacheHits + res.CacheMisses; total > 0 {
		res.HitRate = float64(res.CacheHits) / float64(total)
	}
	res.ProbesRun = p.ProbesRun()

	if !race.Enabled {
		if err := res.enforce(); err != nil {
			return nil, err
		}
	}
	return res, nil
}

// enforce checks the self-enforced guarantees (uninstrumented builds only).
func (res *E12Result) enforce() error {
	for _, r := range res.Rows {
		zeroCell := r.Churn == 0 && (r.Contender == "flat" || r.Contender == "grid")
		if zeroCell && r.AllocsPerOp >= 0.5 {
			return fmt.Errorf("experiments: E12: %s/%s churn 0 allocates %.1f/op — zero-alloc guarantee broken",
				r.Contender, r.Kind, r.AllocsPerOp)
		}
	}
	if res.Reduction < 10 {
		return fmt.Errorf("experiments: E12: flat Range allocs/op reduction %.1fx (baseline %.1f) — want >= 10x",
			res.Reduction, res.BaselineAllocs)
	}
	if res.HitRate < 0.9 {
		return fmt.Errorf("experiments: E12: plan-cache hit rate %.2f — want >= 0.90", res.HitRate)
	}
	return nil
}

// E12Table renders the sweep.
func E12Table(res *E12Result) *stats.Table {
	tb := stats.NewTable("E12: hot-path allocations per Do (pooled scratch + SoA pages + plan cache)"+
		"\n(allocs/op from runtime.MemStats deltas over warm loops; ns/op reported, never gated)",
		"contender", "kind", "churn", "allocs/op", "B/op", "ns/op", "results/q")
	for _, r := range res.Rows {
		tb.AddRow(r.Contender, r.Kind.String(), r.Churn,
			fmt.Sprintf("%.1f", r.AllocsPerOp), fmt.Sprintf("%.0f", r.BytesPerOp),
			fmt.Sprintf("%.0f", r.NsPerOp), r.Results)
	}
	return tb
}

// E12Summary renders the reduction factor and plan-cache workload results.
func E12Summary(res *E12Result) *stats.Table {
	tb := stats.NewTable("E12: guarantees (self-enforced in uninstrumented builds)",
		"metric", "value")
	tb.AddRow("unpooled flat Range allocs/op (reference)", fmt.Sprintf("%.1f", res.BaselineAllocs))
	tb.AddRow("flat Range reduction factor", fmt.Sprintf("%.0fx", res.Reduction))
	tb.AddRow("plan-cache hits", res.CacheHits)
	tb.AddRow("plan-cache misses", res.CacheMisses)
	tb.AddRow("plan-cache hit rate", fmt.Sprintf("%.2f", res.HitRate))
	tb.AddRow("calibration probes run", res.ProbesRun)
	return tb
}
