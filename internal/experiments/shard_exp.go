package experiments

import (
	"fmt"
	"time"

	"neurospatial/internal/engine"
	"neurospatial/internal/rtree"
	"neurospatial/internal/stats"
)

// E8Config parameterizes the sharded scatter-gather experiment: the
// partitioned-serving regime of the north star, where the item set is split
// into K spatial shards and every query fans out only to the shards whose
// bounds it intersects. It is not a figure of the paper; it extends the
// reproduction along the ROADMAP's sharding axis (cf. the partitioned
// inverted-index serving architecture surveyed in PAPERS.md).
type E8Config struct {
	// Neurons is the model size.
	Neurons int
	// Edge is the volume edge.
	Edge float64
	// Queries is the batch size.
	Queries int
	// QueryRadius is the query half-extent.
	QueryRadius float64
	// ShardCounts lists the shard counts K to sweep; 1 is the unsharded
	// baseline layout.
	ShardCounts []int
	// WorkerCounts lists the execution pool sizes to sweep per K.
	WorkerCounts []int
	// Index names the per-shard contender ("flat", "rtree", "grid");
	// empty selects "flat".
	Index string
	// Seed drives construction and query placement.
	Seed int64
	// Workers is the circuit-construction worker count (repository-wide
	// semantics; the Default* configs select -1).
	Workers int
}

// DefaultE8 returns the configuration used in EXPERIMENTS.md.
func DefaultE8() E8Config {
	return E8Config{
		Neurons:      192,
		Edge:         300,
		Queries:      96,
		QueryRadius:  25,
		ShardCounts:  []int{1, 2, 4, 8},
		WorkerCounts: []int{1, 2, 4, 8},
		Index:        "flat",
		Seed:         13,
		Workers:      -1,
	}
}

// E8Row is one (shard count, worker count) point of the sweep.
type E8Row struct {
	// Shards is the spatial shard count K.
	Shards int
	// Workers is the execution pool size.
	Workers int
	// Queries is the batch size (for normalizing the fan-out).
	Queries int
	// Time is the wall-clock time to drain the batch.
	Time time.Duration
	// Speedup is relative to the 1-worker row of the same shard count.
	Speedup float64
	// PagesRead is the batch's total data-page reads (identical across
	// worker counts — the determinism guarantee).
	PagesRead int64
	// ShardsTouched is the total shard fan-out over the batch; divided by
	// the query count it is the routing selectivity of the shard bounds.
	ShardsTouched int64
	// Results is the total result count (identical across all rows and
	// equal to the unsharded baseline).
	Results int64
}

// E8Result bundles the sweep rows with the planner's routing decision over
// the full contender set (flat, rtree, grid, sharded).
type E8Result struct {
	// Rows holds the shard × worker sweep.
	Rows []E8Row
	// Routing is the planner's decision for the same batch with the
	// sharded contender registered as the fourth index.
	Routing engine.Decision
	// RoutingShards is the shard count of the routed sharded contender.
	RoutingShards int
}

// RunE8 executes the sweep. Every row re-runs the same batch; the runner
// verifies that result totals match the unsharded contender and that page
// accounting and shard fan-out are worker-count-invariant, so a row can only
// exist if the scatter-gather matched the unsharded execution.
func RunE8(cfg E8Config) (*E8Result, error) {
	if cfg.Index == "" {
		cfg.Index = "flat"
	}
	m, err := buildModel(cfg.Neurons, cfg.Edge, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: E8: %w", err)
	}
	items := make([]rtree.Item, len(m.Circuit.Elements))
	for i := range m.Circuit.Elements {
		items[i] = rtree.Item{Box: m.Circuit.Elements[i].Bounds(), ID: m.Circuit.Elements[i].ID}
	}
	queries := centerQueries(m.Circuit.Params.Volume, cfg.Queries, cfg.QueryRadius, cfg.Seed)
	reqs := rangeRequests(queries)

	// Unsharded baseline result total, from the matching engine contender.
	base, err := m.EngineIndex(cfg.Index)
	if err != nil {
		return nil, fmt.Errorf("experiments: E8: %w", err)
	}
	baseAgg, _, err := sessionBatchTotals(base, reqs, 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: E8 baseline: %w", err)
	}
	baseTotal := baseAgg.Results

	res := &E8Result{}
	for _, k := range cfg.ShardCounts {
		sh := engine.NewSharded(engine.ShardedOptions{Shards: k, Index: cfg.Index})
		if err := sh.Build(items); err != nil {
			return nil, fmt.Errorf("experiments: E8 shards=%d: %w", k, err)
		}
		var first E8Row
		haveFirst := false
		for _, w := range cfg.WorkerCounts {
			agg, elapsed, err := sessionBatchTotals(sh, reqs, w)
			if err != nil {
				return nil, fmt.Errorf("experiments: E8 shards=%d workers=%d: %w", k, w, err)
			}
			if agg.Results != baseTotal {
				return nil, fmt.Errorf("experiments: E8 shards=%d workers=%d: %d results, unsharded %d",
					k, w, agg.Results, baseTotal)
			}
			row := E8Row{
				Shards:        k,
				Workers:       w,
				Queries:       len(queries),
				Time:          elapsed,
				Speedup:       1,
				PagesRead:     agg.PagesRead,
				ShardsTouched: agg.ShardsTouched,
				Results:       agg.Results,
			}
			if haveFirst {
				if row.PagesRead != first.PagesRead || row.ShardsTouched != first.ShardsTouched {
					return nil, fmt.Errorf("experiments: E8 shards=%d workers=%d diverged from serial: "+
						"%d pages / %d shard touches vs %d / %d",
						k, w, row.PagesRead, row.ShardsTouched, first.PagesRead, first.ShardsTouched)
				}
				row.Speedup = float64(first.Time) / float64(row.Time)
			} else {
				first, haveFirst = row, true
			}
			res.Rows = append(res.Rows, row)
		}
	}

	// Routing: the model's planner already carries the sharded contender as
	// its fourth index; plan the same batch and report the decision.
	res.Routing = m.Engine.Plan(queries)
	if sh, ok := m.Engine.Index("sharded").(*engine.Sharded); ok {
		res.RoutingShards = sh.NumShards()
	}
	return res, nil
}

// E8Table renders the sweep rows.
func E8Table(rows []E8Row) *stats.Table {
	tb := stats.NewTable("E8 (north star): sharded scatter-gather — shard × worker sweep, identical output per row",
		"shards", "workers", "time", "speedup", "pages", "shard fan-out/query", "results")
	for _, r := range rows {
		fanout := "-"
		if r.Queries > 0 {
			fanout = fmt.Sprintf("%.2f", float64(r.ShardsTouched)/float64(r.Queries))
		}
		tb.AddRow(
			r.Shards,
			r.Workers,
			stats.Dur(r.Time),
			fmt.Sprintf("%.2fx", r.Speedup),
			r.PagesRead,
			fanout,
			r.Results,
		)
	}
	return tb
}

// E8RoutingTable renders the planner's decision over the full contender set.
func E8RoutingTable(res *E8Result) *stats.Table {
	tb := stats.NewTable(fmt.Sprintf("E8 routing: planner decision across contenders (sharded contender: %d shards)",
		res.RoutingShards),
		"contender", "est. reads/query", "probed", "chosen")
	probed := make(map[string]bool, len(res.Routing.Probed))
	for _, n := range res.Routing.Probed {
		probed[n] = true
	}
	for _, name := range []string{"flat", "rtree", "grid", "sharded"} {
		cost, ok := res.Routing.CostPerQuery[name]
		if !ok {
			continue
		}
		chosen := ""
		if res.Routing.Index != nil && res.Routing.Index.Name() == name {
			chosen = "<-"
		}
		yes := ""
		if probed[name] {
			yes = "yes"
		}
		tb.AddRow(name, fmt.Sprintf("%.1f", cost), yes, chosen)
	}
	return tb
}
