package experiments

import (
	"context"
	"fmt"
	"time"

	"neurospatial/internal/engine"
	"neurospatial/internal/geom"
	"neurospatial/internal/stats"
)

// E9Config parameterizes the mixed-workload experiment: the Request/Session
// front door serving an interleaved stream of range, kNN, point-stabbing and
// within-distance queries through the planner's per-kind routing. It is not
// a figure of the paper; it extends the reproduction along the ROADMAP's
// "as many scenarios as you can imagine" axis (cf. Mitos's single
// query-evaluation front-end over heterogeneous retrieval components,
// PAPERS.md).
type E9Config struct {
	// Neurons is the model size.
	Neurons int
	// Edge is the volume edge.
	Edge float64
	// Requests is the batch size; kinds are interleaved round-robin
	// (range, knn, point, within, range, ...).
	Requests int
	// QueryRadius is the range-query half-extent.
	QueryRadius float64
	// K is the kNN neighbor count.
	K int
	// WithinRadius is the within-distance sphere radius.
	WithinRadius float64
	// WorkerCounts lists the execution pool sizes to sweep.
	WorkerCounts []int
	// Seed drives construction and request placement.
	Seed int64
	// Workers is the circuit-construction worker count (repository-wide
	// semantics; the Default* configs select -1).
	Workers int
}

// DefaultE9 returns the configuration used in EXPERIMENTS.md.
func DefaultE9() E9Config {
	return E9Config{
		Neurons:      192,
		Edge:         300,
		Requests:     96,
		QueryRadius:  25,
		K:            8,
		WithinRadius: 20,
		WorkerCounts: []int{1, 2, 4, 8},
		Seed:         17,
		Workers:      -1,
	}
}

// E9Row is one worker-count point of the sweep.
type E9Row struct {
	// Workers is the execution pool size.
	Workers int
	// Time is the wall-clock time to drain the batch.
	Time time.Duration
	// Speedup is relative to the 1-worker row.
	Speedup float64
	// PagesRead is the batch's total data-page reads. Unlike the hit
	// stream, it may vary between rows: the planner keeps learning from
	// each run and may re-route a kind to a cheaper contender mid-sweep —
	// the output stays identical (canonical per-kind order), only the cost
	// profile moves.
	PagesRead int64
	// Results is the total hit count (identical across all rows — the
	// runner fails otherwise).
	Results int64
}

// E9KindRow summarizes one request kind of the mixed batch.
type E9KindRow struct {
	// Kind is the query kind.
	Kind engine.Kind
	// Requests is how many requests of this kind the batch held.
	Requests int
	// Index names the contender the planner routed the kind to.
	Index string
	// Cost is the planner's estimated per-query cost of the routed
	// contender after the batch.
	Cost float64
	// Results, PagesRead and IndexReads are the kind's totals.
	Results, PagesRead, IndexReads int64
}

// E9Result bundles the worker sweep with the per-kind routing evidence.
type E9Result struct {
	// Rows holds the worker sweep.
	Rows []E9Row
	// Kinds summarizes each kind of the mixed batch.
	Kinds []E9KindRow
	// Decisions is the planner's post-execution decision per kind, over the
	// full contender set (flat, rtree, grid, sharded).
	Decisions []engine.Decision
}

// mixedRequests builds a deterministic interleaved request stream around the
// middle of the volume.
func mixedRequests(vol geom.AABB, cfg E9Config) []engine.Request {
	rng := newRand(cfg.Seed)
	c := vol.Center()
	span := vol.Size().Scale(0.25)
	out := make([]engine.Request, cfg.Requests)
	for i := range out {
		p := geom.V(
			c.X+(rng.Float64()*2-1)*span.X,
			c.Y+(rng.Float64()*2-1)*span.Y,
			c.Z+(rng.Float64()*2-1)*span.Z,
		)
		switch i % 4 {
		case 0:
			out[i] = engine.RangeRequest(geom.BoxAround(p, cfg.QueryRadius))
		case 1:
			out[i] = engine.KNNRequest(p, cfg.K)
		case 2:
			out[i] = engine.PointRequest(p)
		case 3:
			out[i] = engine.WithinDistanceRequest(p, cfg.WithinRadius)
		}
	}
	return out
}

// RunE9 executes the mixed-workload sweep through the model's Session. Every
// row re-runs the same batch; the runner verifies the rows are hit-for-hit
// identical to the serial baseline (the DoBatch determinism guarantee), so a
// row can only exist if the parallel execution matched the serial one.
func RunE9(cfg E9Config) (*E9Result, error) {
	m, err := buildModel(cfg.Neurons, cfg.Edge, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: E9: %w", err)
	}
	reqs := mixedRequests(m.Circuit.Params.Volume, cfg)
	sess := m.Session()
	ctx := context.Background()

	base, err := sess.DoBatch(ctx, reqs, 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: E9 baseline: %w", err)
	}

	res := &E9Result{}
	for _, w := range cfg.WorkerCounts {
		start := time.Now()
		got, err := sess.DoBatch(ctx, reqs, w)
		elapsed := time.Since(start)
		if err != nil {
			return nil, fmt.Errorf("experiments: E9 workers=%d: %w", w, err)
		}
		var pages, results int64
		for i := range got {
			if len(got[i].Hits) != len(base[i].Hits) {
				return nil, fmt.Errorf("experiments: E9 workers=%d request %d: %d hits, serial %d",
					w, i, len(got[i].Hits), len(base[i].Hits))
			}
			for j := range got[i].Hits {
				if got[i].Hits[j] != base[i].Hits[j] {
					return nil, fmt.Errorf("experiments: E9 workers=%d request %d hit %d diverged from serial",
						w, i, j)
				}
			}
			pages += got[i].Stats.PagesRead
			results += got[i].Stats.Results
		}
		row := E9Row{Workers: w, Time: elapsed, Speedup: 1, PagesRead: pages, Results: results}
		if len(res.Rows) > 0 {
			row.Speedup = float64(res.Rows[0].Time) / float64(row.Time)
		}
		res.Rows = append(res.Rows, row)
	}

	// Per-kind summary and routing evidence, from the serial baseline and
	// the session planner's now-learned history (empty sample: no fresh
	// probes). The session routes through its pinned snapshot's planner —
	// the per-snapshot cost inputs — so that is where the history lives.
	for _, kind := range engine.Kinds() {
		kr := E9KindRow{Kind: kind}
		for i := range base {
			if base[i].Request.Kind != kind {
				continue
			}
			kr.Requests++
			kr.Index = base[i].Index
			kr.Results += base[i].Stats.Results
			kr.PagesRead += base[i].Stats.PagesRead
			kr.IndexReads += base[i].Stats.IndexReads
		}
		if kr.Requests == 0 {
			continue
		}
		d := sess.Planner().PlanKind(kind, nil)
		kr.Cost = d.CostPerQuery[kr.Index]
		res.Kinds = append(res.Kinds, kr)
		res.Decisions = append(res.Decisions, d)
	}
	return res, nil
}

// E9Table renders the worker sweep.
func E9Table(rows []E9Row) *stats.Table {
	tb := stats.NewTable("E9 (north star): mixed range/kNN/point/within workload through the Session front door"+
		"\n(identical output per row — the DoBatch determinism guarantee)",
		"workers", "time", "speedup", "pages", "results")
	for _, r := range rows {
		tb.AddRow(r.Workers, stats.Dur(r.Time), fmt.Sprintf("%.2fx", r.Speedup), r.PagesRead, r.Results)
	}
	return tb
}

// E9KindTable renders the per-kind summary.
func E9KindTable(res *E9Result) *stats.Table {
	tb := stats.NewTable("E9 per-kind summary (serial baseline)",
		"kind", "requests", "routed to", "est. reads/query", "results", "pages", "index reads")
	for _, k := range res.Kinds {
		tb.AddRow(k.Kind.String(), k.Requests, k.Index, fmt.Sprintf("%.1f", k.Cost),
			k.Results, k.PagesRead, k.IndexReads)
	}
	return tb
}

// E9RoutingTable renders the planner's per-kind decision across the full
// contender set — the routing-table panel of the mixed workload.
func E9RoutingTable(res *E9Result) *stats.Table {
	tb := stats.NewTable("E9 routing: planner decision per kind across contenders",
		"kind", "contender", "est. reads/query", "chosen")
	for _, d := range res.Decisions {
		for _, name := range []string{"flat", "rtree", "grid", "sharded"} {
			cost, ok := d.CostPerQuery[name]
			if !ok {
				continue
			}
			chosen := ""
			if d.Index != nil && d.Index.Name() == name {
				chosen = "<-"
			}
			tb.AddRow(d.Kind.String(), name, fmt.Sprintf("%.1f", cost), chosen)
		}
	}
	return tb
}

// RunSessionDemo builds a small model and serves a handful of requests of
// the named kind through the model's planner-routed Session — the cmd
// drivers' -kind/-k/-radius front-door demo.
func RunSessionDemo(kindName string, k int, radius float64, workers int) (*stats.Table, error) {
	kind, err := engine.ParseKind(kindName)
	if err != nil {
		return nil, err
	}
	m, err := buildModel(96, 300, 23, workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: session demo: %w", err)
	}
	rng := newRand(23)
	vol := m.Circuit.Params.Volume
	c := vol.Center()
	span := vol.Size().Scale(0.25)
	reqs := make([]engine.Request, 6)
	for i := range reqs {
		p := geom.V(
			c.X+(rng.Float64()*2-1)*span.X,
			c.Y+(rng.Float64()*2-1)*span.Y,
			c.Z+(rng.Float64()*2-1)*span.Z,
		)
		switch kind {
		case engine.Range:
			reqs[i] = engine.RangeRequest(geom.BoxAround(p, radius))
		case engine.KNN:
			reqs[i] = engine.KNNRequest(p, k)
		case engine.Point:
			reqs[i] = engine.PointRequest(p)
		case engine.WithinDistance:
			reqs[i] = engine.WithinDistanceRequest(p, radius)
		}
	}
	results, err := m.DoBatch(context.Background(), reqs, 1)
	if err != nil {
		return nil, err
	}
	tb := stats.NewTable(fmt.Sprintf("session demo: %d %s requests through the planner-routed front door", len(reqs), kind),
		"request", "routed to", "results", "pages", "index reads", "entries tested")
	for _, r := range results {
		tb.AddRow(r.Request.String(), r.Index, r.Stats.Results, r.Stats.PagesRead,
			r.Stats.IndexReads, r.Stats.EntriesTested)
	}
	return tb, nil
}
