package experiments

import (
	"context"
	"fmt"
	"time"

	"neurospatial/internal/engine"
	"neurospatial/internal/geom"
	"neurospatial/internal/stats"
)

// E7Config parameterizes the batched concurrent-query experiment: the
// multi-user regime of the north star, where many range queries arrive at
// once and the system must use every core. It is not a figure of the paper;
// it extends the reproduction along the §5 "scaling the model further" axis.
type E7Config struct {
	// Neurons is the model size.
	Neurons int
	// Edge is the volume edge.
	Edge float64
	// Queries is the batch size.
	Queries int
	// QueryRadius is the query half-extent.
	QueryRadius float64
	// WorkerCounts lists the pool sizes to sweep; 1 is the serial baseline.
	WorkerCounts []int
	// Seed drives construction and query placement.
	Seed int64
	// Workers is the circuit-construction worker count (repository-wide
	// semantics; the Default* configs select -1). Distinct from
	// WorkerCounts, which sweeps the query-execution pool.
	Workers int
}

// rangeRequests wraps query boxes as Range requests for the Session surface.
func rangeRequests(queries []geom.AABB) []engine.Request {
	reqs := make([]engine.Request, len(queries))
	for i, q := range queries {
		reqs[i] = engine.RangeRequest(q)
	}
	return reqs
}

// sessionBatchTotals opens a fixed-index Session over ix, drains reqs at the
// given worker count, and returns the batch's aggregated stats and
// wall-clock time — the shared measurement step of the E7 and E8 sweeps.
func sessionBatchTotals(ix engine.SpatialIndex, reqs []engine.Request, workers int) (engine.QueryStats, time.Duration, error) {
	sess, err := engine.Open(engine.WithIndex(ix))
	if err != nil {
		return engine.QueryStats{}, 0, err
	}
	defer sess.Close()
	start := time.Now()
	results, err := sess.DoBatch(context.Background(), reqs, workers)
	elapsed := time.Since(start)
	if err != nil {
		return engine.QueryStats{}, 0, err
	}
	sts := make([]engine.QueryStats, len(results))
	for i := range results {
		sts[i] = results[i].Stats
	}
	return engine.Aggregate(sts), elapsed, nil
}

// DefaultE7 returns the configuration used in EXPERIMENTS.md.
func DefaultE7() E7Config {
	return E7Config{
		Neurons:      192,
		Edge:         300,
		Queries:      96,
		QueryRadius:  25,
		WorkerCounts: []int{1, 2, 4, 8},
		Seed:         11,
		Workers:      -1,
	}
}

// E7Row is one worker-count point of the batch experiment.
type E7Row struct {
	// Workers is the pool size.
	Workers int
	// FlatTime and RTreeTime are the wall-clock times to drain the batch.
	FlatTime, RTreeTime time.Duration
	// FlatSpeedup and RTreeSpeedup are relative to the 1-worker row.
	FlatSpeedup, RTreeSpeedup float64
	// PagesRead is FLAT's total crawl page reads (identical across rows —
	// the determinism guarantee).
	PagesRead int64
	// Results is the total result count (identical across rows).
	Results int64
}

// RunE7 executes the worker sweep over the engine contenders, each behind a
// fixed-index Session (the Request front door). Every row re-runs the same
// batch through the shared deterministic executor; the runner verifies that
// result totals and page accounting are identical across worker counts
// before reporting, so a row can only exist if the parallel execution
// matched the serial one.
func RunE7(cfg E7Config) ([]E7Row, error) {
	m, err := buildModel(cfg.Neurons, cfg.Edge, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: E7: %w", err)
	}
	queries := centerQueries(m.Circuit.Params.Volume, cfg.Queries, cfg.QueryRadius, cfg.Seed)
	reqs := rangeRequests(queries)
	var rows []E7Row
	for _, w := range cfg.WorkerCounts {
		fagg, flatTime, err := sessionBatchTotals(m.Engine.Index("flat"), reqs, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: E7 flat workers=%d: %w", w, err)
		}
		ragg, rtreeTime, err := sessionBatchTotals(m.Engine.Index("rtree"), reqs, w)
		if err != nil {
			return nil, fmt.Errorf("experiments: E7 rtree workers=%d: %w", w, err)
		}
		if fagg.Results != ragg.Results {
			return nil, fmt.Errorf("experiments: E7: workers=%d: FLAT found %d results, R-tree %d",
				w, fagg.Results, ragg.Results)
		}
		row := E7Row{
			Workers:   w,
			FlatTime:  flatTime,
			RTreeTime: rtreeTime,
			PagesRead: fagg.PagesRead,
			Results:   fagg.Results,
		}
		if len(rows) > 0 {
			if row.Results != rows[0].Results || row.PagesRead != rows[0].PagesRead {
				return nil, fmt.Errorf("experiments: E7: workers=%d diverged from serial: "+
					"%d results / %d pages vs %d / %d",
					w, row.Results, row.PagesRead, rows[0].Results, rows[0].PagesRead)
			}
			row.FlatSpeedup = float64(rows[0].FlatTime) / float64(row.FlatTime)
			row.RTreeSpeedup = float64(rows[0].RTreeTime) / float64(row.RTreeTime)
		} else {
			row.FlatSpeedup, row.RTreeSpeedup = 1, 1
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// E7Table renders the rows.
func E7Table(rows []E7Row) *stats.Table {
	tb := stats.NewTable("E7 (north star): batched concurrent range queries — worker sweep, identical output per row",
		"workers", "FLAT time", "FLAT speedup", "R-tree time", "R-tree speedup", "pages", "results")
	for _, r := range rows {
		tb.AddRow(
			r.Workers,
			stats.Dur(r.FlatTime),
			fmt.Sprintf("%.2fx", r.FlatSpeedup),
			stats.Dur(r.RTreeTime),
			fmt.Sprintf("%.2fx", r.RTreeSpeedup),
			r.PagesRead,
			r.Results,
		)
	}
	return tb
}
