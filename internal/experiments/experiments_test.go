package experiments

import (
	"strings"
	"testing"
	"time"
)

// Small configurations keep the experiment unit tests quick while still
// exercising the full code path of every runner.

func smallE1() E1Config {
	return E1Config{Densities: []int{8, 24}, Edge: 250, QueryRadius: 25, Queries: 4, Seed: 11}
}

func TestRunE1ShapesHold(t *testing.T) {
	rows, err := RunE1(smallE1())
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	lo, hi := rows[0], rows[1]
	if hi.Density <= lo.Density {
		t.Fatal("density did not grow with neuron count")
	}
	if hi.Results <= lo.Results {
		t.Fatal("result size did not grow with density")
	}
	// The headline shape: FLAT's per-result cost must not grow with
	// density as fast as the R-tree's. Allow slack on tiny models.
	flatGrowth := hi.FlatPerResult / lo.FlatPerResult
	dynGrowth := hi.RTreeDynPerResult / lo.RTreeDynPerResult
	if flatGrowth > dynGrowth*1.5 {
		t.Errorf("FLAT per-result cost grew faster than dynamic R-tree: %.2f vs %.2f",
			flatGrowth, dynGrowth)
	}
	tb := E1Table(rows)
	if tb.NumRows() != 2 || !strings.Contains(tb.String(), "FLAT") {
		t.Error("E1 table malformed")
	}
}

func TestRunE2CrawlScalesWithResults(t *testing.T) {
	cfg := E2Config{Neurons: 32, Edge: 250, Radii: []float64{10, 30, 60}, Seed: 12}
	rows, err := RunE2(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 3 {
		t.Fatalf("rows = %d", len(rows))
	}
	for i := 1; i < len(rows); i++ {
		if rows[i].Results < rows[i-1].Results {
			t.Error("results did not grow with radius")
		}
		if rows[i].CrawlPages < rows[i-1].CrawlPages {
			t.Error("crawl pages did not grow with results")
		}
	}
	// Index work (seed descent + completeness probe over the page tree)
	// stays below the data-page work for non-trivial queries, and dense
	// data never needs a re-seed.
	for _, r := range rows {
		if r.CrawlPages > 8 && r.SeedReads > r.CrawlPages {
			t.Errorf("seed reads exceed crawl pages: %+v", r)
		}
		if r.Reseeds != 0 {
			t.Errorf("dense data needed %d reseeds", r.Reseeds)
		}
	}
	if !strings.Contains(E2Table(rows).String(), "crawl pages") {
		t.Error("E2 table malformed")
	}
}

func TestRunE3PruningConverges(t *testing.T) {
	cfg := E3Config{Neurons: 24, Edge: 250, Stride: 8, Radius: 15, Walkthroughs: 3, Seed: 13}
	rows, err := RunE3(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) < 5 {
		t.Fatalf("too few steps: %d", len(rows))
	}
	// The followed structure must never be pruned.
	for _, r := range rows {
		if r.FollowedKept < 1 {
			t.Errorf("step %d: followed structure pruned (%v kept)", r.Step, r.FollowedKept)
		}
	}
	// Candidates after pruning never exceed the structures present.
	for _, r := range rows {
		if r.MeanCandidates > r.MeanStructures+1e-9 {
			t.Errorf("step %d: candidates %.1f exceed structures %.1f",
				r.Step, r.MeanCandidates, r.MeanStructures)
		}
	}
	// By mid-sequence the candidate set is smaller than the raw structure
	// count (pruning does something).
	mid := rows[len(rows)/2]
	if mid.MeanStructures > 1.5 && mid.MeanCandidates >= mid.MeanStructures {
		t.Errorf("no pruning by mid-sequence: %.1f of %.1f",
			mid.MeanCandidates, mid.MeanStructures)
	}
	if !strings.Contains(E3Table(rows).String(), "candidates") {
		t.Error("E3 table malformed")
	}
}

func TestRunE4SpeedupOrdering(t *testing.T) {
	cfg := E4Config{
		Neurons: 24, Edge: 250, Stride: 8, Radius: 15,
		ThinkTime: 500 * time.Millisecond, Walkthroughs: 3, Seed: 14,
	}
	rows, err := RunE4(cfg)
	if err != nil {
		t.Fatal(err)
	}
	byName := map[string]E4Row{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	if byName["none"].Speedup != 1 {
		t.Errorf("baseline speedup = %v", byName["none"].Speedup)
	}
	if byName["scout"].Speedup <= 1 {
		t.Errorf("SCOUT speedup %.2f not above 1", byName["scout"].Speedup)
	}
	if byName["scout"].Speedup < byName["extrapolation"].Speedup {
		t.Errorf("SCOUT (%.2fx) lost to extrapolation (%.2fx)",
			byName["scout"].Speedup, byName["extrapolation"].Speedup)
	}
	if byName["scout"].Accuracy <= byName["hilbert"].Accuracy {
		t.Errorf("SCOUT accuracy %.2f not above hilbert %.2f",
			byName["scout"].Accuracy, byName["hilbert"].Accuracy)
	}
	if !strings.Contains(E4Table(rows).String(), "scout") {
		t.Error("E4 table malformed")
	}
}

func TestRunE5AgreementAndOrdering(t *testing.T) {
	cfg := E5Config{Neurons: 24, Edge: 250, Eps: 2.0, IncludeNestedLoop: true, Seed: 15}
	rows, err := RunE5(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 6 {
		t.Fatalf("rows = %d", len(rows))
	}
	byName := map[string]E5Row{}
	for _, r := range rows {
		byName[r.Method] = r
	}
	// TOUCH does fewer comparisons than the quadratic baseline.
	if byName["TOUCH"].Comparisons >= byName["NestedLoop"].Comparisons {
		t.Error("TOUCH did not reduce comparisons vs NestedLoop")
	}
	// TOUCH memory stays below PBSM's replicated partitions.
	if byName["TOUCH"].ExtraBytes >= byName["PBSM"].ExtraBytes*4 {
		t.Errorf("TOUCH memory (%d) not competitive with PBSM (%d)",
			byName["TOUCH"].ExtraBytes, byName["PBSM"].ExtraBytes)
	}
	if !strings.Contains(E5Table(rows).String(), "TOUCH") {
		t.Error("E5 table malformed")
	}
}

func TestE5EpsSweepAgrees(t *testing.T) {
	cfg := E5Config{Neurons: 16, Edge: 250, Seed: 16}
	tb, err := E5EpsSweep(cfg, []float64{0.5, 2})
	if err != nil {
		t.Fatal(err)
	}
	if tb.NumRows() != 2 {
		t.Errorf("sweep rows = %d", tb.NumRows())
	}
}

func TestRunE6ScalesSubquadratically(t *testing.T) {
	cfg := E6Config{Sizes: []int{16, 64}, BaseEdge: 250, QueryRadius: 20, Queries: 4, Seed: 17}
	rows, err := RunE6(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 {
		t.Fatalf("rows = %d", len(rows))
	}
	lo, hi := rows[0], rows[1]
	if hi.Elements <= lo.Elements*2 {
		t.Fatal("dataset did not grow")
	}
	// Constant density: the fixed query's result stays in the same ballpark
	// and so does FLAT's I/O (within 4x while data grew ~4x+).
	if lo.QueryResults > 0 && hi.QueryReads > 4*lo.QueryReads+8 {
		t.Errorf("query reads grew with dataset size: %.1f -> %.1f",
			lo.QueryReads, hi.QueryReads)
	}
	if !strings.Contains(E6Table(rows).String(), "build") {
		t.Error("E6 table malformed")
	}
}

// TestRunE8ShardDifferential runs the sharded sweep at test scale: every
// (shard, worker) row must report identical results and page accounting to
// its serial sibling, the fan-out must stay within [1, K], and the routing
// decision must cost all four contenders.
func TestRunE8ShardDifferential(t *testing.T) {
	cfg := E8Config{
		Neurons: 24, Edge: 250, Queries: 12, QueryRadius: 25,
		ShardCounts:  []int{1, 2, 4, 7},
		WorkerCounts: []int{1, 2, 4},
		Seed:         19,
	}
	res, err := RunE8(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.ShardCounts)*len(cfg.WorkerCounts) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(cfg.ShardCounts)*len(cfg.WorkerCounts))
	}
	for _, r := range res.Rows {
		if r.Results != res.Rows[0].Results {
			t.Errorf("shards=%d workers=%d: results %d differ from first row %d",
				r.Shards, r.Workers, r.Results, res.Rows[0].Results)
		}
		perQ := float64(r.ShardsTouched) / float64(r.Queries)
		if perQ < 1 || perQ > float64(r.Shards) {
			t.Errorf("shards=%d: fan-out/query %.2f outside [1,%d]", r.Shards, perQ, r.Shards)
		}
	}
	if len(res.Routing.CostPerQuery) != 4 {
		t.Errorf("routing costed %d contenders, want 4 (%v)", len(res.Routing.CostPerQuery), res.Routing.CostPerQuery)
	}
	if res.Routing.Index == nil {
		t.Fatal("no routing decision")
	}
	if !strings.Contains(E8Table(res.Rows).String(), "shard fan-out") {
		t.Error("E8 table malformed")
	}
	if !strings.Contains(E8RoutingTable(res).String(), "sharded") {
		t.Error("E8 routing table malformed")
	}
}

// TestRunE9SessionMixedWorkload pins the mixed-workload runner: the Session
// front door serves all four kinds, rows are worker-count invariant (the
// runner itself fails otherwise), every kind appears in the per-kind summary
// with a routing decision, and the tables render.
func TestRunE9SessionMixedWorkload(t *testing.T) {
	cfg := E9Config{
		Neurons: 24, Edge: 250, Requests: 16, QueryRadius: 25, K: 4, WithinRadius: 15,
		WorkerCounts: []int{1, 2, 4},
		Seed:         29,
	}
	res, err := RunE9(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != len(cfg.WorkerCounts) {
		t.Fatalf("rows = %d, want %d", len(res.Rows), len(cfg.WorkerCounts))
	}
	for _, r := range res.Rows {
		// Hit-for-hit equality per row is enforced by the runner itself;
		// totals must agree too. (PagesRead may drift between rows: the
		// planner keeps learning and may re-route a kind mid-sweep.)
		if r.Results != res.Rows[0].Results {
			t.Errorf("workers=%d: %d results differ from serial %d",
				r.Workers, r.Results, res.Rows[0].Results)
		}
	}
	if len(res.Kinds) != 4 || len(res.Decisions) != 4 {
		t.Fatalf("per-kind summary covered %d kinds / %d decisions, want 4", len(res.Kinds), len(res.Decisions))
	}
	for i, k := range res.Kinds {
		if k.Requests != cfg.Requests/4 {
			t.Errorf("kind %s: %d requests, want %d", k.Kind, k.Requests, cfg.Requests/4)
		}
		if k.Index == "" || res.Decisions[i].Index == nil {
			t.Errorf("kind %s: missing routing decision", k.Kind)
		}
	}
	if !strings.Contains(E9Table(res.Rows).String(), "workers") {
		t.Error("E9 table malformed")
	}
	if !strings.Contains(E9KindTable(res).String(), "routed to") {
		t.Error("E9 kind table malformed")
	}
	if !strings.Contains(E9RoutingTable(res).String(), "knn") {
		t.Error("E9 routing table malformed")
	}
}

// TestRunE4OverShardedIndex pins the E4 walkthrough harness over the sharded
// store: per method, the element totals must equal the flat-served run — the
// prefetchers see the same pages through the global shard remap.
func TestRunE4OverShardedIndex(t *testing.T) {
	base := E4Config{
		Neurons: 12, Edge: 250, AxonExtent: 600, Stride: 8, Radius: 15,
		ThinkTime: 100 * time.Millisecond, Walkthroughs: 2, Seed: 23,
	}
	flatRows, err := RunE4(base)
	if err != nil {
		t.Fatal(err)
	}
	sharded := base
	sharded.Index = "sharded"
	sharded.Shards = 3
	shardRows, err := RunE4(sharded)
	if err != nil {
		t.Fatal(err)
	}
	if len(flatRows) != len(shardRows) {
		t.Fatalf("method counts differ: %d vs %d", len(flatRows), len(shardRows))
	}
	for i := range flatRows {
		if flatRows[i].Method != shardRows[i].Method {
			t.Fatalf("method order diverged: %s vs %s", flatRows[i].Method, shardRows[i].Method)
		}
		if flatRows[i].Queries != shardRows[i].Queries {
			t.Errorf("%s: %d queries over sharded, %d over flat",
				flatRows[i].Method, shardRows[i].Queries, flatRows[i].Queries)
		}
		// The serving-correctness invariant: every method over every index
		// returns the same elements for the same walkthroughs.
		if flatRows[i].Elements == 0 {
			t.Fatalf("%s: flat-served walkthrough returned no elements", flatRows[i].Method)
		}
		if flatRows[i].Elements != shardRows[i].Elements {
			t.Errorf("%s: %d elements over sharded, %d over flat",
				flatRows[i].Method, shardRows[i].Elements, flatRows[i].Elements)
		}
	}
	if shardRows[0].DemandReads == 0 {
		t.Error("sharded-served walkthrough issued no demand reads")
	}
}

// TestRunE10ChurnSweep pins the interleaved update/query runner: the runner
// itself enforces worker invariance and snapshot isolation per round (it
// errors otherwise); here we additionally check the sweep's shape — churn
// applies ops, overlay work surfaces in the stats, the rate-0 baseline stays
// clean, and the routing table covers every (rate, kind) cell.
func TestRunE10ChurnSweep(t *testing.T) {
	cfg := E10Config{
		Neurons: 24, Edge: 250, Rounds: 3, Ops: 24, Requests: 16,
		QueryRadius: 25, K: 4, WithinRadius: 15,
		UpdateRates: []float64{0, 1},
		CompactMin:  24, CompactRatio: 0.01,
		Seed: 41,
	}
	res, err := RunE10(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 2 {
		t.Fatalf("rows = %d, want 2", len(res.Rows))
	}
	baseline, churned := res.Rows[0], res.Rows[1]
	if baseline.Rate != 0 || baseline.OpsApplied != 0 || baseline.Epoch != 0 {
		t.Fatalf("rate-0 baseline mutated: %+v", baseline)
	}
	if baseline.DeltaEntries != 0 || baseline.Tombstones != 0 {
		t.Fatalf("rate-0 baseline paid overlay work: %+v", baseline)
	}
	if churned.OpsApplied == 0 || churned.Epoch == 0 {
		t.Fatalf("churned run applied nothing: %+v", churned)
	}
	if churned.Compactions == 0 {
		t.Errorf("churned run never compacted (CompactMin %d, %d ops)", cfg.CompactMin, churned.OpsApplied)
	}
	if churned.Cow.Shared == 0 {
		t.Errorf("no layout pages shared across commits: %+v", churned.Cow)
	}
	if len(res.Routing) != 2*4 {
		t.Fatalf("routing rows = %d, want 8", len(res.Routing))
	}
	for _, r := range res.Routing {
		if r.Index == "" {
			t.Errorf("rate %.2f kind %s: no routing decision", r.Rate, r.Kind)
		}
	}
	if !strings.Contains(E10Table(res.Rows).String(), "compactions") {
		t.Error("E10 table malformed")
	}
	if !strings.Contains(E10RoutingTable(res).String(), "knn") {
		t.Error("E10 routing table malformed")
	}
}

// TestRunChurnDemo smoke-tests the drivers' -churn panel.
func TestRunChurnDemo(t *testing.T) {
	tables, err := RunChurnDemo(2, 0)
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 2 {
		t.Fatalf("tables = %d", len(tables))
	}
	if !strings.Contains(tables[0].String(), "epoch") || !strings.Contains(tables[1].String(), "routed to") {
		t.Error("churn demo tables malformed")
	}
}

// TestRunE11StreamingFirstPage runs the streaming sweep at test scale: the
// runner itself enforces the early-stop and cursor-resume guarantees per
// contender (it errors out otherwise), so the test mostly pins the shape and
// the allocation asymmetry.
func TestRunE11StreamingFirstPage(t *testing.T) {
	cfg := DefaultE11()
	cfg.Items = 20_000
	cfg.Edge = 300
	rows, err := RunE11(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(rows))
	}
	for _, r := range rows {
		if r.Hits < int64(cfg.Items)*9/10 {
			t.Errorf("%s: full drain hit %d of %d items — query not in the large-result regime",
				r.Contender, r.Hits, cfg.Items)
		}
		// The limited page must allocate far less than the full drain
		// buffers: O(Limit) + index metadata, not O(result size).
		if limMB := r.LimitAllocKB / 1024; limMB*20 > r.FullAllocMB {
			t.Errorf("%s: limited page allocated %.2f MB vs %.2f MB full — not O(Limit)",
				r.Contender, limMB, r.FullAllocMB)
		}
	}
	if !strings.Contains(E11Table(rows).String(), "limit pages") {
		t.Error("E11 table malformed")
	}
}

// TestRunE12HotPathAllocs runs the allocation sweep at test scale. The runner
// self-enforces the guarantees in uninstrumented builds (zero-alloc flat/grid
// cells, >=10x flat Range reduction, >=90% plan-cache hit rate), so the test
// mostly pins the shape: every (contender x kind x churn) cell present, real
// result counts, and well-formed tables.
func TestRunE12HotPathAllocs(t *testing.T) {
	cfg := DefaultE12()
	cfg.Items = 10_000
	cfg.Ops = 16
	cfg.ChurnOps = []int{0, 64}
	cfg.Rounds = 10
	res, err := RunE12(cfg)
	if err != nil {
		t.Fatal(err)
	}
	want := 4 * 4 * len(cfg.ChurnOps)
	if len(res.Rows) != want {
		t.Fatalf("rows = %d, want %d (contender x kind x churn)", len(res.Rows), want)
	}
	var touched int
	for _, r := range res.Rows {
		if r.Results > 0 {
			touched++
		}
	}
	if touched < want/2 {
		t.Errorf("only %d/%d cells reported results — requests not hitting the tissue", touched, want)
	}
	if res.CacheHits+res.CacheMisses != int64(cfg.Rounds)*4 {
		t.Errorf("plan-cache consultations = %d, want %d", res.CacheHits+res.CacheMisses, cfg.Rounds*4)
	}
	if !strings.Contains(E12Table(res).String(), "allocs/op") ||
		!strings.Contains(E12Summary(res).String(), "hit rate") {
		t.Error("E12 tables malformed")
	}
}

// TestRunE13DurableReopen runs the reopen experiment at test scale. The
// runner self-enforces the durability guarantees (zero page reads through
// open, cold queries faulting in a sliver of the segment, zero warm re-reads,
// contender agreement), so the test mostly pins the shape: all four
// contenders present, a sane speedup figure, and a well-formed table.
func TestRunE13DurableReopen(t *testing.T) {
	cfg := DefaultE13()
	cfg.Items = 20_000
	cfg.Edge = 300
	res, err := RunE13(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Rows) != 4 {
		t.Fatalf("rows = %d, want 4", len(res.Rows))
	}
	if res.OpenReads != 0 {
		t.Errorf("open reads = %d, want 0", res.OpenReads)
	}
	if res.DiskBytes <= 0 {
		t.Errorf("disk bytes = %d, want > 0", res.DiskBytes)
	}
	if res.OpenSpeedup() <= 0 {
		t.Errorf("open speedup = %g, want > 0", res.OpenSpeedup())
	}
	for _, row := range res.Rows {
		if row.Hits != res.Rows[0].Hits {
			t.Errorf("%s hit %d, %s hit %d — contenders disagree",
				row.Contender, row.Hits, res.Rows[0].Contender, res.Rows[0].Hits)
		}
	}
	if !strings.Contains(E13Table(res).String(), "cold pages") {
		t.Error("E13 table malformed")
	}
}
