package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"neurospatial/internal/circuit"
	"neurospatial/internal/core"
	"neurospatial/internal/engine"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/stats"
)

// E10Config parameterizes the interleaved update/query experiment: the
// growing-tissue regime of the paper's motivation, where the model mutates
// while queries keep arriving. Writers apply batched mutations through the
// model's Dataset (Begin/Insert/Delete/Update/Commit), readers query the
// Session front door, and the runner verifies the two guarantees of the
// mutable redesign on every round: worker-count-invariant output, and
// snapshot isolation (a session pinned before the churn keeps replaying its
// epoch bit-identically). It is not a figure of the paper; it extends the
// reproduction along the ROADMAP's ever-growing-model axis (cf. answering
// queries under updates, PAPERS.md).
type E10Config struct {
	// Neurons is the model size.
	Neurons int
	// Edge is the volume edge.
	Edge float64
	// Rounds is the number of mutate-then-query rounds per update rate.
	Rounds int
	// Ops is the mutation batch size per round at update rate 1.0 (~40%
	// inserts, ~30% deletes, ~30% box updates).
	Ops int
	// Requests is the per-round query batch size; kinds are interleaved
	// round-robin (range, knn, point, within, ...).
	Requests int
	// QueryRadius is the range-query half-extent.
	QueryRadius float64
	// K is the kNN neighbor count.
	K int
	// WithinRadius is the within-distance sphere radius.
	WithinRadius float64
	// UpdateRates sweeps the fraction of Ops applied per round; 0 is the
	// read-only baseline.
	UpdateRates []float64
	// CompactMin and CompactRatio tune the dataset's auto-compaction
	// trigger (zero keeps the engine defaults).
	CompactMin   int
	CompactRatio float64
	// Seed drives construction, mutation and request placement.
	Seed int64
	// Workers is the circuit-construction worker count (repository-wide
	// semantics; the Default* configs select -1).
	Workers int
}

// DefaultE10 returns the configuration used in EXPERIMENTS.md.
func DefaultE10() E10Config {
	return E10Config{
		Neurons:      96,
		Edge:         300,
		Rounds:       5,
		Ops:          64,
		Requests:     48,
		QueryRadius:  25,
		K:            8,
		WithinRadius: 20,
		UpdateRates:  []float64{0, 0.25, 1},
		CompactMin:   96,
		CompactRatio: 0.01,
		Seed:         37,
		Workers:      -1,
	}
}

// E10Row is one update-rate point of the sweep.
type E10Row struct {
	// Rate is the update rate (fraction of Ops applied per round).
	Rate float64
	// OpsApplied is the total mutation count over the rounds.
	OpsApplied int64
	// MutateTime is the total wall-clock commit time (the per-update
	// maintenance cost).
	MutateTime time.Duration
	// QueryTime is the total serial query time over the rounds.
	QueryTime time.Duration
	// PagesRead and Results are the query batches' totals.
	PagesRead, Results int64
	// DeltaEntries and Tombstones are the overlay-work totals the query
	// stats reported — the read-side price of the pending updates.
	DeltaEntries, Tombstones int64
	// Epoch is the dataset's final epoch; Compactions counts how many times
	// the overlay was folded (automatic ones included).
	Epoch, Compactions int
	// Cow is the cumulative copy-on-write layout accounting: shared pages
	// are maintenance the commits did NOT pay.
	Cow pager.CowStats
}

// E10RoutingRow is one (update rate, kind) routing decision after the sweep.
type E10RoutingRow struct {
	// Rate is the update rate of the run.
	Rate float64
	// Kind is the query kind.
	Kind engine.Kind
	// Index names the contender the snapshot planner routes the kind to.
	Index string
	// Cost is its estimated per-query cost.
	Cost float64
}

// E10Result bundles the sweep with the update-rate × kind routing table.
type E10Result struct {
	// Rows holds one row per update rate.
	Rows []E10Row
	// Routing holds the per-kind decision of each rate's final snapshot.
	Routing []E10RoutingRow
}

// churnModel builds the experiment model with the dataset compaction tuning.
func churnModel(cfg E10Config) (*core.Model, error) {
	p := circuit.DefaultParams()
	p.Neurons = cfg.Neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(cfg.Edge, cfg.Edge, cfg.Edge))
	p.Seed = cfg.Seed
	p.Workers = cfg.Workers
	opts := core.DefaultOptions()
	opts.DatasetCompactMin = cfg.CompactMin
	opts.DatasetCompactRatio = cfg.CompactRatio
	return core.BuildModel(p, opts)
}

// churnRequests builds one round's deterministic mixed-kind batch.
func churnRequests(vol geom.AABB, cfg E10Config, rng *rand.Rand) []engine.Request {
	c := vol.Center()
	span := vol.Size().Scale(0.25)
	out := make([]engine.Request, cfg.Requests)
	for i := range out {
		p := geom.V(
			c.X+(rng.Float64()*2-1)*span.X,
			c.Y+(rng.Float64()*2-1)*span.Y,
			c.Z+(rng.Float64()*2-1)*span.Z,
		)
		switch i % 4 {
		case 0:
			out[i] = engine.RangeRequest(geom.BoxAround(p, cfg.QueryRadius))
		case 1:
			out[i] = engine.KNNRequest(p, cfg.K)
		case 2:
			out[i] = engine.PointRequest(p)
		case 3:
			out[i] = engine.WithinDistanceRequest(p, cfg.WithinRadius)
		}
	}
	return out
}

// churnBatch applies one mutation batch through the model, tracking the live
// ID set for delete/update targeting. It returns the number of ops applied.
func churnBatch(m *core.Model, rng *rand.Rand, live *[]int32, ops int, vol geom.AABB) (int, error) {
	if ops <= 0 {
		return 0, nil
	}
	applied := 0
	deleted := make(map[int32]bool)
	var inserted []int32
	_, err := m.Mutate(func(tx *engine.Tx) error {
		used := make(map[int32]bool)
		for i := 0; i < ops; i++ {
			k := rng.Intn(10)
			switch {
			case k < 4 || len(*live) == 0:
				span := vol.Size()
				p := geom.V(
					vol.Min.X+rng.Float64()*span.X,
					vol.Min.Y+rng.Float64()*span.Y,
					vol.Min.Z+rng.Float64()*span.Z,
				)
				inserted = append(inserted, tx.Insert(geom.BoxAround(p, 1+rng.Float64()*4)))
				applied++
			case k < 7:
				id := (*live)[rng.Intn(len(*live))]
				if used[id] {
					continue
				}
				used[id] = true
				tx.Delete(id)
				deleted[id] = true
				applied++
			default:
				id := (*live)[rng.Intn(len(*live))]
				if used[id] {
					continue
				}
				used[id] = true
				span := vol.Size()
				p := geom.V(
					vol.Min.X+rng.Float64()*span.X,
					vol.Min.Y+rng.Float64()*span.Y,
					vol.Min.Z+rng.Float64()*span.Z,
				)
				tx.Update(id, geom.BoxAround(p, 1+rng.Float64()*4))
				applied++
			}
		}
		return nil
	})
	if err != nil {
		return 0, err
	}
	kept := (*live)[:0]
	for _, id := range *live {
		if !deleted[id] {
			kept = append(kept, id)
		}
	}
	*live = append(kept, inserted...)
	return applied, nil
}

// RunE10 executes the update-rate sweep. For each rate it builds a fresh
// model, pins one session before any churn, then alternates mutation batches
// with mixed query batches. Every round the runner enforces (failing
// otherwise): parallel output identical to serial, and the pre-churn pinned
// session replaying its epoch-0 results bit-identically.
func RunE10(cfg E10Config) (*E10Result, error) {
	res := &E10Result{}
	for _, rate := range cfg.UpdateRates {
		m, err := churnModel(cfg)
		if err != nil {
			return nil, fmt.Errorf("experiments: E10: %w", err)
		}
		ctx := context.Background()
		vol := m.Circuit.Params.Volume
		rng := newRand(cfg.Seed + int64(rate*1000))
		live := make([]int32, len(m.Circuit.Elements))
		for i := range live {
			live[i] = int32(i)
		}

		// The isolation witness: pinned before any churn.
		pinned, err := m.OpenSession()
		if err != nil {
			return nil, fmt.Errorf("experiments: E10: %w", err)
		}
		witnessReqs := churnRequests(vol, cfg, newRand(cfg.Seed))
		witness, err := pinned.DoBatch(ctx, witnessReqs, 1)
		if err != nil {
			pinned.Close()
			return nil, fmt.Errorf("experiments: E10 witness: %w", err)
		}

		row := E10Row{Rate: rate}
		for round := 0; round < cfg.Rounds; round++ {
			start := time.Now()
			applied, err := churnBatch(m, rng, &live, int(rate*float64(cfg.Ops)), vol)
			if err != nil {
				pinned.Close()
				return nil, fmt.Errorf("experiments: E10 rate=%.2f round %d mutate: %w", rate, round, err)
			}
			row.MutateTime += time.Since(start)
			row.OpsApplied += int64(applied)

			reqs := churnRequests(vol, cfg, rng)
			start = time.Now()
			serial, err := m.Session().DoBatch(ctx, reqs, 1)
			row.QueryTime += time.Since(start)
			if err != nil {
				pinned.Close()
				return nil, fmt.Errorf("experiments: E10 rate=%.2f round %d query: %w", rate, round, err)
			}
			parallel, err := m.Session().DoBatch(ctx, reqs, 4)
			if err != nil {
				pinned.Close()
				return nil, fmt.Errorf("experiments: E10 rate=%.2f round %d parallel: %w", rate, round, err)
			}
			for i := range serial {
				if len(serial[i].Hits) != len(parallel[i].Hits) {
					pinned.Close()
					return nil, fmt.Errorf("experiments: E10 rate=%.2f round %d request %d: workers diverged",
						rate, round, i)
				}
				for j := range serial[i].Hits {
					if serial[i].Hits[j] != parallel[i].Hits[j] {
						pinned.Close()
						return nil, fmt.Errorf("experiments: E10 rate=%.2f round %d request %d hit %d: workers diverged",
							rate, round, i, j)
					}
				}
				row.PagesRead += serial[i].Stats.PagesRead
				row.Results += serial[i].Stats.Results
				row.DeltaEntries += serial[i].Stats.DeltaEntries
				row.Tombstones += serial[i].Stats.Tombstones
			}

			// Snapshot isolation: the pre-churn session must replay epoch 0.
			replay, err := pinned.DoBatch(ctx, witnessReqs, 2)
			if err != nil {
				pinned.Close()
				return nil, fmt.Errorf("experiments: E10 rate=%.2f round %d witness replay: %w", rate, round, err)
			}
			for i := range replay {
				if len(replay[i].Hits) != len(witness[i].Hits) {
					pinned.Close()
					return nil, fmt.Errorf("experiments: E10 rate=%.2f round %d: pinned session drifted on request %d",
						rate, round, i)
				}
				for j := range replay[i].Hits {
					if replay[i].Hits[j] != witness[i].Hits[j] {
						pinned.Close()
						return nil, fmt.Errorf("experiments: E10 rate=%.2f round %d: pinned session drifted on request %d hit %d",
							rate, round, i, j)
					}
				}
			}
		}
		pinned.Close()

		st := m.Dataset.Stats()
		row.Epoch = st.Epoch
		row.Compactions = int(st.Compactions)
		row.Cow = st.Cow
		res.Rows = append(res.Rows, row)

		// The update-rate × kind routing table, from the final snapshot's
		// planner (empty sample: learned history only, no fresh probes).
		for _, kind := range engine.Kinds() {
			d := m.Session().Planner().PlanKind(kind, nil)
			rr := E10RoutingRow{Rate: rate, Kind: kind}
			if d.Index != nil {
				rr.Index = d.Index.Name()
				rr.Cost = d.CostPerQuery[rr.Index]
			}
			res.Routing = append(res.Routing, rr)
		}
	}
	return res, nil
}

// E10Table renders the update-rate sweep.
func E10Table(rows []E10Row) *stats.Table {
	tb := stats.NewTable("E10 (north star): interleaved updates and queries through the mutable Dataset"+
		"\n(every round: workers-invariant output; pre-churn pinned session replays its epoch bit-identically)",
		"rate", "ops", "mutate time", "query time", "pages", "results", "delta tested", "tombs filtered",
		"epoch", "compactions", "layout shared/patched/appended")
	for _, r := range rows {
		tb.AddRow(
			fmt.Sprintf("%.2f", r.Rate),
			r.OpsApplied,
			stats.Dur(r.MutateTime),
			stats.Dur(r.QueryTime),
			r.PagesRead,
			r.Results,
			r.DeltaEntries,
			r.Tombstones,
			r.Epoch,
			r.Compactions,
			fmt.Sprintf("%d/%d/%d", r.Cow.Shared, r.Cow.Patched, r.Cow.Appended),
		)
	}
	return tb
}

// E10RoutingTable renders the update-rate × kind routing table.
func E10RoutingTable(res *E10Result) *stats.Table {
	tb := stats.NewTable("E10 routing: snapshot planner decision per kind at each update rate",
		"rate", "kind", "routed to", "est. reads/query")
	for _, r := range res.Routing {
		tb.AddRow(fmt.Sprintf("%.2f", r.Rate), r.Kind.String(), r.Index, fmt.Sprintf("%.1f", r.Cost))
	}
	return tb
}

// RunChurnDemo builds a small model, applies the given number of mutation
// batches, and reports the dataset's maintenance state plus a mixed query
// batch served from the churned snapshot — the cmd drivers' -churn panel.
func RunChurnDemo(batches, workers int) ([]*stats.Table, error) {
	cfg := DefaultE10()
	cfg.Neurons = 48
	cfg.Rounds = batches
	cfg.Workers = workers
	m, err := churnModel(cfg)
	if err != nil {
		return nil, fmt.Errorf("experiments: churn demo: %w", err)
	}
	ctx := context.Background()
	vol := m.Circuit.Params.Volume
	rng := newRand(cfg.Seed)
	live := make([]int32, len(m.Circuit.Elements))
	for i := range live {
		live[i] = int32(i)
	}
	for b := 0; b < batches; b++ {
		if _, err := churnBatch(m, rng, &live, cfg.Ops, vol); err != nil {
			return nil, fmt.Errorf("experiments: churn demo batch %d: %w", b, err)
		}
	}
	st := m.Dataset.Stats()
	maint := stats.NewTable(fmt.Sprintf("dataset after %d mutation batches", batches),
		"epoch", "live", "delta", "tombstones", "commits", "compactions",
		"inserts", "deletes", "updates", "layout shared/patched/appended")
	maint.AddRow(st.Epoch, st.Live, st.DeltaEntries, st.Tombstones, st.Commits, st.Compactions,
		st.Inserts, st.Deletes, st.Updates,
		fmt.Sprintf("%d/%d/%d", st.Cow.Shared, st.Cow.Patched, st.Cow.Appended))

	reqs := churnRequests(vol, cfg, rng)[:8]
	results, err := m.Session().DoBatch(ctx, reqs, 1)
	if err != nil {
		return nil, fmt.Errorf("experiments: churn demo queries: %w", err)
	}
	qt := stats.NewTable("mixed requests served from the churned snapshot",
		"request", "routed to", "results", "pages", "delta tested", "tombs filtered")
	for _, r := range results {
		qt.AddRow(r.Request.String(), r.Index, r.Stats.Results, r.Stats.PagesRead,
			r.Stats.DeltaEntries, r.Stats.Tombstones)
	}
	return []*stats.Table{maint, qt}, nil
}
