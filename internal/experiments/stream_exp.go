package experiments

import (
	"context"
	"fmt"
	"runtime"
	"sort"
	"time"

	"neurospatial/internal/engine"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/hilbert"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
	"neurospatial/internal/stats"
)

// E11Config parameterizes the streaming result-path experiment: a range query
// whose result is the (near-)whole item set — the million-hit regime — served
// both as a full drain and as a Limit-10 first page through the lazy iterator
// pipeline. The point is the two guarantees of the streaming redesign: a
// limited page allocates O(Limit), not O(result size), and it provably stops
// reading pages once the limit is filled — on every contender, with the page
// reads counted by an independent pager.Counting tap, not just the indexes'
// own stats. It is not a figure of the paper; it extends the reproduction
// along the ROADMAP's interactive-exploration axis (the demo's progressive
// result panels want first pages, not full drains).
type E11Config struct {
	// Items is the item count (the full-result size target).
	Items int
	// Edge is the volume edge.
	Edge float64
	// HalfMin and HalfMax bound the item half-extents.
	HalfMin, HalfMax float64
	// Limit is the page size of the limited request.
	Limit int
	// PageSize is the contenders' disk-page capacity.
	PageSize int
	// Seed drives item placement.
	Seed int64
}

// DefaultE11 returns the configuration used in EXPERIMENTS.md: one million
// items, so the full range drain is a million-hit result.
func DefaultE11() E11Config {
	return E11Config{
		Items:    1_000_000,
		Edge:     1000,
		HalfMin:  0.5,
		HalfMax:  2,
		Limit:    10,
		PageSize: 64,
		Seed:     29,
	}
}

// E11Row is one contender's full-drain versus first-page comparison.
type E11Row struct {
	// Contender names the index.
	Contender string
	// Hits is the full result size.
	Hits int64
	// FullReads and LimitReads are the page reads of the full drain and the
	// Limit page, counted by the independent tap (the runner fails unless
	// LimitReads < FullReads, strictly, and the stats agree in direction).
	FullReads, LimitReads int64
	// ResumeReads is the tap count of the second page (cursor resume) — the
	// proof that resuming does not restart the scan.
	ResumeReads int64
	// FullAllocMB and LimitAllocKB are the heap bytes allocated by the two
	// executions (note the units: the full drain buffers the result, the
	// limited page stays O(Limit)).
	FullAllocMB, LimitAllocKB float64
	// FullTime and LimitTime are wall-clock times of the two executions.
	FullTime, LimitTime time.Duration
}

// hilbertItems scatters cfg.Items boxes in the volume and assigns IDs in
// Hilbert order of the centers, so the dataset's ID order correlates with
// every contender's spatial layout — the regime where ascending-ID streaming
// and spatial page locality compose instead of fighting.
func hilbertItems(cfg E11Config) []rtree.Item {
	rng := newRand(cfg.Seed)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(cfg.Edge, cfg.Edge, cfg.Edge))
	curve := hilbert.MustNew(10, vol)
	type placed struct {
		box geom.AABB
		key uint64
	}
	ps := make([]placed, cfg.Items)
	for i := range ps {
		c := geom.V(rng.Float64()*cfg.Edge, rng.Float64()*cfg.Edge, rng.Float64()*cfg.Edge)
		h := cfg.HalfMin + rng.Float64()*(cfg.HalfMax-cfg.HalfMin)
		ps[i] = placed{box: geom.BoxAround(c, h), key: curve.Index(c)}
	}
	sort.Slice(ps, func(a, b int) bool { return ps[a].key < ps[b].key })
	items := make([]rtree.Item, len(ps))
	for i, p := range ps {
		items[i] = rtree.Item{ID: int32(i), Box: p.box}
	}
	return items
}

// allocDuring reports the heap bytes allocated while fn runs (single-threaded
// measurement; the experiment harness runs serially).
func allocDuring(fn func()) uint64 {
	var m0, m1 runtime.MemStats
	runtime.GC()
	runtime.ReadMemStats(&m0)
	fn()
	runtime.ReadMemStats(&m1)
	return m1.TotalAlloc - m0.TotalAlloc
}

// RunE11 executes the streaming sweep over all four contenders.
func RunE11(cfg E11Config) ([]E11Row, error) {
	if cfg.Items <= 0 || cfg.Limit <= 0 {
		return nil, fmt.Errorf("experiments: E11: Items and Limit must be positive")
	}
	items := hilbertItems(cfg)
	// Interior box missing a thin shell: virtually every item hits, and the
	// query is a genuine range (not the trivial whole-bounds scan).
	margin := cfg.Edge * 0.01
	query := engine.RangeRequest(geom.Box(
		geom.V(margin, margin, margin),
		geom.V(cfg.Edge-margin, cfg.Edge-margin, cfg.Edge-margin)))

	contenders := []engine.SpatialIndex{
		engine.NewFlat(flat.Options{PageSize: cfg.PageSize}),
		engine.NewRTree(0),
		engine.NewGrid(engine.GridOptions{PageSize: cfg.PageSize}),
		engine.NewSharded(engine.ShardedOptions{Flat: flat.Options{PageSize: cfg.PageSize}}),
	}
	var rows []E11Row
	for _, ix := range contenders {
		if err := ix.Build(items); err != nil {
			return nil, fmt.Errorf("experiments: E11: building %s: %w", ix.Name(), err)
		}
		row, err := e11Contender(ix, query, cfg)
		if err != nil {
			return nil, err
		}
		rows = append(rows, row)
	}
	return rows, nil
}

// e11Contender measures one built contender: full scan, limited page, and
// cursor resume, each through a counting tap. Factored out of RunE11 so the
// session pin and the tap installation unwind on every exit path.
func e11Contender(ix engine.SpatialIndex, query engine.Request, cfg E11Config) (E11Row, error) {
	pg, ok := ix.(engine.Paged)
	if !ok {
		return E11Row{}, fmt.Errorf("experiments: E11: %s is not Paged", ix.Name())
	}
	sess, err := engine.Open(engine.WithIndex(ix))
	if err != nil {
		return E11Row{}, err
	}
	defer sess.Close()
	tap := pager.NewCounting(pg.Store())
	pg.SetSource(tap)
	defer pg.SetSource(nil)

	limited := query
	limited.Limit = cfg.Limit
	// Warm-up: derive the lazy zone maps outside the measured runs.
	if _, err := sess.Do(context.Background(), limited); err != nil {
		return E11Row{}, err
	}

	row := E11Row{Contender: ix.Name()}
	tap.Reset()
	var full engine.Result
	t0 := time.Now()
	fullAlloc := allocDuring(func() {
		full, err = sess.Do(context.Background(), query)
	})
	row.FullTime = time.Since(t0)
	if err != nil {
		return E11Row{}, err
	}
	row.Hits = int64(len(full.Hits))
	row.FullReads = tap.Reads()
	row.FullAllocMB = float64(fullAlloc) / (1 << 20)

	tap.Reset()
	var page engine.Result
	t0 = time.Now()
	limAlloc := allocDuring(func() {
		page, err = sess.Do(context.Background(), limited)
	})
	row.LimitTime = time.Since(t0)
	if err != nil {
		return E11Row{}, err
	}
	row.LimitReads = tap.Reads()
	row.LimitAllocKB = float64(limAlloc) / (1 << 10)

	// The early-stop guarantee, proven on the independent tap: the
	// limited page must have stopped reading pages, strictly.
	if len(page.Hits) != cfg.Limit {
		return E11Row{}, fmt.Errorf("experiments: E11: %s limited page returned %d hits, want %d",
			ix.Name(), len(page.Hits), cfg.Limit)
	}
	if row.LimitReads >= row.FullReads {
		return E11Row{}, fmt.Errorf("experiments: E11: %s Limit %d read %d pages, full scan %d — no early stop",
			ix.Name(), cfg.Limit, row.LimitReads, row.FullReads)
	}
	if page.Cursor == "" {
		return E11Row{}, fmt.Errorf("experiments: E11: %s limited page returned no cursor", ix.Name())
	}

	// Cursor resume: the second page reads from where the first stopped,
	// not from the start of the scan.
	resume := limited
	resume.Cursor = page.Cursor
	tap.Reset()
	if _, err := sess.Do(context.Background(), resume); err != nil {
		return E11Row{}, err
	}
	row.ResumeReads = tap.Reads()
	if row.ResumeReads >= row.FullReads {
		return E11Row{}, fmt.Errorf("experiments: E11: %s cursor resume read %d pages, full scan %d — resume restarted the scan",
			ix.Name(), row.ResumeReads, row.FullReads)
	}
	return row, nil
}

// RunPagingDemo issues one planner-routed request of the named kind with the
// given page size and walks its cursor chain — the cmd drivers' -limit/-cursor
// demo. A non-empty cursor resumes from a token printed by a previous run:
// the demo model is deterministic, so tokens stay valid across invocations.
func RunPagingDemo(kindName string, k int, radius float64, limit int, cursor string, workers int) (*stats.Table, error) {
	kind, err := engine.ParseKind(kindName)
	if err != nil {
		return nil, err
	}
	if limit <= 0 {
		return nil, fmt.Errorf("experiments: paging demo: -limit must be positive, got %d", limit)
	}
	m, err := buildModel(96, 300, 23, workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: paging demo: %w", err)
	}
	c := m.Circuit.Params.Volume.Center()
	var req engine.Request
	switch kind {
	case engine.Range:
		req = engine.RangeRequest(geom.BoxAround(c, radius))
	case engine.KNN:
		req = engine.KNNRequest(c, k)
	case engine.Point:
		req = engine.PointRequest(c)
	case engine.WithinDistance:
		req = engine.WithinDistanceRequest(c, radius)
	default:
		return nil, fmt.Errorf("experiments: paging demo: unsupported kind %s", kind)
	}
	req.Limit = limit
	req.Cursor = engine.Cursor(cursor)

	tb := stats.NewTable(fmt.Sprintf("paging demo: %s in pages of %d through the Session front door"+
		"\n(each page stops reading once filled; pass the cursor to resume)", kind, limit),
		"page", "routed to", "hits", "pages read", "next cursor")
	const maxPages = 8
	for page := 1; ; page++ {
		res, err := m.Do(context.Background(), req)
		if err != nil {
			return nil, err
		}
		next := string(res.Cursor)
		if next == "" {
			next = "(exhausted)"
		}
		tb.AddRow(page, res.Index, len(res.Hits), res.Stats.PagesRead, next)
		if res.Cursor == "" || page == maxPages {
			break
		}
		req.Cursor = res.Cursor
	}
	return tb, nil
}

// E11Table renders the sweep.
func E11Table(rows []E11Row) *stats.Table {
	tb := stats.NewTable("E11: streaming first page vs full drain (lazy iterator pipeline)"+
		"\n(page reads counted by an independent source tap; alloc units differ on purpose)",
		"contender", "hits", "full pages", "limit pages", "resume pages",
		"full alloc MB", "limit alloc KB", "full time", "limit time")
	for _, r := range rows {
		tb.AddRow(r.Contender, r.Hits, r.FullReads, r.LimitReads, r.ResumeReads,
			fmt.Sprintf("%.1f", r.FullAllocMB), fmt.Sprintf("%.1f", r.LimitAllocKB),
			stats.Dur(r.FullTime), stats.Dur(r.LimitTime))
	}
	return tb
}
