package experiments

import (
	"context"
	"fmt"
	"time"

	"neurospatial/internal/circuit"
	"neurospatial/internal/core"
	"neurospatial/internal/engine"
	"neurospatial/internal/geom"
	"neurospatial/internal/prefetch"
	"neurospatial/internal/query"
	"neurospatial/internal/scout"
	"neurospatial/internal/stats"
)

// E3Config parameterizes the candidate-pruning experiment.
type E3Config struct {
	// Neurons is the model size.
	Neurons int
	// Edge is the volume edge.
	Edge float64
	// Stride and Radius shape the walkthrough queries.
	Stride, Radius float64
	// Walkthroughs is how many distinct branch paths are followed.
	Walkthroughs int
	// Seed drives construction.
	Seed int64
	// Workers is the circuit-construction worker count (repository-wide
	// semantics; the Default* configs select -1).
	Workers int
}

// DefaultE3 returns the configuration used in EXPERIMENTS.md.
func DefaultE3() E3Config {
	return E3Config{Neurons: 64, Edge: 300, Stride: 8, Radius: 15, Walkthroughs: 5, Seed: 3, Workers: -1}
}

// E3Row is one walkthrough step, averaged over walkthroughs.
type E3Row struct {
	// Step is the query index within the sequence.
	Step int
	// MeanCandidates is the average surviving structure count after this
	// step (the shrinking series of Figure 5).
	MeanCandidates float64
	// MeanStructures is the average structure count before pruning.
	MeanStructures float64
	// FollowedKept is the fraction of walkthroughs whose followed branch
	// was still inside a candidate at this step (must stay 1.0).
	FollowedKept float64
	// Samples is the number of walkthroughs still running at this step.
	Samples int
}

// RunE3 executes the pruning experiment: for several walkthroughs, record
// the candidate count per step and whether the followed structure survived.
func RunE3(cfg E3Config) ([]E3Row, error) {
	m, err := buildModel(cfg.Neurons, cfg.Edge, cfg.Seed, cfg.Workers)
	if err != nil {
		return nil, fmt.Errorf("experiments: E3: %w", err)
	}
	eflat := m.Engine.Index("flat")
	geo := eflat.(prefetch.PageGeometry)
	paths := longestPaths(m, cfg.Walkthroughs)
	type acc struct {
		candidates, structures, kept float64
		n                            int
	}
	var accs []acc

	for _, wp := range paths {
		seq, err := query.Walkthrough(wp.path, cfg.Stride, cfg.Radius)
		if err != nil {
			return nil, err
		}
		s := scout.New(scout.Options{})
		ctx := &prefetch.Context{Index: geo, Segment: m.Segment}
		// Ground truth: elements of the followed stem-to-tip chain.
		followed := make(map[int32]bool)
		chain := make(map[int]bool)
		for _, id := range m.Circuit.Morphologies[wp.neuron].PathToRoot(wp.branch) {
			chain[id] = true
		}
		for i := range m.Circuit.Elements {
			e := &m.Circuit.Elements[i]
			if e.Neuron == wp.neuron && e.Branch >= 0 && chain[int(e.Branch)] {
				followed[e.ID] = true
			}
		}
		noPrune := scout.New(scout.Options{})
		noPruneCtx := &prefetch.Context{Index: geo, Segment: m.Segment}
		for stepIdx, st := range seq.Steps {
			ctx.History = append(ctx.History, st.Box)
			var result []int32
			if _, err := eflat.Do(context.Background(), engine.RangeRequest(st.Box),
				func(h engine.Hit) { result = append(result, h.ID) }); err != nil {
				return nil, fmt.Errorf("experiments: E3 step query: %w", err)
			}
			s.Predict(ctx, st.Box, result, 64)
			// The unpruned structure count: a fresh SCOUT each step keeps
			// all structures (its Reset drops history).
			noPrune.Reset()
			noPruneCtx.History = ctx.History[len(ctx.History)-1:]
			noPrune.Predict(noPruneCtx, st.Box, result, 64)

			kept := 1.0
			for _, id := range result {
				if followed[id] && !s.LastCandidateContains(id) {
					kept = 0
					break
				}
			}
			for len(accs) <= stepIdx {
				accs = append(accs, acc{})
			}
			accs[stepIdx].candidates += float64(s.LastCandidateCount())
			accs[stepIdx].structures += float64(noPrune.LastCandidateCount())
			accs[stepIdx].kept += kept
			accs[stepIdx].n++
		}
	}
	rows := make([]E3Row, len(accs))
	for i, a := range accs {
		rows[i] = E3Row{
			Step:           i,
			MeanCandidates: a.candidates / float64(a.n),
			MeanStructures: a.structures / float64(a.n),
			FollowedKept:   a.kept / float64(a.n),
			Samples:        a.n,
		}
	}
	return rows, nil
}

// E3Table renders the rows (subsampled for long sequences).
func E3Table(rows []E3Row) *stats.Table {
	tb := stats.NewTable("E3 (Fig. 5): candidate-set pruning along walkthroughs",
		"step", "structures in q", "candidates", "followed kept", "walkthroughs")
	stepEvery := 1
	if len(rows) > 16 {
		stepEvery = len(rows) / 16
	}
	for i, r := range rows {
		if i%stepEvery != 0 && i != len(rows)-1 {
			continue
		}
		tb.AddRow(
			r.Step,
			fmt.Sprintf("%.1f", r.MeanStructures),
			fmt.Sprintf("%.1f", r.MeanCandidates),
			fmt.Sprintf("%.0f%%", 100*r.FollowedKept),
			r.Samples,
		)
	}
	return tb
}

// walkPath identifies one followed branch.
type walkPath struct {
	neuron int32
	branch int
	path   []geom.Vec
}

// longestPaths returns the k longest stem-to-tip paths across distinct
// neurons, longest first.
func longestPaths(m *core.Model, k int) []walkPath {
	type cand struct {
		wp  walkPath
		len float64
	}
	var best []cand
	for ni := range m.Circuit.Morphologies {
		var top cand
		for _, tip := range m.Circuit.Morphologies[ni].Terminals() {
			p, err := m.Circuit.BranchPath(int32(ni), tip)
			if err != nil {
				continue
			}
			if l := query.PathLength(p); l > top.len {
				top = cand{wp: walkPath{neuron: int32(ni), branch: tip, path: p}, len: l}
			}
		}
		best = append(best, top)
	}
	// Selection sort of the top k by length (k is tiny).
	for i := 0; i < len(best) && i < k; i++ {
		for j := i + 1; j < len(best); j++ {
			if best[j].len > best[i].len {
				best[i], best[j] = best[j], best[i]
			}
		}
	}
	if len(best) > k {
		best = best[:k]
	}
	out := make([]walkPath, len(best))
	for i, c := range best {
		out[i] = c.wp
	}
	return out
}

// E4Config parameterizes the prefetching speedup experiment.
type E4Config struct {
	// Neurons is the model size.
	Neurons int
	// Edge is the volume edge.
	Edge float64
	// AxonExtent overrides the morphology's axon length; long projection
	// axons (cortical axons run millimeters) give the long walkthroughs
	// where prefetching pays off — a method's one-time cold start
	// amortizes over the sequence, which is how the paper's "up to 15×"
	// arises. Zero keeps the morphology default (400 µm).
	AxonExtent float64
	// Stride and Radius shape the walkthrough queries.
	Stride, Radius float64
	// ThinkTime is the user pause per step.
	ThinkTime time.Duration
	// Walkthroughs is how many branch paths are averaged.
	Walkthroughs int
	// Seed drives construction.
	Seed int64
	// Workers is the circuit-construction worker count (repository-wide
	// semantics; the Default* configs select -1).
	Workers int
	// Index names the engine contender serving the walkthroughs ("flat",
	// "rtree", "grid", "sharded"); empty selects "flat". Every method runs
	// over the same index, so speedups stay comparable.
	Index string
	// Shards is the shard count of the sharded contender when Index is
	// "sharded" (<= 0 selects the core default).
	Shards int
}

// DefaultE4 returns the configuration used in EXPERIMENTS.md.
func DefaultE4() E4Config {
	return E4Config{
		Neurons: 64, Edge: 300,
		AxonExtent: 2500,
		Stride:     8, Radius: 15,
		ThinkTime:    250 * time.Millisecond,
		Walkthroughs: 5,
		Seed:         4,
		Workers:      -1,
	}
}

// E4Row is one prefetching method's aggregate over all walkthroughs.
type E4Row struct {
	// Method is the prefetcher name.
	Method string
	// Queries is the total step count.
	Queries int
	// DemandReads, PrefetchReads, PrefetchHits aggregate I/O.
	DemandReads, PrefetchReads, PrefetchHits int64
	// Elements is the total result count across all walkthroughs — a
	// serving-correctness invariant: it must not depend on the index or
	// the prefetching method.
	Elements int64
	// Latency is the total simulated stall.
	Latency time.Duration
	// Speedup is baseline (none) latency over this method's.
	Speedup float64
	// Accuracy is PrefetchHits / PrefetchReads.
	Accuracy float64
}

// RunE4 executes the prefetching comparison.
func RunE4(cfg E4Config) ([]E4Row, error) {
	p := circuit.DefaultParams()
	p.Neurons = cfg.Neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(cfg.Edge, cfg.Edge, cfg.Edge))
	p.Seed = cfg.Seed
	p.Workers = cfg.Workers
	if cfg.AxonExtent > 0 {
		p.Morphology.AxonExtent = cfg.AxonExtent
	}
	opts := core.DefaultOptions()
	opts.Shards = cfg.Shards
	m, err := core.BuildModel(p, opts)
	if err != nil {
		return nil, fmt.Errorf("experiments: E4: %w", err)
	}
	paths := longestPaths(m, cfg.Walkthroughs)
	var rows []E4Row
	for _, p := range m.Prefetchers() {
		row := E4Row{Method: p.Name()}
		for _, wp := range paths {
			run, err := m.Explore(wp.neuron, wp.branch, p, core.ExploreConfig{
				Stride: cfg.Stride, Radius: cfg.Radius, ThinkTime: cfg.ThinkTime,
				Index: cfg.Index,
			})
			if err != nil {
				return nil, err
			}
			row.Queries += len(run.Steps)
			row.DemandReads += run.DemandReads
			row.PrefetchReads += run.PrefetchReads
			row.PrefetchHits += run.PrefetchHits
			row.Elements += run.Elements
			row.Latency += run.Latency
		}
		if row.PrefetchReads > 0 {
			row.Accuracy = float64(row.PrefetchHits) / float64(row.PrefetchReads)
		} else {
			row.Accuracy = 1
		}
		rows = append(rows, row)
	}
	base := rows[0].Latency // "none" runs first
	for i := range rows {
		if rows[i].Latency > 0 {
			rows[i].Speedup = float64(base) / float64(rows[i].Latency)
		}
	}
	return rows, nil
}

// E4Table renders the rows.
func E4Table(rows []E4Row) *stats.Table {
	tb := stats.NewTable("E4 (Fig. 6): walkthrough speedup per prefetching method",
		"method", "queries", "stall", "speedup", "prefetched", "correct", "accuracy")
	for _, r := range rows {
		tb.AddRow(
			r.Method,
			r.Queries,
			stats.Dur(r.Latency),
			fmt.Sprintf("%.1fx", r.Speedup),
			r.PrefetchReads,
			r.PrefetchHits,
			fmt.Sprintf("%.1f%%", 100*r.Accuracy),
		)
	}
	return tb
}

// E4LengthSweep reruns E4 across axon extents, producing the series behind
// the paper's "up to 15×" phrasing: the cold start of a prefetching method is
// paid once, so its speedup grows with the length of the followed structure.
func E4LengthSweep(base E4Config, extents []float64) (*stats.Table, error) {
	tb := stats.NewTable("E4 supplement: speedup vs walkthrough length (\"up to 15×\")",
		"axon extent", "queries", "none stall", "hilbert", "extrapolation", "scout")
	for _, ext := range extents {
		cfg := base
		cfg.AxonExtent = ext
		rows, err := RunE4(cfg)
		if err != nil {
			return nil, err
		}
		byName := map[string]E4Row{}
		for _, r := range rows {
			byName[r.Method] = r
		}
		tb.AddRow(
			fmt.Sprintf("%.0f µm", ext),
			byName["none"].Queries,
			stats.Dur(byName["none"].Latency),
			fmt.Sprintf("%.1fx", byName["hilbert"].Speedup),
			fmt.Sprintf("%.1fx", byName["extrapolation"].Speedup),
			fmt.Sprintf("%.1fx", byName["scout"].Speedup),
		)
	}
	return tb, nil
}
