// Package errcontract enforces the decode-path error contract: an exported
// Decode*/Parse* function that returns an error must classify every failure
// as *FormatError (structurally invalid input) or *CorruptError (checksum
// mismatch), directly or through %w-wraps and helpers — never a bare
// fmt.Errorf/errors.New, and never a panic. Callers branch on these types
// to decide between refusing a file and truncating to the last valid
// prefix, so an opaque error silently disables recovery handling.
//
// Classification is interprocedural: a return of a helper's result uses the
// helper's summary, and `return err` traces the union of everything
// assigned into err. Panics count when reachable from the decode function
// through module callees without a recover guard.
package errcontract

import (
	"go/ast"
	"strings"

	"neurospatial/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "errcontract",
	Doc: "exported Decode*/Parse* functions must fail with *FormatError/*CorruptError " +
		"(or %w-wraps of them), never opaque errors or panics",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !inScope(fn) {
				continue
			}
			checkDecoder(pass, fn)
		}
	}
	return nil
}

// inScope selects exported decode entry points with an error result.
func inScope(fn *ast.FuncDecl) bool {
	name := fn.Name.Name
	if !ast.IsExported(name) {
		return false
	}
	if !strings.HasPrefix(name, "Decode") && !strings.HasPrefix(name, "Parse") {
		return false
	}
	results := fn.Type.Results
	if results == nil || len(results.List) == 0 {
		return false
	}
	last := results.List[len(results.List)-1]
	id, ok := last.Type.(*ast.Ident)
	return ok && id.Name == "error"
}

func checkDecoder(pass *analysis.Pass, fn *ast.FuncDecl) {
	mod, pkg := pass.Module, pass.Package
	mod.ClassifyReturns(pkg, fn.Body, func(ret *ast.ReturnStmt, format, corrupt, opaque bool) {
		if !opaque {
			return
		}
		pass.Reportf(ret.Pos(),
			"%s returns an error outside the decode contract: use *FormatError or *CorruptError "+
				"(or wrap one with %%w) so callers can classify the failure", fn.Name.Name)
	})

	// Panics: direct panic statements, and calls into module functions whose
	// summaries panic without a recover guard. A recover in this function
	// neutralizes both.
	if hasRecover(fn.Body) {
		return
	}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok && id.Name == "panic" {
			pass.Reportf(call.Pos(),
				"%s panics on bad input: decode paths must return *FormatError/*CorruptError instead",
				fn.Name.Name)
			return true
		}
		if merged := mod.MergedCallSummary(pkg, call); merged != nil && merged.Panics {
			pass.Reportf(call.Pos(),
				"%s calls %s, which can panic: decode paths must fail with *FormatError/*CorruptError",
				fn.Name.Name, analysis.CalleeName(call))
		}
		return true
	})
}

// hasRecover reports a recover() call inside any deferred function in body.
func hasRecover(body *ast.BlockStmt) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		d, ok := n.(*ast.DeferStmt)
		if !ok {
			return !found
		}
		ast.Inspect(d.Call, func(m ast.Node) bool {
			if c, ok := m.(*ast.CallExpr); ok {
				if id, ok := ast.Unparen(c.Fun).(*ast.Ident); ok && id.Name == "recover" {
					found = true
				}
			}
			return !found
		})
		return !found
	})
	return found
}
