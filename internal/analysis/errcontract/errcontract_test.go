package errcontract_test

import (
	"testing"

	"neurospatial/internal/analysis/antest"
	"neurospatial/internal/analysis/errcontract"
)

func TestErrcontractFixtures(t *testing.T) {
	antest.Run(t, "testdata/errs", errcontract.Analyzer)
}
