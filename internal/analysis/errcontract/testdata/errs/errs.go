// Fixture for errcontract: decode paths must fail with typed errors.
package errfix

import (
	"errors"
	"fmt"
)

type FormatError struct{ Reason string }

func (e *FormatError) Error() string { return e.Reason }

type CorruptError struct{ Reason string }

func (e *CorruptError) Error() string { return e.Reason }

// checkHeader is a helper whose summary carries the format classification.
func checkHeader(data []byte) error {
	if len(data) < 4 {
		return &FormatError{Reason: "truncated header"}
	}
	return nil
}

// readAll is a helper that fails opaquely; wrapping it stays opaque.
func readAll(data []byte) error {
	if len(data) == 0 {
		return errors.New("no data")
	}
	return nil
}

// mustU32 panics on short input; its summary records the panic.
func mustU32(data []byte) uint32 {
	if len(data) < 4 {
		panic("short read")
	}
	return uint32(data[0]) | uint32(data[1])<<8 | uint32(data[2])<<16 | uint32(data[3])<<24
}

// --- non-flagging cases ---

// DecodeGood fails only with typed errors, directly and via helper.
func DecodeGood(data []byte) (int, error) {
	if err := checkHeader(data); err != nil {
		return 0, err
	}
	if len(data) > 8 && data[4] != 0x7f {
		return 0, &CorruptError{Reason: "checksum mismatch"}
	}
	return len(data), nil
}

// ParseWrapped keeps the kind through a %w wrap.
func ParseWrapped(data []byte) (int, error) {
	if err := checkHeader(data); err != nil {
		return 0, fmt.Errorf("parse frame: %w", err)
	}
	return len(data), nil
}

// decodeInternal is unexported: out of contract scope.
func decodeInternal(data []byte) error {
	return errors.New("scratch decode")
}

// DecodeRecovered converts panics to typed errors with a recover guard.
func DecodeRecovered(data []byte) (n int, err error) {
	defer func() {
		if r := recover(); r != nil {
			err = &FormatError{Reason: "panic during decode"}
		}
	}()
	if data == nil {
		panic("nil input")
	}
	return len(data), nil
}

// decodeNested recurses; every base return is typed, and the recursive
// forward must not read as opaque (the SCC fixpoint regression case).
func decodeNested(data []byte, depth int) error {
	if depth > 8 {
		return &FormatError{Reason: "nesting too deep"}
	}
	if len(data) == 0 {
		return nil
	}
	if data[0] == 0xff {
		return &CorruptError{Reason: "reserved tag"}
	}
	if err := decodeNested(data[1:], depth+1); err != nil {
		return err
	}
	return nil
}

// DecodeTree forwards a recursive helper's typed errors.
func DecodeTree(data []byte) (int, error) {
	if err := decodeNested(data, 0); err != nil {
		return 0, err
	}
	return len(data), nil
}

// DecodeLegacy documents a contract exception with the escape hatch.
func DecodeLegacy(data []byte) (int, error) {
	if len(data) == 0 {
		//lint:ignore errcontract legacy path, migrating at the next format bump
		return 0, errors.New("legacy: empty")
	}
	return len(data), nil
}

// --- flagging cases ---

// DecodeBare fails with a bare fmt.Errorf.
func DecodeBare(data []byte) (int, error) {
	if len(data) < 4 {
		return 0, fmt.Errorf("truncated: %d bytes", len(data)) // want `outside the decode contract`
	}
	return len(data), nil
}

// ParseOpaque fails with errors.New.
func ParseOpaque(data []byte) error {
	if len(data) == 0 {
		return errors.New("empty input") // want `outside the decode contract`
	}
	return nil
}

// DecodeWrapOpaque wraps an opaque helper error: still opaque.
func DecodeWrapOpaque(data []byte) error {
	if err := readAll(data); err != nil {
		return fmt.Errorf("decode: %w", err) // want `outside the decode contract`
	}
	return nil
}

// DecodePanics panics directly on bad input.
func DecodePanics(data []byte) (int, error) {
	if len(data) < 4 {
		panic("short buffer") // want `panics on bad input`
	}
	return len(data), nil
}

// DecodeViaPanic reaches a panic through a helper's summary.
func DecodeViaPanic(data []byte) (uint32, error) {
	return mustU32(data), nil // want `can panic`
}
