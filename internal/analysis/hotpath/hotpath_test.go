package hotpath_test

import (
	"testing"

	"neurospatial/internal/analysis/antest"
	"neurospatial/internal/analysis/hotpath"
)

func TestHotpathFixtures(t *testing.T) {
	antest.Run(t, "testdata/hot", hotpath.Analyzer)
}
