// Fixture for hotpath: allocation-prone constructs in annotated functions.
package hotfix

import (
	"fmt"
	"sync"
)

type Hit struct{ ID int32 }

var bufPool = sync.Pool{New: func() any { b := make([]int32, 0, 64); return &b }}

// --- non-flagging cases ---

// fastPath sticks to pooled scratch and builtins: clean.
//
//neurospatial:hotpath
func fastPath(xs []int32) int32 {
	box := bufPool.Get().(*[]int32)
	buf := (*box)[:0]
	for _, x := range xs {
		buf = append(buf, x)
	}
	var total int32
	for _, x := range buf {
		total += x
	}
	*box = buf
	bufPool.Put(box)
	return total
}

// staticClosure uses a non-capturing literal: a compile-time singleton.
//
//neurospatial:hotpath
func staticClosure(xs []int32) {
	visit := func(x int32) {}
	for _, x := range xs {
		visit(x)
	}
}

// deferredCapture captures in a deferred closure, which the compiler
// open-codes without a heap allocation.
//
//neurospatial:hotpath
func deferredCapture(xs []int32) int32 {
	box := bufPool.Get().(*[]int32)
	defer func() { bufPool.Put(box) }()
	var total int32
	for _, x := range xs {
		total += x
	}
	return total
}

// slowPathUnannotated may allocate freely.
func slowPathUnannotated() string {
	m := map[string]int{"a": 1}
	s := []int{1, 2, 3}
	return fmt.Sprint(m, s)
}

// ignoredAlloc documents a deliberate caller-owned output buffer.
//
//neurospatial:hotpath
func ignoredAlloc(n int) []int32 {
	//lint:ignore hotpath the result buffer is the output, owned by the caller
	out := make([]int32, n)
	return out
}

// --- flagging cases ---

//neurospatial:hotpath
func fmtInHotpath(h Hit) string {
	return fmt.Sprintf("%d", h.ID) // want `fmt\.Sprintf`
}

//neurospatial:hotpath
func mapLiteral() int {
	m := map[int]int{1: 2} // want `map literal`
	return len(m)
}

//neurospatial:hotpath
func makeMap() map[int]int {
	return make(map[int]int) // want `make\(map\)`
}

//neurospatial:hotpath
func makeSlice(n int) int {
	s := make([]int32, n) // want `make\(slice\)`
	return len(s)
}

//neurospatial:hotpath
func sliceLiteral() int {
	s := []int32{1, 2, 3} // want `slice literal`
	return len(s)
}

//neurospatial:hotpath
func capturingClosure(xs []int32) int32 {
	var total int32
	add := func(x int32) { total += x } // want `captures "total"`
	for _, x := range xs {
		add(x)
	}
	return total
}

//neurospatial:hotpath
func nilAppend(xs []int32) []Hit {
	var hits []Hit
	for _, x := range xs {
		hits = append(hits, Hit{ID: x}) // want `non-pooled nil slice`
	}
	return hits
}

//neurospatial:hotpath
func boxing(h Hit) any {
	return any(h) // want `boxes`
}
