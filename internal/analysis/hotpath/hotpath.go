// Package hotpath checks functions annotated with a //neurospatial:hotpath
// doc-comment directive for allocation-prone constructs. The annotated
// functions are the zero-alloc contract of the engine — the Do paths gated
// by TestDoHotPathAllocs — and this analyzer catches regressions at compile
// time instead of waiting for the alloc gate:
//
//   - calls into fmt, reflect, or container/heap (boxing and reflection)
//   - map literals and make(map...)
//   - slice literals and make([]...) — hot-path buffers come from pools
//   - append onto a slice declared `var s []T` (a non-pooled nil slice)
//   - closures that capture variables (a non-capturing func literal is a
//     static singleton and stays allowed; a deferred closure is open-coded
//     by the compiler and also stays allowed)
//   - explicit conversions of concrete values to interface types (boxing)
//
// Deliberate allocations — error construction on cold branches, the
// cancellation wrapper — belong outside annotated functions or under a
// //lint:ignore hotpath directive naming the reason.
package hotpath

import (
	"go/ast"
	"go/types"
	"strings"

	"neurospatial/internal/analysis"
)

// Directive marks a function as part of the zero-alloc hot path.
const Directive = "//neurospatial:hotpath"

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "functions annotated " + Directive + " must avoid allocation-prone constructs " +
		"(fmt/reflect/heap calls, map and slice literals, non-pooled appends, capturing closures, interface boxing)",
	Run: run,
}

// Annotated reports whether a function declaration carries the directive.
func Annotated(fn *ast.FuncDecl) bool {
	if fn.Doc == nil {
		return false
	}
	for _, c := range fn.Doc.List {
		if strings.TrimSpace(c.Text) == Directive {
			return true
		}
	}
	return false
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fn, ok := decl.(*ast.FuncDecl)
			if !ok || fn.Body == nil || !Annotated(fn) {
				continue
			}
			checkBody(pass, fn)
		}
	}
	return nil
}

func checkBody(pass *analysis.Pass, fn *ast.FuncDecl) {
	nilSlices := nilSliceVars(pass, fn.Body)
	deferred := map[*ast.FuncLit]bool{}
	ast.Inspect(fn.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeferStmt:
			if lit, ok := n.Call.Fun.(*ast.FuncLit); ok {
				deferred[lit] = true
			}
		case *ast.FuncLit:
			if !deferred[n] {
				if obj := capturedVar(pass, n); obj != nil {
					pass.Reportf(n.Pos(), "closure captures %q and allocates per call in hotpath function %s",
						obj.Name(), fn.Name.Name)
				}
			}
		case *ast.CompositeLit:
			t, ok := pass.TypesInfo.Types[n]
			if !ok {
				break
			}
			switch t.Type.Underlying().(type) {
			case *types.Map:
				pass.Reportf(n.Pos(), "map literal allocates in hotpath function %s", fn.Name.Name)
			case *types.Slice:
				pass.Reportf(n.Pos(), "slice literal allocates in hotpath function %s", fn.Name.Name)
			}
		case *ast.CallExpr:
			checkCall(pass, fn, n, nilSlices)
		}
		return true
	})
}

func checkCall(pass *analysis.Pass, fn *ast.FuncDecl, call *ast.CallExpr, nilSlices map[types.Object]bool) {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		switch fun.Name {
		case "make":
			if len(call.Args) > 0 {
				if t, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
					switch t.Type.Underlying().(type) {
					case *types.Map:
						pass.Reportf(call.Pos(), "make(map) allocates in hotpath function %s", fn.Name.Name)
					case *types.Slice:
						pass.Reportf(call.Pos(), "make(slice) allocates in hotpath function %s; use pooled scratch", fn.Name.Name)
					}
				}
			}
		case "append":
			if len(call.Args) > 0 {
				if id, ok := call.Args[0].(*ast.Ident); ok && nilSlices[pass.TypesInfo.Uses[id]] {
					pass.Reportf(call.Pos(),
						"append onto non-pooled nil slice %q grows on the heap in hotpath function %s",
						id.Name, fn.Name.Name)
				}
			}
		}
	case *ast.SelectorExpr:
		if pkgID, ok := fun.X.(*ast.Ident); ok {
			if pkgName, ok := pass.TypesInfo.Uses[pkgID].(*types.PkgName); ok {
				switch pkgName.Imported().Path() {
				case "fmt", "reflect", "container/heap":
					pass.Reportf(call.Pos(), "call to %s.%s allocates in hotpath function %s",
						pkgName.Imported().Path(), fun.Sel.Name, fn.Name.Name)
				}
			}
		}
	}
	// Explicit conversion of a concrete value to an interface type boxes it.
	if tv, ok := pass.TypesInfo.Types[call.Fun]; ok && tv.IsType() && len(call.Args) == 1 {
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface {
			if at, ok := pass.TypesInfo.Types[call.Args[0]]; ok {
				if _, argIface := at.Type.Underlying().(*types.Interface); !argIface {
					pass.Reportf(call.Pos(), "conversion to interface type boxes the value in hotpath function %s",
						fn.Name.Name)
				}
			}
		}
	}
}

// capturedVar returns a variable the literal captures from its enclosing
// function, or nil. Package-level variables and the literal's own locals
// don't count: only enclosing-function locals force a heap closure.
func capturedVar(pass *analysis.Pass, lit *ast.FuncLit) types.Object {
	var captured types.Object
	ast.Inspect(lit, func(n ast.Node) bool {
		if captured != nil {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := pass.TypesInfo.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() != pass.Pkg {
			return true
		}
		if v.Parent() == v.Pkg().Scope() {
			return true // package-level: no capture
		}
		if v.Pos() < lit.Pos() || v.Pos() > lit.End() {
			captured = v
		}
		return true
	})
	return captured
}

// nilSliceVars collects objects declared `var s []T` with no initializer
// that are never re-seeded by a non-append assignment: appends onto those
// always grow fresh heap backing.
func nilSliceVars(pass *analysis.Pass, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		decl, ok := n.(*ast.DeclStmt)
		if !ok {
			return true
		}
		gen, ok := decl.Decl.(*ast.GenDecl)
		if !ok {
			return true
		}
		for _, spec := range gen.Specs {
			vs, ok := spec.(*ast.ValueSpec)
			if !ok || len(vs.Values) != 0 {
				continue
			}
			for _, name := range vs.Names {
				obj := pass.TypesInfo.Defs[name]
				if obj == nil {
					continue
				}
				if _, isSlice := obj.Type().Underlying().(*types.Slice); isSlice {
					out[obj] = true
				}
			}
		}
		return true
	})
	// Drop vars re-seeded from elsewhere (s = *box and friends).
	ast.Inspect(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, lhs := range as.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok || !out[pass.TypesInfo.Uses[id]] {
				continue
			}
			if i < len(as.Rhs) {
				if c, ok := as.Rhs[i].(*ast.CallExpr); ok {
					if fid, ok := c.Fun.(*ast.Ident); ok && fid.Name == "append" {
						continue // s = append(s, ...) keeps it a candidate
					}
				}
			}
			delete(out, pass.TypesInfo.Uses[id])
		}
		return true
	})
	return out
}
