package analysis

import (
	"fmt"
	"go/ast"
	"go/types"
	"path/filepath"
	"sort"
)

// FuncKey names one function across the whole module. *types.Func identity is
// useless for that — every package the source importer type-checks gets its
// own object graph, so the same function has a distinct object per importing
// package — hence a stable string: "pkgpath.Recv.Name" for methods,
// "pkgpath..Name" for functions, and "pkgpath..funclit@file:line:col" for
// function literals.
type FuncKey string

// FuncNode is one function in the module call graph: a declaration or a
// function literal, the package whose TypesInfo covers its body, and its
// outgoing static call edges (interface calls CHA-expanded, function values
// resolved through local/field assignments, bare references to functions —
// method values, callbacks — included as may-call edges).
type FuncNode struct {
	Key   FuncKey
	Name  string        // declared name; "" for literals
	Decl  *ast.FuncDecl // nil for literals
	Lit   *ast.FuncLit  // nil for declarations
	Pkg   *Package
	Calls []FuncKey
}

// Body returns the function's block statement.
func (n *FuncNode) Body() *ast.BlockStmt {
	if n.Decl != nil {
		return n.Decl.Body
	}
	return n.Lit.Body
}

// Sig returns the function's type signature, or nil when unresolvable.
func (n *FuncNode) Sig() *types.Signature {
	info := n.Pkg.Info
	if n.Decl != nil {
		if fn, ok := info.Defs[n.Decl.Name].(*types.Func); ok {
			return fn.Type().(*types.Signature)
		}
		return nil
	}
	if tv, ok := info.Types[n.Lit]; ok {
		if sig, ok := tv.Type.(*types.Signature); ok {
			return sig
		}
	}
	return nil
}

// Module is the interprocedural context shared by the analyzers: every loaded
// package, the call graph over them, and one bottom-up Summary per function.
// Build it once per neurolint run and hand it to every analysis.Run call.
type Module struct {
	Pkgs      []*Package
	Funcs     map[FuncKey]*FuncNode
	Summaries map[FuncKey]*Summary

	// funcVals maps function-typed variables and struct fields to the
	// functions assigned into them anywhere in their declaring package —
	// how a call through d.onCommit resolves to the closure installHook
	// stored there. Keyed per package because object identity is
	// per-type-check.
	funcVals map[*Package]map[types.Object][]FuncKey

	// namedTypes lists every named type declared in the module, the CHA
	// universe for interface calls.
	namedTypes []*types.Named

	// chaCache memoizes interface-method expansion by interface identity
	// and method name.
	chaCache map[chaKey][]FuncKey

	// locks maps annotated mutex field objects to their declared lock info,
	// plus a by-name view for cross-package summary propagation.
	locks      map[types.Object]*LockInfo
	lockByName map[string]*LockInfo
}

type chaKey struct {
	iface  *types.Interface
	method string
}

// KeyForFunc derives the module-wide key of a declared function or method.
func KeyForFunc(fn *types.Func) FuncKey {
	pkg := ""
	if fn.Pkg() != nil {
		pkg = fn.Pkg().Path()
	}
	recv := ""
	if sig, ok := fn.Type().(*types.Signature); ok && sig.Recv() != nil {
		t := sig.Recv().Type()
		if p, ok := t.(*types.Pointer); ok {
			t = p.Elem()
		}
		if n, ok := t.(*types.Named); ok {
			recv = n.Obj().Name()
		} else {
			recv = t.String()
		}
	}
	return FuncKey(pkg + "." + recv + "." + fn.Name())
}

// keyForLit derives a key for a function literal from its position — stable
// across type-checks because the FileSet is shared by the whole load.
func keyForLit(pkg *Package, lit *ast.FuncLit) FuncKey {
	pos := pkg.Fset.Position(lit.Pos())
	return FuncKey(fmt.Sprintf("%s..funclit@%s:%d:%d",
		pkg.ImportPath, filepath.Base(pos.Filename), pos.Line, pos.Column))
}

// BuildModule constructs the call graph and summaries for pkgs. Analyzers
// receive the result through Pass.Module.
func BuildModule(pkgs []*Package) *Module {
	m := &Module{
		Pkgs:       pkgs,
		Funcs:      map[FuncKey]*FuncNode{},
		Summaries:  map[FuncKey]*Summary{},
		funcVals:   map[*Package]map[types.Object][]FuncKey{},
		chaCache:   map[chaKey][]FuncKey{},
		locks:      map[types.Object]*LockInfo{},
		lockByName: map[string]*LockInfo{},
	}
	for _, pkg := range pkgs {
		m.collectTypes(pkg)
		m.collectLocks(pkg)
	}
	for _, pkg := range pkgs {
		m.collectFuncs(pkg)
	}
	for _, pkg := range pkgs {
		m.collectFuncVals(pkg)
	}
	for _, node := range m.Funcs {
		m.collectCalls(node)
	}
	m.computeSummaries()
	return m
}

// Summary returns the summary for key, or nil when the function's body is
// outside the module (stdlib, out-of-scope load).
func (m *Module) Summary(key FuncKey) *Summary {
	return m.Summaries[key]
}

// collectTypes records every named (non-alias) type in pkg's scope.
func (m *Module) collectTypes(pkg *Package) {
	scope := pkg.Types.Scope()
	for _, name := range scope.Names() {
		tn, ok := scope.Lookup(name).(*types.TypeName)
		if !ok || tn.IsAlias() {
			continue
		}
		if named, ok := tn.Type().(*types.Named); ok {
			m.namedTypes = append(m.namedTypes, named)
		}
	}
}

// collectFuncs registers every function declaration and literal in pkg.
func (m *Module) collectFuncs(pkg *Package) {
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			if fd, ok := decl.(*ast.FuncDecl); ok && fd.Body != nil {
				if fn, ok := pkg.Info.Defs[fd.Name].(*types.Func); ok {
					key := KeyForFunc(fn)
					m.Funcs[key] = &FuncNode{Key: key, Name: fd.Name.Name, Decl: fd, Pkg: pkg}
				}
			}
		}
		ast.Inspect(f, func(n ast.Node) bool {
			if lit, ok := n.(*ast.FuncLit); ok {
				key := keyForLit(pkg, lit)
				m.Funcs[key] = &FuncNode{Key: key, Lit: lit, Pkg: pkg}
			}
			return true
		})
	}
}

// collectFuncVals records, per function-typed variable or struct field, the
// functions assigned into it anywhere in pkg: `d.onCommit = closure`,
// `var emit = handler`, and composite literals with function-valued fields.
func (m *Module) collectFuncVals(pkg *Package) {
	vals := map[types.Object][]FuncKey{}
	add := func(obj types.Object, e ast.Expr) {
		if obj == nil || e == nil {
			return
		}
		if key, ok := m.funcValueKey(pkg, e); ok {
			vals[obj] = append(vals[obj], key)
		}
	}
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch s := n.(type) {
			case *ast.AssignStmt:
				if len(s.Lhs) == len(s.Rhs) {
					for i, lhs := range s.Lhs {
						add(m.lhsObject(pkg, lhs), s.Rhs[i])
					}
				}
			case *ast.ValueSpec:
				for i, name := range s.Names {
					if i < len(s.Values) {
						add(pkg.Info.Defs[name], s.Values[i])
					}
				}
			case *ast.CompositeLit:
				tv, ok := pkg.Info.Types[s]
				if !ok {
					return true
				}
				st, ok := structOf(tv.Type)
				if !ok {
					return true
				}
				for _, el := range s.Elts {
					kv, ok := el.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok {
						continue
					}
					for i := 0; i < st.NumFields(); i++ {
						if st.Field(i).Name() == key.Name {
							add(st.Field(i), kv.Value)
						}
					}
				}
			}
			return true
		})
	}
	m.funcVals[pkg] = vals
}

func structOf(t types.Type) (*types.Struct, bool) {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	st, ok := t.Underlying().(*types.Struct)
	return st, ok
}

// lhsObject resolves the object an assignment writes: a plain identifier or
// the field of a selector.
func (m *Module) lhsObject(pkg *Package, lhs ast.Expr) types.Object {
	switch l := lhs.(type) {
	case *ast.Ident:
		if obj := pkg.Info.Defs[l]; obj != nil {
			return obj
		}
		return pkg.Info.Uses[l]
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[l]; ok {
			return sel.Obj()
		}
		return pkg.Info.Uses[l.Sel]
	}
	return nil
}

// funcValueKey resolves an expression used as a function value to a key:
// a literal, a declared function, or a method value.
func (m *Module) funcValueKey(pkg *Package, e ast.Expr) (FuncKey, bool) {
	switch v := e.(type) {
	case *ast.FuncLit:
		return keyForLit(pkg, v), true
	case *ast.Ident:
		if fn, ok := pkg.Info.Uses[v].(*types.Func); ok {
			return KeyForFunc(fn), true
		}
	case *ast.SelectorExpr:
		if fn, ok := pkg.Info.Uses[v.Sel].(*types.Func); ok {
			return KeyForFunc(fn), true
		}
	}
	return "", false
}

// collectCalls fills node.Calls: call expressions (static, CHA-expanded
// interface, function-value) plus bare references to module functions —
// a method value or callback may be invoked later, so it is a may-call edge.
// Edges land on the node even when the callee's body lives in a package
// outside the module; those keys simply have no FuncNode or Summary.
func (m *Module) collectCalls(node *FuncNode) {
	pkg := node.Pkg
	edges := map[FuncKey]bool{}
	addKey := func(k FuncKey) { edges[k] = true }

	// Mark the Fun position of every call so bare-reference detection below
	// doesn't double-count it.
	inCallFun := map[ast.Node]bool{}
	ast.Inspect(node.Body(), func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != node.Lit {
			// Nested literal: it has its own node; referencing it here is
			// a may-call edge (it runs on some later invocation).
			addKey(keyForLit(pkg, lit))
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		fun := ast.Unparen(call.Fun)
		inCallFun[fun] = true
		for _, k := range m.Targets(pkg, call) {
			addKey(k)
		}
		return true
	})

	// Bare references: idents and selectors resolving to declared functions,
	// outside call-fun position.
	ast.Inspect(node.Body(), func(n ast.Node) bool {
		if lit, ok := n.(*ast.FuncLit); ok && lit != node.Lit {
			return false
		}
		if inCallFun[n] {
			return true
		}
		switch v := n.(type) {
		case *ast.Ident:
			if fn, ok := pkg.Info.Uses[v].(*types.Func); ok {
				addKey(KeyForFunc(fn))
			}
		case *ast.SelectorExpr:
			if inCallFun[v] {
				return true
			}
			if fn, ok := pkg.Info.Uses[v.Sel].(*types.Func); ok {
				addKey(KeyForFunc(fn))
				return false
			}
		}
		return true
	})

	node.Calls = make([]FuncKey, 0, len(edges))
	for k := range edges {
		node.Calls = append(node.Calls, k)
	}
	sort.Slice(node.Calls, func(i, j int) bool { return node.Calls[i] < node.Calls[j] })
}

// Targets resolves the possible callees of one call expression as seen from
// pkg: a static function or method, the CHA expansion of an interface method,
// the functions assigned to a called function-typed variable or field, or a
// directly invoked literal. Unresolvable calls (builtins, conversions,
// function values never assigned in the package) yield no targets.
func (m *Module) Targets(pkg *Package, call *ast.CallExpr) []FuncKey {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.FuncLit:
		return []FuncKey{keyForLit(pkg, fun)}
	case *ast.Ident:
		switch obj := pkg.Info.Uses[fun].(type) {
		case *types.Func:
			return []FuncKey{KeyForFunc(obj)}
		case *types.Var:
			return m.funcVals[pkg][obj]
		}
	case *ast.SelectorExpr:
		if sel, ok := pkg.Info.Selections[fun]; ok {
			switch obj := sel.Obj().(type) {
			case *types.Func:
				if types.IsInterface(sel.Recv()) {
					return m.chaTargets(sel.Recv(), obj.Name())
				}
				return []FuncKey{KeyForFunc(obj)}
			case *types.Var:
				// Function-typed field: calls through it go to whatever the
				// package assigned there.
				return m.funcVals[pkg][obj]
			}
			return nil
		}
		// Package-qualified: os.Rename, durable.ParseManifest, ...
		switch obj := pkg.Info.Uses[fun.Sel].(type) {
		case *types.Func:
			return []FuncKey{KeyForFunc(obj)}
		case *types.Var:
			return m.funcVals[pkg][obj]
		}
	}
	return nil
}

// chaTargets expands an interface method call over every named type in the
// module that implements the interface.
func (m *Module) chaTargets(recv types.Type, method string) []FuncKey {
	iface, ok := recv.Underlying().(*types.Interface)
	if !ok {
		return nil
	}
	ck := chaKey{iface: iface, method: method}
	if cached, ok := m.chaCache[ck]; ok {
		return cached
	}
	var out []FuncKey
	seen := map[FuncKey]bool{}
	for _, named := range m.namedTypes {
		var impl types.Type = named
		if !types.Implements(named, iface) {
			if !types.Implements(types.NewPointer(named), iface) {
				continue
			}
			impl = types.NewPointer(named)
		}
		obj, _, _ := types.LookupFieldOrMethod(impl, true, nil, method)
		if fn, ok := obj.(*types.Func); ok {
			key := KeyForFunc(fn)
			if !seen[key] {
				seen[key] = true
				out = append(out, key)
			}
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	m.chaCache[ck] = out
	return out
}

// sccs returns the strongly connected components of the call graph in
// bottom-up (callees before callers) order, Tarjan's algorithm run
// iteratively over sorted keys for determinism.
func (m *Module) sccs() [][]FuncKey {
	keys := make([]FuncKey, 0, len(m.Funcs))
	for k := range m.Funcs {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool { return keys[i] < keys[j] })

	index := map[FuncKey]int{}
	low := map[FuncKey]int{}
	onStack := map[FuncKey]bool{}
	var stack []FuncKey
	var out [][]FuncKey
	next := 0

	var strong func(k FuncKey)
	strong = func(k FuncKey) {
		index[k] = next
		low[k] = next
		next++
		stack = append(stack, k)
		onStack[k] = true
		for _, callee := range m.Funcs[k].Calls {
			if _, inModule := m.Funcs[callee]; !inModule {
				continue
			}
			if _, seen := index[callee]; !seen {
				strong(callee)
				if low[callee] < low[k] {
					low[k] = low[callee]
				}
			} else if onStack[callee] && index[callee] < low[k] {
				low[k] = index[callee]
			}
		}
		if low[k] == index[k] {
			var comp []FuncKey
			for {
				top := stack[len(stack)-1]
				stack = stack[:len(stack)-1]
				onStack[top] = false
				comp = append(comp, top)
				if top == k {
					break
				}
			}
			out = append(out, comp)
		}
	}
	for _, k := range keys {
		if _, seen := index[k]; !seen {
			strong(k)
		}
	}
	return out // Tarjan emits components callees-first already
}
