package analysis

import (
	"go/ast"
)

// Block is one straight-line run of statements in a function's control-flow
// graph. Nodes holds statements plus the condition expressions of if/for
// heads, in execution order. A block with no Succs ends the function: a
// return, a panic call, or falling off the end of the body.
type Block struct {
	Nodes []ast.Node
	Succs []*Block
}

// CFG is an intra-procedural control-flow graph. It models if/for/range/
// switch/select/return/break/continue/fallthrough/labeled loops; goto sets
// Unsupported, and flow-sensitive analyses should skip such functions rather
// than guess.
type CFG struct {
	Entry       *Block
	Blocks      []*Block
	Unsupported bool
}

// BuildCFG constructs the CFG of one function body.
func BuildCFG(body *ast.BlockStmt) *CFG {
	b := &cfgBuilder{g: &CFG{}, labels: map[string]*labelTarget{}}
	b.g.Entry = b.newBlock()
	b.cur = b.g.Entry
	b.stmtList(body.List)
	return b.g
}

type labelTarget struct {
	brk, cont *Block
}

type cfgBuilder struct {
	g   *CFG
	cur *Block

	breaks []*Block // innermost break targets
	conts  []*Block // innermost continue targets
	fall   *Block   // fallthrough target inside a switch clause

	labels       map[string]*labelTarget
	pendingLabel string
}

func (b *cfgBuilder) newBlock() *Block {
	blk := &Block{}
	b.g.Blocks = append(b.g.Blocks, blk)
	return blk
}

func (b *cfgBuilder) add(n ast.Node) {
	if n != nil {
		b.cur.Nodes = append(b.cur.Nodes, n)
	}
}

// linkTo adds an edge cur -> to.
func (b *cfgBuilder) linkTo(to *Block) {
	b.cur.Succs = append(b.cur.Succs, to)
}

// terminate parks the builder on a fresh unreachable block, used after
// return/panic/branch so trailing dead code doesn't attach to live paths.
func (b *cfgBuilder) terminate() {
	b.cur = b.newBlock()
}

// takeLabel consumes the pending label, registering its targets.
func (b *cfgBuilder) takeLabel(brk, cont *Block) {
	if b.pendingLabel != "" {
		b.labels[b.pendingLabel] = &labelTarget{brk: brk, cont: cont}
		b.pendingLabel = ""
	}
}

func (b *cfgBuilder) stmtList(list []ast.Stmt) {
	for _, s := range list {
		b.stmt(s)
	}
}

func (b *cfgBuilder) stmt(s ast.Stmt) {
	switch s := s.(type) {
	case *ast.BlockStmt:
		b.stmtList(s.List)

	case *ast.IfStmt:
		b.add(s.Init)
		b.add(s.Cond)
		then, after := b.newBlock(), b.newBlock()
		b.linkTo(then)
		if s.Else != nil {
			els := b.newBlock()
			b.linkTo(els)
			b.cur = els
			b.stmt(s.Else)
			b.linkTo(after)
		} else {
			b.linkTo(after)
		}
		b.cur = then
		b.stmtList(s.Body.List)
		b.linkTo(after)
		b.cur = after

	case *ast.ForStmt:
		b.add(s.Init)
		head := b.newBlock()
		b.linkTo(head)
		body, after := b.newBlock(), b.newBlock()
		cont := head
		if s.Post != nil {
			post := b.newBlock()
			post.Nodes = append(post.Nodes, s.Post)
			post.Succs = append(post.Succs, head)
			cont = post
		}
		b.takeLabel(after, cont)
		head.Succs = append(head.Succs, body)
		if s.Cond != nil {
			head.Nodes = append(head.Nodes, s.Cond)
			head.Succs = append(head.Succs, after)
		}
		b.breaks = append(b.breaks, after)
		b.conts = append(b.conts, cont)
		b.cur = body
		b.stmtList(s.Body.List)
		b.linkTo(cont)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		b.cur = after

	case *ast.RangeStmt:
		head := b.newBlock()
		b.linkTo(head)
		head.Nodes = append(head.Nodes, s.X)
		body, after := b.newBlock(), b.newBlock()
		b.takeLabel(after, head)
		head.Succs = append(head.Succs, body, after)
		b.breaks = append(b.breaks, after)
		b.conts = append(b.conts, head)
		b.cur = body
		b.stmtList(s.Body.List)
		b.linkTo(head)
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.conts = b.conts[:len(b.conts)-1]
		b.cur = after

	case *ast.SwitchStmt, *ast.TypeSwitchStmt:
		var init ast.Stmt
		var tag ast.Node
		var clauses []ast.Stmt
		switch sw := s.(type) {
		case *ast.SwitchStmt:
			init, tag, clauses = sw.Init, sw.Tag, sw.Body.List
		case *ast.TypeSwitchStmt:
			init, tag, clauses = sw.Init, sw.Assign, sw.Body.List
		}
		b.add(init)
		b.add(tag)
		after := b.newBlock()
		b.takeLabel(after, nil)
		head := b.cur
		blocks := make([]*Block, len(clauses))
		hasDefault := false
		for i, c := range clauses {
			blocks[i] = b.newBlock()
			head.Succs = append(head.Succs, blocks[i])
			if cc, ok := c.(*ast.CaseClause); ok && cc.List == nil {
				hasDefault = true
			}
		}
		if !hasDefault {
			head.Succs = append(head.Succs, after)
		}
		b.breaks = append(b.breaks, after)
		savedFall := b.fall
		for i, c := range clauses {
			cc := c.(*ast.CaseClause)
			b.cur = blocks[i]
			for _, e := range cc.List {
				b.add(e)
			}
			if i+1 < len(blocks) {
				b.fall = blocks[i+1]
			} else {
				b.fall = after
			}
			b.stmtList(cc.Body)
			b.linkTo(after)
		}
		b.fall = savedFall
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.SelectStmt:
		after := b.newBlock()
		b.takeLabel(after, nil)
		head := b.cur
		b.breaks = append(b.breaks, after)
		for _, c := range s.Body.List {
			cc := c.(*ast.CommClause)
			blk := b.newBlock()
			head.Succs = append(head.Succs, blk)
			b.cur = blk
			b.add(cc.Comm)
			b.stmtList(cc.Body)
			b.linkTo(after)
		}
		b.breaks = b.breaks[:len(b.breaks)-1]
		b.cur = after

	case *ast.ReturnStmt:
		b.add(s)
		b.terminate()

	case *ast.BranchStmt:
		switch s.Tok.String() {
		case "break":
			b.branchTo(s, func(t *labelTarget) *Block { return t.brk }, b.breaks)
		case "continue":
			b.branchTo(s, func(t *labelTarget) *Block { return t.cont }, b.conts)
		case "fallthrough":
			if b.fall != nil {
				b.linkTo(b.fall)
			}
			b.terminate()
		case "goto":
			b.g.Unsupported = true
			b.terminate()
		}

	case *ast.LabeledStmt:
		b.pendingLabel = s.Label.Name
		b.stmt(s.Stmt)
		b.pendingLabel = ""

	case *ast.ExprStmt:
		b.add(s)
		if call, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := call.Fun.(*ast.Ident); ok && id.Name == "panic" {
				b.terminate()
			}
		}

	default:
		// Assign, Decl, Defer, Go, IncDec, Send, Empty: straight-line.
		b.add(s)
	}
}

// branchTo routes a break/continue to its labeled or innermost target.
func (b *cfgBuilder) branchTo(s *ast.BranchStmt, pick func(*labelTarget) *Block, stack []*Block) {
	var to *Block
	if s.Label != nil {
		if t := b.labels[s.Label.Name]; t != nil {
			to = pick(t)
		}
	} else if len(stack) > 0 {
		to = stack[len(stack)-1]
	}
	if to != nil {
		b.linkTo(to)
	} else {
		b.g.Unsupported = true // labeled branch we failed to resolve
	}
	b.cur = b.newBlock()
}
