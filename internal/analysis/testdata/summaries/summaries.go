// Fixture for antest.RunSummaries: each want-summary comment pins the
// interprocedural fact sheet the module computes for the function below it.
package sum

import (
	"context"
	"errors"
	"fmt"
	"os"
	"sync"
)

type FormatError struct{ Reason string }

func (e *FormatError) Error() string { return e.Reason }

type CorruptError struct{ Reason string }

func (e *CorruptError) Error() string { return e.Reason }

type Snapshot struct{ refs int }

func (s *Snapshot) acquire() { s.refs++ }

// The leaf disposer's own body carries no release fact — the Release/Close
// NAME is the call-site intrinsic that settles obligations.
// want-summary releases-recv=0
func (s *Snapshot) Release() { s.refs-- }

type wrapper struct{ snap *Snapshot }

// A differently named disposer settles via its summary: it releases a field
// of the receiver, so calling it settles the receiver's obligation.
// want-summary releases-recv=1
func (w *wrapper) shutdown() { w.snap.Release() }

type Dataset struct {
	mu  sync.Mutex //neurospatial:lock sum.state noio
	cur *Snapshot
}

// want-summary locks=sum.state
func (d *Dataset) Acquire() *Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cur.acquire()
	return d.cur
}

// openPinned hands its caller a pin obligation: the Acquire result flows out.
// want-summary acquires=1 err=none
func openPinned(d *Dataset) (*Snapshot, error) {
	snap := d.Acquire()
	return snap, nil
}

// openChecked settles its own pin. Returning err must not read as returning
// the handle (the error-result holder regression).
// want-summary acquires=0 err=none
func openChecked(d *Dataset) error {
	snap, err := openPinned(d)
	if err != nil {
		return err
	}
	snap.Release()
	return nil
}

// want-summary releases-param=0
func drop(s *Snapshot, n int) {
	_ = n
	s.Release()
}

var pool = sync.Pool{New: func() any { return new([]byte) }}

// want-summary puts-param=0
func putBack(b *[]byte) { pool.Put(b) }

var sink *Snapshot

// want-summary retains-param=0
func stash(s *Snapshot) { sink = s }

// want-summary effects=io,write,fsync,rename err=opaque
func spill(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return err
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return err
	}
	if err := f.Close(); err != nil {
		return err
	}
	return os.Rename(path, path+".done")
}

// syncDir exercises the read-only-handle heuristic: Sync on an os.Open
// handle is the directory-fsync idiom.
// want-summary effects=io,dirfsync err=opaque
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	if err := d.Sync(); err != nil {
		d.Close()
		return err
	}
	return d.Close()
}

type WAL struct{ f *os.File }

// The WAL method's own summary carries its file-level effects…
// want-summary effects=io,write,fsync err=opaque
func (w *WAL) Append(rec []byte) error {
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	return w.f.Sync()
}

// …while a caller sees the call-site intrinsic (walappend) plus the
// propagated subset (io, fsync — write and rename stay local).
// want-summary effects=io,fsync,walappend err=opaque
func logRecord(w *WAL, rec []byte) error {
	return w.Append(rec)
}

// want-summary checks-ctx=1
func poll(ctx context.Context) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	return nil
}

// want-summary panics=1
func mustLen(b []byte) int {
	if len(b) == 0 {
		panic("empty")
	}
	return len(b)
}

// want-summary panics=0
func safeLen(b []byte) (n int) {
	defer func() {
		if recover() != nil {
			n = 0
		}
	}()
	return mustLen(b)
}

// want-summary err=format
func checkMagic(b []byte) error {
	if len(b) < 4 {
		return &FormatError{Reason: "short header"}
	}
	return nil
}

// want-summary err=format,corrupt
func validate(b []byte) error {
	if err := checkMagic(b); err != nil {
		return err
	}
	if b[0] == 0xff {
		return &CorruptError{Reason: "reserved tag"}
	}
	return nil
}

// want-summary err=opaque
func slurp(b []byte) error {
	if len(b) == 0 {
		return errors.New("empty input")
	}
	return nil
}

// A %w wrap keeps the wrapped kind.
// want-summary err=format
func wrapped(b []byte) error {
	if err := checkMagic(b); err != nil {
		return fmt.Errorf("header: %w", err)
	}
	return nil
}

// nested recurses; the SCC fixpoint must converge on format, not opaque.
// want-summary err=format
func nested(b []byte, depth int) error {
	if depth > 4 {
		return &FormatError{Reason: "nesting too deep"}
	}
	if len(b) == 0 {
		return nil
	}
	if err := nested(b[1:], depth+1); err != nil {
		return err
	}
	return nil
}
