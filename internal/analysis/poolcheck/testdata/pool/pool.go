// Fixture for poolcheck: pooled-scratch acquire/release discipline.
package poolfix

import (
	"errors"
	"sync"
)

type scratch struct{ buf []int }

var scratchPool = sync.Pool{New: func() any { return new(scratch) }}

func getScratch() *scratch  { return scratchPool.Get().(*scratch) }
func putScratch(s *scratch) { scratchPool.Put(s) }

// getPair is a multi-value acquire helper, like parallel's getSegs.
func getPair() (*scratch, []int) {
	s := scratchPool.Get().(*scratch)
	return s, s.buf
}

func putPair(s *scratch) { scratchPool.Put(s) }

// --- non-flagging cases ---

// deferRelease is the canonical pattern: defer right after the acquire
// covers every exit, including panics.
func deferRelease() int {
	s := getScratch()
	defer putScratch(s)
	return len(s.buf)
}

// straightRelease releases without defer on the only path.
func straightRelease() int {
	s := getScratch()
	n := len(s.buf)
	putScratch(s)
	return n
}

// deferredClosureRelease resets before returning to the pool inside a
// deferred closure.
func deferredClosureRelease() int {
	s := scratchPool.Get().(*scratch)
	defer func() {
		s.buf = s.buf[:0]
		scratchPool.Put(s)
	}()
	return len(s.buf)
}

// transferByReturn hands ownership to the caller.
func transferByReturn() *scratch {
	s := getScratch()
	s.buf = s.buf[:0]
	return s
}

// transferToSink hands ownership to another function.
func transferToSink(sink func(*scratch)) {
	s := getScratch()
	sink(s)
}

// capturedByClosure transfers ownership into the returned closure.
func capturedByClosure() func() {
	s := getScratch()
	return func() { putScratch(s) }
}

// loopRelease releases on both the break path and the fallthrough path.
func loopRelease(n int) {
	for i := 0; i < n; i++ {
		s := getScratch()
		if i == 3 {
			putScratch(s)
			break
		}
		putScratch(s)
	}
}

// branchBothRelease releases on each branch of an if/else.
func branchBothRelease(fail bool) error {
	s := getScratch()
	if fail {
		putScratch(s)
		return errors.New("boom")
	}
	putScratch(s)
	return nil
}

// warmPool drops a value on purpose; the escape hatch names the reason.
func warmPool() {
	//lint:ignore poolcheck deliberately dropping one value to exercise pool refill
	getScratch()
}

// leakIgnored documents a leak the analyzer would otherwise flag.
func leakIgnored(fail bool) error {
	//lint:ignore poolcheck ownership documented: test double released by caller
	s := getScratch()
	if fail {
		return errors.New("boom")
	}
	putScratch(s)
	return nil
}

// fill only borrows its argument; its summary proves the pointer neither
// escapes nor returns to a pool.
func fill(s *scratch) {
	s.buf = append(s.buf, 1)
}

// recycle returns its argument to the pool without the put* naming.
func recycle(s *scratch) {
	scratchPool.Put(s)
}

// borrowThenRelease: a borrowing helper call does not end tracking; the
// release after it settles the path.
func borrowThenRelease() {
	s := getScratch()
	fill(s)
	putScratch(s)
}

// summaryRelease settles through recycle's PutsParam summary despite the
// non-put name.
func summaryRelease() {
	s := getScratch()
	defer recycle(s)
	fill(s)
}

// --- flagging cases ---

// borrowLeak: the borrowing call leaves the obligation here, and the
// function ends still holding the value.
func borrowLeak() {
	s := getScratch() // want `not released on every path`
	fill(s)
}

// leakOnError releases on the happy path only.
func leakOnError(fail bool) error {
	s := getScratch() // want `not released on every path`
	if fail {
		return errors.New("boom")
	}
	putScratch(s)
	return nil
}

// directPool leaks a raw sync.Pool value the same way.
func directPool(fail bool) error {
	s := scratchPool.Get().(*scratch) // want `not released on every path`
	if fail {
		return errors.New("boom")
	}
	scratchPool.Put(s)
	return nil
}

// discarded never binds the acquired value at all.
func discarded() {
	getScratch() // want `discarded`
}

// leakOnPanic exits through panic while holding the value.
func leakOnPanic(bad bool) {
	s := getScratch() // want `not released on every path`
	if bad {
		panic("bad input")
	}
	putScratch(s)
}

// switchLeak misses the release in one case arm.
func switchLeak(mode int) {
	s := getScratch() // want `not released on every path`
	switch mode {
	case 0:
		putScratch(s)
	case 1:
		// missing release
	default:
		putScratch(s)
	}
}

// multiValueLeak tracks every binding of a multi-value acquire.
func multiValueLeak(fail bool) error {
	box, buf := getPair() // want `not released on every path`
	if len(buf) == 0 && fail {
		return errors.New("empty")
	}
	putPair(box)
	return nil
}
