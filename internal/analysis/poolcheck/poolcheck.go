// Package poolcheck verifies the repo's pooled-scratch discipline: every
// value acquired from a sync.Pool — directly via Pool.Get or through a
// package-local get* helper — must be released (Pool.Put or a put* helper)
// on every path out of the acquiring function.
//
// The check is flow-sensitive over the intra-procedural CFG. From each
// acquire it walks all paths; a path is satisfied when it hits a release, a
// `defer` of a release (which covers every later exit, including panics),
// or an ownership transfer: returning the value, capturing it in a closure,
// storing it in a composite literal or struct field, or passing it to a
// non-release function. A path that reaches a return, panic, or the end of
// the function while still holding the value is a leak, reported at the
// acquire site.
//
// Acquire expressions that are never bound to a variable — used directly
// inside a composite literal or call — transfer ownership at birth and are
// skipped; an acquire whose result is discarded outright is always a leak.
package poolcheck

import (
	"go/ast"
	"go/types"
	"strings"

	"neurospatial/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolcheck",
	Doc: "pooled scratch (sync.Pool.Get / get* helpers) must be released on every exit path; " +
		"release with Put / a put* helper, defer the release, or transfer ownership",
	Run: run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// checkFunc analyzes one function body. Nested function literals are handled
// by their own checkFunc call: the CFG flattens only the outer statement
// list, so an acquire inside a closure is invisible here.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := analysis.BuildCFG(body)
	if g.Unsupported {
		return // goto or unresolved branch: don't guess
	}
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			call, names := acquireIn(pass, n)
			if call == nil {
				continue
			}
			if len(names) == 0 {
				pass.Reportf(call.Pos(), "result of %s is discarded; the pooled value leaks", callName(call))
				continue
			}
			objs := map[types.Object]bool{}
			for _, id := range names {
				if obj := pass.TypesInfo.Defs[id]; obj != nil {
					objs[obj] = true
				} else if obj := pass.TypesInfo.Uses[id]; obj != nil {
					objs[obj] = true
				}
			}
			if len(objs) == 0 {
				continue
			}
			track(pass, g, b, i, call, objs)
		}
	}
}

// acquireIn recognizes statements of the form `v := acquire()` (any mix of
// = / := and multi-value acquires) and bare `acquire()` expression
// statements. It returns the acquire call and the bound identifiers; a bare
// or all-blank binding returns no identifiers, which the caller reports.
// Acquires nested deeper in an expression transfer ownership and are skipped.
func acquireIn(pass *analysis.Pass, n ast.Node) (*ast.CallExpr, []*ast.Ident) {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return nil, nil
		}
		call := acquireCall(pass, s.Rhs[0])
		if call == nil {
			return nil, nil
		}
		var ids []*ast.Ident
		for _, lhs := range s.Lhs {
			id, ok := lhs.(*ast.Ident)
			if !ok {
				return nil, nil // stored into a field/element: ownership transferred
			}
			if id.Name != "_" {
				ids = append(ids, id)
			}
		}
		return call, ids
	case *ast.ExprStmt:
		return acquireCall(pass, s.X), nil
	}
	return nil, nil
}

// acquireCall unwraps parens/type assertions and reports whether the
// expression is an acquire call.
func acquireCall(pass *analysis.Pass, e ast.Expr) *ast.CallExpr {
	for {
		switch t := e.(type) {
		case *ast.ParenExpr:
			e = t.X
		case *ast.TypeAssertExpr:
			e = t.X
		default:
			call, ok := e.(*ast.CallExpr)
			if !ok || !isAcquire(pass, call) {
				return nil
			}
			return call
		}
	}
}

// isAcquire: sync.Pool.Get, or a same-package function/method named get*.
func isAcquire(pass *analysis.Pass, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" {
		if t, ok := pass.TypesInfo.Types[sel.X]; ok && isSyncPool(t.Type) {
			return true
		}
	}
	return isPoolHelper(pass, call, "get")
}

// callReleases reports whether call settles a tracked value's obligation:
// a direct Put/put* mentioning it, or — interprocedurally — a callee whose
// summary says the corresponding parameter is returned to a pool
// (PutsParam), whatever the callee's name.
func callReleases(pass *analysis.Pass, call *ast.CallExpr, objs map[types.Object]bool) bool {
	if isRelease(pass, call) && mentions(pass, call, objs) {
		return true
	}
	merged := pass.Module.MergedCallSummary(pass.Package, call)
	if merged == nil {
		return false
	}
	for i, a := range call.Args {
		if id, ok := a.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
			if i < len(merged.PutsParam) && merged.PutsParam[i] {
				return true
			}
		}
	}
	return false
}

// isRelease: sync.Pool.Put, or a same-package function/method named put*.
func isRelease(pass *analysis.Pass, call *ast.CallExpr) bool {
	if sel, ok := call.Fun.(*ast.SelectorExpr); ok && sel.Sel.Name == "Put" {
		if t, ok := pass.TypesInfo.Types[sel.X]; ok && isSyncPool(t.Type) {
			return true
		}
	}
	return isPoolHelper(pass, call, "put")
}

// isPoolHelper reports whether call targets a function in the analyzed
// package whose name starts with prefix followed by an upper-case letter —
// the repo's getIDCollector/putIDCollector naming convention.
func isPoolHelper(pass *analysis.Pass, call *ast.CallExpr, prefix string) bool {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	name := id.Name
	if !strings.HasPrefix(name, prefix) || len(name) == len(prefix) {
		return false
	}
	if c := name[len(prefix)]; c < 'A' || c > 'Z' {
		return false
	}
	fn, ok := pass.TypesInfo.Uses[id].(*types.Func)
	return ok && fn.Pkg() == pass.Pkg
}

func isSyncPool(t types.Type) bool {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() != nil &&
		named.Obj().Pkg().Path() == "sync" && named.Obj().Name() == "Pool"
}

func callName(call *ast.CallExpr) string {
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return "pool acquire"
}

// use classification for one statement with respect to the tracked objects.
type useKind int

const (
	useNone    useKind = iota // statement doesn't touch the value
	useRead                   // touches it harmlessly (v.f, v[i], *v, append)
	useRelease                // releases it
	useEscape                 // transfers ownership
	useLeakRet                // a return/exit not mentioning the value
)

// track walks all paths from the statement after the acquire and reports the
// first path that exits while still holding the value.
func track(pass *analysis.Pass, g *analysis.CFG, b *analysis.Block, idx int, call *ast.CallExpr, objs map[types.Object]bool) {
	visited := map[*analysis.Block]bool{}
	var walk func(blk *analysis.Block, start int) bool // true = leak reported
	walk = func(blk *analysis.Block, start int) bool {
		for i := start; i < len(blk.Nodes); i++ {
			switch classify(pass, blk.Nodes[i], objs) {
			case useRelease, useEscape:
				return false // this path is settled
			case useLeakRet:
				pass.Reportf(call.Pos(),
					"%s result is not released on every path: leaks at the exit on line %d "+
						"(release it, defer the release, or transfer ownership)",
					callName(call), pass.Fset.Position(blk.Nodes[i].Pos()).Line)
				return true
			}
		}
		if len(blk.Succs) == 0 {
			pass.Reportf(call.Pos(),
				"%s result is not released on every path: function can end on line %d still holding it",
				callName(call), pass.Fset.Position(endPos(blk, call).Pos()).Line)
			return true
		}
		for _, s := range blk.Succs {
			if visited[s] {
				continue
			}
			visited[s] = true
			if walk(s, 0) {
				return true
			}
		}
		return false
	}
	walk(b, idx+1)
}

// endPos picks a position representing a block's exit for the leak message.
func endPos(blk *analysis.Block, fallback ast.Node) ast.Node {
	if len(blk.Nodes) > 0 {
		return blk.Nodes[len(blk.Nodes)-1]
	}
	return fallback
}

// classify inspects one CFG node for the tracked objects.
func classify(pass *analysis.Pass, n ast.Node, objs map[types.Object]bool) useKind {
	// A return or panic that doesn't mention the value exits while holding it.
	exit := false
	switch s := n.(type) {
	case *ast.ReturnStmt:
		exit = true
	case *ast.ExprStmt:
		if c, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
				exit = true
			}
		}
	}

	k := scan(pass, n, objs, false)
	if k == useNone && exit {
		return useLeakRet
	}
	if k == useEscape && exit {
		return useEscape // e.g. `return v`: ownership moves to the caller
	}
	return k
}

// scan recursively classifies ident uses under n. inFuncLit marks that we
// are inside a closure: any mention there is a capture, i.e. an escape —
// except the defer'd-release closure, which the DeferStmt case handles.
func scan(pass *analysis.Pass, n ast.Node, objs map[types.Object]bool, inFuncLit bool) useKind {
	result := useNone
	upgrade := func(k useKind) {
		if k > result && result != useRelease { // release wins over escape
			result = k
		}
		if k == useRelease {
			result = useRelease
		}
	}

	switch s := n.(type) {
	case *ast.DeferStmt:
		if callReleases(pass, s.Call, objs) {
			return useRelease
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ...; pool.Put(v) }(): scan the closure body for a
			// release of the tracked value.
			found := useNone
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && callReleases(pass, c, objs) {
					found = useRelease
					return false
				}
				return true
			})
			if found == useRelease {
				return useRelease
			}
		}
		if mentions(pass, s.Call, objs) {
			return useEscape // deferred into unknown code: assume it takes over
		}
		return useNone
	case *ast.FuncLit:
		if mentions(pass, s, objs) {
			return useEscape // captured by a closure
		}
		return useNone
	case *ast.ReturnStmt:
		if mentions(pass, s, objs) {
			return useEscape
		}
		return useNone
	case *ast.CallExpr:
		if callReleases(pass, s, objs) {
			return useRelease
		}
		if id, ok := s.Fun.(*ast.Ident); ok {
			switch id.Name {
			case "len", "cap", "copy", "delete", "clear":
				// Reads through the value, not a transfer.
				for _, a := range s.Args {
					upgrade(scan(pass, a, objs, inFuncLit))
				}
				return result
			case "append":
				// append(v, ...): the base slice is a read; tracked values
				// appended INTO a slice escape into it.
				upgrade(scan(pass, s.Args[0], objs, inFuncLit))
				for _, a := range s.Args[1:] {
					if id, ok := a.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
						upgrade(useEscape)
					} else {
						upgrade(scan(pass, a, objs, inFuncLit))
					}
				}
				return result
			}
		}
		// Bare tracked ident as an argument of any other call: consult the
		// callee's summary. A putter released (handled above); a callee whose
		// summary proves the parameter neither escapes nor is pooled merely
		// borrows it — the obligation stays here and tracking continues. An
		// unknown or retaining callee takes ownership, as before.
		merged := pass.Module.MergedCallSummary(pass.Package, s)
		for i, a := range s.Args {
			if id, ok := a.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
				if merged != nil && i < len(merged.RetainsParam) && !merged.RetainsParam[i] {
					upgrade(useRead) // summarized borrow
				} else {
					upgrade(useEscape)
				}
			}
		}
		// Keep scanning nested expressions (args may contain closures, etc).
		for _, a := range s.Args {
			if _, ok := a.(*ast.Ident); ok {
				continue
			}
			upgrade(scan(pass, a, objs, inFuncLit))
		}
		upgrade(scan(pass, s.Fun, objs, inFuncLit))
		return result
	case *ast.AssignStmt:
		// Tracked ident used as an RHS value (not inside a call we already
		// classified): aliasing, treat as escape. LHS mentions are either
		// harmless writes through v (v.f = x, v[i] = x) or a rebind of v,
		// which drops the held value — also conservatively an escape rather
		// than a second kind of leak report.
		for _, rhs := range s.Rhs {
			if id, ok := rhs.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
				upgrade(useEscape)
			} else {
				upgrade(scan(pass, rhs, objs, inFuncLit))
			}
		}
		for _, lhs := range s.Lhs {
			upgrade(scan(pass, lhs, objs, inFuncLit))
		}
		return result
	case *ast.CompositeLit:
		if mentions(pass, s, objs) {
			return useEscape
		}
		return useNone
	case *ast.SendStmt, *ast.GoStmt:
		if mentions(pass, s, objs) {
			return useEscape
		}
		return useNone
	case *ast.UnaryExpr:
		if s.Op.String() == "&" {
			if id, ok := s.X.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
				return useEscape // address taken
			}
		}
	case *ast.Ident:
		if objs[pass.TypesInfo.Uses[s]] {
			if inFuncLit {
				return useEscape
			}
			return useRead
		}
		return useNone
	}

	// Generic node: recurse over children.
	done := false
	ast.Inspect(n, func(m ast.Node) bool {
		if done || m == nil || m == n {
			return !done
		}
		switch m.(type) {
		case *ast.DeferStmt, *ast.FuncLit, *ast.ReturnStmt, *ast.CallExpr,
			*ast.AssignStmt, *ast.CompositeLit, *ast.SendStmt, *ast.GoStmt,
			*ast.UnaryExpr, *ast.Ident:
			k := scan(pass, m, objs, inFuncLit)
			upgrade(k)
			if result == useRelease {
				done = true
			}
			return false // scan already recursed
		}
		return true
	})
	return result
}

// mentions reports whether any tracked ident occurs under n.
func mentions(pass *analysis.Pass, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}
