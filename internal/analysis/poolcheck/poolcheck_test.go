package poolcheck_test

import (
	"testing"

	"neurospatial/internal/analysis/antest"
	"neurospatial/internal/analysis/poolcheck"
)

func TestPoolcheckFixtures(t *testing.T) {
	antest.Run(t, "testdata/pool", poolcheck.Analyzer)
}
