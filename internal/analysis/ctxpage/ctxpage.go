// Package ctxpage enforces cancellation at page-read granularity: any loop
// that calls a ReadPage method (the PageSource shape) must check the context
// somewhere on the loop path — ctx.Err(), the repo's ctxErr/cancelable
// helpers, or a ctx.Done() receive. Without the check a canceled query keeps
// scanning pages until the traversal finishes on its own, which is exactly
// the latency cliff the engine's cancellation contract rules out.
//
// Each ReadPage call is charged to its innermost enclosing loop in the same
// function literal or declaration; the check may appear anywhere inside that
// loop (an inner scan loop with the check satisfies an outer driver loop
// only for the iterations the inner loop runs — so the innermost loop that
// actually issues reads is the one that must check).
package ctxpage

import (
	"go/ast"
	"go/types"

	"neurospatial/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "ctxpage",
	Doc:  "loops calling ReadPage-shaped methods must check ctx.Err()/ctxErr/cancelable/ctx.Done() on the loop path",
	Run:  run,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			switch d := decl.(type) {
			case *ast.FuncDecl:
				if d.Body != nil {
					checkFunc(pass, d.Body)
				}
			case *ast.GenDecl:
				// Closures in package-level declarations — pool New hooks,
				// pre-bound visitors — read pages too.
				ast.Inspect(d, func(n ast.Node) bool {
					if lit, ok := n.(*ast.FuncLit); ok {
						checkFunc(pass, lit.Body)
						return false
					}
					return true
				})
			}
		}
	}
	return nil
}

// checkFunc walks one function, attributing ReadPage calls to their
// innermost enclosing loop. Function literals reset the loop stack — a
// closure's body runs when the closure is called, not once per iteration of
// the loop that built it — and are then checked as functions of their own.
func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	flagged := map[ast.Node]bool{}
	var walk func(n ast.Node, loops []ast.Node)
	walk = func(n ast.Node, loops []ast.Node) {
		switch n := n.(type) {
		case *ast.RangeStmt:
			// The range expression is evaluated once, before iteration: a
			// read there belongs to the enclosing loop, not this one.
			walk(n.X, loops)
			inner := append(loops[:len(loops):len(loops)], ast.Node(n))
			walk(n.Body, inner)
			return
		case *ast.ForStmt:
			if n.Init != nil {
				walk(n.Init, loops) // runs once
			}
			inner := append(loops[:len(loops):len(loops)], ast.Node(n))
			if n.Cond != nil {
				walk(n.Cond, inner)
			}
			if n.Post != nil {
				walk(n.Post, inner)
			}
			walk(n.Body, inner)
			return
		case *ast.FuncLit:
			walk(n.Body, nil)
			return
		case *ast.CallExpr:
			if isReadPage(pass, n) && len(loops) > 0 {
				loop := loops[len(loops)-1]
				if !flagged[loop] && !loopChecksCtx(pass, loop) {
					flagged[loop] = true
					pass.Reportf(loop.Pos(),
						"loop calls ReadPage without a context check on the loop path "+
							"(add ctx.Err()/ctxErr or select on ctx.Done())")
				}
			}
		}
		// Recurse over children, preserving the loop stack.
		children(n, func(c ast.Node) { walk(c, loops) })
	}
	walk(body, nil)
}

// children invokes fn for each direct child node of n.
func children(n ast.Node, fn func(ast.Node)) {
	first := true
	ast.Inspect(n, func(m ast.Node) bool {
		if first {
			first = false
			return true
		}
		if m == nil {
			return false
		}
		fn(m)
		return false
	})
}

// isReadPage matches method calls named ReadPage.
func isReadPage(pass *analysis.Pass, call *ast.CallExpr) bool {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "ReadPage" {
		return false
	}
	_, ok = pass.TypesInfo.Uses[sel.Sel].(*types.Func)
	return ok
}

// loopChecksCtx reports whether any context check appears inside the loop,
// at any depth: the check governs the loop path even when hoisted into a
// helper condition or an inner loop that dominates the reads. A call whose
// callee checks the context — per its interprocedural summary, including
// interface calls resolved through the call graph (a ctx-wrapping
// PageSource's ReadPage that polls ctx.Err itself) — counts too.
func loopChecksCtx(pass *analysis.Pass, loop ast.Node) bool {
	found := false
	ast.Inspect(loop, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.CallExpr:
			switch fun := n.Fun.(type) {
			case *ast.Ident:
				if fun.Name == "ctxErr" || fun.Name == "cancelable" {
					found = true
				}
			case *ast.SelectorExpr:
				if fun.Sel.Name == "Err" || fun.Sel.Name == "Done" {
					if tv, ok := pass.TypesInfo.Types[fun.X]; ok && isContext(tv.Type) {
						found = true
					}
				}
			}
			if !found {
				if merged := pass.Module.MergedCallSummary(pass.Package, n); merged != nil && merged.ChecksCtx {
					found = true
				}
			}
		}
		return !found
	})
	return found
}

func isContext(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "context" && obj.Name() == "Context"
}
