// Fixture for ctxpage: loops issuing page reads must carry a context check.
package ctxfix

import "context"

type PageID int32

type source struct{ pages [][]int32 }

func (s *source) ReadPage(id PageID) []int32 { return s.pages[id] }

// ctxErr mirrors the engine's helper shape.
func ctxErr(ctx context.Context) error { return ctx.Err() }

// --- non-flagging cases ---

// checkedLoop checks ctx.Err() on every iteration.
func checkedLoop(ctx context.Context, s *source, ids []PageID) int {
	total := 0
	for _, id := range ids {
		if ctx.Err() != nil {
			return total
		}
		total += len(s.ReadPage(id))
	}
	return total
}

// helperChecked goes through the ctxErr helper.
func helperChecked(ctx context.Context, s *source, ids []PageID) int {
	total := 0
	for _, id := range ids {
		if err := ctxErr(ctx); err != nil {
			return total
		}
		total += len(s.ReadPage(id))
	}
	return total
}

// doneLoop selects on ctx.Done().
func doneLoop(ctx context.Context, s *source, ids []PageID) int {
	total := 0
	for _, id := range ids {
		select {
		case <-ctx.Done():
			return total
		default:
		}
		total += len(s.ReadPage(id))
	}
	return total
}

// nestedChecked: the reads happen in the inner loop, which checks; the
// outer loop issues no reads of its own.
func nestedChecked(ctx context.Context, s *source, groups [][]PageID) int {
	total := 0
	for _, ids := range groups {
		for _, id := range ids {
			if ctx.Err() != nil {
				return total
			}
			total += len(s.ReadPage(id))
		}
	}
	return total
}

// rangeExprRead reads in the inner range *expression*, which runs once per
// outer iteration — so the outer loop's check is the one that counts.
func rangeExprRead(ctx context.Context, s *source, ids []PageID) int {
	total := 0
	for _, id := range ids {
		if ctx.Err() != nil {
			return total
		}
		for range s.ReadPage(id) {
			total++
		}
	}
	return total
}

// pageSource is the interface shape the engine reads through.
type pageSource interface {
	ReadPage(id PageID) []int32
}

// ctxSource wraps a source and polls the context on every read — the
// engine's cancellation wrapper.
type ctxSource struct {
	ctx   context.Context
	inner *source
}

func (c *ctxSource) ReadPage(id PageID) []int32 {
	if c.ctx.Err() != nil {
		return nil
	}
	return c.inner.ReadPage(id)
}

// summaryChecked has no syntactic check in the loop, but the interface
// call resolves (via the call graph) to implementations including
// ctxSource.ReadPage, whose summary checks the context.
func summaryChecked(src pageSource, ids []PageID) int {
	total := 0
	for _, id := range ids {
		total += len(src.ReadPage(id))
	}
	return total
}

// noReads iterates without touching pages: nothing to enforce.
func noReads(ids []PageID) int {
	total := 0
	for _, id := range ids {
		total += int(id)
	}
	return total
}

// pooledClosure documents a deliberate unchecked loop: cancellation is
// enforced by a panicking source wrapper installed upstream.
func pooledClosure(s *source, ids []PageID) func() int {
	//lint:ignore ctxpage cancellation is enforced by the ctxSource wrapper installed upstream
	return func() int {
		total := 0
		for _, id := range ids {
			total += len(s.ReadPage(id))
		}
		return total
	}
}

// --- flagging cases ---

// drainAll: closures in package-level declarations are checked too.
var drainAll = func(s *source, ids []PageID) int {
	total := 0
	for _, id := range ids { // want `without a context check`
		total += len(s.ReadPage(id))
	}
	return total
}

// uncheckedLoop scans pages with no cancellation point.
func uncheckedLoop(s *source, ids []PageID) int {
	total := 0
	for _, id := range ids { // want `without a context check`
		total += len(s.ReadPage(id))
	}
	return total
}

// closureLoop: a loop inside a function literal is charged to that literal.
func closureLoop(s *source, ids []PageID) func() int {
	return func() int {
		total := 0
		for _, id := range ids { // want `without a context check`
			total += len(s.ReadPage(id))
		}
		return total
	}
}
