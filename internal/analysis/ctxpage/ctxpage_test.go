package ctxpage_test

import (
	"testing"

	"neurospatial/internal/analysis/antest"
	"neurospatial/internal/analysis/ctxpage"
)

func TestCtxpageFixtures(t *testing.T) {
	antest.Run(t, "testdata/ctx", ctxpage.Analyzer)
}
