// Fixture for snapref: snapshot/session pin acquire/release discipline.
package snapfix

import "errors"

type Snapshot struct{ refs int }

func (s *Snapshot) Release() { s.refs-- }

type Dataset struct{ cur *Snapshot }

// Acquire pins the current snapshot: one result, method named Acquire —
// the analyzer's primary intrinsic.
func (d *Dataset) Acquire() *Snapshot {
	d.cur.refs++
	return d.cur
}

// pin acquires through a helper; its summary carries Acquires, so calls to
// pin are themselves acquire sites.
func pin(d *Dataset) *Snapshot { return d.Acquire() }

// pinChecked is the multi-value form: callers get err-branch sensitivity.
func pinChecked(d *Dataset) (*Snapshot, error) {
	if d.cur == nil {
		return nil, errors.New("dataset closed")
	}
	return d.Acquire(), nil
}

// drop releases its parameter: callers settle obligations through its
// summary's ReleasesParam.
func drop(s *Snapshot) { s.Release() }

// Session mirrors engine.Open: the constructor pins into a body-local's
// field and transfers by returning it, so Open's summary says Acquires and
// the caller inherits the close obligation.
type Session struct{ snap *Snapshot }

func (s *Session) Close() {
	if s.snap != nil {
		s.snap.Release()
	}
}

type Option struct{ d *Dataset }

func WithDataset(d *Dataset) Option { return Option{d} }

func Open(opts ...Option) *Session {
	s := &Session{}
	for _, o := range opts {
		s.snap = o.d.Acquire()
	}
	return s
}

func mayPanic() {}

// --- non-flagging cases ---

// deferRelease is the canonical pattern: defer right after the acquire.
func deferRelease(d *Dataset) int {
	s := d.Acquire()
	defer s.Release()
	return s.refs
}

// straightRelease releases without defer on the only path.
func straightRelease(d *Dataset) int {
	s := d.Acquire()
	n := s.refs
	s.Release()
	return n
}

// helperRelease settles through drop's ReleasesParam summary.
func helperRelease(d *Dataset) {
	s := pin(d)
	drop(s)
}

// sessionClose settles an engine.Open-style acquire with Close.
func sessionClose(d *Dataset) {
	sess := Open(WithDataset(d))
	defer sess.Close()
	_ = sess.snap
}

// errBranch returns through the err != nil branch without releasing: the
// acquire failed there, so nothing is held.
func errBranch(d *Dataset) error {
	s, err := pinChecked(d)
	if err != nil {
		return err
	}
	defer s.Release()
	return nil
}

// errBranchEq is the inverted condition: the else branch is the failure.
func errBranchEq(d *Dataset) error {
	s, err := pinChecked(d)
	if err == nil {
		defer s.Release()
		return nil
	}
	return err
}

// transferByReturn hands the pin to the caller.
func transferByReturn(d *Dataset) *Snapshot {
	s := d.Acquire()
	return s
}

// transferToField stores the pin into a caller-owned struct.
func transferToField(w *Session, d *Dataset) {
	w.snap = d.Acquire()
}

// methodValue transfers ownership as a bound release func.
func methodValue(d *Dataset) func() {
	s := d.Acquire()
	return s.Release
}

// loopDefer acquires per iteration; each defer still covers every later
// exit of the function, so nothing leaks.
func loopDefer(ds []*Dataset) {
	for _, d := range ds {
		s := d.Acquire()
		defer s.Release()
	}
}

// recoverGuard releases inside a deferred closure that also recovers, so
// panic exits are covered too.
func recoverGuard(d *Dataset) (err error) {
	s := d.Acquire()
	defer func() {
		if r := recover(); r != nil {
			err = errors.New("recovered")
		}
		s.Release()
	}()
	mayPanic()
	return nil
}

// leakIgnored documents a deliberate hold; the escape hatch names the reason.
func leakIgnored(d *Dataset, bad bool) error {
	//lint:ignore snapref pin intentionally held for process lifetime
	s := d.Acquire()
	if bad {
		return errors.New("bad")
	}
	s.Release()
	return nil
}

// --- flagging cases ---

// leakOnError releases on the happy path only.
func leakOnError(d *Dataset, bad bool) error {
	s := d.Acquire() // want `not released on every path`
	if bad {
		return errors.New("bad")
	}
	s.Release()
	return nil
}

// helperLeak leaks a pin acquired through the pin helper's summary.
func helperLeak(d *Dataset, bad bool) error {
	s := pin(d) // want `not released on every path`
	if bad {
		return errors.New("bad")
	}
	drop(s)
	return nil
}

// sessionLeak leaks an engine.Open-style session in one branch.
func sessionLeak(d *Dataset, bad bool) error {
	sess := Open(WithDataset(d)) // want `not released on every path`
	if bad {
		return errors.New("bad")
	}
	sess.Close()
	return nil
}

// discarded never binds the pin at all.
func discarded(d *Dataset) {
	d.Acquire() // want `discarded`
}

// panicLeak exits through panic while holding the pin.
func panicLeak(d *Dataset, bad bool) {
	s := d.Acquire() // want `not released on every path`
	if bad {
		panic("bad input")
	}
	s.Release()
}

// errReassigned loses err-branch immunity once err is rebound to a later
// operation: the err != nil return now exits while holding the pin.
func errReassigned(d *Dataset) error {
	s, err := pinChecked(d) // want `not released on every path`
	err = otherOp()
	if err != nil {
		return err
	}
	s.Release()
	return nil
}

func otherOp() error { return nil }

// fallOff reaches the end of the function still holding the pin.
func fallOff(d *Dataset) {
	s := d.Acquire() // want `not released on every path`
	_ = s.refs
}
