// Package snapref verifies the snapshot/session refcount discipline: every
// acquired pin — Dataset.Acquire / Snapshot.Acquire, engine.Open (whose
// Session pins its dataset's current snapshot), or any function whose
// summary says it returns an acquired handle — must reach a matching
// Release/Close on every exit path of the acquiring function, or transfer
// ownership (return it, store it into a longer-lived structure, hand it to
// a callee that retains it).
//
// The check is flow-sensitive over the intra-procedural CFG and
// interprocedural through module summaries: a helper that calls
// Session.Close on its parameter settles the obligation at the call site,
// and a method like Model.Close that closes a receiver field counts as a
// release of the receiver. Release facts are MAY-release — a disposer
// whose internal fast path skips the refcount still settles the caller.
//
// Error-return paths are err-branch-sensitive: after `v, err := open()`,
// the `err != nil` branch holds nothing (the acquire failed), so returning
// from it without a release is not a leak — until err is reassigned by a
// later call, after which the branch no longer cancels the obligation.
package snapref

import (
	"go/ast"
	"go/types"

	"neurospatial/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "snapref",
	Doc: "acquired snapshot/session pins (Dataset.Acquire, engine.Open, Acquires-summary callees) " +
		"must be released on every exit path; release with Release/Close, defer it, or transfer ownership",
	Run: run,
	// Tests deliberately exercise error-mode Opens and lean on t.Fatal exits;
	// the pin contract binds production code.
	ExemptTests: true,
}

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

// acquire is one tracked acquisition: the call, the holder objects (the
// bound variable, or the root local of a field store like s.snap = ...),
// and the error variable bound alongside it, if any.
type acquire struct {
	call    *ast.CallExpr
	holders map[types.Object]bool
	errObj  types.Object
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := analysis.BuildCFG(body)
	if g.Unsupported {
		return // goto or unresolved branch: don't guess
	}
	mod, pkg := pass.Module, pass.Package
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			acq := acquireIn(pass, body, n)
			if acq == nil {
				continue
			}
			if len(acq.holders) == 0 {
				pass.Reportf(acq.call.Pos(),
					"result of %s is discarded; the acquired pin leaks", analysis.CalleeName(acq.call))
				continue
			}
			track(pass, mod, pkg, g, b, i, acq)
		}
	}
}

// acquireIn recognizes `v := acquire()`, `s.f = acquire()` (s local), and
// bare `acquire()` statements. Multi-value forms bind the error object for
// branch-sensitive error paths. An acquire nested deeper in an expression
// (composite literal, call argument) transfers ownership at birth; a direct
// `return acquire()` transfers to the caller — both skipped.
func acquireIn(pass *analysis.Pass, body *ast.BlockStmt, n ast.Node) *acquire {
	switch s := n.(type) {
	case *ast.AssignStmt:
		if len(s.Rhs) != 1 {
			return nil
		}
		call, ok := ast.Unparen(s.Rhs[0]).(*ast.CallExpr)
		if !ok || !pass.Module.IsAcquire(pass.Package, call) {
			return nil
		}
		acq := &acquire{call: call, holders: map[types.Object]bool{}}
		for i, lhs := range s.Lhs {
			switch l := ast.Unparen(lhs).(type) {
			case *ast.Ident:
				if l.Name == "_" {
					continue
				}
				obj := objOf(pass, l)
				if obj == nil {
					continue
				}
				if i > 0 && isErrorObj(obj) {
					acq.errObj = obj
					continue
				}
				acq.holders[obj] = true
			case *ast.SelectorExpr:
				// s.snap = acquire() where s is a body-local: track the root —
				// its Release/Close/return is the handle's release/transfer.
				// A root declared outside the body (receiver, parameter,
				// global) outlives the call, so the store is a transfer.
				root := analysis.RootIdentObj(pass.Package, l)
				if root != nil && isBodyLocal(root, body) {
					acq.holders[root] = true
				} else {
					return nil // stored beyond the function: transferred
				}
			default:
				return nil // stored into an element: transferred
			}
		}
		return acq
	case *ast.ExprStmt:
		call, ok := ast.Unparen(s.X).(*ast.CallExpr)
		if !ok || !pass.Module.IsAcquire(pass.Package, call) {
			return nil
		}
		return &acquire{call: call, holders: map[types.Object]bool{}}
	}
	return nil
}

func objOf(pass *analysis.Pass, id *ast.Ident) types.Object {
	if obj := pass.TypesInfo.Defs[id]; obj != nil {
		return obj
	}
	return pass.TypesInfo.Uses[id]
}

func isErrorObj(obj types.Object) bool {
	named, ok := obj.Type().(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// isBodyLocal reports whether obj is a variable declared inside body —
// receivers and parameters are declared in the signature and fail the
// position test.
func isBodyLocal(obj types.Object, body *ast.BlockStmt) bool {
	v, ok := obj.(*types.Var)
	if !ok || v.IsField() {
		return false
	}
	return body.Pos() <= v.Pos() && v.Pos() < body.End()
}

type useKind int

const (
	useNone useKind = iota
	useRead
	useRelease
	useEscape
	useLeakRet
)

// pathState walks one CFG path: whether the error bound at the acquire is
// still the acquire's own error (so an err != nil branch means the acquire
// failed and holds nothing).
type pathState struct {
	errValid bool
}

func track(pass *analysis.Pass, mod *analysis.Module, pkg *analysis.Package,
	g *analysis.CFG, b *analysis.Block, idx int, acq *acquire) {

	visited := map[*analysis.Block]bool{}
	var walk func(blk *analysis.Block, start int, st pathState) bool // true = leak reported
	walk = func(blk *analysis.Block, start int, st pathState) bool {
		skipSucc := -1
		for i := start; i < len(blk.Nodes); i++ {
			n := blk.Nodes[i]
			if acq.errObj != nil && st.errValid && reassignsErr(pass, n, acq) {
				st.errValid = false
			}
			switch classify(pass, mod, pkg, n, acq.holders) {
			case useRelease, useEscape:
				return false // settled on this path
			case useLeakRet:
				pass.Reportf(acq.call.Pos(),
					"%s pin is not released on every path: leaks at the exit on line %d "+
						"(release it, defer the release, or transfer ownership)",
					analysis.CalleeName(acq.call), pass.Fset.Position(n.Pos()).Line)
				return true
			}
			// An `err != nil` / `err == nil` condition closing the block
			// while the acquire's error is still live: the failure branch
			// holds nothing.
			if i == len(blk.Nodes)-1 && acq.errObj != nil && st.errValid {
				if neq, ok := errCond(pass, n, acq.errObj); ok {
					if neq {
						skipSucc = 0 // then-branch = failure
					} else if len(blk.Succs) > 1 {
						skipSucc = 1 // else-branch = failure
					}
				}
			}
		}
		if len(blk.Succs) == 0 {
			pass.Reportf(acq.call.Pos(),
				"%s pin is not released on every path: function can end on line %d still holding it",
				analysis.CalleeName(acq.call), pass.Fset.Position(endPos(blk, acq.call).Pos()).Line)
			return true
		}
		for si, s := range blk.Succs {
			if si == skipSucc || visited[s] {
				continue
			}
			visited[s] = true
			if walk(s, 0, st) {
				return true
			}
		}
		return false
	}
	walk(b, idx+1, pathState{errValid: acq.errObj != nil})
}

// errCond matches `err != nil` / `err == nil` over the tracked error object.
func errCond(pass *analysis.Pass, n ast.Node, errObj types.Object) (neq, ok bool) {
	be, isBin := n.(*ast.BinaryExpr)
	if !isBin {
		return false, false
	}
	op := be.Op.String()
	if op != "!=" && op != "==" {
		return false, false
	}
	isErr := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && pass.TypesInfo.Uses[id] == errObj
	}
	isNil := func(e ast.Expr) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		return ok && id.Name == "nil"
	}
	if (isErr(be.X) && isNil(be.Y)) || (isErr(be.Y) && isNil(be.X)) {
		return op == "!=", true
	}
	return false, false
}

// reassignsErr reports whether n assigns a new value to the acquire's error
// variable (making later err-branches about a different operation).
func reassignsErr(pass *analysis.Pass, n ast.Node, acq *acquire) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if id, ok := ast.Unparen(lhs).(*ast.Ident); ok {
			if pass.TypesInfo.Uses[id] == acq.errObj || pass.TypesInfo.Defs[id] == acq.errObj {
				return true
			}
		}
	}
	return false
}

func endPos(blk *analysis.Block, fallback ast.Node) ast.Node {
	if len(blk.Nodes) > 0 {
		return blk.Nodes[len(blk.Nodes)-1]
	}
	return fallback
}

// classify inspects one CFG node with respect to the tracked holders.
func classify(pass *analysis.Pass, mod *analysis.Module, pkg *analysis.Package,
	n ast.Node, objs map[types.Object]bool) useKind {

	exit := false
	switch s := n.(type) {
	case *ast.ReturnStmt:
		exit = true
	case *ast.ExprStmt:
		if c, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
				exit = true
			}
		}
	}
	k := scan(pass, mod, pkg, n, objs, false)
	if k == useNone && exit {
		return useLeakRet
	}
	if k == useEscape && exit {
		return useEscape // `return v`: ownership moves to the caller
	}
	return k
}

// isReleaseCall reports whether call settles a tracked holder: a
// Release/Close (or ReleasesRecv-summary method) on a selector path rooted
// at the holder, or the holder passed to a parameter the callee releases.
func isReleaseCall(pass *analysis.Pass, mod *analysis.Module, pkg *analysis.Package,
	call *ast.CallExpr, objs map[types.Object]bool) bool {

	merged := mod.MergedCallSummary(pkg, call)
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		root := analysis.RootIdentObj(pkg, sel.X)
		if root != nil && objs[root] {
			if sel.Sel.Name == "Release" || sel.Sel.Name == "Close" {
				return true
			}
			if merged != nil && merged.ReleasesRecv {
				return true
			}
		}
	}
	if merged != nil {
		for i, arg := range call.Args {
			if id, ok := ast.Unparen(arg).(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
				if i < len(merged.ReleasesParam) && merged.ReleasesParam[i] {
					return true
				}
			}
		}
	}
	return false
}

// scan recursively classifies holder uses under n — poolcheck's walk adapted
// to summary-aware call classification: a call that releases settles, one
// that retains (or is unknown) transfers, and one that merely borrows lets
// tracking continue.
func scan(pass *analysis.Pass, mod *analysis.Module, pkg *analysis.Package,
	n ast.Node, objs map[types.Object]bool, inFuncLit bool) useKind {

	result := useNone
	upgrade := func(k useKind) {
		if k == useRelease {
			result = useRelease
			return
		}
		if k > result && result != useRelease {
			result = k
		}
	}

	switch s := n.(type) {
	case *ast.DeferStmt:
		if isReleaseCall(pass, mod, pkg, s.Call, objs) {
			return useRelease
		}
		if lit, ok := s.Call.Fun.(*ast.FuncLit); ok {
			// defer func() { ...; v.Close() }(): covers every later exit,
			// including panic-recover paths.
			found := useNone
			ast.Inspect(lit.Body, func(m ast.Node) bool {
				if c, ok := m.(*ast.CallExpr); ok && isReleaseCall(pass, mod, pkg, c, objs) {
					found = useRelease
					return false
				}
				return true
			})
			if found == useRelease {
				return useRelease
			}
		}
		if mentions(pass, s.Call, objs) {
			return useEscape // deferred into unknown code: assume it takes over
		}
		return useNone
	case *ast.FuncLit:
		if mentions(pass, s, objs) {
			return useEscape // captured by a closure
		}
		return useNone
	case *ast.ReturnStmt:
		if mentions(pass, s, objs) {
			return useEscape
		}
		return useNone
	case *ast.CallExpr:
		if isReleaseCall(pass, mod, pkg, s, objs) {
			return useRelease
		}
		merged := mod.MergedCallSummary(pkg, s)
		// Method call on the holder (v.DoBatch(...)) that neither releases
		// nor is known to retain: a borrow — the obligation continues.
		for i, a := range s.Args {
			id, ok := ast.Unparen(a).(*ast.Ident)
			if !ok || !objs[pass.TypesInfo.Uses[id]] {
				continue
			}
			if merged == nil {
				upgrade(useEscape) // unknown callee: assume transfer
			} else if i < len(merged.RetainsParam) && merged.RetainsParam[i] {
				upgrade(useEscape)
			} else {
				upgrade(useRead) // borrowed for the call's duration
			}
		}
		for _, a := range s.Args {
			if _, ok := ast.Unparen(a).(*ast.Ident); ok {
				continue
			}
			upgrade(scan(pass, mod, pkg, a, objs, inFuncLit))
		}
		upgrade(scan(pass, mod, pkg, s.Fun, objs, inFuncLit))
		return result
	case *ast.AssignStmt:
		for _, rhs := range s.Rhs {
			if e := ast.Unparen(rhs); isHolderMethodValue(pass, e, objs) {
				// v2 := v.Close (a method value): aliases a release path —
				// treat as transfer. Plain field reads stay reads.
				upgrade(useEscape)
				continue
			}
			if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
				upgrade(useEscape)
			} else {
				upgrade(scan(pass, mod, pkg, rhs, objs, inFuncLit))
			}
		}
		for _, lhs := range s.Lhs {
			upgrade(scan(pass, mod, pkg, lhs, objs, inFuncLit))
		}
		return result
	case *ast.CompositeLit:
		if mentions(pass, s, objs) {
			return useEscape
		}
		return useNone
	case *ast.SendStmt, *ast.GoStmt:
		if mentions(pass, s, objs) {
			return useEscape
		}
		return useNone
	case *ast.UnaryExpr:
		if s.Op.String() == "&" {
			if id, ok := ast.Unparen(s.X).(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
				return useEscape
			}
		}
	case *ast.Ident:
		if objs[pass.TypesInfo.Uses[s]] {
			if inFuncLit {
				return useEscape
			}
			return useRead
		}
		return useNone
	}

	done := false
	ast.Inspect(n, func(m ast.Node) bool {
		if done || m == nil || m == n {
			return !done
		}
		switch m.(type) {
		case *ast.DeferStmt, *ast.FuncLit, *ast.ReturnStmt, *ast.CallExpr,
			*ast.AssignStmt, *ast.CompositeLit, *ast.SendStmt, *ast.GoStmt,
			*ast.UnaryExpr, *ast.Ident:
			k := scan(pass, mod, pkg, m, objs, inFuncLit)
			upgrade(k)
			if result == useRelease {
				done = true
			}
			return false
		}
		return true
	})
	return result
}

// isHolderMethodValue matches a method value bound to a tracked holder
// (v.Close used as a func, not called) — binding one aliases the release
// path, so the obligation transfers with it.
func isHolderMethodValue(pass *analysis.Pass, e ast.Expr, objs map[types.Object]bool) bool {
	sel, ok := e.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	if s, ok := pass.TypesInfo.Selections[sel]; !ok || s.Kind() != types.MethodVal {
		return false
	}
	root := analysis.RootIdentObj(pass.Package, sel.X)
	if root == nil {
		if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
			root = pass.TypesInfo.Uses[id]
		}
	}
	return root != nil && objs[root]
}

// mentions reports whether any tracked ident occurs under n.
func mentions(pass *analysis.Pass, n ast.Node, objs map[types.Object]bool) bool {
	found := false
	ast.Inspect(n, func(m ast.Node) bool {
		if id, ok := m.(*ast.Ident); ok && objs[pass.TypesInfo.Uses[id]] {
			found = true
		}
		return !found
	})
	return found
}
