package snapref_test

import (
	"testing"

	"neurospatial/internal/analysis/antest"
	"neurospatial/internal/analysis/snapref"
)

func TestSnaprefFixtures(t *testing.T) {
	antest.Run(t, "testdata/snap", snapref.Analyzer)
}
