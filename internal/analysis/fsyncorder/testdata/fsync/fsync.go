// Fixture for fsyncorder: WAL-before-publish, atomic rename installs, and
// synced file writes.
package fsyncfix

import (
	"fmt"
	"os"
)

type snapshot struct{ epoch uint64 }

type WAL struct{ f *os.File }

// Append logs one record and fsyncs it; call sites carry the WAL-append
// effect.
func (w *WAL) Append(rec []byte) error {
	if _, err := w.f.Write(rec); err != nil {
		return err
	}
	return w.f.Sync()
}

type Dataset struct {
	wal *WAL
	cur *snapshot
}

// syncDir fsyncs a directory handle; its summary carries the dir-fsync
// effect for callers.
func syncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// syncAll wraps File.Sync; its summary carries the fsync effect.
func syncAll(f *os.File) error { return f.Sync() }

// --- non-flagging cases ---

// goodCommit appends (when durable) before publishing the epoch.
func (d *Dataset) goodCommit(rec []byte, snap *snapshot) error {
	if d.wal != nil {
		if err := d.wal.Append(rec); err != nil {
			return err
		}
	}
	d.cur = snap
	return nil
}

// memCommit publishes without any WAL: the in-memory configuration.
func (d *Dataset) memCommit(snap *snapshot) {
	d.cur = snap
}

// goodManifest is the full atomic-install protocol.
func goodManifest(dir string, data []byte) error {
	tmp := dir + "/manifest.tmp"
	f, err := os.OpenFile(tmp, os.O_WRONLY|os.O_CREATE|os.O_TRUNC, 0o644)
	if err != nil {
		return fmt.Errorf("create: %w", err)
	}
	if _, err := f.Write(data); err != nil {
		f.Close()
		return fmt.Errorf("write: %w", err)
	}
	if err := f.Sync(); err != nil {
		f.Close()
		return fmt.Errorf("sync: %w", err)
	}
	if err := f.Close(); err != nil {
		return fmt.Errorf("close: %w", err)
	}
	if err := os.Rename(tmp, dir+"/manifest"); err != nil {
		return fmt.Errorf("rename: %w", err)
	}
	return syncDir(dir)
}

// syncedWrite syncs before its success return.
func syncedWrite(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := f.Sync(); err != nil {
		return err
	}
	return nil
}

// helperSynced reaches the fsync through a wrapper's summary.
func helperSynced(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	if _, err := f.Write(data); err != nil {
		return err
	}
	if err := syncAll(f); err != nil {
		return err
	}
	return nil
}

// scratchSpill opts out explicitly: the file is a throwaway spill.
func scratchSpill(f *os.File, data []byte) error {
	//lint:ignore fsyncorder scratch spill file, durability not required
	f.Write(data)
	f.Close()
	return nil
}

// --- flagging cases ---

// badCommit publishes the epoch before the WAL record is durable.
func (d *Dataset) badCommit(rec []byte, snap *snapshot) error {
	d.cur = snap
	return d.wal.Append(rec) // want `WAL append after the epoch publish`
}

// renameNoFsync installs a file that was never synced.
func renameNoFsync(dir string, data []byte) error {
	tmp := dir + "/state.tmp"
	if err := os.WriteFile(tmp, data, 0o644); err != nil {
		return err
	}
	if err := os.Rename(tmp, dir+"/state"); err != nil { // want `without a preceding fsync`
		return err
	}
	return syncDir(dir)
}

// renameNoDirSync renames but returns success without the directory fsync.
func renameNoDirSync(dir string, data []byte) error {
	tmp := dir + "/state.tmp"
	f, err := os.Create(tmp)
	if err != nil {
		return err
	}
	f.Write(data)
	f.Sync()
	f.Close()
	if err := os.Rename(tmp, dir+"/state"); err != nil { // want `without a directory fsync`
		return err
	}
	return nil
}

// unsyncedWrite promises success while the bytes may still be in cache.
func unsyncedWrite(path string, data []byte) error {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Write(data) // want `without an fsync`
	f.Close()
	return nil
}
