// Package fsyncorder checks the durability ordering protocol:
//
//  1. WAL-before-publish: in any function that both appends to the WAL and
//     publishes an epoch (an assignment to a `.cur` snapshot field), the
//     append must come first on every path. Publishing an epoch whose WAL
//     record is not yet durable un-commits acknowledged batches on crash.
//  2. Atomic install: every os.Rename must be preceded by an fsync of the
//     freshly written file on all paths (tmp-write → fsync → rename), and
//     followed by a directory fsync before any success return — a rename
//     without the directory sync can vanish on power loss.
//  3. Synced writes: a function that writes an *os.File directly must pass
//     some fsync effect between the write and every success return.
//
// Effects are gathered per call site from direct intrinsics (os.Rename,
// File.Sync, File.Write, WAL.Append) plus callee summaries, so helpers like
// syncDir(dir) or a write-and-sync wrapper satisfy the protocol for their
// callers. Failure returns — `return err`, `return fmt.Errorf(...)` — are
// exempt: a writer that aborts with an error makes no durability promise.
package fsyncorder

import (
	"go/ast"
	"go/token"

	"neurospatial/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "fsyncorder",
	Doc: "durability ordering: WAL append before epoch publish, tmp-write→fsync→rename→dir-fsync " +
		"for atomic installs, and fsync between file writes and success returns",
	Run: run,
}

const anyFsync = analysis.EffFsync | analysis.EffDirFsync | analysis.EffWALAppend

func run(pass *analysis.Pass) error {
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					checkFunc(pass, fn.Body)
				}
			case *ast.FuncLit:
				checkFunc(pass, fn.Body)
			}
			return true
		})
	}
	return nil
}

func checkFunc(pass *analysis.Pass, body *ast.BlockStmt) {
	g := analysis.BuildCFG(body)
	if g.Unsupported {
		return
	}
	checkWALPublish(pass, body, g)
	for _, site := range callSites(pass, g, func(eff analysis.Effect) bool {
		return eff&analysis.EffRename != 0
	}) {
		checkFsyncBeforeRename(pass, g, site)
		checkDirFsyncAfter(pass, g, site,
			analysis.EffDirFsync,
			"os.Rename reaches a success return on line %d without a directory fsync; the rename may not survive power loss")
	}
	for _, site := range callSites(pass, g, func(eff analysis.Effect) bool {
		return eff&analysis.EffWrite != 0
	}) {
		checkDirFsyncAfter(pass, g, site, anyFsync,
			"file write reaches a success return on line %d without an fsync; the data may not be durable")
	}
}

// site pins one interesting call to its CFG position.
type site struct {
	call  *ast.CallExpr
	block *analysis.Block
	node  int // index in block.Nodes
}

// callSites finds every call in the CFG whose *direct* effects satisfy want.
// Only direct intrinsics define sites — a callee that renames internally is
// responsible for its own ordering and has already been checked.
func callSites(pass *analysis.Pass, g *analysis.CFG, want func(analysis.Effect) bool) []site {
	var out []site
	for _, b := range g.Blocks {
		for i, n := range b.Nodes {
			for _, call := range callsIn(n) {
				if want(analysis.DirectCallEffects(pass.Package, call, nil)) {
					out = append(out, site{call: call, block: b, node: i})
				}
			}
		}
	}
	return out
}

// callsIn lists the calls under one CFG node in source order, not descending
// into function literals (they are separate CFGs).
func callsIn(n ast.Node) []*ast.CallExpr {
	var out []*ast.CallExpr
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false
		}
		if c, ok := m.(*ast.CallExpr); ok {
			out = append(out, c)
		}
		return true
	})
	return out
}

// callEffects is the direct + summarized effect set of one call.
func callEffects(pass *analysis.Pass, call *ast.CallExpr) analysis.Effect {
	eff := analysis.DirectCallEffects(pass.Package, call, nil)
	if merged := pass.Module.MergedCallSummary(pass.Package, call); merged != nil {
		eff |= merged.Effects
	}
	return eff
}

// checkWALPublish enforces rule 1 inside one function: if the body both
// publishes (assigns a `.cur` field) and appends to the WAL, no append may
// execute after a publish on any path. In-memory datasets publish without
// any WAL call and are untouched.
func checkWALPublish(pass *analysis.Pass, body *ast.BlockStmt, g *analysis.CFG) {
	hasAppend, hasPublish := false, false
	for _, b := range g.Blocks {
		for _, n := range b.Nodes {
			if isPublish(n) {
				hasPublish = true
			}
			for _, c := range callsIn(n) {
				if callEffects(pass, c)&analysis.EffWALAppend != 0 {
					hasAppend = true
				}
			}
		}
	}
	if !hasAppend || !hasPublish {
		return
	}
	type key struct {
		b         *analysis.Block
		published bool
	}
	visited := map[key]bool{}
	reported := map[token.Pos]bool{}
	var walk func(b *analysis.Block, published bool)
	walk = func(b *analysis.Block, published bool) {
		if visited[key{b, published}] {
			return
		}
		visited[key{b, published}] = true
		for _, n := range b.Nodes {
			for _, c := range callsIn(n) {
				if published && callEffects(pass, c)&analysis.EffWALAppend != 0 && !reported[c.Pos()] {
					reported[c.Pos()] = true
					pass.Reportf(c.Pos(),
						"WAL append after the epoch publish: a crash here leaves a published epoch with no durable record — append (and sync) before assigning .cur")
				}
			}
			if isPublish(n) {
				published = true
			}
		}
		for _, s := range b.Succs {
			walk(s, published)
		}
	}
	walk(g.Entry, false)
}

// isPublish matches the repo's epoch-publish idiom: an assignment whose
// target is a `.cur` field (Dataset.cur holds the current snapshot).
func isPublish(n ast.Node) bool {
	as, ok := n.(*ast.AssignStmt)
	if !ok {
		return false
	}
	for _, lhs := range as.Lhs {
		if sel, ok := ast.Unparen(lhs).(*ast.SelectorExpr); ok && sel.Sel.Name == "cur" {
			return true
		}
	}
	return false
}

// checkFsyncBeforeRename enforces the tmp-write→fsync→rename prefix: every
// path from entry to the rename must pass a call with an fsync effect.
func checkFsyncBeforeRename(pass *analysis.Pass, g *analysis.CFG, s site) {
	type key struct {
		b      *analysis.Block
		synced bool
	}
	visited := map[key]bool{}
	reported := false
	var walk func(b *analysis.Block, synced bool)
	walk = func(b *analysis.Block, synced bool) {
		if reported || visited[key{b, synced}] {
			return
		}
		visited[key{b, synced}] = true
		for _, n := range b.Nodes {
			for _, c := range callsIn(n) {
				if c == s.call {
					if !synced {
						reported = true
						pass.Reportf(s.call.Pos(),
							"os.Rename without a preceding fsync of the written file: the install is not atomic — sync the temp file first")
					}
					return
				}
				if callEffects(pass, c)&(analysis.EffFsync|analysis.EffWALAppend) != 0 {
					synced = true
				}
			}
		}
		for _, sb := range b.Succs {
			walk(sb, synced)
		}
	}
	walk(g.Entry, false)
}

// checkDirFsyncAfter walks forward from the site: every success exit
// reachable from it must pass a call carrying one of the wanted effects.
func checkDirFsyncAfter(pass *analysis.Pass, g *analysis.CFG, s site, want analysis.Effect, format string) {
	type key struct {
		b      *analysis.Block
		synced bool
	}
	visited := map[key]bool{}
	reported := false
	report := func(at ast.Node) {
		if !reported {
			reported = true
			pass.Reportf(s.call.Pos(), format, pass.Fset.Position(at.Pos()).Line)
		}
	}
	var walk func(b *analysis.Block, start int, synced bool)
	walk = func(b *analysis.Block, start int, synced bool) {
		if reported {
			return
		}
		if start == 0 {
			if visited[key{b, synced}] {
				return
			}
			visited[key{b, synced}] = true
		}
		var last ast.Node
		for i := start; i < len(b.Nodes); i++ {
			n := b.Nodes[i]
			last = n
			for _, c := range callsIn(n) {
				if c == s.call {
					continue // the site itself (seen when start==s.node)
				}
				if callEffects(pass, c)&want != 0 {
					synced = true
				}
			}
			if ret, ok := n.(*ast.ReturnStmt); ok && !synced && isSuccessReturn(ret) {
				report(ret)
				return
			}
		}
		if len(b.Succs) == 0 {
			// Falling off the end of the body is a success exit unless the
			// block ended in an explicit return (handled above) or a panic.
			if !synced && !endsInPanicOrFailure(last) {
				if last == nil {
					last = s.call
				}
				report(last)
			}
			return
		}
		for _, sb := range b.Succs {
			walk(sb, 0, synced)
		}
	}
	walk(s.block, s.node, false)
}

// isSuccessReturn reports whether ret promises success: `return nil` in the
// error position, or a bare `return` from an error-less function. A return
// whose last result is an identifier or a call (an error variable, a
// fmt.Errorf, a helper whose own effects were already accumulated) makes no
// durability promise here.
func isSuccessReturn(ret *ast.ReturnStmt) bool {
	if len(ret.Results) == 0 {
		return true
	}
	last := ast.Unparen(ret.Results[len(ret.Results)-1])
	id, ok := last.(*ast.Ident)
	return ok && id.Name == "nil"
}

func endsInPanicOrFailure(last ast.Node) bool {
	switch s := last.(type) {
	case *ast.ReturnStmt:
		return true // explicit returns were classified in the node loop
	case *ast.ExprStmt:
		if c, ok := s.X.(*ast.CallExpr); ok {
			if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
				return true
			}
		}
	}
	return false
}
