package fsyncorder_test

import (
	"testing"

	"neurospatial/internal/analysis/antest"
	"neurospatial/internal/analysis/fsyncorder"
)

func TestFsyncorderFixtures(t *testing.T) {
	antest.Run(t, "testdata/fsync", fsyncorder.Analyzer)
}
