package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // GoFiles + in-package TestGoFiles, parsed with comments
	Types      *types.Package
	Info       *types.Info

	// XTest marks the external test package (pkg_test): it shares the
	// ImportPath of the package it tests so analyzer scoping applies
	// uniformly.
	XTest bool

	// usedIgnores records which //lint:ignore directives suppressed at
	// least one diagnostic, accumulated across analyzer runs — see Used.
	usedIgnores map[token.Pos]bool
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath   string
	Dir          string
	Name         string
	GoFiles      []string
	TestGoFiles  []string
	XTestGoFiles []string
}

// Load resolves patterns with `go list` and type-checks each package from
// source. It must run with the module root as working directory: the source
// importer resolves `neurospatial/...` imports through go/build's module
// support, which only engages inside the module tree.
//
// In-package test files are merged into their package so the analyzers see
// test code too (per-analyzer exemptions via Analyzer.ExemptTests replace
// the old global skip); external _test packages load as their own Package
// with XTest set, sharing the tested package's ImportPath for scoping.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles,TestGoFiles,XTestGoFiles", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if len(lp.GoFiles) > 0 {
			listed = append(listed, lp)
		}
	}

	fset := token.NewFileSet()
	// One importer instance across all packages: it caches dependency
	// type-checks, so the whole-repo run does each package's work once.
	imp := importer.ForCompiler(fset, "source", nil)

	check := func(path string, files []*ast.File) (*types.Package, *types.Info, error) {
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(path, fset, files, info)
		return tpkg, info, err
	}
	parse := func(dir string, names []string) ([]*ast.File, error) {
		var files []*ast.File
		for _, name := range names {
			f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", filepath.Join(dir, name), err)
			}
			files = append(files, f)
		}
		return files, nil
	}

	var pkgs []*Package
	for _, lp := range listed {
		files, err := parse(lp.Dir, append(append([]string{}, lp.GoFiles...), lp.TestGoFiles...))
		if err != nil {
			return nil, err
		}
		tpkg, info, err := check(lp.ImportPath, files)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
		if len(lp.XTestGoFiles) > 0 {
			xfiles, err := parse(lp.Dir, lp.XTestGoFiles)
			if err != nil {
				return nil, err
			}
			xpkg, xinfo, err := check(lp.ImportPath+"_test", xfiles)
			if err != nil {
				return nil, fmt.Errorf("type-checking %s external tests: %w", lp.ImportPath, err)
			}
			pkgs = append(pkgs, &Package{
				ImportPath: lp.ImportPath,
				Dir:        lp.Dir,
				Fset:       fset,
				Files:      xfiles,
				Types:      xpkg,
				Info:       xinfo,
				XTest:      true,
			})
		}
	}
	return pkgs, nil
}
