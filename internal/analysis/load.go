package analysis

import (
	"bytes"
	"encoding/json"
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os/exec"
	"path/filepath"
)

// Package is one loaded, type-checked package.
type Package struct {
	ImportPath string
	Dir        string
	Fset       *token.FileSet
	Files      []*ast.File // non-test GoFiles, parsed with comments
	Types      *types.Package
	Info       *types.Info
}

// listedPackage is the subset of `go list -json` output the loader needs.
type listedPackage struct {
	ImportPath string
	Dir        string
	Name       string
	GoFiles    []string
}

// Load resolves patterns with `go list` and type-checks each package from
// source. It must run with the module root as working directory: the source
// importer resolves `neurospatial/...` imports through go/build's module
// support, which only engages inside the module tree.
//
// Test files are intentionally excluded — `go list`'s GoFiles field omits
// them — which is also how nodeprecated exempts regression-test call sites.
func Load(patterns ...string) ([]*Package, error) {
	args := append([]string{"list", "-json=ImportPath,Dir,Name,GoFiles", "--"}, patterns...)
	cmd := exec.Command("go", args...)
	var stderr bytes.Buffer
	cmd.Stderr = &stderr
	out, err := cmd.Output()
	if err != nil {
		return nil, fmt.Errorf("go list %v: %v\n%s", patterns, err, stderr.Bytes())
	}

	var listed []listedPackage
	dec := json.NewDecoder(bytes.NewReader(out))
	for {
		var lp listedPackage
		if err := dec.Decode(&lp); err == io.EOF {
			break
		} else if err != nil {
			return nil, fmt.Errorf("decoding go list output: %w", err)
		}
		if len(lp.GoFiles) > 0 {
			listed = append(listed, lp)
		}
	}

	fset := token.NewFileSet()
	// One importer instance across all packages: it caches dependency
	// type-checks, so the whole-repo run does each package's work once.
	imp := importer.ForCompiler(fset, "source", nil)

	var pkgs []*Package
	for _, lp := range listed {
		var files []*ast.File
		for _, name := range lp.GoFiles {
			f, err := parser.ParseFile(fset, filepath.Join(lp.Dir, name), nil, parser.ParseComments)
			if err != nil {
				return nil, fmt.Errorf("parsing %s: %w", filepath.Join(lp.Dir, name), err)
			}
			files = append(files, f)
		}
		info := &types.Info{
			Types:      map[ast.Expr]types.TypeAndValue{},
			Defs:       map[*ast.Ident]types.Object{},
			Uses:       map[*ast.Ident]types.Object{},
			Selections: map[*ast.SelectorExpr]*types.Selection{},
			Implicits:  map[ast.Node]types.Object{},
		}
		conf := types.Config{Importer: imp}
		tpkg, err := conf.Check(lp.ImportPath, fset, files, info)
		if err != nil {
			return nil, fmt.Errorf("type-checking %s: %w", lp.ImportPath, err)
		}
		pkgs = append(pkgs, &Package{
			ImportPath: lp.ImportPath,
			Dir:        lp.Dir,
			Fset:       fset,
			Files:      files,
			Types:      tpkg,
			Info:       info,
		})
	}
	return pkgs, nil
}
