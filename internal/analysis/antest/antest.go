// Package antest runs analyzers over fixture packages, mimicking
// golang.org/x/tools/go/analysis/analysistest: fixture files mark expected
// findings with trailing comments of the form
//
//	x := pool.Get() // want `not released`
//
// where the backquoted (or double-quoted) text is a regexp that must match a
// diagnostic reported on that line. Lines with no want comment must produce
// no diagnostics. //lint:ignore directives are honored, so fixtures can (and
// do) exercise the suppression path as their non-flagging cases.
package antest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"neurospatial/internal/analysis"
)

// wantRx pulls every quoted regexp out of a "// want ..." comment.
var wantRx = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run applies a to the fixture package in dir and diffs its diagnostics
// against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(a, pkg)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.rx)
		}
	}
}

type want struct {
	file string
	line int
	rx   *regexp.Regexp
}

func collectWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, found := strings.CutPrefix(c.Text, "// want ")
				if !found {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRx.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// loadFixture parses and type-checks dir as a single package. Fixtures
// import only the standard library, so the source importer resolves them
// regardless of working directory.
func loadFixture(dir string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("fixture/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture: %w", err)
	}
	return &analysis.Package{
		ImportPath: tpkg.Path(),
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
