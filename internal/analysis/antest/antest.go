// Package antest runs analyzers over fixture packages, mimicking
// golang.org/x/tools/go/analysis/analysistest: fixture files mark expected
// findings with trailing comments of the form
//
//	x := pool.Get() // want `not released`
//
// where the backquoted (or double-quoted) text is a regexp that must match a
// diagnostic reported on that line. Lines with no want comment must produce
// no diagnostics. //lint:ignore directives are honored, so fixtures can (and
// do) exercise the suppression path as their non-flagging cases.
package antest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"regexp"
	"sort"
	"strings"
	"testing"

	"neurospatial/internal/analysis"
)

// wantRx pulls every quoted regexp out of a "// want ..." comment.
var wantRx = regexp.MustCompile("`([^`]*)`|\"([^\"]*)\"")

// Run applies a to the fixture package in dir and diffs its diagnostics
// against the fixture's want comments.
func Run(t *testing.T, dir string, a *analysis.Analyzer) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	diags, err := analysis.Run(a, pkg, nil)
	if err != nil {
		t.Fatalf("running %s on %s: %v", a.Name, dir, err)
	}

	wants := collectWants(t, pkg)
	matched := make([]bool, len(wants))
	for _, d := range diags {
		pos := pkg.Fset.Position(d.Pos)
		ok := false
		for i, w := range wants {
			if !matched[i] && w.file == pos.Filename && w.line == pos.Line && w.rx.MatchString(d.Message) {
				matched[i] = true
				ok = true
				break
			}
		}
		if !ok {
			t.Errorf("%s: unexpected diagnostic: %s", pos, d.Message)
		}
	}
	for i, w := range wants {
		if !matched[i] {
			t.Errorf("%s:%d: no diagnostic matched %q", w.file, w.line, w.rx)
		}
	}
}

// RunSummaries builds a single-package module over the fixture in dir and
// diffs each function's computed interprocedural summary against
// "// want-summary" comments written above or trailing the declaration:
//
//	// want-summary acquires=1 err=format
//	func openPinned(d *Dataset) (*Snapshot, error) { ... }
//
// Supported keys: acquires, releases-recv, checks-ctx, panics (0/1);
// releases-param, puts-param, retains-param (comma-separated true indices,
// or "none"); effects (io, write, fsync, dirfsync, rename, walappend, or
// "none"); err (format, corrupt, opaque, or "none"); locks (lock names, or
// "none"). Set-valued keys assert exact equality, so a fixture pins the
// whole fact sheet, not a lower bound.
func RunSummaries(t *testing.T, dir string) {
	t.Helper()
	pkg, err := loadFixture(dir)
	if err != nil {
		t.Fatalf("loading fixture %s: %v", dir, err)
	}
	mod := analysis.BuildModule([]*analysis.Package{pkg})

	byLine := map[int]string{}
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				if rest, ok := strings.CutPrefix(c.Text, "// want-summary "); ok {
					byLine[pkg.Fset.Position(c.Pos()).Line] = strings.TrimSpace(rest)
				}
			}
		}
	}
	if len(byLine) == 0 {
		t.Fatalf("fixture %s has no want-summary comments", dir)
	}

	checked := 0
	for _, f := range pkg.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			line := pkg.Fset.Position(fd.Pos()).Line
			spec, ok := byLine[line]
			if !ok {
				spec, ok = byLine[line-1]
			}
			if !ok {
				continue
			}
			checked++
			fn, _ := pkg.Info.Defs[fd.Name].(*types.Func)
			if fn == nil {
				t.Errorf("%s: no object for %s", dir, fd.Name.Name)
				continue
			}
			s := mod.Summary(analysis.KeyForFunc(fn))
			if s == nil {
				t.Errorf("%s: no summary computed for %s", dir, fd.Name.Name)
				continue
			}
			checkSummary(t, fd.Name.Name, spec, s)
		}
	}
	if checked != len(byLine) {
		t.Errorf("%s: %d want-summary comments but %d matched a declaration", dir, len(byLine), checked)
	}
}

// checkSummary diffs one function's summary against a want-summary spec.
func checkSummary(t *testing.T, fname, spec string, s *analysis.Summary) {
	t.Helper()
	boolOf := func(v string) bool { return v == "1" || v == "true" }
	setOf := func(v string) map[string]bool {
		out := map[string]bool{}
		if v == "none" {
			return out
		}
		for _, p := range strings.Split(v, ",") {
			out[strings.TrimSpace(p)] = true
		}
		return out
	}
	paramSet := func(bits []bool) map[string]bool {
		out := map[string]bool{}
		for i, b := range bits {
			if b {
				out[fmt.Sprint(i)] = true
			}
		}
		return out
	}
	eqSet := func(key string, got, wantSet map[string]bool) {
		t.Helper()
		for k := range wantSet {
			if !got[k] {
				t.Errorf("%s: summary %s: missing %q (got %v)", fname, key, k, keys(got))
			}
		}
		for k := range got {
			if !wantSet[k] {
				t.Errorf("%s: summary %s: unexpected %q (want %v)", fname, key, k, keys(wantSet))
			}
		}
	}

	for _, field := range strings.Fields(spec) {
		key, val, ok := strings.Cut(field, "=")
		if !ok {
			t.Errorf("%s: malformed want-summary field %q", fname, field)
			continue
		}
		switch key {
		case "acquires":
			if s.Acquires != boolOf(val) {
				t.Errorf("%s: summary acquires = %v, want %v", fname, s.Acquires, boolOf(val))
			}
		case "releases-recv":
			if s.ReleasesRecv != boolOf(val) {
				t.Errorf("%s: summary releases-recv = %v, want %v", fname, s.ReleasesRecv, boolOf(val))
			}
		case "checks-ctx":
			if s.ChecksCtx != boolOf(val) {
				t.Errorf("%s: summary checks-ctx = %v, want %v", fname, s.ChecksCtx, boolOf(val))
			}
		case "panics":
			if s.Panics != boolOf(val) {
				t.Errorf("%s: summary panics = %v, want %v", fname, s.Panics, boolOf(val))
			}
		case "releases-param":
			eqSet("releases-param", paramSet(s.ReleasesParam), setOf(val))
		case "puts-param":
			eqSet("puts-param", paramSet(s.PutsParam), setOf(val))
		case "retains-param":
			eqSet("retains-param", paramSet(s.RetainsParam), setOf(val))
		case "effects":
			got := map[string]bool{}
			for name, bit := range effectBits {
				if s.Effects&bit != 0 {
					got[name] = true
				}
			}
			eqSet("effects", got, setOf(val))
		case "err":
			got := map[string]bool{}
			if s.ErrFormat {
				got["format"] = true
			}
			if s.ErrCorrupt {
				got["corrupt"] = true
			}
			if s.ErrOpaque {
				got["opaque"] = true
			}
			eqSet("err", got, setOf(val))
		case "locks":
			got := map[string]bool{}
			for l := range s.Locks {
				got[l] = true
			}
			eqSet("locks", got, setOf(val))
		default:
			t.Errorf("%s: unknown want-summary key %q", fname, key)
		}
	}
}

var effectBits = map[string]analysis.Effect{
	"io":        analysis.EffIO,
	"write":     analysis.EffWrite,
	"fsync":     analysis.EffFsync,
	"dirfsync":  analysis.EffDirFsync,
	"rename":    analysis.EffRename,
	"walappend": analysis.EffWALAppend,
}

func keys(m map[string]bool) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

type want struct {
	file string
	line int
	rx   *regexp.Regexp
}

func collectWants(t *testing.T, pkg *analysis.Package) []want {
	t.Helper()
	var wants []want
	for _, f := range pkg.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, found := strings.CutPrefix(c.Text, "// want ")
				if !found {
					continue
				}
				pos := pkg.Fset.Position(c.Pos())
				ms := wantRx.FindAllStringSubmatch(rest, -1)
				if len(ms) == 0 {
					t.Fatalf("%s: malformed want comment %q", pos, c.Text)
				}
				for _, m := range ms {
					pat := m[1]
					if pat == "" {
						pat = m[2]
					}
					rx, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s: bad want pattern %q: %v", pos, pat, err)
					}
					wants = append(wants, want{file: pos.Filename, line: pos.Line, rx: rx})
				}
			}
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	return wants
}

// loadFixture parses and type-checks dir as a single package. Fixtures
// import only the standard library, so the source importer resolves them
// regardless of working directory.
func loadFixture(dir string) (*analysis.Package, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || filepath.Ext(e.Name()) != ".go" {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return nil, err
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return nil, fmt.Errorf("no .go files in %s", dir)
	}
	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Implicits:  map[ast.Node]types.Object{},
	}
	conf := types.Config{Importer: importer.ForCompiler(fset, "source", nil)}
	tpkg, err := conf.Check("fixture/"+filepath.Base(dir), fset, files, info)
	if err != nil {
		return nil, fmt.Errorf("type-checking fixture: %w", err)
	}
	return &analysis.Package{
		ImportPath: tpkg.Path(),
		Dir:        dir,
		Fset:       fset,
		Files:      files,
		Types:      tpkg,
		Info:       info,
	}, nil
}
