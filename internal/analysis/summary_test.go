package analysis_test

import (
	"testing"

	"neurospatial/internal/analysis/antest"
)

// TestSummaries pins the interprocedural summaries of the fixture package:
// acquire/release flow (including the error-result holder regression),
// pool puts, parameter retention, file-effect classification and
// propagation, context checks, recover-neutralized panics, and the error
// taxonomy with its recursion fixpoint.
func TestSummaries(t *testing.T) {
	antest.RunSummaries(t, "testdata/summaries")
}
