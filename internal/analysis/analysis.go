// Package analysis is a small, dependency-free reimplementation of the
// go/analysis vocabulary (Analyzer, Pass, Diagnostic) used by the repo's
// custom linters. The real golang.org/x/tools/go/analysis framework is the
// obvious choice, but this module builds in hermetic environments with an
// empty module cache, so the linters are written against a stdlib-only core:
// packages are loaded with `go list` + go/parser + go/types (source importer),
// and analyzers receive the same (Fset, Files, Pkg, TypesInfo) quadruple a
// go/analysis Pass would carry. Migrating an analyzer to x/tools later is a
// mechanical change of import paths.
//
// Suppression follows staticcheck's convention: a comment
//
//	//lint:ignore poolcheck reason...
//
// on the line before a statement (or trailing on the same line) suppresses
// the named analyzers — comma-separated, or * for all — for that statement's
// whole extent. The reason is mandatory.
package analysis

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// Analyzer describes one check. Run inspects a single package via its Pass
// and reports findings; it must not retain the Pass.
type Analyzer struct {
	Name string // command-line and //lint:ignore name, e.g. "poolcheck"
	Doc  string // one-paragraph description, shown by `neurolint -help`
	Run  func(*Pass) error

	// ExemptTests removes _test.go files from Pass.Files before Run: the
	// analyzer's contract doesn't apply to test code (regression tests
	// exercising deprecated APIs, benchmark loops without cancellation).
	// Scoping the exemption per analyzer keeps every other check live on
	// test files.
	ExemptTests bool
}

// Pass carries one package's syntax and type information to an analyzer.
type Pass struct {
	Analyzer  *Analyzer
	Fset      *token.FileSet
	Files     []*ast.File
	Pkg       *types.Package
	TypesInfo *types.Info

	// Module is the interprocedural context: the whole-load call graph and
	// per-function summaries. Always non-nil — Run builds a single-package
	// module when the caller didn't supply one.
	Module *Module

	// Package is the loaded package under analysis, for Module helpers
	// that resolve objects through the package's own TypesInfo.
	Package *Package

	diags []Diagnostic
}

// Diagnostic is one finding, positioned inside the analyzed package.
type Diagnostic struct {
	Analyzer string
	Pos      token.Pos
	Message  string
}

// Reportf records a finding at pos.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.diags = append(p.diags, Diagnostic{
		Analyzer: p.Analyzer.Name,
		Pos:      pos,
		Message:  fmt.Sprintf(format, args...),
	})
}

// Run applies the analyzer to pkg and returns surviving diagnostics,
// already filtered through //lint:ignore suppression and sorted by position.
// mod supplies the interprocedural context; pass nil to have Run build a
// single-package module (the antest path — multi-package callers like
// neurolint build one Module for the whole load and share it).
func Run(a *Analyzer, pkg *Package, mod *Module) ([]Diagnostic, error) {
	if mod == nil {
		mod = BuildModule([]*Package{pkg})
	}
	files := pkg.Files
	if a.ExemptTests {
		files = nil
		for _, f := range pkg.Files {
			name := pkg.Fset.Position(f.Pos()).Filename
			if !strings.HasSuffix(name, "_test.go") {
				files = append(files, f)
			}
		}
	}
	pass := &Pass{
		Analyzer:  a,
		Fset:      pkg.Fset,
		Files:     files,
		Pkg:       pkg.Types,
		TypesInfo: pkg.Info,
		Module:    mod,
		Package:   pkg,
	}
	if err := a.Run(pass); err != nil {
		return nil, fmt.Errorf("%s: %s: %w", a.Name, pkg.ImportPath, err)
	}
	diags := suppress(pass.diags, pkg)
	sort.Slice(diags, func(i, j int) bool { return diags[i].Pos < diags[j].Pos })
	return diags, nil
}

// ignoreRange is the extent of one //lint:ignore directive: the following
// (or enclosing-line) statement or declaration. dirPos is the directive
// comment's own position, the key for used-suppression tracking.
type ignoreRange struct {
	names      map[string]bool // analyzer names; "*" ignores all
	start, end token.Pos
	dirPos     token.Pos
}

// suppress drops diagnostics covered by a matching //lint:ignore range,
// recording on the package which directives actually fired — the input to
// the stale-ignore check.
func suppress(diags []Diagnostic, pkg *Package) []Diagnostic {
	ranges := ignoreRanges(pkg)
	if len(ranges) == 0 {
		return diags
	}
	if pkg.usedIgnores == nil {
		pkg.usedIgnores = map[token.Pos]bool{}
	}
	out := diags[:0]
	for _, d := range diags {
		ignored := false
		for _, r := range ranges {
			if d.Pos >= r.start && d.Pos < r.end && (r.names["*"] || r.names[d.Analyzer]) {
				ignored = true
				pkg.usedIgnores[r.dirPos] = true
				break
			}
		}
		if !ignored {
			out = append(out, d)
		}
	}
	return out
}

// Directive is one //lint:ignore comment in a package, with the analyzer
// names it suppresses.
type Directive struct {
	Names []string
	Pos   token.Pos
}

// Directives lists every //lint:ignore comment in pkg, attached or not.
func Directives(pkg *Package) []Directive {
	var out []Directive
	seen := map[token.Pos]bool{}
	for _, r := range ignoreRanges(pkg) {
		if seen[r.dirPos] {
			continue
		}
		seen[r.dirPos] = true
		var names []string
		for n := range r.names {
			names = append(names, n)
		}
		sort.Strings(names)
		out = append(out, Directive{Names: names, Pos: r.dirPos})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Pos < out[j].Pos })
	return out
}

// Used reports whether the directive at pos suppressed at least one
// diagnostic across every analyzer run on pkg so far.
func Used(pkg *Package, pos token.Pos) bool { return pkg.usedIgnores[pos] }

// ignoreRanges scans a package for //lint:ignore comments and resolves each
// to the syntax it governs: the largest statement, declaration, or spec
// whose first line is the comment's own line (trailing form) or the line
// directly below it.
func ignoreRanges(pkg *Package) []ignoreRange {
	var out []ignoreRange
	for _, f := range pkg.Files {
		// Collect directive lines first: line -> directive.
		type directive struct {
			names map[string]bool
			pos   token.Pos
		}
		directives := map[int]directive{}
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				rest, ok := strings.CutPrefix(c.Text, "//lint:ignore ")
				if !ok {
					continue
				}
				fields := strings.Fields(rest)
				if len(fields) < 2 {
					continue // reason is mandatory; a bare name is not a directive
				}
				names := map[string]bool{}
				for _, n := range strings.Split(fields[0], ",") {
					names[n] = true
				}
				directives[pkg.Fset.Position(c.Pos()).Line] = directive{names: names, pos: c.Pos()}
			}
		}
		if len(directives) == 0 {
			continue
		}
		// Attach each directive to the largest node starting on its line or
		// the next line. Pre-order traversal visits enclosing nodes first, so
		// the first match per line wins.
		claimed := map[int]bool{}
		ast.Inspect(f, func(n ast.Node) bool {
			if n == nil {
				return false
			}
			switch n.(type) {
			case ast.Stmt, ast.Decl, ast.Spec:
			default:
				return true
			}
			line := pkg.Fset.Position(n.Pos()).Line
			for _, l := range []int{line, line - 1} {
				if d, ok := directives[l]; ok && !claimed[l] {
					claimed[l] = true
					out = append(out, ignoreRange{names: d.names, start: n.Pos(), end: n.End(), dirPos: d.pos})
				}
			}
			return true
		})
		// A directive that attached to nothing still participates in the
		// stale check: record it with an empty range.
		for _, d := range directives {
			line := pkg.Fset.Position(d.pos).Line
			if !claimed[line] {
				out = append(out, ignoreRange{names: d.names, start: d.pos, end: d.pos, dirPos: d.pos})
			}
		}
	}
	return out
}
