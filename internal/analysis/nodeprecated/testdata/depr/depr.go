// Fixture for nodeprecated: calls to Deprecated: surfaces.
package deprfix

type Index struct{}

// Query is the legacy surface.
//
// Deprecated: use Do.
func (ix *Index) Query(q int, visit func(int32)) {}

// BatchQuery fans Query out; deprecated wrappers may layer on each other.
//
// Deprecated: use Do.
func (ix *Index) BatchQuery(qs []int, visit func(int, int32)) {
	for i := range qs {
		i := i
		ix.Query(qs[i], func(id int32) { visit(i, id) })
	}
}

// Do is the modern surface.
func (ix *Index) Do(q int, visit func(int32)) {}

// Searcher is the interface form of the same split.
type Searcher interface {
	// Deprecated: use Do.
	Query(q int, visit func(int32))
	Do(q int, visit func(int32))
}

// --- non-flagging cases ---

func goodCaller(ix *Index) {
	ix.Do(1, func(id int32) {})
}

// shim is itself deprecated; its body is exempt so shims can layer.
//
// Deprecated: kept for the migration window.
func shim(ix *Index) {
	ix.Query(2, func(id int32) {})
}

func ignoredCaller(ix *Index) {
	//lint:ignore nodeprecated pinned legacy behavior for the migration suite
	ix.Query(3, func(id int32) {})
}

// --- flagging cases ---

func badCaller(ix *Index) {
	ix.Query(1, func(id int32) {}) // want `deprecated Query`
}

func badBatchCaller(ix *Index) {
	ix.BatchQuery(nil, func(i int, id int32) {}) // want `deprecated BatchQuery`
}

func badIfaceCaller(s Searcher) {
	s.Query(1, func(id int32) {}) // want `deprecated Query`
}
