// Regression tests are exempt by the _test.go file pattern: they exist to
// pin the deprecated wrappers' behavior until the surface is deleted.
package deprfix

func regressionPin(ix *Index) {
	ix.Query(9, func(id int32) {})
	ix.BatchQuery(nil, func(i int, id int32) {})
}
