// Package nodeprecated keeps internal packages off the deprecated legacy
// query surface. Two detection mechanisms compose:
//
//  1. Generic: any function or interface method whose doc comment carries a
//     "Deprecated:" marker, declared in the analyzed package, must not be
//     called from a non-deprecated function in that package (deprecated
//     wrappers may call each other — that's how the shims are layered).
//  2. Engine-specific: calls from other packages to the engine's deprecated
//     Query/BatchQuery wrappers (package neurospatial/internal/engine),
//     which predate Do/Session and bypass stats, cancellation, and paging.
//
// Regression tests deliberately exercise the wrappers; they are exempt both
// structurally (the loader feeds analyzers non-test files only) and by file
// pattern, for fixture runs that include _test.go-suffixed files.
package nodeprecated

import (
	"go/ast"
	"go/types"
	"strings"

	"neurospatial/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "nodeprecated",
	Doc:  "no calls to Deprecated: functions or the engine's legacy Query/BatchQuery wrappers from non-deprecated code",
	Run:  run,
}

const enginePath = "neurospatial/internal/engine"

func run(pass *analysis.Pass) error {
	deprecated := collectDeprecated(pass)

	for _, f := range pass.Files {
		name := pass.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue // regression tests may pin deprecated behavior
		}
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil || isDeprecatedDoc(fn.Doc) {
				continue
			}
			ast.Inspect(fn.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				callee := callee(pass, call)
				if callee == nil {
					return true
				}
				switch {
				case deprecated[callee]:
					pass.Reportf(call.Pos(), "call to deprecated %s from %s; use the Do/Session surface",
						callee.Name(), fn.Name.Name)
				case isEngineLegacy(callee) && callee.Pkg() != pass.Pkg:
					pass.Reportf(call.Pos(), "call to deprecated engine.%s wrapper from %s; use Do/Session",
						callee.Name(), fn.Name.Name)
				}
				return true
			})
		}
	}
	return nil
}

// collectDeprecated gathers this package's Deprecated: functions, methods,
// and interface methods as type objects.
func collectDeprecated(pass *analysis.Pass) map[*types.Func]bool {
	out := map[*types.Func]bool{}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				if isDeprecatedDoc(n.Doc) {
					if fn, ok := pass.TypesInfo.Defs[n.Name].(*types.Func); ok {
						out[fn] = true
					}
				}
			case *ast.InterfaceType:
				for _, field := range n.Methods.List {
					if isDeprecatedDoc(field.Doc) {
						for _, name := range field.Names {
							if fn, ok := pass.TypesInfo.Defs[name].(*types.Func); ok {
								out[fn] = true
							}
						}
					}
				}
			}
			return true
		})
	}
	return out
}

// isDeprecatedDoc follows the godoc convention: the marker is a paragraph
// (here: any line) beginning "Deprecated:", not the phrase in passing.
func isDeprecatedDoc(doc *ast.CommentGroup) bool {
	if doc == nil {
		return false
	}
	for _, line := range strings.Split(doc.Text(), "\n") {
		if strings.HasPrefix(strings.TrimSpace(line), "Deprecated:") {
			return true
		}
	}
	return false
}

// isEngineLegacy matches the engine package's legacy wrapper methods.
func isEngineLegacy(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg().Path() != enginePath {
		return false
	}
	if fn.Name() != "Query" && fn.Name() != "BatchQuery" {
		return false
	}
	sig, ok := fn.Type().(*types.Signature)
	return ok && sig.Recv() != nil
}

func callee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}
