package nodeprecated_test

import (
	"testing"

	"neurospatial/internal/analysis/antest"
	"neurospatial/internal/analysis/nodeprecated"
)

func TestNodeprecatedFixtures(t *testing.T) {
	antest.Run(t, "testdata/depr", nodeprecated.Analyzer)
}
