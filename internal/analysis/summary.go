package analysis

import (
	"go/ast"
	"go/types"
	"strconv"
	"strings"
)

// Effect is a bitset of side effects a statement or function performs,
// either directly or (for the propagated subset) through its callees.
type Effect uint16

const (
	// EffIO: any os-level file or directory operation.
	EffIO Effect = 1 << iota
	// EffWrite: a direct write to an *os.File. Not propagated — the callee
	// that wrote is responsible for its own write→fsync discipline.
	EffWrite
	// EffFsync: an *os.File Sync (directly or in a callee).
	EffFsync
	// EffDirFsync: a Sync on a read-only handle from os.Open — the
	// directory-fsync idiom that makes a rename durable.
	EffDirFsync
	// EffRename: a direct os.Rename. Not propagated — a callee performing
	// a full tmp→fsync→rename→dir-fsync swap already checked its own order.
	EffRename
	// EffWALAppend: a WAL append+sync (a method named Append on a WAL
	// receiver, directly or in a callee).
	EffWALAppend
)

// propagatedEffects are the bits a caller inherits from its callees.
const propagatedEffects = EffIO | EffFsync | EffDirFsync | EffWALAppend

// Summary is the bottom-up interprocedural fact sheet of one function,
// computed over SCCs of the call graph. Analyzers consult it at call sites:
// a flow-sensitive walk that reaches `h(v)` asks h's summary what happened
// to v (released? retained? put back in a pool?) and what effects ran.
//
// Release facts are MAY-release: a designated disposer (Session.Close
// releases behind a CAS; Snapshot.Release decrements a refcount) settles the
// caller's obligation even when some internal path skips the actual release.
type Summary struct {
	// Acquires: the function returns a handle its caller must release —
	// the result of Dataset.Acquire / Snapshot.Acquire, an engine.Open
	// with a WithDataset option, or a callee that Acquires, flowing out
	// through a return.
	Acquires bool
	// ReleasesRecv: calling this method settles the receiver's pin
	// obligation (it calls Release/Close on the receiver or one of the
	// receiver's fields, possibly through another releasing method).
	ReleasesRecv bool
	// ReleasesParam[i]: passing a tracked handle as the i-th parameter
	// settles its obligation (snapshot/session Release/Close discipline).
	ReleasesParam []bool
	// PutsParam[i]: the i-th parameter is returned to a sync.Pool
	// (Pool.Put or a put* helper), the poolcheck release discipline.
	PutsParam []bool
	// RetainsParam[i]: the i-th parameter may outlive the call — stored in
	// a field, global, slice, channel or closure, returned, or passed on
	// to an unknown function. A call that neither releases nor retains a
	// tracked value is a borrow: the caller still holds the obligation.
	RetainsParam []bool
	// Effects the function performs, directly or transitively.
	Effects Effect
	// Locks: names of annotated mutexes the function may acquire,
	// directly or transitively.
	Locks map[string]bool
	// ChecksCtx: the function checks a context for cancellation —
	// ctx.Err/ctx.Done or the repo's ctxErr/cancelable helpers — on some
	// path, directly or in a callee.
	ChecksCtx bool
	// Error classification of the function's error result, unioned over
	// return paths: typed *FormatError / *CorruptError values (or %w-wraps
	// of them) vs opaque errors (bare fmt.Errorf, errors.New, unknown
	// callees).
	ErrFormat  bool
	ErrCorrupt bool
	ErrOpaque  bool
	// Panics: a reachable explicit panic, directly or via a module callee,
	// with no recover guard in this function.
	Panics bool
}

func (s *Summary) equal(o *Summary) bool {
	if s.Acquires != o.Acquires || s.ReleasesRecv != o.ReleasesRecv ||
		s.Effects != o.Effects || s.ChecksCtx != o.ChecksCtx ||
		s.ErrFormat != o.ErrFormat || s.ErrCorrupt != o.ErrCorrupt ||
		s.ErrOpaque != o.ErrOpaque || s.Panics != o.Panics ||
		len(s.Locks) != len(o.Locks) {
		return false
	}
	for k := range s.Locks {
		if !o.Locks[k] {
			return false
		}
	}
	eqBools := func(a, b []bool) bool {
		if len(a) != len(b) {
			return false
		}
		for i := range a {
			if a[i] != b[i] {
				return false
			}
		}
		return true
	}
	return eqBools(s.ReleasesParam, o.ReleasesParam) &&
		eqBools(s.PutsParam, o.PutsParam) &&
		eqBools(s.RetainsParam, o.RetainsParam)
}

// computeSummaries fills m.Summaries bottom-up over SCCs, iterating each
// component to a fixpoint (all facts are monotone unions, so this
// terminates quickly).
func (m *Module) computeSummaries() {
	for _, comp := range m.sccs() {
		for i := 0; ; i++ {
			changed := false
			for _, key := range comp {
				next := m.summarize(m.Funcs[key])
				if prev, ok := m.Summaries[key]; !ok || !prev.equal(next) {
					m.Summaries[key] = next
					changed = true
				}
			}
			if !changed || i > 8 {
				break
			}
		}
	}
}

// walkBody visits every node of body in pre-order, skipping nested function
// literals: a literal is its own FuncNode and contributes through call edges,
// not through syntactic containment.
func walkBody(body *ast.BlockStmt, fn func(ast.Node) bool) {
	ast.Inspect(body, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			return false
		}
		return fn(n)
	})
}

// summarize computes one function's summary against the current state of
// m.Summaries (callees in the same SCC may still be converging).
func (m *Module) summarize(node *FuncNode) *Summary {
	pkg := node.Pkg
	body := node.Body()
	s := &Summary{Locks: map[string]bool{}}

	recvObj, paramObjs := node.bindings()
	s.ReleasesParam = make([]bool, len(paramObjs))
	s.PutsParam = make([]bool, len(paramObjs))
	s.RetainsParam = make([]bool, len(paramObjs))
	paramIndex := map[types.Object]int{}
	for i, p := range paramObjs {
		if p != nil {
			paramIndex[p] = i
		}
	}
	tracked := func(obj types.Object) bool {
		if obj == nil {
			return false
		}
		_, isParam := paramIndex[obj]
		return isParam || obj == recvObj
	}
	markRelease := func(obj types.Object) {
		if obj == recvObj && obj != nil {
			s.ReleasesRecv = true
		}
		if i, ok := paramIndex[obj]; ok {
			s.ReleasesParam[i] = true
		}
	}
	markPut := func(obj types.Object) {
		if i, ok := paramIndex[obj]; ok {
			s.PutsParam[i] = true
		}
	}
	markRetain := func(obj types.Object) {
		if i, ok := paramIndex[obj]; ok {
			s.RetainsParam[i] = true
		}
	}

	openVars := osOpenVars(pkg, body)
	var holders []types.Object // locals holding an acquired handle
	recovered := false

	walkBody(body, func(n ast.Node) bool {
		switch st := n.(type) {
		case *ast.DeferStmt:
			// A deferred recover guard neutralizes Panics. Look inside the
			// deferred literal explicitly (walkBody skips literals).
			ast.Inspect(st.Call, func(d ast.Node) bool {
				if c, ok := d.(*ast.CallExpr); ok {
					if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "recover" {
						recovered = true
					}
				}
				return true
			})
			// The deferred call itself is still a call: fall through via
			// the CallExpr visit below (Inspect reaches it).

		case *ast.CallExpr:
			m.summarizeCall(pkg, st, s, openVars, tracked, markRelease, markPut, markRetain)

		case *ast.ExprStmt:
			if c, ok := st.X.(*ast.CallExpr); ok {
				if id, ok := c.Fun.(*ast.Ident); ok && id.Name == "panic" {
					s.Panics = true
				}
			}

		case *ast.AssignStmt:
			// Acquired-handle holders: `v := acquire()`, `s.snap = acquire()`
			// track the root local so a later `return v` / `return s` marks
			// the function as Acquires.
			if len(st.Rhs) == 1 {
				if call, ok := ast.Unparen(st.Rhs[0]).(*ast.CallExpr); ok && m.isAcquireCall(pkg, call) {
					for _, lhs := range st.Lhs {
						obj := rootIdentObj(pkg, lhs)
						// The error result of `h, err := acquire()` carries no
						// obligation: returning err must not read as returning
						// the handle.
						if obj == nil || isErrorType(obj.Type()) {
							continue
						}
						holders = append(holders, obj)
					}
				}
			}
			// Tracked params on an assignment RHS escape into the LHS.
			for _, rhs := range st.Rhs {
				if id, ok := ast.Unparen(rhs).(*ast.Ident); ok && tracked(pkg.Info.Uses[id]) {
					markRetain(pkg.Info.Uses[id])
				}
			}

		case *ast.ReturnStmt:
			for _, res := range st.Results {
				e := ast.Unparen(res)
				if call, ok := e.(*ast.CallExpr); ok && m.isAcquireCall(pkg, call) {
					s.Acquires = true
				}
				if id, ok := e.(*ast.Ident); ok {
					obj := pkg.Info.Uses[id]
					if tracked(obj) {
						markRetain(obj)
					}
					for _, h := range holders {
						if obj == h {
							s.Acquires = true
						}
					}
				}
			}

		case *ast.FuncLit:
			// unreachable: walkBody skips literals

		case *ast.SendStmt, *ast.GoStmt, *ast.CompositeLit:
			ast.Inspect(n, func(d ast.Node) bool {
				if id, ok := d.(*ast.Ident); ok && tracked(pkg.Info.Uses[id]) {
					markRetain(pkg.Info.Uses[id])
				}
				return true
			})

		case *ast.UnaryExpr:
			if st.Op.String() == "&" {
				if id, ok := ast.Unparen(st.X).(*ast.Ident); ok && tracked(pkg.Info.Uses[id]) {
					markRetain(pkg.Info.Uses[id])
				}
			}
		}
		return true
	})

	// Captures: a tracked param mentioned inside any nested literal escapes
	// into the closure.
	ast.Inspect(body, func(n ast.Node) bool {
		lit, ok := n.(*ast.FuncLit)
		if !ok {
			return true
		}
		ast.Inspect(lit.Body, func(d ast.Node) bool {
			if id, ok := d.(*ast.Ident); ok && tracked(pkg.Info.Uses[id]) {
				markRetain(pkg.Info.Uses[id])
			}
			return true
		})
		return false
	})

	// Holder mentioned in a return found before the assignment in source
	// order is impossible (Go scoping), so one pass suffices. A second
	// return-scan catches the `v := acquire(); ...; return v` case when the
	// return precedes the assign in AST walk order across files — it can't,
	// but the rescan is cheap and makes the logic order-independent.
	if !s.Acquires && len(holders) > 0 {
		walkBody(body, func(n ast.Node) bool {
			ret, ok := n.(*ast.ReturnStmt)
			if !ok {
				return true
			}
			for _, res := range ret.Results {
				if id, ok := ast.Unparen(res).(*ast.Ident); ok {
					obj := pkg.Info.Uses[id]
					for _, h := range holders {
						if obj == h {
							s.Acquires = true
						}
					}
				}
			}
			return true
		})
	}

	if recovered {
		s.Panics = false
	}
	m.summarizeErrors(node, s)
	return s
}

// summarizeCall folds one call's contribution into s: direct effects,
// lock acquisitions, context checks, callee-propagated facts, and what the
// call does to tracked (receiver/param) objects.
func (m *Module) summarizeCall(pkg *Package, call *ast.CallExpr, s *Summary,
	openVars map[types.Object]bool, tracked func(types.Object) bool,
	markRelease, markPut, markRetain func(types.Object)) {

	s.Effects |= DirectCallEffects(pkg, call, openVars)

	if info, acquired, ok := m.LockCall(pkg, call); ok && acquired {
		s.Locks[info.Name] = true
	}
	if directCtxCheck(pkg, call) {
		s.ChecksCtx = true
	}

	merged := m.MergedCallSummary(pkg, call)
	if merged != nil {
		s.Effects |= merged.Effects
		for l := range merged.Locks {
			s.Locks[l] = true
		}
		s.ChecksCtx = s.ChecksCtx || merged.ChecksCtx
		s.Panics = s.Panics || merged.Panics
	}

	// Receiver-rooted release: r.Release(), r.snap.Close(), or a method on
	// r (or r's field) whose summary releases its receiver.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		root := rootIdentObj(pkg, sel.X)
		if tracked(root) {
			releasing := sel.Sel.Name == "Release" || sel.Sel.Name == "Close" ||
				(merged != nil && merged.ReleasesRecv)
			if releasing {
				markRelease(root)
			}
		}
	}

	// Pool release: sync.Pool.Put or a same-package put* helper.
	isPut := isPoolPut(pkg, call)

	// Arguments: tracked objects passed by position pick up the callee's
	// per-parameter facts; unknown callees retain conservatively.
	for i, arg := range call.Args {
		id, ok := ast.Unparen(arg).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pkg.Info.Uses[id]
		if !tracked(obj) {
			continue
		}
		switch {
		case isPut:
			markPut(obj)
		case merged != nil:
			if i < len(merged.ReleasesParam) && merged.ReleasesParam[i] {
				markRelease(obj)
			}
			if i < len(merged.PutsParam) && merged.PutsParam[i] {
				markPut(obj)
			}
			if i < len(merged.RetainsParam) && merged.RetainsParam[i] {
				markRetain(obj)
			}
		default:
			markRetain(obj) // unknown callee: assume it keeps the value
		}
	}
}

func growBools(dst *[]bool, src []bool) {
	for len(*dst) < len(src) {
		*dst = append(*dst, false)
	}
	for i, v := range src {
		if v {
			(*dst)[i] = true
		}
	}
}

// bindings resolves the receiver and parameter objects of a function node.
func (n *FuncNode) bindings() (recv types.Object, params []types.Object) {
	var ft *ast.FuncType
	if n.Decl != nil {
		ft = n.Decl.Type
		if n.Decl.Recv != nil && len(n.Decl.Recv.List) > 0 && len(n.Decl.Recv.List[0].Names) > 0 {
			recv = n.Pkg.Info.Defs[n.Decl.Recv.List[0].Names[0]]
		}
	} else {
		ft = n.Lit.Type
	}
	if ft.Params != nil {
		for _, field := range ft.Params.List {
			if len(field.Names) == 0 {
				params = append(params, nil) // unnamed parameter
				continue
			}
			for _, name := range field.Names {
				params = append(params, n.Pkg.Info.Defs[name])
			}
		}
	}
	return recv, params
}

// MergedCallSummary unions the summaries of every resolved target of call —
// what a flow-sensitive analyzer knows about a call site. May-facts (release,
// retain, effects, panics) union across CHA targets. Nil when no target has
// a summary: the callee lives outside the module and nothing is known.
func (m *Module) MergedCallSummary(pkg *Package, call *ast.CallExpr) *Summary {
	var merged *Summary
	for _, t := range m.Targets(pkg, call) {
		ts := m.Summaries[t]
		if ts == nil {
			continue
		}
		if merged == nil {
			merged = &Summary{Locks: map[string]bool{}}
		}
		merged.Acquires = merged.Acquires || ts.Acquires
		merged.Effects |= ts.Effects & propagatedEffects
		for l := range ts.Locks {
			merged.Locks[l] = true
		}
		merged.ChecksCtx = merged.ChecksCtx || ts.ChecksCtx
		merged.ReleasesRecv = merged.ReleasesRecv || ts.ReleasesRecv
		merged.Panics = merged.Panics || ts.Panics
		merged.ErrFormat = merged.ErrFormat || ts.ErrFormat
		merged.ErrCorrupt = merged.ErrCorrupt || ts.ErrCorrupt
		merged.ErrOpaque = merged.ErrOpaque || ts.ErrOpaque
		growBools(&merged.ReleasesParam, ts.ReleasesParam)
		growBools(&merged.PutsParam, ts.PutsParam)
		growBools(&merged.RetainsParam, ts.RetainsParam)
	}
	return merged
}

// IsAcquire reports whether call yields a handle the caller must release —
// the snapref acquire intrinsics plus Acquires summaries.
func (m *Module) IsAcquire(pkg *Package, call *ast.CallExpr) bool {
	return m.isAcquireCall(pkg, call)
}

// IsPoolPut reports whether call is a pooled-scratch release: sync.Pool.Put
// or a same-package put* helper.
func IsPoolPut(pkg *Package, call *ast.CallExpr) bool {
	return isPoolPut(pkg, call)
}

// CalleeName exposes the bare callee name of a call expression.
func CalleeName(call *ast.CallExpr) string { return calleeName(call) }

// RootIdentObj exposes selector-root resolution: s.snap.ref -> object of s.
func RootIdentObj(pkg *Package, e ast.Expr) types.Object { return rootIdentObj(pkg, e) }

// DirectCtxCheck reports whether call is itself a cancellation check.
func DirectCtxCheck(pkg *Package, call *ast.CallExpr) bool {
	return directCtxCheck(pkg, call)
}

// isAcquireCall recognizes acquiring calls: a method named Acquire with one
// result, a call to a function named Open with a WithDataset(...) argument,
// or a call to a module function whose summary Acquires.
func (m *Module) isAcquireCall(pkg *Package, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.SelectorExpr:
		if fun.Sel.Name == "Acquire" {
			if fn, ok := pkg.Info.Uses[fun.Sel].(*types.Func); ok {
				if sig, ok := fn.Type().(*types.Signature); ok && sig.Results().Len() == 1 {
					return true
				}
			}
		}
	}
	if calleeName(call) == "Open" {
		for _, arg := range call.Args {
			if c, ok := ast.Unparen(arg).(*ast.CallExpr); ok && calleeName(c) == "WithDataset" {
				return true
			}
		}
	}
	for _, t := range m.Targets(pkg, call) {
		if ts := m.Summaries[t]; ts != nil && ts.Acquires {
			return true
		}
	}
	return false
}

// calleeName returns the bare name of a call's target: f(...) -> "f",
// pkg.F(...) / x.M(...) -> "F"/"M".
func calleeName(call *ast.CallExpr) string {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name
	case *ast.SelectorExpr:
		return fun.Sel.Name
	}
	return ""
}

// rootIdentObj unwraps a selector path (s.snap.ref -> s) or a plain ident to
// the object of its root identifier.
func rootIdentObj(pkg *Package, e ast.Expr) types.Object {
	for {
		switch v := ast.Unparen(e).(type) {
		case *ast.Ident:
			if obj := pkg.Info.Uses[v]; obj != nil {
				return obj
			}
			return pkg.Info.Defs[v]
		case *ast.SelectorExpr:
			e = v.X
		default:
			return nil
		}
	}
}

// osOpenVars collects variables assigned from os.Open in body — read-only
// handles, which in this codebase means directory handles opened to fsync.
func osOpenVars(pkg *Package, body *ast.BlockStmt) map[types.Object]bool {
	out := map[types.Object]bool{}
	walkBody(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok || len(as.Rhs) != 1 || len(as.Lhs) == 0 {
			return true
		}
		call, ok := ast.Unparen(as.Rhs[0]).(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Open" {
			return true
		}
		if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); !ok ||
			fn.Pkg() == nil || fn.Pkg().Path() != "os" {
			return true
		}
		if id, ok := as.Lhs[0].(*ast.Ident); ok {
			if obj := pkg.Info.Defs[id]; obj != nil {
				out[obj] = true
			} else if obj := pkg.Info.Uses[id]; obj != nil {
				out[obj] = true
			}
		}
		return true
	})
	return out
}

// DirectCallEffects classifies the intrinsic effects of one call expression,
// with no callee propagation: *os.File writes/syncs, os package calls, and
// WAL appends. openVars marks read-only handles from os.Open, whose Sync is
// the directory-fsync idiom (you only fsync a read-only handle if it is a
// directory).
func DirectCallEffects(pkg *Package, call *ast.CallExpr, openVars map[types.Object]bool) Effect {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return 0
	}
	// Package-qualified os.* call?
	if fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func); ok && fn.Pkg() != nil && fn.Pkg().Path() == "os" {
		if _, isSel := pkg.Info.Selections[sel]; !isSel {
			switch fn.Name() {
			case "Rename":
				return EffRename | EffIO
			case "Open", "OpenFile", "Create", "CreateTemp", "Remove", "RemoveAll",
				"Mkdir", "MkdirAll", "MkdirTemp", "ReadFile", "WriteFile", "ReadDir",
				"Truncate", "Stat", "Lstat":
				return EffIO
			}
			return 0
		}
	}
	// Method on *os.File?
	if s, ok := pkg.Info.Selections[sel]; ok {
		if isOSFile(s.Recv()) {
			switch sel.Sel.Name {
			case "Sync":
				if openVars[rootIdentObj(pkg, sel.X)] {
					return EffDirFsync | EffIO
				}
				return EffFsync | EffIO
			case "Write", "WriteString", "WriteAt":
				return EffWrite | EffIO
			case "Read", "ReadAt", "Seek", "Truncate", "Close", "Stat", "ReadDir":
				return EffIO
			}
			return 0
		}
		// WAL append+sync: a method named Append on a WAL-named receiver.
		if sel.Sel.Name == "Append" && namedTypeName(s.Recv()) == "WAL" {
			return EffWALAppend | EffIO
		}
	}
	return 0
}

func isOSFile(t types.Type) bool {
	return namedTypePath(t) == "os.File"
}

func namedTypeName(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok {
		return n.Obj().Name()
	}
	return ""
}

func namedTypePath(t types.Type) string {
	if p, ok := t.(*types.Pointer); ok {
		t = p.Elem()
	}
	if n, ok := t.(*types.Named); ok && n.Obj().Pkg() != nil {
		return n.Obj().Pkg().Path() + "." + n.Obj().Name()
	}
	return ""
}

// directCtxCheck reports whether call is itself a cancellation check:
// ctx.Err()/ctx.Done() on a context.Context, or the repo's ctxErr/cancelable
// helpers.
func directCtxCheck(pkg *Package, call *ast.CallExpr) bool {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		return fun.Name == "ctxErr" || fun.Name == "cancelable"
	case *ast.SelectorExpr:
		if fun.Sel.Name != "Err" && fun.Sel.Name != "Done" {
			return false
		}
		if tv, ok := pkg.Info.Types[fun.X]; ok {
			return namedTypePath(tv.Type) == "context.Context"
		}
	}
	return false
}

// isPoolPut matches sync.Pool.Put and same-package put* helpers — the
// poolcheck release discipline, shared here so summaries can mark PutsParam.
func isPoolPut(pkg *Package, call *ast.CallExpr) bool {
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Put" {
		if tv, ok := pkg.Info.Types[sel.X]; ok && isSyncPoolType(tv.Type) {
			return true
		}
	}
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return false
	}
	name := id.Name
	if !strings.HasPrefix(name, "put") || len(name) == len("put") {
		return false
	}
	if c := name[len("put")]; c < 'A' || c > 'Z' {
		return false
	}
	fn, ok := pkg.Info.Uses[id].(*types.Func)
	return ok && fn.Pkg() == pkg.Types
}

func isSyncPoolType(t types.Type) bool {
	return namedTypePath(t) == "sync.Pool"
}

// summarizeErrors classifies the error result of node's returns.
func (m *Module) summarizeErrors(node *FuncNode, s *Summary) {
	sig := node.Sig()
	if sig == nil || sig.Results().Len() == 0 {
		return
	}
	last := sig.Results().At(sig.Results().Len() - 1).Type()
	if !isErrorType(last) {
		return
	}
	m.ClassifyReturns(node.Pkg, node.Body(), func(ret *ast.ReturnStmt, f, c, o bool) {
		s.ErrFormat = s.ErrFormat || f
		s.ErrCorrupt = s.ErrCorrupt || c
		s.ErrOpaque = s.ErrOpaque || o
	})
}

// ClassifyReturns classifies the error result of every return statement in
// body and calls visit once per return with the (format, corrupt, opaque)
// verdict. Idents trace through the union of everything assigned to them;
// callee results use function summaries. A naked return (named results) is
// untraceable and reports opaque.
func (m *Module) ClassifyReturns(pkg *Package, body *ast.BlockStmt,
	visit func(ret *ast.ReturnStmt, format, corrupt, opaque bool)) {
	// Pre-index assignments to locals so `return err` can be traced to the
	// union of everything assigned into err.
	assigns := map[types.Object][]ast.Expr{}
	walkBody(body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		if len(as.Lhs) == len(as.Rhs) {
			for i, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := identObj(pkg, id); obj != nil {
						assigns[obj] = append(assigns[obj], as.Rhs[i])
					}
				}
			}
		} else if len(as.Rhs) == 1 {
			// v, err := call(): the multi-value source stands for each LHS.
			for _, lhs := range as.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					if obj := identObj(pkg, id); obj != nil {
						assigns[obj] = append(assigns[obj], as.Rhs[0])
					}
				}
			}
		}
		return true
	})

	var classify func(e ast.Expr, depth int) (format, corrupt, opaque bool)
	classify = func(e ast.Expr, depth int) (bool, bool, bool) {
		if depth > 6 {
			return false, false, true
		}
		e = ast.Unparen(e)
		switch v := e.(type) {
		case *ast.Ident:
			if v.Name == "nil" {
				return false, false, false
			}
			obj := identObj(pkg, v)
			srcs := assigns[obj]
			if len(srcs) == 0 {
				return false, false, true // parameter or untraceable
			}
			var f, c, o bool
			for _, src := range srcs {
				sf, sc, so := classify(src, depth+1)
				f, c, o = f || sf, c || sc, o || so
			}
			return f, c, o
		case *ast.UnaryExpr:
			if v.Op.String() == "&" {
				return classify(v.X, depth+1)
			}
		case *ast.CompositeLit:
			switch typeExprName(v.Type) {
			case "FormatError":
				return true, false, false
			case "CorruptError":
				return false, true, false
			}
			return false, false, true
		case *ast.CallExpr:
			name := calleeName(v)
			if name == "Errorf" && isPkgCall(pkg, v, "fmt") {
				return classifyErrorf(pkg, v, classify)
			}
			if name == "New" && isPkgCall(pkg, v, "errors") {
				return false, false, true
			}
			var f, c, o bool
			found := false
			for _, t := range m.Targets(pkg, v) {
				if ts := m.Summaries[t]; ts != nil {
					found = true
					f, c, o = f || ts.ErrFormat, c || ts.ErrCorrupt, o || ts.ErrOpaque
				} else if m.Funcs[t] != nil {
					// Same-SCC callee still converging (recursion): optimistic
					// bottom. The SCC fixpoint re-runs classification until
					// its kinds stabilize; seeding opaque here would stick.
					found = true
				}
			}
			if !found {
				return false, false, true
			}
			return f, c, o
		}
		return false, false, true
	}

	walkBody(body, func(n ast.Node) bool {
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		if len(ret.Results) == 0 {
			visit(ret, false, false, true) // naked return: untraceable named result
			return true
		}
		f, c, o := classify(ret.Results[len(ret.Results)-1], 0)
		visit(ret, f, c, o)
		return true
	})
}

// classifyErrorf handles fmt.Errorf: a %w wrap keeps the kinds of its
// wrapped arguments; without %w the result is opaque.
func classifyErrorf(pkg *Package, call *ast.CallExpr,
	classify func(ast.Expr, int) (bool, bool, bool)) (bool, bool, bool) {
	if len(call.Args) == 0 {
		return false, false, true
	}
	lit, ok := ast.Unparen(call.Args[0]).(*ast.BasicLit)
	if !ok {
		return false, false, true
	}
	format, err := strconv.Unquote(lit.Value)
	if err != nil || !strings.Contains(format, "%w") {
		return false, false, true
	}
	var f, c, o bool
	for _, arg := range call.Args[1:] {
		af, ac, ao := classify(arg, 1)
		f, c, o = f || af, c || ac, o || ao
	}
	if !f && !c {
		return false, false, true // %w of something untyped
	}
	return f, c, o
}

func isPkgCall(pkg *Package, call *ast.CallExpr, path string) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return false
	}
	fn, ok := pkg.Info.Uses[sel.Sel].(*types.Func)
	return ok && fn.Pkg() != nil && fn.Pkg().Path() == path
}

func identObj(pkg *Package, id *ast.Ident) types.Object {
	if obj := pkg.Info.Defs[id]; obj != nil {
		return obj
	}
	return pkg.Info.Uses[id]
}

func isErrorType(t types.Type) bool {
	named, ok := t.(*types.Named)
	return ok && named.Obj().Pkg() == nil && named.Obj().Name() == "error"
}

// typeExprName extracts the bare type name from a composite literal type
// expression: T{} / pkg.T{} / &T{}.
func typeExprName(e ast.Expr) string {
	switch v := ast.Unparen(e).(type) {
	case *ast.Ident:
		return v.Name
	case *ast.SelectorExpr:
		return v.Sel.Name
	}
	return ""
}
