// Package detorder guards the engine's determinism contract: hit emission
// and stats aggregation must be byte-identical across runs and worker
// counts, so no function that can reach an emission or aggregation call may
// range over a map — Go randomizes map iteration order per run.
//
// Emission is detected two ways: calls to the known sinks (emitIDHits,
// withinRefine, Aggregate) and dynamic calls through function values whose
// signature is a visitor shape — func(Hit), func(int32), func(int, int32),
// or func(int, Hit) — since those are the callbacks hits flow through.
// Reachability is the transitive closure over the package-local static call
// graph; a map range anywhere in a reaching function is reported.
package detorder

import (
	"go/ast"
	"go/types"

	"neurospatial/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "detorder",
	Doc:  "no map iteration in any function that can reach hit emission or stats aggregation (order must be deterministic)",
	Run:  run,
}

// sinkNames are the package-local functions hits and stats funnel through.
var sinkNames = map[string]bool{
	"emitIDHits":   true,
	"withinRefine": true,
	"Aggregate":    true,
}

func run(pass *analysis.Pass) error {
	// Map every package-level function/method to its declaration.
	decls := map[*types.Func]*ast.FuncDecl{}
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fn, ok := d.(*ast.FuncDecl)
			if !ok || fn.Body == nil {
				continue
			}
			if obj, ok := pass.TypesInfo.Defs[fn.Name].(*types.Func); ok {
				decls[obj] = fn
			}
		}
	}

	// Seed: functions that emit directly. Edges: static same-package calls.
	reaches := map[*types.Func]bool{}
	edges := map[*types.Func][]*types.Func{}
	for obj, fn := range decls {
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok {
				return true
			}
			if callee := staticCallee(pass, call); callee != nil {
				if sinkNames[callee.Name()] || decls[callee] != nil {
					edges[obj] = append(edges[obj], callee)
				}
				if sinkNames[callee.Name()] {
					reaches[obj] = true
				}
				return true
			}
			if isVisitorCall(pass, call) {
				reaches[obj] = true
			}
			return true
		})
	}

	// Fixpoint: a caller of a reaching function reaches.
	for changed := true; changed; {
		changed = false
		for obj := range decls {
			if reaches[obj] {
				continue
			}
			for _, callee := range edges[obj] {
				if reaches[callee] {
					reaches[obj] = true
					changed = true
					break
				}
			}
		}
	}

	for obj, fn := range decls {
		if !reaches[obj] {
			continue
		}
		ast.Inspect(fn.Body, func(n ast.Node) bool {
			rng, ok := n.(*ast.RangeStmt)
			if !ok {
				return true
			}
			if tv, ok := pass.TypesInfo.Types[rng.X]; ok {
				if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
					pass.Reportf(rng.Pos(),
						"range over map in %s, which can reach hit emission/stats aggregation; "+
							"map order is randomized — iterate a sorted or slice-backed structure instead",
						obj.Name())
				}
			}
			return true
		})
	}
	return nil
}

// staticCallee resolves a call to a declared function or method, if the
// callee is a plain identifier or selector (not a function value).
func staticCallee(pass *analysis.Pass, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := call.Fun.(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		id = fun.Sel
	default:
		return nil
	}
	fn, _ := pass.TypesInfo.Uses[id].(*types.Func)
	return fn
}

// isVisitorCall reports whether call invokes a function *value* (parameter,
// field, variable) whose signature is one of the hit-visitor shapes.
func isVisitorCall(pass *analysis.Pass, call *ast.CallExpr) bool {
	if staticCallee(pass, call) != nil {
		return false
	}
	tv, ok := pass.TypesInfo.Types[call.Fun]
	if !ok {
		return false
	}
	sig, ok := tv.Type.Underlying().(*types.Signature)
	if !ok || sig.Variadic() || sig.Results().Len() > 0 {
		return false
	}
	p := sig.Params()
	switch p.Len() {
	case 1:
		return isHit(p.At(0).Type()) || isInt32(p.At(0).Type())
	case 2:
		return isInt(p.At(0).Type()) && (isHit(p.At(1).Type()) || isInt32(p.At(1).Type()))
	}
	return false
}

func isHit(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	_, isStruct := named.Underlying().(*types.Struct)
	return isStruct && named.Obj().Name() == "Hit"
}

func isInt32(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int32
}

func isInt(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Kind() == types.Int
}
