// Fixture for detorder: no map iteration on paths that reach emission.
package detfix

import "sort"

type Hit struct{ ID int32 }

// emitter invokes a hit visitor — a dynamic func(Hit) call, so every
// function that can reach emitter is order-sensitive.
func emitter(hits []Hit, visit func(Hit)) {
	for _, h := range hits {
		visit(h)
	}
}

// idEmitter is the func(int32) visitor shape.
func idEmitter(ids []int32, visit func(int32)) {
	for _, id := range ids {
		visit(id)
	}
}

// Aggregate mimics the engine's stats sink by name.
func Aggregate(stats []int) int {
	t := 0
	for _, s := range stats {
		t += s
	}
	return t
}

// --- non-flagging cases ---

// keysOf collects and sorts keys; it emits nothing, so ranging the map here
// is the sanctioned way to make callers deterministic.
func keysOf(byPage map[int][]Hit) []int {
	keys := make([]int, 0, len(byPage))
	for k := range byPage {
		keys = append(keys, k)
	}
	sort.Ints(keys)
	return keys
}

// goodDriver iterates the sorted key slice, not the map.
func goodDriver(byPage map[int][]Hit, visit func(Hit)) {
	for _, k := range keysOf(byPage) {
		emitter(byPage[k], visit)
	}
}

// tally never reaches emission; map order genuinely doesn't matter.
func tally(counts map[string]int) int {
	t := 0
	for _, v := range counts {
		t += v
	}
	return t
}

// frozenOrder documents a case where order provably cannot vary.
func frozenOrder(byPage map[int][]Hit, visit func(Hit)) {
	//lint:ignore detorder the map is built with exactly one entry two lines up
	for _, hs := range byPage {
		emitter(hs, visit)
	}
}

// --- flagging cases ---

// badDriver feeds the emitter straight out of map iteration.
func badDriver(byPage map[int][]Hit, visit func(Hit)) {
	for _, hs := range byPage { // want `range over map`
		emitter(hs, visit)
	}
}

// badIDDriver reaches emission through the func(int32) shape.
func badIDDriver(byPage map[int][]int32, visit func(int32)) {
	for _, ids := range byPage { // want `range over map`
		idEmitter(ids, visit)
	}
}

// statsMerge aggregates straight out of map iteration.
func statsMerge(cells map[string]int) int {
	t := 0
	for _, v := range cells { // want `range over map`
		t += v
	}
	return t + Aggregate(nil)
}

// transitive reaches emission two hops away.
func transitive(byPage map[int][]Hit, visit func(Hit)) {
	for _, hs := range byPage { // want `range over map`
		relay(hs, visit)
	}
}

func relay(hs []Hit, visit func(Hit)) {
	emitter(hs, visit)
}
