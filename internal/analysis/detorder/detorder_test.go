package detorder_test

import (
	"testing"

	"neurospatial/internal/analysis/antest"
	"neurospatial/internal/analysis/detorder"
)

func TestDetorderFixtures(t *testing.T) {
	antest.Run(t, "testdata/det", detorder.Analyzer)
}
