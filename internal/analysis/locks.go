package analysis

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
	"strings"
)

// LockInfo is one annotated mutex: a struct field of type sync.Mutex or
// sync.RWMutex carrying a directive comment
//
//	mu sync.Mutex //neurospatial:lock dataset.state noio < dataset.write
//
// Name is the module-wide lock name. NoIO marks a lock whose critical
// sections must not perform file I/O or fsync (the dataset state mutex:
// pointer swaps only). Before lists locks that must already be ordered
// before this one — each entry `< other` declares the edge other→name in
// the acquisition-order graph, and a cycle in the combined declared +
// observed graph is a lockorder finding.
type LockInfo struct {
	Name   string
	NoIO   bool
	Before []string // declared predecessors: they are acquired first
	Pos    token.Pos
	Pkg    *Package
}

// collectLocks scans pkg for //neurospatial:lock annotations on mutex-typed
// struct fields and registers them by field object and by name.
func (m *Module) collectLocks(pkg *Package) {
	for _, f := range pkg.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				info := parseLockDirective(field)
				if info == nil {
					continue
				}
				for _, name := range field.Names {
					obj := pkg.Info.Defs[name]
					if obj == nil || !isMutexType(obj.Type()) {
						continue
					}
					info.Pos = name.Pos()
					info.Pkg = pkg
					m.locks[obj] = info
					m.lockByName[info.Name] = info
				}
			}
			return true
		})
	}
}

// parseLockDirective reads a field's comments for the lock annotation.
func parseLockDirective(field *ast.Field) *LockInfo {
	for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
		if cg == nil {
			continue
		}
		for _, c := range cg.List {
			rest, ok := strings.CutPrefix(c.Text, "//neurospatial:lock ")
			if !ok {
				continue
			}
			fields := strings.Fields(rest)
			if len(fields) == 0 {
				continue
			}
			info := &LockInfo{Name: fields[0]}
			args := fields[1:]
			for len(args) > 0 {
				switch args[0] {
				case "noio":
					info.NoIO = true
					args = args[1:]
				case "<":
					if len(args) < 2 {
						args = nil
						break
					}
					info.Before = append(info.Before, args[1])
					args = args[2:]
				default:
					args = args[1:]
				}
			}
			return info
		}
	}
	return nil
}

func isMutexType(t types.Type) bool {
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	obj := named.Obj()
	return obj.Pkg() != nil && obj.Pkg().Path() == "sync" &&
		(obj.Name() == "Mutex" || obj.Name() == "RWMutex")
}

// LockOf resolves a mutex expression (the X of X.Lock()) to its annotation,
// or nil for unannotated mutexes. Resolution goes through the field object
// of the final selector, so any access path (d.mu, gx.probeMu, s.ds.mu)
// reaches the same LockInfo inside the declaring package.
func (m *Module) LockOf(pkg *Package, e ast.Expr) *LockInfo {
	sel, ok := ast.Unparen(e).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	if s, ok := pkg.Info.Selections[sel]; ok {
		return m.locks[s.Obj()]
	}
	return m.locks[pkg.Info.Uses[sel.Sel]]
}

// LockByName returns the annotation registered under name, or nil.
func (m *Module) LockByName(name string) *LockInfo { return m.lockByName[name] }

// Locks lists every annotated mutex in the module, sorted by name.
func (m *Module) Locks() []*LockInfo {
	out := make([]*LockInfo, 0, len(m.lockByName))
	for _, info := range m.lockByName {
		out = append(out, info)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// LockCall classifies a call expression as a lock or unlock of an annotated
// mutex. acquired is true for Lock/RLock, false for Unlock/RUnlock.
func (m *Module) LockCall(pkg *Package, call *ast.CallExpr) (info *LockInfo, acquired, ok bool) {
	sel, isSel := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !isSel {
		return nil, false, false
	}
	switch sel.Sel.Name {
	case "Lock", "RLock":
		acquired = true
	case "Unlock", "RUnlock":
		acquired = false
	default:
		return nil, false, false
	}
	info = m.LockOf(pkg, sel.X)
	if info == nil {
		return nil, false, false
	}
	return info, acquired, true
}
