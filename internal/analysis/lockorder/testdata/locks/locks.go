// Fixture for lockorder: annotated mutex ordering, reentrancy, and noio
// critical sections.
package lockfix

import (
	"os"
	"sync"
)

type store struct {
	writeMu sync.Mutex   //neurospatial:lock fix.write
	mu      sync.Mutex   //neurospatial:lock fix.state noio < fix.write
	ro      sync.RWMutex //neurospatial:lock fix.index
	cur     int
	path    string
}

// bump is a helper whose summary records that it acquires fix.state.
func (s *store) bump() {
	s.mu.Lock()
	s.cur++
	s.mu.Unlock()
}

// flush is a helper whose summary carries an I/O effect.
func (s *store) flush(data []byte) error {
	return os.WriteFile(s.path, data, 0o644)
}

// --- non-flagging cases ---

// properOrder follows the declared order: fix.write before fix.state.
func (s *store) properOrder() {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	s.mu.Lock()
	s.cur++
	s.mu.Unlock()
}

// ioOutside performs the write before entering the noio section.
func (s *store) ioOutside(data []byte) error {
	if err := s.flush(data); err != nil {
		return err
	}
	s.mu.Lock()
	s.cur++
	s.mu.Unlock()
	return nil
}

// ioUnderWriteMu: fix.write is not noio, so I/O under it is the point.
func (s *store) ioUnderWriteMu(data []byte) error {
	s.writeMu.Lock()
	defer s.writeMu.Unlock()
	return s.flush(data)
}

// rlockAgain reacquires a read lock after releasing it.
func (s *store) rlockAgain() int {
	s.ro.RLock()
	n := s.cur
	s.ro.RUnlock()
	s.ro.RLock()
	n += s.cur
	s.ro.RUnlock()
	return n
}

// branchUnlock releases on both paths; neither continues holding.
func (s *store) branchUnlock(b bool) {
	s.mu.Lock()
	if b {
		s.cur++
		s.mu.Unlock()
		return
	}
	s.mu.Unlock()
	s.flush(nil)
}

// reenterIgnored documents a deliberate violation; the escape hatch names
// the reason.
func (s *store) reenterIgnored() {
	s.mu.Lock()
	//lint:ignore lockorder deliberate double-lock to exercise deadlock detector
	s.mu.Lock()
	s.cur += 2
	s.mu.Unlock()
	s.mu.Unlock()
}

// --- flagging cases ---

// inverted acquires fix.write while holding fix.state, against the
// declared order.
func (s *store) inverted() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.writeMu.Lock() // want `lock order violation`
	defer s.writeMu.Unlock()
	s.cur++
}

// reenter double-locks the same mutex on one path.
func (s *store) reenter() {
	s.mu.Lock()
	s.mu.Lock() // want `not reentrant`
	s.cur += 2
	s.mu.Unlock()
	s.mu.Unlock()
}

// reenterViaHelper deadlocks through a callee that acquires the held lock.
func (s *store) reenterViaHelper() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.bump() // want `self-deadlocks`
}

// ioUnderStateMu performs file I/O directly inside the noio section.
func (s *store) ioUnderStateMu(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return os.WriteFile(s.path, data, 0o644) // want `noio`
}

// ioViaHelper reaches the I/O through a callee's summary effects.
func (s *store) ioViaHelper(data []byte) error {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.flush(data) // want `noio`
}
