// Package lockorder enforces the module's mutex discipline over annotated
// locks. A struct field of type sync.Mutex/sync.RWMutex carrying
//
//	//neurospatial:lock <name> [noio] [< <other>]...
//
// joins the module-wide lock-acquisition graph: each `< other` declares
// that other is acquired before this lock. The analyzer walks every
// function's CFG with the set of held locks and checks three invariants:
//
//  1. Order: an observed acquisition held→acquired that closes a cycle in
//     the combined declared + observed graph is a deadlock candidate.
//  2. Re-entry: Lock on a mutex already held — directly or by calling a
//     function whose summary says it acquires the same lock — self-deadlocks
//     (Go mutexes are not reentrant).
//  3. noio: a lock marked noio bounds a critical section that must not
//     perform file I/O or fsync; any call with an I/O effect (direct or via
//     callee summaries) while such a lock is held is a finding.
//
// Lock identity resolves through field objects, so per-package analysis
// covers direct Lock/Unlock sites; callee lock sets from function
// summaries supply the interprocedural edges.
package lockorder

import (
	"go/ast"
	"go/token"
	"sort"
	"strings"

	"neurospatial/internal/analysis"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockorder",
	Doc: "annotated mutexes (//neurospatial:lock) must be acquired in a consistent order, " +
		"never re-entered, and noio locks must not guard file I/O or fsync",
	Run: run,
}

const ioEffects = analysis.EffIO | analysis.EffFsync | analysis.EffDirFsync

type edge struct {
	from, to string
	pos      token.Pos
}

func run(pass *analysis.Pass) error {
	c := &checker{pass: pass, edgeSeen: map[[2]string]bool{}, reported: map[token.Pos]bool{}}
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch fn := n.(type) {
			case *ast.FuncDecl:
				if fn.Body != nil {
					c.checkFunc(fn.Body)
				}
			case *ast.FuncLit:
				c.checkFunc(fn.Body)
			}
			return true
		})
	}
	c.checkCycles()
	return nil
}

type checker struct {
	pass     *analysis.Pass
	observed []edge
	edgeSeen map[[2]string]bool
	reported map[token.Pos]bool
}

func (c *checker) checkFunc(body *ast.BlockStmt) {
	g := analysis.BuildCFG(body)
	if g.Unsupported {
		return
	}
	// visited keys each block by the held-set signature it was entered
	// with, so loops terminate while distinct lock contexts still walk.
	visited := map[*analysis.Block]map[string]bool{}
	var walk func(b *analysis.Block, held map[string]bool)
	walk = func(b *analysis.Block, held map[string]bool) {
		sig := heldSig(held)
		if visited[b] == nil {
			visited[b] = map[string]bool{}
		}
		if visited[b][sig] {
			return
		}
		visited[b][sig] = true
		held = copySet(held)
		for _, n := range b.Nodes {
			if d, ok := n.(*ast.DeferStmt); ok {
				// defer mu.Unlock() keeps the lock held to function end —
				// exactly how the walk already models an un-removed lock —
				// and a deferred release is never an in-section operation.
				_ = d
				continue
			}
			c.visitCalls(n, held)
		}
		for _, s := range b.Succs {
			walk(s, held)
		}
	}
	walk(g.Entry, map[string]bool{})
}

// visitCalls processes every call under n in source order, updating held.
func (c *checker) visitCalls(n ast.Node, held map[string]bool) {
	mod, pkg := c.pass.Module, c.pass.Package
	ast.Inspect(n, func(m ast.Node) bool {
		if _, ok := m.(*ast.FuncLit); ok {
			return false // literals walk separately, with their own held set
		}
		call, ok := m.(*ast.CallExpr)
		if !ok {
			return true
		}
		if info, acquired, ok := mod.LockCall(pkg, call); ok {
			if acquired {
				c.acquire(call, info, held)
			} else {
				delete(held, info.Name)
			}
			return true
		}
		if len(held) == 0 {
			return true
		}
		merged := mod.MergedCallSummary(pkg, call)
		// Interprocedural edges and re-entry through callee lock sets.
		if merged != nil {
			var names []string
			for l := range merged.Locks {
				names = append(names, l)
			}
			sort.Strings(names)
			for _, l := range names {
				if held[l] {
					c.reportOnce(call.Pos(),
						"calling %s while holding %s: the callee acquires %s again and self-deadlocks",
						analysis.CalleeName(call), l, l)
					continue
				}
				for h := range held {
					c.observe(h, l, call.Pos())
				}
			}
		}
		// noio critical sections.
		eff := analysis.DirectCallEffects(pkg, call, nil)
		if merged != nil {
			eff |= merged.Effects
		}
		if eff&ioEffects != 0 {
			for h := range held {
				li := mod.LockByName(h)
				if li != nil && li.NoIO {
					c.reportOnce(call.Pos(),
						"%s performs file I/O while %s is held; %s is noio — move the I/O outside the critical section",
						analysis.CalleeName(call), h, h)
				}
			}
		}
		return true
	})
}

func (c *checker) acquire(call *ast.CallExpr, info *analysis.LockInfo, held map[string]bool) {
	rlock := false
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		rlock = sel.Sel.Name == "RLock"
	}
	if held[info.Name] && !rlock {
		c.reportOnce(call.Pos(), "%s is locked while already held: Go mutexes are not reentrant", info.Name)
	}
	for h := range held {
		if h != info.Name {
			c.observe(h, info.Name, call.Pos())
		}
	}
	held[info.Name] = true
}

func (c *checker) observe(from, to string, pos token.Pos) {
	key := [2]string{from, to}
	if c.edgeSeen[key] {
		return
	}
	c.edgeSeen[key] = true
	c.observed = append(c.observed, edge{from: from, to: to, pos: pos})
}

// checkCycles builds the combined declared + observed graph and reports
// each observed edge that closes a cycle, plus declared-order cycles at
// their annotation sites (only for locks declared in this package, so
// multi-package runs report once).
func (c *checker) checkCycles() {
	mod := c.pass.Module
	adj := map[string][]string{}
	addEdge := func(from, to string) { adj[from] = append(adj[from], to) }
	for _, li := range mod.Locks() {
		for _, before := range li.Before {
			addEdge(before, li.Name)
		}
	}
	declared := copyAdj(adj)
	for _, e := range c.observed {
		addEdge(e.from, e.to)
	}
	for _, e := range c.observed {
		if reachable(declared, e.from, e.to) {
			continue // the annotations sanction this direction
		}
		if reachable(adj, e.to, e.from) {
			c.reportOnce(e.pos,
				"lock order violation: %s acquired while holding %s, but the lock graph orders %s before %s",
				e.to, e.from, e.to, e.from)
		}
	}
	for _, li := range mod.Locks() {
		if li.Pkg == c.pass.Package && reachable(declared, li.Name, li.Name) {
			c.reportOnce(li.Pos,
				"declared lock order for %s is cyclic: fix the `<` annotations", li.Name)
		}
	}
}

func reachable(adj map[string][]string, from, to string) bool {
	seen := map[string]bool{}
	var dfs func(n string) bool
	dfs = func(n string) bool {
		for _, next := range adj[n] {
			if next == to {
				return true
			}
			if !seen[next] {
				seen[next] = true
				if dfs(next) {
					return true
				}
			}
		}
		return false
	}
	return dfs(from)
}

func (c *checker) reportOnce(pos token.Pos, format string, args ...any) {
	if c.reported[pos] {
		return
	}
	c.reported[pos] = true
	c.pass.Reportf(pos, format, args...)
}

func heldSig(held map[string]bool) string {
	if len(held) == 0 {
		return ""
	}
	names := make([]string, 0, len(held))
	for n := range held {
		names = append(names, n)
	}
	sort.Strings(names)
	return strings.Join(names, ",")
}

func copySet(m map[string]bool) map[string]bool {
	out := make(map[string]bool, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func copyAdj(adj map[string][]string) map[string][]string {
	out := make(map[string][]string, len(adj))
	for k, v := range adj {
		out[k] = append([]string(nil), v...)
	}
	return out
}
