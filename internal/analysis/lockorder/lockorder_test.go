package lockorder_test

import (
	"testing"

	"neurospatial/internal/analysis/antest"
	"neurospatial/internal/analysis/lockorder"
)

func TestLockorderFixtures(t *testing.T) {
	antest.Run(t, "testdata/locks", lockorder.Analyzer)
}
