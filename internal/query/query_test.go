package query

import (
	"math"
	"testing"

	"neurospatial/internal/geom"
)

func TestWalkthroughValidation(t *testing.T) {
	path := []geom.Vec{geom.V(0, 0, 0), geom.V(10, 0, 0)}
	if _, err := Walkthrough(path[:1], 1, 1); err == nil {
		t.Error("single-point path accepted")
	}
	if _, err := Walkthrough(path, 0, 1); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := Walkthrough(path, 1, -1); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestWalkthroughStraightLine(t *testing.T) {
	path := []geom.Vec{geom.V(0, 0, 0), geom.V(10, 0, 0)}
	seq, err := Walkthrough(path, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Samples at 0,2,4,6,8,10.
	if seq.Len() != 6 {
		t.Fatalf("steps = %d, want 6", seq.Len())
	}
	for i, st := range seq.Steps {
		want := geom.V(float64(i)*2, 0, 0)
		if st.Center.Dist(want) > 1e-9 {
			t.Errorf("step %d center %v, want %v", i, st.Center, want)
		}
		if st.Box != geom.BoxAround(want, 3) {
			t.Errorf("step %d box wrong", i)
		}
	}
	if seq.Radius != 3 {
		t.Errorf("radius = %v", seq.Radius)
	}
}

func TestWalkthroughMultiSegment(t *testing.T) {
	// L-shaped path, total length 20.
	path := []geom.Vec{geom.V(0, 0, 0), geom.V(10, 0, 0), geom.V(10, 10, 0)}
	seq, err := Walkthrough(path, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Strides at arc lengths 0,3,6,9,12,15,18 plus the tip at 20.
	if seq.Len() != 8 {
		t.Fatalf("steps = %d, want 8", seq.Len())
	}
	// Consecutive samples are exactly stride apart in arc length, which for
	// straight runs bounds the chord distance by the stride.
	for i := 0; i+1 < seq.Len()-1; i++ {
		d := seq.Steps[i].Center.Dist(seq.Steps[i+1].Center)
		if d > 3+1e-9 {
			t.Errorf("step %d->%d chord %v exceeds stride", i, i+1, d)
		}
	}
	// Last step is the path tip.
	if seq.Steps[seq.Len()-1].Center != geom.V(10, 10, 0) {
		t.Error("walkthrough does not reach the tip")
	}
	// All centers lie on the path.
	for i, st := range seq.Steps {
		if distToPath(st.Center, path) > 1e-9 {
			t.Errorf("step %d center %v off path", i, st.Center)
		}
	}
}

func distToPath(p geom.Vec, path []geom.Vec) float64 {
	best := math.Inf(1)
	for i := 0; i+1 < len(path); i++ {
		s := geom.Seg(path[i], path[i+1], 0)
		t := s.ClosestPointParam(p)
		if d := s.PointAt(t).Dist(p); d < best {
			best = d
		}
	}
	return best
}

func TestWalkthroughZeroLengthSegments(t *testing.T) {
	path := []geom.Vec{geom.V(0, 0, 0), geom.V(0, 0, 0), geom.V(4, 0, 0)}
	seq, err := Walkthrough(path, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 5 {
		t.Fatalf("steps = %d, want 5", seq.Len())
	}
}

func TestWalkthroughStrideLongerThanPath(t *testing.T) {
	path := []geom.Vec{geom.V(0, 0, 0), geom.V(1, 0, 0)}
	seq, err := Walkthrough(path, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Start plus tip.
	if seq.Len() != 2 {
		t.Fatalf("steps = %d, want 2", seq.Len())
	}
}

func TestPathLength(t *testing.T) {
	path := []geom.Vec{geom.V(0, 0, 0), geom.V(3, 0, 0), geom.V(3, 4, 0)}
	if got := PathLength(path); got != 7 {
		t.Errorf("PathLength = %v", got)
	}
	if PathLength(nil) != 0 || PathLength(path[:1]) != 0 {
		t.Error("degenerate path lengths wrong")
	}
}
