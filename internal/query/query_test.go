package query

import (
	"math"
	"math/rand"
	"testing"

	"neurospatial/internal/geom"
)

func TestWalkthroughValidation(t *testing.T) {
	path := []geom.Vec{geom.V(0, 0, 0), geom.V(10, 0, 0)}
	if _, err := Walkthrough(path[:1], 1, 1); err == nil {
		t.Error("single-point path accepted")
	}
	if _, err := Walkthrough(path, 0, 1); err == nil {
		t.Error("zero stride accepted")
	}
	if _, err := Walkthrough(path, 1, -1); err == nil {
		t.Error("negative radius accepted")
	}
}

func TestWalkthroughStraightLine(t *testing.T) {
	path := []geom.Vec{geom.V(0, 0, 0), geom.V(10, 0, 0)}
	seq, err := Walkthrough(path, 2, 3)
	if err != nil {
		t.Fatal(err)
	}
	// Samples at 0,2,4,6,8,10.
	if seq.Len() != 6 {
		t.Fatalf("steps = %d, want 6", seq.Len())
	}
	for i, st := range seq.Steps {
		want := geom.V(float64(i)*2, 0, 0)
		if st.Center.Dist(want) > 1e-9 {
			t.Errorf("step %d center %v, want %v", i, st.Center, want)
		}
		if st.Box != geom.BoxAround(want, 3) {
			t.Errorf("step %d box wrong", i)
		}
	}
	if seq.Radius != 3 {
		t.Errorf("radius = %v", seq.Radius)
	}
}

func TestWalkthroughMultiSegment(t *testing.T) {
	// L-shaped path, total length 20.
	path := []geom.Vec{geom.V(0, 0, 0), geom.V(10, 0, 0), geom.V(10, 10, 0)}
	seq, err := Walkthrough(path, 3, 2)
	if err != nil {
		t.Fatal(err)
	}
	// Strides at arc lengths 0,3,6,9,12,15,18 plus the tip at 20.
	if seq.Len() != 8 {
		t.Fatalf("steps = %d, want 8", seq.Len())
	}
	// Consecutive samples are exactly stride apart in arc length, which for
	// straight runs bounds the chord distance by the stride.
	for i := 0; i+1 < seq.Len()-1; i++ {
		d := seq.Steps[i].Center.Dist(seq.Steps[i+1].Center)
		if d > 3+1e-9 {
			t.Errorf("step %d->%d chord %v exceeds stride", i, i+1, d)
		}
	}
	// Last step is the path tip.
	if seq.Steps[seq.Len()-1].Center != geom.V(10, 10, 0) {
		t.Error("walkthrough does not reach the tip")
	}
	// All centers lie on the path.
	for i, st := range seq.Steps {
		if distToPath(st.Center, path) > 1e-9 {
			t.Errorf("step %d center %v off path", i, st.Center)
		}
	}
}

func distToPath(p geom.Vec, path []geom.Vec) float64 {
	best := math.Inf(1)
	for i := 0; i+1 < len(path); i++ {
		s := geom.Seg(path[i], path[i+1], 0)
		t := s.ClosestPointParam(p)
		if d := s.PointAt(t).Dist(p); d < best {
			best = d
		}
	}
	return best
}

func TestWalkthroughZeroLengthSegments(t *testing.T) {
	path := []geom.Vec{geom.V(0, 0, 0), geom.V(0, 0, 0), geom.V(4, 0, 0)}
	seq, err := Walkthrough(path, 1, 1)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 5 {
		t.Fatalf("steps = %d, want 5", seq.Len())
	}
}

func TestWalkthroughStrideLongerThanPath(t *testing.T) {
	path := []geom.Vec{geom.V(0, 0, 0), geom.V(1, 0, 0)}
	seq, err := Walkthrough(path, 100, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Start plus tip.
	if seq.Len() != 2 {
		t.Fatalf("steps = %d, want 2", seq.Len())
	}
}

func TestWalkthroughDuplicateConsecutivePoints(t *testing.T) {
	// Duplicates at the start, in the middle and at the tip: the zero-length
	// segments must be skipped without stalling the arc-length accumulator
	// or emitting duplicate steps.
	path := []geom.Vec{
		geom.V(0, 0, 0), geom.V(0, 0, 0),
		geom.V(2, 0, 0), geom.V(2, 0, 0),
		geom.V(5, 0, 0), geom.V(5, 0, 0),
	}
	seq, err := Walkthrough(path, 2, 1)
	if err != nil {
		t.Fatal(err)
	}
	// Arc length 5, stride 2: samples at 0, 2, 4 plus the tip at 5.
	if seq.Len() != 4 {
		t.Fatalf("steps = %d, want 4", seq.Len())
	}
	for i := 0; i+1 < seq.Len(); i++ {
		if seq.Steps[i].Center.Dist(seq.Steps[i+1].Center) < 1e-12 {
			t.Errorf("steps %d and %d are duplicates at %v", i, i+1, seq.Steps[i].Center)
		}
	}
	if tip := seq.Steps[seq.Len()-1].Center; tip != geom.V(5, 0, 0) {
		t.Errorf("tip step at %v, want (5,0,0)", tip)
	}
}

func TestWalkthroughStrideExceedsWholePath(t *testing.T) {
	// A stride longer than the entire arc length must still cover the path:
	// the start step plus the tip step, never zero or one.
	path := []geom.Vec{geom.V(0, 0, 0), geom.V(1, 1, 0), geom.V(2, 0, 0)}
	seq, err := Walkthrough(path, 1000, 0.5)
	if err != nil {
		t.Fatal(err)
	}
	if seq.Len() != 2 {
		t.Fatalf("steps = %d, want 2 (start + tip)", seq.Len())
	}
	if seq.Steps[0].Center != path[0] || seq.Steps[1].Center != path[len(path)-1] {
		t.Errorf("steps at %v and %v, want path start and tip",
			seq.Steps[0].Center, seq.Steps[1].Center)
	}
}

// TestWalkthroughStepCountProperty is the satellite property test: on random
// jagged paths the emitted step count must match PathLength/stride within
// ±1 of the exact sampling count floor(L/stride)+1 (the +1 is the start
// step; the tip step accounts for the one-sided slack).
func TestWalkthroughStepCountProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 200; trial++ {
		n := 2 + rng.Intn(12)
		path := make([]geom.Vec, n)
		cur := geom.V(0, 0, 0)
		for i := range path {
			path[i] = cur
			step := geom.V(rng.Float64()*20-10, rng.Float64()*20-10, rng.Float64()*20-10)
			if rng.Intn(5) == 0 {
				step = geom.V(0, 0, 0) // inject duplicate consecutive points
			}
			cur = cur.Add(step)
		}
		l := PathLength(path)
		if l == 0 {
			continue // fully degenerate path; Walkthrough rejects radius-only input elsewhere
		}
		stride := 0.5 + rng.Float64()*2*l // spans sub-stride to stride >> L
		seq, err := Walkthrough(path, stride, 1)
		if err != nil {
			t.Fatal(err)
		}
		exact := math.Floor(l/stride) + 1
		if diff := math.Abs(float64(seq.Len()) - exact); diff > 1 {
			t.Fatalf("trial %d: %d steps for L=%v stride=%v, want %v±1",
				trial, seq.Len(), l, stride, exact)
		}
	}
}

func TestPathLength(t *testing.T) {
	path := []geom.Vec{geom.V(0, 0, 0), geom.V(3, 0, 0), geom.V(3, 4, 0)}
	if got := PathLength(path); got != 7 {
		t.Errorf("PathLength = %v", got)
	}
	if PathLength(nil) != 0 || PathLength(path[:1]) != 0 {
		t.Error("degenerate path lengths wrong")
	}
}
