// Package query models the interactive spatial range-query *sequences* of §3
// of the paper: a scientist follows a structure (a neuron branch, an artery,
// an airway) through the model, issuing a range query around each successive
// point of interest, inspecting the result, then moving on.
//
// The demo's "user" walking through the model is replaced here (per the
// substitution table in DESIGN.md) by scripted walkthroughs along
// ground-truth branch paths from the circuit generator: the trajectory is an
// actual jagged neurite path, which is precisely the input that defeats
// location-only prefetchers and motivates SCOUT.
package query

import (
	"fmt"

	"neurospatial/internal/geom"
)

// Step is one query of a moving sequence.
type Step struct {
	// Center is the query's center, a point on the followed trajectory.
	Center geom.Vec
	// Box is the cubic range query around Center.
	Box geom.AABB
}

// Sequence is an ordered list of range queries along a trajectory.
type Sequence struct {
	// Steps holds the queries in execution order.
	Steps []Step
	// Radius is the half-extent used for every query box.
	Radius float64
}

// Len returns the number of steps.
func (s *Sequence) Len() int { return len(s.Steps) }

// Walkthrough builds the query sequence a user following the given polyline
// path generates: the path is resampled at arc-length intervals of stride and
// a cubic range query of half-extent radius is issued at each sample. This is
// the §3 workload: "at every step they retrieve the surroundings of the
// branch at a particular point and visualize it".
func Walkthrough(path []geom.Vec, stride, radius float64) (*Sequence, error) {
	if len(path) < 2 {
		return nil, fmt.Errorf("query: walkthrough path needs >= 2 points, got %d", len(path))
	}
	if stride <= 0 {
		return nil, fmt.Errorf("query: stride must be positive, got %v", stride)
	}
	if radius <= 0 {
		return nil, fmt.Errorf("query: radius must be positive, got %v", radius)
	}
	seq := &Sequence{Radius: radius}
	emit := func(p geom.Vec) {
		seq.Steps = append(seq.Steps, Step{Center: p, Box: geom.BoxAround(p, radius)})
	}
	emit(path[0])
	carried := 0.0 // distance already covered toward the next sample
	for i := 0; i+1 < len(path); i++ {
		a, b := path[i], path[i+1]
		segLen := a.Dist(b)
		if segLen == 0 {
			continue
		}
		// Emit samples on this segment at global arc-length multiples of
		// stride.
		for carried+segLen >= stride {
			t := (stride - carried) / segLen
			p := a.Lerp(b, t)
			emit(p)
			a = p
			segLen = a.Dist(b)
			carried = 0
		}
		carried += segLen
	}
	// Always include the path end so the walkthrough reaches the tip.
	last := seq.Steps[len(seq.Steps)-1].Center
	tip := path[len(path)-1]
	if last.Dist(tip) > 1e-9 {
		emit(tip)
	}
	return seq, nil
}

// PathLength returns the arc length of a polyline.
func PathLength(path []geom.Vec) float64 {
	var l float64
	for i := 0; i+1 < len(path); i++ {
		l += path[i].Dist(path[i+1])
	}
	return l
}
