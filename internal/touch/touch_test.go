package touch

import (
	"math/rand"
	"testing"

	"neurospatial/internal/circuit"
	"neurospatial/internal/geom"
	"neurospatial/internal/join"
)

func randObjects(rng *rand.Rand, n int, extent float64) []join.Object {
	out := make([]join.Object, n)
	for i := range out {
		a := geom.V(rng.Float64()*extent, rng.Float64()*extent, rng.Float64()*extent)
		dir := geom.V(rng.NormFloat64(), rng.NormFloat64(), rng.NormFloat64()).
			Normalize().Scale(rng.Float64()*extent/20 + 0.1)
		out[i] = join.Make(int32(i), geom.Seg(a, a.Add(dir), rng.Float64()*0.3+0.05))
	}
	return out
}

func oracle(a, b []join.Object, eps float64) map[join.Pair]bool {
	out := make(map[join.Pair]bool)
	for i := range a {
		for j := range b {
			if a[i].Seg.WithinDist(b[j].Seg, eps) {
				out[join.Pair{A: a[i].ID, B: b[j].ID}] = true
			}
		}
	}
	return out
}

func checkAgainstOracle(t *testing.T, alg join.Algorithm, a, b []join.Object, eps float64) join.Stats {
	t.Helper()
	want := oracle(a, b, eps)
	got := make(map[join.Pair]int)
	st := alg.Join(a, b, eps, func(p join.Pair) { got[p]++ })
	for p, n := range got {
		if n != 1 {
			t.Fatalf("pair %v emitted %d times", p, n)
		}
		if !want[p] {
			t.Fatalf("spurious pair %v", p)
		}
	}
	for p := range want {
		if got[p] == 0 {
			t.Fatalf("missed pair %v", p)
		}
	}
	return st
}

func TestMatchesOracleRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(81))
	a := randObjects(rng, 350, 20)
	b := randObjects(rng, 320, 20)
	for _, eps := range []float64{0, 0.2, 1, 3} {
		checkAgainstOracle(t, New(), a, b, eps)
	}
}

func TestMatchesOracleOnNeuronData(t *testing.T) {
	// The real workload: synapse candidates between two half-circuits.
	p := circuit.DefaultParams()
	p.Neurons = 6
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(150, 150, 150))
	c := circuit.MustBuild(p)
	var a, b []join.Object
	for _, e := range c.Elements {
		o := join.Make(e.ID, e.Shape)
		if e.Neuron%2 == 0 {
			a = append(a, o)
		} else {
			b = append(b, o)
		}
	}
	// Cap sizes to keep the O(n²) oracle fast.
	if len(a) > 800 {
		a = a[:800]
	}
	if len(b) > 800 {
		b = b[:800]
	}
	st := checkAgainstOracle(t, New(), a, b, 1.0)
	if st.Results == 0 {
		t.Fatal("no synapse candidates found — workload degenerate")
	}
}

func TestEmptyInputs(t *testing.T) {
	rng := rand.New(rand.NewSource(82))
	a := randObjects(rng, 20, 5)
	st := New().Join(nil, a, 1, func(join.Pair) { t.Fatal("emitted on empty A") })
	if st.Results != 0 {
		t.Fatal("results on empty A")
	}
	st = New().Join(a, nil, 1, func(join.Pair) { t.Fatal("emitted on empty B") })
	if st.Results != 0 {
		t.Fatal("results on empty B")
	}
}

func TestFilteringDropsFarObjects(t *testing.T) {
	rng := rand.New(rand.NewSource(83))
	a := randObjects(rng, 200, 10)
	// B objects in a distant shell: all fall into empty space.
	b := randObjects(rng, 200, 10)
	for i := range b {
		b[i].Seg.A = b[i].Seg.A.Add(geom.V(500, 500, 500))
		b[i].Seg.B = b[i].Seg.B.Add(geom.V(500, 500, 500))
		b[i].Box = b[i].Seg.Bounds()
	}
	st := New().Join(a, b, 1, func(join.Pair) { t.Fatal("pair across gap") })
	if st.Comparisons != 0 {
		t.Errorf("filtering failed: %d comparisons", st.Comparisons)
	}
	// Filtered objects never reach a bucket, so probing does no node work
	// beyond the root tests.
	if st.NodePairs != 0 {
		t.Errorf("probe ran for filtered objects: %d node visits", st.NodePairs)
	}
}

func TestFewerComparisonsThanNestedLoop(t *testing.T) {
	rng := rand.New(rand.NewSource(84))
	a := randObjects(rng, 600, 25)
	b := randObjects(rng, 600, 25)
	eps := 0.3
	nl := join.NestedLoop{}.Join(a, b, eps, func(join.Pair) {})
	tc := New().Join(a, b, eps, func(join.Pair) {})
	if tc.Results != nl.Results {
		t.Fatalf("TOUCH results %d != NL %d", tc.Results, nl.Results)
	}
	if tc.Comparisons*10 > nl.Comparisons && nl.Comparisons > 1000 {
		t.Errorf("TOUCH comparisons not much lower: %d vs %d", tc.Comparisons, nl.Comparisons)
	}
	if tc.BoxTests >= nl.BoxTests {
		t.Errorf("TOUCH box tests not lower: %d vs %d", tc.BoxTests, nl.BoxTests)
	}
}

func TestNoReplicationMemory(t *testing.T) {
	rng := rand.New(rand.NewSource(85))
	a := randObjects(rng, 1000, 20)
	b := randObjects(rng, 1000, 20)
	eps := 0.5
	tc := New().Join(a, b, eps, func(join.Pair) {})
	// Upper bound: tree entries (~1.5 per A object at ~52 bytes) plus one
	// 4-byte bucket slot per B object.
	bound := int64(len(a))*52*3/2 + int64(len(b))*4
	if tc.ExtraBytes > bound {
		t.Errorf("memory above no-replication bound: %d > %d", tc.ExtraBytes, bound)
	}
}

func TestMaxAssignDepthAblation(t *testing.T) {
	rng := rand.New(rand.NewSource(86))
	a := randObjects(rng, 500, 20)
	b := randObjects(rng, 500, 20)
	eps := 0.4
	deep := New().Join(a, b, eps, func(join.Pair) {})
	shallow := (&Touch{Opts: Options{MaxAssignDepth: 1}}).Join(a, b, eps, func(join.Pair) {})
	if deep.Results != shallow.Results {
		t.Fatalf("depth cap changed results: %d vs %d", deep.Results, shallow.Results)
	}
	// Shallow assignment probes bigger subtrees: more node visits.
	if shallow.NodePairs < deep.NodePairs {
		t.Errorf("expected shallow assignment to visit more nodes: %d vs %d",
			shallow.NodePairs, deep.NodePairs)
	}
}

func TestCustomFanout(t *testing.T) {
	rng := rand.New(rand.NewSource(87))
	a := randObjects(rng, 300, 15)
	b := randObjects(rng, 300, 15)
	for _, fanout := range []int{4, 8, 64} {
		alg := &Touch{Opts: Options{Fanout: fanout}}
		checkAgainstOracle(t, alg, a, b, 0.4)
	}
}

func TestName(t *testing.T) {
	if New().Name() != "TOUCH" {
		t.Error("name wrong")
	}
}

func TestParallelProbeMatchesSerial(t *testing.T) {
	rng := rand.New(rand.NewSource(88))
	a := randObjects(rng, 700, 25)
	b := randObjects(rng, 700, 25)
	eps := 0.4
	serial := New()
	want := make(map[join.Pair]int)
	sst := serial.Join(a, b, eps, func(p join.Pair) { want[p]++ })
	for _, workers := range []int{2, 4, 7} {
		alg := &Touch{Opts: Options{Workers: workers}}
		got := make(map[join.Pair]int)
		pst := alg.Join(a, b, eps, func(p join.Pair) { got[p]++ })
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d pairs, serial %d", workers, len(got), len(want))
		}
		for p, n := range got {
			if n != 1 || want[p] != 1 {
				t.Fatalf("workers=%d: pair %v emitted %d times", workers, p, n)
			}
		}
		// Counters are preserved across the parallel merge.
		if pst.Results != sst.Results || pst.Comparisons != sst.Comparisons {
			t.Fatalf("workers=%d: stats diverge: %+v vs %+v", workers, pst, sst)
		}
	}
}

func TestParallelDeterministicOrder(t *testing.T) {
	rng := rand.New(rand.NewSource(89))
	a := randObjects(rng, 400, 20)
	b := randObjects(rng, 400, 20)
	alg := &Touch{Opts: Options{Workers: 3}}
	var run1, run2 []join.Pair
	alg.Join(a, b, 0.4, func(p join.Pair) { run1 = append(run1, p) })
	alg.Join(a, b, 0.4, func(p join.Pair) { run2 = append(run2, p) })
	if len(run1) != len(run2) {
		t.Fatal("run lengths differ")
	}
	for i := range run1 {
		if run1[i] != run2[i] {
			t.Fatalf("emission order differs at %d", i)
		}
	}
}
