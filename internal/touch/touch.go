// Package touch implements TOUCH (Nobari et al., SIGMOD'13), the in-memory
// spatial distance join §4 of the demonstrated paper presents for synapse
// placement.
//
// TOUCH is designed "radically different than known approaches in that it
// avoids space-oriented partitioning and thus also avoids element
// replication" (§4.1). It proceeds in two phases:
//
//  1. Data-oriented partitioning: dataset A is STR-packed into an R-tree
//     hierarchy. Packing the elements tightly "opens up empty space between
//     partitions" — regions covered by no node MBR.
//  2. Hierarchical assignment: each object of B descends from the root
//     toward the single deepest node whose subtree could contain join
//     partners. If, at some node, *no* child MBR (expanded by the join
//     distance eps) intersects the object, the object falls into empty space
//     and is filtered out entirely — by definition no A element can be close
//     enough. If exactly one child matches, the object descends. If several
//     match, it is assigned to the current node's bucket.
//
// The probe phase then joins each bucket against only the subtree below its
// node, pruning with MBRs. Every B object lives in exactly one bucket, so no
// result deduplication is needed and the memory footprint is one bucket entry
// per surviving object plus the tree on A — the "equally small memory
// footprint" the paper contrasts with PBSM's replication.
//
// Engineering note: like the original system (built for BlueGene/P memory
// budgets), the hierarchy is flattened into contiguous arrays — node MBRs are
// pre-expanded by eps once, children occupy index ranges, and both assignment
// and probe run over plain slices. The constant factors matter: this join is
// the inner loop of model building.
package touch

import (
	"time"

	"neurospatial/internal/geom"
	"neurospatial/internal/join"
	"neurospatial/internal/parallel"
	"neurospatial/internal/rtree"
)

// Options tunes the algorithm; the zero value selects the defaults used in
// the experiments.
type Options struct {
	// Fanout is the node capacity of dataset A's hierarchy. Values <= 0
	// select DefaultFanout, the sweet spot measured on the synapse
	// workload: small nodes keep sibling MBR overlap low, which is what
	// lets the assignment descend deep and the probe prune early.
	Fanout int
	// MaxAssignDepth caps how deep the assignment descends below the root;
	// 0 means unlimited. The ablation bench uses it: depth-capped
	// assignment degenerates TOUCH toward an indexed nested loop whose
	// probes repeatedly search large subtrees, demonstrating why
	// hierarchical assignment matters.
	MaxAssignDepth int
	// Workers parallelizes the probe phase across goroutines, mirroring the
	// multicore deployment of the original system. 0 or 1 probes serially;
	// values > 1 use that many workers; negative values use one worker per
	// CPU. Results are emitted exactly once, in the same order as a serial
	// probe regardless of the worker count (the per-bucket buffers are
	// merged in bucket order); the stats counters are summed across workers.
	Workers int
}

// DefaultFanout is the node capacity used when Options.Fanout is zero.
const DefaultFanout = 8

// Touch is the TOUCH join algorithm. It satisfies join.Algorithm.
type Touch struct {
	Opts Options
}

// New returns a Touch with default options.
func New() *Touch { return &Touch{} }

// Name implements join.Algorithm.
func (t *Touch) Name() string { return "TOUCH" }

// flatNode is one node of the flattened hierarchy. Children (or leaf items)
// occupy the contiguous index range [first, first+count).
type flatNode struct {
	box    geom.AABB // MBR expanded by eps
	first  int32
	count  int32
	isLeaf bool
}

// Join implements join.Algorithm.
func (t *Touch) Join(a, b []join.Object, eps float64, emit func(join.Pair)) join.Stats {
	var st join.Stats
	if len(a) == 0 || len(b) == 0 {
		return st
	}
	fanout := t.Opts.Fanout
	if fanout <= 0 {
		fanout = DefaultFanout
	}

	// Phase 1: data-oriented partitioning of A, flattened. STR-pack A into
	// tiles, then build the hierarchy bottom-up in contiguous arrays with
	// every MBR pre-expanded by eps (so the hot loops test plain overlap).
	buildStart := time.Now()
	items := make([]rtree.Item, len(a))
	for i := range a {
		items[i] = rtree.Item{Box: a[i].Box, ID: int32(i)}
	}
	tree, err := rtree.STR(items, fanout)
	if err != nil {
		panic(err) // unreachable: fanout validated above
	}
	root, ok := tree.Root()
	if !ok {
		st.BuildTime = time.Since(buildStart)
		return st
	}

	var (
		nodes []flatNode  // nodes[0] is the root
		kids  []int32     // child-node indices, ranges per internal node
		leafA []int32     // A indices, ranges per leaf
		leafB []geom.AABB // A boxes expanded by eps, parallel to leafA
	)
	var flatten func(v rtree.NodeView) int32
	flatten = func(v rtree.NodeView) int32 {
		idx := int32(len(nodes))
		nodes = append(nodes, flatNode{box: v.Box().Expand(eps), isLeaf: v.IsLeaf()})
		if v.IsLeaf() {
			first := int32(len(leafA))
			for _, it := range v.Items() {
				leafA = append(leafA, it.ID)
				leafB = append(leafB, a[it.ID].Box.Expand(eps))
			}
			nodes[idx].first = first
			nodes[idx].count = int32(len(leafA)) - first
			return idx
		}
		// Reserve the child range after recursing: children are appended
		// to kids contiguously per parent, so recurse first into a local
		// buffer of indices.
		childIdx := make([]int32, 0, v.NumChildren())
		for i := 0; i < v.NumChildren(); i++ {
			childIdx = append(childIdx, flatten(v.Child(i)))
		}
		first := int32(len(kids))
		kids = append(kids, childIdx...)
		nodes[idx].first = first
		nodes[idx].count = int32(len(childIdx))
		return idx
	}
	rootIdx := flatten(root)

	// Phase 2: hierarchical assignment of B.
	buckets := make([][]int32, len(nodes))
	assigned := 0
	maxDepth := t.Opts.MaxAssignDepth
	for i := range b {
		bbox := b[i].Box
		cur := rootIdx
		st.BoxTests++
		if !nodes[cur].box.Intersects(bbox) {
			continue // empty space at the root: filtered
		}
		depth := 0
		dropped := false
		for !nodes[cur].isLeaf && (maxDepth <= 0 || depth < maxDepth) {
			n := &nodes[cur]
			match := int32(-1)
			matches := 0
			for k := n.first; k < n.first+n.count; k++ {
				c := kids[k]
				st.BoxTests++
				if nodes[c].box.Intersects(bbox) {
					matches++
					match = c
					if matches > 1 {
						break
					}
				}
			}
			if matches == 0 {
				// Empty space between the children: filtered out.
				dropped = true
				break
			}
			if matches > 1 {
				break // partners may live under several children: assign here
			}
			cur = match
			depth++
		}
		if !dropped {
			buckets[cur] = append(buckets[cur], int32(i))
			assigned++
		}
	}
	// Memory: flattened tree entries + one bucket slot per surviving object.
	st.ExtraBytes = int64(len(nodes))*(6*8+9) + int64(len(leafA))*(4+6*8) +
		int64(len(kids))*4 + int64(assigned)*4
	st.BuildTime = time.Since(buildStart)

	// Phase 3: probe each bucket against its subtree. probeOne is shared by
	// the serial and parallel paths; it touches only read-only state plus
	// the caller-owned stats and emit.
	probeOne := func(nodeIdx int32, bi int32, st *join.Stats, stack []int32, emit func(join.Pair)) []int32 {
		bObj := &b[bi]
		bbox := bObj.Box
		stack = append(stack[:0], nodeIdx)
		for len(stack) > 0 {
			cur := stack[len(stack)-1]
			stack = stack[:len(stack)-1]
			n := &nodes[cur]
			st.NodePairs++
			if n.isLeaf {
				for k := n.first; k < n.first+n.count; k++ {
					st.BoxTests++
					if !leafB[k].Intersects(bbox) {
						continue
					}
					ai := leafA[k]
					st.Comparisons++
					if a[ai].Seg.WithinDist(bObj.Seg, eps) {
						st.Results++
						emit(join.Pair{A: a[ai].ID, B: bObj.ID})
					}
				}
				continue
			}
			for k := n.first; k < n.first+n.count; k++ {
				c := kids[k]
				st.BoxTests++
				if nodes[c].box.Intersects(bbox) {
					stack = append(stack, c)
				}
			}
		}
		return stack
	}

	probeStart := time.Now()
	if w := t.Opts.Workers; w != 0 && w != 1 {
		probeParallel(parallel.Workers(w), buckets, probeOne, &st, emit)
	} else {
		stack := make([]int32, 0, 64)
		for nodeIdx, ids := range buckets {
			for _, bi := range ids {
				stack = probeOne(int32(nodeIdx), bi, &st, stack, emit)
			}
		}
	}
	st.ProbeTime = time.Since(probeStart)
	return st
}

// probeWork is the unit handed to probe workers: one bucket.
type probeWork struct {
	node int32
	ids  []int32
}

// probeParallel fans the non-empty buckets out to the shared worker pool:
// one slot per bucket, per-worker stats and scratch stacks, per-bucket pair
// buffers merged in bucket order. Bucket order is the serial probe's
// iteration order, so the emitted sequence is identical to a serial probe
// for any worker count.
func probeParallel(workers int, buckets [][]int32,
	probeOne func(int32, int32, *join.Stats, []int32, func(join.Pair)) []int32,
	st *join.Stats, emit func(join.Pair)) {

	var work []probeWork
	for nodeIdx, ids := range buckets {
		if len(ids) > 0 {
			work = append(work, probeWork{node: int32(nodeIdx), ids: ids})
		}
	}
	stats := make([]join.Stats, workers)
	stacks := make([][]int32, workers)
	parallel.Collect(workers, len(work), func(w, slot int, emitLocal func(join.Pair)) {
		local := &stats[w]
		for _, bi := range work[slot].ids {
			stacks[w] = probeOne(work[slot].node, bi, local, stacks[w], emitLocal)
		}
	}, emit)
	st.Merge(stats)
}
