//go:build !race

package race

// Enabled is true when the build carries the race detector.
const Enabled = false
