//go:build race

// Package race reports whether the race detector is compiled in. Allocation
// assertions (testing.AllocsPerRun gates, the E12 self-enforced guarantees)
// consult it: race instrumentation inserts allocations of its own, so
// zero-alloc invariants are only checkable in uninstrumented builds.
package race

// Enabled is true when the build carries the race detector.
const Enabled = true
