package engine_test

// Regression tests for the planner bugfixes: empty-batch routing must be a
// deterministic default (no fabricated 0.0 costs, no re-probing), concurrent
// first Plans must probe each index exactly once (the singleflight latch),
// and calibration probes must not perturb an attached buffer pool.

import (
	"context"
	"sync"
	"testing"
	"time"

	"neurospatial/internal/engine"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
)

// countingIndex wraps a SpatialIndex and counts Do invocations (the probe
// path executes the calibration sample through Do); a configurable delay
// widens the pre-fix double-probe window.
type countingIndex struct {
	engine.SpatialIndex
	mu    sync.Mutex
	dos   int
	delay time.Duration
}

func (c *countingIndex) Do(ctx context.Context, req engine.Request, visit func(engine.Hit)) (engine.QueryStats, error) {
	c.mu.Lock()
	c.dos++
	c.mu.Unlock()
	if c.delay > 0 {
		time.Sleep(c.delay)
	}
	return c.SpatialIndex.Do(ctx, req, visit)
}

func (c *countingIndex) doCalls() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.dos
}

// TestPlannerEmptyBatchDefault: Plan(nil) and Plan of an empty slice must
// return a deterministic default — the first registered contender when no
// history exists, the learned-cheapest once history accumulates — with no
// probes and no fabricated 0.0 costs.
func TestPlannerEmptyBatchDefault(t *testing.T) {
	items := testItems(t, 8, 8001)
	indexes := buildIndexes(t, items)
	p := engine.NewPlanner(indexes...)

	for i := 0; i < 3; i++ {
		d := p.Plan(nil)
		if d.Index != indexes[0] {
			t.Fatalf("empty plan %d chose %s, want first registered (%s)",
				i, d.Index.Name(), indexes[0].Name())
		}
		if len(d.Probed) != 0 {
			t.Fatalf("empty plan %d probed %v; empty batches cannot be probed", i, d.Probed)
		}
		if len(d.CostPerQuery) != 0 {
			t.Fatalf("empty plan %d fabricated costs %v with no history", i, d.CostPerQuery)
		}
	}

	// With learned history the empty-batch default routes to the cheapest
	// profiled contender, still without probing.
	p.Observe(indexes[1].Name(), []engine.QueryStats{{PagesRead: 2}})
	p.Observe(indexes[0].Name(), []engine.QueryStats{{PagesRead: 100}})
	d := p.Plan(nil)
	if d.Index != indexes[1] {
		t.Fatalf("empty plan with history chose %s, want learned-cheapest %s",
			d.Index.Name(), indexes[1].Name())
	}
	if len(d.Probed) != 0 || len(d.CostPerQuery) != 2 {
		t.Fatalf("empty plan with history: probed %v, costs %v", d.Probed, d.CostPerQuery)
	}
	if d.String() == "" {
		t.Error("empty decision rendering")
	}

	// PlanSequence shares the guard, including a nil sequence.
	if d := p.PlanSequence(nil); d.Index != indexes[1] {
		t.Fatalf("nil sequence chose %s", d.Index.Name())
	}
}

// TestPlannerConcurrentPlansProbeOnce: many concurrent first Plans must run
// exactly one calibration probe per index (pre-fix, the check-then-act race
// probed and observed the same index multiple times, skewing its history).
func TestPlannerConcurrentPlansProbeOnce(t *testing.T) {
	items := testItems(t, 8, 8002)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	queries := testQueries(vol, 12)

	inner := engine.NewFlat(flat.DefaultOptions())
	if err := inner.Build(items); err != nil {
		t.Fatal(err)
	}
	counting := &countingIndex{SpatialIndex: inner, delay: 20 * time.Millisecond}
	p := engine.NewPlanner(counting)

	const goroutines = 8
	var wg sync.WaitGroup
	start := make(chan struct{})
	probed := make([]int, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			<-start
			d := p.Plan(queries)
			probed[g] = len(d.Probed)
		}(g)
	}
	close(start)
	wg.Wait()

	// One probe executes ProbeQueries (3) sample requests through Do.
	if got := counting.doCalls(); got != 3 {
		t.Fatalf("%d concurrent first Plans executed %d probe queries, want exactly 3 (one probe)",
			goroutines, got)
	}
	total := 0
	for _, n := range probed {
		total += n
	}
	if total != 1 {
		t.Fatalf("%d decisions reported the probe, want exactly 1", total)
	}
}

// TestPlannerConcurrentKindProbesSerialize: probes of *different kinds* on
// the same index must not race on the index's read-path configuration — the
// per-(index, kind) latch admits one probe per kind concurrently, so probe
// execution itself is serialized per index. Pre-fix, a Range and a KNN probe
// raced on SetSource/restore (a -race report) and leaked probe traffic into
// the attached pool.
func TestPlannerConcurrentKindProbesSerialize(t *testing.T) {
	items := testItems(t, 8, 8005)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	queries := testQueries(vol, 12)

	ix := engine.NewFlat(flat.DefaultOptions())
	if err := ix.Build(items); err != nil {
		t.Fatal(err)
	}
	pool, err := pager.NewBufferPool(ix.Store(), 16)
	if err != nil {
		t.Fatal(err)
	}
	ix.SetSource(pool)
	p := engine.NewPlanner(ix)

	kinds := []struct {
		kind engine.Kind
		reqs []engine.Request
	}{
		{engine.Range, nil},
		{engine.KNN, nil},
		{engine.Point, nil},
		{engine.WithinDistance, nil},
	}
	for i := range kinds {
		for _, q := range queries {
			c := q.Center()
			switch kinds[i].kind {
			case engine.Range:
				kinds[i].reqs = append(kinds[i].reqs, engine.RangeRequest(q))
			case engine.KNN:
				kinds[i].reqs = append(kinds[i].reqs, engine.KNNRequest(c, 4))
			case engine.Point:
				kinds[i].reqs = append(kinds[i].reqs, engine.PointRequest(c))
			case engine.WithinDistance:
				kinds[i].reqs = append(kinds[i].reqs, engine.WithinDistanceRequest(c, 10))
			}
		}
	}
	var wg sync.WaitGroup
	start := make(chan struct{})
	for g := 0; g < 8; g++ {
		for _, kc := range kinds {
			wg.Add(1)
			go func(kind engine.Kind, reqs []engine.Request) {
				defer wg.Done()
				<-start
				p.PlanKind(kind, reqs)
			}(kc.kind, kc.reqs)
		}
	}
	close(start)
	wg.Wait()

	if st := pool.Stats(); st != (pager.Stats{}) {
		t.Fatalf("concurrent kind probes perturbed the attached pool: %+v", st)
	}
	if pool.Len() != 0 {
		t.Fatalf("concurrent kind probes populated the attached pool with %d pages", pool.Len())
	}
	if ix.Source() != pool {
		t.Fatal("concurrent kind probes did not restore the attached source")
	}
}

// TestPlannerProbeLeavesAttachedPoolUntouched: a calibration probe must run
// against the index's cold store, leaving an attached BufferPool's cache and
// counters exactly as they were, and must restore the attachment.
func TestPlannerProbeLeavesAttachedPoolUntouched(t *testing.T) {
	items := testItems(t, 8, 8003)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	queries := testQueries(vol, 12)

	ix := engine.NewFlat(flat.DefaultOptions())
	if err := ix.Build(items); err != nil {
		t.Fatal(err)
	}
	pool, err := pager.NewBufferPool(ix.Store(), 16)
	if err != nil {
		t.Fatal(err)
	}
	ix.SetSource(pool)

	p := engine.NewPlanner(ix)
	d := p.Plan(queries)
	if len(d.Probed) != 1 {
		t.Fatalf("first plan probed %v, want the one unprofiled contender", d.Probed)
	}
	if st := pool.Stats(); st != (pager.Stats{}) {
		t.Fatalf("probe perturbed the attached pool: %+v", st)
	}
	if pool.Len() != 0 {
		t.Fatalf("probe populated the attached pool with %d pages", pool.Len())
	}
	if ix.Source() != pool {
		t.Fatal("probe did not restore the attached source")
	}

	// The attachment still works: a real query goes through the pool.
	ix.Query(queries[0], func(int32) {})
	if st := pool.Stats(); st.DemandReads+st.Hits == 0 {
		t.Fatal("restored source saw no traffic on a real query")
	}
}

// TestPlannerProbeLeavesShardPoolsUntouched extends the cold-probe guarantee
// to the sharded index's internal per-shard pools: planning must not warm
// them or skew their counters either.
func TestPlannerProbeLeavesShardPoolsUntouched(t *testing.T) {
	items := testItems(t, 8, 8004)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	queries := testQueries(vol, 12)

	opts := subIndexOptions("flat", 3)
	opts.PoolPages = 8
	sh := engine.NewSharded(opts)
	if err := sh.Build(items); err != nil {
		t.Fatal(err)
	}

	p := engine.NewPlanner(sh)
	if d := p.Plan(queries); len(d.Probed) != 1 {
		t.Fatalf("first plan probed %v", d.Probed)
	}
	for i, pool := range sh.ShardPools() {
		if st := pool.Stats(); st != (pager.Stats{}) {
			t.Fatalf("probe perturbed shard %d's pool: %+v", i, st)
		}
		if pool.Len() != 0 {
			t.Fatalf("probe populated shard %d's pool with %d pages", i, pool.Len())
		}
	}

	// Real execution still runs through the per-shard pools.
	sh.BatchQuery(queries, 1, nil)
	touched := 0
	for _, pool := range sh.ShardPools() {
		if st := pool.Stats(); st.DemandReads+st.Hits > 0 {
			touched++
		}
	}
	if touched == 0 {
		t.Fatal("per-shard pools saw no traffic on real execution")
	}
}
