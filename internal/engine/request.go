package engine

import (
	"fmt"
	"math"

	"neurospatial/internal/geom"
)

// Kind selects the query semantics of a Request — the tagged front door that
// replaced the range-only SpatialIndex.Query surface. Every engine index
// executes every kind (SpatialIndex.Do), so harnesses pick semantics per
// request instead of per API.
type Kind uint8

const (
	// KindInvalid is the zero Kind: a Request must name its semantics
	// explicitly, so the zero value never validates.
	KindInvalid Kind = iota
	// Range reports the items whose boxes intersect Request.Box.
	Range
	// KNN reports the Request.K items whose boxes are nearest to
	// Request.Center (by squared box distance, ties broken by ascending ID).
	KNN
	// Point reports the items whose boxes contain Request.Center (point
	// stabbing — the degenerate range query of an inspection click).
	Point
	// WithinDistance reports the items whose boxes lie within Request.Radius
	// of Request.Center (exact geom.AABB.Dist2Point test — a sphere query,
	// not its bounding box).
	WithinDistance
)

// String implements fmt.Stringer with the names the driver flags accept.
func (k Kind) String() string {
	switch k {
	case Range:
		return "range"
	case KNN:
		return "knn"
	case Point:
		return "point"
	case WithinDistance:
		return "within"
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Kinds lists the valid request kinds in display order.
func Kinds() []Kind { return []Kind{Range, KNN, Point, WithinDistance} }

// ParseKind resolves a driver-flag kind name ("range", "knn", "point",
// "within").
func ParseKind(name string) (Kind, error) {
	for _, k := range Kinds() {
		if k.String() == name {
			return k, nil
		}
	}
	return KindInvalid, fmt.Errorf("engine: unknown query kind %q (have range, knn, point, within)", name)
}

// Request is one typed query: a Kind tag plus the fields that kind reads.
// Unused fields are ignored. The zero Request is invalid; construct requests
// with the Range/KNN/Point/WithinDistanceRequest helpers or set Kind
// explicitly and Validate before executing by hand (Session.Do and
// SpatialIndex.Do validate internally and never panic on a malformed
// request — they return a *RequestError).
type Request struct {
	// Kind selects the query semantics.
	Kind Kind
	// Box is the query range (Range only).
	Box geom.AABB
	// Center is the query point (KNN, Point, WithinDistance).
	Center geom.Vec
	// K is the neighbor count (KNN only).
	K int
	// Radius is the sphere radius (WithinDistance only).
	Radius float64

	// Limit caps the number of hits returned (0 = unlimited). A limited
	// request executes lazily: the streaming path stops reading pages as
	// soon as the limit is satisfied, so a Limit-10 page of a million-hit
	// result costs a handful of page reads, not the full scan.
	Limit int
	// Offset skips that many leading hits (after the Cursor position, when
	// both are set). Offset pages still read the pages holding the skipped
	// hits; prefer Cursor for deep paging — the cursor position prunes
	// whole pages without reading them.
	Offset int
	// Cursor resumes a paginated result strictly after the position encoded
	// in a previous Result's Cursor token. It must have been minted for the
	// same Kind (Validate rejects a mismatch) and is only meaningful against
	// the same index and item set.
	Cursor Cursor
}

// paginated reports whether the request asks for a partial result window.
func (r Request) paginated() bool {
	return r.Limit > 0 || r.Offset > 0 || r.Cursor != ""
}

// RangeRequest returns a box-intersection request.
func RangeRequest(box geom.AABB) Request { return Request{Kind: Range, Box: box} }

// KNNRequest returns a k-nearest-neighbors request around center.
func KNNRequest(center geom.Vec, k int) Request {
	return Request{Kind: KNN, Center: center, K: k}
}

// PointRequest returns a point-stabbing request at p.
func PointRequest(p geom.Vec) Request { return Request{Kind: Point, Center: p} }

// WithinDistanceRequest returns a sphere request: items within radius of
// center.
func WithinDistanceRequest(center geom.Vec, radius float64) Request {
	return Request{Kind: WithinDistance, Center: center, Radius: radius}
}

// RequestError is the typed validation error of the Request surface: which
// kind was asked for, which field was malformed, and why. Every invalid
// request — any field combination — yields one of these; execution paths
// never panic on bad input.
type RequestError struct {
	// Kind is the request's kind tag (possibly invalid itself).
	Kind Kind
	// Field names the offending field ("Kind", "Box", "Center", "K",
	// "Radius").
	Field string
	// Reason says what is wrong with it.
	Reason string
}

// Error implements error.
func (e *RequestError) Error() string {
	return fmt.Sprintf("engine: invalid %s request: %s %s", e.Kind, e.Field, e.Reason)
}

func vecHasNaN(v geom.Vec) bool {
	return math.IsNaN(v.X) || math.IsNaN(v.Y) || math.IsNaN(v.Z)
}

// Validate reports whether the request is executable, returning a
// *RequestError describing the first problem found. NaN coordinates are
// rejected everywhere (they poison every comparison); infinities are legal
// (an all-space range is a valid, if expensive, request).
func (r Request) Validate() error {
	if r.Limit < 0 {
		return &RequestError{Kind: r.Kind, Field: "Limit", Reason: fmt.Sprintf("is %d, want >= 0", r.Limit)}
	}
	if r.Offset < 0 {
		return &RequestError{Kind: r.Kind, Field: "Offset", Reason: fmt.Sprintf("is %d, want >= 0", r.Offset)}
	}
	if r.Cursor != "" {
		kind, _, err := r.Cursor.decode()
		if err != nil {
			return &RequestError{Kind: r.Kind, Field: "Cursor", Reason: "is malformed"}
		}
		if kind != r.Kind {
			return &RequestError{Kind: r.Kind, Field: "Cursor",
				Reason: fmt.Sprintf("was minted for a %s request", kind)}
		}
	}
	switch r.Kind {
	case Range:
		if vecHasNaN(r.Box.Min) || vecHasNaN(r.Box.Max) {
			return &RequestError{Kind: r.Kind, Field: "Box", Reason: "has NaN coordinates"}
		}
		if r.Box.IsEmpty() {
			return &RequestError{Kind: r.Kind, Field: "Box", Reason: "is empty (Min > Max on some axis)"}
		}
		return nil
	case KNN:
		if vecHasNaN(r.Center) {
			return &RequestError{Kind: r.Kind, Field: "Center", Reason: "has NaN coordinates"}
		}
		if r.K < 1 {
			return &RequestError{Kind: r.Kind, Field: "K", Reason: fmt.Sprintf("is %d, want >= 1", r.K)}
		}
		return nil
	case Point:
		if vecHasNaN(r.Center) {
			return &RequestError{Kind: r.Kind, Field: "Center", Reason: "has NaN coordinates"}
		}
		return nil
	case WithinDistance:
		if vecHasNaN(r.Center) {
			return &RequestError{Kind: r.Kind, Field: "Center", Reason: "has NaN coordinates"}
		}
		if math.IsNaN(r.Radius) || r.Radius < 0 {
			return &RequestError{Kind: r.Kind, Field: "Radius", Reason: fmt.Sprintf("is %v, want >= 0", r.Radius)}
		}
		return nil
	}
	return &RequestError{Kind: r.Kind, Field: "Kind", Reason: "is not a known query kind"}
}

// String renders the request for logs and tables.
func (r Request) String() string {
	switch r.Kind {
	case Range:
		return fmt.Sprintf("range %v", r.Box)
	case KNN:
		return fmt.Sprintf("knn k=%d @ %v", r.K, r.Center)
	case Point:
		return fmt.Sprintf("point @ %v", r.Center)
	case WithinDistance:
		return fmt.Sprintf("within r=%g @ %v", r.Radius, r.Center)
	}
	return fmt.Sprintf("invalid request (kind %d)", uint8(r.Kind))
}

// Hit is one reported item. Every index emits hits in the same canonical
// per-kind order, so results are identical — hit for hit, position for
// position — across contenders, shard counts and worker counts:
//
//   - Range, Point, WithinDistance: ascending ID;
//   - KNN: ascending (Dist2, ID) — nearest first, ties by ID.
type Hit struct {
	// ID is the reported item.
	ID int32
	// Dist2 is the squared box distance to Request.Center for KNN and
	// WithinDistance hits; 0 for the boolean kinds.
	Dist2 float64
}

// Result is one executed request: what was asked, who served it, what came
// back, and what it cost.
type Result struct {
	// Request is the executed request.
	Request Request
	// Index names the contender that served it (the Session's fixed index,
	// or the planner's per-kind routing decision).
	Index string
	// Hits holds the reported items in canonical order (see Hit). For a
	// paginated request this is one page: at most Limit hits starting after
	// the request's Cursor/Offset position.
	Hits []Hit
	// Stats is the unified execution record. Under a Limit it reflects only
	// the work the page actually performed — page reads stop once the limit
	// is satisfied.
	Stats QueryStats
	// Cursor is the resume token of the next page. It is set only when the
	// request carried a Limit and the page filled it; an exactly-full final
	// page therefore yields one trailing empty page. Empty means the result
	// is exhausted.
	Cursor Cursor
}
