package engine

import (
	"context"
	"fmt"
	"sync"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// RTree adapts an STR-bulk-loaded rtree.Tree to the engine layer, with its
// nodes laid onto simulated disk pages (rtree.PagedTree, one node per page —
// the classic disk R-tree layout). Stats mapping: every node access is a
// page read, so PagesRead is the tree's total node accesses, IndexReads is 0
// and NodesPerLevel carries the per-level breakdown the demo's panel shows.
type RTree struct {
	fanout   int
	tree     *rtree.Tree
	paged    *rtree.PagedTree
	src      pager.PageSource
	elemPage []pager.PageID // item ID -> leaf page
	boxes    []geom.AABB    // item ID -> MBR (exact-distance refinement)
	// boxOf is the exact-geometry accessor bound once per paging (a
	// per-query closure would be a hot-path allocation).
	boxOf func(int32) geom.AABB
	// coords is the struct-of-arrays sidecar of the node-page store: leaf
	// pages' item coordinates as contiguous per-axis runs (internal-node
	// placeholder entries get empty boxes), scanned sequentially by the
	// streaming leaf refinement.
	coords *pager.Coords
	// nodes is the RAM-resident node directory built at paging time: per
	// node its page, MBR, level and (min, max) item-ID zone — what the
	// streaming descent orders subtrees by. nodes[0] is the root.
	nodes []rnode
	// probeMu is the per-instance probe-execution lock (see planner.go).
	probeMu sync.Mutex //neurospatial:lock rtree.probe
}

// rnode is one node of the RAM directory (see RTree.nodes).
type rnode struct {
	page  pager.PageID
	box   geom.AABB
	level int
	leaf  bool
	minID int32
	maxID int32
	kids  []int32 // indexes into RTree.nodes
}

// NewRTree returns an unbuilt R-tree engine index with the given fanout
// (<= 0 selects rtree.DefaultFanout).
func NewRTree(fanout int) *RTree {
	if fanout <= 0 {
		fanout = rtree.DefaultFanout
	}
	return &RTree{fanout: fanout}
}

// WrapRTree adapts an already-built tree (STR- or insertion-built). The tree
// is paged at wrap time and must not be mutated afterwards.
func WrapRTree(t *rtree.Tree) (*RTree, error) {
	r := &RTree{fanout: t.Fanout(), tree: t}
	if err := r.page(); err != nil {
		return nil, err
	}
	return r, nil
}

// Inner returns the wrapped rtree.Tree (nil before Build).
func (r *RTree) Inner() *rtree.Tree { return r.tree }

// PagedTree returns the node-per-page layout (nil for an empty tree).
func (r *RTree) PagedTree() *rtree.PagedTree { return r.paged }

// Name implements SpatialIndex.
func (r *RTree) Name() string { return "rtree" }

// Build implements SpatialIndex. Rebuilding restores cold reads from the
// new store: an attached PageSource is dropped, since a pool wrapping the
// previous store would serve stale pages.
func (r *RTree) Build(items []rtree.Item) error {
	t, err := rtree.STR(items, r.fanout)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	r.tree, r.src = t, nil
	return r.page()
}

// page lays the tree's nodes onto pages and indexes each item's leaf page
// and MBR.
func (r *RTree) page() error {
	r.paged, r.elemPage, r.boxes, r.nodes = nil, nil, nil, nil
	if r.tree.Size() == 0 {
		return nil
	}
	p, err := rtree.NewPaged(r.tree)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	r.paged = p
	r.elemPage = make([]pager.PageID, r.tree.Size())
	r.boxes = make([]geom.AABB, r.tree.Size())
	r.boxOf = func(id int32) geom.AABB { return r.boxes[id] }
	r.nodes = nil
	root, _ := r.tree.Root()
	var walk func(v rtree.NodeView) int32
	walk = func(v rtree.NodeView) int32 {
		ni := int32(len(r.nodes))
		r.nodes = append(r.nodes, rnode{})
		n := rnode{page: p.PageOf(v), box: v.Box(), level: v.Level(), leaf: v.IsLeaf(),
			minID: int32(len(r.elemPage)), maxID: -1}
		if v.IsLeaf() {
			for _, it := range v.Items() {
				if int(it.ID) < len(r.elemPage) {
					r.elemPage[it.ID] = n.page
					r.boxes[it.ID] = it.Box
				}
				if it.ID < n.minID {
					n.minID = it.ID
				}
				if it.ID > n.maxID {
					n.maxID = it.ID
				}
			}
		} else {
			n.kids = make([]int32, 0, v.NumChildren())
			for i := 0; i < v.NumChildren(); i++ {
				ci := walk(v.Child(i))
				n.kids = append(n.kids, ci)
				if c := r.nodes[ci]; c.maxID >= c.minID {
					if c.minID < n.minID {
						n.minID = c.minID
					}
					if c.maxID > n.maxID {
						n.maxID = c.maxID
					}
				}
			}
		}
		r.nodes[ni] = n
		return ni
	}
	walk(root)
	// Guarded accessor: WrapRTree tolerates non-dense item IDs on the
	// Query-only surface; out-of-range IDs get empty (never-intersecting)
	// sidecar slots instead of panicking the build.
	r.coords = pager.BuildCoords(r.paged.Store(), func(id int32) geom.AABB {
		if int(id) >= len(r.boxes) {
			return geom.EmptyAABB()
		}
		return r.boxes[id]
	})
	return nil
}

// Bounds implements SpatialIndex.
func (r *RTree) Bounds() geom.AABB {
	if r.tree == nil {
		return geom.EmptyAABB()
	}
	return r.tree.Bounds()
}

// NumItems implements SpatialIndex.
func (r *RTree) NumItems() int {
	if r.tree == nil {
		return 0
	}
	return r.tree.Size()
}

// fromRTree maps the tree's native stats onto the unified record.
func fromRTree(s rtree.QueryStats) QueryStats {
	return QueryStats{
		PagesRead:     s.NodeAccesses(),
		EntriesTested: s.EntriesTested,
		Results:       s.Results,
		LevelNodes:    s.LevelNodes,
		Levels:        s.Levels,
	}
}

func (r *RTree) query(q geom.AABB, emit func(int32)) QueryStats {
	if r.tree == nil {
		return QueryStats{}
	}
	visit := func(it rtree.Item) { emit(it.ID) }
	if r.src != nil && r.paged != nil {
		return fromRTree(r.paged.QueryVia(q, r.src, visit))
	}
	return fromRTree(r.tree.Query(q, visit))
}

// rangeIDs runs the native descent collecting ids. With a cancelable
// context the descent reads node pages through the paged layout (the
// traversal — and therefore the stats record — is identical to the unpaged
// one), so cancellation is checked at every node-page read.
//
//neurospatial:hotpath
func (r *RTree) rangeIDs(ctx context.Context, q geom.AABB, col *idCollector) (QueryStats, error) {
	if r.paged != nil && (r.src != nil || cancelable(ctx)) {
		base := r.src
		if base == nil {
			base = r.paged.Store()
		}
		src := wrapCtxSource(ctx, base)
		var st QueryStats
		//lint:ignore hotpath the catchCancel closure is the cancelable path's one per-call allocation; the unpaged path below skips it
		err := catchCancel(func() {
			st = fromRTree(r.paged.QueryVia(q, src, col.visitItem))
		})
		if err != nil {
			return QueryStats{}, err
		}
		return st, nil
	}
	return fromRTree(r.tree.Query(q, col.visitItem)), nil
}

// Do implements SpatialIndex. Range, Point and WithinDistance run as
// filtered descents (Point stabs with a degenerate box, WithinDistance
// descends the sphere's bounding box and refines with the exact Dist2Point
// test). KNN wraps the tree's native best-first search (rtree.Tree.KNN) and
// surfaces its native statistics in the unified record — NodesPerLevel
// carries the per-level access breakdown and PagesRead its total under the
// one-node-per-page convention. Boundary ties are resolved to the canonical
// (Dist2, ID) order by widening the native search until the (k+1)-st
// distance strictly exceeds the k-th (ties are measure-zero on real
// coordinates, so the first probe almost always suffices); the record is the
// widest search executed. Cancellation is checked between native calls (the
// KNN traversal is RAM-resident — it performs no page reads to check at).
//
//neurospatial:hotpath
func (r *RTree) Do(ctx context.Context, req Request, visit func(Hit)) (QueryStats, error) {
	if err := req.Validate(); err != nil {
		return QueryStats{}, err
	}
	if visit == nil {
		visit = func(Hit) {}
	}
	if r.tree == nil || r.tree.Size() == 0 {
		return QueryStats{}, ctxErr(ctx)
	}
	if err := ctxErr(ctx); err != nil {
		return QueryStats{}, err
	}
	if req.paginated() {
		return doPaginated(ctx, r, req, visit)
	}
	switch req.Kind {
	case Range, Point:
		q := req.Box
		if req.Kind == Point {
			q = geom.Box(req.Center, req.Center)
		}
		col := getIDCollector()
		defer putIDCollector(col)
		st, err := r.rangeIDs(ctx, q, col)
		if err != nil {
			return QueryStats{}, err
		}
		emitIDHits(col.ids, visit)
		return st, nil
	case WithinDistance:
		col := getIDCollector()
		defer putIDCollector(col)
		st, err := r.rangeIDs(ctx, geom.BoxAround(req.Center, req.Radius), col)
		if err != nil {
			return QueryStats{}, err
		}
		results, tested := withinRefine(col.ids, r.boxOf, req.Center, req.Radius, visit)
		st.Results = results
		st.EntriesTested += tested
		return st, nil
	case KNN:
		return r.doKNN(ctx, req.Center, req.K, visit)
	}
	return QueryStats{}, &RequestError{Kind: req.Kind, Field: "Kind", Reason: "is not a known query kind"}
}

// doKNN wraps rtree.Tree.KNN with the canonical tie resolution.
//
//neurospatial:hotpath
func (r *RTree) doKNN(ctx context.Context, center geom.Vec, k int, visit func(Hit)) (QueryStats, error) {
	size := r.tree.Size()
	// Probe one past k: when the (k+1)-st distance strictly exceeds the k-th,
	// the candidate set provably contains every item tied with the k-th and
	// the canonical top-k is decided. Otherwise widen geometrically.
	kk := k + 1
	if kk > size || kk < 0 { // kk < 0: k+1 overflowed on an absurd K
		kk = size
	}
	items, nst := r.tree.KNN(center, kk)
	for len(items) == kk && kk < size && kk > k {
		lastD := items[len(items)-1].Box.Dist2Point(center)
		kthD := items[k-1].Box.Dist2Point(center)
		if lastD > kthD {
			break
		}
		if err := ctxErr(ctx); err != nil {
			return QueryStats{}, err
		}
		kk *= 2
		if kk > size || kk < 0 {
			kk = size
		}
		items, nst = r.tree.KNN(center, kk)
	}
	if err := ctxErr(ctx); err != nil {
		return QueryStats{}, err
	}
	acc := getKNNAcc(k)
	defer putKNNAcc(acc)
	for _, it := range items {
		acc.Offer(Hit{ID: it.ID, Dist2: it.Box.Dist2Point(center)})
	}
	hits := acc.Hits()
	st := fromRTree(nst)
	st.Results = int64(len(hits))
	for _, h := range hits {
		visit(h)
	}
	return st, nil
}

// iterate implements the internal streaming capability: a best-first
// descent over the RAM node directory ordered by subtree min-ID. A node's
// page is read (one node per page — the same accounting as the eager
// descent) when it becomes the unvisited subtree with the least possible ID;
// leaf residents are refined against the RAM item boxes and buffered until
// no unread subtree can precede them. A full drain visits exactly the nodes
// the eager descent visits; under a Limit the remaining subtrees are never
// read. Subtrees wholly at or before the resume position are pruned by
// their ID zone without reading. KNN serves the bounded native best-first
// search eagerly.
func (r *RTree) iterate(ctx context.Context, req Request, after *Hit) (HitIterator, error) {
	if r.tree == nil || r.tree.Size() == 0 {
		return &sliceIter{}, ctxErr(ctx)
	}
	if req.Kind == KNN {
		return knnEager(func(visit func(Hit)) (QueryStats, error) {
			return r.doKNN(ctx, req.Center, req.K, visit)
		}, KNN, after)
	}
	src := r.src
	if src == nil {
		src = r.paged.Store()
	}
	it := &rtreeStream{r: r, ctx: ctx, src: src,
		accept: acceptFor(req, r.boxOf), q: queryBox(req),
		frontierBox: getNodeHeapBox(), pendingBox: getHitHeapBox()}
	it.frontier = *it.frontierBox
	it.pending = *it.pendingBox
	// The box kinds refine leaf residents against the SoA sidecar
	// sequentially; WithinDistance needs the exact-distance accept stage.
	it.boxKind = req.Kind == Range || req.Kind == Point
	if after != nil {
		it.after = after.ID
	} else {
		it.after = -1
	}
	root := r.nodes[0]
	if root.box.Intersects(it.q) && root.maxID > it.after {
		it.frontier.push(r, 0)
	}
	return it, nil
}

// rtreeStream is the lazy min-ID best-first descent (see RTree.iterate).
type rtreeStream struct {
	r        *RTree
	ctx      context.Context
	src      pager.PageSource
	q        geom.AABB
	accept   func(id int32, st *QueryStats) (Hit, bool)
	after    int32 // resume position; -1 = none
	boxKind  bool  // Range/Point: leaf refinement scans the SoA sidecar
	frontier nodeHeap
	pending  hitHeap
	// frontierBox/pendingBox are the pool boxes the heap slices came from;
	// Close writes the (possibly grown) slices back and recycles them.
	frontierBox *nodeHeap
	pendingBox  *hitHeap
	st          QueryStats
	err         error
}

//neurospatial:hotpath
func (s *rtreeStream) Next() (Hit, bool) {
	for {
		if s.err != nil {
			return Hit{}, false
		}
		if len(s.pending) > 0 &&
			(len(s.frontier) == 0 || s.pending[0].ID < s.r.nodes[s.frontier[0]].minID) {
			return s.pending.pop(), true
		}
		if len(s.frontier) == 0 {
			return Hit{}, false
		}
		if err := ctxErr(s.ctx); err != nil {
			s.err = err
			return Hit{}, false
		}
		ni := s.frontier.pop(s.r)
		n := s.r.nodes[ni]
		// Reading the node is one page read, internal or leaf — the
		// one-node-per-page convention of the eager descent.
		ids := s.src.ReadPage(n.page)
		s.st.PagesRead++
		s.st.addNode(n.level)
		if n.leaf {
			if s.boxKind {
				base := s.r.coords.PageOffset(n.page)
				for i, id := range ids {
					if id < 0 || id <= s.after {
						continue
					}
					s.st.EntriesTested++
					if s.r.coords.IntersectsAt(base+i, s.q) {
						s.st.Results++
						s.pending.push(Hit{ID: id})
					}
				}
				continue
			}
			for _, id := range ids {
				if id < 0 || id <= s.after {
					continue
				}
				if h, ok := s.accept(id, &s.st); ok {
					s.st.Results++
					s.pending.push(h)
				}
			}
			continue
		}
		for _, ci := range n.kids {
			c := s.r.nodes[ci]
			s.st.EntriesTested++
			if c.maxID < c.minID || c.maxID <= s.after {
				continue
			}
			if c.box.Intersects(s.q) {
				s.frontier.push(s.r, ci)
			}
		}
	}
}

func (s *rtreeStream) Err() error        { return s.err }
func (s *rtreeStream) Stats() QueryStats { return s.st }

// Close recycles the pooled heap slices. Idempotent; Stats stays valid, and
// a Next after Close sees two empty heaps and reports exhaustion.
func (s *rtreeStream) Close() {
	if s.frontierBox != nil {
		*s.frontierBox = s.frontier[:0]
		nodeHeapPool.Put(s.frontierBox)
		s.frontierBox, s.frontier = nil, nil
	}
	if s.pendingBox != nil {
		*s.pendingBox = s.pending[:0]
		hitHeapPool.Put(s.pendingBox)
		s.pendingBox, s.pending = nil, nil
	}
}

// nodeHeap is a min-heap of RTree.nodes indexes ordered by subtree min-ID
// (ties by page for determinism).
type nodeHeap []int32

var nodeHeapPool = sync.Pool{New: func() any {
	h := nodeHeap(make([]int32, 0, 64))
	return &h
}}

// getNodeHeapBox returns a pool box holding an empty heap slice.
func getNodeHeapBox() *nodeHeap {
	p := nodeHeapPool.Get().(*nodeHeap)
	*p = (*p)[:0]
	return p
}

func (h *nodeHeap) less(r *RTree, a, b int32) bool {
	na, nb := r.nodes[a], r.nodes[b]
	if na.minID != nb.minID {
		return na.minID < nb.minID
	}
	return na.page < nb.page
}

func (h *nodeHeap) push(r *RTree, x int32) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if !h.less(r, s[i], s[p]) {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *nodeHeap) pop(r *RTree) int32 {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		l, rr := 2*i+1, 2*i+2
		least := i
		if l < len(s) && h.less(r, s[l], s[least]) {
			least = l
		}
		if rr < len(s) && h.less(r, s[rr], s[least]) {
			least = rr
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// queryNative implements nativeQuerier, reading node pages through the
// configured source when one is attached.
func (r *RTree) queryNative(q geom.AABB, visit func(int32)) QueryStats {
	return r.query(q, visit)
}

// Query implements SpatialIndex.
//
// Deprecated: route new call sites through Session.Do with a Range request.
func (r *RTree) Query(q geom.AABB, visit func(int32)) QueryStats {
	return r.queryNative(q, visit)
}

// BatchQuery implements SpatialIndex via the shared deterministic executor.
//
// Deprecated: route new call sites through Session.DoBatch.
func (r *RTree) BatchQuery(qs []geom.AABB, workers int, visit func(int, int32)) []QueryStats {
	return batchQuery(workers, qs, r.query, visit)
}

// Store implements Paged (nil for an empty tree).
func (r *RTree) Store() *pager.Store {
	if r.paged == nil {
		return nil
	}
	return r.paged.Store()
}

// NumPages implements Paged.
func (r *RTree) NumPages() int {
	if r.paged == nil {
		return 0
	}
	return r.paged.NumPages()
}

// PageOf implements Paged: the page of the leaf holding item id.
func (r *RTree) PageOf(id int32) pager.PageID {
	if id < 0 || int(id) >= len(r.elemPage) {
		return pager.InvalidPage
	}
	return r.elemPage[id]
}

// PagesInRange implements Paged: the pages of every node a query of box q
// would visit.
func (r *RTree) PagesInRange(q geom.AABB) []pager.PageID {
	if r.paged == nil {
		return nil
	}
	return r.paged.PagesInRange(q)
}

// SetSource implements Paged.
func (r *RTree) SetSource(src pager.PageSource) { r.src = src }

// probeLock implements the planner's probeLocker hook.
func (r *RTree) probeLock() *sync.Mutex { return &r.probeMu }

// Source implements Paged.
func (r *RTree) Source() pager.PageSource { return r.src }

// PagedQuery implements Paged (and prefetch.Served).
func (r *RTree) PagedQuery(q geom.AABB, pool *pager.BufferPool, visit func(int32)) {
	if r.paged == nil {
		return
	}
	r.paged.QueryVia(q, pool, func(it rtree.Item) { visit(it.ID) })
}
