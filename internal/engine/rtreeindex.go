package engine

import (
	"fmt"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// RTree adapts an STR-bulk-loaded rtree.Tree to the engine layer, with its
// nodes laid onto simulated disk pages (rtree.PagedTree, one node per page —
// the classic disk R-tree layout). Stats mapping: every node access is a
// page read, so PagesRead is the tree's total node accesses, IndexReads is 0
// and NodesPerLevel carries the per-level breakdown the demo's panel shows.
type RTree struct {
	fanout   int
	tree     *rtree.Tree
	paged    *rtree.PagedTree
	src      pager.PageSource
	elemPage []pager.PageID // item ID -> leaf page
}

// NewRTree returns an unbuilt R-tree engine index with the given fanout
// (<= 0 selects rtree.DefaultFanout).
func NewRTree(fanout int) *RTree {
	if fanout <= 0 {
		fanout = rtree.DefaultFanout
	}
	return &RTree{fanout: fanout}
}

// WrapRTree adapts an already-built tree (STR- or insertion-built). The tree
// is paged at wrap time and must not be mutated afterwards.
func WrapRTree(t *rtree.Tree) (*RTree, error) {
	r := &RTree{fanout: t.Fanout(), tree: t}
	if err := r.page(); err != nil {
		return nil, err
	}
	return r, nil
}

// Inner returns the wrapped rtree.Tree (nil before Build).
func (r *RTree) Inner() *rtree.Tree { return r.tree }

// PagedTree returns the node-per-page layout (nil for an empty tree).
func (r *RTree) PagedTree() *rtree.PagedTree { return r.paged }

// Name implements SpatialIndex.
func (r *RTree) Name() string { return "rtree" }

// Build implements SpatialIndex. Rebuilding restores cold reads from the
// new store: an attached PageSource is dropped, since a pool wrapping the
// previous store would serve stale pages.
func (r *RTree) Build(items []rtree.Item) error {
	t, err := rtree.STR(items, r.fanout)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	r.tree, r.src = t, nil
	return r.page()
}

// page lays the tree's nodes onto pages and indexes each item's leaf page.
func (r *RTree) page() error {
	r.paged, r.elemPage = nil, nil
	if r.tree.Size() == 0 {
		return nil
	}
	p, err := rtree.NewPaged(r.tree)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	r.paged = p
	r.elemPage = make([]pager.PageID, r.tree.Size())
	root, _ := r.tree.Root()
	var walk func(v rtree.NodeView)
	walk = func(v rtree.NodeView) {
		if v.IsLeaf() {
			pg := p.PageOf(v)
			for _, it := range v.Items() {
				if int(it.ID) < len(r.elemPage) {
					r.elemPage[it.ID] = pg
				}
			}
			return
		}
		for i := 0; i < v.NumChildren(); i++ {
			walk(v.Child(i))
		}
	}
	walk(root)
	return nil
}

// Bounds implements SpatialIndex.
func (r *RTree) Bounds() geom.AABB {
	if r.tree == nil {
		return geom.EmptyAABB()
	}
	return r.tree.Bounds()
}

// NumItems implements SpatialIndex.
func (r *RTree) NumItems() int {
	if r.tree == nil {
		return 0
	}
	return r.tree.Size()
}

// fromRTree maps the tree's native stats onto the unified record.
func fromRTree(s rtree.QueryStats) QueryStats {
	return QueryStats{
		PagesRead:     s.NodeAccesses(),
		EntriesTested: s.EntriesTested,
		Results:       s.Results,
		NodesPerLevel: s.NodesPerLevel,
	}
}

func (r *RTree) query(q geom.AABB, emit func(int32)) QueryStats {
	if r.tree == nil {
		return QueryStats{}
	}
	visit := func(it rtree.Item) { emit(it.ID) }
	if r.src != nil && r.paged != nil {
		return fromRTree(r.paged.QueryVia(q, r.src, visit))
	}
	return fromRTree(r.tree.Query(q, visit))
}

// Query implements SpatialIndex, reading node pages through the configured
// source when one is attached.
func (r *RTree) Query(q geom.AABB, visit func(int32)) QueryStats {
	return r.query(q, visit)
}

// BatchQuery implements SpatialIndex via the shared deterministic executor.
func (r *RTree) BatchQuery(qs []geom.AABB, workers int, visit func(int, int32)) []QueryStats {
	return batchQuery(workers, qs, r.query, visit)
}

// Store implements Paged (nil for an empty tree).
func (r *RTree) Store() *pager.Store {
	if r.paged == nil {
		return nil
	}
	return r.paged.Store()
}

// NumPages implements Paged.
func (r *RTree) NumPages() int {
	if r.paged == nil {
		return 0
	}
	return r.paged.NumPages()
}

// PageOf implements Paged: the page of the leaf holding item id.
func (r *RTree) PageOf(id int32) pager.PageID {
	if id < 0 || int(id) >= len(r.elemPage) {
		return pager.InvalidPage
	}
	return r.elemPage[id]
}

// PagesInRange implements Paged: the pages of every node a query of box q
// would visit.
func (r *RTree) PagesInRange(q geom.AABB) []pager.PageID {
	if r.paged == nil {
		return nil
	}
	return r.paged.PagesInRange(q)
}

// SetSource implements Paged.
func (r *RTree) SetSource(src pager.PageSource) { r.src = src }

// Source implements Paged.
func (r *RTree) Source() pager.PageSource { return r.src }

// PagedQuery implements Paged (and prefetch.Served).
func (r *RTree) PagedQuery(q geom.AABB, pool *pager.BufferPool, visit func(int32)) {
	if r.paged == nil {
		return
	}
	r.paged.QueryVia(q, pool, func(it rtree.Item) { visit(it.ID) })
}
