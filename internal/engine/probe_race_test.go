package engine_test

import (
	"context"
	"sync"
	"testing"

	"neurospatial/internal/engine"
	"neurospatial/internal/geom"
)

// A planner-routed session serving a profiled Range workload concurrently
// with a first-time KNN plan (which probes, toggling Sharded.probeCold): the
// probe-execution lock must keep the read path race-free.
func TestProbeVsQueryRace(t *testing.T) {
	items := testItems(t, 10, 4242)
	sh := engine.NewSharded(engine.ShardedOptions{Shards: 4, PoolPages: 8})
	if err := sh.Build(items); err != nil {
		t.Fatal(err)
	}
	p := engine.NewPlanner(sh)
	sess, err := engine.Open(engine.WithPlanner(p))
	if err != nil {
		t.Fatal(err)
	}
	ctx := context.Background()
	rangeReq := engine.RangeRequest(geom.Box(geom.V(0, 0, 0), geom.V(50, 50, 50)))
	// Profile Range so later Range Dos don't probe.
	if _, err := sess.Do(ctx, rangeReq); err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			if _, err := sess.Do(ctx, rangeReq); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	go func() {
		defer wg.Done()
		// First plans for the three unprofiled kinds: each probes the
		// sharded index, toggling probeCold while the Range goroutine is
		// mid-query. Three probes widen the toggle window enough that the
		// race detector caught the unsynchronized bool reliably.
		for _, req := range []engine.Request{
			engine.KNNRequest(geom.V(10, 10, 10), 5),
			engine.PointRequest(geom.V(25, 25, 25)),
			engine.WithinDistanceRequest(geom.V(40, 40, 40), 15),
		} {
			if _, err := sess.Do(ctx, req); err != nil {
				t.Error(err)
				return
			}
		}
	}()
	wg.Wait()
}
