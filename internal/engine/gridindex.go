package engine

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"neurospatial/internal/geom"
	"neurospatial/internal/grid"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// GridOptions configures the grid engine index.
type GridOptions struct {
	// PageSize is the number of elements per data page. Default 64 (the
	// FLAT page size, so page counts are comparable).
	PageSize int
	// PerCell is the target mean number of items per grid cell. Default 8.
	PerCell float64
}

func (o GridOptions) sanitize() GridOptions {
	if o.PageSize <= 0 {
		o.PageSize = 64
	}
	if o.PerCell <= 0 {
		o.PerCell = 8
	}
	return o
}

// Grid is the thin grid-backed engine index: a uniform cell directory over
// item centers (each item registered in exactly one cell — the cell holding
// its box center), with elements laid out on pager pages in cell-major
// order so spatially close items share pages. A query inspects the cells
// overlapping the range expanded by the largest item half-extent (the
// standard center-assignment correction), reads each candidate's data page
// through the configured PageSource, and refines against the exact box.
//
// Stats mapping: IndexReads counts cells inspected (the directory is
// RAM-resident), PagesRead counts distinct data pages read, EntriesTested
// counts candidate refinements. Hits are emitted in cell-major order,
// ascending ID within a cell — a fixed, worker-count-independent order.
type Grid struct {
	opts    GridOptions
	g       *grid.Grid
	bounds  geom.AABB
	boxes   []geom.AABB
	maxHalf float64
	store   *pager.Store
	pageOf  []pager.PageID
	// coords is the struct-of-arrays sidecar of store; itemOff[id] is item
	// id's slot in it (cell-major layout position), so the cell-major
	// refinement sweep reads the coordinate runs sequentially.
	coords  *pager.Coords
	itemOff []int32
	// boxOf is the exact-geometry accessor bound once per build (a per-query
	// closure would be a hot-path allocation).
	boxOf func(int32) geom.AABB
	src   pager.PageSource
	// probeMu is the per-instance probe-execution lock (see planner.go).
	probeMu sync.Mutex //neurospatial:lock grid.probe
	// zoneMu guards the lazily derived zone map of the current build.
	zoneMu sync.Mutex //neurospatial:lock grid.zone
	zones  []idZone
}

// NewGrid returns an unbuilt grid engine index.
func NewGrid(opts GridOptions) *Grid { return &Grid{opts: opts.sanitize()} }

// Name implements SpatialIndex.
func (gx *Grid) Name() string { return "grid" }

// Build implements SpatialIndex. Rebuilding restores cold reads from the
// new store: an attached PageSource is dropped, since a pool wrapping the
// previous store would serve stale pages.
func (gx *Grid) Build(items []rtree.Item) error { return gx.build(items, 0, 0, 0) }

// buildFixed is Build with the cell directory's dimensions pinned instead of
// auto-sized — the durable-snapshot recovery path, which must reproduce the
// recorded build exactly even if the auto-sizing heuristic changes.
func (gx *Grid) buildFixed(items []rtree.Item, nx, ny, nz int) error {
	return gx.build(items, nx, ny, nz)
}

func (gx *Grid) build(items []rtree.Item, nx, ny, nz int) error {
	gx.g, gx.store, gx.pageOf, gx.src = nil, nil, nil, nil
	gx.coords, gx.itemOff = nil, nil
	gx.zoneMu.Lock()
	gx.zones = nil
	gx.zoneMu.Unlock()
	gx.boxes = make([]geom.AABB, len(items))
	gx.boxOf = func(id int32) geom.AABB { return gx.boxes[id] }
	gx.bounds = geom.EmptyAABB()
	gx.maxHalf = 0
	for _, it := range items {
		if it.ID < 0 || int(it.ID) >= len(items) {
			return fmt.Errorf("engine: grid item ID %d not dense in [0,%d)", it.ID, len(items))
		}
		gx.boxes[it.ID] = it.Box
		gx.bounds = gx.bounds.Union(it.Box)
		half := it.Box.Size().Scale(0.5)
		for _, h := range []float64{half.X, half.Y, half.Z} {
			if h > gx.maxHalf {
				gx.maxHalf = h
			}
		}
	}
	if len(items) == 0 {
		return nil
	}

	// Cell directory over item centers: point boxes land in exactly one
	// cell, so candidates need no per-query deduplication.
	centers := make([]geom.AABB, len(items))
	for id, b := range gx.boxes {
		c := b.Center()
		centers[id] = geom.Box(c, c)
	}
	var g *grid.Grid
	var err error
	if nx > 0 && ny > 0 && nz > 0 {
		g, err = grid.New(gx.bounds, nx, ny, nz, centers)
	} else {
		g, err = grid.NewAuto(gx.bounds, centers, gx.opts.PerCell)
	}
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	gx.g = g

	// Page layout: fill pages in cell-major order (ascending ID within a
	// cell), continuously across cell boundaries so pages stay near-full.
	builder, err := pager.NewBuilder(gx.opts.PageSize)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	gx.pageOf = make([]pager.PageID, len(items))
	gx.itemOff = make([]int32, len(items))
	slot := int32(0)
	for c := 0; c < g.NumCells(); c++ {
		for _, id := range g.CellBoxes(c) {
			gx.pageOf[id] = builder.Add(id)
			gx.itemOff[id] = slot
			slot++
		}
	}
	gx.store = builder.Build()
	gx.coords = pager.BuildCoords(gx.store, gx.boxOf)
	return nil
}

// Bounds implements SpatialIndex.
func (gx *Grid) Bounds() geom.AABB { return gx.bounds }

// NumItems implements SpatialIndex.
func (gx *Grid) NumItems() int { return len(gx.boxes) }

func (gx *Grid) source() pager.PageSource {
	if gx.src != nil {
		return gx.src
	}
	return gx.store
}

// gridRangeScratch is the pooled per-query state of the grid range
// traversal. The cell visitor closure is bound once per pooled object (a
// per-query closure literal is a heap allocation); the read-page set is a
// stamped slice reset in O(1) instead of a fresh map.
type gridRangeScratch struct {
	gx    *Grid
	q     geom.AABB
	src   pager.PageSource
	emit  func(int32)
	stats QueryStats
	seen  []uint32
	stamp uint32
	cell  func(int, []int32)
}

var gridRangePool = sync.Pool{New: func() any {
	s := &gridRangeScratch{}
	s.cell = func(_ int, ids []int32) {
		s.stats.IndexReads++
		for _, id := range ids {
			if pg := s.gx.pageOf[id]; s.seen[pg] != s.stamp {
				s.seen[pg] = s.stamp
				s.src.ReadPage(pg)
				s.stats.PagesRead++
			}
			s.stats.EntriesTested++
			// Cell-major sweep ⇒ itemOff ascends ⇒ sequential SoA loads.
			if s.gx.coords.IntersectsAt(int(s.gx.itemOff[id]), s.q) {
				s.stats.Results++
				s.emit(id)
			}
		}
	}
	return s
}}

func getGridRange(gx *Grid, q geom.AABB, src pager.PageSource, emit func(int32)) *gridRangeScratch {
	s := gridRangePool.Get().(*gridRangeScratch)
	s.gx, s.q, s.src, s.emit = gx, q, src, emit
	s.stats = QueryStats{}
	if n := gx.store.NumPages(); cap(s.seen) < n {
		s.seen = make([]uint32, n)
	} else {
		s.seen = s.seen[:n]
	}
	s.stamp++
	if s.stamp == 0 {
		clear(s.seen)
		s.stamp = 1
	}
	return s
}

// putGridRange drops the references that would pin a source or visitor alive
// and recycles the scratch.
func putGridRange(s *gridRangeScratch) {
	s.gx, s.src, s.emit = nil, nil, nil
	gridRangePool.Put(s)
}

//neurospatial:hotpath
func (gx *Grid) queryVia(q geom.AABB, src pager.PageSource, emit func(int32)) QueryStats {
	if gx.g == nil {
		return QueryStats{}
	}
	s := getGridRange(gx, q, src, emit)
	// Deferred so a cancellation panic from a ctx-wrapped source still
	// recycles the scratch while unwinding toward catchCancel.
	defer putGridRange(s)
	gx.g.ForEachInRange(q.Expand(gx.maxHalf), s.cell)
	return s.stats
}

// zoneMap returns the per-page (min, max) item-ID zones of the current
// build, derived once from the RAM-resident page layout (not page I/O).
func (gx *Grid) zoneMap() []idZone {
	gx.zoneMu.Lock()
	defer gx.zoneMu.Unlock()
	if gx.zones == nil {
		gx.zones = storeZones(gx.store)
	}
	return gx.zones
}

// iterate implements the internal streaming capability. The ascending-ID
// kinds run the zone-map merge over the candidate pages of the expanded
// range (an item's cell is determined by its box center, so every true hit's
// page is among them); the exact refinement is the RAM-resident item box, so
// page residents outside the candidate cells are tested and rejected — the
// streaming path's EntriesTested can exceed the eager traversal's, while
// PagesRead is identical on a full drain. IndexReads counts candidate pages
// rather than cells inspected. KNN serves the bounded best-first cell scan
// eagerly.
func (gx *Grid) iterate(ctx context.Context, req Request, after *Hit) (HitIterator, error) {
	if gx.g == nil {
		return &sliceIter{}, ctxErr(ctx)
	}
	if req.Kind == KNN {
		return knnEager(func(visit func(Hit)) (QueryStats, error) {
			return gx.doKNN(ctx, req.Center, req.K, visit)
		}, KNN, after)
	}
	pages := gx.PagesInRange(queryBox(req))
	ps := newPageStream(ctx, gx.source(), pages, gx.zoneMap(), after,
		acceptFor(req, gx.boxOf))
	if req.Kind == Range || req.Kind == Point {
		ps.useCoords(gx.coords, queryBox(req))
	}
	return ps, nil
}

// rangeIDs runs the native cell traversal gathering ids into the pooled
// collector, with cancellation checked at every data-page read. The caller
// owns releasing col regardless of error; the background-context path skips
// the catchCancel closure (itself a per-call allocation).
//
//neurospatial:hotpath
func (gx *Grid) rangeIDs(ctx context.Context, q geom.AABB, col *idCollector) (QueryStats, error) {
	if !cancelable(ctx) {
		return gx.queryVia(q, gx.source(), col.visit), nil
	}
	src := &ctxSource{ctx: ctx, src: gx.source()}
	var st QueryStats
	//lint:ignore hotpath the catchCancel closure is the cancelable path's one per-call allocation; the background path above skips it
	err := catchCancel(func() {
		st = gx.queryVia(q, src, col.visit)
	})
	if err != nil {
		return QueryStats{}, err
	}
	return st, nil
}

// Do implements SpatialIndex. Range, Point and WithinDistance run as
// filtered cell traversals (with the exact Dist2Point refinement for the
// sphere kind); KNN runs a best-first scan over the cell directory: each
// non-empty cell's lower bound is the distance to the cell box expanded by
// the largest item half-extent (items are registered by center, so an
// item's box never escapes that expansion), cells are visited
// nearest-first, their candidates read through the configured source (one
// read per distinct page, as in the range path), and the scan stops when the
// next cell's bound exceeds the current k-th distance.
//
//neurospatial:hotpath
func (gx *Grid) Do(ctx context.Context, req Request, visit func(Hit)) (QueryStats, error) {
	if err := req.Validate(); err != nil {
		return QueryStats{}, err
	}
	if visit == nil {
		visit = func(Hit) {}
	}
	if gx.g == nil {
		return QueryStats{}, ctxErr(ctx)
	}
	if err := ctxErr(ctx); err != nil {
		return QueryStats{}, err
	}
	if req.paginated() {
		return doPaginated(ctx, gx, req, visit)
	}
	switch req.Kind {
	case Range, Point:
		q := req.Box
		if req.Kind == Point {
			q = geom.Box(req.Center, req.Center)
		}
		col := getIDCollector()
		defer putIDCollector(col)
		st, err := gx.rangeIDs(ctx, q, col)
		if err != nil {
			return QueryStats{}, err
		}
		emitIDHits(col.ids, visit)
		return st, nil
	case WithinDistance:
		col := getIDCollector()
		defer putIDCollector(col)
		st, err := gx.rangeIDs(ctx, geom.BoxAround(req.Center, req.Radius), col)
		if err != nil {
			return QueryStats{}, err
		}
		results, tested := withinRefine(col.ids, gx.boxOf, req.Center, req.Radius, visit)
		st.Results = results
		st.EntriesTested += tested
		return st, nil
	case KNN:
		return gx.doKNN(ctx, req.Center, req.K, visit)
	}
	return QueryStats{}, &RequestError{Kind: req.Kind, Field: "Kind", Reason: "is not a known query kind"}
}

// cellBound is a (lower bound, cell) pair of the grid's nearest-first scan.
type cellBound struct {
	d2 float64
	c  int
}

func cmpCellBound(a, b cellBound) int {
	switch {
	case a.d2 < b.d2:
		return -1
	case a.d2 > b.d2:
		return 1
	case a.c < b.c:
		return -1
	case a.c > b.c:
		return 1
	}
	return 0
}

var cellBoundPool = sync.Pool{New: func() any { s := make([]cellBound, 0, 64); return &s }}

// doKNN is the grid k-nearest-neighbors execution. The cell order, the
// read-page set and the top-k accumulator are pooled.
//
//neurospatial:hotpath
func (gx *Grid) doKNN(ctx context.Context, center geom.Vec, k int, visit func(Hit)) (QueryStats, error) {
	var st QueryStats
	orderBuf := cellBoundPool.Get().(*[]cellBound)
	defer func() { *orderBuf = (*orderBuf)[:0]; cellBoundPool.Put(orderBuf) }()
	order := (*orderBuf)[:0]
	for c := 0; c < gx.g.NumCells(); c++ {
		if len(gx.g.CellBoxes(c)) == 0 {
			continue
		}
		bound := gx.g.CellBounds(c).Expand(gx.maxHalf).Dist2Point(center)
		order = append(order, cellBound{bound, c})
	}
	*orderBuf = order
	slices.SortFunc(order, cmpCellBound)
	st.IndexReads = int64(len(order))
	src := gx.source()
	acc := getKNNAcc(k)
	defer putKNNAcc(acc)
	read := getPageIDScratch(gx.store.NumPages())
	defer putPageIDScratch(read)
	for _, cb := range order {
		if acc.Full() && cb.d2 > acc.Bound() {
			break
		}
		for _, id := range gx.g.CellBoxes(cb.c) {
			if pg := gx.pageOf[id]; !read.visited(int(pg)) {
				if err := ctxErr(ctx); err != nil {
					return QueryStats{}, err
				}
				src.ReadPage(pg)
				st.PagesRead++
			}
			st.EntriesTested++
			acc.Offer(Hit{ID: id, Dist2: gx.boxes[id].Dist2Point(center)})
		}
	}
	hits := acc.Hits()
	st.Results = int64(len(hits))
	for _, h := range hits {
		visit(h)
	}
	return st, nil
}

// queryNative implements nativeQuerier.
func (gx *Grid) queryNative(q geom.AABB, visit func(int32)) QueryStats {
	return gx.queryVia(q, gx.source(), visit)
}

// Query implements SpatialIndex.
//
// Deprecated: route new call sites through Session.Do with a Range request.
func (gx *Grid) Query(q geom.AABB, visit func(int32)) QueryStats {
	return gx.queryNative(q, visit)
}

// BatchQuery implements SpatialIndex via the shared deterministic executor.
//
// Deprecated: route new call sites through Session.DoBatch.
func (gx *Grid) BatchQuery(qs []geom.AABB, workers int, visit func(int, int32)) []QueryStats {
	src := gx.source()
	return batchQuery(workers, qs, func(q geom.AABB, emit func(int32)) QueryStats {
		return gx.queryVia(q, src, emit)
	}, visit)
}

// Store implements Paged (nil before Build or when empty).
func (gx *Grid) Store() *pager.Store { return gx.store }

// NumPages implements Paged.
func (gx *Grid) NumPages() int {
	if gx.store == nil {
		return 0
	}
	return gx.store.NumPages()
}

// PageOf implements Paged.
func (gx *Grid) PageOf(id int32) pager.PageID {
	if id < 0 || int(id) >= len(gx.pageOf) {
		return pager.InvalidPage
	}
	return gx.pageOf[id]
}

// PagesInRange implements Paged: the distinct pages of candidates in the
// range, in first-touch (cell-major) order.
func (gx *Grid) PagesInRange(q geom.AABB) []pager.PageID {
	if gx.g == nil {
		return nil
	}
	var out []pager.PageID
	seen := make(map[pager.PageID]bool)
	gx.g.ForEachInRange(q.Expand(gx.maxHalf), func(_ int, ids []int32) {
		for _, id := range ids {
			if pg := gx.pageOf[id]; !seen[pg] {
				seen[pg] = true
				out = append(out, pg)
			}
		}
	})
	return out
}

// SetSource implements Paged.
func (gx *Grid) SetSource(src pager.PageSource) { gx.src = src }

// probeLock implements the planner's probeLocker hook.
func (gx *Grid) probeLock() *sync.Mutex { return &gx.probeMu }

// Source implements Paged.
func (gx *Grid) Source() pager.PageSource { return gx.src }

// PagedQuery implements Paged (and prefetch.Served).
func (gx *Grid) PagedQuery(q geom.AABB, pool *pager.BufferPool, visit func(int32)) {
	gx.queryVia(q, pool, visit)
}
