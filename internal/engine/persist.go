package engine

import (
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"

	"neurospatial/internal/durable"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// This file is the durability bridge between the in-memory Dataset and the
// internal/durable file formats:
//
//   - freeze/thaw turn a compacted snapshot's contender indexes into
//     durable.IndexRec records and back. A frozen record holds only the sort
//     outputs a build computed (page layouts, leaf runs, grid dims, shard
//     partitions); thawing re-derives everything else with linear work, so
//     OpenDataset never re-sorts or re-indexes anything.
//   - DurableDataset wraps a Dataset with a write-ahead log (every Commit
//     appends and fsyncs its batch before the epoch publishes, via the
//     Dataset.onCommit hook) and a checkpoint protocol (compact, write
//     snapshot + page file + fresh WAL, then atomically install them with a
//     manifest rename).
//   - OpenDataset recovers the last durable state: thaw the manifest's
//     snapshot, attach each contender to its on-disk page segment for cold
//     reads, then replay the WAL's committed batches.

// maxDatasetEpoch bounds recovered epochs so a corrupt snapshot cannot
// overflow the in-memory int epoch.
const maxDatasetEpoch = 1 << 31

// encodeOptions renders the dataset options as the opaque blob stored in a
// snapshot. Bases is a build-time transfer of live index instances and is
// never serialized.
func encodeOptions(o DatasetOptions) ([]byte, error) {
	o.Bases = nil
	b, err := json.Marshal(o)
	if err != nil {
		return nil, fmt.Errorf("engine: encode dataset options: %w", err)
	}
	return b, nil
}

func decodeOptions(blob []byte) (DatasetOptions, error) {
	var o DatasetOptions
	if err := json.Unmarshal(blob, &o); err != nil {
		return DatasetOptions{}, fmt.Errorf("engine: decode dataset options: %w", err)
	}
	return o, nil
}

// freezeIndex records the build outputs of one contender (see IndexRec for
// the per-kind field meaning).
func freezeIndex(name string, ix SpatialIndex) (durable.IndexRec, error) {
	rec := durable.IndexRec{Name: name}
	switch v := ix.(type) {
	case *Flat:
		st := v.Store()
		if st == nil {
			return rec, fmt.Errorf("engine: freeze of unbuilt flat index")
		}
		for p := 0; p < st.NumPages(); p++ {
			ids := st.Page(pager.PageID(p))
			rec.Order = append(rec.Order, ids...)
			rec.GroupLens = append(rec.GroupLens, int32(len(ids)))
		}
	case *RTree:
		t := v.Inner()
		if t == nil {
			return rec, fmt.Errorf("engine: freeze of unbuilt rtree index")
		}
		items, runs := t.LeafRuns()
		rec.Order = make([]int32, len(items))
		for i, it := range items {
			rec.Order[i] = it.ID
		}
		rec.GroupLens = runs
		rec.Meta = []int64{int64(t.Fanout())}
	case *Grid:
		if v.g == nil {
			return rec, fmt.Errorf("engine: freeze of unbuilt grid index")
		}
		nx, ny, nz := v.g.Dims()
		rec.Meta = []int64{int64(nx), int64(ny), int64(nz)}
	case *Sharded:
		for i := range v.shards {
			sh := &v.shards[i]
			rec.GroupLens = append(rec.GroupLens, int32(len(sh.global)))
			rec.Order = append(rec.Order, sh.global...)
			rec.Bounds = append(rec.Bounds, sh.bounds)
			sub, err := freezeIndex(v.opts.Index, sh.sub)
			if err != nil {
				return rec, fmt.Errorf("engine: freeze shard %d: %w", i, err)
			}
			rec.Subs = append(rec.Subs, sub)
		}
	default:
		return rec, fmt.Errorf("engine: cannot freeze index kind %T", ix)
	}
	return rec, nil
}

// splitGroups slices order into the runs described by lens, validating full
// coverage. The returned slices alias order.
func splitGroups(order, lens []int32) ([][]int32, error) {
	out := make([][]int32, 0, len(lens))
	off := 0
	for i, l := range lens {
		n := int(l)
		if n < 0 || off+n > len(order) {
			return nil, fmt.Errorf("group %d claims %d of %d remaining entries", i, n, len(order)-off)
		}
		out = append(out, order[off:off+n])
		off += n
	}
	if off != len(order) {
		return nil, fmt.Errorf("groups cover %d of %d entries", off, len(order))
	}
	return out, nil
}

// thawIndex reconstructs one top-level contender from its record over the
// dense local item set (items[l].ID == l).
func thawIndex(rec *durable.IndexRec, items []rtree.Item, o DatasetOptions) (SpatialIndex, error) {
	switch rec.Name {
	case "flat":
		return thawFlat(rec, items, o.Flat)
	case "rtree":
		return thawRTree(rec, items)
	case "grid":
		return thawGrid(rec, items, o.Grid)
	case "sharded":
		return thawSharded(rec, items, ShardedOptions{
			Shards: o.Shards, Index: o.ShardIndex,
			Flat: o.Flat, RTreeFanout: o.RTreeFanout, Grid: o.Grid,
		})
	}
	return nil, fmt.Errorf("engine: thaw of unknown index kind %q", rec.Name)
}

func thawFlat(rec *durable.IndexRec, items []rtree.Item, fo flat.Options) (*Flat, error) {
	pages, err := splitGroups(rec.Order, rec.GroupLens)
	if err != nil {
		return nil, fmt.Errorf("engine: thaw flat: %w", err)
	}
	idx, err := flat.Rehydrate(items, pages, fo)
	if err != nil {
		return nil, fmt.Errorf("engine: thaw flat: %w", err)
	}
	return WrapFlat(idx), nil
}

func thawRTree(rec *durable.IndexRec, items []rtree.Item) (*RTree, error) {
	if len(rec.Meta) != 1 {
		return nil, fmt.Errorf("engine: thaw rtree: %d meta fields, want 1 (fanout)", len(rec.Meta))
	}
	if len(rec.Order) != len(items) {
		return nil, fmt.Errorf("engine: thaw rtree: %d leaf entries for %d items", len(rec.Order), len(items))
	}
	seen := make([]bool, len(items))
	leaf := make([]rtree.Item, len(rec.Order))
	for i, id := range rec.Order {
		if id < 0 || int(id) >= len(items) || seen[id] {
			return nil, fmt.Errorf("engine: thaw rtree: leaf entry %d names invalid or duplicate item %d", i, id)
		}
		seen[id] = true
		leaf[i] = rtree.Item{Box: items[id].Box, ID: id}
	}
	t, err := rtree.FromLeafRuns(leaf, rec.GroupLens, int(rec.Meta[0]))
	if err != nil {
		return nil, fmt.Errorf("engine: thaw rtree: %w", err)
	}
	return WrapRTree(t)
}

func thawGrid(rec *durable.IndexRec, items []rtree.Item, gridOpts GridOptions) (*Grid, error) {
	if len(rec.Meta) != 3 {
		return nil, fmt.Errorf("engine: thaw grid: %d meta fields, want 3 (nx, ny, nz)", len(rec.Meta))
	}
	nx, ny, nz := int(rec.Meta[0]), int(rec.Meta[1]), int(rec.Meta[2])
	if nx <= 0 || ny <= 0 || nz <= 0 {
		return nil, fmt.Errorf("engine: thaw grid: invalid dims %d×%d×%d", nx, ny, nz)
	}
	gx := NewGrid(gridOpts)
	if err := gx.buildFixed(items, nx, ny, nz); err != nil {
		return nil, fmt.Errorf("engine: thaw grid: %w", err)
	}
	return gx, nil
}

// thawSub reconstructs one shard's sub-index from its record.
func thawSub(rec *durable.IndexRec, items []rtree.Item, so ShardedOptions) (Paged, error) {
	if rec.Name != so.Index {
		return nil, fmt.Errorf("engine: thaw shard sub-index is %q, want %q", rec.Name, so.Index)
	}
	switch so.Index {
	case "flat":
		return thawFlat(rec, items, so.Flat)
	case "rtree":
		return thawRTree(rec, items)
	case "grid":
		return thawGrid(rec, items, so.Grid)
	}
	return nil, fmt.Errorf("engine: thaw of unknown sharded sub-index %q", so.Index)
}

// thawSharded mirrors Sharded.Build over the recorded partition: the shard
// membership, per-shard sub-indexes and the global page space are
// reconstructed exactly as the original build wired them, without re-running
// shard.Partition.
func thawSharded(rec *durable.IndexRec, items []rtree.Item, opts ShardedOptions) (*Sharded, error) {
	s := NewSharded(opts)
	s.n = len(items)
	s.bounds = geom.EmptyAABB()
	if len(items) == 0 {
		if len(rec.GroupLens) != 0 {
			return nil, fmt.Errorf("engine: thaw sharded: %d shards over zero items", len(rec.GroupLens))
		}
		return s, nil
	}
	k := len(rec.GroupLens)
	if k == 0 || len(rec.Subs) != k || len(rec.Bounds) != k {
		return nil, fmt.Errorf("engine: thaw sharded: inconsistent shard record (%d sizes, %d subs, %d bounds)",
			k, len(rec.Subs), len(rec.Bounds))
	}
	if len(rec.Order) != len(items) {
		return nil, fmt.Errorf("engine: thaw sharded: partition covers %d of %d items", len(rec.Order), len(items))
	}
	parts, err := splitGroups(rec.Order, rec.GroupLens)
	if err != nil {
		return nil, fmt.Errorf("engine: thaw sharded: %w", err)
	}
	s.shards = make([]shardState, k)
	s.shardOf = make([]int32, len(items))
	s.local = make([]int32, len(items))
	seen := make([]bool, len(items))
	for i, globals := range parts {
		if len(globals) == 0 {
			return nil, fmt.Errorf("engine: thaw sharded: shard %d is empty", i)
		}
		localItems := make([]rtree.Item, len(globals))
		gcopy := make([]int32, len(globals))
		bounds := geom.EmptyAABB()
		prev := int32(-1)
		for l, g := range globals {
			// Ascending order within a shard is load-bearing (the stream
			// resume search and the kNN tie-break rely on local IDs ascending
			// with global IDs); it also rejects negatives and in-shard
			// duplicates, and seen catches cross-shard ones.
			if g <= prev || int(g) >= len(items) || seen[g] {
				return nil, fmt.Errorf("engine: thaw sharded: shard %d entry %d names invalid, duplicate or out-of-order item %d", i, l, g)
			}
			prev = g
			seen[g] = true
			gcopy[l] = g
			localItems[l] = rtree.Item{Box: items[g].Box, ID: int32(l)}
			s.shardOf[g] = int32(i)
			s.local[g] = int32(l)
			bounds = bounds.Union(items[g].Box)
		}
		if bounds != rec.Bounds[i] {
			return nil, fmt.Errorf("engine: thaw sharded: shard %d bounds diverge from the recorded partition", i)
		}
		sub, err := thawSub(&rec.Subs[i], localItems, s.opts)
		if err != nil {
			return nil, fmt.Errorf("engine: thaw sharded: shard %d: %w", i, err)
		}
		s.shards[i] = shardState{sub: sub, bounds: bounds, global: gcopy}
		s.bounds = s.bounds.Union(bounds)
		if s.opts.PoolPages > 0 {
			pool, err := pager.NewBufferPool(sub.Store(), s.opts.PoolPages)
			if err != nil {
				return nil, fmt.Errorf("engine: thaw sharded: shard %d pool: %w", i, err)
			}
			s.shards[i].pool = pool
		}
		sub.SetSource(&shardSource{owner: s, shard: i})
	}

	// The global page space, wired exactly as Build wires it.
	capacity := 1
	for i := range s.shards {
		if c := s.shards[i].sub.Store().Capacity(); c > capacity {
			capacity = c
		}
	}
	builder, err := pager.NewBuilder(capacity)
	if err != nil {
		return nil, err
	}
	var base pager.PageID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.pageBase = base
		local := sh.sub.Store()
		for p := 0; p < local.NumPages(); p++ {
			for _, id := range local.Page(pager.PageID(p)) {
				if id >= 0 {
					builder.Add(sh.global[id])
				} else {
					builder.Add(id) // internal-node placeholder (rtree pages)
				}
			}
			builder.FlushPage()
		}
		base += pager.PageID(local.NumPages())
	}
	s.store = builder.Build()
	if s.store.NumPages() != int(base) {
		return nil, fmt.Errorf("engine: thaw sharded: page bookkeeping diverged: %d global pages, %d shard pages",
			s.store.NumPages(), base)
	}
	return s, nil
}

// freezeSnapshot captures a compacted snapshot as a durable record.
func (d *Dataset) freezeSnapshot(snap *Snapshot) (*durable.SnapshotRec, error) {
	if len(snap.delta) != 0 || len(snap.tombs) != 0 {
		return nil, fmt.Errorf("engine: freeze of uncompacted snapshot (epoch %d)", snap.epoch)
	}
	blob, err := encodeOptions(d.opts)
	if err != nil {
		return nil, err
	}
	rec := &durable.SnapshotRec{
		Epoch:   uint64(snap.epoch),
		NextID:  d.nextID.Load(),
		Options: blob,
		Items:   snap.baseItems,
	}
	if snap.bases != nil {
		rec.Indexes = make([]durable.IndexRec, len(d.opts.Contenders))
		for i, name := range d.opts.Contenders {
			ir, err := freezeIndex(name, snap.bases[i])
			if err != nil {
				return nil, err
			}
			rec.Indexes[i] = ir
		}
	}
	return rec, nil
}

// thawDataset reconstructs a Dataset at the snapshot's epoch with an empty
// overlay — the state a compaction at that epoch published.
func thawDataset(rec *durable.SnapshotRec) (*Dataset, error) {
	opts, err := decodeOptions(rec.Options)
	if err != nil {
		return nil, err
	}
	opts = opts.sanitize()
	if rec.Epoch > maxDatasetEpoch {
		return nil, fmt.Errorf("engine: thaw: implausible epoch %d", rec.Epoch)
	}
	prev := int32(-1)
	for _, it := range rec.Items {
		if it.ID <= prev {
			return nil, fmt.Errorf("engine: thaw: snapshot items out of ID order at %d", it.ID)
		}
		prev = it.ID
	}
	if rec.NextID <= prev {
		return nil, fmt.Errorf("engine: thaw: ID watermark %d at or below max item ID %d", rec.NextID, prev)
	}

	d := &Dataset{opts: opts}
	d.nextID.Store(rec.NextID)
	var bases []SpatialIndex
	if len(rec.Items) > 0 {
		if len(rec.Indexes) != len(opts.Contenders) {
			return nil, fmt.Errorf("engine: thaw: %d index records for %d contenders",
				len(rec.Indexes), len(opts.Contenders))
		}
		local := make([]rtree.Item, len(rec.Items))
		for l, it := range rec.Items {
			local[l] = rtree.Item{Box: it.Box, ID: int32(l)}
		}
		bases = make([]SpatialIndex, len(opts.Contenders))
		for i, name := range opts.Contenders {
			if rec.Indexes[i].Name != name {
				return nil, fmt.Errorf("engine: thaw: index record %d is %q, want %q", i, rec.Indexes[i].Name, name)
			}
			if bases[i], err = thawIndex(&rec.Indexes[i], local, opts); err != nil {
				return nil, err
			}
		}
	}
	layout := d.buildLayout(rec.Items)
	d.cur = newSnapshot(int(rec.Epoch), d.opts, rec.Items, bases, nil, nil,
		layout, layout.NumPages(), pager.CowStats{})
	return d, nil
}

// DurableDataset binds a Dataset to an on-disk directory: every Commit's
// batch is WAL-logged and fsynced before its epoch publishes, Checkpoint
// folds the overlay into a fresh snapshot + page file generation installed by
// an atomic manifest rename, and OpenDataset recovers the last durable epoch.
// All Dataset methods work unchanged; the embedded Dataset is the live one.
type DurableDataset struct {
	*Dataset
	dir string
	man durable.Manifest
	wal *durable.WAL
	// pageFiles are every page file opened over the dataset's lifetime. Old
	// generations stay open after a checkpoint unlinks their path — attached
	// segment sources may still serve pinned readers — and close with the
	// dataset.
	pageFiles []*durable.PageFile
}

func stateFileNames(epoch uint64) (snap, pages, wal string) {
	return fmt.Sprintf("snap-%d.nss", epoch),
		fmt.Sprintf("pages-%d.nsp", epoch),
		fmt.Sprintf("wal-%d.nsl", epoch)
}

// CreateDataset builds a new dataset over items (dense IDs, as NewDataset)
// and persists its initial epoch in dir. It refuses to overwrite an existing
// dataset.
func CreateDataset(dir string, items []rtree.Item, opts DatasetOptions) (*DurableDataset, error) {
	if _, err := os.Stat(filepath.Join(dir, durable.ManifestName)); err == nil {
		return nil, fmt.Errorf("engine: dataset already exists in %s", dir)
	}
	d, err := NewDataset(items, opts)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("engine: create dataset dir: %w", err)
	}
	dd := &DurableDataset{Dataset: d, dir: dir}
	d.writeMu.Lock()
	err = dd.checkpointLocked()
	d.writeMu.Unlock()
	if err != nil {
		return nil, err
	}
	dd.installHook()
	return dd, nil
}

// Dir returns the dataset directory.
func (dd *DurableDataset) Dir() string { return dd.dir }

// Manifest returns the currently installed manifest.
func (dd *DurableDataset) Manifest() durable.Manifest { return dd.man }

// PageFiles returns every page file the dataset holds open, newest last. The
// newest one serves the current on-disk generation; tests use its read
// counter as the no-rescan witness.
func (dd *DurableDataset) PageFiles() []*durable.PageFile { return dd.pageFiles }

// installHook wires Commit to the WAL: the batch record must be on disk
// before the epoch publishes. It runs under writeMu (Commit holds it), which
// is also what serializes it against Checkpoint's WAL swap.
func (dd *DurableDataset) installHook() {
	dd.Dataset.onCommit = func(epoch uint64, ops []txOp) error {
		rec := durable.Record{Epoch: epoch, Ops: make([]durable.Op, len(ops))}
		for i, op := range ops {
			rec.Ops[i] = durable.Op{Kind: walKind(op.kind), ID: op.id, Box: op.box}
		}
		return dd.wal.Append(rec)
	}
}

func walKind(k opKind) uint8 {
	switch k {
	case opInsert:
		return durable.OpInsert
	case opDelete:
		return durable.OpDelete
	default:
		return durable.OpUpdate
	}
}

func engineKind(k uint8) (opKind, error) {
	switch k {
	case durable.OpInsert:
		return opInsert, nil
	case durable.OpDelete:
		return opDelete, nil
	case durable.OpUpdate:
		return opUpdate, nil
	}
	return 0, fmt.Errorf("engine: wal replay: unknown op kind %d", k)
}

// Checkpoint folds the overlay down (via the normal compaction path) and
// installs the compacted epoch as the new durable generation: snapshot, page
// file and a fresh empty WAL, made current by an atomic manifest rename. The
// superseded generation's files are then deleted best-effort — recovery never
// looks at anything the manifest does not name. A checkpoint at the already
// durable epoch is a no-op.
func (dd *DurableDataset) Checkpoint() error {
	d := dd.Dataset
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	if _, err := d.compactUnderWrite(); err != nil {
		return err
	}
	if uint64(d.Current().epoch) == dd.man.Epoch {
		return nil // nothing committed since the last checkpoint
	}
	return dd.checkpointLocked()
}

// checkpointLocked writes the current (compacted) snapshot as a new durable
// generation. Caller holds writeMu, so no commit can interleave between the
// state capture and the WAL swap.
func (dd *DurableDataset) checkpointLocked() error {
	d := dd.Dataset
	snap := d.Current()
	rec, err := d.freezeSnapshot(snap)
	if err != nil {
		return err
	}
	snapName, pagesName, walName := stateFileNames(rec.Epoch)
	if err := durable.WriteSnapshot(filepath.Join(dd.dir, snapName), rec); err != nil {
		return err
	}
	var segs []durable.Segment
	if snap.bases != nil {
		for i, name := range d.opts.Contenders {
			pg, ok := snap.bases[i].(Paged)
			if !ok || pg.Store() == nil {
				continue
			}
			segs = append(segs, durable.Segment{Name: name, Store: pg.Store()})
		}
	}
	if err := durable.WritePageFile(filepath.Join(dd.dir, pagesName), segs); err != nil {
		return err
	}
	w, err := durable.CreateWAL(filepath.Join(dd.dir, walName), rec.Epoch)
	if err != nil {
		return err
	}
	durable.MaybeCrash(durable.CrashCheckpointFiles)
	m := durable.Manifest{Epoch: rec.Epoch, NextID: rec.NextID,
		Snapshot: snapName, Pages: pagesName, WAL: walName}
	if err := durable.WriteManifest(dd.dir, m); err != nil {
		w.Close()
		return err
	}
	durable.MaybeCrash(durable.CrashCheckpointRenamed)
	old := dd.man
	if dd.wal != nil {
		dd.wal.Close()
	}
	dd.wal, dd.man = w, m
	if old.Snapshot != "" {
		// Best-effort: a crash here leaves stale files recovery ignores.
		os.Remove(filepath.Join(dd.dir, old.Snapshot))
		os.Remove(filepath.Join(dd.dir, old.Pages))
		os.Remove(filepath.Join(dd.dir, old.WAL))
	}
	return nil
}

// OpenDataset recovers the dataset in dir at its last durable epoch: the
// manifest's snapshot is thawed (linear reconstruction, no re-indexing — the
// page file's read counter stays at zero through open), each contender is
// attached to its on-disk page segment so cold reads come from disk, and the
// WAL's committed batches are replayed through the normal commit path.
func OpenDataset(dir string) (*DurableDataset, error) {
	m, err := durable.ReadManifest(dir)
	if err != nil {
		return nil, err
	}
	rec, err := durable.ReadSnapshot(filepath.Join(dir, m.Snapshot))
	if err != nil {
		return nil, err
	}
	if rec.Epoch != m.Epoch {
		return nil, fmt.Errorf("engine: snapshot epoch %d does not match manifest epoch %d", rec.Epoch, m.Epoch)
	}
	if rec.NextID != m.NextID {
		return nil, fmt.Errorf("engine: snapshot ID watermark %d does not match manifest %d", rec.NextID, m.NextID)
	}
	d, err := thawDataset(rec)
	if err != nil {
		return nil, err
	}
	pf, err := durable.OpenPageFile(filepath.Join(dir, m.Pages))
	if err != nil {
		return nil, err
	}
	dd := &DurableDataset{Dataset: d, dir: dir, man: m, pageFiles: []*durable.PageFile{pf}}
	snap := d.Current()
	if snap.bases != nil {
		for i, name := range d.opts.Contenders {
			pg, ok := snap.bases[i].(Paged)
			if !ok || pg.Store() == nil {
				continue
			}
			seg, err := pf.Segment(name)
			if err != nil {
				pf.Close()
				return nil, err
			}
			if seg.NumPages() != pg.Store().NumPages() {
				pf.Close()
				return nil, fmt.Errorf("engine: open: segment %q holds %d pages, index expects %d",
					name, seg.NumPages(), pg.Store().NumPages())
			}
			pg.SetSource(seg)
		}
	}
	w, recs, err := durable.OpenWAL(filepath.Join(dir, m.WAL))
	if err != nil {
		pf.Close()
		return nil, err
	}
	if w.BaseEpoch() != m.Epoch {
		w.Close()
		pf.Close()
		return nil, fmt.Errorf("engine: wal base epoch %d does not match manifest epoch %d", w.BaseEpoch(), m.Epoch)
	}
	dd.wal = w
	if err := dd.replay(recs); err != nil {
		w.Close()
		pf.Close()
		return nil, err
	}
	dd.installHook()
	return dd, nil
}

// replay re-applies the WAL's committed batches through the normal commit
// path (the durability hook is not installed yet, so nothing is re-logged).
// Epoch gaps between consecutive records come from unlogged explicit
// compactions — logically no-ops — which replay reproduces by compacting
// until the next record lines up; auto-compactions re-trigger inside Commit
// deterministically and need no catch-up.
func (dd *DurableDataset) replay(recs []durable.Record) error {
	d := dd.Dataset
	for _, rec := range recs {
		for uint64(d.Current().epoch)+1 < rec.Epoch {
			before := d.Current().epoch
			if _, err := d.Compact(); err != nil {
				return fmt.Errorf("engine: wal replay: compaction catch-up toward epoch %d: %w", rec.Epoch, err)
			}
			if d.Current().epoch == before {
				return fmt.Errorf("engine: wal replay: epoch gap before record %d cannot be reproduced (dataset at %d)",
					rec.Epoch, before)
			}
		}
		if uint64(d.Current().epoch)+1 != rec.Epoch {
			return fmt.Errorf("engine: wal replay: record epoch %d out of step with dataset epoch %d",
				rec.Epoch, d.Current().epoch)
		}
		ops := make([]txOp, len(rec.Ops))
		for i, op := range rec.Ops {
			k, err := engineKind(op.Kind)
			if err != nil {
				return err
			}
			ops[i] = txOp{kind: k, id: op.ID, box: op.Box}
			// Recorded IDs are authoritative: Tx.Insert's sequential
			// reallocation would diverge when the original batches were built
			// by interleaved transactions, so replay applies the recorded IDs
			// directly and only advances the allocator watermark past them.
			if k == opInsert && op.ID >= d.nextID.Load() {
				d.nextID.Store(op.ID + 1)
			}
		}
		t := &Tx{ds: d, ops: ops}
		if _, err := t.Commit(); err != nil {
			return fmt.Errorf("engine: wal replay: epoch %d: %w", rec.Epoch, err)
		}
	}
	return nil
}

// Close releases the WAL and every page file. Commits after Close fail;
// queries keep working from memory, but cold reads of not-yet-materialized
// pages will fail — close only after readers are done.
func (dd *DurableDataset) Close() error {
	dd.Dataset.writeMu.Lock()
	defer dd.Dataset.writeMu.Unlock()
	dd.Dataset.onCommit = func(uint64, []txOp) error {
		return fmt.Errorf("engine: dataset is closed")
	}
	var first error
	if dd.wal != nil {
		first = dd.wal.Close()
		dd.wal = nil
	}
	for _, pf := range dd.pageFiles {
		if err := pf.Close(); err != nil && first == nil {
			first = err
		}
	}
	dd.pageFiles = nil
	return first
}
