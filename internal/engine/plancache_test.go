package engine_test

// Plan-cache regression suite: hit accounting on repeated-shape workloads,
// epoch invalidation (a cached decision must not survive a Compact, even when
// the live item set is identical), and differential agreement with a fresh
// PlanKind on every consultation.

import (
	"context"
	"testing"

	"neurospatial/internal/engine"
	"neurospatial/internal/geom"
)

// TestPlanCacheRepeatedShape asserts a repeated-shape workload on a planner
// session plans once and replays the cached decision afterwards: ≥90% of the
// consultations are hits, and the per-query stats carry the hit/miss record.
func TestPlanCacheRepeatedShape(t *testing.T) {
	items := testItems(t, 16, 7001)
	indexes := buildIndexes(t, items)
	p := engine.NewPlanner(indexes...)
	s, err := engine.Open(engine.WithPlanner(p))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	c := vol.Center()
	const n = 40
	var hits, misses int64
	for i := 0; i < n; i++ {
		// Same shape bucket each round: near-identical extent, moving center.
		off := geom.V(float64(i%5), float64(i%3), 0)
		res, err := s.Do(context.Background(), engine.RangeRequest(geom.BoxAround(c.Add(off), 30)))
		if err != nil {
			t.Fatal(err)
		}
		hits += res.Stats.PlanCacheHits
		misses += res.Stats.PlanCacheMisses
	}
	if hits+misses != n {
		t.Fatalf("consultations = %d, want %d (every planner-routed Do consults once)", hits+misses, n)
	}
	if misses != 1 {
		t.Errorf("misses = %d, want exactly 1 (first request plans, the rest replay)", misses)
	}
	if rate := float64(hits) / float64(n); rate < 0.9 {
		t.Errorf("hit rate = %.2f, want >= 0.90", rate)
	}
	ph, pm := p.PlanCacheStats()
	if ph != hits || pm != misses {
		t.Errorf("planner counters (%d, %d) disagree with per-query stats (%d, %d)", ph, pm, hits, misses)
	}
}

// TestPlanCacheDistinctShapesPlanSeparately asserts the shape signature keeps
// genuinely different selectivities apart: a tiny box and a huge box do not
// share a cache entry (each gets its own miss).
func TestPlanCacheDistinctShapesPlanSeparately(t *testing.T) {
	items := testItems(t, 16, 7002)
	indexes := buildIndexes(t, items)
	p := engine.NewPlanner(indexes...)
	s, err := engine.Open(engine.WithPlanner(p))
	if err != nil {
		t.Fatal(err)
	}
	defer s.Close()
	c := geom.V(100, 100, 100)
	small := engine.RangeRequest(geom.BoxAround(c, 2))
	large := engine.RangeRequest(geom.BoxAround(c, 80))
	for _, r := range []engine.Request{small, large, small, large} {
		if _, err := s.Do(context.Background(), r); err != nil {
			t.Fatal(err)
		}
	}
	if _, misses := p.PlanCacheStats(); misses != 2 {
		t.Errorf("misses = %d, want 2 (one plan per shape bucket)", misses)
	}
}

// TestPlanCacheEpochInvalidation is the staleness differential: after
// SetEpoch changes, a planner must not serve the epoch's cached decision —
// the next consultation must re-run PlanKind and agree with a fresh planning
// even when nothing else changed.
func TestPlanCacheEpochInvalidation(t *testing.T) {
	items := testItems(t, 16, 7003)
	indexes := buildIndexes(t, items)
	p := engine.NewPlanner(indexes...)
	sample := []engine.Request{engine.RangeRequest(geom.BoxAround(geom.V(100, 100, 100), 30))}

	d1, hit := p.PlanKindCached(engine.Range, sample)
	if hit {
		t.Fatal("first consultation reported a cache hit")
	}
	if _, hit = p.PlanKindCached(engine.Range, sample); !hit {
		t.Fatal("repeat consultation in the same epoch missed")
	}
	p.SetEpoch(1)
	d2, hit := p.PlanKindCached(engine.Range, sample)
	if hit {
		t.Fatal("consultation after SetEpoch reported a cache hit (stale decision served)")
	}
	// Differential: the re-planned decision must equal a fresh PlanKind on
	// the same history (the epoch bump invalidates the cache, not the
	// learned costs).
	if fresh := p.PlanKind(engine.Range, sample); fresh.Index != d2.Index {
		t.Errorf("post-epoch decision %s != fresh PlanKind %s", d2.Index.Name(), fresh.Index.Name())
	}
	_ = d1
}

// TestPlanCacheNotStaleAcrossCompact pins the end-to-end property on the
// Dataset path: Compact advances the epoch even when the live set is
// identical, and the new snapshot's routing must match a from-scratch
// PlanKind on its own views — never a decision cached for the old epoch.
func TestPlanCacheNotStaleAcrossCompact(t *testing.T) {
	items := testItems(t, 16, 7004)
	ds, err := engine.NewDataset(items, engine.DatasetOptions{})
	if err != nil {
		t.Fatal(err)
	}
	req := engine.RangeRequest(geom.BoxAround(geom.V(100, 100, 100), 30))

	before := ds.Current()
	// Warm the old epoch's cache.
	s1, err := engine.Open(engine.WithDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 3; i++ {
		if _, err := s1.Do(context.Background(), req); err != nil {
			t.Fatal(err)
		}
	}
	s1.Close()

	// A same-box Update keeps the live set semantically identical while
	// making the overlay non-empty, so Compact genuinely rebuilds and
	// advances the epoch.
	tx := ds.Begin()
	tx.Update(items[0].ID, items[0].Box)
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	after, err := ds.Compact()
	if err != nil {
		t.Fatal(err)
	}
	if after.Epoch() == before.Epoch() {
		t.Fatalf("Compact did not advance the epoch (still %d)", after.Epoch())
	}
	if after.NumItems() != before.NumItems() {
		t.Fatalf("live set changed across Compact: %d -> %d", before.NumItems(), after.NumItems())
	}

	s2, err := engine.Open(engine.WithDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	defer s2.Close()
	res, err := s2.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.PlanCacheHits != 0 || res.Stats.PlanCacheMisses != 1 {
		t.Errorf("first post-compact Do: hits=%d misses=%d, want a fresh plan (0, 1)",
			res.Stats.PlanCacheHits, res.Stats.PlanCacheMisses)
	}
	// Differential: the routed contender equals a fresh PlanKind on the new
	// snapshot's planner state.
	if fresh := after.Planner().PlanKind(engine.Range, []engine.Request{req}); fresh.Index.Name() != res.Index {
		t.Errorf("post-compact route %s != fresh PlanKind %s", res.Index, fresh.Index.Name())
	}
}
