package engine

import (
	"context"
	"fmt"
	"math"
	"sort"
	"sync"
	"sync/atomic"

	"neurospatial/internal/geom"
	"neurospatial/internal/query"
	"neurospatial/internal/stats"
)

// Planner routes requests, query batches and walkthrough sequences to one of
// a set of SpatialIndex contenders using per-(index, kind) cost statistics:
// an index that wins range scans can lose kNN gathers, so every query kind
// keeps its own history and mixed workloads route per request. Costs come
// from two sources, both fed through stats.Running accumulators:
//
//   - learned: every executed batch reports its observed QueryStats back via
//     Observe/ObserveKind, so the planner's estimate of an (index, kind)
//     pair sharpens with use;
//   - probed: with no history for a pair, planning calibrates by executing a
//     small deterministic sample of the batch (the first ProbeQueries
//     requests, results discarded) on that index and charging its Cost().
//
// Routing is deterministic: the index with the lowest estimated per-query
// cost wins, ties broken by registration order.
//
// Plan, PlanKind, Run, Observe and Selectivity are safe for concurrent use
// (the indexes themselves are read-only after Build). Paged.SetSource on a
// contender is configuration, not execution: call it before sharing the
// planner across goroutines.
type Planner struct {
	// ProbeQueries is the calibration sample size per unprofiled
	// (index, kind) pair. Default 3.
	ProbeQueries int

	indexes []SpatialIndex
	mu      sync.Mutex                    //neurospatial:lock planner.state
	learned map[plannerKey]*stats.Running // per-query Cost() history
	selects map[plannerKey]*stats.Running // per-query selectivity (results/entries)
	probes  map[plannerKey]chan struct{}  // in-flight probe latches
	// probeEx serializes probe *execution* for indexes that do not carry
	// their own instance lock (see probeLocker): the latch above is per
	// (index, kind), but a probe temporarily rewires the index's read path
	// (SetSource detach, Sharded.probeCold), so two kinds probing the same
	// contender concurrently would race on that configuration and leak
	// probe traffic into an attached pool. Engine-owned contenders use
	// their per-instance lock instead, which also serializes probes from
	// *different* planners sharing the instance.
	probeEx map[string]*sync.Mutex

	// epoch is the dataset epoch this planner serves (0 for free-standing
	// planners); it is part of every plan-cache key, so entries cached for
	// one epoch can never route another's requests even if a planner is ever
	// shared across epochs. plans caches routing decisions by
	// (epoch, kind, shape signature) — see PlanKindCached.
	epoch int64
	plans map[planCacheKey]SpatialIndex

	cacheHits   atomic.Int64
	cacheMisses atomic.Int64
	probesRun   atomic.Int64
}

// planCacheKey identifies one cached routing decision: the dataset epoch the
// planner serves, the query kind, and the bucketed shape signature of the
// request (see planSig). Keying by bucketed shape rather than the exact
// request lets a repeated-shape workload (the common case: many queries of
// similar extent) hit one entry while queries of genuinely different
// selectivity still plan separately.
type planCacheKey struct {
	epoch int64
	kind  Kind
	sig   int8
}

// planSig buckets the shape of a kind's calibration sample into a small
// signature: the rounded log2 of the magnitude that drives the kind's
// selectivity — box volume for Range, K for KNN, radius for WithinDistance —
// and 0 for Point (a point stab has no extent). Empty samples share the
// catch-all bucket -64, which is also where degenerate (zero/negative)
// magnitudes land.
func planSig(kind Kind, sample []Request) int8 {
	if len(sample) == 0 {
		return -64
	}
	r := sample[0]
	var v float64
	switch kind {
	case Range:
		d := r.Box.Max.Sub(r.Box.Min)
		v = d.X * d.Y * d.Z
	case KNN:
		v = float64(r.K)
	case WithinDistance:
		v = r.Radius
	default: // Point
		return 0
	}
	return logBucket(v)
}

// logBucket clamps round(log2(v)) to [-63, 63], with -64 for v <= 0 and NaN.
func logBucket(v float64) int8 {
	if !(v > 0) {
		return -64
	}
	b := math.Round(math.Log2(v))
	switch {
	case b < -63:
		return -63
	case b > 63:
		return 63
	}
	return int8(b)
}

// plannerKey identifies one cost-history accumulator: which contender, for
// which query kind.
type plannerKey struct {
	name string
	kind Kind
}

// baseProber lets an index wrapper expose the underlying index whose read
// path a calibration probe must detach (snapshot views implement it).
type baseProber interface {
	probeBase() SpatialIndex
}

// probeLocker exposes an index instance's probe-execution lock. The probe's
// source detach/restore mutates the instance's read-path configuration, so
// exclusion must be per *instance*, not per Planner: distinct planners share
// index instances (every Dataset snapshot's planner shares its epoch's
// bases, and core.Model shares the epoch-0 bases with Model.Engine). All
// engine contenders implement it; foreign SpatialIndex implementations fall
// back to the planner-local lock.
type probeLocker interface {
	probeLock() *sync.Mutex
}

// NewPlanner returns a planner over the given contenders, in priority order
// (earlier indexes win cost ties).
func NewPlanner(indexes ...SpatialIndex) *Planner {
	return &Planner{
		ProbeQueries: 3,
		indexes:      indexes,
		learned:      make(map[plannerKey]*stats.Running),
		selects:      make(map[plannerKey]*stats.Running),
		probes:       make(map[plannerKey]chan struct{}),
		probeEx:      make(map[string]*sync.Mutex),
		plans:        make(map[planCacheKey]SpatialIndex),
	}
}

// SetEpoch declares the dataset epoch this planner serves. Every cached plan
// is keyed by epoch, so a change invalidates all previously cached decisions
// at once (the map is also cleared — stale epochs' entries are unreachable
// and would only hold memory). Dataset snapshots call it at construction;
// free-standing planners stay at epoch 0.
func (p *Planner) SetEpoch(epoch int64) {
	p.mu.Lock()
	if p.epoch != epoch {
		p.epoch = epoch
		clear(p.plans)
	}
	p.mu.Unlock()
}

// PlanKindCached is PlanKind behind the per-epoch plan cache: a repeat of an
// already-planned (epoch, kind, shape bucket) returns the cached decision
// without consulting cost history or probing; a miss delegates to PlanKind
// and caches the winner. The boolean reports a cache hit. A cached decision
// is exactly as deterministic as PlanKind's: the cache can only replay a
// decision PlanKind made for the same epoch and shape bucket.
//
// Cached decisions intentionally do not chase later Observe updates within an
// epoch: routing flapping mid-workload would make batch output depend on
// execution history more than it already does, and the cache resets at every
// epoch anyway (Commit and Compact both advance it).
func (p *Planner) PlanKindCached(kind Kind, sample []Request) (Decision, bool) {
	p.mu.Lock()
	key := planCacheKey{p.epoch, kind, planSig(kind, sample)}
	ix := p.plans[key]
	p.mu.Unlock()
	if ix != nil {
		p.cacheHits.Add(1)
		return Decision{Kind: kind, Index: ix}, true
	}
	p.cacheMisses.Add(1)
	d := p.PlanKind(kind, sample)
	if d.Index != nil {
		p.mu.Lock()
		// Key under the current epoch, not the pre-plan one: if SetEpoch
		// raced the planning, the decision is cached for the epoch it will
		// serve next, and the worst case is one extra miss.
		p.plans[planCacheKey{p.epoch, kind, key.sig}] = d.Index
		p.mu.Unlock()
	}
	return d, false
}

// PlanCacheStats reports the plan cache's lifetime hit and miss counts.
func (p *Planner) PlanCacheStats() (hits, misses int64) {
	return p.cacheHits.Load(), p.cacheMisses.Load()
}

// ProbesRun reports how many calibration probes this planner has executed —
// the work the plan cache exists to avoid repeating.
func (p *Planner) ProbesRun() int64 { return p.probesRun.Load() }

// Indexes returns the contenders in registration order.
func (p *Planner) Indexes() []SpatialIndex { return p.indexes }

// Index returns the contender with the given name, or nil.
func (p *Planner) Index(name string) SpatialIndex {
	for _, ix := range p.indexes {
		if ix.Name() == name {
			return ix
		}
	}
	return nil
}

// Decision records one routing choice and the evidence behind it.
type Decision struct {
	// Index is the chosen contender.
	Index SpatialIndex
	// Kind is the query kind the decision was made for.
	Kind Kind
	// CostPerQuery is the estimated per-query I/O cost of every contender.
	CostPerQuery map[string]float64
	// Probed lists the contenders whose estimate came from a fresh
	// calibration probe rather than learned history.
	Probed []string
}

// String renders the decision for logs and demo panels.
func (d Decision) String() string {
	if d.Index == nil {
		return "route -> none (no contenders)"
	}
	names := make([]string, 0, len(d.CostPerQuery))
	for n := range d.CostPerQuery {
		names = append(names, n)
	}
	sort.Strings(names)
	s := fmt.Sprintf("route %s -> %s (", d.Kind, d.Index.Name())
	for i, n := range names {
		if i > 0 {
			s += ", "
		}
		s += fmt.Sprintf("%s %.1f", n, d.CostPerQuery[n])
	}
	return s + " est. reads/query)"
}

// Plan estimates the per-query Range cost of each contender for the batch
// and picks the cheapest — the pre-Request surface, equivalent to PlanKind
// with Range requests (it shares the (index, Range) history). Probe
// executions update the learned history, so later plans on similar workloads
// skip the probe. Concurrent first Plans probe each unprofiled index exactly
// once: a per-(index, kind) latch makes the learn-or-probe step
// singleflight, so calibration history is never skewed by duplicate probes.
//
// An empty batch cannot be probed, so it gets a deterministic default
// decision with no side effects: contenders are costed from learned history
// where any exists, the cheapest profiled contender wins, and with no
// history at all the first registered index is chosen (registration order is
// the documented tie-break).
func (p *Planner) Plan(qs []geom.AABB) Decision {
	reqs := make([]Request, len(qs))
	for i, q := range qs {
		reqs[i] = RangeRequest(q)
	}
	return p.PlanKind(Range, reqs)
}

// PlanKind estimates the per-query cost of each contender for requests of
// one kind (using the kind's own cost history, probing with the sample's
// first ProbeQueries requests where history is missing) and picks the
// cheapest. The sample requests should all be of the given kind; others are
// ignored by the probe. Empty samples get the deterministic no-probe default
// of Plan.
func (p *Planner) PlanKind(kind Kind, sample []Request) Decision {
	d := Decision{Kind: kind, CostPerQuery: make(map[string]float64, len(p.indexes))}
	if len(sample) == 0 {
		for _, ix := range p.indexes {
			cost, ok := p.learnedCost(ix.Name(), kind)
			if !ok {
				continue
			}
			d.CostPerQuery[ix.Name()] = cost
			if d.Index == nil || cost < d.CostPerQuery[d.Index.Name()] {
				d.Index = ix
			}
		}
		if d.Index == nil && len(p.indexes) > 0 {
			d.Index = p.indexes[0]
		}
		return d
	}
	for _, ix := range p.indexes {
		name := ix.Name()
		cost, ok := p.learnedCost(name, kind)
		if !ok {
			if p.probeOnce(ix, kind, sample) {
				d.Probed = append(d.Probed, name)
			}
			cost, ok = p.learnedCost(name, kind)
		}
		if !ok {
			// Unreachable with a non-empty sample (a probe always observes at
			// least one query), kept as a guard: never fabricate a 0 cost.
			continue
		}
		d.CostPerQuery[name] = cost
		if d.Index == nil || cost < d.CostPerQuery[d.Index.Name()] {
			d.Index = ix
		}
	}
	if d.Index == nil && len(p.indexes) > 0 {
		d.Index = p.indexes[0]
	}
	return d
}

// learnedCost reads an (index, kind) pair's mean observed cost under the
// lock.
func (p *Planner) learnedCost(name string, kind Kind) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	acc := p.learned[plannerKey{name, kind}]
	if acc == nil || acc.N() == 0 {
		return 0, false
	}
	return acc.Mean(), true
}

// probeOnce runs the calibration probe for an unprofiled (index, kind) pair
// exactly once across concurrent plans: the first caller probes while later
// callers wait on the latch and then read the learned history. It reports
// whether this call executed the probe.
func (p *Planner) probeOnce(ix SpatialIndex, kind Kind, sample []Request) bool {
	key := plannerKey{ix.Name(), kind}
	p.mu.Lock()
	if acc := p.learned[key]; acc != nil && acc.N() > 0 {
		p.mu.Unlock()
		return false
	}
	if ch, inflight := p.probes[key]; inflight {
		p.mu.Unlock()
		<-ch
		return false
	}
	ch := make(chan struct{})
	p.probes[key] = ch
	p.mu.Unlock()
	defer func() {
		p.mu.Lock()
		delete(p.probes, key)
		p.mu.Unlock()
		close(ch)
	}()
	p.probesRun.Add(1)
	p.probe(ix, kind, sample)
	return true
}

// probe runs the calibration sample on one index, discarding hits. The
// sample is executed against the index's own cold store: an attached
// PageSource (a shared BufferPool under measurement, say) is detached for
// the probe and restored after, so planning never perturbs the pool
// contents or counters the experiments report. Every kind probes through
// Do — the Request front door — so the deprecated Query/BatchQuery wrappers
// are exercised only by their own regression tests; per-query stats are
// identical either way (the wrappers and Do share the index traversals).
func (p *Planner) probe(ix SpatialIndex, kind Kind, sample []Request) {
	// A snapshot view is not Paged itself, but its page reads are its base
	// index's: detach at the base so probing a dataset session never warms a
	// pool the base shares with other surfaces.
	target := ix
	if bp, ok := target.(baseProber); ok {
		if base := bp.probeBase(); base != nil {
			target = base
		}
	}
	// One probe at a time per index *instance*: the source detach/restore
	// below is configuration of the index's read path, not concurrent-safe
	// state — and several planners can share one instance (per-snapshot
	// planners, Model.Engine), so the lock lives on the instance where the
	// contender provides one, with a planner-local fallback otherwise.
	var ex *sync.Mutex
	if pl, ok := target.(probeLocker); ok {
		ex = pl.probeLock()
	} else {
		p.mu.Lock()
		ex = p.probeEx[ix.Name()]
		if ex == nil {
			ex = &sync.Mutex{}
			p.probeEx[ix.Name()] = ex
		}
		p.mu.Unlock()
	}
	ex.Lock()
	defer ex.Unlock()

	if pg, ok := target.(Paged); ok {
		if src := pg.Source(); src != nil {
			pg.SetSource(nil)
			defer pg.SetSource(src)
		}
	}
	// The sharded index additionally carries internal per-shard pools;
	// route the probe around those too.
	if sh, ok := target.(*Sharded); ok {
		sh.setProbeCold(true)
		defer sh.setProbeCold(false)
	}
	n := p.ProbeQueries
	if n <= 0 {
		n = 3
	}
	var sts []QueryStats
	for _, r := range sample {
		if r.Kind != kind {
			continue
		}
		st, err := ix.Do(context.Background(), r, nil)
		if err != nil {
			continue // invalid sample requests contribute no history
		}
		sts = append(sts, st)
		if len(sts) == n {
			break
		}
	}
	p.ObserveKind(ix.Name(), kind, sts)
}

// PlanSequence routes a walkthrough sequence: the per-step boxes are the
// batch. A nil or empty sequence gets the deterministic empty-batch default.
func (p *Planner) PlanSequence(seq *query.Sequence) Decision {
	if seq == nil {
		return p.Plan(nil)
	}
	boxes := make([]geom.AABB, seq.Len())
	for i, s := range seq.Steps {
		boxes[i] = s.Box
	}
	return p.Plan(boxes)
}

// Observe folds executed per-query range stats into the index's learned
// history — the pre-Request surface, equivalent to ObserveKind with Range.
func (p *Planner) Observe(name string, sts []QueryStats) { p.ObserveKind(name, Range, sts) }

// ObserveKind folds executed per-query stats of one kind into the
// (index, kind) pair's learned history.
func (p *Planner) ObserveKind(name string, kind Kind, sts []QueryStats) {
	key := plannerKey{name, kind}
	p.mu.Lock()
	defer p.mu.Unlock()
	cost := p.learned[key]
	if cost == nil {
		cost = &stats.Running{}
		p.learned[key] = cost
	}
	sel := p.selects[key]
	if sel == nil {
		sel = &stats.Running{}
		p.selects[key] = sel
	}
	for i := range sts {
		cost.Add(sts[i].Cost())
		if sts[i].EntriesTested > 0 {
			sel.Add(float64(sts[i].Results) / float64(sts[i].EntriesTested))
		}
	}
}

// Selectivity returns the learned mean range selectivity (results per entry
// tested) of an index, and whether any history exists. The E-harness tables
// can report it alongside cost.
func (p *Planner) Selectivity(name string) (float64, bool) {
	return p.SelectivityKind(name, Range)
}

// SelectivityKind is Selectivity for one query kind.
func (p *Planner) SelectivityKind(name string, kind Kind) (float64, bool) {
	p.mu.Lock()
	defer p.mu.Unlock()
	acc := p.selects[plannerKey{name, kind}]
	if acc == nil || acc.N() == 0 {
		return 0, false
	}
	return acc.Mean(), true
}

// Run plans the batch, executes it on the chosen index with the shared
// deterministic executor, feeds the observed stats back, and returns both.
// The emitted hits are exactly those of a direct serial loop of
// Index.Query calls on the chosen index.
//
// Deprecated: Run is the pre-Request batch surface (native hit order, range
// only); new call sites should route through Session.DoBatch, which adds
// cancellation, mixed kinds and the canonical order. Kept — with its own
// regression tests — for external compatibility.
func (p *Planner) Run(qs []geom.AABB, workers int, visit func(qi int, id int32)) ([]QueryStats, Decision) {
	d := p.Plan(qs)
	sts := d.Index.BatchQuery(qs, workers, visit)
	p.Observe(d.Index.Name(), sts)
	return sts, d
}
