package engine

import (
	"context"
	"fmt"
	"sync"
	"sync/atomic"

	"neurospatial/internal/parallel"
)

// Session is the engine's front door: every query — any Kind, any contender,
// serial or batched — enters through Open / Do / DoBatch. A session serves
// requests from one fixed SpatialIndex, through a Planner that routes each
// request by its kind's learned cost statistics, or from a pinned Dataset
// snapshot (WithDataset) — and it is where context cancellation enters the
// execution stack: Do and DoBatch accept a context.Context that the index
// traversals below observe at page-read granularity, so a canceled batch
// aborts at the next page, not the next query.
//
// A dataset session pins the snapshot current at Open time: every Do and
// DoBatch sees that epoch's consistent item set, no matter how many commits
// land afterwards. Requests route through the snapshot's own planner (or a
// fixed contender view when WithIndexName is given); Close releases the pin.
//
// Sessions are safe for concurrent use as long as the underlying indexes'
// configuration (Paged.SetSource, Build) is not mutated concurrently — the
// same contract the indexes themselves carry. Dataset sessions read immutable
// snapshots, so they are additionally safe against concurrent Dataset
// commits — that is the point of them.
type Session struct {
	index     SpatialIndex
	planner   *Planner
	dataset   *Dataset
	snap      *Snapshot
	fixedView SpatialIndex
	indexName string
	workers   int
	closed    atomic.Bool
}

// SessionOption configures Open.
type SessionOption func(*Session)

// WithIndex serves every request from one fixed contender.
func WithIndex(ix SpatialIndex) SessionOption { return func(s *Session) { s.index = ix } }

// WithPlanner routes each request per kind through the planner's cost model.
func WithPlanner(p *Planner) SessionOption { return func(s *Session) { s.planner = p } }

// WithDataset pins the dataset's current snapshot for the session's
// lifetime: the session serves that epoch — consistently — while later
// commits land. Call Close to release the pin. Requests route through the
// pinned snapshot's per-snapshot planner unless WithIndexName fixes a
// contender.
func WithDataset(d *Dataset) SessionOption { return func(s *Session) { s.dataset = d } }

// WithIndexName fixes the serving contender of a WithDataset session to the
// named snapshot view ("flat", "rtree", "grid", "sharded") instead of
// planner routing.
func WithIndexName(name string) SessionOption { return func(s *Session) { s.indexName = name } }

// WithWorkers sets the default DoBatch pool size used when a batch passes
// workers == 0 (the repository-wide semantics apply: 1 serial, > 1 that many
// workers, negative one per CPU).
func WithWorkers(n int) SessionOption { return func(s *Session) { s.workers = n } }

// Open opens a query session. Exactly one routing mode must be configured: a
// fixed index (WithIndex), a planner (WithPlanner), or a dataset snapshot
// (WithDataset, optionally narrowed by WithIndexName).
func Open(opts ...SessionOption) (*Session, error) {
	s := &Session{workers: 1}
	for _, opt := range opts {
		opt(s)
	}
	modes := 0
	for _, on := range []bool{s.index != nil, s.planner != nil, s.dataset != nil} {
		if on {
			modes++
		}
	}
	if modes != 1 {
		return nil, fmt.Errorf("engine: Open takes exactly one of WithIndex, WithPlanner or WithDataset")
	}
	if s.indexName != "" && s.dataset == nil {
		return nil, fmt.Errorf("engine: WithIndexName requires WithDataset")
	}
	if s.planner != nil && len(s.planner.Indexes()) == 0 {
		return nil, fmt.Errorf("engine: Open: planner has no contenders")
	}
	if s.dataset != nil {
		s.snap = s.dataset.Acquire()
		if s.indexName != "" {
			if s.fixedView = s.snap.Index(s.indexName); s.fixedView == nil {
				s.snap.Release()
				return nil, fmt.Errorf("engine: Open: snapshot has no contender %q (have %v)",
					s.indexName, s.dataset.opts.Contenders)
			}
		}
	}
	return s, nil
}

// Close releases a dataset session's snapshot pin. It is idempotent — and
// safe against concurrent Close calls — and a no-op for fixed-index and
// planner sessions. A closed session must not serve further requests.
func (s *Session) Close() {
	if s.snap != nil && s.closed.CompareAndSwap(false, true) {
		s.snap.Release()
	}
}

// Snapshot returns the pinned snapshot of a WithDataset session (nil
// otherwise). Its epoch is frozen: commits after Open do not change what the
// session reads.
func (s *Session) Snapshot() *Snapshot { return s.snap }

// routingPlanner returns the planner consulted for routing, if any.
func (s *Session) routingPlanner() *Planner {
	if s.planner != nil {
		return s.planner
	}
	if s.snap != nil && s.fixedView == nil {
		return s.snap.Planner()
	}
	return nil
}

// stripPagination clears a request's pagination fields in place for routing
// and planner observation: a partial-scan cost record would poison the
// per-kind history the planner routes by, so paginated requests are routed by
// their underlying query shape and their stats are not fed back.
func stripPagination(r *Request) {
	r.Limit, r.Offset, r.Cursor = 0, 0, ""
}

// execRequest runs one request on its routed index: the index's native Do
// for a full result, the lazy streaming pipeline for a paginated one (the
// stream stops reading pages once the limit is filled; the returned cursor
// resumes the next page).
func execRequest(ctx context.Context, ix SpatialIndex, req Request, emit func(Hit)) (QueryStats, Cursor, error) {
	if !req.paginated() {
		st, err := ix.Do(ctx, req, emit)
		return st, "", err
	}
	it, err := Stream(ctx, ix, req)
	if err != nil {
		return QueryStats{}, "", err
	}
	defer it.Close()
	var n int
	var last Hit
	for {
		h, ok := it.Next()
		if !ok {
			break
		}
		n++
		last = h
		emit(h)
	}
	if err := it.Err(); err != nil {
		return QueryStats{}, "", err
	}
	var next Cursor
	if req.Limit > 0 && n == req.Limit {
		next = NextCursor(req.Kind, last)
	}
	return it.Stats(), next, nil
}

// route picks the serving index for requests of one kind, using the given
// same-kind requests (pagination already stripped) as the planner's
// calibration sample. Planner-backed sessions consult the per-epoch plan
// cache first — a repeated (kind, shape) skips PlanKind and its probing
// entirely. cached reports a cache hit; consulted reports whether a planner
// (and therefore the cache) was involved at all.
func (s *Session) route(kind Kind, sample []Request) (ix SpatialIndex, cached, consulted bool) {
	if s.index != nil {
		return s.index, false, false
	}
	if s.fixedView != nil {
		return s.fixedView, false, false
	}
	d, hit := s.routingPlanner().PlanKindCached(kind, sample)
	return d.Index, hit, true
}

// planCacheStamp records a routing consultation's outcome on the query record.
func planCacheStamp(st *QueryStats, cached, consulted bool) {
	if !consulted {
		return
	}
	if cached {
		st.PlanCacheHits++
	} else {
		st.PlanCacheMisses++
	}
}

// observe feeds executed stats back into the routing planner (fixed-index
// and fixed-view sessions learn nothing).
func (s *Session) observe(name string, kind Kind, sts []QueryStats) {
	if p := s.routingPlanner(); p != nil {
		p.ObserveKind(name, kind, sts)
	}
}

// Do executes one request and returns its result. The request is validated
// first (*RequestError on malformed input, never a panic); ctx cancellation
// or deadline expiry returns ctx.Err() with no hits.
func (s *Session) Do(ctx context.Context, req Request) (Result, error) {
	if err := req.Validate(); err != nil {
		return Result{}, err
	}
	// Observe cancellation before routing: planning an unprofiled kind runs
	// real calibration probes, which a dead context should not pay for.
	if err := ctxErr(ctx); err != nil {
		return Result{}, err
	}
	// The one-request calibration sample lives on the stack frame; routing
	// does not retain it.
	sample := [1]Request{req}
	stripPagination(&sample[0])
	ix, cached, consulted := s.route(req.Kind, sample[:])
	res := Result{Request: req, Index: ix.Name()}
	st, cursor, err := execRequest(ctx, ix, req, func(h Hit) { res.Hits = append(res.Hits, h) })
	if err != nil {
		return Result{}, err
	}
	planCacheStamp(&st, cached, consulted)
	res.Stats = st
	res.Cursor = cursor
	if !req.paginated() {
		// A page's partial-scan cost is not a routing signal (see
		// stripPagination); only full executions feed the planner.
		s.observe(res.Index, req.Kind, []QueryStats{st})
	}
	return res, nil
}

// DoBatch executes a batch of requests — kinds may be mixed freely — on the
// shared deterministic executor and returns one Result per request, in
// request order. Routing is per kind: a planner-backed session plans each
// distinct kind once for the batch (probing any unprofiled contender with
// the kind's first requests), so a mixed workload can serve its range scans
// and its kNN gathers from different contenders.
//
// workers follows the repository-wide semantics; 0 selects the session's
// default. The output is deterministic and all-or-nothing: on success the
// results are identical — hit for hit, stat for stat — for any worker count;
// on cancellation DoBatch stops before completing the batch (in-flight
// requests abort at their next page read) and returns (nil, ctx.Err()).
func (s *Session) DoBatch(ctx context.Context, reqs []Request, workers int) ([]Result, error) {
	for i := range reqs {
		if err := reqs[i].Validate(); err != nil {
			return nil, fmt.Errorf("request %d: %w", i, err)
		}
	}
	// Observe cancellation before routing: planning unprofiled kinds runs
	// real calibration probes, which a dead context should not pay for.
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	if workers == 0 {
		workers = s.workers
	}

	// Route once per distinct kind, in first-appearance order (deterministic
	// probing: the kind's own requests are its calibration sample). Kinds are
	// a closed enum, so the per-kind state lives in fixed arrays indexed by
	// Kind — no per-batch maps — and the normalized (pagination-stripped)
	// sample copies share one pooled scratch slice, grouped contiguously by
	// kind in batch order.
	sc := getBatchScratch(len(reqs))
	defer putBatchScratch(sc)
	var counts, off [numKinds]int
	for i := range reqs {
		counts[reqs[i].Kind]++
	}
	for k, lo := 1, 0; k < numKinds; k++ {
		off[k] = lo
		lo += counts[k]
	}
	var fill [numKinds]int
	var kindsArr [numKinds]Kind
	var firstOf [numKinds]int
	nk := 0
	for i := range reqs {
		k := reqs[i].Kind
		if fill[k] == 0 {
			kindsArr[nk] = k
			nk++
			firstOf[k] = i
		}
		at := off[k] + fill[k]
		sc.reqs[at] = reqs[i]
		stripPagination(&sc.reqs[at])
		fill[k]++
	}
	kinds := kindsArr[:nk]
	var routed [numKinds]SpatialIndex
	var cacheHit, consulted [numKinds]bool
	for _, k := range kinds {
		routed[k], cacheHit[k], consulted[k] = s.route(k, sc.reqs[off[k]:off[k]+counts[k]])
	}

	results := make([]Result, len(reqs))
	for i := range reqs {
		results[i] = Result{Request: reqs[i], Index: routed[reqs[i].Kind].Name()}
	}
	// sc.cursors is written per slot on the worker goroutines and read only
	// after BatchCtx joins — distinct elements, no sharing.
	cursors := sc.cursors
	sts, err := parallel.BatchCtx(ctx, workers, len(reqs),
		func(qi int, emit func(Hit)) (QueryStats, error) {
			// Defense in depth for the cancellation machinery: a canceledRead
			// panic must be recovered on the goroutine that raised it (the
			// worker running this slot), and every Do implementation installs
			// its own catchCancel around its ctxSource reads. This outer
			// catch guards any future read path that forgets to — without
			// it, an escaped panic on a worker goroutine would kill the
			// process, since the caller's recover cannot see it.
			var st QueryStats
			var doErr error
			if cerr := catchCancel(func() {
				st, cursors[qi], doErr = execRequest(ctx, routed[reqs[qi].Kind], reqs[qi], emit)
			}); cerr != nil {
				return QueryStats{}, cerr
			}
			return st, doErr
		},
		func(qi int, h Hit) { results[qi].Hits = append(results[qi].Hits, h) })
	if err != nil {
		return nil, err
	}
	for i := range results {
		results[i].Stats = sts[i]
		results[i].Cursor = cursors[i]
	}
	// Record each kind's one routing consultation on the kind's first
	// request, so aggregated batch stats count exactly the consultations.
	for _, k := range kinds {
		planCacheStamp(&results[firstOf[k]].Stats, cacheHit[k], consulted[k])
	}
	if s.routingPlanner() != nil {
		for _, k := range kinds {
			var kindStats []QueryStats
			for i := range reqs {
				// Partial-scan pages are not routing signals (see
				// stripPagination); only full executions feed the planner.
				if reqs[i].Kind == k && !reqs[i].paginated() {
					kindStats = append(kindStats, sts[i])
				}
			}
			s.observe(routed[k].Name(), k, kindStats)
		}
	}
	return results, nil
}

// numKinds sizes the per-kind routing arrays of DoBatch: the Kind enum is
// closed (KindInvalid plus the four query kinds), and every request was
// validated before routing, so Kind values index the arrays directly.
const numKinds = 5

// batchScratch is DoBatch's pooled per-call scratch: the normalized
// (pagination-stripped, kind-grouped) copy of the batch's requests, and the
// per-slot cursor table the workers fill. Pooling them makes a batch's fixed
// overhead independent of batch size in steady state.
type batchScratch struct {
	reqs    []Request
	cursors []Cursor
}

var batchScratchPool = sync.Pool{New: func() any { return &batchScratch{} }}

// getBatchScratch returns scratch with both tables sized to n; recycled
// cursor entries are cleared (a stale cursor would leak into a result).
func getBatchScratch(n int) *batchScratch {
	sc := batchScratchPool.Get().(*batchScratch)
	if cap(sc.reqs) < n {
		sc.reqs = make([]Request, n)
	} else {
		sc.reqs = sc.reqs[:n]
	}
	if cap(sc.cursors) < n {
		sc.cursors = make([]Cursor, n)
	} else {
		sc.cursors = sc.cursors[:n]
		clear(sc.cursors)
	}
	return sc
}

// putBatchScratch clears and recycles the scratch; entries are zeroed so the
// pool does not retain the batch's request strings and cursor payloads.
func putBatchScratch(sc *batchScratch) {
	clear(sc.reqs)
	clear(sc.cursors)
	sc.reqs, sc.cursors = sc.reqs[:0], sc.cursors[:0]
	batchScratchPool.Put(sc)
}

// Index returns the fixed contender of a WithIndex session, or the fixed
// snapshot view of a WithDataset+WithIndexName session (nil for
// planner-routed sessions).
func (s *Session) Index() SpatialIndex {
	if s.index != nil {
		return s.index
	}
	return s.fixedView
}

// Planner returns the planner that routes this session's requests: the
// WithPlanner planner, or a dataset session's per-snapshot planner (nil for
// fixed-index and fixed-view sessions).
func (s *Session) Planner() *Planner { return s.routingPlanner() }
