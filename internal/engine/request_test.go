package engine_test

// Satellite regression coverage of the Request surface: typed validation,
// the rtree KNN native-stats mapping (NodesPerLevel + PagesRead under the
// one-node-per-page convention), and the Aggregate NodesPerLevel sizing fix
// with its micro-benchmark.

import (
	"context"
	"math"
	"reflect"
	"testing"

	"neurospatial/internal/engine"
	"neurospatial/internal/geom"
)

func TestRequestValidate(t *testing.T) {
	nan := math.NaN()
	valid := []engine.Request{
		engine.RangeRequest(geom.BoxAround(geom.V(1, 2, 3), 5)),
		engine.RangeRequest(geom.Box(geom.V(0, 0, 0), geom.V(0, 0, 0))), // degenerate but non-empty
		engine.KNNRequest(geom.V(0, 0, 0), 1),
		engine.PointRequest(geom.V(-1e9, 0, 1e9)),
		engine.WithinDistanceRequest(geom.V(0, 0, 0), 0),
		{Kind: engine.Range, Box: geom.AABB{Min: geom.V(math.Inf(-1), 0, 0), Max: geom.V(math.Inf(1), 1, 1)}},
	}
	for i, r := range valid {
		if err := r.Validate(); err != nil {
			t.Errorf("valid request %d (%s): %v", i, r, err)
		}
	}
	invalid := []struct {
		req   engine.Request
		field string
	}{
		{engine.Request{}, "Kind"},
		{engine.Request{Kind: engine.Kind(200)}, "Kind"},
		{engine.RangeRequest(geom.EmptyAABB()), "Box"},
		{engine.RangeRequest(geom.AABB{Min: geom.V(nan, 0, 0), Max: geom.V(1, 1, 1)}), "Box"},
		{engine.KNNRequest(geom.V(0, 0, 0), 0), "K"},
		{engine.KNNRequest(geom.V(0, nan, 0), 3), "Center"},
		{engine.PointRequest(geom.V(nan, nan, nan)), "Center"},
		{engine.WithinDistanceRequest(geom.V(0, 0, 0), -0.5), "Radius"},
		{engine.WithinDistanceRequest(geom.V(0, 0, 0), nan), "Radius"},
	}
	for i, c := range invalid {
		err := c.req.Validate()
		reqErr, ok := err.(*engine.RequestError)
		if !ok {
			t.Fatalf("invalid request %d (%s): got %v, want *RequestError", i, c.req, err)
		}
		if reqErr.Field != c.field {
			t.Errorf("invalid request %d (%s): blamed field %q, want %q", i, c.req, reqErr.Field, c.field)
		}
		if reqErr.Error() == "" {
			t.Errorf("invalid request %d: empty error text", i)
		}
	}
}

// TestRTreeKNNNativeStats: the engine's KNN record must surface the tree's
// native counters — the per-level node-access breakdown in NodesPerLevel and
// its total as PagesRead (one node per page) — which were dropped on the
// floor before the Request surface because nothing above rtree called KNN.
func TestRTreeKNNNativeStats(t *testing.T) {
	items := testItems(t, 10, 9101)
	ix := engine.NewRTree(0)
	if err := ix.Build(items); err != nil {
		t.Fatal(err)
	}
	tree := ix.Inner()

	for i, k := range []int{1, 5, 16} {
		p := items[(i*41)%len(items)].Box.Center()
		// The engine's executed native search probes one past k (the
		// documented boundary-tie resolution; real coordinates make wider
		// probes measure-zero), so that call's stats are the record.
		kk := k + 1
		if kk > tree.Size() {
			kk = tree.Size()
		}
		nativeItems, native := tree.KNN(p, kk)

		var hits []engine.Hit
		st, err := ix.Do(context.Background(), engine.KNNRequest(p, k), func(h engine.Hit) {
			hits = append(hits, h)
		})
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(st.NodesPerLevel(), native.NodesPerLevel()) {
			t.Fatalf("k=%d: NodesPerLevel %v, native %v", k, st.NodesPerLevel(), native.NodesPerLevel())
		}
		if st.PagesRead != native.NodeAccesses() {
			t.Fatalf("k=%d: PagesRead %d, native node accesses %d", k, st.PagesRead, native.NodeAccesses())
		}
		if st.EntriesTested != native.EntriesTested {
			t.Fatalf("k=%d: EntriesTested %d, native %d", k, st.EntriesTested, native.EntriesTested)
		}
		if st.IndexReads != 0 {
			t.Fatalf("k=%d: IndexReads %d, want 0 (every R-tree node is a page)", k, st.IndexReads)
		}
		want := k
		if want > tree.Size() {
			want = tree.Size()
		}
		if int(st.Results) != len(hits) || len(hits) != want {
			t.Fatalf("k=%d: Results=%d, %d hits, want %d", k, st.Results, len(hits), want)
		}
		// Every emitted hit is among the native search's items.
		nativeIDs := make(map[int32]bool, len(nativeItems))
		for _, it := range nativeItems {
			nativeIDs[it.ID] = true
		}
		for _, h := range hits {
			if !nativeIDs[h.ID] {
				t.Fatalf("k=%d: hit %d not among native KNN items", k, h.ID)
			}
		}
	}
}

// TestAggregateNodesPerLevel: the allocation-free Aggregate must sum ragged
// per-level records element-wise, exactly as the old slice-grow loop did.
func TestAggregateNodesPerLevel(t *testing.T) {
	in := []engine.QueryStats{
		{PagesRead: 1, LevelNodes: [engine.MaxLevels]int64{3, 2, 1}, Levels: 3},
		{PagesRead: 2},
		{PagesRead: 4, LevelNodes: [engine.MaxLevels]int64{10}, Levels: 1},
		{PagesRead: 8, LevelNodes: [engine.MaxLevels]int64{1, 1, 1, 1, 1}, Levels: 5},
	}
	got := engine.Aggregate(in)
	if got.PagesRead != 15 {
		t.Fatalf("PagesRead %d", got.PagesRead)
	}
	if want := []int64{14, 3, 2, 1, 1}; !reflect.DeepEqual(got.NodesPerLevel(), want) {
		t.Fatalf("NodesPerLevel %v, want %v", got.NodesPerLevel(), want)
	}
	if agg := engine.Aggregate(nil); agg.NodesPerLevel() != nil {
		t.Fatalf("empty aggregate reported NodesPerLevel %v", agg.NodesPerLevel())
	}
	if allocs := testing.AllocsPerRun(20, func() { _ = engine.Aggregate(in) }); allocs != 0 {
		t.Fatalf("Aggregate allocated %v times per run, want 0", allocs)
	}
}

// BenchmarkAggregateNodesPerLevel measures Aggregate over a large batch of
// deep per-level records — the case the original per-record grow loop made
// O(levels) appends per record (and the later sized form one allocation).
func BenchmarkAggregateNodesPerLevel(b *testing.B) {
	const records, levels = 4096, 8
	sts := make([]engine.QueryStats, records)
	for i := range sts {
		st := &sts[i]
		st.PagesRead = int64(i)
		st.Levels = levels
		for l := 0; l < levels; l++ {
			st.LevelNodes[l] = int64(i + l)
		}
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		agg := engine.Aggregate(sts)
		if agg.Levels != levels {
			b.Fatal("bad aggregate")
		}
	}
}

// TestKindParseRoundTrip pins the flag-name surface of the kinds.
func TestKindParseRoundTrip(t *testing.T) {
	for _, k := range engine.Kinds() {
		got, err := engine.ParseKind(k.String())
		if err != nil || got != k {
			t.Fatalf("ParseKind(%q) = %v, %v", k.String(), got, err)
		}
	}
	if _, err := engine.ParseKind("sphere"); err == nil {
		t.Fatal("ParseKind accepted an unknown name")
	}
}
