package engine

// The no-reindex acceptance test: OpenDataset on a checkpointed million-item
// dataset must serve queries without re-indexing or scanning the store. Two
// independent witnesses, neither derived from index stats: the page file's
// own physical-read counter must be zero through open, and a pager.Counting
// tap spliced between the index and its on-disk segment must show a first
// query reading only a sliver of the store.

import (
	"context"
	"math/rand"
	"testing"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

func TestOpenDatasetMillionNoReindex(t *testing.T) {
	n := 1_000_000
	if testing.Short() {
		n = 100_000
	}
	rng := rand.New(rand.NewSource(71))
	items := make([]rtree.Item, n)
	for i := range items {
		p := geom.V(rng.Float64()*1000, rng.Float64()*1000, rng.Float64()*1000)
		items[i] = rtree.Item{ID: int32(i), Box: geom.BoxAround(p, 0.5+rng.Float64())}
	}

	dir := t.TempDir()
	dd, err := CreateDataset(dir, items, DatasetOptions{Contenders: []string{"flat"}})
	if err != nil {
		t.Fatal(err)
	}
	if err := dd.Close(); err != nil {
		t.Fatal(err)
	}

	re, err := OpenDataset(dir)
	if err != nil {
		t.Fatal(err)
	}
	defer re.Close()
	if got := re.Current().NumItems(); got != n {
		t.Fatalf("reopened dataset holds %d items, want %d", got, n)
	}

	// Witness 1: opening parsed headers only — not one page slot was read.
	pf := re.PageFiles()[len(re.PageFiles())-1]
	if got := pf.Reads(); got != 0 {
		t.Fatalf("open issued %d physical page reads, want 0 (full-store scan?)", got)
	}

	// Witness 2: splice an independent counting tap between the thawed index
	// and its disk segment, then run one small range query cold.
	fl, ok := re.Current().bases[0].(*Flat)
	if !ok {
		t.Fatalf("base 0 is %T, want *Flat", re.Current().bases[0])
	}
	src := fl.Source()
	if _, ok := src.(interface{ NumPages() int }); !ok {
		t.Fatalf("thawed flat is not attached to a disk segment (source %T)", src)
	}
	tap := pager.NewCounting(src)
	fl.SetSource(tap)

	sess, err := Open(WithDataset(re.Dataset), WithIndexName("flat"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	req := RangeRequest(geom.Box(geom.V(100, 100, 100), geom.V(112, 112, 112)))
	res, err := sess.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}

	var want []Hit
	for _, it := range items {
		if it.Box.Intersects(req.Box) {
			want = append(want, Hit{ID: it.ID})
		}
	}
	if len(res.Hits) != len(want) {
		t.Fatalf("cold query returned %d hits, brute force %d", len(res.Hits), len(want))
	}
	for i := range want {
		if res.Hits[i].ID != want[i].ID {
			t.Fatalf("cold query hit %d is %d, want %d", i, res.Hits[i].ID, want[i].ID)
		}
	}

	total := fl.Store().NumPages()
	reads := tap.Reads()
	if reads == 0 {
		t.Fatal("cold query read no pages through the disk segment")
	}
	if reads >= int64(total)/2 {
		t.Fatalf("cold query read %d of %d pages — the open path degenerated into a scan", reads, total)
	}
	t.Logf("n=%d: cold first query read %d of %d pages", n, reads, total)
}
