package engine_test

// The snapshot-isolation differential suite: a random interleaved op/query
// script is replayed against a brute-force versioned oracle, pinning hit
// sets, emission order and worker-count invariance per epoch for every
// contender × shards {1, 4} — and additionally against a from-scratch Build
// of each epoch's live item set, before and after Compact (the acceptance
// criterion of the mutable-dataset redesign).

import (
	"context"
	"fmt"
	"math"
	"math/rand"
	"sort"
	"strings"
	"sync"
	"testing"

	"neurospatial/internal/engine"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// datasetCells is the contender × shard-count matrix of the suite.
func datasetCells() []struct {
	name   string
	opts   engine.DatasetOptions
	shards int
} {
	var cells []struct {
		name   string
		opts   engine.DatasetOptions
		shards int
	}
	add := func(name, contender string, shards int) {
		cells = append(cells, struct {
			name   string
			opts   engine.DatasetOptions
			shards int
		}{name, engine.DatasetOptions{
			Contenders:         []string{contender},
			Shards:             shards,
			DisableAutoCompact: true, // compaction points are chosen by the script
		}, shards})
	}
	add("flat", "flat", 0)
	add("rtree", "rtree", 0)
	add("grid", "grid", 0)
	add("sharded1", "sharded", 1)
	add("sharded4", "sharded", 4)
	return cells
}

// versionedOracle is the brute-force reference: the exact live item set,
// mutated in lockstep with the dataset.
type versionedOracle struct {
	boxes map[int32]geom.AABB
	ids   []int32 // live IDs, kept sorted for deterministic sampling
}

func newVersionedOracle(items []rtree.Item) *versionedOracle {
	o := &versionedOracle{boxes: make(map[int32]geom.AABB, len(items))}
	for _, it := range items {
		o.boxes[it.ID] = it.Box
		o.ids = append(o.ids, it.ID)
	}
	sort.Slice(o.ids, func(a, b int) bool { return o.ids[a] < o.ids[b] })
	return o
}

func (o *versionedOracle) insert(id int32, box geom.AABB) {
	o.boxes[id] = box
	o.ids = append(o.ids, id)
	sort.Slice(o.ids, func(a, b int) bool { return o.ids[a] < o.ids[b] })
}

func (o *versionedOracle) remove(id int32) {
	delete(o.boxes, id)
	for i, v := range o.ids {
		if v == id {
			o.ids = append(o.ids[:i], o.ids[i+1:]...)
			break
		}
	}
}

// live returns the live item set in ascending global-ID order.
func (o *versionedOracle) live() []rtree.Item {
	out := make([]rtree.Item, 0, len(o.ids))
	for _, id := range o.ids {
		out = append(out, rtree.Item{Box: o.boxes[id], ID: id})
	}
	return out
}

// randBox returns a small random box inside the test volume.
func randBox(rng *rand.Rand, vol geom.AABB) geom.AABB {
	size := vol.Size()
	p := geom.V(
		vol.Min.X+rng.Float64()*size.X,
		vol.Min.Y+rng.Float64()*size.Y,
		vol.Min.Z+rng.Float64()*size.Z,
	)
	return geom.BoxAround(p, 1+rng.Float64()*6)
}

// mutateStep applies one random batched mutation to both the dataset and the
// oracle, returning the published snapshot; it fails the test on any error.
func mutateStep(t *testing.T, rng *rand.Rand, ds *engine.Dataset, o *versionedOracle,
	ops int, vol geom.AABB) *engine.Snapshot {
	t.Helper()
	snap, err := mutateStepE(rng, ds, o, ops, vol)
	if err != nil {
		t.Fatal(err)
	}
	return snap
}

// mutateStepE is the error-returning core of mutateStep, safe to call from
// non-test goroutines (t.Fatal must not leave the test goroutine).
func mutateStepE(rng *rand.Rand, ds *engine.Dataset, o *versionedOracle,
	ops int, vol geom.AABB) (*engine.Snapshot, error) {
	tx := ds.Begin()
	type pending struct {
		kind int // 0 insert, 1 delete, 2 update
		id   int32
		box  geom.AABB
	}
	var batch []pending
	used := make(map[int32]bool) // one op per existing ID per batch
	for i := 0; i < ops; i++ {
		k := rng.Intn(10)
		switch {
		case k < 4 || len(o.ids) == 0: // insert
			box := randBox(rng, vol)
			id := tx.Insert(box)
			batch = append(batch, pending{kind: 0, id: id, box: box})
		case k < 7: // delete
			id := o.ids[rng.Intn(len(o.ids))]
			if used[id] {
				continue
			}
			used[id] = true
			tx.Delete(id)
			batch = append(batch, pending{kind: 1, id: id})
		default: // update
			id := o.ids[rng.Intn(len(o.ids))]
			if used[id] {
				continue
			}
			used[id] = true
			box := randBox(rng, vol)
			tx.Update(id, box)
			batch = append(batch, pending{kind: 2, id: id, box: box})
		}
	}
	snap, err := tx.Commit()
	if err != nil {
		return nil, fmt.Errorf("commit: %v", err)
	}
	for _, p := range batch {
		switch p.kind {
		case 0:
			o.insert(p.id, p.box)
		case 1:
			o.remove(p.id)
		case 2:
			o.remove(p.id)
			o.insert(p.id, p.box)
		}
	}
	if snap.NumItems() != len(o.ids) {
		return nil, fmt.Errorf("epoch %d: snapshot holds %d items, oracle %d",
			snap.Epoch(), snap.NumItems(), len(o.ids))
	}
	return snap, nil
}

// freshBuildHits builds a throwaway contender of the cell's kind over the
// epoch's live item set (relabeled dense, ascending global order) and
// executes the requests — the "from-scratch Build of that epoch's item set"
// side of the acceptance criterion. Local hits are translated back to global
// IDs; ascending-local order is ascending-global order, so emission order is
// directly comparable.
func freshBuildHits(t *testing.T, opts engine.DatasetOptions, live []rtree.Item,
	reqs []engine.Request) [][]engine.Hit {
	t.Helper()
	local := make([]rtree.Item, len(live))
	for l, it := range live {
		local[l] = rtree.Item{Box: it.Box, ID: int32(l)}
	}
	var ix engine.SpatialIndex
	switch opts.Contenders[0] {
	case "flat":
		ix = engine.NewFlat(flat.Options{})
	case "rtree":
		ix = engine.NewRTree(0)
	case "grid":
		ix = engine.NewGrid(engine.GridOptions{})
	case "sharded":
		ix = engine.NewSharded(engine.ShardedOptions{Shards: opts.Shards})
	default:
		t.Fatalf("unknown contender %q", opts.Contenders[0])
	}
	if len(local) > 0 {
		if err := ix.Build(local); err != nil {
			t.Fatal(err)
		}
	}
	out := make([][]engine.Hit, len(reqs))
	for i, r := range reqs {
		if len(local) == 0 {
			continue
		}
		if _, err := ix.Do(context.Background(), r, func(h engine.Hit) {
			out[i] = append(out[i], engine.Hit{ID: live[h.ID].ID, Dist2: h.Dist2})
		}); err != nil {
			t.Fatalf("fresh build request %d: %v", i, err)
		}
	}
	return out
}

// verifyEpoch pins the dataset's current snapshot and checks every request
// against the oracle and the from-scratch build, at workers 1 and 4, with
// worker-count-invariant stats.
func verifyEpoch(t *testing.T, cellName string, ds *engine.Dataset, o *versionedOracle,
	vol geom.AABB, opts engine.DatasetOptions) {
	t.Helper()
	live := o.live()
	reqs := mixedRequests(live, vol)
	want := make([][]engine.Hit, len(reqs))
	for i, r := range reqs {
		want[i] = oracleHits(live, r)
	}
	fresh := freshBuildHits(t, opts, live, reqs)

	sess, err := engine.Open(engine.WithDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	epoch := sess.Snapshot().Epoch()

	var serial []engine.Result
	for _, w := range []int{1, 4} {
		got, err := sess.DoBatch(context.Background(), reqs, w)
		if err != nil {
			t.Fatalf("%s epoch %d workers=%d: %v", cellName, epoch, w, err)
		}
		for i := range got {
			if !hitsEqual(got[i].Hits, want[i]) {
				t.Fatalf("%s epoch %d workers=%d request %d (%s): hits %v, oracle %v",
					cellName, epoch, w, i, reqs[i], got[i].Hits, want[i])
			}
			if !hitsEqual(got[i].Hits, fresh[i]) {
				t.Fatalf("%s epoch %d workers=%d request %d (%s): snapshot %v, from-scratch build %v",
					cellName, epoch, w, i, reqs[i], got[i].Hits, fresh[i])
			}
		}
		if serial == nil {
			serial = got
			continue
		}
		for i := range got {
			a, b := serial[i].Stats, got[i].Stats
			if a.IndexReads != b.IndexReads || a.PagesRead != b.PagesRead ||
				a.EntriesTested != b.EntriesTested || a.Results != b.Results ||
				a.DeltaEntries != b.DeltaEntries || a.Tombstones != b.Tombstones ||
				a.ShardsTouched != b.ShardsTouched {
				t.Fatalf("%s epoch %d request %d: stats diverged across worker counts:\nserial %+v\nworkers=4 %+v",
					cellName, epoch, i, a, b)
			}
		}
	}
}

// TestDatasetDifferential replays a random interleaved op/query script
// against the versioned oracle for every contender × shards {1,4}: after
// every commit the pinned snapshot must return hit-for-hit (same canonical
// order) what a from-scratch Build of the epoch's live set returns, at
// workers {1,4}, and again right after an explicit Compact.
func TestDatasetDifferential(t *testing.T) {
	items := testItems(t, 8, 7001)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))

	for _, cell := range datasetCells() {
		rng := rand.New(rand.NewSource(7001))
		ds, err := engine.NewDataset(items, cell.opts)
		if err != nil {
			t.Fatalf("%s: %v", cell.name, err)
		}
		o := newVersionedOracle(items)

		verifyEpoch(t, cell.name, ds, o, vol, cell.opts) // epoch 0
		for step := 0; step < 5; step++ {
			mutateStep(t, rng, ds, o, 12, vol)
			verifyEpoch(t, cell.name, ds, o, vol, cell.opts)
			if step == 2 {
				// Mid-script compaction: same live set, fresh base.
				snap, err := ds.Compact()
				if err != nil {
					t.Fatalf("%s: compact: %v", cell.name, err)
				}
				if snap.DeltaEntries() != 0 || snap.TombstoneCount() != 0 {
					t.Fatalf("%s: compaction left overlay %d/%d", cell.name,
						snap.DeltaEntries(), snap.TombstoneCount())
				}
				verifyEpoch(t, cell.name, ds, o, vol, cell.opts)
			}
		}
		if _, err := ds.Compact(); err != nil {
			t.Fatalf("%s: final compact: %v", cell.name, err)
		}
		verifyEpoch(t, cell.name, ds, o, vol, cell.opts)

		st := ds.Stats()
		if st.Commits != 5 || st.Compactions != 2 {
			t.Fatalf("%s: stats %+v, want 5 commits / 2 compactions", cell.name, st)
		}
	}
}

// TestDatasetSnapshotIsolation pins a session at one epoch and proves later
// commits — including a compaction — do not change what it reads, while a
// freshly opened session sees the new epoch.
func TestDatasetSnapshotIsolation(t *testing.T) {
	items := testItems(t, 8, 7002)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	ds, err := engine.NewDataset(items, engine.DatasetOptions{
		Contenders: []string{"flat"}, DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := newVersionedOracle(items)
	reqs := mixedRequests(items, vol)

	pinned, err := engine.Open(engine.WithDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	defer pinned.Close()
	base, err := pinned.DoBatch(context.Background(), reqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	if got := ds.Stats().Pinned; got != 1 {
		t.Fatalf("pinned count = %d, want 1", got)
	}

	rng := rand.New(rand.NewSource(7002))
	for step := 0; step < 3; step++ {
		mutateStep(t, rng, ds, o, 16, vol)
		// The pinned epoch must replay identically after every commit.
		again, err := pinned.DoBatch(context.Background(), reqs, 3)
		if err != nil {
			t.Fatal(err)
		}
		for i := range again {
			if !hitsEqual(again[i].Hits, base[i].Hits) {
				t.Fatalf("step %d request %d: pinned session drifted: %v vs %v",
					step, i, again[i].Hits, base[i].Hits)
			}
		}
	}
	if _, err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	again, err := pinned.DoBatch(context.Background(), reqs, 1)
	if err != nil {
		t.Fatal(err)
	}
	for i := range again {
		if !hitsEqual(again[i].Hits, base[i].Hits) {
			t.Fatalf("post-compact request %d: pinned session drifted", i)
		}
	}

	// A fresh session sees the mutated state — and it differs from epoch 0
	// (the script deleted and inserted items).
	cur, err := engine.Open(engine.WithDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	defer cur.Close()
	if cur.Snapshot().Epoch() == pinned.Snapshot().Epoch() {
		t.Fatal("fresh session pinned the old epoch")
	}
	live := o.live()
	got, err := cur.DoBatch(context.Background(), reqs, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		if want := oracleHits(live, r); !hitsEqual(got[i].Hits, want) {
			t.Fatalf("fresh session request %d (%s): %v, oracle %v", i, r, got[i].Hits, want)
		}
	}
}

// TestDatasetSessionFixedViewAndClose covers WithIndexName routing, Close
// refcounting and double-Close idempotence.
func TestDatasetSessionFixedViewAndClose(t *testing.T) {
	items := testItems(t, 6, 7003)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	ds, err := engine.NewDataset(items, engine.DatasetOptions{
		Contenders: []string{"flat", "grid"},
	})
	if err != nil {
		t.Fatal(err)
	}
	sess, err := engine.Open(engine.WithDataset(ds), engine.WithIndexName("grid"))
	if err != nil {
		t.Fatal(err)
	}
	if sess.Index() == nil || sess.Index().Name() != "grid" {
		t.Fatal("fixed view not routed")
	}
	if sess.Planner() != nil {
		t.Fatal("fixed-view session reports a routing planner")
	}
	req := engine.RangeRequest(vol)
	res, err := sess.Do(context.Background(), req)
	if err != nil {
		t.Fatal(err)
	}
	if res.Index != "grid" || !hitsEqual(res.Hits, oracleHits(items, req)) {
		t.Fatalf("fixed view result: %s, %d hits", res.Index, res.Stats.Results)
	}
	if got := ds.Stats().Pinned; got != 1 {
		t.Fatalf("pinned = %d", got)
	}
	sess.Close()
	sess.Close() // idempotent
	if got := ds.Stats().Pinned; got != 0 {
		t.Fatalf("pinned after close = %d", got)
	}

	if _, err := engine.Open(engine.WithDataset(ds), engine.WithIndexName("rtree")); err == nil {
		t.Fatal("unknown view name accepted")
	}
	if _, err := engine.Open(engine.WithIndexName("flat")); err == nil {
		t.Fatal("WithIndexName without WithDataset accepted")
	}
	if _, err := engine.Open(engine.WithDataset(ds), engine.WithPlanner(engine.NewPlanner())); err == nil {
		t.Fatal("two routing modes accepted")
	}
}

// TestDatasetInvalidOps: a batch containing any invalid operation is
// rejected whole, leaving the dataset untouched.
func TestDatasetInvalidOps(t *testing.T) {
	items := testItems(t, 6, 7004)
	ds, err := engine.NewDataset(items, engine.DatasetOptions{Contenders: []string{"flat"}})
	if err != nil {
		t.Fatal(err)
	}
	before := ds.Stats()

	cases := []struct {
		name string
		fill func(tx *engine.Tx)
	}{
		{"delete unknown", func(tx *engine.Tx) { tx.Insert(geom.BoxAround(geom.V(1, 1, 1), 1)); tx.Delete(99999) }},
		{"double delete", func(tx *engine.Tx) { tx.Delete(0); tx.Delete(0) }},
		{"update unknown", func(tx *engine.Tx) { tx.Update(99999, geom.BoxAround(geom.V(1, 1, 1), 1)) }},
		{"update deleted", func(tx *engine.Tx) { tx.Delete(1); tx.Update(1, geom.BoxAround(geom.V(1, 1, 1), 1)) }},
		{"NaN insert", func(tx *engine.Tx) {
			tx.Insert(geom.Box(geom.V(math.NaN(), 0, 0), geom.V(1, 1, 1)))
		}},
		{"empty-box update", func(tx *engine.Tx) {
			tx.Update(0, geom.EmptyAABB())
		}},
	}
	for _, c := range cases {
		tx := ds.Begin()
		c.fill(tx)
		if _, err := tx.Commit(); err == nil {
			t.Fatalf("%s: commit succeeded", c.name)
		}
	}
	after := ds.Stats()
	if after.Epoch != before.Epoch || after.Live != before.Live || after.Commits != 0 {
		t.Fatalf("failed commits mutated the dataset: %+v -> %+v", before, after)
	}

	// A finished Tx cannot commit again.
	tx := ds.Begin()
	tx.Insert(geom.BoxAround(geom.V(5, 5, 5), 2))
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	if _, err := tx.Commit(); err == nil {
		t.Fatal("double Commit succeeded")
	}
	rb := ds.Begin()
	rb.Insert(geom.BoxAround(geom.V(5, 5, 5), 2))
	rb.Rollback()
	if _, err := rb.Commit(); err == nil {
		t.Fatal("Commit after Rollback succeeded")
	}
	if got := ds.Stats().Commits; got != 1 {
		t.Fatalf("commits = %d, want 1", got)
	}
}

// TestDatasetAutoCompact: the size/ratio trigger fires, folds the overlay
// down, and the post-compaction snapshot still matches the oracle.
func TestDatasetAutoCompact(t *testing.T) {
	items := testItems(t, 6, 7005)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	ds, err := engine.NewDataset(items, engine.DatasetOptions{
		Contenders:   []string{"flat"},
		CompactMin:   8,
		CompactRatio: 0.01,
	})
	if err != nil {
		t.Fatal(err)
	}
	o := newVersionedOracle(items)
	rng := rand.New(rand.NewSource(7005))
	snap := mutateStep(t, rng, ds, o, 24, vol)
	st := ds.Stats()
	if st.AutoCompactions != 1 || st.Compactions != 1 {
		t.Fatalf("auto-compaction did not fire: %+v", st)
	}
	if snap.DeltaEntries() != 0 || snap.TombstoneCount() != 0 {
		t.Fatalf("overlay not folded: %d/%d", snap.DeltaEntries(), snap.TombstoneCount())
	}
	live := o.live()
	sess, err := engine.Open(engine.WithDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	for i, r := range mixedRequests(live, vol) {
		res, err := sess.Do(context.Background(), r)
		if err != nil {
			t.Fatal(err)
		}
		if want := oracleHits(live, r); !hitsEqual(res.Hits, want) {
			t.Fatalf("post-auto-compact request %d (%s): %v, oracle %v", i, r, res.Hits, want)
		}
	}
}

// TestDatasetOverlayStatsAndLayout: DeltaEntries/Tombstones surface in
// QueryStats, and the copy-on-write layout shares untouched base pages
// across commits.
func TestDatasetOverlayStatsAndLayout(t *testing.T) {
	items := testItems(t, 8, 7006)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	ds, err := engine.NewDataset(items, engine.DatasetOptions{
		Contenders: []string{"flat"}, DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	tx := ds.Begin()
	tx.Insert(geom.BoxAround(vol.Center(), 3))
	tx.Delete(0)
	tx.Update(1, geom.BoxAround(vol.Center(), 2))
	snap, err := tx.Commit()
	if err != nil {
		t.Fatal(err)
	}
	if snap.DeltaEntries() != 2 || snap.TombstoneCount() != 2 {
		t.Fatalf("overlay = %d delta / %d tombs, want 2/2", snap.DeltaEntries(), snap.TombstoneCount())
	}

	sess, err := engine.Open(engine.WithDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Do(context.Background(), engine.RangeRequest(vol))
	if err != nil {
		t.Fatal(err)
	}
	if res.Stats.DeltaEntries != 2 {
		t.Fatalf("DeltaEntries = %d, want 2 (every overlay entry tested)", res.Stats.DeltaEntries)
	}
	if res.Stats.Tombstones != 2 {
		t.Fatalf("Tombstones = %d, want 2 (both dead base hits filtered)", res.Stats.Tombstones)
	}

	// Layout: items 0 and 1 share the first page, so one page is patched,
	// the rest of the base prefix stays shared, and the delta fits one
	// appended page.
	cow := snap.CowStats()
	if cow.Patched != 1 || cow.Appended != 1 {
		t.Fatalf("cow stats = %+v, want 1 patched / 1 appended", cow)
	}
	if cow.Shared == 0 {
		t.Fatalf("no base pages shared: %+v", cow)
	}
	base := ds.Stats()
	if base.Cow != cow {
		t.Fatalf("cumulative cow %+v != commit cow %+v", base.Cow, cow)
	}
	if snap.Store() == nil || snap.Store().NumPages() == 0 {
		t.Fatal("snapshot layout missing")
	}
}

// TestDatasetConcurrentWriterReaders is the -race smoke of the redesign: a
// committer goroutine applies batches while reader goroutines pin sessions
// and require each pinned epoch to replay identically.
func TestDatasetConcurrentWriterReaders(t *testing.T) {
	items := testItems(t, 8, 7007)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	ds, err := engine.NewDataset(items, engine.DatasetOptions{
		Contenders: []string{"flat", "grid"},
		CompactMin: 32, CompactRatio: 0.2, // let auto-compactions race readers too
	})
	if err != nil {
		t.Fatal(err)
	}

	var wg sync.WaitGroup
	stop := make(chan struct{})
	wg.Add(1)
	go func() { // committer
		defer wg.Done()
		defer close(stop) // release the readers even if a commit fails
		rng := rand.New(rand.NewSource(7007))
		o := newVersionedOracle(items)
		for i := 0; i < 40; i++ {
			if _, err := mutateStepE(rng, ds, o, 8, vol); err != nil {
				t.Error(err)
				return
			}
		}
	}()

	reqs := []engine.Request{
		engine.RangeRequest(geom.BoxAround(vol.Center(), 40)),
		engine.KNNRequest(vol.Center(), 5),
		engine.PointRequest(vol.Center()),
		engine.WithinDistanceRequest(vol.Center(), 25),
	}
	for r := 0; r < 4; r++ {
		wg.Add(1)
		go func() { // reader
			defer wg.Done()
			for {
				select {
				case <-stop:
					return
				default:
				}
				sess, err := engine.Open(engine.WithDataset(ds))
				if err != nil {
					t.Error(err)
					return
				}
				first, err := sess.DoBatch(context.Background(), reqs, 2)
				if err != nil {
					t.Error(err)
					sess.Close()
					return
				}
				second, err := sess.DoBatch(context.Background(), reqs, 1)
				if err != nil {
					t.Error(err)
					sess.Close()
					return
				}
				for i := range first {
					if !hitsEqual(first[i].Hits, second[i].Hits) {
						t.Errorf("pinned epoch %d drifted between executions on request %d",
							sess.Snapshot().Epoch(), i)
					}
				}
				sess.Close()
			}
		}()
	}
	wg.Wait()
	if got := ds.Stats().Pinned; got != 0 {
		t.Fatalf("dangling pins after close: %d", got)
	}
}

// TestDatasetValidation covers constructor errors.
func TestDatasetValidation(t *testing.T) {
	items := testItems(t, 6, 7008)
	if _, err := engine.NewDataset(items, engine.DatasetOptions{Contenders: []string{"flat", "flat"}}); err == nil {
		t.Fatal("duplicate contenders accepted")
	}
	if _, err := engine.NewDataset(items, engine.DatasetOptions{Contenders: []string{"btree"}}); err == nil {
		t.Fatal("unknown contender accepted")
	}
	bad := []rtree.Item{{ID: 7}}
	if _, err := engine.NewDataset(bad, engine.DatasetOptions{}); err == nil {
		t.Fatal("non-dense initial IDs accepted")
	}
	ix := engine.NewGrid(engine.GridOptions{})
	if err := ix.Build(items); err != nil {
		t.Fatal(err)
	}
	if _, err := engine.NewDataset(items, engine.DatasetOptions{
		Contenders: []string{"flat"}, Bases: []engine.SpatialIndex{ix},
	}); err == nil || !strings.Contains(err.Error(), "pre-built") {
		t.Fatalf("mismatched pre-built base accepted (%v)", err)
	}

	// Empty initial set: everything lives in the delta until a compaction.
	ds, err := engine.NewDataset(nil, engine.DatasetOptions{Contenders: []string{"flat"}})
	if err != nil {
		t.Fatal(err)
	}
	tx := ds.Begin()
	id := tx.Insert(geom.BoxAround(geom.V(5, 5, 5), 2))
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	sess, err := engine.Open(engine.WithDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()
	res, err := sess.Do(context.Background(), engine.PointRequest(geom.V(5, 5, 5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Hits) != 1 || res.Hits[0].ID != id {
		t.Fatalf("empty-base dataset lost the insert: %v", res.Hits)
	}
	if _, err := ds.Compact(); err != nil {
		t.Fatal(err)
	}
	sess2, err := engine.Open(engine.WithDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	defer sess2.Close()
	res2, err := sess2.Do(context.Background(), engine.PointRequest(geom.V(5, 5, 5)))
	if err != nil {
		t.Fatal(err)
	}
	if len(res2.Hits) != 1 || res2.Hits[0].ID != id {
		t.Fatalf("post-compact lookup lost the insert: %v", res2.Hits)
	}
}

// TestDatasetProbeLeavesAttachedPoolUntouched extends the planner's
// cold-probe guarantee to snapshot views: a dataset session's calibration
// probes read the base index's pages, so they must detach a PageSource
// attached to the base — not warm it.
func TestDatasetProbeLeavesAttachedPoolUntouched(t *testing.T) {
	items := testItems(t, 8, 7009)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	base := engine.NewFlat(flat.DefaultOptions())
	if err := base.Build(items); err != nil {
		t.Fatal(err)
	}
	pool, err := pager.NewBufferPool(base.Store(), 16)
	if err != nil {
		t.Fatal(err)
	}
	base.SetSource(pool)
	ds, err := engine.NewDataset(items, engine.DatasetOptions{
		Contenders: []string{"flat"}, Bases: []engine.SpatialIndex{base},
	})
	if err != nil {
		t.Fatal(err)
	}
	var reqs []engine.Request
	for _, q := range []float64{10, 20, 30, 40} {
		reqs = append(reqs, engine.RangeRequest(geom.BoxAround(vol.Center(), q)))
	}
	d := ds.Current().Planner().PlanKind(engine.Range, reqs)
	if len(d.Probed) != 1 {
		t.Fatalf("first plan probed %v, want the one unprofiled view", d.Probed)
	}
	if st := pool.Stats(); st != (pager.Stats{}) {
		t.Fatalf("snapshot-view probe perturbed the base's attached pool: %+v", st)
	}
	if pool.Len() != 0 {
		t.Fatalf("snapshot-view probe populated the base's attached pool with %d pages", pool.Len())
	}
	if base.Source() != pool {
		t.Fatal("snapshot-view probe did not restore the base's attached source")
	}
}

// TestDatasetDuplicateInitialIDs: the constructor rejects duplicate IDs
// (range-only checking would silently fabricate a phantom zero item).
func TestDatasetDuplicateInitialIDs(t *testing.T) {
	dup := []rtree.Item{
		{Box: geom.BoxAround(geom.V(1, 1, 1), 1), ID: 0},
		{Box: geom.BoxAround(geom.V(2, 2, 2), 1), ID: 0},
	}
	if _, err := engine.NewDataset(dup, engine.DatasetOptions{}); err == nil {
		t.Fatal("duplicate initial IDs accepted")
	}
}

// TestDatasetCrossPlannerProbeRace: two sessions pinned to different epochs
// share the same base index instances, and each snapshot has its own
// planner — first-time probes from both planners must serialize on the
// *instance* (the probe rewires the index's read path), not merely within
// one planner. Run under -race.
func TestDatasetCrossPlannerProbeRace(t *testing.T) {
	items := testItems(t, 8, 7010)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	ds, err := engine.NewDataset(items, engine.DatasetOptions{
		Contenders: []string{"sharded"}, Shards: 4, DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	sessA, err := engine.Open(engine.WithDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	defer sessA.Close()
	tx := ds.Begin()
	tx.Insert(geom.BoxAround(vol.Center(), 2))
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	sessB, err := engine.Open(engine.WithDataset(ds))
	if err != nil {
		t.Fatal(err)
	}
	defer sessB.Close()
	if sessA.Snapshot().Epoch() == sessB.Snapshot().Epoch() {
		t.Fatal("sessions pinned the same epoch")
	}

	var wg sync.WaitGroup
	for _, sess := range []*engine.Session{sessA, sessB} {
		wg.Add(1)
		go func(s *engine.Session) {
			defer wg.Done()
			// First-time kinds on this epoch's planner: probes execute on the
			// shared sharded base.
			for _, req := range []engine.Request{
				engine.KNNRequest(vol.Center(), 4),
				engine.WithinDistanceRequest(vol.Center(), 20),
			} {
				if _, err := s.Do(context.Background(), req); err != nil {
					t.Error(err)
					return
				}
			}
		}(sess)
	}
	wg.Wait()
}
