package engine_test

// The zero-alloc hot-path gate: BenchmarkDoHotPath measures allocs/op and
// ns/op for every (contender × kind) Do cell, and TestDoHotPathAllocs pins
// the cells the pooled-scratch rework made allocation-free. The assertions
// are skipped under the race detector (its instrumentation allocates) — CI
// runs this package both ways, so the gate still runs on every push.

import (
	"context"
	"fmt"
	"testing"

	"neurospatial/internal/engine"
	"neurospatial/internal/geom"
	"neurospatial/internal/race"
)

// hotPathRequests is one request per kind, sized against the test tissue so
// every kind reports hits (an empty traversal would gate nothing).
func hotPathRequests(vol geom.AABB) []engine.Request {
	c := vol.Center()
	return []engine.Request{
		engine.RangeRequest(geom.BoxAround(c, 40)),
		engine.KNNRequest(c, 8),
		engine.PointRequest(c),
		engine.WithinDistanceRequest(c, 35),
	}
}

// BenchmarkDoHotPath covers every (contender × kind) Do cell. Run with
// -benchmem: allocs/op is the number the E12 harness and the benchgate
// rolling baseline track.
func BenchmarkDoHotPath(b *testing.B) {
	items := testItems(b, 24, 4242)
	indexes := buildIndexes(b, items)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	ctx := context.Background()
	sink := func(engine.Hit) {}
	for _, ix := range indexes {
		for _, req := range hotPathRequests(vol) {
			b.Run(fmt.Sprintf("%s/%s", ix.Name(), req.Kind), func(b *testing.B) {
				if _, err := ix.Do(ctx, req, sink); err != nil {
					b.Fatal(err)
				}
				b.ReportAllocs()
				b.ResetTimer()
				for i := 0; i < b.N; i++ {
					if _, err := ix.Do(ctx, req, sink); err != nil {
						b.Fatal(err)
					}
				}
			})
		}
	}
}

// TestDoHotPathAllocs asserts the zero-alloc cells stay at zero — every
// Range/KNN/Point/WithinDistance execution on the flat, grid and (since the
// per-level stats record became an inline array) rtree contenders — and pins
// per-cell ceilings on the cells with irreducible allocations: the rtree
// KNN candidate set and the sharded scatter's per-shard gather state. The
// ceilings can only shrink.
func TestDoHotPathAllocs(t *testing.T) {
	if race.Enabled {
		t.Skip("race instrumentation allocates; alloc gate runs in uninstrumented builds")
	}
	items := testItems(t, 24, 4242)
	indexes := buildIndexes(t, items)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	ctx := context.Background()
	sink := func(engine.Hit) {}
	// ceilings["name/kind"] is the per-op allocation budget; absent means 0.
	ceilings := map[string]float64{
		"rtree/knn":      9,
		"sharded/range":  19,
		"sharded/knn":    5,
		"sharded/point":  6,
		"sharded/within": 18,
	}
	for _, ix := range indexes {
		for _, req := range hotPathRequests(vol) {
			req := req
			// Warm the pools: first executions stock them.
			for i := 0; i < 3; i++ {
				if _, err := ix.Do(ctx, req, sink); err != nil {
					t.Fatal(err)
				}
			}
			got := testing.AllocsPerRun(50, func() {
				if _, err := ix.Do(ctx, req, sink); err != nil {
					t.Fatal(err)
				}
			})
			cell := fmt.Sprintf("%s/%s", ix.Name(), req.Kind)
			if got > ceilings[cell] {
				t.Errorf("%s: %.1f allocs/op, budget %.0f", cell, got, ceilings[cell])
			}
		}
	}
}
