// Package engine is the unified query-execution layer over the repository's
// spatial indexes — the common face the paper's demo implies: FLAT, the
// R-tree baseline and a thin grid index all serve the *same* interactive
// range-query workload, so harnesses, drivers and the walkthrough simulator
// talk to one SpatialIndex interface and treat the concrete index as a
// configuration, not a call site.
//
// The layering (bottom to top):
//
//	index     flat.Index, rtree.Tree(+PagedTree), grid.Grid  — structures;
//	          Sharded composes any of them into K spatial shards with
//	          scatter-gather execution (shard.Partition)
//	storage   pager.Store / pager.BufferPool via pager.PageSource — every
//	          index reads data pages through a PageSource, so the buffer
//	          pool + prefetch/SCOUT stack sits beneath any of them
//	execution parallel.Batch / parallel.BatchCtx — one generic deterministic
//	          batch executor (slot-ordered visits, identical-to-serial
//	          guarantee, context cancellation)
//	harness   experiments E1–E9, cmd drivers, prefetch.Simulator
//
// The public front door is the Request/Session surface: a tagged Request
// (Range, KNN, Point, WithinDistance) executed through a Session (Open /
// Do / DoBatch) with context cancellation checked at page-read granularity,
// routed either to a fixed contender or per-kind through the Planner. The
// range-only SpatialIndex.Query/BatchQuery methods remain as thin deprecated
// wrappers for the pre-Request call sites.
//
// Every wrapper in this package also satisfies prefetch.Served, so a
// walkthrough with prefetching can run over any index, and the Planner
// routes batches or walkthrough sequences to an index using observed
// per-(index, kind) cost statistics (internal/stats.Running).
package engine

import (
	"context"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/parallel"
	"neurospatial/internal/rtree"
)

// QueryStats is the unified per-query execution record reported by every
// index behind SpatialIndex. The mapping from each index's native counters
// is documented on the respective wrapper; the shared convention follows the
// demo's statistics panel:
//
//   - IndexReads counts accesses to RAM-resident index structure (FLAT's
//     page-level seed tree, the grid's cell directory). They are reported
//     but are not disk I/O.
//   - PagesRead counts data-page reads — the disk I/O of the query. For the
//     R-tree every node is a disk page (the classic one-node-per-page
//     layout), so its node accesses are page reads.
type QueryStats struct {
	// IndexReads counts RAM-resident index-structure reads.
	IndexReads int64
	// PagesRead counts data-page reads (disk I/O).
	PagesRead int64
	// EntriesTested counts element-box comparisons.
	EntriesTested int64
	// Results counts items reported.
	Results int64
	// Reseeds counts FLAT component re-seeds (0 for other indexes).
	Reseeds int64
	// ShardsTouched counts the spatial shards the query fanned out to
	// (0 for unsharded indexes).
	ShardsTouched int64
	// DeltaEntries counts delta-overlay entries tested when the query ran
	// through a Dataset snapshot (0 on raw indexes and freshly compacted
	// snapshots). Delta entries are RAM-resident, so they are reported
	// separately from EntriesTested and carry no page cost.
	DeltaEntries int64
	// Tombstones counts base-index hits the snapshot overlay discarded as
	// deleted (0 on raw indexes) — the read-side price of deferred deletes.
	Tombstones int64
	// PlanCacheHits / PlanCacheMisses count plan-cache consultations made to
	// route this query (both 0 when no planner routed it — fixed-index and
	// fixed-view sessions, or direct Index.Do calls). A hit replayed a cached
	// routing decision; a miss ran PlanKind, probing any unprofiled
	// contender. In a DoBatch, each distinct kind is routed once and the
	// consultation is recorded on the kind's first request, so aggregated
	// batch stats count exactly the consultations made.
	PlanCacheHits   int64
	PlanCacheMisses int64
	// LevelNodes / Levels are the R-tree's per-level node-access breakdown
	// (leaves first; Levels == 0 for other indexes): LevelNodes[l] counts
	// node accesses at level l, Levels is the number of meaningful entries.
	// An inline array rather than a slice so a stats record never allocates;
	// NodesPerLevel renders the display form.
	LevelNodes [MaxLevels]int64
	Levels     int
}

// MaxLevels bounds the per-level breakdown, matching the rtree record so the
// native array copies straight across.
const MaxLevels = rtree.MaxLevels

// NodesPerLevel renders the per-level breakdown (leaves first) as a freshly
// allocated slice, nil when no R-tree nodes were accessed — the display
// form. Hot paths read LevelNodes[:Levels] in place instead.
func (s QueryStats) NodesPerLevel() []int64 {
	if s.Levels == 0 {
		return nil
	}
	out := make([]int64, s.Levels)
	copy(out, s.LevelNodes[:s.Levels])
	return out
}

// addNode records one node access at level — the allocation-free bump the
// streaming descent shares with the rtree-native record.
func (s *QueryStats) addNode(level int) {
	if level >= MaxLevels {
		level = MaxLevels - 1
	}
	s.LevelNodes[level]++
	if level+1 > s.Levels {
		s.Levels = level + 1
	}
}

// TotalReads returns index reads plus page reads — the total access count
// under the demo's accounting.
func (s QueryStats) TotalReads() int64 { return s.IndexReads + s.PagesRead }

// Cost is the planner's I/O cost of the query: data-page reads dominate,
// RAM-resident index reads are discounted to 1/8 of a page read.
func (s QueryStats) Cost() float64 {
	return float64(s.PagesRead) + float64(s.IndexReads)/8
}

// Aggregate sums per-query statistics into batch totals; the per-level
// breakdown is summed element-wise. Allocation-free: the level counters are
// inline arrays on both sides, so aggregating a batch performs no heap work
// at all (the former []int64 form allocated the output slice).
//
//neurospatial:hotpath
func Aggregate(sts []QueryStats) QueryStats {
	var out QueryStats
	for i := range sts {
		out.IndexReads += sts[i].IndexReads
		out.PagesRead += sts[i].PagesRead
		out.EntriesTested += sts[i].EntriesTested
		out.Results += sts[i].Results
		out.Reseeds += sts[i].Reseeds
		out.ShardsTouched += sts[i].ShardsTouched
		out.DeltaEntries += sts[i].DeltaEntries
		out.Tombstones += sts[i].Tombstones
		out.PlanCacheHits += sts[i].PlanCacheHits
		out.PlanCacheMisses += sts[i].PlanCacheMisses
		for l, c := range sts[i].LevelNodes[:sts[i].Levels] {
			out.LevelNodes[l] += c
		}
		if sts[i].Levels > out.Levels {
			out.Levels = sts[i].Levels
		}
	}
	return out
}

// SpatialIndex is the uniform query interface of the engine layer. Do is the
// front door: one typed Request of any Kind (Range, KNN, Point,
// WithinDistance), hits emitted in the canonical per-kind order (see Hit) —
// identical across contenders, shard counts and worker counts — with
// cancellation observed at page-read granularity where the kind reads pages.
//
// All implementations are deterministic: Do and Query emit hits in a fixed
// order, and BatchQuery emits exactly the (query, id) pairs a serial loop of
// Query calls would produce, in the same order, for any worker count (the
// parallel.Batch guarantee).
//
// Item IDs must be dense in [0, NumItems()); they are the IDs reported by
// queries — the same contract flat.Build imposes.
type SpatialIndex interface {
	// Name identifies the index in tables and planner decisions.
	Name() string
	// Build (re)constructs the index over the items.
	Build(items []rtree.Item) error
	// Bounds returns the MBR of the indexed data (empty when empty).
	Bounds() geom.AABB
	// NumItems returns the number of indexed items.
	NumItems() int
	// Do executes one typed request, emitting hits in the canonical
	// per-kind order. It returns a *RequestError for an invalid request and
	// ctx.Err() when canceled mid-execution (in which case nothing was
	// emitted — emission is all-or-nothing). A nil ctx reads as
	// context.Background; a nil visit discards hits (stats only).
	// Pagination fields (Limit/Offset/Cursor) are honored: the request is
	// served through the lazy streaming pipeline (see Stream) and only the
	// requested page is emitted, with stats covering only the work of that
	// page. Do returns no resume cursor — paging callers go through
	// Session.Do (which mints one) or Stream + NextCursor.
	Do(ctx context.Context, req Request, visit func(Hit)) (QueryStats, error)
	// Query reports the IDs of all items whose boxes intersect q, in the
	// index's native order.
	//
	// Deprecated: Query predates the Request surface; new call sites should
	// route through Session.Do (or Do directly) with a Range request, which
	// adds cancellation and canonical ordering. Kept thin so existing call
	// sites compile.
	Query(q geom.AABB, visit func(id int32)) QueryStats
	// BatchQuery executes many queries with the usual Workers semantics
	// (0 or 1 serial, > 1 that many workers, negative one per CPU).
	//
	// Deprecated: BatchQuery predates the Request surface; new call sites
	// should route through Session.DoBatch, which adds cancellation,
	// mixed-kind batches and canonical ordering. Kept thin so existing call
	// sites compile.
	BatchQuery(qs []geom.AABB, workers int, visit func(qi int, id int32)) []QueryStats
}

// Paged is the storage capability of the engine indexes: element data lives
// on pager pages read through a swappable PageSource, and the page geometry
// is exposed for prefetchers (all three methods prefetch.PageGeometry
// needs). Every index in this package implements it.
type Paged interface {
	SpatialIndex
	// Store returns the index's page store (wrap it in a pager.BufferPool
	// and SetSource the pool to run cached).
	Store() *pager.Store
	// NumPages returns the number of data pages.
	NumPages() int
	// PageOf returns the page item id is laid out on.
	PageOf(id int32) pager.PageID
	// PagesInRange returns the pages a query of box q would touch.
	PagesInRange(q geom.AABB) []pager.PageID
	// SetSource routes subsequent Query/BatchQuery page reads through src
	// (nil restores cold reads from the index's own store).
	SetSource(src pager.PageSource)
	// Source returns the currently attached PageSource (nil when reads go
	// cold to the index's own store). The planner uses it to route
	// calibration probes around an attached buffer pool and restore it.
	Source() pager.PageSource
	// PagedQuery executes one query reading through the given pool — the
	// prefetch.Served walkthrough path; the pool's counters are the record.
	PagedQuery(q geom.AABB, pool *pager.BufferPool, visit func(id int32))
}

// batchQuery adapts a per-query runner onto the shared generic executor.
func batchQuery(workers int, qs []geom.AABB,
	run func(q geom.AABB, emit func(int32)) QueryStats,
	visit func(qi int, id int32)) []QueryStats {

	return parallel.Batch(workers, len(qs), func(qi int, emit func(int32)) QueryStats {
		return run(qs[qi], emit)
	}, visit)
}
