package engine_test

// The Request/Session differential harness: every (kind × index × shard
// count × worker count) cell is pinned against a serial brute-force oracle —
// identical hit sets, identical emission order, stats identical across
// worker counts — and cancellation tests prove a DoBatch aborted mid-flight
// stops before completing the batch and returns ctx.Err().

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync"
	"testing"

	"neurospatial/internal/engine"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// oracleHits answers any request by brute force over the raw item set, in
// the canonical order the engine contracts: ascending ID for the boolean
// kinds, ascending (Dist2, ID) for KNN.
func oracleHits(items []rtree.Item, req engine.Request) []engine.Hit {
	var hits []engine.Hit
	switch req.Kind {
	case engine.Range:
		for _, it := range items {
			if it.Box.Intersects(req.Box) {
				hits = append(hits, engine.Hit{ID: it.ID})
			}
		}
	case engine.Point:
		for _, it := range items {
			if it.Box.Contains(req.Center) {
				hits = append(hits, engine.Hit{ID: it.ID})
			}
		}
	case engine.WithinDistance:
		r2 := req.Radius * req.Radius
		for _, it := range items {
			if d2 := it.Box.Dist2Point(req.Center); d2 <= r2 {
				hits = append(hits, engine.Hit{ID: it.ID, Dist2: d2})
			}
		}
	case engine.KNN:
		for _, it := range items {
			hits = append(hits, engine.Hit{ID: it.ID, Dist2: it.Box.Dist2Point(req.Center)})
		}
		sort.Slice(hits, func(a, b int) bool {
			if hits[a].Dist2 != hits[b].Dist2 {
				return hits[a].Dist2 < hits[b].Dist2
			}
			return hits[a].ID < hits[b].ID
		})
		if len(hits) > req.K {
			hits = hits[:req.K]
		}
		return hits
	}
	sort.Slice(hits, func(a, b int) bool { return hits[a].ID < hits[b].ID })
	return hits
}

// mixedRequests builds a deterministic request stream covering all four
// kinds, including hit-heavy placements (item centers), misses (outside the
// volume), boundary radii and k values beyond the item count.
func mixedRequests(items []rtree.Item, vol geom.AABB) []engine.Request {
	c := vol.Center()
	var reqs []engine.Request
	// Ranges of growing extent, plus a miss.
	for i := 0; i < 5; i++ {
		reqs = append(reqs, engine.RangeRequest(geom.BoxAround(c, 5+15*float64(i))))
	}
	reqs = append(reqs, engine.RangeRequest(geom.BoxAround(geom.V(1e5, 1e5, 1e5), 10)))
	// KNN at item centers, volume center, outside; k small, large, > n.
	for i, k := range []int{1, 3, 8, 17, len(items) + 5} {
		p := c
		if len(items) > 0 {
			p = items[(i*37)%len(items)].Box.Center()
		}
		reqs = append(reqs, engine.KNNRequest(p, k))
	}
	reqs = append(reqs, engine.KNNRequest(geom.V(-500, 900, 1e4), 4))
	// Point stabs at item centers (guaranteed hits) and a miss.
	for i := 0; i < 4 && i < len(items); i++ {
		reqs = append(reqs, engine.PointRequest(items[(i*53)%len(items)].Box.Center()))
	}
	reqs = append(reqs, engine.PointRequest(geom.V(-42, -42, -42)))
	// Within-distance spheres, including radius 0 at an item center.
	for i, r := range []float64{0, 4, 12, 30} {
		p := c
		if len(items) > 0 {
			p = items[(i*71)%len(items)].Box.Center()
		}
		reqs = append(reqs, engine.WithinDistanceRequest(p, r))
	}
	return reqs
}

// sessionCells returns the (name, index) differential cells: every
// contender, with the sharded one at shard counts 1 and 4 over each
// sub-index kind.
func sessionCells(t testing.TB, items []rtree.Item) []struct {
	name string
	ix   engine.SpatialIndex
} {
	t.Helper()
	var cells []struct {
		name string
		ix   engine.SpatialIndex
	}
	add := func(name string, ix engine.SpatialIndex) {
		if err := ix.Build(items); err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		cells = append(cells, struct {
			name string
			ix   engine.SpatialIndex
		}{name, ix})
	}
	add("flat", engine.NewFlat(flat.DefaultOptions()))
	add("rtree", engine.NewRTree(0))
	add("grid", engine.NewGrid(engine.GridOptions{}))
	for _, shards := range []int{1, 4} {
		for _, sub := range []string{"flat", "rtree", "grid"} {
			add(fmt.Sprintf("sharded%d-%s", shards, sub),
				engine.NewSharded(engine.ShardedOptions{Shards: shards, Index: sub}))
		}
	}
	return cells
}

func hitsEqual(a, b []engine.Hit) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestSessionDifferential pins every (kind × index × shards{1,4} ×
// workers{1,4}) cell against the serial brute-force oracle: identical hit
// sets, identical emission order, and per-request stats identical across
// worker counts.
func TestSessionDifferential(t *testing.T) {
	items := testItems(t, 10, 9001)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	reqs := mixedRequests(items, vol)

	want := make([][]engine.Hit, len(reqs))
	for i, r := range reqs {
		want[i] = oracleHits(items, r)
	}

	for _, cell := range sessionCells(t, items) {
		sess, err := engine.Open(engine.WithIndex(cell.ix))
		if err != nil {
			t.Fatal(err)
		}
		var serial []engine.Result
		for _, w := range []int{1, 4} {
			got, err := sess.DoBatch(context.Background(), reqs, w)
			if err != nil {
				t.Fatalf("%s workers=%d: %v", cell.name, w, err)
			}
			for i := range got {
				if !hitsEqual(got[i].Hits, want[i]) {
					t.Fatalf("%s workers=%d request %d (%s): hits %v, oracle %v",
						cell.name, w, i, reqs[i], got[i].Hits, want[i])
				}
				if got[i].Stats.Results != int64(len(got[i].Hits)) {
					t.Fatalf("%s workers=%d request %d: Results=%d, %d hits emitted",
						cell.name, w, i, got[i].Stats.Results, len(got[i].Hits))
				}
			}
			if serial == nil {
				serial = got
				continue
			}
			// Stat consistency: the parallel run's record is identical to
			// the serial one's, per request.
			for i := range got {
				a, b := serial[i].Stats, got[i].Stats
				if a.IndexReads != b.IndexReads || a.PagesRead != b.PagesRead ||
					a.EntriesTested != b.EntriesTested || a.Results != b.Results ||
					a.Reseeds != b.Reseeds || a.ShardsTouched != b.ShardsTouched {
					t.Fatalf("%s request %d: stats diverged across worker counts:\nserial %+v\nworkers=4 %+v",
						cell.name, i, a, b)
				}
			}
		}
	}
}

// TestSessionDoMatchesDoBatch: a single Do emits exactly the corresponding
// batch entry.
func TestSessionDoMatchesDoBatch(t *testing.T) {
	items := testItems(t, 8, 9002)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	reqs := mixedRequests(items, vol)

	ix := engine.NewSharded(engine.ShardedOptions{Shards: 4})
	if err := ix.Build(items); err != nil {
		t.Fatal(err)
	}
	sess, err := engine.Open(engine.WithIndex(ix))
	if err != nil {
		t.Fatal(err)
	}
	batch, err := sess.DoBatch(context.Background(), reqs, 3)
	if err != nil {
		t.Fatal(err)
	}
	for i, r := range reqs {
		single, err := sess.Do(context.Background(), r)
		if err != nil {
			t.Fatalf("request %d: %v", i, err)
		}
		if !hitsEqual(single.Hits, batch[i].Hits) {
			t.Fatalf("request %d (%s): Do hits %v, DoBatch hits %v", i, r, single.Hits, batch[i].Hits)
		}
		if batch[i].Stats.Results != single.Stats.Results || batch[i].Stats.PagesRead != single.Stats.PagesRead {
			t.Fatalf("request %d: Do stats %+v, DoBatch %+v", i, single.Stats, batch[i].Stats)
		}
	}
}

// TestSessionPlannerRoutedMatchesOracle: a planner-routed session serves the
// mixed batch with oracle-identical output regardless of which contender
// each kind lands on.
func TestSessionPlannerRoutedMatchesOracle(t *testing.T) {
	items := testItems(t, 8, 9003)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	reqs := mixedRequests(items, vol)
	indexes := buildIndexes(t, items)

	sess, err := engine.Open(engine.WithPlanner(engine.NewPlanner(indexes...)), engine.WithWorkers(2))
	if err != nil {
		t.Fatal(err)
	}
	got, err := sess.DoBatch(context.Background(), reqs, 0)
	if err != nil {
		t.Fatal(err)
	}
	kindIndex := make(map[engine.Kind]string)
	for i := range got {
		if want := oracleHits(items, reqs[i]); !hitsEqual(got[i].Hits, want) {
			t.Fatalf("request %d (%s) via %s: hits %v, oracle %v", i, reqs[i], got[i].Index, got[i].Hits, want)
		}
		if prev, ok := kindIndex[reqs[i].Kind]; ok && prev != got[i].Index {
			t.Fatalf("kind %s routed to both %s and %s within one batch", reqs[i].Kind, prev, got[i].Index)
		}
		kindIndex[reqs[i].Kind] = got[i].Index
	}
}

// cancelSource counts page reads and fires a cancel func at the N-th — the
// mid-flight abort trigger of the cancellation tests.
type cancelSource struct {
	src    pager.PageSource
	mu     sync.Mutex
	reads  int
	after  int
	cancel context.CancelFunc
}

func (c *cancelSource) ReadPage(p pager.PageID) []int32 {
	c.mu.Lock()
	c.reads++
	if c.reads == c.after {
		c.cancel()
	}
	c.mu.Unlock()
	return c.src.ReadPage(p)
}

func (c *cancelSource) count() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.reads
}

// TestDoBatchCancellation: a DoBatch canceled mid-flight stops before
// completing the batch — at page-read granularity, in-flight queries
// included — emits nothing, and returns ctx.Err().
func TestDoBatchCancellation(t *testing.T) {
	items := testItems(t, 10, 9004)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	var reqs []engine.Request
	for i := 0; i < 24; i++ {
		reqs = append(reqs, engine.RangeRequest(geom.BoxAround(vol.Center(), 20+float64(i))))
	}

	for _, workers := range []int{1, 4} {
		ix := engine.NewFlat(flat.DefaultOptions())
		if err := ix.Build(items); err != nil {
			t.Fatal(err)
		}
		sess, err := engine.Open(engine.WithIndex(ix))
		if err != nil {
			t.Fatal(err)
		}

		// Uncanceled baseline: total page reads of the full batch.
		base := &cancelSource{src: ix.Store(), after: -1, cancel: func() {}}
		ix.SetSource(base)
		if _, err := sess.DoBatch(context.Background(), reqs, workers); err != nil {
			t.Fatal(err)
		}
		total := base.count()
		if total < 20 {
			t.Fatalf("workers=%d: batch too small to test cancellation (%d reads)", workers, total)
		}

		// Canceled run: the 5th page read cancels the context; every later
		// read is preceded by the ctx check, so the batch must abort well
		// short of the baseline and emit nothing.
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		cs := &cancelSource{src: ix.Store(), after: 5, cancel: cancel}
		ix.SetSource(cs)
		emitted := 0
		results, err := sess.DoBatch(ctx, reqs, workers)
		if results != nil {
			for _, r := range results {
				emitted += len(r.Hits)
			}
		}
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: canceled DoBatch returned %v, want context.Canceled", workers, err)
		}
		if results != nil {
			t.Fatalf("workers=%d: canceled DoBatch returned %d results (%d hits), want none",
				workers, len(results), emitted)
		}
		if got := cs.count(); got >= total {
			t.Fatalf("workers=%d: canceled run read %d pages, no fewer than the full batch's %d",
				workers, got, total)
		}
	}
}

// TestDoCancellationSingle: a single Do observes a pre-canceled and a
// mid-query-canceled context at page-read granularity.
func TestDoCancellationSingle(t *testing.T) {
	items := testItems(t, 10, 9005)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))

	ix := engine.NewGrid(engine.GridOptions{})
	if err := ix.Build(items); err != nil {
		t.Fatal(err)
	}
	sess, err := engine.Open(engine.WithIndex(ix))
	if err != nil {
		t.Fatal(err)
	}

	canceled, cancelNow := context.WithCancel(context.Background())
	cancelNow()
	if _, err := sess.Do(canceled, engine.RangeRequest(vol)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-canceled Do returned %v", err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	cs := &cancelSource{src: ix.Store(), after: 2, cancel: cancel}
	ix.SetSource(cs)
	res, err := sess.Do(ctx, engine.RangeRequest(vol))
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("mid-query canceled Do returned %v", err)
	}
	if len(res.Hits) != 0 {
		t.Fatalf("canceled Do emitted %d hits", len(res.Hits))
	}
	if got := cs.count(); got >= ix.NumPages() {
		t.Fatalf("canceled Do read %d of %d pages — no page-granular abort", got, ix.NumPages())
	}
}

// TestSessionInvalidRequests: malformed requests come back as typed
// *RequestError from Do, DoBatch and the index surface alike — never a
// panic, never a silent empty result.
func TestSessionInvalidRequests(t *testing.T) {
	items := testItems(t, 6, 9006)
	ix := engine.NewFlat(flat.DefaultOptions())
	if err := ix.Build(items); err != nil {
		t.Fatal(err)
	}
	sess, err := engine.Open(engine.WithIndex(ix))
	if err != nil {
		t.Fatal(err)
	}
	bad := []engine.Request{
		{}, // zero kind
		{Kind: engine.KNN, K: 0},
		{Kind: engine.WithinDistance, Radius: -1},
		engine.RangeRequest(geom.EmptyAABB()),
		{Kind: engine.Kind(99)},
	}
	for i, r := range bad {
		var reqErr *engine.RequestError
		if _, err := sess.Do(context.Background(), r); !errors.As(err, &reqErr) {
			t.Fatalf("bad request %d: Do returned %v, want *RequestError", i, err)
		}
		if _, err := ix.Do(context.Background(), r, nil); !errors.As(err, &reqErr) {
			t.Fatalf("bad request %d: index Do returned %v, want *RequestError", i, err)
		}
		batch := []engine.Request{engine.PointRequest(geom.V(0, 0, 0)), r}
		if _, err := sess.DoBatch(context.Background(), batch, 2); !errors.As(err, &reqErr) {
			t.Fatalf("bad request %d: DoBatch returned %v, want *RequestError", i, err)
		}
	}
	if _, err := engine.Open(); err == nil {
		t.Fatal("Open with no routing mode succeeded")
	}
	if _, err := engine.Open(engine.WithIndex(ix), engine.WithPlanner(engine.NewPlanner(ix))); err == nil {
		t.Fatal("Open with both routing modes succeeded")
	}
}
