package engine_test

// The engine differential harness: for every index behind
// engine.SpatialIndex, the engine-routed Query and BatchQuery (at any worker
// count) must emit exactly the hits, in the same order, with the same
// per-query stats, as a direct serial call — and all contenders must agree
// on the result set, with the direct flat/rtree implementations as oracles.

import (
	"reflect"
	"sort"
	"testing"

	"neurospatial/internal/circuit"
	"neurospatial/internal/engine"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/prefetch"
	"neurospatial/internal/rtree"
)

// Compile-time interface checks: every engine index is a SpatialIndex with
// paged storage, and serves walkthroughs with prefetching.
var (
	_ engine.Paged    = (*engine.Flat)(nil)
	_ engine.Paged    = (*engine.RTree)(nil)
	_ engine.Paged    = (*engine.Grid)(nil)
	_ engine.Paged    = (*engine.Sharded)(nil)
	_ prefetch.Served = (*engine.Flat)(nil)
	_ prefetch.Served = (*engine.RTree)(nil)
	_ prefetch.Served = (*engine.Grid)(nil)
	_ prefetch.Served = (*engine.Sharded)(nil)
	_ prefetch.Served = (*flat.Index)(nil)
)

// testItems builds a deterministic item set from a seeded tissue circuit.
func testItems(t testing.TB, neurons int, seed int64) []rtree.Item {
	t.Helper()
	p := circuit.DefaultParams()
	p.Neurons = neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	p.Seed = seed
	c, err := circuit.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]rtree.Item, len(c.Elements))
	for i := range c.Elements {
		items[i] = rtree.Item{Box: c.Elements[i].Bounds(), ID: c.Elements[i].ID}
	}
	return items
}

func testQueries(vol geom.AABB, n int) []geom.AABB {
	c := vol.Center()
	span := vol.Size().Scale(0.3)
	out := make([]geom.AABB, n)
	for i := range out {
		off := geom.V(
			span.X*float64(i%3-1)*0.5,
			span.Y*float64((i/3)%3-1)*0.5,
			span.Z*float64((i/9)%3-1)*0.5,
		)
		out[i] = geom.BoxAround(c.Add(off), 10+float64(i))
	}
	return out
}

func buildIndexes(t testing.TB, items []rtree.Item) []engine.SpatialIndex {
	t.Helper()
	indexes := []engine.SpatialIndex{
		engine.NewFlat(flat.DefaultOptions()),
		engine.NewRTree(0),
		engine.NewGrid(engine.GridOptions{}),
		engine.NewSharded(engine.ShardedOptions{Shards: 3}),
	}
	for _, ix := range indexes {
		if err := ix.Build(items); err != nil {
			t.Fatalf("%s: %v", ix.Name(), err)
		}
	}
	return indexes
}

type hit struct {
	q  int
	id int32
}

// TestEngineIndexesAgree asserts all three contenders report the same hit
// set per query, with direct flat and rtree implementations as oracles.
func TestEngineIndexesAgree(t *testing.T) {
	items := testItems(t, 12, 1001)
	indexes := buildIndexes(t, items)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))

	oracleTree, err := rtree.STR(items, 0)
	if err != nil {
		t.Fatal(err)
	}
	nonEmpty := 0
	queries := testQueries(vol, 18)
	for qi, q := range queries {
		var oracle []int32
		oracleTree.Query(q, func(it rtree.Item) { oracle = append(oracle, it.ID) })
		sort.Slice(oracle, func(i, j int) bool { return oracle[i] < oracle[j] })
		if len(oracle) > 0 {
			nonEmpty++
		}
		for _, ix := range indexes {
			var got []int32
			st := ix.Query(q, func(id int32) { got = append(got, id) })
			sort.Slice(got, func(i, j int) bool { return got[i] < got[j] })
			if !reflect.DeepEqual(got, oracle) {
				t.Errorf("query %d: %s returned %d hits, oracle %d (or content differs)",
					qi, ix.Name(), len(got), len(oracle))
			}
			if st.Results != int64(len(got)) {
				t.Errorf("query %d: %s stats.Results = %d, hits %d", qi, ix.Name(), st.Results, len(got))
			}
		}
	}
	if nonEmpty < len(queries)/2 {
		t.Errorf("only %d of %d queries hit data — workload degenerate", nonEmpty, len(queries))
	}
}

// TestEngineMatchesDirectCalls asserts the engine wrappers reproduce the
// direct index calls exactly: same hits, same order, same native stats under
// the documented mapping.
func TestEngineMatchesDirectCalls(t *testing.T) {
	items := testItems(t, 12, 2002)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	queries := testQueries(vol, 12)

	t.Run("flat", func(t *testing.T) {
		direct, err := flat.Build(items, flat.DefaultOptions())
		if err != nil {
			t.Fatal(err)
		}
		ix := engine.WrapFlat(direct)
		for qi, q := range queries {
			var want []int32
			ds := direct.Query(q, nil, func(id int32) { want = append(want, id) })
			var got []int32
			es := ix.Query(q, func(id int32) { got = append(got, id) })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d: hit sequence diverged from direct call", qi)
			}
			if es.IndexReads != ds.SeedNodeAccesses || es.PagesRead != ds.PagesRead ||
				es.Reseeds != ds.Reseeds || es.EntriesTested != ds.EntriesTested ||
				es.Results != ds.Results {
				t.Errorf("query %d: engine stats %+v, direct %+v", qi, es, ds)
			}
		}
	})

	t.Run("rtree", func(t *testing.T) {
		direct, err := rtree.STR(items, 0)
		if err != nil {
			t.Fatal(err)
		}
		ix, err := engine.WrapRTree(direct)
		if err != nil {
			t.Fatal(err)
		}
		for qi, q := range queries {
			var want []int32
			ds := direct.Query(q, func(it rtree.Item) { want = append(want, it.ID) })
			var got []int32
			es := ix.Query(q, func(id int32) { got = append(got, id) })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("query %d: hit sequence diverged from direct call", qi)
			}
			if es.PagesRead != ds.NodeAccesses() || es.EntriesTested != ds.EntriesTested ||
				es.Results != ds.Results || !reflect.DeepEqual(es.NodesPerLevel(), ds.NodesPerLevel()) {
				t.Errorf("query %d: engine stats %+v, direct %+v", qi, es, ds)
			}
		}
	})
}

// TestEngineBatchMatchesSerial is the acceptance differential: for each
// index, BatchQuery at any worker count emits exactly the hits and
// per-query stats of the serial Query loop — also when reads go through a
// shared buffer pool.
func TestEngineBatchMatchesSerial(t *testing.T) {
	items := testItems(t, 12, 3003)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	queries := testQueries(vol, 24)

	for _, ix := range buildIndexes(t, items) {
		t.Run(ix.Name(), func(t *testing.T) {
			var want []hit
			var wantStats []engine.QueryStats
			for qi, q := range queries {
				qi := qi
				wantStats = append(wantStats, ix.Query(q, func(id int32) {
					want = append(want, hit{qi, id})
				}))
			}
			for _, w := range []int{1, 2, 4, 7} {
				var got []hit
				gotStats := ix.BatchQuery(queries, w, func(q int, id int32) {
					got = append(got, hit{q, id})
				})
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("workers=%d: hit sequence diverged from serial (%d vs %d hits)",
						w, len(got), len(want))
				}
				for qi := range wantStats {
					if !reflect.DeepEqual(gotStats[qi], wantStats[qi]) {
						t.Errorf("workers=%d: query %d stats %+v, want %+v",
							w, qi, gotStats[qi], wantStats[qi])
					}
				}
			}

			// Through a shared pool the hit stream must still match; the
			// pool must see traffic and keep its accounting identity.
			paged := ix.(engine.Paged)
			if paged.Store() == nil {
				t.Fatal("no page store under the index")
			}
			for _, w := range []int{1, 4} {
				pool, err := pager.NewBufferPool(paged.Store(), 16)
				if err != nil {
					t.Fatal(err)
				}
				paged.SetSource(pool)
				var got []hit
				ix.BatchQuery(queries, w, func(q int, id int32) {
					got = append(got, hit{q, id})
				})
				paged.SetSource(nil)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("pooled workers=%d: hit sequence diverged", w)
				}
				st := pool.Stats()
				if st.Hits+st.DemandReads == 0 {
					t.Errorf("pooled workers=%d: pool saw no traffic", w)
				}
			}
		})
	}
}

// TestPlannerRoutesAndMatches asserts the planner's routed execution equals
// the chosen index's own serial output, that every contender is costed, and
// that observed history accumulates.
func TestPlannerRoutesAndMatches(t *testing.T) {
	items := testItems(t, 10, 4004)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	queries := testQueries(vol, 16)
	indexes := buildIndexes(t, items)
	p := engine.NewPlanner(indexes...)

	sts, d := p.Run(queries, 4, nil)
	if d.Index == nil {
		t.Fatal("no index chosen")
	}
	if len(d.CostPerQuery) != len(indexes) {
		t.Fatalf("costed %d contenders, want %d", len(d.CostPerQuery), len(indexes))
	}
	for name, cost := range d.CostPerQuery {
		if cost <= 0 {
			t.Errorf("contender %s estimated at %v reads/query", name, cost)
		}
		if got := d.CostPerQuery[d.Index.Name()]; got > cost {
			t.Errorf("chose %s at %v despite %s at %v", d.Index.Name(), got, name, cost)
		}
	}

	// Routed output == chosen index direct serial output. The first Run's
	// Observe may legitimately re-rank the contenders (the probe sample is
	// only a prefix of the batch), so predict the next choice with Plan —
	// it reads history without mutating it — and diff against that index.
	next := p.Plan(queries)
	if len(next.Probed) != 0 {
		t.Fatalf("replan re-probed %v despite learned history", next.Probed)
	}
	var want []hit
	wantStats := make([]engine.QueryStats, 0, len(queries))
	for qi, q := range queries {
		qi := qi
		wantStats = append(wantStats, next.Index.Query(q, func(id int32) {
			want = append(want, hit{qi, id})
		}))
	}
	var got []hit
	sts2, d2 := p.Run(queries, 2, func(q int, id int32) { got = append(got, hit{q, id}) })
	if d2.Index != next.Index {
		t.Fatalf("replan diverged from Plan: %s then %s", next.Index.Name(), d2.Index.Name())
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatal("planner-routed hits diverged from chosen index's serial run")
	}
	for qi := range wantStats {
		if sts2[qi].Results != wantStats[qi].Results || sts2[qi].PagesRead != wantStats[qi].PagesRead {
			t.Errorf("query %d: routed stats diverged", qi)
		}
	}
	_ = sts

	if _, ok := p.Selectivity(d.Index.Name()); !ok {
		t.Error("no selectivity history for the executed index")
	}
}

// TestPlannerSequenceRouting exercises PlanSequence over a walkthrough-like
// box series.
func TestPlannerSequenceRouting(t *testing.T) {
	items := testItems(t, 8, 5005)
	indexes := buildIndexes(t, items)
	p := engine.NewPlanner(indexes...)
	// A short straight walkthrough across the middle of the volume.
	boxes := make([]geom.AABB, 10)
	for i := range boxes {
		boxes[i] = geom.BoxAround(geom.V(40+float64(i)*12, 100, 100), 15)
	}
	d := p.Plan(boxes)
	if d.Index == nil || len(d.CostPerQuery) != len(indexes) {
		t.Fatalf("bad decision %+v", d)
	}
	if d.String() == "" {
		t.Error("empty decision rendering")
	}
}

// TestEngineWalkthroughUnderAnyIndex runs the prefetch simulator over every
// engine index: the paged-storage layer beneath each one serves the same
// walkthrough, and demand reads plus hits must cover every step's pages.
func TestEngineWalkthroughUnderAnyIndex(t *testing.T) {
	items := testItems(t, 10, 6006)
	boxes := make([]geom.AABB, 12)
	for i := range boxes {
		boxes[i] = geom.BoxAround(geom.V(30+float64(i)*12, 100, 100), 15)
	}
	var results []int64
	for _, ix := range buildIndexes(t, items) {
		served := ix.(prefetch.Served)
		sim := &prefetch.Simulator{
			Index:     served,
			Segment:   func(id int32) geom.Segment { return geom.Segment{} },
			Cost:      pager.DefaultCostModel(),
			ThinkTime: 100,
			PoolPages: served.NumPages(),
		}
		run, err := sim.Run(prefetch.None{}, boxes)
		if err != nil {
			t.Fatalf("%s: %v", ix.Name(), err)
		}
		if run.DemandReads == 0 {
			t.Errorf("%s: walkthrough issued no demand reads", ix.Name())
		}
		results = append(results, run.Elements)
	}
	// Every index serves the same elements across the walkthrough.
	for i := 1; i < len(results); i++ {
		if results[i] != results[0] {
			t.Errorf("index %d returned %d elements over the walkthrough, index 0 returned %d",
				i, results[i], results[0])
		}
	}
}
