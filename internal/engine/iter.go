package engine

import (
	"context"
	"fmt"
	"math"
	"slices"
	"sort"
	"strconv"
	"strings"
	"sync"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
)

// This file is the streaming result path: the lazy HitIterator pipeline that
// replaces collect-then-return execution for paginated requests (and for
// snapshot views, whose base∪delta merge is built from it). The design
// constraint is the canonical hit order (see Hit): ascending ID for the
// boolean kinds, ascending (Dist2, ID) for KNN. Laziness under that order
// comes from zone maps — per-page (min, max) item-ID ranges derived from the
// RAM-resident page layout at build time, like the page MBRs. Candidate
// pages are consumed in ascending min-ID order and a buffered hit is emitted
// only once its ID precedes every unread page's zone, so a consumer that
// stops pulling (Limit satisfied) leaves the remaining pages unread: early
// termination at page-read granularity, without the panic machinery of
// ctxSource — pull-based iterators check ctxErr before every read instead.

// HitIterator is a lazy stream of hits in the canonical per-kind order.
// Obtain one with Stream; drain it with Next until it reports false, then
// check Err (a false Next means either exhaustion or failure). Stats reports
// the execution record of the work performed so far — under a Limit it
// reflects only the pages actually read, which is what the early-stop proofs
// in the tests and E11 measure. Close releases the iterator's resources;
// callers must Close every iterator they obtain, drained or not (dropping
// one early without Close leaks nothing today, but the obligation is part of
// the contract so composed stages — shard merges, snapshot overlays — can
// rely on it).
type HitIterator interface {
	// Next returns the next hit in canonical order. ok == false means the
	// stream is exhausted or failed; check Err to distinguish.
	Next() (h Hit, ok bool)
	// Err returns the first error the stream hit (context cancellation, a
	// failing sub-stream), or nil.
	Err() error
	// Stats returns the execution record of the work performed so far.
	Stats() QueryStats
	// Close releases the iterator. It is idempotent.
	Close()
}

// streamer is the internal lazy-execution capability of the engine indexes:
// iterate returns a HitIterator over req's hits strictly after the resume
// position (nil = from the start). req carries no pagination fields — Stream
// strips them; after is the decoded cursor. Implementations must emit the
// canonical per-kind order and must not emit hits at or before after.
type streamer interface {
	iterate(ctx context.Context, req Request, after *Hit) (HitIterator, error)
}

// Cursor is an opaque resume token for paginated requests. A Result whose
// page filled its Limit carries the cursor of the next page; passing it in
// Request.Cursor resumes the stream strictly after the last returned hit.
// Cursors are only meaningful against the same index and item set they were
// minted on; they encode the request kind and the last hit's canonical
// position, nothing else.
type Cursor string

// cursorPrefix versions the token format.
const cursorPrefix = "nsc1"

// NextCursor mints the resume token for the page that follows last — the
// helper drivers use when they drain a Stream by hand instead of going
// through Session.Do.
func NextCursor(kind Kind, last Hit) Cursor {
	return Cursor(fmt.Sprintf("%s:%s:%016x:%08x",
		cursorPrefix, kind, math.Float64bits(last.Dist2), uint32(last.ID)))
}

// decode parses the token back into the kind it was minted for and the
// resume position.
func (c Cursor) decode() (Kind, Hit, error) {
	parts := strings.Split(string(c), ":")
	if len(parts) != 4 || parts[0] != cursorPrefix {
		return KindInvalid, Hit{}, fmt.Errorf("engine: malformed cursor %q", string(c))
	}
	kind, err := ParseKind(parts[1])
	if err != nil {
		return KindInvalid, Hit{}, fmt.Errorf("engine: malformed cursor %q: %v", string(c), err)
	}
	bits, err := strconv.ParseUint(parts[2], 16, 64)
	if err != nil {
		return KindInvalid, Hit{}, fmt.Errorf("engine: malformed cursor %q: bad distance", string(c))
	}
	id, err := strconv.ParseUint(parts[3], 16, 32)
	if err != nil {
		return KindInvalid, Hit{}, fmt.Errorf("engine: malformed cursor %q: bad id", string(c))
	}
	return kind, Hit{ID: int32(uint32(id)), Dist2: math.Float64frombits(bits)}, nil
}

// hitAfter reports whether h strictly follows after in kind's canonical
// order (the resume predicate of cursor paging).
func hitAfter(kind Kind, h, after Hit) bool {
	if kind == KNN {
		if h.Dist2 != after.Dist2 {
			return h.Dist2 > after.Dist2
		}
		return h.ID > after.ID
	}
	return h.ID > after.ID
}

// Stream opens a lazy iterator over req's hits on ix. It validates the
// request (pagination fields included), applies the cursor and Offset/Limit
// stages, and returns the composed pipeline; the caller must Close it.
// Indexes implementing the internal streaming capability (every engine
// contender and snapshot view) execute lazily — under a Limit, pages beyond
// the last emitted hit are never read; other SpatialIndex implementations
// fall back to a buffered drain of Do (correct, but without the early-stop
// I/O savings).
func Stream(ctx context.Context, ix SpatialIndex, req Request) (HitIterator, error) {
	if err := req.Validate(); err != nil {
		return nil, err
	}
	if err := ctxErr(ctx); err != nil {
		return nil, err
	}
	var after *Hit
	if req.Cursor != "" {
		_, h, err := req.Cursor.decode()
		if err != nil { // Validate already checked; defensive
			return nil, &RequestError{Kind: req.Kind, Field: "Cursor", Reason: err.Error()}
		}
		after = &h
	}
	base := req
	base.Limit, base.Offset, base.Cursor = 0, 0, ""
	it, err := rawStream(ctx, ix, base, after)
	if err != nil {
		return nil, err
	}
	if req.Offset > 0 || req.Limit > 0 {
		it = &clipIter{it: it, skip: req.Offset, limit: req.Limit}
	}
	return it, nil
}

// rawStream opens the unclipped stream: the index's own lazy iterator when
// it has one, a buffered fallback otherwise. req must carry no pagination
// fields.
func rawStream(ctx context.Context, ix SpatialIndex, req Request, after *Hit) (HitIterator, error) {
	if s, ok := ix.(streamer); ok {
		return s.iterate(ctx, req, after)
	}
	var hits []Hit
	st, err := ix.Do(ctx, req, func(h Hit) { hits = append(hits, h) })
	if err != nil {
		return nil, err
	}
	if after != nil {
		hits = skipThrough(hits, req.Kind, *after)
	}
	return &sliceIter{hits: hits, st: st}, nil
}

// doPaginated serves a paginated request through the lazy pipeline on behalf
// of an index's Do method, so a Limit/Offset/Cursor request means the same
// thing on every execution surface. Do's all-or-nothing emission contract is
// preserved: the page — at most the Offset+Limit window — is buffered and
// emitted only after the stream finishes cleanly.
func doPaginated(ctx context.Context, ix SpatialIndex, req Request, visit func(Hit)) (QueryStats, error) {
	it, err := Stream(ctx, ix, req)
	if err != nil {
		return QueryStats{}, err
	}
	defer it.Close()
	var hits []Hit
	for {
		h, ok := it.Next()
		if !ok {
			break
		}
		hits = append(hits, h)
	}
	if err := it.Err(); err != nil {
		return QueryStats{}, err
	}
	for _, h := range hits {
		visit(h)
	}
	return it.Stats(), nil
}

// skipThrough drops the prefix of canonical-order hits at or before after.
func skipThrough(hits []Hit, kind Kind, after Hit) []Hit {
	i := sort.Search(len(hits), func(i int) bool { return hitAfter(kind, hits[i], after) })
	return hits[i:]
}

// sliceIter serves an eagerly computed hit slice (KNN top-k, fallback
// drains) through the iterator surface.
type sliceIter struct {
	hits []Hit
	i    int
	st   QueryStats
	err  error
}

func (s *sliceIter) Next() (Hit, bool) {
	if s.err != nil || s.i >= len(s.hits) {
		return Hit{}, false
	}
	h := s.hits[s.i]
	s.i++
	return h, true
}

func (s *sliceIter) Err() error        { return s.err }
func (s *sliceIter) Stats() QueryStats { return s.st }
func (s *sliceIter) Close()            {}

// clipIter applies Offset/Limit to an underlying stream: skip hits, then
// pass through at most limit (0 = unlimited). Its Stats are the underlying
// record with Results rewritten to the clipped emission count, so a
// paginated Result keeps the Stats.Results == len(Hits) invariant.
type clipIter struct {
	it      HitIterator
	skip    int
	limit   int
	emitted int64
	done    bool
}

func (c *clipIter) Next() (Hit, bool) {
	if c.done {
		return Hit{}, false
	}
	for c.skip > 0 {
		if _, ok := c.it.Next(); !ok {
			c.done = true
			return Hit{}, false
		}
		c.skip--
	}
	if c.limit > 0 && c.emitted >= int64(c.limit) {
		c.done = true
		return Hit{}, false
	}
	h, ok := c.it.Next()
	if !ok {
		c.done = true
		return Hit{}, false
	}
	c.emitted++
	return h, true
}

func (c *clipIter) Err() error { return c.it.Err() }

func (c *clipIter) Stats() QueryStats {
	st := c.it.Stats()
	st.Results = c.emitted
	return st
}

func (c *clipIter) Close() { c.it.Close() }

// idZone is the (min, max) item-ID range of one data page — the zone map
// entry the streaming merge orders and prunes pages by. Like the page MBRs,
// zones are RAM-resident metadata derived from the layout at build time;
// consulting them is not page I/O.
type idZone struct {
	min, max int32
}

// storeZones derives the zone map of a page store. Pages without element
// payload (an R-tree internal node's placeholder) get an empty zone
// (min > max).
func storeZones(s *pager.Store) []idZone {
	zones := make([]idZone, s.NumPages())
	for p := range zones {
		z := idZone{min: math.MaxInt32, max: -1}
		for _, id := range s.Page(pager.PageID(p)) {
			if id < 0 {
				continue
			}
			if id < z.min {
				z.min = id
			}
			if id > z.max {
				z.max = id
			}
		}
		zones[p] = z
	}
	return zones
}

// hitHeap is a min-heap of hits by ID — the pending buffer of the zone-map
// merge (page contents are laid out spatially, not by ID).
type hitHeap []Hit

var hitHeapPool = sync.Pool{New: func() any {
	h := hitHeap(make([]Hit, 0, 64))
	return &h
}}

// getHitHeapBox returns a pool box holding an empty heap slice; iterators
// keep the box and write the grown slice back on Close.
func getHitHeapBox() *hitHeap {
	p := hitHeapPool.Get().(*hitHeap)
	*p = (*p)[:0]
	return p
}

func (h *hitHeap) push(x Hit) {
	*h = append(*h, x)
	s := *h
	i := len(s) - 1
	for i > 0 {
		p := (i - 1) / 2
		if s[p].ID <= s[i].ID {
			break
		}
		s[i], s[p] = s[p], s[i]
		i = p
	}
}

func (h *hitHeap) pop() Hit {
	s := *h
	top := s[0]
	n := len(s) - 1
	s[0] = s[n]
	*h = s[:n]
	s = s[:n]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		least := i
		if l < len(s) && s[l].ID < s[least].ID {
			least = l
		}
		if r < len(s) && s[r].ID < s[least].ID {
			least = r
		}
		if least == i {
			break
		}
		s[i], s[least] = s[least], s[i]
		i = least
	}
	return top
}

// pageZone is one candidate page of a zone-map stream.
type pageZone struct {
	p   pager.PageID
	min int32
}

// pageStream is the zone-map merge over a set of candidate data pages: pages
// are read on demand in ascending zone-min order, every resident ID is
// refined by accept (an exact RAM-geometry test), and a buffered hit is
// emitted only once no unread page can precede it. Stopping early leaves the
// remaining pages unread.
type pageStream struct {
	ctx     context.Context
	src     pager.PageSource
	pages   []pageZone // ascending zone min
	next    int
	pending hitHeap
	accept  func(id int32, st *QueryStats) (Hit, bool)
	// pagesBox/pendingBox are the pool boxes the slices came from; Close
	// writes the (possibly grown) slices back and recycles them.
	pagesBox   *[]pageZone
	pendingBox *hitHeap
	// coords, when non-nil, short-circuits accept for the box kinds: the
	// page's residents are refined with a sequential scan of the SoA
	// coordinate sidecar (same tests and counters as the accept closure,
	// without the per-element strided boxOf load).
	coords *pager.Coords
	boxQ   geom.AABB
	// hasAfter/afterID mirror the resume filter for the coords path.
	hasAfter bool
	afterID  int32
	st       QueryStats
	err      error
}

var pageZonePool = sync.Pool{New: func() any {
	s := make([]pageZone, 0, 64)
	return &s
}}

func cmpPageZone(a, b pageZone) int {
	switch {
	case a.min < b.min:
		return -1
	case a.min > b.min:
		return 1
	case a.p < b.p:
		return -1
	case a.p > b.p:
		return 1
	}
	return 0
}

// newPageStream builds the stream over the candidate pages, pruning pages
// entirely at or before the resume position via their zone max.
func newPageStream(ctx context.Context, src pager.PageSource, candidates []pager.PageID,
	zones []idZone, after *Hit, accept func(id int32, st *QueryStats) (Hit, bool)) *pageStream {

	ps := &pageStream{ctx: ctx, src: src, accept: accept,
		pagesBox: pageZonePool.Get().(*[]pageZone), pendingBox: getHitHeapBox()}
	ps.pending = *ps.pendingBox
	ps.st.IndexReads = int64(len(candidates))
	pages := (*ps.pagesBox)[:0]
	for _, p := range candidates {
		z := zones[p]
		if z.max < z.min {
			continue // no element payload
		}
		if after != nil && z.max <= after.ID {
			continue // cursor pushdown: the whole page precedes the resume point
		}
		pages = append(pages, pageZone{p: p, min: z.min})
	}
	*ps.pagesBox = pages
	slices.SortFunc(pages, cmpPageZone)
	ps.pages = pages
	if after != nil {
		ps.hasAfter, ps.afterID = true, after.ID
		inner := ps.accept
		lo := after.ID
		ps.accept = func(id int32, st *QueryStats) (Hit, bool) {
			if id <= lo {
				return Hit{}, false
			}
			return inner(id, st)
		}
	}
	return ps
}

// useCoords switches the box-kind refinement onto the SoA sidecar (see the
// coords field). Only valid when the accept stage is the plain
// box-intersection test against boxQ — the caller asserts that by kind.
func (ps *pageStream) useCoords(c *pager.Coords, boxQ geom.AABB) {
	ps.coords = c
	ps.boxQ = boxQ
}

//neurospatial:hotpath
func (ps *pageStream) Next() (Hit, bool) {
	for {
		if ps.err != nil {
			return Hit{}, false
		}
		// Emit the least pending hit once no unread page can precede it.
		if len(ps.pending) > 0 &&
			(ps.next >= len(ps.pages) || ps.pending[0].ID < ps.pages[ps.next].min) {
			return ps.pending.pop(), true
		}
		if ps.next >= len(ps.pages) {
			return Hit{}, false
		}
		if err := ctxErr(ps.ctx); err != nil {
			ps.err = err
			return Hit{}, false
		}
		pz := ps.pages[ps.next]
		ps.next++
		ps.st.PagesRead++
		ids := ps.src.ReadPage(pz.p)
		if ps.coords != nil {
			base := ps.coords.PageOffset(pz.p)
			for i, id := range ids {
				if id < 0 || (ps.hasAfter && id <= ps.afterID) {
					continue
				}
				ps.st.EntriesTested++
				if ps.coords.IntersectsAt(base+i, ps.boxQ) {
					ps.st.Results++
					ps.pending.push(Hit{ID: id})
				}
			}
			continue
		}
		for _, id := range ids {
			if id < 0 {
				continue
			}
			if h, ok := ps.accept(id, &ps.st); ok {
				ps.st.Results++
				ps.pending.push(h)
			}
		}
	}
}

func (ps *pageStream) Err() error        { return ps.err }
func (ps *pageStream) Stats() QueryStats { return ps.st }

// Close recycles the pooled page list and pending heap. Idempotent; Stats
// stays valid, and a Next after Close sees an empty page list and empty heap
// and reports exhaustion.
func (ps *pageStream) Close() {
	if ps.pagesBox != nil {
		*ps.pagesBox = ps.pages[:0]
		pageZonePool.Put(ps.pagesBox)
		ps.pagesBox, ps.pages, ps.next = nil, nil, 0
	}
	if ps.pendingBox != nil {
		*ps.pendingBox = ps.pending[:0]
		hitHeapPool.Put(ps.pendingBox)
		ps.pendingBox, ps.pending = nil, nil
	}
}

// mapFilterIter translates and filters an inner stream: fn maps each inner
// hit to the outer space or drops it. extra, when non-nil, is a counter
// record fn mutates (e.g. the snapshot overlay's tombstone count) that
// Stats folds into the reported record.
type mapFilterIter struct {
	it    HitIterator
	fn    func(Hit) (Hit, bool)
	extra *QueryStats
}

func (m *mapFilterIter) Next() (Hit, bool) {
	for {
		h, ok := m.it.Next()
		if !ok {
			return Hit{}, false
		}
		if out, keep := m.fn(h); keep {
			return out, true
		}
	}
}

func (m *mapFilterIter) Err() error { return m.it.Err() }

func (m *mapFilterIter) Stats() QueryStats {
	st := m.it.Stats()
	if m.extra != nil {
		st.IndexReads += m.extra.IndexReads
		st.PagesRead += m.extra.PagesRead
		st.EntriesTested += m.extra.EntriesTested
		st.Reseeds += m.extra.Reseeds
		st.ShardsTouched += m.extra.ShardsTouched
		st.DeltaEntries += m.extra.DeltaEntries
		st.Tombstones += m.extra.Tombstones
	}
	return st
}

func (m *mapFilterIter) Close() { m.it.Close() }

// kwayMerge merges ascending-ID streams into one ascending-ID stream — the
// sharded gather and the snapshot base∪delta merge. Input streams must have
// pairwise-disjoint ID sets (shard partitions; base and delta, where an
// updated item is tombstoned out of the base). Stats sums the inputs' records
// plus extra, with Results rewritten to the merged emission count.
type kwayMerge struct {
	its     []HitIterator
	cur     []Hit
	ok      []bool
	primed  bool
	extra   QueryStats
	emitted int64
	err     error
}

func newKWayMerge(its []HitIterator, extra QueryStats) *kwayMerge {
	return &kwayMerge{its: its, cur: make([]Hit, len(its)), ok: make([]bool, len(its)), extra: extra}
}

// advance pulls the next hit of stream i, recording a sub-stream failure.
func (m *kwayMerge) advance(i int) {
	m.cur[i], m.ok[i] = m.its[i].Next()
	if !m.ok[i] {
		if err := m.its[i].Err(); err != nil && m.err == nil {
			m.err = err
		}
	}
}

func (m *kwayMerge) Next() (Hit, bool) {
	if !m.primed {
		m.primed = true
		for i := range m.its {
			m.advance(i)
		}
	}
	if m.err != nil {
		return Hit{}, false
	}
	best := -1
	for i := range m.its {
		if m.ok[i] && (best < 0 || m.cur[i].ID < m.cur[best].ID) {
			best = i
		}
	}
	if best < 0 {
		return Hit{}, false
	}
	h := m.cur[best]
	m.advance(best)
	if m.err != nil {
		return Hit{}, false
	}
	m.emitted++
	return h, true
}

func (m *kwayMerge) Err() error { return m.err }

func (m *kwayMerge) Stats() QueryStats {
	sts := make([]QueryStats, 0, len(m.its)+1)
	for _, it := range m.its {
		sts = append(sts, it.Stats())
	}
	sts = append(sts, m.extra)
	st := Aggregate(sts)
	st.Results = m.emitted
	return st
}

func (m *kwayMerge) Close() {
	for _, it := range m.its {
		it.Close()
	}
}

// knnEager adapts the bounded (O(K) memory) kNN executions onto the iterator
// surface: the top-k is computed eagerly by the contender's bound-tightening
// accumulator, then served as a slice, skipping past the resume position.
// kNN result sets are bounded by K, so laziness buys nothing there; the
// kinds that page million-hit results are the ascending-ID ones.
func knnEager(run func(visit func(Hit)) (QueryStats, error), kind Kind, after *Hit) (HitIterator, error) {
	var hits []Hit
	st, err := run(func(h Hit) { hits = append(hits, h) })
	if err != nil {
		return nil, err
	}
	if after != nil {
		hits = skipThrough(hits, kind, *after)
	}
	return &sliceIter{hits: hits, st: st}, nil
}

// queryBox is the traversal box of an ascending-ID kind: the range box
// itself, the degenerate stab box of Point, the bounding box of the
// WithinDistance sphere.
func queryBox(req Request) geom.AABB {
	switch req.Kind {
	case Point:
		return geom.Box(req.Center, req.Center)
	case WithinDistance:
		return geom.BoxAround(req.Center, req.Radius)
	}
	return req.Box
}

// acceptFor builds the exact-geometry refine stage of an ascending-ID kind:
// the box-intersection test for Range/Point, the exact Dist2Point sphere
// test for WithinDistance. boxOf must resolve IDs from RAM metadata.
func acceptFor(req Request, boxOf func(int32) geom.AABB) func(id int32, st *QueryStats) (Hit, bool) {
	if req.Kind == WithinDistance {
		r2 := req.Radius * req.Radius
		return func(id int32, st *QueryStats) (Hit, bool) {
			st.EntriesTested++
			if d2 := boxOf(id).Dist2Point(req.Center); d2 <= r2 {
				return Hit{ID: id, Dist2: d2}, true
			}
			return Hit{}, false
		}
	}
	q := queryBox(req)
	return func(id int32, st *QueryStats) (Hit, bool) {
		st.EntriesTested++
		if boxOf(id).Intersects(q) {
			return Hit{ID: id}, true
		}
		return Hit{}, false
	}
}
