package engine_test

// The sharded scatter-gather differential: for shard counts {1, 2, 4, 7} ×
// worker counts {1, 2, 4}, engine.Sharded must emit exactly the hits of the
// unsharded contender (Sharded's fixed native order is ascending global ID)
// with consistent stats — also through per-shard buffer pools, through an
// attached global pool, and under planner-routed execution.

import (
	"reflect"
	"testing"

	"neurospatial/internal/engine"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/prefetch"
	"neurospatial/internal/rtree"
	"neurospatial/internal/scout"
)

var shardCounts = []int{1, 2, 4, 7}
var shardWorkerCounts = []int{1, 2, 4}

// sortedHits runs a serial query loop on ix and returns hits in ascending ID
// per query — the canonical gather order Sharded must reproduce — plus the
// per-query stats.
func sortedHits(ix engine.SpatialIndex, qs []geom.AABB) ([]hit, []engine.QueryStats) {
	var hits []hit
	var sts []engine.QueryStats
	for qi, q := range qs {
		var ids []int32
		sts = append(sts, ix.Query(q, func(id int32) { ids = append(ids, id) }))
		insertionSort(ids)
		for _, id := range ids {
			hits = append(hits, hit{qi, id})
		}
	}
	return hits, sts
}

func insertionSort(ids []int32) {
	for i := 1; i < len(ids); i++ {
		for j := i; j > 0 && ids[j] < ids[j-1]; j-- {
			ids[j], ids[j-1] = ids[j-1], ids[j]
		}
	}
}

// subIndexOptions returns the Sharded configuration for a sub-index kind.
func subIndexOptions(kind string, shards int) engine.ShardedOptions {
	return engine.ShardedOptions{Shards: shards, Index: kind}
}

// newContender builds the raw unsharded contender of a sub-index kind, the
// oracle of the sharded differential.
func newContender(t *testing.T, kind string, items []rtree.Item) engine.SpatialIndex {
	t.Helper()
	var ix engine.SpatialIndex
	switch kind {
	case "flat":
		ix = engine.NewFlat(flat.DefaultOptions())
	case "rtree":
		ix = engine.NewRTree(0)
	case "grid":
		ix = engine.NewGrid(engine.GridOptions{})
	default:
		t.Fatalf("unknown contender %q", kind)
	}
	if err := ix.Build(items); err != nil {
		t.Fatal(err)
	}
	return ix
}

// TestShardedMatchesUnshardedDifferential is the acceptance differential:
// hit-for-hit agreement with the unsharded contender across shard counts ×
// worker counts, for every sub-index kind.
func TestShardedMatchesUnshardedDifferential(t *testing.T) {
	items := testItems(t, 12, 7007)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	queries := testQueries(vol, 24)

	for _, kind := range []string{"flat", "rtree", "grid"} {
		t.Run(kind, func(t *testing.T) {
			base := newContender(t, kind, items)
			want, wantStats := sortedHits(base, queries)

			for _, k := range shardCounts {
				sh := engine.NewSharded(subIndexOptions(kind, k))
				if err := sh.Build(items); err != nil {
					t.Fatalf("shards=%d: %v", k, err)
				}
				if got := sh.NumShards(); got != k {
					t.Fatalf("shards=%d: built %d shards", k, got)
				}

				// Serial scatter-gather == sorted unsharded serial loop.
				got, gotStats := sortedHits(sh, queries)
				if !reflect.DeepEqual(got, want) {
					t.Fatalf("shards=%d: serial hits diverged from unsharded (%d vs %d)",
						k, len(got), len(want))
				}
				for qi := range gotStats {
					if gotStats[qi].Results != wantStats[qi].Results {
						t.Errorf("shards=%d query %d: Results %d, unsharded %d",
							k, qi, gotStats[qi].Results, wantStats[qi].Results)
					}
					if st := gotStats[qi].ShardsTouched; st < 1 || st > int64(k) {
						t.Errorf("shards=%d query %d: ShardsTouched %d outside [1,%d]",
							k, qi, st, k)
					}
				}

				// BatchQuery at every worker count == Sharded serial, exact
				// per-query stats included.
				for _, w := range shardWorkerCounts {
					var batch []hit
					bsts := sh.BatchQuery(queries, w, func(q int, id int32) {
						batch = append(batch, hit{q, id})
					})
					if !reflect.DeepEqual(batch, want) {
						t.Fatalf("shards=%d workers=%d: batch hits diverged", k, w)
					}
					if !reflect.DeepEqual(bsts, gotStats) {
						t.Fatalf("shards=%d workers=%d: batch stats diverged", k, w)
					}
				}
			}
		})
	}
}

// TestShardedPerShardPools runs the differential through per-shard buffer
// pools: same hits, and every shard's pool must have seen its own traffic
// with the accounting identity intact.
func TestShardedPerShardPools(t *testing.T) {
	items := testItems(t, 12, 7008)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	queries := testQueries(vol, 24)

	base := engine.NewFlat(flat.DefaultOptions())
	if err := base.Build(items); err != nil {
		t.Fatal(err)
	}
	want, _ := sortedHits(base, queries)

	for _, k := range shardCounts {
		opts := subIndexOptions("flat", k)
		opts.PoolPages = 8
		sh := engine.NewSharded(opts)
		if err := sh.Build(items); err != nil {
			t.Fatal(err)
		}
		for _, w := range shardWorkerCounts {
			var got []hit
			sh.BatchQuery(queries, w, func(q int, id int32) { got = append(got, hit{q, id}) })
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d workers=%d: pooled hits diverged", k, w)
			}
		}
		touched := 0
		for i, pool := range sh.ShardPools() {
			if pool == nil {
				t.Fatalf("shards=%d: shard %d has no pool", k, i)
			}
			st := pool.Stats()
			if st.Hits+st.DemandReads > 0 {
				touched++
			}
		}
		if touched == 0 {
			t.Errorf("shards=%d: no shard pool saw traffic", k)
		}
	}
}

// TestShardedThroughGlobalPool attaches one buffer pool over the global page
// space (SetSource): hits must be unchanged and the pool must account reads
// in global page IDs.
func TestShardedThroughGlobalPool(t *testing.T) {
	items := testItems(t, 12, 7009)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	queries := testQueries(vol, 24)

	base := engine.NewFlat(flat.DefaultOptions())
	if err := base.Build(items); err != nil {
		t.Fatal(err)
	}
	want, _ := sortedHits(base, queries)

	for _, k := range shardCounts {
		sh := engine.NewSharded(subIndexOptions("flat", k))
		if err := sh.Build(items); err != nil {
			t.Fatal(err)
		}
		for _, w := range shardWorkerCounts {
			pool, err := pager.NewBufferPool(sh.Store(), 16)
			if err != nil {
				t.Fatal(err)
			}
			sh.SetSource(pool)
			var got []hit
			sh.BatchQuery(queries, w, func(q int, id int32) { got = append(got, hit{q, id}) })
			sh.SetSource(nil)
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d workers=%d: globally pooled hits diverged", k, w)
			}
			if st := pool.Stats(); st.Hits+st.DemandReads == 0 {
				t.Errorf("shards=%d workers=%d: global pool saw no traffic", k, w)
			}
		}
	}
}

// TestShardedPlannerRouted pins planner-routed execution over a sharded
// contender: routed output equals the chosen index's serial run for every
// shard × worker combination.
func TestShardedPlannerRouted(t *testing.T) {
	items := testItems(t, 12, 7010)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	queries := testQueries(vol, 16)

	for _, k := range shardCounts {
		sh := engine.NewSharded(subIndexOptions("flat", k))
		if err := sh.Build(items); err != nil {
			t.Fatal(err)
		}
		fl := engine.NewFlat(flat.DefaultOptions())
		if err := fl.Build(items); err != nil {
			t.Fatal(err)
		}
		p := engine.NewPlanner(fl, sh)
		for _, w := range shardWorkerCounts {
			next := p.Plan(queries)
			var want []hit
			for qi, q := range queries {
				qi := qi
				next.Index.Query(q, func(id int32) { want = append(want, hit{qi, id}) })
			}
			var got []hit
			_, d := p.Run(queries, w, func(q int, id int32) { got = append(got, hit{q, id}) })
			if d.Index != next.Index {
				t.Fatalf("shards=%d workers=%d: Run chose %s, Plan predicted %s",
					k, w, d.Index.Name(), next.Index.Name())
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("shards=%d workers=%d: planner-routed hits diverged", k, w)
			}
		}
	}
}

// TestShardedStorageGeometry checks the dense global page remap: page
// contents are global IDs, PageOf/PagesInRange address the global space, and
// the per-shard page ranges are disjoint and dense.
func TestShardedStorageGeometry(t *testing.T) {
	items := testItems(t, 12, 7011)
	sh := engine.NewSharded(subIndexOptions("flat", 4))
	if err := sh.Build(items); err != nil {
		t.Fatal(err)
	}
	store := sh.Store()
	if store == nil || store.NumPages() != sh.NumPages() {
		t.Fatal("global store missing or page count mismatch")
	}
	// Every item is on exactly the global page its PageOf reports.
	seen := make([]int, len(items))
	for p := 0; p < store.NumPages(); p++ {
		for _, id := range store.Page(pager.PageID(p)) {
			if id < 0 || int(id) >= len(items) {
				t.Fatalf("page %d holds non-global ID %d", p, id)
			}
			seen[id]++
			if got := sh.PageOf(id); got != pager.PageID(p) {
				t.Fatalf("item %d laid out on page %d but PageOf says %d", id, p, got)
			}
		}
	}
	for id, n := range seen {
		if n != 1 {
			t.Fatalf("item %d appears on %d pages, want exactly 1", id, n)
		}
	}
	if sh.PageOf(-1) != pager.InvalidPage || sh.PageOf(int32(len(items))) != pager.InvalidPage {
		t.Error("out-of-range PageOf did not return InvalidPage")
	}
	// PagesInRange covers the pages of every query result.
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))
	for _, q := range testQueries(vol, 8) {
		pages := make(map[pager.PageID]bool)
		for _, p := range sh.PagesInRange(q) {
			pages[p] = true
		}
		sh.Query(q, func(id int32) {
			if !pages[sh.PageOf(id)] {
				t.Fatalf("result %d's page %d not in PagesInRange", id, sh.PageOf(id))
			}
		})
	}
}

// TestShardedWalkthroughWithPrefetchers runs the prefetch simulator over a
// sharded store with every location prefetcher plus SCOUT: the walkthrough
// must serve the same elements as the unsharded flat-served run, and
// prefetch accounting must stay within the identity bounds.
func TestShardedWalkthroughWithPrefetchers(t *testing.T) {
	items := testItems(t, 10, 7012)
	boxes := make([]geom.AABB, 12)
	for i := range boxes {
		boxes[i] = geom.BoxAround(geom.V(30+float64(i)*12, 100, 100), 15)
	}
	base := engine.NewFlat(flat.DefaultOptions())
	if err := base.Build(items); err != nil {
		t.Fatal(err)
	}
	baseSim := &prefetch.Simulator{
		Index:     base,
		Segment:   func(id int32) geom.Segment { return geom.Segment{} },
		Cost:      pager.DefaultCostModel(),
		ThinkTime: 100,
		PoolPages: base.NumPages(),
	}
	baseRun, err := baseSim.Run(prefetch.None{}, boxes)
	if err != nil {
		t.Fatal(err)
	}

	sh := engine.NewSharded(subIndexOptions("flat", 4))
	if err := sh.Build(items); err != nil {
		t.Fatal(err)
	}
	sim := &prefetch.Simulator{
		Index:     sh,
		Segment:   func(id int32) geom.Segment { return geom.Segment{} },
		Cost:      pager.DefaultCostModel(),
		ThinkTime: 100,
		PoolPages: sh.NumPages(),
	}
	for _, p := range []prefetch.Prefetcher{
		prefetch.None{}, prefetch.Hilbert{}, prefetch.Extrapolation{}, scout.New(scout.Options{}),
	} {
		run, err := sim.Run(p, boxes)
		if err != nil {
			t.Fatalf("%s: %v", p.Name(), err)
		}
		if run.Elements != baseRun.Elements {
			t.Errorf("%s: served %d elements over sharded store, flat served %d",
				p.Name(), run.Elements, baseRun.Elements)
		}
		if run.DemandReads == 0 {
			t.Errorf("%s: walkthrough issued no demand reads", p.Name())
		}
		if run.PrefetchHits > run.PrefetchReads {
			t.Errorf("%s: more prefetch hits (%d) than prefetch reads (%d)",
				p.Name(), run.PrefetchHits, run.PrefetchReads)
		}
	}
}

// TestShardedEmptyAndMoreShardsThanItems covers the degenerate builds.
func TestShardedEmptyAndMoreShardsThanItems(t *testing.T) {
	sh := engine.NewSharded(subIndexOptions("flat", 4))
	if err := sh.Build(nil); err != nil {
		t.Fatal(err)
	}
	if sh.NumItems() != 0 || sh.NumShards() != 0 || sh.NumPages() != 0 {
		t.Fatal("empty build left residue")
	}
	st := sh.Query(geom.BoxAround(geom.V(0, 0, 0), 10), func(int32) { t.Fatal("hit on empty index") })
	if st.ShardsTouched != 0 {
		t.Fatal("empty index touched shards")
	}

	items := []rtree.Item{
		{Box: geom.BoxAround(geom.V(0, 0, 0), 1), ID: 0},
		{Box: geom.BoxAround(geom.V(50, 0, 0), 1), ID: 1},
	}
	sh = engine.NewSharded(subIndexOptions("flat", 8))
	if err := sh.Build(items); err != nil {
		t.Fatal(err)
	}
	if sh.NumShards() != 2 {
		t.Fatalf("2 items under 8 shards built %d shards, want 2", sh.NumShards())
	}
	var got []int32
	sh.Query(geom.BoxAround(geom.V(25, 0, 0), 30), func(id int32) { got = append(got, id) })
	if !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("got %v, want [0 1]", got)
	}
}
