package engine

import (
	"context"
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// Snapshot is one immutable epoch of a Dataset: a consistent view of the item
// set that readers can pin (Session.Open with WithDataset) while later
// commits land. Structurally it is a delta overlay over a base:
//
//	base   the epoch's contender indexes (flat/rtree/grid/sharded — whichever
//	       the Dataset is configured with), built once over the base item set
//	       and shared read-only by every epoch until a compaction rebuilds
//	       them;
//	delta  a small memtable-style overlay of items inserted or updated since
//	       that build, sorted by ID and scanned brute-force (it is bounded by
//	       the compaction trigger);
//	tombs  the IDs of base items deleted or updated since the build — base
//	       hits matching a tombstone are filtered out at query time.
//
// Queries run through the snapshot's per-contender views (Index/Indexes):
// each view implements SpatialIndex.Do by executing the request on its base
// index, translating base-local IDs to the dataset's stable global IDs,
// dropping tombstoned hits, merging in the delta overlay's hits, and emitting
// the union in the canonical per-kind order — hit for hit identical to a
// from-scratch build of the epoch's live item set. QueryStats gain
// DeltaEntries and Tombstones, the two maintenance counters of the overlay.
//
// A Snapshot also carries its own Planner over the views, so routing cost
// history is per snapshot: an epoch with a heavy delta has genuinely
// different per-kind costs than a freshly compacted one, and the planner's
// inputs reflect exactly the epoch a session is pinned to.
//
// Snapshots are immutable and safe for concurrent readers. Pinning
// (Session.Open / Dataset.Acquire) and Release are refcounting for
// observability — Dataset.Stats reports how many sessions still read old
// epochs; memory itself is reclaimed by the garbage collector once the last
// reference drops.
type Snapshot struct {
	epoch int
	opts  DatasetOptions

	// baseItems is the base build's item set in ascending global-ID order;
	// base index local ID l corresponds to baseItems[l]. Shared read-only
	// across epochs until compaction.
	baseItems []rtree.Item
	// bases are the contender indexes over baseItems relabeled to dense
	// local IDs, aligned with opts.Contenders (nil when the base is empty).
	bases []SpatialIndex
	// delta holds items inserted or updated since the base build, ascending
	// global ID.
	delta []rtree.Item
	// tombs marks base item IDs dead in this epoch.
	tombs map[int32]struct{}
	// baseTombs counts the tombstones that actually name base items — the
	// only ones that can surface as dead base hits, and therefore the only
	// slack a kNN base over-fetch can ever need. (Commit only tombstones
	// live base items today, so this equals len(tombs); counting it per
	// snapshot keeps the over-fetch bound correct if that ever changes.)
	baseTombs int

	live   int
	bounds geom.AABB

	// layout is the epoch's item-page layout (global IDs in base order, dead
	// entries patched out copy-on-write, delta items on appended pages) —
	// what a disk-backed implementation would persist. nBasePages is the
	// fixed base prefix; cow accounts how much of the previous epoch's
	// layout this one reused.
	layout     *pager.Store
	nBasePages int
	cow        pager.CowStats

	views   []SpatialIndex
	planner *Planner

	pins atomic.Int32
}

// newSnapshot wires views and the per-snapshot planner. baseItems and delta
// must be in ascending global-ID order.
func newSnapshot(epoch int, opts DatasetOptions, baseItems []rtree.Item,
	bases []SpatialIndex, delta []rtree.Item, tombs map[int32]struct{},
	layout *pager.Store, nBasePages int, cow pager.CowStats) *Snapshot {

	if tombs == nil {
		tombs = map[int32]struct{}{}
	}
	sn := &Snapshot{
		epoch: epoch, opts: opts,
		baseItems: baseItems, bases: bases, delta: delta, tombs: tombs,
		live:   len(baseItems) - len(tombs) + len(delta),
		layout: layout, nBasePages: nBasePages, cow: cow,
	}
	for id := range tombs {
		if _, ok := sn.baseLocal(id); ok {
			sn.baseTombs++
		}
	}
	// Bounds: union of the base build's bounds and the delta boxes. Deletes
	// do not shrink it (exact re-aggregation would cost O(n) per commit);
	// compaction restores the tight bounds.
	sn.bounds = geom.EmptyAABB()
	if len(bases) > 0 {
		sn.bounds = bases[0].Bounds()
	}
	for _, it := range delta {
		sn.bounds = sn.bounds.Union(it.Box)
	}
	sn.views = make([]SpatialIndex, len(opts.Contenders))
	for i, name := range opts.Contenders {
		var base SpatialIndex
		if bases != nil {
			base = bases[i]
		}
		sn.views[i] = &snapView{name: name, snap: sn, base: base}
	}
	sn.planner = NewPlanner(sn.views...)
	// The per-snapshot planner serves exactly this epoch: keying its plan
	// cache by the epoch makes a cached decision unable to survive a Commit
	// or Compact (each builds a new snapshot, planner and epoch), even when
	// the live item set is identical.
	sn.planner.SetEpoch(int64(epoch))
	return sn
}

// Epoch returns the snapshot's commit sequence number (0 for the initial
// build; every Commit and Compact increments it).
func (sn *Snapshot) Epoch() int { return sn.epoch }

// NumItems returns the number of live items in this epoch.
func (sn *Snapshot) NumItems() int { return sn.live }

// Bounds returns the epoch's (possibly conservative — see Compact) MBR.
func (sn *Snapshot) Bounds() geom.AABB { return sn.bounds }

// DeltaEntries returns the size of the delta overlay.
func (sn *Snapshot) DeltaEntries() int { return len(sn.delta) }

// TombstoneCount returns the number of tombstoned base items.
func (sn *Snapshot) TombstoneCount() int { return len(sn.tombs) }

// Indexes returns the snapshot's contender views in configuration order.
// Every view serves the same live item set with identical canonical-order
// output; they differ only in cost profile.
func (sn *Snapshot) Indexes() []SpatialIndex { return sn.views }

// Index returns the named contender view, or nil.
func (sn *Snapshot) Index(name string) SpatialIndex {
	for _, v := range sn.views {
		if v.Name() == name {
			return v
		}
	}
	return nil
}

// Planner returns the snapshot's own planner over its views — the
// per-snapshot cost inputs: history observed on this epoch never leaks into
// another epoch's routing.
func (sn *Snapshot) Planner() *Planner { return sn.planner }

// Store returns the epoch's item-page layout (base pages, dead entries
// patched out, delta pages appended).
func (sn *Snapshot) Store() *pager.Store { return sn.layout }

// CowStats reports how much of the previous epoch's layout this epoch's
// commit reused (zero for the initial build and for compactions, which lay
// out fresh pages).
func (sn *Snapshot) CowStats() pager.CowStats { return sn.cow }

// Pins returns the number of outstanding acquisitions (pinned sessions).
func (sn *Snapshot) Pins() int { return int(sn.pins.Load()) }

// Release drops one acquisition (Dataset.Acquire or a pinned Session's
// Close). Releasing more than acquired panics — it indicates a double Close.
func (sn *Snapshot) Release() {
	if sn.pins.Add(-1) < 0 {
		panic("engine: Snapshot.Release without matching acquire")
	}
}

func (sn *Snapshot) acquire() { sn.pins.Add(1) }

// ItemBox returns the live box of global item id, and whether the item is
// live in this epoch.
func (sn *Snapshot) ItemBox(id int32) (geom.AABB, bool) {
	if i, ok := sn.deltaIndex(id); ok {
		return sn.delta[i].Box, true
	}
	if l, ok := sn.baseLocal(id); ok {
		if _, dead := sn.tombs[id]; !dead {
			return sn.baseItems[l].Box, true
		}
	}
	return geom.AABB{}, false
}

// baseLocal locates global id in the base item set (ascending by ID).
func (sn *Snapshot) baseLocal(id int32) (int, bool) {
	l := sort.Search(len(sn.baseItems), func(i int) bool { return sn.baseItems[i].ID >= id })
	if l < len(sn.baseItems) && sn.baseItems[l].ID == id {
		return l, true
	}
	return 0, false
}

// deltaIndex locates global id in the delta overlay (ascending by ID).
func (sn *Snapshot) deltaIndex(id int32) (int, bool) {
	i := sort.Search(len(sn.delta), func(i int) bool { return sn.delta[i].ID >= id })
	if i < len(sn.delta) && sn.delta[i].ID == id {
		return i, true
	}
	return 0, false
}

// deltaScan brute-forces the delta overlay for one request, returning hits in
// ascending global-ID order (KNN hits carry Dist2 and are returned unordered
// as candidates). It accounts every overlay entry in st.DeltaEntries.
func (sn *Snapshot) deltaScan(req Request, st *QueryStats) []Hit {
	var out []Hit
	r2 := req.Radius * req.Radius
	for _, it := range sn.delta {
		st.DeltaEntries++
		switch req.Kind {
		case Range:
			if it.Box.Intersects(req.Box) {
				out = append(out, Hit{ID: it.ID})
			}
		case Point:
			if it.Box.Contains(req.Center) {
				out = append(out, Hit{ID: it.ID})
			}
		case WithinDistance:
			if d2 := it.Box.Dist2Point(req.Center); d2 <= r2 {
				out = append(out, Hit{ID: it.ID, Dist2: d2})
			}
		case KNN:
			out = append(out, Hit{ID: it.ID, Dist2: it.Box.Dist2Point(req.Center)})
		}
	}
	return out
}

// snapView is one contender's face of a snapshot: the base index plus the
// overlay merge. It implements the full SpatialIndex surface so sessions and
// planners treat a snapshot exactly like a raw contender.
type snapView struct {
	name string
	snap *Snapshot
	base SpatialIndex // nil when the epoch's base item set is empty
}

// Name implements SpatialIndex; views keep their contender's name, so
// per-kind routing decisions read the same as on raw indexes.
func (v *snapView) Name() string { return v.name }

// probeBase implements the planner's baseProber hook: calibration probes
// executed through a view must detach the *base* index's attached
// PageSource (the view itself is not Paged, but its page reads are the
// base's), so probing never perturbs a pool the base shares with other
// surfaces.
func (v *snapView) probeBase() SpatialIndex { return v.base }

// Build implements SpatialIndex. Snapshots are immutable: mutations go
// through Dataset.Begin/Commit, rebuilds through Dataset.Compact.
func (v *snapView) Build([]rtree.Item) error {
	return fmt.Errorf("engine: snapshot views are immutable; mutate through the Dataset (Begin/Commit, Compact)")
}

// Bounds implements SpatialIndex.
func (v *snapView) Bounds() geom.AABB { return v.snap.bounds }

// NumItems implements SpatialIndex: the live item count of the epoch. Unlike
// raw indexes, view IDs are the dataset's stable global IDs and need not be
// dense — deletes leave gaps, inserts allocate past the initial range.
func (v *snapView) NumItems() int { return v.snap.live }

// Do implements SpatialIndex: base execution, tombstone filtering, delta
// merge, canonical order — identical output to a from-scratch build of the
// epoch's live items. The merge is the lazy streaming pipeline (iterate):
// base and delta are consumed as ascending-ID streams with the tombstone
// filter inline, never buffered whole. Only the merged output is buffered,
// to honor Do's all-or-nothing emission contract under cancellation.
func (v *snapView) Do(ctx context.Context, req Request, visit func(Hit)) (QueryStats, error) {
	if err := req.Validate(); err != nil {
		return QueryStats{}, err
	}
	if visit == nil {
		visit = func(Hit) {}
	}
	if err := ctxErr(ctx); err != nil {
		return QueryStats{}, err
	}
	if req.paginated() {
		return doPaginated(ctx, v, req, visit)
	}
	it, err := v.iterate(ctx, req, nil)
	if err != nil {
		return QueryStats{}, err
	}
	defer it.Close()
	var hits []Hit
	for {
		h, ok := it.Next()
		if !ok {
			break
		}
		hits = append(hits, h)
	}
	if err := it.Err(); err != nil {
		return QueryStats{}, err
	}
	for _, h := range hits {
		visit(h)
	}
	return it.Stats(), nil
}

// iterate implements the internal streaming capability: the k-way (here
// 2-way) base∪delta merge with the tombstone filter inline. The base
// contender streams lazily in its local-ID order, which translation
// preserves (baseItems ascend by global ID); the delta overlay streams
// straight off its sorted slice. Base and delta IDs are disjoint — an
// updated item is tombstoned in the base and lives in the delta — so the
// merge needs no deduplication. The resume position is translated to the
// base's local ID space so its zone maps prune pages below the cursor.
func (v *snapView) iterate(ctx context.Context, req Request, after *Hit) (HitIterator, error) {
	if req.Kind == KNN {
		return knnEager(func(visit func(Hit)) (QueryStats, error) {
			return v.doKNN(ctx, req, visit)
		}, KNN, after)
	}
	sn := v.snap
	var its []HitIterator
	if v.base != nil {
		var baseAfter *Hit
		if after != nil {
			// The largest base-local ID whose global ID is <= after.ID.
			ub := sort.Search(len(sn.baseItems), func(j int) bool {
				return sn.baseItems[j].ID > after.ID
			})
			if ub > 0 {
				baseAfter = &Hit{ID: int32(ub - 1)}
			}
		}
		bs, err := rawStream(ctx, v.base, req, baseAfter)
		if err != nil {
			return nil, err
		}
		extra := &QueryStats{}
		its = append(its, &mapFilterIter{it: bs, extra: extra, fn: func(h Hit) (Hit, bool) {
			g := sn.baseItems[h.ID].ID
			if _, dead := sn.tombs[g]; dead {
				extra.Tombstones++
				return Hit{}, false
			}
			h.ID = g
			return h, true
		}})
	}
	its = append(its, newDeltaIter(sn, req, after))
	return newKWayMerge(its, QueryStats{}), nil
}

// deltaIter streams the delta overlay's hits for one request in ascending
// global-ID order, testing entries lazily as the merge pulls them.
// DeltaEntries counts the entries this execution tested: a full drain tests
// the whole overlay (the eager scan's accounting); a cursor resume starts
// past the skipped prefix without re-testing it.
type deltaIter struct {
	sn  *Snapshot
	req Request
	r2  float64
	i   int
	st  QueryStats
}

func newDeltaIter(sn *Snapshot, req Request, after *Hit) *deltaIter {
	d := &deltaIter{sn: sn, req: req, r2: req.Radius * req.Radius}
	if after != nil {
		d.i = sort.Search(len(sn.delta), func(j int) bool { return sn.delta[j].ID > after.ID })
	}
	return d
}

func (d *deltaIter) Next() (Hit, bool) {
	for d.i < len(d.sn.delta) {
		it := d.sn.delta[d.i]
		d.i++
		d.st.DeltaEntries++
		switch d.req.Kind {
		case Range:
			if it.Box.Intersects(d.req.Box) {
				return Hit{ID: it.ID}, true
			}
		case Point:
			if it.Box.Contains(d.req.Center) {
				return Hit{ID: it.ID}, true
			}
		case WithinDistance:
			if d2 := it.Box.Dist2Point(d.req.Center); d2 <= d.r2 {
				return Hit{ID: it.ID, Dist2: d2}, true
			}
		}
	}
	return Hit{}, false
}

func (d *deltaIter) Err() error        { return nil }
func (d *deltaIter) Stats() QueryStats { return d.st }
func (d *deltaIter) Close()            {}

// doKNN merges the base's live top-k with the delta candidates. The base is
// over-fetched adaptively: dead hits can only come from tombstones naming
// base items, so the first probe asks for k plus that count capped at k (a
// tombstone beyond the k-th live hit cannot displace the live top-k), and
// the probe widens geometrically in the rare case the cap was too tight —
// the same widening idiom as the R-tree's tie resolution. The previous
// over-fetch of k + the raw global tombstone count scanned wildly too much
// at high churn. The stats record is the widest base probe executed.
func (v *snapView) doKNN(ctx context.Context, req Request, visit func(Hit)) (QueryStats, error) {
	sn := v.snap
	var st QueryStats
	var cands []Hit
	if v.base != nil {
		baseSize := v.base.NumItems()
		slack := sn.baseTombs
		if slack > req.K {
			slack = req.K
		}
		kk := req.K + slack
		if kk > baseSize || kk < req.K { // kk < req.K: overflow on an absurd K
			kk = baseSize
		}
		for {
			cands = cands[:0]
			st.Tombstones = 0
			bst, err := v.base.Do(ctx, Request{Kind: KNN, Center: req.Center, K: kk}, func(h Hit) {
				g := sn.baseItems[h.ID].ID
				if _, dead := sn.tombs[g]; dead {
					st.Tombstones++
					return
				}
				cands = append(cands, Hit{ID: g, Dist2: h.Dist2})
			})
			if err != nil {
				return QueryStats{}, err
			}
			bst.Tombstones = st.Tombstones
			st = bst
			// Enough live hits — the live top-k is provably contained (any
			// live item nearer than the k-th live candidate would itself be
			// among the kk nearest) — or the whole base was fetched.
			if len(cands) >= req.K || kk >= baseSize {
				break
			}
			kk *= 2
			if kk > baseSize || kk < 0 {
				kk = baseSize
			}
		}
	}
	cands = append(cands, sn.deltaScan(req, &st)...)
	hits := selectKNN(cands, req.K)
	st.Results = int64(len(hits))
	for _, h := range hits {
		visit(h)
	}
	return st, nil
}

// Query implements SpatialIndex. Unlike the raw indexes' native orders, a
// view's fixed order is the canonical ascending-ID order of Do.
//
// The legacy surface has no error channel, so only the documented
// invalid-box case maps to an empty QueryStats; any other failure from Do is
// a real execution error that must not be silently swallowed into
// "no results" — it panics instead. (With the background context used here
// that is unreachable today; the distinction guards future execution paths.)
//
// Deprecated: route new call sites through Session.Do with a Range request.
func (v *snapView) Query(q geom.AABB, visit func(int32)) QueryStats {
	st, err := v.Do(context.Background(), RangeRequest(q), func(h Hit) {
		if visit != nil {
			visit(h.ID)
		}
	})
	if err != nil {
		var reqErr *RequestError
		if errors.As(err, &reqErr) {
			return QueryStats{} // invalid box: the legacy surface reports empty
		}
		panic(fmt.Sprintf("engine: snapshot view %s: legacy Query cannot report execution error: %v",
			v.name, err))
	}
	return st
}

// BatchQuery implements SpatialIndex via the shared deterministic executor.
//
// Deprecated: route new call sites through Session.DoBatch.
func (v *snapView) BatchQuery(qs []geom.AABB, workers int, visit func(int, int32)) []QueryStats {
	return batchQuery(workers, qs, func(q geom.AABB, emit func(int32)) QueryStats {
		return v.Query(q, emit)
	}, visit)
}
