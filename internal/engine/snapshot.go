package engine

import (
	"context"
	"fmt"
	"sort"
	"sync/atomic"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// Snapshot is one immutable epoch of a Dataset: a consistent view of the item
// set that readers can pin (Session.Open with WithDataset) while later
// commits land. Structurally it is a delta overlay over a base:
//
//	base   the epoch's contender indexes (flat/rtree/grid/sharded — whichever
//	       the Dataset is configured with), built once over the base item set
//	       and shared read-only by every epoch until a compaction rebuilds
//	       them;
//	delta  a small memtable-style overlay of items inserted or updated since
//	       that build, sorted by ID and scanned brute-force (it is bounded by
//	       the compaction trigger);
//	tombs  the IDs of base items deleted or updated since the build — base
//	       hits matching a tombstone are filtered out at query time.
//
// Queries run through the snapshot's per-contender views (Index/Indexes):
// each view implements SpatialIndex.Do by executing the request on its base
// index, translating base-local IDs to the dataset's stable global IDs,
// dropping tombstoned hits, merging in the delta overlay's hits, and emitting
// the union in the canonical per-kind order — hit for hit identical to a
// from-scratch build of the epoch's live item set. QueryStats gain
// DeltaEntries and Tombstones, the two maintenance counters of the overlay.
//
// A Snapshot also carries its own Planner over the views, so routing cost
// history is per snapshot: an epoch with a heavy delta has genuinely
// different per-kind costs than a freshly compacted one, and the planner's
// inputs reflect exactly the epoch a session is pinned to.
//
// Snapshots are immutable and safe for concurrent readers. Pinning
// (Session.Open / Dataset.Acquire) and Release are refcounting for
// observability — Dataset.Stats reports how many sessions still read old
// epochs; memory itself is reclaimed by the garbage collector once the last
// reference drops.
type Snapshot struct {
	epoch int
	opts  DatasetOptions

	// baseItems is the base build's item set in ascending global-ID order;
	// base index local ID l corresponds to baseItems[l]. Shared read-only
	// across epochs until compaction.
	baseItems []rtree.Item
	// bases are the contender indexes over baseItems relabeled to dense
	// local IDs, aligned with opts.Contenders (nil when the base is empty).
	bases []SpatialIndex
	// delta holds items inserted or updated since the base build, ascending
	// global ID.
	delta []rtree.Item
	// tombs marks base item IDs dead in this epoch.
	tombs map[int32]struct{}

	live   int
	bounds geom.AABB

	// layout is the epoch's item-page layout (global IDs in base order, dead
	// entries patched out copy-on-write, delta items on appended pages) —
	// what a disk-backed implementation would persist. nBasePages is the
	// fixed base prefix; cow accounts how much of the previous epoch's
	// layout this one reused.
	layout     *pager.Store
	nBasePages int
	cow        pager.CowStats

	views   []SpatialIndex
	planner *Planner

	pins atomic.Int32
}

// newSnapshot wires views and the per-snapshot planner. baseItems and delta
// must be in ascending global-ID order.
func newSnapshot(epoch int, opts DatasetOptions, baseItems []rtree.Item,
	bases []SpatialIndex, delta []rtree.Item, tombs map[int32]struct{},
	layout *pager.Store, nBasePages int, cow pager.CowStats) *Snapshot {

	if tombs == nil {
		tombs = map[int32]struct{}{}
	}
	sn := &Snapshot{
		epoch: epoch, opts: opts,
		baseItems: baseItems, bases: bases, delta: delta, tombs: tombs,
		live:   len(baseItems) - len(tombs) + len(delta),
		layout: layout, nBasePages: nBasePages, cow: cow,
	}
	// Bounds: union of the base build's bounds and the delta boxes. Deletes
	// do not shrink it (exact re-aggregation would cost O(n) per commit);
	// compaction restores the tight bounds.
	sn.bounds = geom.EmptyAABB()
	if len(bases) > 0 {
		sn.bounds = bases[0].Bounds()
	}
	for _, it := range delta {
		sn.bounds = sn.bounds.Union(it.Box)
	}
	sn.views = make([]SpatialIndex, len(opts.Contenders))
	for i, name := range opts.Contenders {
		var base SpatialIndex
		if bases != nil {
			base = bases[i]
		}
		sn.views[i] = &snapView{name: name, snap: sn, base: base}
	}
	sn.planner = NewPlanner(sn.views...)
	return sn
}

// Epoch returns the snapshot's commit sequence number (0 for the initial
// build; every Commit and Compact increments it).
func (sn *Snapshot) Epoch() int { return sn.epoch }

// NumItems returns the number of live items in this epoch.
func (sn *Snapshot) NumItems() int { return sn.live }

// Bounds returns the epoch's (possibly conservative — see Compact) MBR.
func (sn *Snapshot) Bounds() geom.AABB { return sn.bounds }

// DeltaEntries returns the size of the delta overlay.
func (sn *Snapshot) DeltaEntries() int { return len(sn.delta) }

// TombstoneCount returns the number of tombstoned base items.
func (sn *Snapshot) TombstoneCount() int { return len(sn.tombs) }

// Indexes returns the snapshot's contender views in configuration order.
// Every view serves the same live item set with identical canonical-order
// output; they differ only in cost profile.
func (sn *Snapshot) Indexes() []SpatialIndex { return sn.views }

// Index returns the named contender view, or nil.
func (sn *Snapshot) Index(name string) SpatialIndex {
	for _, v := range sn.views {
		if v.Name() == name {
			return v
		}
	}
	return nil
}

// Planner returns the snapshot's own planner over its views — the
// per-snapshot cost inputs: history observed on this epoch never leaks into
// another epoch's routing.
func (sn *Snapshot) Planner() *Planner { return sn.planner }

// Store returns the epoch's item-page layout (base pages, dead entries
// patched out, delta pages appended).
func (sn *Snapshot) Store() *pager.Store { return sn.layout }

// CowStats reports how much of the previous epoch's layout this epoch's
// commit reused (zero for the initial build and for compactions, which lay
// out fresh pages).
func (sn *Snapshot) CowStats() pager.CowStats { return sn.cow }

// Pins returns the number of outstanding acquisitions (pinned sessions).
func (sn *Snapshot) Pins() int { return int(sn.pins.Load()) }

// Release drops one acquisition (Dataset.Acquire or a pinned Session's
// Close). Releasing more than acquired panics — it indicates a double Close.
func (sn *Snapshot) Release() {
	if sn.pins.Add(-1) < 0 {
		panic("engine: Snapshot.Release without matching acquire")
	}
}

func (sn *Snapshot) acquire() { sn.pins.Add(1) }

// ItemBox returns the live box of global item id, and whether the item is
// live in this epoch.
func (sn *Snapshot) ItemBox(id int32) (geom.AABB, bool) {
	if i, ok := sn.deltaIndex(id); ok {
		return sn.delta[i].Box, true
	}
	if l, ok := sn.baseLocal(id); ok {
		if _, dead := sn.tombs[id]; !dead {
			return sn.baseItems[l].Box, true
		}
	}
	return geom.AABB{}, false
}

// baseLocal locates global id in the base item set (ascending by ID).
func (sn *Snapshot) baseLocal(id int32) (int, bool) {
	l := sort.Search(len(sn.baseItems), func(i int) bool { return sn.baseItems[i].ID >= id })
	if l < len(sn.baseItems) && sn.baseItems[l].ID == id {
		return l, true
	}
	return 0, false
}

// deltaIndex locates global id in the delta overlay (ascending by ID).
func (sn *Snapshot) deltaIndex(id int32) (int, bool) {
	i := sort.Search(len(sn.delta), func(i int) bool { return sn.delta[i].ID >= id })
	if i < len(sn.delta) && sn.delta[i].ID == id {
		return i, true
	}
	return 0, false
}

// deltaScan brute-forces the delta overlay for one request, returning hits in
// ascending global-ID order (KNN hits carry Dist2 and are returned unordered
// as candidates). It accounts every overlay entry in st.DeltaEntries.
func (sn *Snapshot) deltaScan(req Request, st *QueryStats) []Hit {
	var out []Hit
	r2 := req.Radius * req.Radius
	for _, it := range sn.delta {
		st.DeltaEntries++
		switch req.Kind {
		case Range:
			if it.Box.Intersects(req.Box) {
				out = append(out, Hit{ID: it.ID})
			}
		case Point:
			if it.Box.Contains(req.Center) {
				out = append(out, Hit{ID: it.ID})
			}
		case WithinDistance:
			if d2 := it.Box.Dist2Point(req.Center); d2 <= r2 {
				out = append(out, Hit{ID: it.ID, Dist2: d2})
			}
		case KNN:
			out = append(out, Hit{ID: it.ID, Dist2: it.Box.Dist2Point(req.Center)})
		}
	}
	return out
}

// snapView is one contender's face of a snapshot: the base index plus the
// overlay merge. It implements the full SpatialIndex surface so sessions and
// planners treat a snapshot exactly like a raw contender.
type snapView struct {
	name string
	snap *Snapshot
	base SpatialIndex // nil when the epoch's base item set is empty
}

// Name implements SpatialIndex; views keep their contender's name, so
// per-kind routing decisions read the same as on raw indexes.
func (v *snapView) Name() string { return v.name }

// probeBase implements the planner's baseProber hook: calibration probes
// executed through a view must detach the *base* index's attached
// PageSource (the view itself is not Paged, but its page reads are the
// base's), so probing never perturbs a pool the base shares with other
// surfaces.
func (v *snapView) probeBase() SpatialIndex { return v.base }

// Build implements SpatialIndex. Snapshots are immutable: mutations go
// through Dataset.Begin/Commit, rebuilds through Dataset.Compact.
func (v *snapView) Build([]rtree.Item) error {
	return fmt.Errorf("engine: snapshot views are immutable; mutate through the Dataset (Begin/Commit, Compact)")
}

// Bounds implements SpatialIndex.
func (v *snapView) Bounds() geom.AABB { return v.snap.bounds }

// NumItems implements SpatialIndex: the live item count of the epoch. Unlike
// raw indexes, view IDs are the dataset's stable global IDs and need not be
// dense — deletes leave gaps, inserts allocate past the initial range.
func (v *snapView) NumItems() int { return v.snap.live }

// Do implements SpatialIndex: base execution, tombstone filtering, delta
// merge, canonical order — identical output to a from-scratch build of the
// epoch's live items.
func (v *snapView) Do(ctx context.Context, req Request, visit func(Hit)) (QueryStats, error) {
	if err := req.Validate(); err != nil {
		return QueryStats{}, err
	}
	if visit == nil {
		visit = func(Hit) {}
	}
	if err := ctxErr(ctx); err != nil {
		return QueryStats{}, err
	}
	if req.Kind == KNN {
		return v.doKNN(ctx, req, visit)
	}

	sn := v.snap
	var st QueryStats
	var baseHits []Hit
	if v.base != nil {
		bst, err := v.base.Do(ctx, req, func(h Hit) { baseHits = append(baseHits, h) })
		if err != nil {
			return QueryStats{}, err
		}
		st = bst
	}
	// Translate base-local IDs to globals (baseItems ascend by global ID, so
	// ascending local order is preserved) and drop tombstoned hits.
	live := baseHits[:0]
	for _, h := range baseHits {
		g := sn.baseItems[h.ID].ID
		if _, dead := sn.tombs[g]; dead {
			st.Tombstones++
			continue
		}
		h.ID = g
		live = append(live, h)
	}
	deltaHits := sn.deltaScan(req, &st)

	// Merge the two ascending-ID streams. Base and delta IDs are disjoint:
	// an updated item is tombstoned in the base and lives in the delta.
	i, j := 0, 0
	st.Results = int64(len(live) + len(deltaHits))
	for i < len(live) && j < len(deltaHits) {
		if live[i].ID < deltaHits[j].ID {
			visit(live[i])
			i++
		} else {
			visit(deltaHits[j])
			j++
		}
	}
	for ; i < len(live); i++ {
		visit(live[i])
	}
	for ; j < len(deltaHits); j++ {
		visit(deltaHits[j])
	}
	return st, nil
}

// doKNN merges the base top-(k+T) with the delta candidates: at most T base
// hits can be tombstoned, so over-fetching by the tombstone count T
// guarantees the base's live top-k is contained in the candidate set; the
// canonical top-k of the union is then selected by the shared accumulator.
func (v *snapView) doKNN(ctx context.Context, req Request, visit func(Hit)) (QueryStats, error) {
	sn := v.snap
	var st QueryStats
	var cands []Hit
	if v.base != nil {
		kk := req.K + len(sn.tombs)
		if kk < req.K { // overflow on an absurd K
			kk = req.K
		}
		bst, err := v.base.Do(ctx, Request{Kind: KNN, Center: req.Center, K: kk}, func(h Hit) {
			g := sn.baseItems[h.ID].ID
			if _, dead := sn.tombs[g]; dead {
				st.Tombstones++
				return
			}
			cands = append(cands, Hit{ID: g, Dist2: h.Dist2})
		})
		if err != nil {
			return QueryStats{}, err
		}
		bst.Tombstones = st.Tombstones
		st = bst
	}
	cands = append(cands, sn.deltaScan(req, &st)...)
	hits := selectKNN(cands, req.K)
	st.Results = int64(len(hits))
	for _, h := range hits {
		visit(h)
	}
	return st, nil
}

// Query implements SpatialIndex. Unlike the raw indexes' native orders, a
// view's fixed order is the canonical ascending-ID order of Do.
//
// Deprecated: route new call sites through Session.Do with a Range request.
func (v *snapView) Query(q geom.AABB, visit func(int32)) QueryStats {
	st, err := v.Do(context.Background(), RangeRequest(q), func(h Hit) {
		if visit != nil {
			visit(h.ID)
		}
	})
	if err != nil {
		return QueryStats{} // invalid box: the legacy surface reports empty
	}
	return st
}

// BatchQuery implements SpatialIndex via the shared deterministic executor.
//
// Deprecated: route new call sites through Session.DoBatch.
func (v *snapView) BatchQuery(qs []geom.AABB, workers int, visit func(int, int32)) []QueryStats {
	return batchQuery(workers, qs, func(q geom.AABB, emit func(int32)) QueryStats {
		return v.Query(q, emit)
	}, visit)
}
