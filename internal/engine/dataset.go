package engine

import (
	"errors"
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/parallel"
	"neurospatial/internal/rtree"
)

// DatasetOptions configures a mutable Dataset.
type DatasetOptions struct {
	// Contenders names the index kinds every snapshot builds and serves
	// ("flat", "rtree", "grid", "sharded"); empty selects just "flat".
	// Duplicate names are rejected — the per-snapshot planner routes by name.
	Contenders []string
	// Flat configures the FLAT contender (and per-shard FLATs).
	Flat flat.Options
	// RTreeFanout configures the R-tree contender; <= 0 selects the default.
	RTreeFanout int
	// Grid configures the grid contender.
	Grid GridOptions
	// Shards is the shard count of the sharded contender; <= 0 selects 4.
	Shards int
	// ShardIndex names the sharded contender's per-shard sub-index; empty
	// selects "flat".
	ShardIndex string
	// PageSize is the snapshot layout's page capacity; <= 0 selects the FLAT
	// page size (so layout page counts are comparable to FLAT's).
	PageSize int
	// CompactRatio triggers an automatic compaction after a commit when
	// (delta + tombstones) exceeds this fraction of the live item count;
	// <= 0 selects 0.25.
	CompactRatio float64
	// CompactMin is the minimum pending (delta + tombstones) count before
	// auto-compaction is considered; <= 0 selects 64. Keeping it above the
	// batch size avoids compacting after every small commit.
	CompactMin int
	// DisableAutoCompact turns the size/ratio trigger off; Compact can still
	// be called explicitly.
	DisableAutoCompact bool
	// Workers is the contender-rebuild pool size used by compaction
	// (repository-wide semantics; 0 selects one worker per CPU).
	Workers int

	// Bases, when non-nil, provides pre-built contender wrappers for the
	// initial snapshot, aligned 1:1 with Contenders and built over exactly
	// the initial item set (dense IDs). NewModel uses it to share the
	// model's contender instances instead of building them twice.
	// Compactions always build fresh instances from the options above.
	Bases []SpatialIndex
}

func (o DatasetOptions) sanitize() DatasetOptions {
	if len(o.Contenders) == 0 {
		o.Contenders = []string{"flat"}
	}
	if o.Flat.PageSize <= 0 {
		o.Flat = flat.DefaultOptions()
	}
	if o.PageSize <= 0 {
		o.PageSize = o.Flat.PageSize
	}
	if o.CompactRatio <= 0 {
		o.CompactRatio = 0.25
	}
	if o.CompactMin <= 0 {
		o.CompactMin = 64
	}
	return o
}

// newIndex constructs one fresh contender of the named kind.
func (o DatasetOptions) newIndex(name string) (SpatialIndex, error) {
	switch name {
	case "flat":
		return NewFlat(o.Flat), nil
	case "rtree":
		return NewRTree(o.RTreeFanout), nil
	case "grid":
		return NewGrid(o.Grid), nil
	case "sharded":
		return NewSharded(ShardedOptions{
			Shards: o.Shards, Index: o.ShardIndex,
			Flat: o.Flat, RTreeFanout: o.RTreeFanout, Grid: o.Grid,
		}), nil
	}
	return nil, fmt.Errorf("engine: unknown dataset contender %q (have flat, rtree, grid, sharded)", name)
}

// DatasetStats is a point-in-time summary of a Dataset's state and its
// maintenance history.
type DatasetStats struct {
	// Epoch is the current snapshot's sequence number.
	Epoch int
	// Live is the current live item count.
	Live int
	// DeltaEntries and Tombstones are the current overlay sizes.
	DeltaEntries, Tombstones int
	// Pinned counts sessions still pinned to the current snapshot.
	Pinned int
	// Commits, Compactions and AutoCompactions count maintenance events;
	// automatic compactions are included in Compactions.
	Commits, Compactions, AutoCompactions int64
	// Inserts, Deletes and Updates count applied operations.
	Inserts, Deletes, Updates int64
	// LayoutPages is the current snapshot layout's page count.
	LayoutPages int
	// Cow is the cumulative copy-on-write accounting over all commits: how
	// many layout pages were shared versus patched/appended — the
	// incremental-maintenance win.
	Cow pager.CowStats
}

// Dataset is the engine's mutable ownership model: writers apply batched
// mutations (Begin / Insert / Delete / Update / Commit) that produce
// immutable Snapshot epochs, and readers pin an epoch (Session.Open with
// WithDataset) so every Do/DoBatch sees a consistent view while later
// commits land — the per-update maintenance trade of answering queries under
// updates: a commit never rebuilds an index, it re-derives the (bounded)
// overlay copy-on-write — O(overlay + batch) work plus O(touched pages) of
// layout remapping — and query latency stays flat because the overlay is
// bounded by the compaction trigger.
//
// Commit appends to the delta overlay and tombstone set copy-on-write; the
// base contender indexes are untouched ("unchanged on disk") until a
// size/ratio-triggered — or explicit — Compact folds the overlay down,
// rebuilding the bases over the live item set via the existing Build path on
// the parallel pool.
//
// All Dataset methods are safe for concurrent use; Commit is serialized
// internally, readers never block writers (they hold immutable snapshots).
// Item IDs are stable global IDs: the initial items keep theirs, Insert
// allocates fresh ones, and neither Compact nor Delete renumbers anything.
type Dataset struct {
	// writeMu serializes writers (Commit, Compact). Slow work — overlay
	// derivation, compaction's index rebuilds — happens under writeMu only,
	// so readers are never blocked by it.
	writeMu sync.Mutex //neurospatial:lock dataset.write
	// mu guards the published state (cur and the counters); it is held only
	// for pointer swaps and counter updates, never across builds — and in
	// particular never across file I/O (noio), so readers can't stall on a
	// slow disk.
	mu     sync.Mutex //neurospatial:lock dataset.state noio < dataset.write
	opts   DatasetOptions
	cur    *Snapshot
	nextID atomic.Int32

	commits, compactions, autoCompactions int64
	inserts, deletes, updates             int64
	cowTotal                              pager.CowStats

	// onCommit, when set, is called under writeMu after a batch validates
	// (and before the new epoch publishes) with the epoch the batch will
	// publish as and its raw ops. An error aborts the whole batch — the
	// durability layer uses this to refuse to publish an epoch whose WAL
	// record did not reach disk.
	onCommit func(epoch uint64, ops []txOp) error
}

// NewDataset builds the initial snapshot (epoch 0) over items, which must
// have dense IDs in [0, len(items)) — the same contract as SpatialIndex.Build.
func NewDataset(items []rtree.Item, opts DatasetOptions) (*Dataset, error) {
	opts = opts.sanitize()
	seen := make(map[string]bool, len(opts.Contenders))
	for _, name := range opts.Contenders {
		if seen[name] {
			return nil, fmt.Errorf("engine: duplicate dataset contender %q", name)
		}
		seen[name] = true
		if _, err := opts.newIndex(name); err != nil {
			return nil, err
		}
	}
	base := make([]rtree.Item, len(items))
	taken := make([]bool, len(items))
	for _, it := range items {
		if it.ID < 0 || int(it.ID) >= len(items) {
			return nil, fmt.Errorf("engine: dataset item ID %d not dense in [0,%d)", it.ID, len(items))
		}
		if taken[it.ID] {
			return nil, fmt.Errorf("engine: duplicate dataset item ID %d", it.ID)
		}
		taken[it.ID] = true
		base[it.ID] = it
	}
	if opts.Bases != nil {
		if len(opts.Bases) != len(opts.Contenders) {
			return nil, fmt.Errorf("engine: %d pre-built bases for %d contenders", len(opts.Bases), len(opts.Contenders))
		}
		for i, b := range opts.Bases {
			if b.Name() != opts.Contenders[i] {
				return nil, fmt.Errorf("engine: pre-built base %d is %q, want %q", i, b.Name(), opts.Contenders[i])
			}
			if b.NumItems() != len(items) {
				return nil, fmt.Errorf("engine: pre-built base %q holds %d items, want %d", b.Name(), b.NumItems(), len(items))
			}
		}
	}

	d := &Dataset{opts: opts}
	d.nextID.Store(int32(len(items)))

	bases := opts.Bases
	d.opts.Bases = nil // snapshots after epoch 0 never reuse them
	if bases == nil {
		var err error
		if bases, err = d.buildBases(base); err != nil {
			return nil, err
		}
	}
	layout := d.buildLayout(base)
	d.cur = newSnapshot(0, d.opts, base, bases, nil, nil, layout, layout.NumPages(), pager.CowStats{})
	return d, nil
}

// buildBases constructs and builds every configured contender over items
// (ascending global-ID order), relabeled to dense local IDs, on the parallel
// pool. Returns nil for an empty item set — every contender requires at
// least one item, and the overlay serves empty bases fine.
func (d *Dataset) buildBases(items []rtree.Item) ([]SpatialIndex, error) {
	if len(items) == 0 {
		return nil, nil
	}
	local := make([]rtree.Item, len(items))
	for l, it := range items {
		local[l] = rtree.Item{Box: it.Box, ID: int32(l)}
	}
	bases := make([]SpatialIndex, len(d.opts.Contenders))
	errs := make([]error, len(d.opts.Contenders))
	parallel.ForEach(d.opts.Workers, len(d.opts.Contenders), func(_, i int) {
		ix, err := d.opts.newIndex(d.opts.Contenders[i])
		if err == nil {
			err = ix.Build(local)
		}
		bases[i], errs[i] = ix, err
	})
	for i, err := range errs {
		if err != nil {
			return nil, fmt.Errorf("engine: building %s base: %w", d.opts.Contenders[i], err)
		}
	}
	return bases, nil
}

// buildLayout lays the items' global IDs onto fresh pages in base order.
func (d *Dataset) buildLayout(items []rtree.Item) *pager.Store {
	b, err := pager.NewBuilder(d.opts.PageSize)
	if err != nil { // unreachable: sanitize guarantees a positive page size
		panic(err)
	}
	for _, it := range items {
		b.Add(it.ID)
	}
	return b.Build()
}

// Current returns the current snapshot without pinning it.
func (d *Dataset) Current() *Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.cur
}

// Acquire pins and returns the current snapshot. The caller must Release it
// (Session.Open with WithDataset does both for you).
func (d *Dataset) Acquire() *Snapshot {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.cur.acquire()
	return d.cur
}

// Stats returns a point-in-time summary.
func (d *Dataset) Stats() DatasetStats {
	d.mu.Lock()
	defer d.mu.Unlock()
	return DatasetStats{
		Epoch:           d.cur.epoch,
		Live:            d.cur.live,
		DeltaEntries:    len(d.cur.delta),
		Tombstones:      len(d.cur.tombs),
		Pinned:          d.cur.Pins(),
		Commits:         d.commits,
		Compactions:     d.compactions,
		AutoCompactions: d.autoCompactions,
		Inserts:         d.inserts,
		Deletes:         d.deletes,
		Updates:         d.updates,
		LayoutPages:     d.cur.layout.NumPages(),
		Cow:             d.cowTotal,
	}
}

// opKind tags one buffered mutation.
type opKind uint8

const (
	opInsert opKind = iota
	opDelete
	opUpdate
)

// Tx is one batched mutation: buffer operations, then Commit applies them
// atomically (all or nothing) and publishes a new snapshot epoch. A Tx is for
// one goroutine; concurrent transactions may be open at once — their Commits
// serialize, and validation runs against the snapshot current at commit time
// (last committer wins on delete/delete conflicts: the second Commit fails).
type Tx struct {
	ds   *Dataset
	ops  []txOp
	done bool
}

type txOp struct {
	kind opKind
	id   int32
	box  geom.AABB
}

// Begin opens a mutation batch.
func (d *Dataset) Begin() *Tx { return &Tx{ds: d} }

// Insert buffers a new item and returns its allocated global ID. IDs are
// allocated immediately (so a batch can reference its own inserts) and are
// not reused if the transaction rolls back.
func (t *Tx) Insert(box geom.AABB) int32 {
	id := t.ds.nextID.Add(1) - 1
	t.ops = append(t.ops, txOp{kind: opInsert, id: id, box: box})
	return id
}

// Delete buffers the removal of item id.
func (t *Tx) Delete(id int32) {
	t.ops = append(t.ops, txOp{kind: opDelete, id: id})
}

// Update buffers a box change of item id.
func (t *Tx) Update(id int32, box geom.AABB) {
	t.ops = append(t.ops, txOp{kind: opUpdate, id: id, box: box})
}

// Len returns the number of buffered operations.
func (t *Tx) Len() int { return len(t.ops) }

// Rollback discards the batch. Allocated Insert IDs are not reused.
func (t *Tx) Rollback() { t.done = true }

// badBox rejects boxes no index can serve (NaN coordinates poison every
// comparison; Min > Max is the empty box). Degenerate (point) boxes are fine.
func badBox(b geom.AABB) error {
	if vecHasNaN(b.Min) || vecHasNaN(b.Max) {
		return errors.New("box has NaN coordinates")
	}
	if b.IsEmpty() {
		return errors.New("box is empty (Min > Max on some axis)")
	}
	return nil
}

// Commit validates and applies the batch against the current snapshot,
// publishing a new epoch. On any invalid operation (delete or update of an
// item that is not live, malformed box) the whole batch is rejected and the
// dataset is unchanged — a nil snapshot with a non-nil error. Commit may
// additionally run an automatic compaction (see DatasetOptions); if that
// compaction fails, the committed (uncompacted) snapshot is still published
// and returned alongside the error — a non-nil snapshot with a non-nil
// error means the batch IS applied and must not be retried; the overlay
// simply stays pending for the next compaction attempt.
func (t *Tx) Commit() (*Snapshot, error) {
	if t.done {
		return nil, errors.New("engine: Commit on a finished Tx")
	}
	t.done = true
	d := t.ds
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	prev := d.Current() // stable: only writers replace it, and we are the writer

	// Working copies of the overlay (copy-on-write: prev stays immutable).
	deltaM := make(map[int32]geom.AABB, len(prev.delta)+len(t.ops))
	for _, it := range prev.delta {
		deltaM[it.ID] = it.Box
	}
	tombs := make(map[int32]struct{}, len(prev.tombs)+len(t.ops))
	for id := range prev.tombs {
		tombs[id] = struct{}{}
	}
	newTombs := make(map[int32]struct{}) // this batch's base deletions, for the layout patch
	var nIns, nDel, nUpd int64

	liveInBase := func(id int32) bool {
		if _, ok := prev.baseLocal(id); !ok {
			return false
		}
		_, dead := tombs[id]
		return !dead
	}
	for i, op := range t.ops {
		switch op.kind {
		case opInsert:
			if err := badBox(op.box); err != nil {
				return nil, fmt.Errorf("engine: commit op %d: insert %d: %v", i, op.id, err)
			}
			deltaM[op.id] = op.box
			nIns++
		case opDelete:
			if _, ok := deltaM[op.id]; ok {
				delete(deltaM, op.id)
			} else if liveInBase(op.id) {
				tombs[op.id] = struct{}{}
				newTombs[op.id] = struct{}{}
			} else {
				return nil, fmt.Errorf("engine: commit op %d: delete of item %d, which is not live", i, op.id)
			}
			nDel++
		case opUpdate:
			if err := badBox(op.box); err != nil {
				return nil, fmt.Errorf("engine: commit op %d: update %d: %v", i, op.id, err)
			}
			if _, ok := deltaM[op.id]; ok {
				deltaM[op.id] = op.box
			} else if liveInBase(op.id) {
				tombs[op.id] = struct{}{}
				newTombs[op.id] = struct{}{}
				deltaM[op.id] = op.box
			} else {
				return nil, fmt.Errorf("engine: commit op %d: update of item %d, which is not live", i, op.id)
			}
			nUpd++
		}
	}

	delta := make([]rtree.Item, 0, len(deltaM))
	for id, box := range deltaM {
		delta = append(delta, rtree.Item{Box: box, ID: id})
	}
	sort.Slice(delta, func(a, b int) bool { return delta[a].ID < delta[b].ID })

	if d.onCommit != nil {
		if err := d.onCommit(uint64(prev.epoch)+1, t.ops); err != nil {
			return nil, fmt.Errorf("engine: commit aborted by durability hook: %w", err)
		}
	}

	layout, nBasePages, cow := d.remapLayout(prev, tombs, newTombs, delta)
	snap := newSnapshot(prev.epoch+1, d.opts, prev.baseItems, prev.bases, delta, tombs,
		layout, nBasePages, cow)
	d.mu.Lock()
	d.cur = snap
	d.commits++
	d.inserts += nIns
	d.deletes += nDel
	d.updates += nUpd
	d.cowTotal.Add(cow)
	d.mu.Unlock()

	if !d.opts.DisableAutoCompact {
		pending := len(delta) + len(tombs)
		if pending >= d.opts.CompactMin &&
			float64(pending) > d.opts.CompactRatio*float64(maxInt(snap.live, 1)) {
			compacted, err := d.compactUnderWrite()
			if err != nil {
				// The batch is committed and stays committed; only the fold
				// failed. Report both facts (see the contract above).
				return snap, fmt.Errorf("engine: batch committed (epoch %d), but auto-compaction failed: %w",
					snap.epoch, err)
			}
			d.mu.Lock()
			d.autoCompactions++
			d.mu.Unlock()
			return compacted, nil
		}
	}
	return snap, nil
}

// remapLayout derives the new epoch's item-page layout from the previous one
// copy-on-write: base pages stay shared unless a newly tombstoned base item
// sits on them (those are patched in place), the previous delta tail is
// dropped, and the new delta is appended in C-sized pages.
func (d *Dataset) remapLayout(prev *Snapshot, tombs, newTombs map[int32]struct{},
	delta []rtree.Item) (*pager.Store, int, pager.CowStats) {

	c := pager.NewCow(prev.layout)
	c.Truncate(prev.nBasePages)
	touched := make(map[pager.PageID]bool)
	for id := range newTombs {
		if l, ok := prev.baseLocal(id); ok {
			touched[pager.PageID(l/d.opts.PageSize)] = true
		}
	}
	pages := make([]pager.PageID, 0, len(touched))
	for p := range touched {
		pages = append(pages, p)
	}
	sort.Slice(pages, func(a, b int) bool { return pages[a] < pages[b] })
	for _, p := range pages {
		// Patch against the full tombstone set: earlier epochs' dead entries
		// are already gone from their (previously patched) pages.
		_ = c.Patch(p, func(id int32) bool { _, dead := tombs[id]; return !dead })
	}
	for lo := 0; lo < len(delta); lo += d.opts.PageSize {
		hi := lo + d.opts.PageSize
		if hi > len(delta) {
			hi = len(delta)
		}
		ids := make([]int32, 0, hi-lo)
		for _, it := range delta[lo:hi] {
			ids = append(ids, it.ID)
		}
		if _, err := c.Append(ids); err != nil { // unreachable: chunks fit the capacity
			panic(err)
		}
	}
	layout, cow := c.Build()
	return layout, prev.nBasePages, cow
}

// Compact folds the overlay into a new base: the live item set is
// re-collected, the contender indexes are rebuilt over it via their normal
// Build path on the parallel pool, the layout is laid out fresh, and a new
// epoch with an empty delta and tombstone set is published. Pinned readers
// keep their epochs, and the rebuild itself blocks only other writers —
// Acquire/Current/Stats (and therefore Session.Open) stay responsive
// throughout. A no-op (empty overlay) returns the current snapshot
// unchanged.
func (d *Dataset) Compact() (*Snapshot, error) {
	d.writeMu.Lock()
	defer d.writeMu.Unlock()
	return d.compactUnderWrite()
}

// compactUnderWrite requires writeMu (and not mu) to be held: the merge and
// index rebuilds read only the immutable previous snapshot, and the result
// is published under mu at the end.
func (d *Dataset) compactUnderWrite() (*Snapshot, error) {
	prev := d.Current()
	if len(prev.delta) == 0 && len(prev.tombs) == 0 {
		return prev, nil
	}
	// Merge live base items with the delta, ascending global ID (both inputs
	// are sorted, IDs disjoint).
	merged := make([]rtree.Item, 0, prev.live)
	i, j := 0, 0
	for i < len(prev.baseItems) || j < len(prev.delta) {
		if i < len(prev.baseItems) {
			if _, dead := prev.tombs[prev.baseItems[i].ID]; dead {
				i++
				continue
			}
		}
		switch {
		case i == len(prev.baseItems):
			merged = append(merged, prev.delta[j])
			j++
		case j == len(prev.delta):
			merged = append(merged, prev.baseItems[i])
			i++
		case prev.baseItems[i].ID < prev.delta[j].ID:
			merged = append(merged, prev.baseItems[i])
			i++
		default:
			merged = append(merged, prev.delta[j])
			j++
		}
	}
	bases, err := d.buildBases(merged)
	if err != nil {
		return nil, err
	}
	layout := d.buildLayout(merged)
	snap := newSnapshot(prev.epoch+1, d.opts, merged, bases, nil, nil,
		layout, layout.NumPages(), pager.CowStats{})
	d.mu.Lock()
	d.cur = snap
	d.compactions++
	d.mu.Unlock()
	return snap, nil
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}
