package engine

import (
	"context"
	"math"
	"slices"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
)

// This file holds the shared execution machinery of the Request surface:
// page-read-granular context cancellation, the canonical hit-ordering
// helpers, and the bound-tightening top-k accumulator every kNN
// implementation gathers through.

// cancelable reports whether ctx can ever be canceled; background and nil
// contexts skip the per-page check entirely.
func cancelable(ctx context.Context) bool { return ctx != nil && ctx.Done() != nil }

// ctxErr is ctx.Err() tolerating a nil context.
func ctxErr(ctx context.Context) error {
	if ctx == nil {
		return nil
	}
	return ctx.Err()
}

// canceledRead aborts an in-flight index traversal from inside a page read:
// the deep recursive query paths (FLAT's crawl, the R-tree descent) have no
// error channel, so ctxSource panics with this sentinel and catchCancel —
// always on the same goroutine, installed by the Do implementation — turns
// it back into the context's error.
type canceledRead struct{ err error }

// ctxSource wraps a PageSource with a cancellation check on every page read —
// the promised page-read granularity: a canceled batch stops at the next
// page, not the next query.
type ctxSource struct {
	ctx context.Context
	src pager.PageSource
}

// ReadPage implements pager.PageSource.
func (c *ctxSource) ReadPage(p pager.PageID) []int32 {
	if err := c.ctx.Err(); err != nil {
		panic(canceledRead{err})
	}
	return c.src.ReadPage(p)
}

// wrapCtxSource routes src through a per-page cancellation check when ctx is
// cancelable; otherwise src is returned unwrapped (no per-read overhead on
// background contexts).
func wrapCtxSource(ctx context.Context, src pager.PageSource) pager.PageSource {
	if !cancelable(ctx) {
		return src
	}
	return &ctxSource{ctx: ctx, src: src}
}

// catchCancel runs fn, converting a canceledRead panic from a ctxSource
// below it into the context's error. Any other panic propagates.
//
// Invariant (audited): a canceledRead panic is only recoverable on the
// goroutine that raised it, so every ctxSource read must happen under a
// catchCancel installed on the same goroutine. The engine upholds this in
// two ways: each Do implementation wraps its own traversal (rangeIDs in the
// flat/rtree/grid wrappers — the worker goroutine running a batch slot runs
// both the traversal and its catchCancel), and Session.DoBatch installs a
// second, defense-in-depth catchCancel around each slot's whole execution on
// the worker goroutine. The kNN scans and the lazy iterators use explicit
// ctxErr checks before each page read instead of the panic machinery —
// pull-based Next calls cannot sit under one catchCancel frame. No Do path
// spawns goroutines of its own (the sharded scatter is serial), so a panic
// never crosses a goroutine boundary.
func catchCancel(fn func()) (err error) {
	defer func() {
		if r := recover(); r != nil {
			c, ok := r.(canceledRead)
			if !ok {
				panic(r)
			}
			err = c.err
		}
	}()
	fn()
	return nil
}

// emitIDHits sorts ids ascending in place and emits them as zero-distance
// hits — the canonical order of the boolean kinds (Range, Point).
//
//neurospatial:hotpath
func emitIDHits(ids []int32, visit func(Hit)) {
	slices.Sort(ids)
	for _, id := range ids {
		visit(Hit{ID: id})
	}
}

// withinRefine sorts the candidate ids ascending, applies the exact
// Dist2Point sphere test, and emits the surviving hits with their distances —
// the shared refinement of every WithinDistance implementation. It returns
// the number of hits emitted and the number of exact tests performed.
//
//neurospatial:hotpath
func withinRefine(ids []int32, boxOf func(int32) geom.AABB, center geom.Vec,
	radius float64, visit func(Hit)) (results, tested int64) {

	slices.Sort(ids)
	r2 := radius * radius
	for _, id := range ids {
		tested++
		if d2 := boxOf(id).Dist2Point(center); d2 <= r2 {
			results++
			visit(Hit{ID: id, Dist2: d2})
		}
	}
	return results, tested
}

// hitWorse is the shared kNN total order: x is worse than y when it is
// farther, ties broken by larger ID. Every contender selects and emits by
// this order, which is what makes kNN results identical across indexes,
// shard counts and worker counts even with tied distances.
func hitWorse(x, y Hit) bool {
	if x.Dist2 != y.Dist2 {
		return x.Dist2 > y.Dist2
	}
	return x.ID > y.ID
}

// knnAcc maintains the k best (Dist2, ID) hits offered so far: a bounded
// max-heap whose root is the current worst kept hit. Bound() exposes the
// tightening pruning bound the best-first scans (and the sharded gather)
// compare page/cell/shard lower bounds against.
type knnAcc struct {
	k int
	h []Hit // max-heap by hitWorse; h[0] is the worst kept hit
}

// Full reports whether k hits are held.
func (a *knnAcc) Full() bool { return len(a.h) >= a.k }

// Bound returns the pruning bound: a candidate source whose lower distance
// bound exceeds it cannot contribute. +Inf until the accumulator is full.
func (a *knnAcc) Bound() float64 {
	if !a.Full() {
		return math.Inf(1)
	}
	return a.h[0].Dist2
}

// Offer considers one candidate.
//
//neurospatial:hotpath
func (a *knnAcc) Offer(h Hit) {
	if len(a.h) < a.k {
		a.h = append(a.h, h)
		a.up(len(a.h) - 1)
		return
	}
	if !hitWorse(a.h[0], h) {
		return
	}
	a.h[0] = h
	a.down(0)
}

func (a *knnAcc) up(i int) {
	for i > 0 {
		p := (i - 1) / 2
		if !hitWorse(a.h[i], a.h[p]) {
			return
		}
		a.h[i], a.h[p] = a.h[p], a.h[i]
		i = p
	}
}

func (a *knnAcc) down(i int) {
	for {
		l, r := 2*i+1, 2*i+2
		worst := i
		if l < len(a.h) && hitWorse(a.h[l], a.h[worst]) {
			worst = l
		}
		if r < len(a.h) && hitWorse(a.h[r], a.h[worst]) {
			worst = r
		}
		if worst == i {
			return
		}
		a.h[i], a.h[worst] = a.h[worst], a.h[i]
		i = worst
	}
}

// cmpHit orders hits canonically: ascending Dist2, ties by ascending ID
// (the slices.SortFunc form of hitWorse).
func cmpHit(x, y Hit) int {
	switch {
	case x.Dist2 < y.Dist2:
		return -1
	case x.Dist2 > y.Dist2:
		return 1
	case x.ID < y.ID:
		return -1
	case x.ID > y.ID:
		return 1
	}
	return 0
}

// cmpHitID orders hits by ascending ID alone — the canonical order of the
// boolean kinds, where every Dist2 is zero (Range, Point) or irrelevant to
// ordering (WithinDistance).
func cmpHitID(x, y Hit) int {
	switch {
	case x.ID < y.ID:
		return -1
	case x.ID > y.ID:
		return 1
	}
	return 0
}

// Hits returns the kept hits in canonical order (ascending Dist2, ties by
// ascending ID). The accumulator must not be offered to afterwards; when the
// accumulator is pooled, callers must copy the hits out (visit emits by
// value) before releasing it.
//
//neurospatial:hotpath
func (a *knnAcc) Hits() []Hit {
	slices.SortFunc(a.h, cmpHit)
	return a.h
}

// selectKNN is the one-shot form of the accumulator: the canonical top-k of
// an already-gathered candidate set. The returned slice is freshly owned by
// the caller (the accumulator behind it is pooled).
func selectKNN(cands []Hit, k int) []Hit {
	acc := getKNNAcc(k)
	defer putKNNAcc(acc)
	for _, c := range cands {
		acc.Offer(c)
	}
	out := make([]Hit, len(acc.Hits()))
	copy(out, acc.h)
	return out
}
