package engine_test

import (
	"context"
	"errors"
	"fmt"
	"math/rand"
	"testing"
	"time"

	"neurospatial/internal/engine"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// streamItems builds a deterministic item set for the pagination properties:
// boxes scattered in a 100³ cube, with every 16th item clustered on the
// query focus (50,50,50) so the Point kind returns a large result set too.
func streamItems(n int, seed int64) []rtree.Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]rtree.Item, n)
	for i := range items {
		var box geom.AABB
		if i%16 == 0 {
			c := geom.Vec{X: 49 + rng.Float64()*2, Y: 49 + rng.Float64()*2, Z: 49 + rng.Float64()*2}
			box = geom.BoxAround(c, 5)
		} else {
			c := geom.Vec{X: rng.Float64() * 100, Y: rng.Float64() * 100, Z: rng.Float64() * 100}
			box = geom.BoxAround(c, 0.2+rng.Float64()*0.8)
		}
		items[i] = rtree.Item{ID: int32(i), Box: box}
	}
	return items
}

// streamContenders builds every contender over the same items with small
// pages, so limits land mid-result.
func streamContenders(t *testing.T, items []rtree.Item) []engine.SpatialIndex {
	t.Helper()
	ixs := []engine.SpatialIndex{
		engine.NewFlat(flat.Options{PageSize: 8}),
		engine.NewRTree(8),
		engine.NewGrid(engine.GridOptions{PageSize: 8}),
		engine.NewSharded(engine.ShardedOptions{Shards: 4, Index: "flat",
			Flat: flat.Options{PageSize: 8}}),
	}
	for _, ix := range ixs {
		if err := ix.Build(items); err != nil {
			t.Fatalf("building %s: %v", ix.Name(), err)
		}
	}
	return ixs
}

func streamRequests() []engine.Request {
	center := geom.Vec{X: 50, Y: 50, Z: 50}
	return []engine.Request{
		engine.RangeRequest(geom.Box(geom.Vec{X: 10, Y: 10, Z: 10}, geom.Vec{X: 90, Y: 90, Z: 90})),
		engine.KNNRequest(center, 37),
		engine.PointRequest(center),
		engine.WithinDistanceRequest(center, 35),
	}
}

// walkCursor pages through req with the given limit until the cursor runs
// out, returning the concatenation.
func walkCursor(t *testing.T, sess *engine.Session, req engine.Request, limit, total int) []engine.Hit {
	t.Helper()
	var walked []engine.Hit
	r := req
	r.Limit = limit
	for steps := 0; ; steps++ {
		if steps > total/limit+2 {
			t.Fatalf("cursor walk did not terminate after %d pages", steps)
		}
		res, err := sess.Do(context.Background(), r)
		if err != nil {
			t.Fatalf("cursor page %d: %v", steps, err)
		}
		walked = append(walked, res.Hits...)
		if res.Cursor == "" {
			return walked
		}
		r.Cursor = res.Cursor
	}
}

// TestPaginationReconcatenates is the seeded pagination property: for every
// contender × kind, (a) Limit/Offset pages and (b) cursor walks re-concatenate
// to exactly the unpaginated canonical hit sequence, and (c) a Limit-10 page
// of a large result reads strictly fewer pages than the full scan — verified
// both by the reported stats and by an independent pager.Counting tap on the
// real page reads.
func TestPaginationReconcatenates(t *testing.T) {
	items := streamItems(4000, 42)
	for _, ix := range streamContenders(t, items) {
		for _, req := range streamRequests() {
			t.Run(fmt.Sprintf("%s/%s", ix.Name(), req.Kind), func(t *testing.T) {
				sess, err := engine.Open(engine.WithIndex(ix))
				if err != nil {
					t.Fatal(err)
				}
				full, err := sess.Do(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				if len(full.Hits) == 0 {
					t.Fatalf("degenerate workload: no hits")
				}
				if full.Cursor != "" {
					t.Fatalf("unpaginated result carries a cursor %q", full.Cursor)
				}

				// (a) Offset/Limit pages re-concatenate to the full sequence.
				pageSize := 19
				var paged []engine.Hit
				for off := 0; ; off += pageSize {
					r := req
					r.Offset, r.Limit = off, pageSize
					res, err := sess.Do(context.Background(), r)
					if err != nil {
						t.Fatalf("offset page at %d: %v", off, err)
					}
					if res.Stats.Results != int64(len(res.Hits)) {
						t.Fatalf("page stats Results = %d, want %d", res.Stats.Results, len(res.Hits))
					}
					paged = append(paged, res.Hits...)
					if len(res.Hits) < pageSize {
						break
					}
				}
				if !hitsEqual(paged, full.Hits) {
					t.Fatalf("offset pagination diverged: %d paged vs %d full hits", len(paged), len(full.Hits))
				}

				// (b) Cursor walk re-concatenates to the full sequence.
				walked := walkCursor(t, sess, req, 23, len(full.Hits))
				if !hitsEqual(walked, full.Hits) {
					t.Fatalf("cursor pagination diverged: %d walked vs %d full hits", len(walked), len(full.Hits))
				}

				// (c) Early stop: a small first page of a large result reads
				// strictly fewer pages than the full scan. KNN is bounded by K
				// already (its limited scan equals the full one), so the proof
				// targets the ascending-ID kinds.
				if req.Kind == engine.KNN || len(full.Hits) < 40 {
					return
				}
				lim := req
				lim.Limit = 10
				res, err := sess.Do(context.Background(), lim)
				if err != nil {
					t.Fatal(err)
				}
				if len(res.Hits) != 10 {
					t.Fatalf("limited page returned %d hits, want 10", len(res.Hits))
				}
				if res.Stats.PagesRead >= full.Stats.PagesRead {
					t.Fatalf("limit 10 read %d pages, full scan %d — no early stop",
						res.Stats.PagesRead, full.Stats.PagesRead)
				}

				// Independent proof: tap the real page reads.
				pg, ok := ix.(engine.Paged)
				if !ok {
					t.Fatalf("%s does not implement Paged", ix.Name())
				}
				tap := pager.NewCounting(pg.Store())
				pg.SetSource(tap)
				defer pg.SetSource(nil)
				if _, err := sess.Do(context.Background(), lim); err != nil {
					t.Fatal(err)
				}
				limReads := tap.Reads()
				tap.Reset()
				if _, err := sess.Do(context.Background(), req); err != nil {
					t.Fatal(err)
				}
				if fullReads := tap.Reads(); limReads >= fullReads {
					t.Fatalf("counting tap: limit 10 issued %d reads, full scan %d — no early stop",
						limReads, fullReads)
				}
			})
		}
	}
}

// churnedDataset builds a Dataset over the items and commits a batch of
// updates, deletes and inserts, returning it with the overlay still live
// (auto-compaction off) for the snapshot-side pagination properties.
func churnedDataset(t *testing.T, items []rtree.Item, seed int64) *engine.Dataset {
	t.Helper()
	ds, err := engine.NewDataset(items, engine.DatasetOptions{
		Contenders:         []string{"flat", "rtree", "grid", "sharded"},
		Flat:               flat.Options{PageSize: 8},
		RTreeFanout:        8,
		Grid:               engine.GridOptions{PageSize: 8},
		Shards:             4,
		ShardIndex:         "flat",
		DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	rng := rand.New(rand.NewSource(seed))
	tx := ds.Begin()
	gone := make(map[int32]bool)
	for i := 0; i < 200; i++ {
		id := int32(rng.Intn(len(items)))
		c := geom.Vec{X: rng.Float64() * 100, Y: rng.Float64() * 100, Z: rng.Float64() * 100}
		switch {
		case i%3 == 0 && !gone[id]:
			tx.Update(id, geom.BoxAround(c, 0.5))
		case i%3 == 1 && !gone[id]:
			tx.Delete(id)
			gone[id] = true
		default:
			tx.Insert(geom.BoxAround(c, 0.5))
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	return ds
}

// TestSnapshotPagination runs the pagination property through a churned
// Dataset snapshot: every contender view's cursor walk re-concatenates to its
// full drain (which the dataset tests pin identical across views), and a
// limited page reads fewer pages through the overlay merge.
func TestSnapshotPagination(t *testing.T) {
	items := streamItems(2000, 7)
	ds := churnedDataset(t, items, 8)
	if ds.Current().DeltaEntries() == 0 || ds.Current().TombstoneCount() == 0 {
		t.Fatalf("churn setup degenerate: delta %d, tombstones %d",
			ds.Current().DeltaEntries(), ds.Current().TombstoneCount())
	}
	for _, name := range []string{"flat", "rtree", "grid", "sharded"} {
		for _, req := range streamRequests() {
			t.Run(fmt.Sprintf("%s/%s", name, req.Kind), func(t *testing.T) {
				sess, err := engine.Open(engine.WithDataset(ds), engine.WithIndexName(name))
				if err != nil {
					t.Fatal(err)
				}
				defer sess.Close()
				full, err := sess.Do(context.Background(), req)
				if err != nil {
					t.Fatal(err)
				}
				if len(full.Hits) == 0 {
					t.Fatalf("degenerate workload: no hits")
				}

				walked := walkCursor(t, sess, req, 17, len(full.Hits))
				if !hitsEqual(walked, full.Hits) {
					t.Fatalf("snapshot cursor pagination diverged: %d walked vs %d full", len(walked), len(full.Hits))
				}

				if req.Kind != engine.KNN && len(full.Hits) >= 40 {
					lim := req
					lim.Limit = 10
					res, err := sess.Do(context.Background(), lim)
					if err != nil {
						t.Fatal(err)
					}
					if res.Stats.PagesRead >= full.Stats.PagesRead {
						t.Fatalf("limit 10 read %d pages, full %d — no early stop through the overlay",
							res.Stats.PagesRead, full.Stats.PagesRead)
					}
				}
			})
		}
	}
}

// TestSnapshotKNNHighChurn is the over-fetch bugfix's differential: at high
// churn (half the base tombstoned), snapshot kNN must pin the exact top-k of
// a from-scratch build of the live items, and the adaptive over-fetch must
// not scale the base scan with the global tombstone count — the tombstones
// sit far from the query cluster, so the old k+TombstoneCount() fetch did
// ~TombstoneCount() extra work for nothing.
func TestSnapshotKNNHighChurn(t *testing.T) {
	const n = 2000
	items := streamItems(n, 11)
	ds, err := engine.NewDataset(items, engine.DatasetOptions{
		Contenders:         []string{"flat"},
		Flat:               flat.Options{PageSize: 8},
		DisableAutoCompact: true,
	})
	if err != nil {
		t.Fatal(err)
	}
	center := geom.Vec{X: 50, Y: 50, Z: 50}
	tx := ds.Begin()
	deleted := 0
	for id := int32(0); id < n && deleted < n/2; id++ {
		box, ok := ds.Current().ItemBox(id)
		if !ok {
			continue
		}
		if box.Center().Sub(center).Len2() > 30*30 {
			tx.Delete(id)
			deleted++
		}
	}
	if _, err := tx.Commit(); err != nil {
		t.Fatal(err)
	}
	snap := ds.Current()
	tombs := snap.TombstoneCount()
	if tombs < n/4 {
		t.Fatalf("churn setup too weak: %d tombstones", tombs)
	}

	// Oracle: a from-scratch build of the live item set, relabeled dense.
	// Dense local order preserves global order, so tie-breaking by ID agrees.
	var oracleItems []rtree.Item
	var oracleID []int32
	for id := int32(0); id < n; id++ {
		if box, ok := snap.ItemBox(id); ok {
			oracleItems = append(oracleItems, rtree.Item{ID: int32(len(oracleItems)), Box: box})
			oracleID = append(oracleID, id)
		}
	}
	oracle := engine.NewFlat(flat.Options{PageSize: 8})
	if err := oracle.Build(oracleItems); err != nil {
		t.Fatal(err)
	}

	sess, err := engine.Open(engine.WithDataset(ds), engine.WithIndexName("flat"))
	if err != nil {
		t.Fatal(err)
	}
	defer sess.Close()

	for _, k := range []int{1, 5, 16} {
		req := engine.KNNRequest(center, k)
		res, err := sess.Do(context.Background(), req)
		if err != nil {
			t.Fatal(err)
		}
		var want []engine.Hit
		if _, err := oracle.Do(context.Background(), req, func(h engine.Hit) {
			want = append(want, engine.Hit{ID: oracleID[h.ID], Dist2: h.Dist2})
		}); err != nil {
			t.Fatal(err)
		}
		if !hitsEqual(res.Hits, want) {
			t.Fatalf("k=%d: snapshot kNN diverged from oracle (%d vs %d hits)", k, len(res.Hits), len(want))
		}
		// The old over-fetch forced the base to produce k + tombs neighbors,
		// so its exact tests grew with the global tombstone count. The
		// adaptive probe's work stays near k: well under one test per
		// tombstone.
		if res.Stats.EntriesTested >= int64(tombs) {
			t.Fatalf("k=%d: EntriesTested = %d with %d tombstones — over-fetch still scales with churn",
				k, res.Stats.EntriesTested, tombs)
		}
	}
}

// TestDoBatchCancelUnderLoad is the cancellation audit's regression: cancel
// mid-DoBatch at high worker counts, repeatedly, under -race. A canceledRead
// panic raised on a worker goroutine must be recovered on that worker (never
// escape to kill the process), and DoBatch must return either a clean success
// or the context's error — nothing else.
func TestDoBatchCancelUnderLoad(t *testing.T) {
	items := streamItems(3000, 21)
	reqs := make([]engine.Request, 0, 64)
	base := streamRequests()
	for i := 0; i < 64; i++ {
		r := base[i%len(base)]
		if i%5 == 0 { // mix paginated requests into the canceled batch
			r.Limit = 7
		}
		reqs = append(reqs, r)
	}
	for _, ix := range streamContenders(t, items) {
		sess, err := engine.Open(engine.WithIndex(ix), engine.WithWorkers(8))
		if err != nil {
			t.Fatal(err)
		}
		for round := 0; round < 6; round++ {
			ctx, cancel := context.WithCancel(context.Background())
			done := make(chan struct{})
			go func(round int) {
				defer close(done)
				// Stagger the cancellation to land mid-batch at varying depths.
				time.Sleep(time.Duration(round) * 200 * time.Microsecond)
				cancel()
			}(round)
			res, err := sess.DoBatch(ctx, reqs, 8)
			<-done
			switch {
			case err == nil:
				if len(res) != len(reqs) {
					t.Fatalf("%s: clean batch returned %d results, want %d", ix.Name(), len(res), len(reqs))
				}
			case errors.Is(err, context.Canceled):
				if res != nil {
					t.Fatalf("%s: canceled batch returned partial results", ix.Name())
				}
			default:
				t.Fatalf("%s: DoBatch returned unexpected error %v", ix.Name(), err)
			}
		}
	}
}

// TestStreamLifecycle covers the exported Stream surface directly: Close is
// idempotent and releases mid-drain, a NextCursor resume starts strictly
// after the cursor position, and a kind-mismatched cursor is rejected at
// validation with a field-pointing *RequestError.
func TestStreamLifecycle(t *testing.T) {
	items := streamItems(500, 5)
	ix := engine.NewFlat(flat.Options{PageSize: 8})
	if err := ix.Build(items); err != nil {
		t.Fatal(err)
	}
	req := engine.RangeRequest(geom.Box(geom.Vec{}, geom.Vec{X: 100, Y: 100, Z: 100}))

	it, err := engine.Stream(context.Background(), ix, req)
	if err != nil {
		t.Fatal(err)
	}
	var first []engine.Hit
	for len(first) < 10 {
		h, ok := it.Next()
		if !ok {
			t.Fatalf("stream dried up at %d hits", len(first))
		}
		first = append(first, h)
	}
	it.Close()
	it.Close() // idempotent

	resume := req
	resume.Cursor = engine.NextCursor(engine.Range, first[len(first)-1])
	it2, err := engine.Stream(context.Background(), ix, resume)
	if err != nil {
		t.Fatal(err)
	}
	defer it2.Close()
	prev := first[len(first)-1].ID
	n := 0
	for {
		h, ok := it2.Next()
		if !ok {
			break
		}
		if h.ID <= prev {
			t.Fatalf("resume emitted %d after %d — not strictly ascending past the cursor", h.ID, prev)
		}
		prev = h.ID
		n++
	}
	if err := it2.Err(); err != nil {
		t.Fatal(err)
	}
	if n != len(items)-len(first) {
		t.Fatalf("resume emitted %d hits, want %d", n, len(items)-len(first))
	}

	wrong := engine.KNNRequest(geom.Vec{}, 3)
	wrong.Cursor = resume.Cursor
	var reqErr *engine.RequestError
	if _, err := engine.Stream(context.Background(), ix, wrong); !errors.As(err, &reqErr) || reqErr.Field != "Cursor" {
		t.Fatalf("kind-mismatched cursor: error = %v, want *RequestError on Cursor", err)
	}
}

// TestDoHonorsPagination pins the direct execution surface: a paginated
// request passed straight to SpatialIndex.Do (not through a Session) serves
// exactly the requested window, all-or-nothing, with page-scoped stats —
// pagination fields are never silently ignored.
func TestDoHonorsPagination(t *testing.T) {
	items := streamItems(600, 31)
	req := streamRequests()[0] // range over [10,90]³
	for _, ix := range streamContenders(t, items) {
		var full []engine.Hit
		fullSt, err := ix.Do(context.Background(), req, func(h engine.Hit) { full = append(full, h) })
		if err != nil {
			t.Fatalf("%s full: %v", ix.Name(), err)
		}
		if len(full) < 50 {
			t.Fatalf("%s: degenerate workload, %d hits", ix.Name(), len(full))
		}

		paged := req
		paged.Offset = 5
		paged.Limit = 10
		var window []engine.Hit
		st, err := ix.Do(context.Background(), paged, func(h engine.Hit) { window = append(window, h) })
		if err != nil {
			t.Fatalf("%s paged: %v", ix.Name(), err)
		}
		if !hitsEqual(window, full[5:15]) {
			t.Fatalf("%s: Do(Offset:5, Limit:10) emitted %v, want hits 5..14 of the full result", ix.Name(), window)
		}
		if st.Results != int64(len(window)) {
			t.Fatalf("%s: paged stats Results = %d, want %d", ix.Name(), st.Results, len(window))
		}
		if st.PagesRead > fullSt.PagesRead {
			t.Fatalf("%s: paged Do read %d pages, full read %d", ix.Name(), st.PagesRead, fullSt.PagesRead)
		}

		resumed := req
		resumed.Cursor = engine.NextCursor(req.Kind, window[len(window)-1])
		resumed.Limit = 10
		var next []engine.Hit
		if _, err := ix.Do(context.Background(), resumed, func(h engine.Hit) { next = append(next, h) }); err != nil {
			t.Fatalf("%s resume: %v", ix.Name(), err)
		}
		if !hitsEqual(next, full[15:25]) {
			t.Fatalf("%s: Do cursor resume emitted %v, want hits 15..24", ix.Name(), next)
		}
	}
}
