package engine

import (
	"context"
	"fmt"
	"reflect"
	"strings"
	"testing"

	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/rtree"
)

// brokenBase is a base index whose Do always fails with a non-request
// execution error, standing in for a future read path that can actually fail.
type brokenBase struct{ SpatialIndex }

func (brokenBase) Do(context.Context, Request, func(Hit)) (QueryStats, error) {
	return QueryStats{}, fmt.Errorf("page checksum mismatch")
}

// TestLegacyQuerySwallowsOnlyRequestErrors is the regression for the legacy
// wrapper bugfix: snapView.Query has no error channel, and it used to flatten
// EVERY Do error — validation and execution alike — into an empty QueryStats,
// reading as "no results". Post-fix, only the documented invalid-box case maps
// to empty stats; an execution error panics instead of being swallowed.
func TestLegacyQuerySwallowsOnlyRequestErrors(t *testing.T) {
	items := make([]rtree.Item, 64)
	for i := range items {
		c := geom.Vec{X: float64(i), Y: float64(i % 8), Z: 0}
		items[i] = rtree.Item{ID: int32(i), Box: geom.BoxAround(c, 0.5)}
	}
	ds, err := NewDataset(items, DatasetOptions{Contenders: []string{"flat"}, Flat: flat.Options{PageSize: 8}})
	if err != nil {
		t.Fatal(err)
	}
	view, ok := ds.Current().Index("flat").(*snapView)
	if !ok {
		t.Fatalf("snapshot view is not a snapView")
	}

	// Documented legacy case: an invalid (empty) box reports empty stats.
	bad := geom.AABB{Min: geom.Vec{X: 1}, Max: geom.Vec{X: -1}}
	if st := view.Query(bad, nil); !reflect.DeepEqual(st, QueryStats{}) {
		t.Fatalf("invalid box: stats = %+v, want zero", st)
	}

	// Execution-error case: a failing base must panic out of Query, not
	// report empty stats. Pre-fix this returned QueryStats{} silently.
	broken := &snapView{name: "flat", snap: view.snap, base: brokenBase{view.base}}
	if st, err := broken.Do(context.Background(), RangeRequest(geom.Box(geom.Vec{}, geom.Vec{X: 64, Y: 8, Z: 1})), nil); err == nil {
		t.Fatalf("Do on a broken base returned %+v without error", st)
	}
	defer func() {
		r := recover()
		if r == nil {
			t.Fatalf("legacy Query swallowed an execution error into empty stats")
		}
		if msg := fmt.Sprint(r); !strings.Contains(msg, "checksum") {
			t.Fatalf("panic %q does not carry the execution error", msg)
		}
	}()
	broken.Query(geom.Box(geom.Vec{}, geom.Vec{X: 64, Y: 8, Z: 1}), nil)
}
