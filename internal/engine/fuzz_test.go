package engine_test

// Fuzz target for the Request validation contract: arbitrary field
// combinations never panic anywhere in the execution stack, invalid
// requests always come back as a typed *RequestError, and valid requests
// always execute. The seed corpus under testdata/fuzz covers every kind,
// the NaN/Inf poison values and the overflow-prone K values.

import (
	"context"
	"errors"
	"math"
	"sync"
	"testing"

	"neurospatial/internal/engine"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/rtree"
)

var (
	fuzzOnce    sync.Once
	fuzzIndexes []engine.SpatialIndex
)

// fuzzTargets lazily builds one small deterministic item set behind every
// contender shape (the build cost is paid once per fuzz process, not per
// input).
func fuzzTargets(t testing.TB) []engine.SpatialIndex {
	fuzzOnce.Do(func() {
		var items []rtree.Item
		for i := 0; i < 48; i++ {
			c := geom.V(float64(3+(i*17)%90), float64(5+(i*29)%90), float64(7+(i*41)%90))
			items = append(items, rtree.Item{Box: geom.BoxAround(c, 1+float64(i%5)), ID: int32(i)})
		}
		build := func(ix engine.SpatialIndex) engine.SpatialIndex {
			if err := ix.Build(items); err != nil {
				t.Fatal(err)
			}
			return ix
		}
		fuzzIndexes = []engine.SpatialIndex{
			build(engine.NewFlat(flat.DefaultOptions())),
			build(engine.NewRTree(0)),
			build(engine.NewGrid(engine.GridOptions{})),
			build(engine.NewSharded(engine.ShardedOptions{Shards: 3, Index: "grid"})),
		}
	})
	return fuzzIndexes
}

func FuzzRequestValidate(f *testing.F) {
	nan, inf := math.NaN(), math.Inf(1)
	// One seed per kind, plus poison values: NaN boxes, infinite spheres,
	// inverted boxes, zero and overflow-adjacent K.
	f.Add(uint8(1), 0.0, 0.0, 0.0, 50.0, 50.0, 50.0, 1, 0.0)  // range
	f.Add(uint8(2), 10.0, 10.0, 10.0, 0.0, 0.0, 0.0, 5, 0.0)  // knn
	f.Add(uint8(3), 20.0, 30.0, 40.0, 0.0, 0.0, 0.0, 0, 0.0)  // point
	f.Add(uint8(4), 25.0, 25.0, 25.0, 0.0, 0.0, 0.0, 0, 15.0) // within
	f.Add(uint8(0), 0.0, 0.0, 0.0, 0.0, 0.0, 0.0, 0, 0.0)     // zero request
	f.Add(uint8(1), nan, 0.0, 0.0, 1.0, 1.0, 1.0, 0, 0.0)     // NaN box
	f.Add(uint8(1), 5.0, 5.0, 5.0, -5.0, -5.0, -5.0, 0, 0.0)  // inverted box
	f.Add(uint8(2), nan, nan, nan, 0.0, 0.0, 0.0, 3, 0.0)     // NaN center
	f.Add(uint8(2), 1.0, 2.0, 3.0, 0.0, 0.0, 0.0, math.MaxInt, 0.0)
	f.Add(uint8(4), 1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0, inf)  // infinite sphere
	f.Add(uint8(4), 1.0, 2.0, 3.0, 0.0, 0.0, 0.0, 0, -1.0) // negative radius
	f.Add(uint8(99), 1.0, 2.0, 3.0, 4.0, 5.0, 6.0, 7, 8.0) // unknown kind

	f.Fuzz(func(t *testing.T, kind uint8, ax, ay, az, bx, by, bz float64, k int, radius float64) {
		req := engine.Request{
			Kind:   engine.Kind(kind),
			Box:    geom.AABB{Min: geom.V(ax, ay, az), Max: geom.V(bx, by, bz)},
			Center: geom.V(ax, ay, az),
			K:      k,
			Radius: radius,
		}
		verr := req.Validate()
		if verr != nil {
			var reqErr *engine.RequestError
			if !errors.As(verr, &reqErr) {
				t.Fatalf("Validate returned untyped error %v for %s", verr, req)
			}
		}
		for _, ix := range fuzzTargets(t) {
			_, doErr := ix.Do(context.Background(), req, nil)
			if verr != nil {
				var reqErr *engine.RequestError
				if !errors.As(doErr, &reqErr) {
					t.Fatalf("%s executed invalid request %s (Validate: %v, Do: %v)",
						ix.Name(), req, verr, doErr)
				}
				continue
			}
			if doErr != nil {
				t.Fatalf("%s failed valid request %s: %v", ix.Name(), req, doErr)
			}
		}
	})
}
