package engine_test

// Durability differential suite and the kill-mid-commit crash-recovery
// subprocess test.
//
// The differential side pins, for every contender × shards {1,4}, that a
// checkpointed-then-reopened dataset serves identical hit sets, emission
// order and worker-count-invariant stats versus the in-memory build — before
// a checkpoint (pure WAL replay), after one (pure snapshot thaw), and after
// further post-reopen commits.
//
// The crash side re-execs the test binary with an injected sync-point crash
// (durable.CrashEnv), kills it mid-commit at every point in
// durable.CrashPoints, and asserts the reopened dataset equals the versioned
// oracle at exactly the last durable epoch — never a torn batch. On failure
// the injection spec ("point:n") and the child output are logged so the run
// can be reproduced by hand.

import (
	"context"
	"fmt"
	"math/rand"
	"os"
	"os/exec"
	"testing"

	"neurospatial/internal/durable"
	"neurospatial/internal/engine"
	"neurospatial/internal/geom"
	"neurospatial/internal/rtree"
)

func TestDurableReopenDifferential(t *testing.T) {
	items := testItems(t, 8, 9001)
	vol := geom.Box(geom.V(0, 0, 0), geom.V(200, 200, 200))

	for _, cell := range datasetCells() {
		cell := cell
		t.Run(cell.name, func(t *testing.T) {
			rng := rand.New(rand.NewSource(41*int64(len(cell.name)) + 7))
			dir := t.TempDir()
			dd, err := engine.CreateDataset(dir, items, cell.opts)
			if err != nil {
				t.Fatal(err)
			}
			o := newVersionedOracle(items)

			// Committed batches with an explicit compaction between them: the
			// compaction bumps the epoch without a WAL record, so replay has
			// to reproduce the gap.
			mutateStep(t, rng, dd.Dataset, o, 12, vol)
			mutateStep(t, rng, dd.Dataset, o, 12, vol)
			if _, err := dd.Compact(); err != nil {
				t.Fatal(err)
			}
			mutateStep(t, rng, dd.Dataset, o, 12, vol)
			verifyEpoch(t, cell.name+"/live", dd.Dataset, o, vol, cell.opts)

			// Reopen with no checkpoint since creation: recovery is WAL
			// replay alone, and must land on the exact same epoch.
			re1, err := engine.OpenDataset(dir)
			if err != nil {
				t.Fatal(err)
			}
			if got, want := re1.Current().Epoch(), dd.Current().Epoch(); got != want {
				t.Fatalf("replayed reopen at epoch %d, live dataset at %d", got, want)
			}
			verifyEpoch(t, cell.name+"/replayed", re1.Dataset, o, vol, cell.opts)
			if err := re1.Close(); err != nil {
				t.Fatal(err)
			}

			// Checkpoint, commit more (onto the fresh WAL), close, reopen:
			// recovery is a snapshot thaw plus a short replay.
			if err := dd.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			mutateStep(t, rng, dd.Dataset, o, 12, vol)
			if err := dd.Close(); err != nil {
				t.Fatal(err)
			}
			re2, err := engine.OpenDataset(dir)
			if err != nil {
				t.Fatal(err)
			}
			verifyEpoch(t, cell.name+"/checkpointed", re2.Dataset, o, vol, cell.opts)

			// Post-reopen commits must keep matching, and survive one more
			// checkpoint + reopen cycle.
			mutateStep(t, rng, re2.Dataset, o, 12, vol)
			mutateStep(t, rng, re2.Dataset, o, 12, vol)
			verifyEpoch(t, cell.name+"/post-reopen", re2.Dataset, o, vol, cell.opts)
			if err := re2.Checkpoint(); err != nil {
				t.Fatal(err)
			}
			if err := re2.Close(); err != nil {
				t.Fatal(err)
			}
			re3, err := engine.OpenDataset(dir)
			if err != nil {
				t.Fatal(err)
			}
			defer re3.Close()
			verifyEpoch(t, cell.name+"/post-reopen-checkpointed", re3.Dataset, o, vol, cell.opts)
		})
	}
}

// --- Crash-recovery subprocess suite ---

// The child workload is fully deterministic so the parent can reconstruct
// the expected state for any recovered prefix of it: crashBatches committed
// batches over crashInitialN initial items, with an explicit compaction
// before batch crashCompactAt (a WAL epoch gap) and a checkpoint before
// batch crashCheckpointAt.
const (
	crashChildDirEnv  = "NEUROSPATIAL_CRASH_CHILD_DIR"
	crashInitialN     = 24
	crashBatches      = 6
	crashCompactAt    = 3
	crashCheckpointAt = 5
	// crashSweepLimit bounds the per-point injection sweep; the workload hits
	// each point at most crashBatches times, so reaching this is a bug.
	crashSweepLimit = crashBatches + 2
)

var crashVol = geom.Box(geom.V(0, 0, 0), geom.V(100, 100, 100))

// crashItemBox is the deterministic box of item id in the crash workload.
func crashItemBox(id int32) geom.AABB {
	x := float64((id*37)%97) + 0.5
	y := float64((id*53)%89) + 0.5
	z := float64((id*71)%83) + 0.5
	return geom.BoxAround(geom.V(x, y, z), 1+float64(id%5))
}

func crashInitialItems() []rtree.Item {
	items := make([]rtree.Item, crashInitialN)
	for i := range items {
		items[i] = rtree.Item{ID: int32(i), Box: crashItemBox(int32(i))}
	}
	return items
}

// crashBatchOps describes batch b (1-based): two inserts whose IDs the
// sequential allocator is guaranteed to assign, an update of an initial item
// from batch 2 on, and from batch 3 on a delete of the first item inserted
// two batches earlier.
type crashOp struct {
	kind int // 0 insert, 1 delete, 2 update
	id   int32
}

func crashBatchOps(b int) []crashOp {
	first := int32(crashInitialN + 2*(b-1))
	ops := []crashOp{{kind: 0, id: first}, {kind: 0, id: first + 1}}
	if b >= 2 {
		ops = append(ops, crashOp{kind: 2, id: int32((b * 5) % crashInitialN)})
	}
	if b >= 3 {
		ops = append(ops, crashOp{kind: 1, id: int32(crashInitialN + 2*(b-3))})
	}
	return ops
}

// crashOracleAt returns the live item set after batches 1..k, via the same
// versioned oracle the differential suite uses.
func crashOracleAt(k int) []rtree.Item {
	o := newVersionedOracle(crashInitialItems())
	for b := 1; b <= k; b++ {
		for _, op := range crashBatchOps(b) {
			switch op.kind {
			case 0:
				o.insert(op.id, crashItemBox(op.id+100*int32(b)))
			case 1:
				o.remove(op.id)
			case 2:
				o.remove(op.id)
				o.insert(op.id, crashItemBox(op.id+100*int32(b)))
			}
		}
	}
	return o.live()
}

func crashNumItems(k int) int {
	return len(crashOracleAt(k))
}

func crashDatasetOptions() engine.DatasetOptions {
	return engine.DatasetOptions{
		Contenders:         []string{"flat", "rtree", "grid", "sharded"},
		Shards:             4,
		DisableAutoCompact: true, // epoch sequence must be script-controlled
	}
}

// TestDurableCrashChild is the re-exec entry point: it only runs when the
// parent set crashChildDirEnv, performs the deterministic workload with the
// injected crash armed, and exits 0 if the crash never fired.
func TestDurableCrashChild(t *testing.T) {
	dir := os.Getenv(crashChildDirEnv)
	if dir == "" {
		t.Skip("subprocess entry point; set " + crashChildDirEnv + " to run")
	}
	dd, err := engine.CreateDataset(dir, crashInitialItems(), crashDatasetOptions())
	if err != nil {
		t.Fatalf("create: %v", err)
	}
	// Arm only after creation so the recovery invariant starts from an
	// existing manifest; the creation checkpoint is not part of the sweep.
	if err := durable.SetCrashPoint(os.Getenv(durable.CrashEnv)); err != nil {
		t.Fatalf("arm crash point: %v", err)
	}
	for b := 1; b <= crashBatches; b++ {
		if b == crashCompactAt {
			if _, err := dd.Compact(); err != nil {
				t.Fatalf("compact before batch %d: %v", b, err)
			}
		}
		if b == crashCheckpointAt {
			if err := dd.Checkpoint(); err != nil {
				t.Fatalf("checkpoint before batch %d: %v", b, err)
			}
		}
		tx := dd.Begin()
		for _, op := range crashBatchOps(b) {
			switch op.kind {
			case 0:
				if got := tx.Insert(crashItemBox(op.id + 100*int32(b))); got != op.id {
					t.Fatalf("batch %d: allocator assigned %d, workload expects %d", b, got, op.id)
				}
			case 1:
				tx.Delete(op.id)
			case 2:
				tx.Update(op.id, crashItemBox(op.id+100*int32(b)))
			}
		}
		if _, err := tx.Commit(); err != nil {
			t.Fatalf("batch %d: %v", b, err)
		}
	}
	if err := dd.Close(); err != nil {
		t.Fatalf("close: %v", err)
	}
}

// TestDurableCrashRecovery sweeps every injectable sync point: for each
// point it re-execs the child with the crash armed at hit 1, 2, ... until
// the child survives the whole workload, and after every kill asserts that
// reopening recovers exactly the batches whose WAL fsync semantics say must
// (or legitimately may) be durable — then replays queries hit-for-hit on
// every contender against the oracle at that prefix.
func TestDurableCrashRecovery(t *testing.T) {
	if os.Getenv(crashChildDirEnv) != "" {
		t.Skip("running inside a crash child")
	}
	for _, point := range durable.CrashPoints {
		point := point
		t.Run(point, func(t *testing.T) {
			fired := false
			for n := 1; ; n++ {
				if n >= crashSweepLimit {
					t.Fatalf("injection sweep for %s did not terminate", point)
				}
				spec := fmt.Sprintf("%s:%d", point, n)
				dir := t.TempDir()
				cmd := exec.Command(os.Args[0], "-test.run", "^TestDurableCrashChild$", "-test.v")
				cmd.Env = append(os.Environ(),
					crashChildDirEnv+"="+dir,
					durable.CrashEnv+"="+spec,
				)
				out, err := cmd.CombinedOutput()
				if err == nil {
					// The workload finished without hitting the armed count:
					// the sweep for this point is complete.
					if !fired {
						t.Fatalf("crash point %s never fired", point)
					}
					break
				}
				exit := cmd.ProcessState.ExitCode()
				if exit != 137 {
					t.Fatalf("injection %s: child failed (exit %d) instead of crashing:\n%s", spec, exit, out)
				}
				fired = true
				verifyCrashRecovery(t, dir, point, n, string(out))
			}
		})
	}
}

// verifyCrashRecovery opens the crashed-at-spec dataset directory and checks
// the recovered state.
func verifyCrashRecovery(t *testing.T, dir, point string, n int, childOut string) {
	t.Helper()
	dd, err := engine.OpenDataset(dir)
	if err != nil {
		t.Fatalf("injection %s:%d: reopen after crash: %v\nchild output:\n%s", point, n, err, childOut)
	}
	defer dd.Close()

	live := dd.Current().NumItems()
	k := -1
	for c := 0; c <= crashBatches; c++ {
		if crashNumItems(c) == live {
			k = c
			break
		}
	}
	if k < 0 {
		t.Fatalf("injection %s:%d: recovered %d live items, matching no workload prefix\nchild output:\n%s",
			point, n, live, childOut)
	}

	// Which prefix must the recovery land on? The n-th hit of each WAL point
	// happens inside batch n's commit; the checkpoint points fire during the
	// explicit checkpoint, after batch crashCheckpointAt-1.
	switch point {
	case durable.CrashWALAppend, durable.CrashWALTorn:
		// The record never fully reached the file: batch n must vanish.
		if k != n-1 {
			t.Fatalf("injection %s:%d: recovered %d batches, want %d (batch must vanish)\nchild output:\n%s",
				point, n, k, n-1, childOut)
		}
	case durable.CrashWALWritten:
		// Written but not fsynced: with a process kill (no kernel crash) the
		// write is visible, so the whole batch replays; a real power cut
		// could also legitimately lose it. Either way, never a torn batch.
		if k != n && k != n-1 {
			t.Fatalf("injection %s:%d: recovered %d batches, want %d or %d\nchild output:\n%s",
				point, n, k, n-1, n, childOut)
		}
	case durable.CrashWALSynced:
		// Fsynced before the crash: the batch is durable and must survive.
		if k != n {
			t.Fatalf("injection %s:%d: recovered %d batches, want %d (batch was fsynced)\nchild output:\n%s",
				point, n, k, n, childOut)
		}
	case durable.CrashCheckpointFiles, durable.CrashCheckpointRenamed:
		// The checkpoint runs before batch crashCheckpointAt: whichever side
		// of the manifest rename the crash lands on, the committed prefix is
		// the same — only the generation serving it differs.
		if k != crashCheckpointAt-1 {
			t.Fatalf("injection %s:%d: recovered %d batches, want %d\nchild output:\n%s",
				point, n, k, crashCheckpointAt-1, childOut)
		}
	}

	// Hit-for-hit against the oracle at the recovered prefix, on every
	// contender.
	oracle := crashOracleAt(k)
	reqs := mixedRequests(oracle, crashVol)
	for _, name := range []string{"flat", "rtree", "grid", "sharded"} {
		sess, err := engine.Open(engine.WithDataset(dd.Dataset), engine.WithIndexName(name))
		if err != nil {
			t.Fatalf("injection %s:%d: open %s session: %v", point, n, name, err)
		}
		got, err := sess.DoBatch(context.Background(), reqs, 2)
		if err != nil {
			sess.Close()
			t.Fatalf("injection %s:%d: %s batch: %v", point, n, name, err)
		}
		for i, r := range reqs {
			want := oracleHits(oracle, r)
			if !hitsEqual(got[i].Hits, want) {
				sess.Close()
				t.Fatalf("injection %s:%d: %s request %d (%s): recovered dataset returned %v, oracle %v\nchild output:\n%s",
					point, n, name, i, r, got[i].Hits, want, childOut)
			}
		}
		sess.Close()
	}
}
