package engine

import (
	"fmt"

	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// Flat adapts flat.Index to the engine layer. Stats mapping: IndexReads are
// the seed-tree node accesses (the page-level R-tree is RAM-resident),
// PagesRead are the crawl's data-page reads — exactly the split the demo's
// statistics panel reports for FLAT.
type Flat struct {
	opts flat.Options
	idx  *flat.Index
	src  pager.PageSource
}

// NewFlat returns an unbuilt FLAT engine index with the given options.
func NewFlat(opts flat.Options) *Flat { return &Flat{opts: opts} }

// WrapFlat adapts an already-built flat.Index.
func WrapFlat(idx *flat.Index) *Flat { return &Flat{opts: idx.Options(), idx: idx} }

// Inner returns the wrapped flat.Index (nil before Build).
func (f *Flat) Inner() *flat.Index { return f.idx }

// Name implements SpatialIndex.
func (f *Flat) Name() string { return "flat" }

// Build implements SpatialIndex. Rebuilding restores cold reads from the
// new store: an attached PageSource is dropped, since a pool wrapping the
// previous store would serve stale pages.
func (f *Flat) Build(items []rtree.Item) error {
	idx, err := flat.Build(items, f.opts)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	f.idx, f.src = idx, nil
	return nil
}

// Bounds implements SpatialIndex.
func (f *Flat) Bounds() geom.AABB {
	if f.idx == nil {
		return geom.EmptyAABB()
	}
	return f.idx.Bounds()
}

// NumItems implements SpatialIndex.
func (f *Flat) NumItems() int {
	if f.idx == nil {
		return 0
	}
	return f.idx.NumItems()
}

// fromFlat maps FLAT's native stats onto the unified record.
func fromFlat(s flat.QueryStats) QueryStats {
	return QueryStats{
		IndexReads:    s.SeedNodeAccesses,
		PagesRead:     s.PagesRead,
		EntriesTested: s.EntriesTested,
		Results:       s.Results,
		Reseeds:       s.Reseeds,
	}
}

// Query implements SpatialIndex, reading data pages through the configured
// source (cold store reads by default).
func (f *Flat) Query(q geom.AABB, visit func(int32)) QueryStats {
	if f.idx == nil {
		return QueryStats{}
	}
	return fromFlat(f.idx.QueryVia(q, f.src, visit))
}

// BatchQuery implements SpatialIndex via the shared deterministic executor.
func (f *Flat) BatchQuery(qs []geom.AABB, workers int, visit func(int, int32)) []QueryStats {
	if f.idx == nil {
		return make([]QueryStats, len(qs))
	}
	return batchQuery(workers, qs, func(q geom.AABB, emit func(int32)) QueryStats {
		return fromFlat(f.idx.QueryVia(q, f.src, emit))
	}, visit)
}

// Store implements Paged (nil before Build).
func (f *Flat) Store() *pager.Store {
	if f.idx == nil {
		return nil
	}
	return f.idx.Store()
}

// NumPages implements Paged.
func (f *Flat) NumPages() int {
	if f.idx == nil {
		return 0
	}
	return f.idx.NumPages()
}

// PageOf implements Paged.
func (f *Flat) PageOf(id int32) pager.PageID {
	if f.idx == nil || id < 0 || int(id) >= f.idx.NumItems() {
		return pager.InvalidPage
	}
	return f.idx.PageOf(id)
}

// PagesInRange implements Paged via the seed tree.
func (f *Flat) PagesInRange(q geom.AABB) []pager.PageID {
	if f.idx == nil {
		return nil
	}
	return f.idx.PagesInRange(q)
}

// SetSource implements Paged.
func (f *Flat) SetSource(src pager.PageSource) { f.src = src }

// Source implements Paged.
func (f *Flat) Source() pager.PageSource { return f.src }

// PagedQuery implements Paged (and prefetch.Served).
func (f *Flat) PagedQuery(q geom.AABB, pool *pager.BufferPool, visit func(int32)) {
	if f.idx == nil {
		return
	}
	f.idx.Query(q, pool, visit)
}
