package engine

import (
	"context"
	"fmt"
	"slices"
	"sync"

	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// Flat adapts flat.Index to the engine layer. Stats mapping: IndexReads are
// the seed-tree node accesses (the page-level R-tree is RAM-resident),
// PagesRead are the crawl's data-page reads — exactly the split the demo's
// statistics panel reports for FLAT.
type Flat struct {
	opts flat.Options
	idx  *flat.Index
	// boxOf is the exact-geometry accessor bound once per build (a per-query
	// method value would be a hot-path allocation).
	boxOf func(int32) geom.AABB
	src   pager.PageSource
	// probeMu is the per-instance probe-execution lock (see planner.go):
	// planners sharing this instance serialize their calibration probes on
	// it, since a probe detaches and restores src.
	probeMu sync.Mutex //neurospatial:lock flat.probe
	// zoneMu guards the lazily derived zone map of the current build.
	zoneMu sync.Mutex //neurospatial:lock flat.zone
	zones  []idZone
}

// NewFlat returns an unbuilt FLAT engine index with the given options.
func NewFlat(opts flat.Options) *Flat { return &Flat{opts: opts} }

// WrapFlat adapts an already-built flat.Index.
func WrapFlat(idx *flat.Index) *Flat {
	return &Flat{opts: idx.Options(), idx: idx, boxOf: idx.ItemBox}
}

// Inner returns the wrapped flat.Index (nil before Build).
func (f *Flat) Inner() *flat.Index { return f.idx }

// Name implements SpatialIndex.
func (f *Flat) Name() string { return "flat" }

// Build implements SpatialIndex. Rebuilding restores cold reads from the
// new store: an attached PageSource is dropped, since a pool wrapping the
// previous store would serve stale pages.
func (f *Flat) Build(items []rtree.Item) error {
	idx, err := flat.Build(items, f.opts)
	if err != nil {
		return fmt.Errorf("engine: %w", err)
	}
	f.idx, f.src, f.boxOf = idx, nil, idx.ItemBox
	f.zoneMu.Lock()
	f.zones = nil
	f.zoneMu.Unlock()
	return nil
}

// zoneMap returns the per-page (min, max) item-ID zones of the current
// build, derived once from the RAM-resident page layout (like the page
// MBRs; not page I/O).
func (f *Flat) zoneMap() []idZone {
	f.zoneMu.Lock()
	defer f.zoneMu.Unlock()
	if f.zones == nil {
		f.zones = storeZones(f.idx.Store())
	}
	return f.zones
}

// iterate implements the internal streaming capability. The ascending-ID
// kinds run the zone-map merge over the seed tree's candidate pages (every
// true hit lies on a page whose MBR intersects the query box, so the
// candidate set is complete; the exact refinement is the RAM-resident item
// box). The stats mapping differs from the eager path in the RAM-side
// counters only: IndexReads counts candidate pages rather than seed-tree
// node accesses, and Reseeds stays 0 (the zone-map order replaces the
// crawl); PagesRead accounting is identical on a full drain. KNN serves the
// bounded best-first scan eagerly.
func (f *Flat) iterate(ctx context.Context, req Request, after *Hit) (HitIterator, error) {
	if f.idx == nil {
		return &sliceIter{}, ctxErr(ctx)
	}
	if req.Kind == KNN {
		return knnEager(func(visit func(Hit)) (QueryStats, error) {
			return f.doKNN(ctx, req.Center, req.K, visit)
		}, KNN, after)
	}
	pages := f.idx.PagesInRange(queryBox(req))
	ps := newPageStream(ctx, f.srcOrStore(), pages, f.zoneMap(), after,
		acceptFor(req, f.boxOf))
	if req.Kind == Range || req.Kind == Point {
		ps.useCoords(f.idx.Coords(), queryBox(req))
	}
	return ps, nil
}

// Bounds implements SpatialIndex.
func (f *Flat) Bounds() geom.AABB {
	if f.idx == nil {
		return geom.EmptyAABB()
	}
	return f.idx.Bounds()
}

// NumItems implements SpatialIndex.
func (f *Flat) NumItems() int {
	if f.idx == nil {
		return 0
	}
	return f.idx.NumItems()
}

// fromFlat maps FLAT's native stats onto the unified record.
func fromFlat(s flat.QueryStats) QueryStats {
	return QueryStats{
		IndexReads:    s.SeedNodeAccesses,
		PagesRead:     s.PagesRead,
		EntriesTested: s.EntriesTested,
		Results:       s.Results,
		Reseeds:       s.Reseeds,
	}
}

// srcOrStore resolves the attached PageSource, falling back to cold reads
// from the index's own store.
func (f *Flat) srcOrStore() pager.PageSource {
	if f.src != nil {
		return f.src
	}
	return f.idx.Store()
}

// rangeIDs runs the native range traversal (seed + crawl), gathering ids into
// the pooled collector, with cancellation checked at every data-page read.
// The caller owns releasing col regardless of error. The background-context
// path skips the catchCancel/ctxSource machinery entirely — no panic is
// possible without a ctx-wrapped source, and the skipped closure is itself a
// per-call allocation the zero-alloc path cannot afford.
//
//neurospatial:hotpath
func (f *Flat) rangeIDs(ctx context.Context, q geom.AABB, col *idCollector) (QueryStats, error) {
	if !cancelable(ctx) {
		return fromFlat(f.idx.QueryVia(q, f.srcOrStore(), col.visit)), nil
	}
	src := &ctxSource{ctx: ctx, src: f.srcOrStore()}
	var st QueryStats
	//lint:ignore hotpath the catchCancel closure is the cancelable path's one per-call allocation; the background path above skips it
	err := catchCancel(func() {
		st = fromFlat(f.idx.QueryVia(q, src, col.visit))
	})
	if err != nil {
		return QueryStats{}, err
	}
	return st, nil
}

// Do implements SpatialIndex. Range, Point and WithinDistance execute as
// seed-and-crawl traversals (Point stabs with a degenerate box,
// WithinDistance crawls the sphere's bounding box and refines with the exact
// Dist2Point test); KNN runs a best-first scan over the page directory:
// page MBRs are ordered by squared distance to the center (those bound
// evaluations are the RAM-resident IndexReads of the record), pages are read
// through the configured source nearest-first, and the scan stops as soon as
// the next page's lower bound exceeds the current k-th distance.
//
//neurospatial:hotpath
func (f *Flat) Do(ctx context.Context, req Request, visit func(Hit)) (QueryStats, error) {
	if err := req.Validate(); err != nil {
		return QueryStats{}, err
	}
	if visit == nil {
		visit = func(Hit) {}
	}
	if f.idx == nil {
		return QueryStats{}, ctxErr(ctx)
	}
	if err := ctxErr(ctx); err != nil {
		return QueryStats{}, err
	}
	if req.paginated() {
		return doPaginated(ctx, f, req, visit)
	}
	switch req.Kind {
	case Range, Point:
		q := req.Box
		if req.Kind == Point {
			q = geom.Box(req.Center, req.Center)
		}
		col := getIDCollector()
		defer putIDCollector(col)
		st, err := f.rangeIDs(ctx, q, col)
		if err != nil {
			return QueryStats{}, err
		}
		emitIDHits(col.ids, visit)
		return st, nil
	case WithinDistance:
		col := getIDCollector()
		defer putIDCollector(col)
		st, err := f.rangeIDs(ctx, geom.BoxAround(req.Center, req.Radius), col)
		if err != nil {
			return QueryStats{}, err
		}
		results, tested := withinRefine(col.ids, f.boxOf, req.Center, req.Radius, visit)
		st.Results = results
		st.EntriesTested += tested
		return st, nil
	case KNN:
		return f.doKNN(ctx, req.Center, req.K, visit)
	}
	return QueryStats{}, &RequestError{Kind: req.Kind, Field: "Kind", Reason: "is not a known query kind"}
}

// doKNN is the FLAT k-nearest-neighbors execution. The order buffer and the
// top-k accumulator are pooled; hits are emitted by value before release.
//
//neurospatial:hotpath
func (f *Flat) doKNN(ctx context.Context, center geom.Vec, k int, visit func(Hit)) (QueryStats, error) {
	var st QueryStats
	np := f.idx.NumPages()
	orderBuf := getPageBounds()
	defer putPageBounds(orderBuf)
	order := *orderBuf
	for p := 0; p < np; p++ {
		order = append(order, pageBound{f.idx.PageBox(pager.PageID(p)).Dist2Point(center), pager.PageID(p)})
	}
	*orderBuf = order
	slices.SortFunc(order, cmpPageBound)
	st.IndexReads = int64(np)
	src := f.srcOrStore()
	acc := getKNNAcc(k)
	defer putKNNAcc(acc)
	for _, pb := range order {
		if acc.Full() && pb.d2 > acc.Bound() {
			break
		}
		if err := ctxErr(ctx); err != nil {
			return QueryStats{}, err
		}
		st.PagesRead++
		for _, id := range src.ReadPage(pb.p) {
			st.EntriesTested++
			acc.Offer(Hit{ID: id, Dist2: f.idx.ItemBox(id).Dist2Point(center)})
		}
	}
	hits := acc.Hits()
	st.Results = int64(len(hits))
	for _, h := range hits {
		visit(h)
	}
	return st, nil
}

// queryNative implements nativeQuerier: one range query reading data pages
// through the configured source (cold store reads by default).
func (f *Flat) queryNative(q geom.AABB, visit func(int32)) QueryStats {
	if f.idx == nil {
		return QueryStats{}
	}
	return fromFlat(f.idx.QueryVia(q, f.src, visit))
}

// Query implements SpatialIndex.
//
// Deprecated: route new call sites through Session.Do with a Range request.
func (f *Flat) Query(q geom.AABB, visit func(int32)) QueryStats {
	return f.queryNative(q, visit)
}

// BatchQuery implements SpatialIndex via the shared deterministic executor.
//
// Deprecated: route new call sites through Session.DoBatch.
func (f *Flat) BatchQuery(qs []geom.AABB, workers int, visit func(int, int32)) []QueryStats {
	if f.idx == nil {
		return make([]QueryStats, len(qs))
	}
	return batchQuery(workers, qs, func(q geom.AABB, emit func(int32)) QueryStats {
		return fromFlat(f.idx.QueryVia(q, f.src, emit))
	}, visit)
}

// Store implements Paged (nil before Build).
func (f *Flat) Store() *pager.Store {
	if f.idx == nil {
		return nil
	}
	return f.idx.Store()
}

// NumPages implements Paged.
func (f *Flat) NumPages() int {
	if f.idx == nil {
		return 0
	}
	return f.idx.NumPages()
}

// PageOf implements Paged.
func (f *Flat) PageOf(id int32) pager.PageID {
	if f.idx == nil || id < 0 || int(id) >= f.idx.NumItems() {
		return pager.InvalidPage
	}
	return f.idx.PageOf(id)
}

// PagesInRange implements Paged via the seed tree.
func (f *Flat) PagesInRange(q geom.AABB) []pager.PageID {
	if f.idx == nil {
		return nil
	}
	return f.idx.PagesInRange(q)
}

// SetSource implements Paged.
func (f *Flat) SetSource(src pager.PageSource) { f.src = src }

// probeLock implements the planner's probeLocker hook.
func (f *Flat) probeLock() *sync.Mutex { return &f.probeMu }

// Source implements Paged.
func (f *Flat) Source() pager.PageSource { return f.src }

// PagedQuery implements Paged (and prefetch.Served).
func (f *Flat) PagedQuery(q geom.AABB, pool *pager.BufferPool, visit func(int32)) {
	if f.idx == nil {
		return
	}
	f.idx.Query(q, pool, visit)
}
