package engine

import (
	"context"
	"fmt"
	"slices"
	"sort"
	"sync"
	"sync/atomic"

	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
	"neurospatial/internal/shard"
)

// ShardedOptions configures the sharded scatter-gather index.
type ShardedOptions struct {
	// Shards is the spatial shard count K; <= 0 selects 4. The effective
	// count is min(K, item count) — every built shard is non-empty.
	Shards int
	// Index names the contender built per shard: "flat" (default), "rtree"
	// or "grid".
	Index string
	// Flat configures the per-shard FLAT indexes (Index == "flat").
	Flat flat.Options
	// RTreeFanout configures the per-shard R-trees (Index == "rtree");
	// <= 0 selects the default fanout.
	RTreeFanout int
	// Grid configures the per-shard grid indexes (Index == "grid").
	Grid GridOptions
	// PoolPages, when > 0, gives every shard its own pager.BufferPool of
	// that capacity over its local store — the per-shard caching regime of a
	// partitioned serving tier. Zero reads cold. An externally attached
	// PageSource (SetSource / PagedQuery) bypasses the per-shard pools, since
	// it owns the global page space.
	PoolPages int
}

func (o ShardedOptions) sanitize() ShardedOptions {
	if o.Shards <= 0 {
		o.Shards = 4
	}
	if o.Index == "" {
		o.Index = "flat"
	}
	return o
}

// shardState is one spatial shard: a sub-index over the shard's items
// re-labelled with dense local IDs, plus the maps back to global space.
type shardState struct {
	sub    Paged
	bounds geom.AABB
	// global[l] is the global ID of the shard's local item l (ascending —
	// local IDs are assigned in ascending global-ID order).
	global []int32
	// pageBase is the shard's first page in the global page space.
	pageBase pager.PageID
	// pool is the shard's own buffer pool (nil when PoolPages == 0).
	pool *pager.BufferPool
}

// Sharded is the scatter-gather engine index: the item set is split into K
// spatial shards (shard.Partition, STR-style longest-axis recursion over
// item centers), each shard builds its own contender index with its own
// pager.Store (and optional per-shard BufferPool), and queries fan out only
// to the shards whose bounds intersect the range.
//
// Gather order: per query, the shards are drained in shard order and the
// merged hits are emitted in ascending global ID — Sharded's fixed native
// order, identical for any shard count, worker count, or per-shard index
// kind, and equal (as a set) to any unsharded contender's result. Batches
// run on the shared deterministic executor, so BatchQuery emits exactly the
// serial Query loop's output for any worker count.
//
// Stats mapping: per-shard QueryStats are summed into the unified record
// (NodesPerLevel element-wise), plus ShardsTouched — the number of shards
// the query fanned out to, the routing-quality counter of experiment E8.
//
// Storage: each shard lays its items on its own local pages; the Paged
// surface exposes one global page space via a dense remap (shard 0's pages
// first, then shard 1's, ...), with page contents translated to global IDs.
// Prefetchers and buffer pools therefore address sharded storage exactly
// like unsharded storage, which is what lets prefetch.Served walkthroughs
// (SCOUT included) run over a sharded store unchanged.
type Sharded struct {
	opts   ShardedOptions
	shards []shardState
	bounds geom.AABB
	n      int
	// shardOf[g] / local[g] locate global item g in its shard.
	shardOf []int32
	local   []int32
	// store is the global page space (per-shard pages concatenated, contents
	// translated to global IDs).
	store *pager.Store
	// src is the externally attached global-space PageSource (SetSource).
	src pager.PageSource
	// probeCold routes reads around the per-shard pools (planner
	// calibration must not warm or count against internal caches). Atomic
	// because the query read path observes it without holding probeMu:
	// queries may run concurrently with a planner probe toggling it.
	probeCold atomic.Bool
	// pqMu serializes PagedQuery's temporary source swap.
	pqMu sync.Mutex //neurospatial:lock sharded.pq
	// probeMu is the per-instance probe-execution lock (see planner.go);
	// it serializes probe runs (and so probeCold toggles) across planners
	// sharing the instance.
	probeMu sync.Mutex //neurospatial:lock sharded.probe
}

// NewSharded returns an unbuilt sharded index.
func NewSharded(opts ShardedOptions) *Sharded { return &Sharded{opts: opts.sanitize()} }

// Name implements SpatialIndex.
func (s *Sharded) Name() string { return "sharded" }

// NumShards returns the number of built shards (0 before Build).
func (s *Sharded) NumShards() int { return len(s.shards) }

// ShardBounds returns the MBR of shard i's items.
func (s *Sharded) ShardBounds(i int) geom.AABB { return s.shards[i].bounds }

// ShardPools returns the per-shard buffer pools, nil entries when
// ShardedOptions.PoolPages was 0. The slice is indexed by shard.
func (s *Sharded) ShardPools() []*pager.BufferPool {
	pools := make([]*pager.BufferPool, len(s.shards))
	for i := range s.shards {
		pools[i] = s.shards[i].pool
	}
	return pools
}

// newSubIndex constructs one shard's contender.
func (o ShardedOptions) newSubIndex() (Paged, error) {
	switch o.Index {
	case "flat":
		return NewFlat(o.Flat), nil
	case "rtree":
		return NewRTree(o.RTreeFanout), nil
	case "grid":
		return NewGrid(o.Grid), nil
	}
	return nil, fmt.Errorf("engine: unknown sharded sub-index %q (have flat, rtree, grid)", o.Index)
}

// Build implements SpatialIndex. Rebuilding drops an attached PageSource,
// like every other engine index: a pool wrapping the previous global store
// would serve stale pages.
func (s *Sharded) Build(items []rtree.Item) error {
	s.shards, s.store, s.src = nil, nil, nil
	s.shardOf, s.local = nil, nil
	s.bounds = geom.EmptyAABB()
	s.n = len(items)
	for _, it := range items {
		if it.ID < 0 || int(it.ID) >= len(items) {
			return fmt.Errorf("engine: sharded item ID %d not dense in [0,%d)", it.ID, len(items))
		}
	}
	if len(items) == 0 {
		return nil
	}

	parts := shard.Partition(items, s.opts.Shards)
	s.shards = make([]shardState, len(parts))
	s.shardOf = make([]int32, len(items))
	s.local = make([]int32, len(items))
	for i, part := range parts {
		sub, err := s.opts.newSubIndex()
		if err != nil {
			return err
		}
		localItems := make([]rtree.Item, len(part.Items))
		globals := make([]int32, len(part.Items))
		for l, it := range part.Items {
			localItems[l] = rtree.Item{Box: it.Box, ID: int32(l)}
			globals[l] = it.ID
			s.shardOf[it.ID] = int32(i)
			s.local[it.ID] = int32(l)
		}
		if err := sub.Build(localItems); err != nil {
			return fmt.Errorf("engine: building shard %d: %w", i, err)
		}
		s.shards[i] = shardState{sub: sub, bounds: part.Bounds, global: globals}
		s.bounds = s.bounds.Union(part.Bounds)
		if s.opts.PoolPages > 0 {
			pool, err := pager.NewBufferPool(sub.Store(), s.opts.PoolPages)
			if err != nil {
				return fmt.Errorf("engine: shard %d pool: %w", i, err)
			}
			s.shards[i].pool = pool
		}
		// All page reads of the shard dispatch through the owner: attached
		// global source first, then the per-shard pool, then cold.
		sub.SetSource(&shardSource{owner: s, shard: i})
	}

	// The global page space: per-shard pages concatenated densely, contents
	// translated from local to global IDs (sub-page boundaries preserved
	// exactly, so global page base+p mirrors shard page p).
	capacity := 1
	for i := range s.shards {
		if c := s.shards[i].sub.Store().Capacity(); c > capacity {
			capacity = c
		}
	}
	builder, err := pager.NewBuilder(capacity)
	if err != nil {
		return err
	}
	var base pager.PageID
	for i := range s.shards {
		sh := &s.shards[i]
		sh.pageBase = base
		local := sh.sub.Store()
		for p := 0; p < local.NumPages(); p++ {
			for _, id := range local.Page(pager.PageID(p)) {
				if id >= 0 {
					builder.Add(sh.global[id])
				} else {
					builder.Add(id) // internal-node placeholder (rtree pages)
				}
			}
			builder.FlushPage()
		}
		base += pager.PageID(local.NumPages())
	}
	s.store = builder.Build()
	if s.store.NumPages() != int(base) {
		return fmt.Errorf("engine: sharded page bookkeeping diverged: %d global pages, %d shard pages",
			s.store.NumPages(), base)
	}
	return nil
}

// shardSource is the PageSource installed on every sub-index: it accounts
// the read in the global page space (against the attached source or the
// shard's own pool) and returns the shard-local page content the sub-index's
// refinement expects.
type shardSource struct {
	owner *Sharded
	shard int
}

func (ss *shardSource) ReadPage(p pager.PageID) []int32 {
	sh := &ss.owner.shards[ss.shard]
	if src := ss.owner.src; src != nil {
		src.ReadPage(sh.pageBase + p)
		return sh.sub.Store().Page(p)
	}
	if sh.pool != nil && !ss.owner.probeCold.Load() {
		return sh.pool.Get(p)
	}
	return sh.sub.Store().Page(p)
}

// setProbeCold implements the planner's internal cold-probe hook: while on,
// reads bypass the per-shard pools (cold store), so a calibration probe
// neither warms nor counts against them. Like SetSource, it is configuration
// of the read path, not concurrent-execution state.
func (s *Sharded) setProbeCold(on bool) { s.probeCold.Store(on) }

// Bounds implements SpatialIndex.
func (s *Sharded) Bounds() geom.AABB { return s.bounds }

// NumItems implements SpatialIndex.
func (s *Sharded) NumItems() int { return s.n }

// nativeQuerier is the non-deprecated form of the legacy range-query shape.
// Every contender keeps its real implementation under this unexported method
// so internal fan-out — the sharded scatter, the paged read path — never
// routes through the deprecated Query/BatchQuery wrappers, which exist only
// for external callers mid-migration.
type nativeQuerier interface {
	queryNative(q geom.AABB, emit func(int32)) QueryStats
}

// queryNative is the scatter-gather: fan out to intersecting shards in shard
// order, sum their stats, merge hits into ascending global ID.
func (s *Sharded) queryNative(q geom.AABB, emit func(int32)) QueryStats {
	var subs []QueryStats
	var hits []int32
	for i := range s.shards {
		sh := &s.shards[i]
		if !sh.bounds.Intersects(q) {
			continue
		}
		nq := sh.sub.(nativeQuerier)
		subs = append(subs, nq.queryNative(q, func(lid int32) { hits = append(hits, sh.global[lid]) }))
	}
	st := Aggregate(subs)
	st.ShardsTouched = int64(len(subs))
	slices.Sort(hits)
	for _, id := range hits {
		emit(id)
	}
	return st
}

// scatter runs one sub-request on every shard accepted by keep (in shard
// order), translating local hits to global IDs via toGlobal, and returns the
// summed stats with ShardsTouched set. The sub-indexes observe ctx at their
// own page-read granularity.
func (s *Sharded) scatter(ctx context.Context, sub Request, keep func(sh *shardState) bool,
	emit func(shardIdx int, h Hit)) (QueryStats, error) {

	var subs []QueryStats
	for i := range s.shards {
		sh := &s.shards[i]
		if !keep(sh) {
			continue
		}
		st, err := sh.sub.Do(ctx, sub, func(h Hit) { emit(i, h) })
		if err != nil {
			return QueryStats{}, err
		}
		subs = append(subs, st)
	}
	st := Aggregate(subs)
	st.ShardsTouched = int64(len(subs))
	return st, nil
}

// Do implements SpatialIndex: every kind scatters to the shards that can
// contribute and gathers into the canonical order. Range and Point fan out
// to the shards whose bounds intersect the box; WithinDistance to the shards
// whose bounds pass the exact Dist2Point sphere test. KNN is a
// bound-tightening gather: shards are visited in ascending distance from the
// query point, each contributes its local top-k through the shared (Dist2,
// ID) accumulator, and the fan-out stops as soon as the next shard's bound
// exceeds the current k-th distance — ShardsTouched records how many shards
// the gather actually consulted.
//
//neurospatial:hotpath
func (s *Sharded) Do(ctx context.Context, req Request, visit func(Hit)) (QueryStats, error) {
	if err := req.Validate(); err != nil {
		return QueryStats{}, err
	}
	if visit == nil {
		visit = func(Hit) {}
	}
	if s.n == 0 {
		return QueryStats{}, ctxErr(ctx)
	}
	if err := ctxErr(ctx); err != nil {
		return QueryStats{}, err
	}
	if req.paginated() {
		return doPaginated(ctx, s, req, visit)
	}
	switch req.Kind {
	case Range, Point:
		q := req.Box
		if req.Kind == Point {
			q = geom.Box(req.Center, req.Center)
		}
		var hits []Hit
		//lint:ignore hotpath the sharded gather buffers hits per query by design; ceilinged by TestDoHotPathAllocs
		st, err := s.scatter(ctx, req, func(sh *shardState) bool { return sh.bounds.Intersects(q) },
			func(i int, h Hit) { hits = append(hits, Hit{ID: s.shards[i].global[h.ID]}) })
		if err != nil {
			return QueryStats{}, err
		}
		slices.SortFunc(hits, cmpHitID)
		for _, h := range hits {
			visit(h)
		}
		return st, nil
	case WithinDistance:
		r2 := req.Radius * req.Radius
		var hits []Hit
		//lint:ignore hotpath the sharded gather buffers hits per query by design; ceilinged by TestDoHotPathAllocs
		st, err := s.scatter(ctx, req,
			func(sh *shardState) bool { return sh.bounds.Dist2Point(req.Center) <= r2 },
			func(i int, h Hit) { hits = append(hits, Hit{ID: s.shards[i].global[h.ID], Dist2: h.Dist2}) })
		if err != nil {
			return QueryStats{}, err
		}
		slices.SortFunc(hits, cmpHitID)
		for _, h := range hits {
			visit(h)
		}
		return st, nil
	case KNN:
		return s.doKNN(ctx, req, visit)
	}
	return QueryStats{}, &RequestError{Kind: req.Kind, Field: "Kind", Reason: "is not a known query kind"}
}

// doKNN is the sharded bound-tightening kNN gather.
//
//neurospatial:hotpath
func (s *Sharded) doKNN(ctx context.Context, req Request, visit func(Hit)) (QueryStats, error) {
	type shardBound struct {
		d2 float64
		i  int
	}
	//lint:ignore hotpath the shard-order buffer is O(shards) per query by design; ceilinged by TestDoHotPathAllocs
	order := make([]shardBound, len(s.shards))
	for i := range s.shards {
		order[i] = shardBound{s.shards[i].bounds.Dist2Point(req.Center), i}
	}
	slices.SortFunc(order, func(a, b shardBound) int {
		switch {
		case a.d2 < b.d2:
			return -1
		case a.d2 > b.d2:
			return 1
		}
		return a.i - b.i
	})
	acc := getKNNAcc(req.K)
	defer putKNNAcc(acc)
	var subs []QueryStats
	for _, sb := range order {
		if acc.Full() && sb.d2 > acc.Bound() {
			break
		}
		sh := &s.shards[sb.i]
		// Each shard contributes its local top-k; local IDs ascend with
		// global IDs within a shard, so the local tie-break agrees with the
		// global (Dist2, ID) order and the union provably contains the
		// canonical top-k.
		//lint:ignore hotpath one translation closure per consulted shard by design; ceilinged by TestDoHotPathAllocs
		st, err := sh.sub.Do(ctx, req, func(h Hit) {
			acc.Offer(Hit{ID: sh.global[h.ID], Dist2: h.Dist2})
		})
		if err != nil {
			return QueryStats{}, err
		}
		//lint:ignore hotpath per-shard stats gather is O(shards) per query by design; ceilinged by TestDoHotPathAllocs
		subs = append(subs, st)
	}
	st := Aggregate(subs)
	st.ShardsTouched = int64(len(subs))
	hits := acc.Hits()
	st.Results = int64(len(hits))
	for _, h := range hits {
		visit(h)
	}
	return st, nil
}

// iterate implements the internal streaming capability: a lazy k-way merge
// of the kept shards' streams by global ID. Within a shard, local IDs ascend
// with global IDs, so translating each shard's ascending-ID stream yields
// ascending global IDs and the merge preserves the canonical order. Shards
// are primed lazily as the merge is pulled; a consumer that stops early
// leaves every stream's remaining pages unread. The resume position is
// translated into each shard's local ID space, so the per-shard zone maps
// prune pages below the cursor without reading them. KNN serves the bounded
// bound-tightening gather eagerly.
func (s *Sharded) iterate(ctx context.Context, req Request, after *Hit) (HitIterator, error) {
	if s.n == 0 {
		return &sliceIter{}, ctxErr(ctx)
	}
	if req.Kind == KNN {
		return knnEager(func(visit func(Hit)) (QueryStats, error) {
			return s.doKNN(ctx, req, visit)
		}, KNN, after)
	}
	keep := func(sh *shardState) bool { return sh.bounds.Intersects(queryBox(req)) }
	if req.Kind == WithinDistance {
		r2 := req.Radius * req.Radius
		keep = func(sh *shardState) bool { return sh.bounds.Dist2Point(req.Center) <= r2 }
	}
	var its []HitIterator
	for i := range s.shards {
		sh := &s.shards[i]
		if !keep(sh) {
			continue
		}
		sub, ok := sh.sub.(streamer)
		if !ok { // defensive: every engine contender streams
			continue
		}
		var localAfter *Hit
		if after != nil {
			// The largest local ID whose global ID is <= after.ID (resume
			// strictly after it); none mapped means no skip in this shard.
			ub := sort.Search(len(sh.global), func(j int) bool { return sh.global[j] > after.ID })
			if ub > 0 {
				localAfter = &Hit{ID: int32(ub - 1)}
			}
		}
		it, err := sub.iterate(ctx, req, localAfter)
		if err != nil {
			for _, open := range its {
				open.Close()
			}
			return nil, err
		}
		its = append(its, &mapFilterIter{it: it, fn: func(h Hit) (Hit, bool) {
			h.ID = sh.global[h.ID]
			return h, true
		}})
	}
	return newKWayMerge(its, QueryStats{ShardsTouched: int64(len(its))}), nil
}

// Query implements SpatialIndex; hits are emitted in ascending global ID.
//
// Deprecated: route new call sites through Session.Do with a Range request.
func (s *Sharded) Query(q geom.AABB, visit func(int32)) QueryStats {
	if visit == nil {
		visit = func(int32) {}
	}
	return s.queryNative(q, visit)
}

// BatchQuery implements SpatialIndex via the shared deterministic executor:
// queries are the slots, each slot scatters over its shards and gathers.
//
// Deprecated: route new call sites through Session.DoBatch.
func (s *Sharded) BatchQuery(qs []geom.AABB, workers int, visit func(int, int32)) []QueryStats {
	return batchQuery(workers, qs, s.queryNative, visit)
}

// Store implements Paged: the dense global page space over all shards (nil
// before Build or when empty).
func (s *Sharded) Store() *pager.Store { return s.store }

// NumPages implements Paged.
func (s *Sharded) NumPages() int {
	if s.store == nil {
		return 0
	}
	return s.store.NumPages()
}

// PageOf implements Paged: the global page holding item id.
func (s *Sharded) PageOf(id int32) pager.PageID {
	if id < 0 || int(id) >= s.n {
		return pager.InvalidPage
	}
	sh := &s.shards[s.shardOf[id]]
	p := sh.sub.PageOf(s.local[id])
	if p == pager.InvalidPage {
		return pager.InvalidPage
	}
	return sh.pageBase + p
}

// PagesInRange implements Paged: the global pages a query of box q would
// touch, shard by shard in shard order. Shard page spaces are disjoint, so
// no cross-shard deduplication is needed.
func (s *Sharded) PagesInRange(q geom.AABB) []pager.PageID {
	var out []pager.PageID
	for i := range s.shards {
		sh := &s.shards[i]
		if !sh.bounds.Intersects(q) {
			continue
		}
		for _, p := range sh.sub.PagesInRange(q) {
			out = append(out, sh.pageBase+p)
		}
	}
	return out
}

// SetSource implements Paged: src addresses the global page space and
// overrides the per-shard pools while attached.
func (s *Sharded) SetSource(src pager.PageSource) { s.src = src }

// probeLock implements the planner's probeLocker hook.
func (s *Sharded) probeLock() *sync.Mutex { return &s.probeMu }

// Source implements Paged.
func (s *Sharded) Source() pager.PageSource { return s.src }

// PagedQuery implements Paged (and prefetch.Served): one query reading
// through a pool over the global store. Like SetSource, it is configuration
// of the read path — do not run it concurrently with other queries on the
// same Sharded.
func (s *Sharded) PagedQuery(q geom.AABB, pool *pager.BufferPool, visit func(int32)) {
	if s.n == 0 {
		return
	}
	s.pqMu.Lock()
	defer s.pqMu.Unlock()
	old := s.src
	s.src = pool
	defer func() { s.src = old }()
	s.queryNative(q, visit)
}
