package engine

import (
	"sync"

	"neurospatial/internal/pager"
	"neurospatial/internal/rtree"
)

// This file holds the sync.Pool-backed scratch of the Do hot path. The
// pooling discipline, uniform across the engine:
//
//   - get* returns a reset object (len 0 / zeroed fields), put* recycles it;
//     callers release with defer immediately after acquiring, so every exit
//     path — normal return, request error, cancellation panic unwinding
//     through catchCancel — returns the object exactly once.
//   - Pooled memory never escapes into results. Hits are emitted by value
//     through visit callbacks and Result.Hits/iterator buffers are always
//     freshly owned by the caller, so recycling cannot alias live data.
//   - Pools are package-global: a Session, a raw index Do, and concurrent
//     goroutines all share them safely (sync.Pool is concurrency-safe and
//     per-P, so the steady state is one scratch set per core, not per call).

// idCollector is a pooled candidate-ID gather buffer with a visit closure
// pre-bound at pool-construction time: creating a fresh `func(id int32)`
// closure per query is itself a heap allocation, so the closure is built once
// per pooled object and appends into the object's (growing, reused) slice.
type idCollector struct {
	ids       []int32
	visit     func(int32)
	visitItem func(rtree.Item) // the rtree-native visitor form
}

var idCollectorPool = sync.Pool{New: func() any {
	c := &idCollector{ids: make([]int32, 0, 256)}
	c.visit = func(id int32) { c.ids = append(c.ids, id) }
	c.visitItem = func(it rtree.Item) { c.ids = append(c.ids, it.ID) }
	return c
}}

// getIDCollector returns an empty pooled collector.
func getIDCollector() *idCollector {
	c := idCollectorPool.Get().(*idCollector)
	c.ids = c.ids[:0]
	return c
}

// putIDCollector recycles a collector (the grown capacity is what makes the
// steady state alloc-free).
func putIDCollector(c *idCollector) { idCollectorPool.Put(c) }

// pageBound is a (squared distance, page) pair — the element of the ordered
// page scans every contender's doKNN builds.
type pageBound struct {
	d2 float64
	p  pager.PageID
}

// cmpPageBound orders by ascending (distance, page) — the deterministic
// nearest-first page order.
func cmpPageBound(a, b pageBound) int {
	switch {
	case a.d2 < b.d2:
		return -1
	case a.d2 > b.d2:
		return 1
	case a.p < b.p:
		return -1
	case a.p > b.p:
		return 1
	}
	return 0
}

var pageBoundPool = sync.Pool{New: func() any { s := make([]pageBound, 0, 64); return &s }}

// getPageBounds returns an empty pooled order buffer.
func getPageBounds() *[]pageBound { return pageBoundPool.Get().(*[]pageBound) }

// putPageBounds recycles an order buffer.
func putPageBounds(p *[]pageBound) { *p = (*p)[:0]; pageBoundPool.Put(p) }

var knnAccPool = sync.Pool{New: func() any { return &knnAcc{} }}

// getKNNAcc returns a pooled top-k accumulator reset for k.
func getKNNAcc(k int) *knnAcc {
	a := knnAccPool.Get().(*knnAcc)
	a.k = k
	a.h = a.h[:0]
	return a
}

// putKNNAcc recycles an accumulator. Safe after Hits(): hits are copied out
// by value before release.
func putKNNAcc(a *knnAcc) { knnAccPool.Put(a) }

var hitsPool = sync.Pool{New: func() any { s := make([]Hit, 0, 256); return &s }}

// getHits returns an empty pooled []Hit gather buffer.
func getHits() *[]Hit { return hitsPool.Get().(*[]Hit) }

// putHits recycles a gather buffer.
func putHits(p *[]Hit) { *p = (*p)[:0]; hitsPool.Put(p) }

var pageIDScratchPool = sync.Pool{New: func() any { return new(pageIDScratch) }}

// pageIDScratch is the pooled per-traversal page working set of the
// contenders' scans: a stamped seen-set replacing the per-call
// map[PageID]bool allocations of the grid read paths.
type pageIDScratch struct {
	// seen[p] == stamp marks page p visited this traversal; bumping stamp
	// clears the set in O(1). Zero value (stamp 0 vs zeroed slots) would
	// false-positive, so stamp starts at 1 and re-zeroes on wraparound.
	seen  []uint32
	stamp uint32
}

// getPageIDScratch returns a scratch with a cleared seen-set covering at
// least n pages.
func getPageIDScratch(n int) *pageIDScratch {
	s := pageIDScratchPool.Get().(*pageIDScratch)
	if cap(s.seen) < n {
		s.seen = make([]uint32, n)
	}
	s.seen = s.seen[:n]
	s.stamp++
	if s.stamp == 0 { // wrapped: stale slots may hold any value; re-zero once
		clear(s.seen)
		s.stamp = 1
	}
	return s
}

// visited marks page p and reports whether it was already marked.
func (s *pageIDScratch) visited(p int) bool {
	if s.seen[p] == s.stamp {
		return true
	}
	s.seen[p] = s.stamp
	return false
}

func putPageIDScratch(s *pageIDScratch) { pageIDScratchPool.Put(s) }
