// Package scout implements SCOUT (Tauheed et al., VLDB'12), the
// content-aware prefetcher §3 of the demonstrated paper presents.
//
// Location-only prefetchers extrapolate where the user will look next from
// where they looked before; on jagged neuron branches that straight line is
// wrong at every bend. SCOUT instead looks at *what the user is looking at*:
//
//  1. Skeleton reconstruction: while the result of query q is loaded, the
//     capsule segments in q are stitched into a graph by shared endpoints —
//     "SCOUT already starts to reconstruct the dominating structures/the
//     topological skeleton in q and approximates them with a graph" (§3.1).
//     The connected components of this graph are the structures in q.
//  2. Candidate pruning: the structure the user follows must appear in every
//     query of the sequence, so SCOUT intersects the structures present in
//     consecutive queries: "it thus only considers the intersection between
//     the structures leaving the (n−1)th query and the set of structures
//     entering the nth query" (§3.1, Figure 5). After a few steps a single
//     candidate remains.
//  3. Exit extrapolation: the graph is traversed "to find the locations
//     where its edges exit q. At the exit locations, the edges exiting are
//     extrapolated linearly to predict the next query locations", and the
//     pages of those predicted ranges are prefetched.
package scout

import (
	"math"
	"sort"

	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/prefetch"
)

// Options tunes SCOUT; the zero value selects defaults.
type Options struct {
	// Tolerance is the endpoint-matching distance for skeleton
	// reconstruction: segment endpoints within it are considered the same
	// skeleton joint. Zero matches endpoints exactly (bit-equal), which is
	// lossless on this repository's datasets; positive values make the
	// reconstruction robust to resampled or noisy data.
	Tolerance float64
	// MaxPredictions caps how many exit extrapolations are converted into
	// prefetch ranges per step. Default 8 (each exit contributes two
	// lookahead boxes).
	MaxPredictions int
	// PredictRadiusFactor inflates the predicted range relative to the
	// query's half-extent, absorbing the bend deviation of jagged branches
	// between the exit point and the user's actual next position. Default
	// 1.3.
	PredictRadiusFactor float64
}

// Scout is the SCOUT prefetcher. It satisfies prefetch.Prefetcher and keeps
// the candidate set between the steps of one walkthrough; Reset clears it.
type Scout struct {
	opts Options
	// prevCandidates holds the element sets of the structures that were
	// candidates after the previous query.
	prevCandidates []map[int32]struct{}
	// lastCandidates is the candidate count after the latest Predict call,
	// exposed for the E3 pruning experiment.
	lastCandidates int
	// lastCandidateElems unions the elements of the current candidates.
	lastCandidateElems map[int32]struct{}
}

// New returns a Scout with the given options.
func New(opts Options) *Scout {
	if opts.MaxPredictions <= 0 {
		opts.MaxPredictions = 8
	}
	if opts.Tolerance < 0 {
		opts.Tolerance = 0
	}
	if opts.PredictRadiusFactor <= 0 {
		opts.PredictRadiusFactor = 1.3
	}
	return &Scout{opts: opts}
}

// Name implements prefetch.Prefetcher.
func (s *Scout) Name() string { return "scout" }

// Reset implements prefetch.Prefetcher.
func (s *Scout) Reset() {
	s.prevCandidates = nil
	s.lastCandidates = 0
	s.lastCandidateElems = nil
}

// LastCandidateCount returns the number of structures that remained
// candidates after the latest step — the series Figure 5 of the paper
// visualizes shrinking.
func (s *Scout) LastCandidateCount() int { return s.lastCandidates }

// LastCandidateContains reports whether the element id is part of any
// current candidate structure. The E3 experiment uses it with morphology
// ground truth to verify the followed branch is never pruned away.
func (s *Scout) LastCandidateContains(id int32) bool {
	_, ok := s.lastCandidateElems[id]
	return ok
}

// structure is one reconstructed component of the skeleton graph.
type structure struct {
	elems map[int32]struct{}
	exits []exitEdge
}

// exitEdge is a place where a structure's edge leaves the query box.
type exitEdge struct {
	point geom.Vec // boundary crossing
	dir   geom.Vec // unit direction of travel out of the box
}

// Predict implements prefetch.Prefetcher.
func (s *Scout) Predict(ctx *prefetch.Context, q geom.AABB, result []int32, budget int) []pager.PageID {
	structures := s.reconstruct(ctx, q, result)

	// Candidate pruning against the previous step.
	candidates := structures
	if len(s.prevCandidates) > 0 {
		var kept []structure
		for _, st := range structures {
			if s.sharesElement(st.elems) {
				kept = append(kept, st)
			}
		}
		if len(kept) > 0 {
			candidates = kept
		}
		// An empty intersection means the user jumped; fall back to all
		// structures rather than prefetching nothing forever.
	}
	s.prevCandidates = s.prevCandidates[:0]
	s.lastCandidateElems = make(map[int32]struct{})
	for _, st := range candidates {
		s.prevCandidates = append(s.prevCandidates, st.elems)
		for id := range st.elems {
			s.lastCandidateElems[id] = struct{}{}
		}
	}
	s.lastCandidates = len(candidates)

	// Exit extrapolation. The advance distance is the observed stride of
	// the sequence (falling back to the query half-extent on step one).
	radius := q.Size().X / 2
	advance := radius
	if n := len(ctx.History); n >= 2 {
		advance = ctx.History[n-1].Center().Dist(ctx.History[n-2].Center())
		if advance == 0 {
			advance = radius
		}
	}
	// Direction of recent travel, used to rank exits: the exit most aligned
	// with how the user has been moving is the most likely continuation.
	var travel geom.Vec
	if n := len(ctx.History); n >= 2 {
		travel = ctx.History[n-1].Center().Sub(ctx.History[n-2].Center()).Normalize()
	}

	type ranked struct {
		box   geom.AABB
		score float64
	}
	var preds []ranked
	for _, st := range candidates {
		for _, ex := range st.exits {
			score := ex.dir.Dot(travel)
			// Extrapolate one and two strides out: the second box covers
			// the query after next, so by the time the user arrives its
			// pages have had a full think time to load.
			r := radius * s.opts.PredictRadiusFactor
			one := ex.point.Add(ex.dir.Scale(advance))
			preds = append(preds, ranked{box: geom.BoxAround(one, r), score: score})
			two := ex.point.Add(ex.dir.Scale(2 * advance))
			preds = append(preds, ranked{box: geom.BoxAround(two, r), score: score - 0.01})
		}
	}
	sort.SliceStable(preds, func(i, j int) bool { return preds[i].score > preds[j].score })
	if len(preds) > s.opts.MaxPredictions {
		preds = preds[:s.opts.MaxPredictions]
	}

	// Convert predicted ranges to pages, best prediction first.
	var out []pager.PageID
	seen := make(map[pager.PageID]bool)
	for _, pr := range preds {
		for _, pg := range ctx.Index.PagesInRange(pr.box) {
			if !seen[pg] {
				seen[pg] = true
				out = append(out, pg)
			}
			if len(out) >= budget {
				return out
			}
		}
	}
	return out
}

// sharesElement reports whether elems intersects any previous candidate.
func (s *Scout) sharesElement(elems map[int32]struct{}) bool {
	for _, prev := range s.prevCandidates {
		// Iterate over the smaller set.
		small, large := prev, elems
		if len(elems) < len(prev) {
			small, large = elems, prev
		}
		for id := range small {
			if _, ok := large[id]; ok {
				return true
			}
		}
	}
	return false
}

// reconstruct stitches the result segments into skeleton structures.
func (s *Scout) reconstruct(ctx *prefetch.Context, q geom.AABB, result []int32) []structure {
	if len(result) == 0 {
		return nil
	}
	// Union-find over segments, keyed by quantized endpoints.
	parent := make([]int, len(result))
	for i := range parent {
		parent[i] = i
	}
	var find func(int) int
	find = func(x int) int {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	union := func(a, b int) {
		ra, rb := find(a), find(b)
		if ra != rb {
			parent[ra] = rb
		}
	}

	joints := make(map[[3]int64]int, len(result)*2)
	register := func(i int, p geom.Vec) {
		k := s.quantize(p)
		if j, ok := joints[k]; ok {
			union(i, j)
		} else {
			joints[k] = i
		}
	}
	segs := make([]geom.Segment, len(result))
	for i, id := range result {
		seg := ctx.Segment(id)
		segs[i] = seg
		register(i, seg.A)
		register(i, seg.B)
	}

	// Group components and find exits.
	byRoot := make(map[int]*structure)
	var order []int
	for i, id := range result {
		r := find(i)
		st, ok := byRoot[r]
		if !ok {
			st = &structure{elems: make(map[int32]struct{})}
			byRoot[r] = st
			order = append(order, r)
		}
		st.elems[id] = struct{}{}
		if ex, ok := exitOf(segs[i], q); ok {
			st.exits = append(st.exits, ex)
		}
	}
	out := make([]structure, 0, len(order))
	for _, r := range order {
		out = append(out, *byRoot[r])
	}
	return out
}

// quantize maps a point to its joint key. Tolerance zero keys on exact
// coordinates.
func (s *Scout) quantize(p geom.Vec) [3]int64 {
	if s.opts.Tolerance == 0 {
		return [3]int64{
			int64(math.Float64bits(p.X)),
			int64(math.Float64bits(p.Y)),
			int64(math.Float64bits(p.Z)),
		}
	}
	t := s.opts.Tolerance
	return [3]int64{
		int64(math.Round(p.X / t)),
		int64(math.Round(p.Y / t)),
		int64(math.Round(p.Z / t)),
	}
}

// exitOf returns the boundary crossing of a segment leaving the box, if any:
// the point where the segment's axis exits q and the unit direction of
// travel at that point.
func exitOf(seg geom.Segment, q geom.AABB) (exitEdge, bool) {
	aIn := q.Contains(seg.A)
	bIn := q.Contains(seg.B)
	switch {
	case aIn && bIn:
		return exitEdge{}, false
	case aIn && !bIn:
		p := crossing(seg, q)
		return exitEdge{point: p, dir: seg.B.Sub(seg.A).Normalize()}, true
	case !aIn && bIn:
		p := crossing(geom.Seg(seg.B, seg.A, seg.Radius), q)
		return exitEdge{point: p, dir: seg.A.Sub(seg.B).Normalize()}, true
	default:
		// Both endpoints outside: the segment clips a corner or only its
		// radius grazes the box — treat the far endpoint direction as the
		// exit when the axis truly crosses.
		if t0, t1, ok := seg.ClipParamRange(q); ok && t1 > t0 {
			return exitEdge{point: seg.PointAt(t1), dir: seg.B.Sub(seg.A).Normalize()}, true
		}
		return exitEdge{}, false
	}
}

// crossing returns the point where a segment whose A endpoint is inside q
// first leaves the box.
func crossing(seg geom.Segment, q geom.AABB) geom.Vec {
	if _, t1, ok := seg.ClipParamRange(q); ok {
		return seg.PointAt(t1)
	}
	return seg.A
}
