package scout

import (
	"testing"
	"time"

	"neurospatial/internal/circuit"
	"neurospatial/internal/flat"
	"neurospatial/internal/geom"
	"neurospatial/internal/pager"
	"neurospatial/internal/prefetch"
	"neurospatial/internal/query"
	"neurospatial/internal/rtree"
)

// fixture builds a circuit, its FLAT index and a walkthrough along its
// longest branch path.
type fixture struct {
	circ  *circuit.Circuit
	index *flat.Index
	seq   *query.Sequence
	// followed maps element IDs on the followed branch path.
	followed map[int32]bool
}

func buildFixture(t testing.TB, neurons int) *fixture {
	t.Helper()
	p := circuit.DefaultParams()
	p.Neurons = neurons
	p.Volume = geom.Box(geom.V(0, 0, 0), geom.V(300, 300, 300))
	c, err := circuit.Build(p)
	if err != nil {
		t.Fatal(err)
	}
	items := make([]rtree.Item, len(c.Elements))
	for i := range c.Elements {
		items[i] = rtree.Item{Box: c.Elements[i].Bounds(), ID: c.Elements[i].ID}
	}
	idx, err := flat.Build(items, flat.DefaultOptions())
	if err != nil {
		t.Fatal(err)
	}
	neuron, branch, path := c.LongestPath()
	seq, err := query.Walkthrough(path, 8, 15)
	if err != nil {
		t.Fatal(err)
	}
	// Ground truth: elements on the followed stem-to-tip branch chain.
	followed := make(map[int32]bool)
	chain := make(map[int]bool)
	for _, id := range c.Morphologies[neuron].PathToRoot(branch) {
		chain[id] = true
	}
	for _, e := range c.Elements {
		if e.Neuron == neuron && e.Branch >= 0 && chain[int(e.Branch)] {
			followed[e.ID] = true
		}
	}
	return &fixture{circ: c, index: idx, seq: seq, followed: followed}
}

func (f *fixture) simulator() *prefetch.Simulator {
	return &prefetch.Simulator{
		Index:     f.index,
		Segment:   func(id int32) geom.Segment { return f.circ.Elements[id].Shape },
		Cost:      pager.DefaultCostModel(),
		ThinkTime: 500 * time.Millisecond,
		PoolPages: f.index.NumPages(),
	}
}

func (f *fixture) boxes() []geom.AABB {
	out := make([]geom.AABB, f.seq.Len())
	for i, s := range f.seq.Steps {
		out[i] = s.Box
	}
	return out
}

func TestSkeletonReconstructionFindsStructures(t *testing.T) {
	f := buildFixture(t, 10)
	s := New(Options{})
	ctx := &prefetch.Context{
		Index:   f.index,
		Segment: func(id int32) geom.Segment { return f.circ.Elements[id].Shape },
	}
	q := f.seq.Steps[f.seq.Len()/2].Box
	ctx.History = []geom.AABB{q}
	var result []int32
	f.index.Query(q, nil, func(id int32) { result = append(result, id) })
	if len(result) == 0 {
		t.Fatal("mid-walkthrough query empty")
	}
	structures := s.reconstruct(ctx, q, result)
	if len(structures) == 0 {
		t.Fatal("no structures reconstructed")
	}
	// Structures partition the result.
	seen := make(map[int32]bool)
	total := 0
	for _, st := range structures {
		total += len(st.elems)
		for id := range st.elems {
			if seen[id] {
				t.Fatal("element in two structures")
			}
			seen[id] = true
		}
	}
	if total != len(result) {
		t.Fatalf("structures hold %d of %d elements", total, len(result))
	}
	// Elements of one branch never split across structures: every pair of
	// consecutive segments shares an endpoint.
	byBranch := make(map[[2]int32][]int32)
	for _, id := range result {
		e := f.circ.Elements[id]
		if e.Branch >= 0 {
			k := [2]int32{e.Neuron, e.Branch}
			byBranch[k] = append(byBranch[k], id)
		}
	}
	structOf := func(id int32) int {
		for i, st := range structures {
			if _, ok := st.elems[id]; ok {
				return i
			}
		}
		return -1
	}
	for k, ids := range byBranch {
		// Only consecutive segments are guaranteed connected inside q.
		for i := 0; i+1 < len(ids); i++ {
			a, b := f.circ.Elements[ids[i]], f.circ.Elements[ids[i+1]]
			if b.Seg == a.Seg+1 && structOf(ids[i]) != structOf(ids[i+1]) {
				t.Fatalf("branch %v consecutive segments split across structures", k)
			}
		}
	}
}

func TestExitDetection(t *testing.T) {
	q := geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10))
	// Leaves through the +X face.
	ex, ok := exitOf(geom.Seg(geom.V(8, 5, 5), geom.V(14, 5, 5), 0.1), q)
	if !ok {
		t.Fatal("exit not detected")
	}
	if ex.point.Dist(geom.V(10, 5, 5)) > 1e-9 {
		t.Errorf("exit point %v", ex.point)
	}
	if ex.dir.Dist(geom.V(1, 0, 0)) > 1e-9 {
		t.Errorf("exit dir %v", ex.dir)
	}
	// Enters (A outside, B inside): the exit direction points outward.
	ex, ok = exitOf(geom.Seg(geom.V(14, 5, 5), geom.V(8, 5, 5), 0.1), q)
	if !ok {
		t.Fatal("reverse exit not detected")
	}
	if ex.dir.Dist(geom.V(1, 0, 0)) > 1e-9 {
		t.Errorf("reverse exit dir %v", ex.dir)
	}
	// Fully inside: no exit.
	if _, ok := exitOf(geom.Seg(geom.V(2, 2, 2), geom.V(8, 8, 8), 0.1), q); ok {
		t.Error("interior segment reported an exit")
	}
	// Crossing corner-to-corner (both endpoints outside).
	ex, ok = exitOf(geom.Seg(geom.V(-5, 5, 5), geom.V(15, 5, 5), 0.1), q)
	if !ok {
		t.Fatal("through-segment exit not detected")
	}
	if ex.point.Dist(geom.V(10, 5, 5)) > 1e-9 {
		t.Errorf("through-segment exit at %v", ex.point)
	}
}

func TestCandidatePruningConverges(t *testing.T) {
	f := buildFixture(t, 10)
	sim := f.simulator()
	s := New(Options{})
	if _, err := sim.Run(s, f.boxes()); err != nil {
		t.Fatal(err)
	}
	// After a full walkthrough the candidate set must have shrunk to a
	// handful of structures (ideally 1; bifurcations can keep siblings).
	if s.LastCandidateCount() == 0 {
		t.Fatal("no candidates at walkthrough end")
	}
	if s.LastCandidateCount() > 4 {
		t.Errorf("candidate set did not converge: %d structures", s.LastCandidateCount())
	}
}

func TestFollowedBranchNeverPruned(t *testing.T) {
	f := buildFixture(t, 10)
	s := New(Options{})
	ctx := &prefetch.Context{
		Index:   f.index,
		Segment: func(id int32) geom.Segment { return f.circ.Elements[id].Shape },
	}
	budget := 64
	for _, step := range f.seq.Steps {
		ctx.History = append(ctx.History, step.Box)
		var result []int32
		f.index.Query(step.Box, nil, func(id int32) { result = append(result, id) })
		s.Predict(ctx, step.Box, result, budget)
		// Any followed element in this result must be in a candidate.
		for _, id := range result {
			if f.followed[id] && !s.LastCandidateContains(id) {
				t.Fatalf("followed element %d pruned from candidates", id)
			}
		}
	}
}

func TestResetClearsState(t *testing.T) {
	f := buildFixture(t, 8)
	sim := f.simulator()
	s := New(Options{})
	r1, err := sim.Run(s, f.boxes())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := sim.Run(s, f.boxes())
	if err != nil {
		t.Fatal(err)
	}
	// Reset makes runs reproducible.
	if r1.DemandReads != r2.DemandReads || r1.PrefetchReads != r2.PrefetchReads {
		t.Errorf("runs differ after Reset: %+v vs %+v",
			r1.DemandReads, r2.DemandReads)
	}
	s.Reset()
	if s.LastCandidateCount() != 0 || s.LastCandidateContains(0) {
		t.Error("Reset did not clear candidates")
	}
}

func TestEmptyResultPredictsNothing(t *testing.T) {
	f := buildFixture(t, 8)
	s := New(Options{})
	ctx := &prefetch.Context{
		Index:   f.index,
		Segment: func(id int32) geom.Segment { return f.circ.Elements[id].Shape },
		History: []geom.AABB{geom.BoxAround(geom.V(1e5, 1e5, 1e5), 10)},
	}
	if got := s.Predict(ctx, ctx.History[0], nil, 10); len(got) != 0 {
		t.Errorf("empty result produced %d predictions", len(got))
	}
	if s.LastCandidateCount() != 0 {
		t.Error("candidates from empty result")
	}
}

func TestQuantizeTolerance(t *testing.T) {
	exact := New(Options{})
	a := geom.V(1.0000001, 2, 3)
	b := geom.V(1.0000002, 2, 3)
	if exact.quantize(a) == exact.quantize(b) {
		t.Error("exact quantization merged distinct points")
	}
	loose := New(Options{Tolerance: 0.01})
	if loose.quantize(a) != loose.quantize(b) {
		t.Error("tolerant quantization split near-identical points")
	}
}

// The headline comparison: SCOUT must beat the location-only baselines on
// walkthrough latency and keep high accuracy (Figure 6's statistics).
func TestScoutBeatsBaselines(t *testing.T) {
	f := buildFixture(t, 12)
	sim := f.simulator()
	boxes := f.boxes()
	if len(boxes) < 10 {
		t.Fatal("walkthrough too short to be meaningful")
	}

	none, err := sim.Run(prefetch.None{}, boxes)
	if err != nil {
		t.Fatal(err)
	}
	extrap, err := sim.Run(prefetch.Extrapolation{}, boxes)
	if err != nil {
		t.Fatal(err)
	}
	sc, err := sim.Run(New(Options{}), boxes)
	if err != nil {
		t.Fatal(err)
	}

	if none.PrefetchReads != 0 {
		t.Error("baseline 'none' prefetched")
	}
	if sc.Latency >= none.Latency {
		t.Errorf("SCOUT latency %v not below no-prefetch %v", sc.Latency, none.Latency)
	}
	if sc.Latency > extrap.Latency {
		t.Errorf("SCOUT latency %v above extrapolation %v", sc.Latency, extrap.Latency)
	}
	if sc.PrefetchHits == 0 {
		t.Error("SCOUT had no prefetch hits")
	}
	// All methods return identical results.
	if sc.Elements != none.Elements || extrap.Elements != none.Elements {
		t.Errorf("element counts differ: none=%d extrap=%d scout=%d",
			none.Elements, extrap.Elements, sc.Elements)
	}
}
