package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
	"testing"
)

func TestWorkers(t *testing.T) {
	if got := Workers(3); got != 3 {
		t.Errorf("Workers(3) = %d", got)
	}
	if got := Workers(1); got != 1 {
		t.Errorf("Workers(1) = %d", got)
	}
	for _, n := range []int{0, -1, -100} {
		got := Workers(n)
		if got < 1 {
			t.Errorf("Workers(%d) = %d, want >= 1", n, got)
		}
		if runtime.NumCPU() > 1 && got != runtime.NumCPU() {
			t.Errorf("Workers(%d) = %d, want NumCPU = %d", n, got, runtime.NumCPU())
		}
	}
}

func TestSplit(t *testing.T) {
	for _, tc := range []struct {
		n, parts int
		want     int // number of ranges
	}{
		{0, 4, 0},
		{-3, 4, 0},
		{1, 4, 1},
		{4, 4, 4},
		{10, 3, 3},
		{10, 0, 1},
		{100, 7, 7},
	} {
		rs := Split(tc.n, tc.parts)
		if len(rs) != tc.want {
			t.Errorf("Split(%d, %d) gave %d ranges, want %d", tc.n, tc.parts, len(rs), tc.want)
			continue
		}
		// Ranges must tile [0, n) exactly, in order, with sizes differing by
		// at most one.
		next := 0
		minLen, maxLen := tc.n+1, 0
		for _, r := range rs {
			if r.Lo != next {
				t.Errorf("Split(%d, %d): range %v does not start at %d", tc.n, tc.parts, r, next)
			}
			if r.Len() <= 0 {
				t.Errorf("Split(%d, %d): empty range %v", tc.n, tc.parts, r)
			}
			if r.Len() < minLen {
				minLen = r.Len()
			}
			if r.Len() > maxLen {
				maxLen = r.Len()
			}
			next = r.Hi
		}
		if tc.n > 0 && next != tc.n {
			t.Errorf("Split(%d, %d): ranges end at %d", tc.n, tc.parts, next)
		}
		if tc.n > 0 && maxLen-minLen > 1 {
			t.Errorf("Split(%d, %d): range sizes span [%d, %d]", tc.n, tc.parts, minLen, maxLen)
		}
	}
}

func TestForEachCoversEverySlotOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 4, 13} {
		const n = 1000
		var hits [n]atomic.Int32
		ForEach(workers, n, func(worker, slot int) {
			if worker < 0 || worker >= Workers(workers) {
				t.Errorf("worker id %d out of range", worker)
			}
			hits[slot].Add(1)
		})
		for i := range hits {
			if got := hits[i].Load(); got != 1 {
				t.Fatalf("workers=%d: slot %d visited %d times", workers, i, got)
			}
		}
	}
}

func TestForEachEmpty(t *testing.T) {
	called := false
	ForEach(4, 0, func(int, int) { called = true })
	if called {
		t.Error("ForEach called fn for n=0")
	}
}

func TestCollectIsOrderDeterministic(t *testing.T) {
	const n = 500
	// Each slot emits a variable number of values; the merged stream must be
	// identical to the serial order for every worker count.
	work := func(worker, slot int, emit func(int)) {
		for k := 0; k <= slot%3; k++ {
			emit(slot*10 + k)
		}
	}
	var want []int
	Collect(1, n, work, func(v int) { want = append(want, v) })
	for _, workers := range []int{2, 3, 8} {
		var got []int
		Collect(workers, n, work, func(v int) { got = append(got, v) })
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d values, want %d", workers, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: value %d is %d, want %d", workers, i, got[i], want[i])
			}
		}
	}
}

func TestMap(t *testing.T) {
	got := Map(4, 100, func(worker, slot int) int { return slot * slot })
	if len(got) != 100 {
		t.Fatalf("Map returned %d results", len(got))
	}
	for i, v := range got {
		if v != i*i {
			t.Errorf("Map[%d] = %d, want %d", i, v, i*i)
		}
	}
	if Map(4, 0, func(int, int) int { return 0 }) != nil {
		t.Error("Map with n=0 should return nil")
	}
}

func TestDo(t *testing.T) {
	var a, b, c atomic.Int32
	Do(
		func() { a.Store(1) },
		func() { b.Store(2) },
		func() { c.Store(3) },
	)
	if a.Load() != 1 || b.Load() != 2 || c.Load() != 3 {
		t.Errorf("Do left %d %d %d", a.Load(), b.Load(), c.Load())
	}
	Do(func() { a.Store(9) }) // single-function fast path
	if a.Load() != 9 {
		t.Error("Do single-function path did not run")
	}
}

// TestBatchMatchesSerial asserts the generic batch executor's core
// guarantee: for any worker count, visit observes exactly the (slot, hit)
// sequence of a serial loop, and the per-slot summaries are identical.
func TestBatchMatchesSerial(t *testing.T) {
	const n = 37
	run := func(qi int, emit func(int)) int {
		// Slot qi emits qi%5 hits: deterministic, skewed sizes.
		for k := 0; k < qi%5; k++ {
			emit(qi*100 + k)
		}
		return qi * 7
	}
	type pair struct{ q, h int }
	var want []pair
	wantSums := Batch(1, n, run, func(q, h int) { want = append(want, pair{q, h}) })
	for _, w := range []int{0, 2, 3, 8, -1} {
		var got []pair
		sums := Batch(w, n, run, func(q, h int) { got = append(got, pair{q, h}) })
		if len(got) != len(want) {
			t.Fatalf("workers=%d: %d hits, want %d", w, len(got), len(want))
		}
		for i := range got {
			if got[i] != want[i] {
				t.Fatalf("workers=%d: hit %d is %+v, want %+v", w, i, got[i], want[i])
			}
		}
		for i := range sums {
			if sums[i] != wantSums[i] {
				t.Errorf("workers=%d: summary %d = %d, want %d", w, i, sums[i], wantSums[i])
			}
		}
	}
	// nil visit: summaries only, no panic.
	sums := Batch(4, n, run, nil)
	for i := range sums {
		if sums[i] != i*7 {
			t.Errorf("nil-visit summary %d = %d", i, sums[i])
		}
	}
	if got := Batch(4, 0, run, nil); len(got) != 0 {
		t.Errorf("empty batch returned %d summaries", len(got))
	}
}

// TestWorkerCountInvariance pins the determinism contract of the per-worker
// buffered executors after the segment-table rework: for every worker count,
// Collect, Batch and BatchCtx must deliver byte-for-byte the serial loop's
// output, including under heavy emission skew (slot i emits i%5 values, so
// worker buffers interleave segments from many slots).
func TestWorkerCountInvariance(t *testing.T) {
	const n = 257
	emitSlot := func(slot int, emit func(int)) {
		for j := 0; j < slot%5; j++ {
			emit(slot*100 + j)
		}
	}
	var want []int
	for i := 0; i < n; i++ {
		emitSlot(i, func(v int) { want = append(want, v) })
	}
	for _, w := range []int{1, 2, 3, 4, 7, 16, n, n + 9} {
		var got []int
		Collect(w, n, func(_, slot int, emit func(int)) {
			emitSlot(slot, emit)
		}, func(v int) { got = append(got, v) })
		if len(got) != len(want) {
			t.Fatalf("Collect workers=%d: %d values, want %d", w, len(got), len(want))
		}
		for i := range want {
			if got[i] != want[i] {
				t.Fatalf("Collect workers=%d: value %d = %d, want %d", w, i, got[i], want[i])
			}
		}

		got = got[:0]
		var slots []int
		sums, err := BatchCtx(nil, w, n, func(qi int, emit func(int)) (int, error) {
			emitSlot(qi, emit)
			return qi * 3, nil
		}, func(qi, v int) { slots = append(slots, qi); got = append(got, v) })
		if err != nil {
			t.Fatalf("BatchCtx workers=%d: %v", w, err)
		}
		for i := range want {
			if got[i] != want[i] || slots[i] != want[i]/100 {
				t.Fatalf("BatchCtx workers=%d: visit %d = (%d,%d), want (%d,%d)",
					w, i, slots[i], got[i], want[i]/100, want[i])
			}
		}
		for qi, s := range sums {
			if s != qi*3 {
				t.Fatalf("BatchCtx workers=%d: summary %d = %d", w, qi, s)
			}
		}
	}
}

// TestBufferedExecutorsConcurrent exercises the pooled segment/error tables
// under concurrent invocations with different element types and sizes: runs
// must never observe each other's state (run with -race to check the pooled
// tables are handed out exclusively).
func TestBufferedExecutorsConcurrent(t *testing.T) {
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for iter := 0; iter < 25; iter++ {
				n := 10 + (g+iter)%40
				if g%2 == 0 {
					var got []int
					Collect(4, n, func(_, slot int, emit func(int)) {
						emit(slot)
					}, func(v int) { got = append(got, v) })
					for i := 0; i < n; i++ {
						if got[i] != i {
							t.Errorf("goroutine %d: Collect slot %d = %d", g, i, got[i])
							return
						}
					}
				} else {
					var got []string
					_, err := BatchCtx(nil, 4, n, func(qi int, emit func(string)) (struct{}, error) {
						if qi%2 == 0 {
							emit("s")
						}
						return struct{}{}, nil
					}, func(qi int, s string) { got = append(got, s) })
					if err != nil {
						t.Errorf("goroutine %d: BatchCtx error %v", g, err)
						return
					}
					if len(got) != (n+1)/2 {
						t.Errorf("goroutine %d: %d visits, want %d", g, len(got), (n+1)/2)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
}
