// Package parallel is the shared work-scheduling layer under every
// multi-core code path of the repository: the batched range-query APIs of
// flat and rtree, the parallel build and probe phases of the PBSM, S3 and
// TOUCH joins, and parallel tissue generation.
//
// The design goal is determinism: a parallel execution must produce exactly
// the same observable output as the serial one, independent of the worker
// count and of goroutine scheduling. The package achieves it with one
// pattern, extracted from TOUCH's original probe-phase parallelism:
//
//   - work is split into indexed slots (one per query, grid cell, bucket,
//     node pair, or neuron);
//   - a bounded pool of workers pulls contiguous chunks of slot indexes off
//     an atomic cursor, so load balances dynamically without per-item
//     channel traffic;
//   - anything a slot emits is buffered per slot, and the buffers are merged
//     in slot order after the pool drains.
//
// Slot order equals serial iteration order, so the merged output is
// byte-for-byte the order a single-threaded loop would have produced. The
// differential tests in the repository root assert exactly that property for
// every join algorithm and batch-query path.
//
// Mutable per-worker state (scratch stacks, stats accumulators) is indexed
// by the worker id passed to every callback; workers never share mutable
// state, so the hot loops run lock-free.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values > 0 are returned as-is;
// zero and negative values select runtime.NumCPU(). The result is always at
// least 1.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if c := runtime.NumCPU(); c > 1 {
		return c
	}
	return 1
}

// Range is a half-open slot interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of slots in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions [0, n) into at most parts contiguous near-equal ranges,
// larger ranges first. It returns fewer ranges when n < parts and nil when
// n <= 0. Batch builders use it to give each worker one contiguous block
// whose partial results can be concatenated in block order.
func Split(n, parts int) []Range {
	if n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([]Range, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		size := (n - lo) / (parts - i)
		if rem := (n - lo) % (parts - i); rem > 0 {
			size++
		}
		out = append(out, Range{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// ForEach runs fn(worker, slot) for every slot in [0, n) across a bounded
// pool of workers. Slots are handed out in contiguous chunks via an atomic
// cursor, so the scheduling is dynamic (a slow slot does not stall the
// others) while each chunk still runs in ascending slot order. worker is in
// [0, Workers(workers)) and identifies the goroutine, so callbacks can index
// per-worker scratch state without locks.
//
// When the resolved worker count is 1 (or n <= 1), fn runs on the calling
// goroutine with worker == 0 and no goroutines are spawned.
func ForEach(workers, n int, fn func(worker, slot int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Aim for several chunks per worker so dynamic scheduling can balance
	// skewed slot costs, but keep chunks coarse enough that the cursor is
	// not contended.
	chunk := n / (w * 4)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		go func(wk int) {
			defer wg.Done()
			for {
				hi := int(cursor.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(wk, i)
				}
			}
		}(wk)
	}
	wg.Wait()
}

// Collect runs work for every slot in [0, n) across the pool and delivers
// everything the slots emit to sink in slot order — the deterministic
// ordered merge of per-slot result buffers. Within one slot, emissions keep
// their emit order; across slots, slot order rules. The net effect: sink
// observes exactly the sequence a serial loop `for i { work(0, i, sink) }`
// would produce, for any worker count.
//
// work must not retain its emit function past its own return. sink runs on
// the calling goroutine only.
func Collect[T any](workers, n int, work func(worker, slot int, emit func(T)), sink func(T)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w <= 1 || n == 1 {
		for i := 0; i < n; i++ {
			work(0, i, sink)
		}
		return
	}
	bufs := make([][]T, n)
	ForEach(w, n, func(worker, slot int) {
		work(worker, slot, func(t T) { bufs[slot] = append(bufs[slot], t) })
	})
	for _, buf := range bufs {
		for _, t := range buf {
			sink(t)
		}
	}
}

// Batch is the deterministic batch-query executor shared by every index in
// the repository (flat, rtree, and the engine layer): run executes slot qi,
// emitting hits of type H and returning that slot's summary of type S; visit
// receives exactly the (slot, hit) pairs a serial loop would produce, in the
// same order, for any worker count.
//
// The worker contract matches every Workers knob in the repository: 0 or 1
// executes serially on the calling goroutine (hits are delivered to visit as
// they are found, with no buffering), values > 1 use that many workers, and
// negative values use one worker per CPU. Under parallel execution each
// slot's hits are buffered and replayed in slot order after the pool drains;
// visit runs on the calling goroutine only. A nil visit skips result
// buffering entirely (summaries only).
func Batch[S, H any](workers, n int, run func(qi int, emit func(H)) S,
	visit func(qi int, h H)) []S {

	out := make([]S, n)
	w := 1
	if workers != 0 && workers != 1 {
		w = Workers(workers)
	}
	if w <= 1 || n <= 1 {
		for qi := 0; qi < n; qi++ {
			qi := qi
			out[qi] = run(qi, func(h H) {
				if visit != nil {
					visit(qi, h)
				}
			})
		}
		return out
	}
	if visit == nil {
		ForEach(w, n, func(_, qi int) {
			out[qi] = run(qi, func(H) {})
		})
		return out
	}
	bufs := make([][]H, n)
	ForEach(w, n, func(_, qi int) {
		out[qi] = run(qi, func(h H) { bufs[qi] = append(bufs[qi], h) })
	})
	for qi := range bufs {
		for _, h := range bufs[qi] {
			visit(qi, h)
		}
	}
	return out
}

// BatchCtx is Batch with context cancellation and per-slot errors — the
// executor under the engine's Session.DoBatch. The determinism contract is
// all-or-nothing: on success the visits are exactly the serial loop's output
// in slot order (the Batch guarantee); on failure nothing is visited and the
// error is deterministic.
//
// Cancellation is checked before every slot in every worker (and the slot
// runners themselves check at page-read granularity via their page sources),
// so a canceled batch stops promptly: in-flight slots abort at their next
// page read, unstarted slots never run. A canceled ctx always wins the error:
// BatchCtx returns (nil, ctx.Err()). Slot errors unrelated to ctx do not stop
// other slots (they are expected to be rare — request validation happens
// before execution); after the pool drains, the error of the lowest-indexed
// failed slot is returned, so the reported error does not depend on
// scheduling.
func BatchCtx[S, H any](ctx context.Context, workers, n int,
	run func(qi int, emit func(H)) (S, error),
	visit func(qi int, h H)) ([]S, error) {

	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]S, n)
	if n == 0 {
		return out, nil
	}
	errs := make([]error, n)
	var bufs [][]H
	if visit != nil {
		bufs = make([][]H, n)
	}
	runSlot := func(qi int) {
		if ctx.Err() != nil {
			return
		}
		emit := func(H) {}
		if visit != nil {
			emit = func(h H) { bufs[qi] = append(bufs[qi], h) }
		}
		out[qi], errs[qi] = run(qi, emit)
	}
	w := 1
	if workers != 0 && workers != 1 {
		w = Workers(workers)
	}
	if w <= 1 || n <= 1 {
		for qi := 0; qi < n; qi++ {
			runSlot(qi)
		}
	} else {
		ForEach(w, n, func(_, qi int) { runSlot(qi) })
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for qi := range errs {
		if errs[qi] != nil {
			return nil, errs[qi]
		}
	}
	if visit != nil {
		for qi := range bufs {
			for _, h := range bufs[qi] {
				visit(qi, h)
			}
		}
	}
	return out, nil
}

// Map runs fn for every slot in [0, n) across the pool and returns the
// results indexed by slot.
func Map[T any](workers, n int, fn func(worker, slot int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	ForEach(workers, n, func(worker, slot int) {
		out[slot] = fn(worker, slot)
	})
	return out
}

// Do runs the given functions concurrently, one goroutine each (bounded by
// the number of functions), and returns when all have finished. Join builds
// use it to construct the two operand indexes at the same time.
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
}
