// Package parallel is the shared work-scheduling layer under every
// multi-core code path of the repository: the batched range-query APIs of
// flat and rtree, the parallel build and probe phases of the PBSM, S3 and
// TOUCH joins, and parallel tissue generation.
//
// The design goal is determinism: a parallel execution must produce exactly
// the same observable output as the serial one, independent of the worker
// count and of goroutine scheduling. The package achieves it with one
// pattern, extracted from TOUCH's original probe-phase parallelism:
//
//   - work is split into indexed slots (one per query, grid cell, bucket,
//     node pair, or neuron);
//   - a bounded pool of workers pulls contiguous chunks of slot indexes off
//     an atomic cursor, so load balances dynamically without per-item
//     channel traffic;
//   - anything a slot emits is buffered per slot, and the buffers are merged
//     in slot order after the pool drains.
//
// Slot order equals serial iteration order, so the merged output is
// byte-for-byte the order a single-threaded loop would have produced. The
// differential tests in the repository root assert exactly that property for
// every join algorithm and batch-query path.
//
// Mutable per-worker state (scratch stacks, stats accumulators) is indexed
// by the worker id passed to every callback; workers never share mutable
// state, so the hot loops run lock-free.
package parallel

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a requested worker count: values > 0 are returned as-is;
// zero and negative values select runtime.NumCPU(). The result is always at
// least 1.
func Workers(n int) int {
	if n > 0 {
		return n
	}
	if c := runtime.NumCPU(); c > 1 {
		return c
	}
	return 1
}

// Range is a half-open slot interval [Lo, Hi).
type Range struct {
	Lo, Hi int
}

// Len returns the number of slots in the range.
func (r Range) Len() int { return r.Hi - r.Lo }

// Split partitions [0, n) into at most parts contiguous near-equal ranges,
// larger ranges first. It returns fewer ranges when n < parts and nil when
// n <= 0. Batch builders use it to give each worker one contiguous block
// whose partial results can be concatenated in block order.
func Split(n, parts int) []Range {
	if n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([]Range, 0, parts)
	lo := 0
	for i := 0; i < parts; i++ {
		size := (n - lo) / (parts - i)
		if rem := (n - lo) % (parts - i); rem > 0 {
			size++
		}
		out = append(out, Range{Lo: lo, Hi: lo + size})
		lo += size
	}
	return out
}

// ForEach runs fn(worker, slot) for every slot in [0, n) across a bounded
// pool of workers. Slots are handed out in contiguous chunks via an atomic
// cursor, so the scheduling is dynamic (a slow slot does not stall the
// others) while each chunk still runs in ascending slot order. worker is in
// [0, Workers(workers)) and identifies the goroutine, so callbacks can index
// per-worker scratch state without locks.
//
// When the resolved worker count is 1 (or n <= 1), fn runs on the calling
// goroutine with worker == 0 and no goroutines are spawned.
//
//neurospatial:hotpath
func ForEach(workers, n int, fn func(worker, slot int)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			fn(0, i)
		}
		return
	}
	// Aim for several chunks per worker so dynamic scheduling can balance
	// skewed slot costs, but keep chunks coarse enough that the cursor is
	// not contended.
	chunk := n / (w * 4)
	if chunk < 1 {
		chunk = 1
	}
	var cursor atomic.Int64
	var wg sync.WaitGroup
	for wk := 0; wk < w; wk++ {
		wg.Add(1)
		//lint:ignore hotpath w goroutine closures per call — worker count, not slot count
		go func(wk int) {
			defer wg.Done()
			for {
				hi := int(cursor.Add(int64(chunk)))
				lo := hi - chunk
				if lo >= n {
					return
				}
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(wk, i)
				}
			}
		}(wk)
	}
	wg.Wait()
}

// seg records where one slot's emissions landed: the half-open interval
// [start, end) of the owning worker's emission buffer. Each slot runs wholly
// on one worker, and a worker executes its slots one at a time, so the
// interval is contiguous and written race-free by that worker alone.
type seg struct {
	worker, start, end int
}

// segPool recycles the per-call slot→segment tables. The table is the only
// O(slots) allocation of the buffered executors; pooling it (and keeping the
// emission buffers per worker rather than per slot) makes the steady-state
// allocation profile of a batch proportional to the worker count, not the
// batch size.
var segPool = sync.Pool{New: func() any {
	b := make([]seg, 0, 64)
	return &b
}}

// getSegs returns a pooled slot→segment table of length n (zeroed by
// construction: every slot writes its entry before it is read).
//
//neurospatial:hotpath
func getSegs(n int) (*[]seg, []seg) {
	box := segPool.Get().(*[]seg)
	b := *box
	if cap(b) < n {
		//lint:ignore hotpath pool refill when the table first grows to n slots; amortized across the pool
		b = make([]seg, n)
	} else {
		b = b[:n]
	}
	return box, b
}

// putSegs recycles a table obtained from getSegs.
//
//neurospatial:hotpath
func putSegs(box *[]seg, b []seg) {
	*box = b[:0]
	segPool.Put(box)
}

// workerBuf is one worker's emission buffer plus its reusable emit closure.
// The closure is bound once per worker (not once per slot), so a batch of n
// slots on w workers creates w closures, not n.
type workerBuf[T any] struct {
	buf  []T
	emit func(T)
}

// newWorkerBufs returns w bound worker buffers.
func newWorkerBufs[T any](w int) []workerBuf[T] {
	wbs := make([]workerBuf[T], w)
	for i := range wbs {
		wb := &wbs[i]
		wb.emit = func(t T) { wb.buf = append(wb.buf, t) }
	}
	return wbs
}

// Collect runs work for every slot in [0, n) across the pool and delivers
// everything the slots emit to sink in slot order — the deterministic
// ordered merge of per-worker result buffers. Within one slot, emissions keep
// their emit order; across slots, slot order rules. The net effect: sink
// observes exactly the sequence a serial loop `for i { work(0, i, sink) }`
// would produce, for any worker count.
//
// Emissions are buffered per worker (each slot's output is a contiguous
// segment of its worker's buffer), so buffering allocates with the worker
// count rather than the slot count; the slot→segment table that drives the
// ordered replay is pooled.
//
// work must not retain its emit function past its own return. sink runs on
// the calling goroutine only.
func Collect[T any](workers, n int, work func(worker, slot int, emit func(T)), sink func(T)) {
	if n <= 0 {
		return
	}
	w := Workers(workers)
	if w > n {
		w = n
	}
	if w <= 1 {
		for i := 0; i < n; i++ {
			work(0, i, sink)
		}
		return
	}
	wbs := newWorkerBufs[T](w)
	segBox, segs := getSegs(n)
	ForEach(w, n, func(worker, slot int) {
		wb := &wbs[worker]
		start := len(wb.buf)
		work(worker, slot, wb.emit)
		segs[slot] = seg{worker, start, len(wb.buf)}
	})
	for _, sg := range segs {
		for _, t := range wbs[sg.worker].buf[sg.start:sg.end] {
			sink(t)
		}
	}
	putSegs(segBox, segs)
}

// Batch is the deterministic batch-query executor shared by every index in
// the repository (flat, rtree, and the engine layer): run executes slot qi,
// emitting hits of type H and returning that slot's summary of type S; visit
// receives exactly the (slot, hit) pairs a serial loop would produce, in the
// same order, for any worker count.
//
// The worker contract matches every Workers knob in the repository: 0 or 1
// executes serially on the calling goroutine (hits are delivered to visit as
// they are found, with no buffering), values > 1 use that many workers, and
// negative values use one worker per CPU. Under parallel execution each
// slot's hits are buffered and replayed in slot order after the pool drains;
// visit runs on the calling goroutine only. A nil visit skips result
// buffering entirely (summaries only).
func Batch[S, H any](workers, n int, run func(qi int, emit func(H)) S,
	visit func(qi int, h H)) []S {

	out := make([]S, n)
	w := 1
	if workers != 0 && workers != 1 {
		w = Workers(workers)
	}
	if w > n {
		w = n
	}
	if w <= 1 || n <= 1 {
		for qi := 0; qi < n; qi++ {
			qi := qi
			out[qi] = run(qi, func(h H) {
				if visit != nil {
					visit(qi, h)
				}
			})
		}
		return out
	}
	if visit == nil {
		ForEach(w, n, func(_, qi int) {
			out[qi] = run(qi, discard[H])
		})
		return out
	}
	wbs := newWorkerBufs[H](w)
	segBox, segs := getSegs(n)
	ForEach(w, n, func(worker, qi int) {
		wb := &wbs[worker]
		start := len(wb.buf)
		out[qi] = run(qi, wb.emit)
		segs[qi] = seg{worker, start, len(wb.buf)}
	})
	for qi, sg := range segs {
		for _, h := range wbs[sg.worker].buf[sg.start:sg.end] {
			visit(qi, h)
		}
	}
	putSegs(segBox, segs)
	return out
}

// discard is the no-op emit handed to slot runners when the caller asked for
// summaries only. A named function (rather than a literal) so the buffered
// executors do not allocate a closure per slot for it.
func discard[H any](H) {}

// BatchCtx is Batch with context cancellation and per-slot errors — the
// executor under the engine's Session.DoBatch. The determinism contract is
// all-or-nothing: on success the visits are exactly the serial loop's output
// in slot order (the Batch guarantee); on failure nothing is visited and the
// error is deterministic.
//
// Cancellation is checked before every slot in every worker (and the slot
// runners themselves check at page-read granularity via their page sources),
// so a canceled batch stops promptly: in-flight slots abort at their next
// page read, unstarted slots never run. A canceled ctx always wins the error:
// BatchCtx returns (nil, ctx.Err()). Slot errors unrelated to ctx do not stop
// other slots (they are expected to be rare — request validation happens
// before execution); after the pool drains, the error of the lowest-indexed
// failed slot is returned, so the reported error does not depend on
// scheduling.
func BatchCtx[S, H any](ctx context.Context, workers, n int,
	run func(qi int, emit func(H)) (S, error),
	visit func(qi int, h H)) ([]S, error) {

	if ctx == nil {
		ctx = context.Background()
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	out := make([]S, n)
	if n == 0 {
		return out, nil
	}
	errsBox, errs := getErrs(n)
	defer putErrs(errsBox, errs)
	w := 1
	if workers != 0 && workers != 1 {
		w = Workers(workers)
	}
	if w > n {
		w = n
	}
	var wbs []workerBuf[H]
	var segs []seg
	if visit != nil {
		wbs = newWorkerBufs[H](w)
		segBox, segSlice := getSegs(n)
		segs = segSlice
		defer putSegs(segBox, segSlice)
	}
	runSlot := func(worker, qi int) {
		if ctx.Err() != nil {
			return
		}
		if visit == nil {
			out[qi], errs[qi] = run(qi, discard[H])
			return
		}
		wb := &wbs[worker]
		start := len(wb.buf)
		out[qi], errs[qi] = run(qi, wb.emit)
		segs[qi] = seg{worker, start, len(wb.buf)}
	}
	if w <= 1 || n <= 1 {
		for qi := 0; qi < n; qi++ {
			runSlot(0, qi)
		}
	} else {
		ForEach(w, n, runSlot)
	}
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for qi := range errs {
		if errs[qi] != nil {
			return nil, errs[qi]
		}
	}
	if visit != nil {
		for qi, sg := range segs {
			for _, h := range wbs[sg.worker].buf[sg.start:sg.end] {
				visit(qi, h)
			}
		}
	}
	return out, nil
}

// errsPool recycles the per-slot error tables of BatchCtx; entries are
// cleared on release so a recycled table never reports a stale failure.
var errsPool = sync.Pool{New: func() any {
	b := make([]error, 0, 64)
	return &b
}}

// getErrs returns a pooled, zeroed error table of length n.
func getErrs(n int) (*[]error, []error) {
	box := errsPool.Get().(*[]error)
	b := *box
	if cap(b) < n {
		b = make([]error, n)
	} else {
		b = b[:n]
		clear(b)
	}
	return box, b
}

// putErrs clears and recycles a table obtained from getErrs.
func putErrs(box *[]error, b []error) {
	clear(b)
	*box = b[:0]
	errsPool.Put(box)
}

// Map runs fn for every slot in [0, n) across the pool and returns the
// results indexed by slot.
func Map[T any](workers, n int, fn func(worker, slot int) T) []T {
	if n <= 0 {
		return nil
	}
	out := make([]T, n)
	ForEach(workers, n, func(worker, slot int) {
		out[slot] = fn(worker, slot)
	})
	return out
}

// Do runs the given functions concurrently, one goroutine each (bounded by
// the number of functions), and returns when all have finished. Join builds
// use it to construct the two operand indexes at the same time.
func Do(fns ...func()) {
	if len(fns) == 1 {
		fns[0]()
		return
	}
	var wg sync.WaitGroup
	for _, fn := range fns {
		wg.Add(1)
		go func(fn func()) {
			defer wg.Done()
			fn()
		}(fn)
	}
	wg.Wait()
}
