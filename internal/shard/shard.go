// Package shard partitions an item set into K spatial shards — the data
// layout under engine.Sharded, the scatter-gather layer that is the
// repository's step toward partitioned (multi-node) index serving.
//
// The split is STR-style longest-axis recursion over item *centers*: the
// set is recursively cut at a rank boundary along the longest axis of the
// current subset's center bounds, with the two sides sized proportionally to
// the shard counts they must still produce. The result is K near-equal-count,
// spatially compact, pairwise-disjoint item subsets whose box MBRs overlap
// only as much as the items themselves do — exactly the property a
// scatter-gather router wants, because a query then touches few shards.
//
// Partitioning is fully deterministic: ties on the split axis are broken by
// item ID, so the same items and K always produce the same shards.
package shard

import (
	"sort"

	"neurospatial/internal/geom"
	"neurospatial/internal/rtree"
)

// Part is one spatial shard of a partitioned item set.
type Part struct {
	// Items holds the shard's items with their original (global) IDs, in
	// ascending ID order.
	Items []rtree.Item
	// Bounds is the MBR of the shard's item boxes (not centers): a query
	// intersecting any item of the shard intersects Bounds, so routers can
	// prune whole shards against it.
	Bounds geom.AABB
}

// Partition splits items into at most k spatial parts (fewer only when there
// are fewer items than shards — every returned part is non-empty). Item
// counts per part differ by at most one. The input slice is not modified.
func Partition(items []rtree.Item, k int) []Part {
	if len(items) == 0 {
		return nil
	}
	if k > len(items) {
		k = len(items)
	}
	if k < 1 {
		k = 1
	}
	work := make([]rtree.Item, len(items))
	copy(work, items)
	parts := make([]Part, 0, k)
	split(work, k, &parts)
	for i := range parts {
		sort.Slice(parts[i].Items, func(a, b int) bool {
			return parts[i].Items[a].ID < parts[i].Items[b].ID
		})
		b := geom.EmptyAABB()
		for _, it := range parts[i].Items {
			b = b.Union(it.Box)
		}
		parts[i].Bounds = b
	}
	return parts
}

// split recursively cuts work into k parts, appending them to out.
func split(work []rtree.Item, k int, out *[]Part) {
	if k <= 1 || len(work) <= 1 {
		*out = append(*out, Part{Items: work})
		return
	}
	axis := longestCenterAxis(work)
	sort.Slice(work, func(a, b int) bool {
		ca, cb := work[a].Box.Center().Axis(axis), work[b].Box.Center().Axis(axis)
		if ca != cb {
			return ca < cb
		}
		return work[a].ID < work[b].ID
	})
	kl := k / 2
	// Proportional cut: the left side carries kl of the k shards, so it gets
	// the matching share of the items (rounded), clamped so both sides stay
	// large enough to fill their shard counts.
	cut := (len(work)*kl + k/2) / k
	if cut < kl {
		cut = kl
	}
	if max := len(work) - (k - kl); cut > max {
		cut = max
	}
	split(work[:cut], kl, out)
	split(work[cut:], k-kl, out)
}

// longestCenterAxis returns the axis (0=X, 1=Y, 2=Z) with the widest spread
// of item centers.
func longestCenterAxis(items []rtree.Item) int {
	b := geom.EmptyAABB()
	for _, it := range items {
		b = b.ExtendPoint(it.Box.Center())
	}
	s := b.Size()
	axis := 0
	if s.Y > s.Axis(axis) {
		axis = 1
	}
	if s.Z > s.Axis(axis) {
		axis = 2
	}
	return axis
}
