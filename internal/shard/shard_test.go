package shard_test

import (
	"reflect"
	"sort"
	"testing"

	"neurospatial/internal/geom"
	"neurospatial/internal/rtree"
	"neurospatial/internal/shard"
)

// gridItems builds a deterministic n-item set scattered over a volume with a
// cheap hash, boxes of half-extent 1.
func gridItems(n int) []rtree.Item {
	items := make([]rtree.Item, n)
	for i := range items {
		h := uint64(i)*2654435761 + 12345
		c := geom.V(
			float64(h%1000)/5,
			float64((h/1000)%1000)/5,
			float64((h/1000000)%1000)/5,
		)
		items[i] = rtree.Item{Box: geom.BoxAround(c, 1), ID: int32(i)}
	}
	return items
}

func TestPartitionCoversAllItemsOnce(t *testing.T) {
	for _, k := range []int{1, 2, 3, 4, 7, 16} {
		items := gridItems(503)
		parts := shard.Partition(items, k)
		if len(parts) != k {
			t.Fatalf("k=%d: got %d parts", k, len(parts))
		}
		var ids []int32
		for _, p := range parts {
			if len(p.Items) == 0 {
				t.Fatalf("k=%d: empty part", k)
			}
			for _, it := range p.Items {
				ids = append(ids, it.ID)
				if !p.Bounds.ContainsBox(it.Box) {
					t.Fatalf("k=%d: item %d outside its shard bounds", k, it.ID)
				}
			}
		}
		sort.Slice(ids, func(a, b int) bool { return ids[a] < ids[b] })
		if len(ids) != len(items) {
			t.Fatalf("k=%d: %d items across parts, want %d", k, len(ids), len(items))
		}
		for i, id := range ids {
			if id != int32(i) {
				t.Fatalf("k=%d: item %d missing or duplicated (saw %d at rank %d)", k, i, id, i)
			}
		}
	}
}

func TestPartitionBalanced(t *testing.T) {
	for _, tc := range []struct{ n, k int }{{100, 4}, {101, 4}, {503, 7}, {64, 64}} {
		parts := shard.Partition(gridItems(tc.n), tc.k)
		lo, hi := tc.n, 0
		for _, p := range parts {
			if len(p.Items) < lo {
				lo = len(p.Items)
			}
			if len(p.Items) > hi {
				hi = len(p.Items)
			}
		}
		if hi-lo > 1 {
			t.Errorf("n=%d k=%d: part sizes range [%d,%d], want spread <= 1", tc.n, tc.k, lo, hi)
		}
	}
}

func TestPartitionDeterministic(t *testing.T) {
	a := shard.Partition(gridItems(257), 5)
	b := shard.Partition(gridItems(257), 5)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("two partitions of the same input differ")
	}
}

func TestPartitionEdgeCases(t *testing.T) {
	if parts := shard.Partition(nil, 4); parts != nil {
		t.Errorf("empty input: got %d parts, want none", len(parts))
	}
	// More shards than items: one part per item.
	items := gridItems(3)
	parts := shard.Partition(items, 8)
	if len(parts) != 3 {
		t.Fatalf("k>n: got %d parts, want 3", len(parts))
	}
	// k < 1 clamps to a single part.
	parts = shard.Partition(items, 0)
	if len(parts) != 1 || len(parts[0].Items) != 3 {
		t.Fatalf("k=0: got %d parts", len(parts))
	}
	// Input slice must not be reordered.
	orig := gridItems(50)
	cp := make([]rtree.Item, len(orig))
	copy(cp, orig)
	shard.Partition(orig, 4)
	if !reflect.DeepEqual(orig, cp) {
		t.Error("Partition reordered its input slice")
	}
}
