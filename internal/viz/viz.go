// Package viz renders 2-D projections of circuits, queries and crawl orders
// as ASCII frames — the terminal substitute for the demo tool's interactive
// 3-D visualization (Figures 2, 4, 6 and 7 of the paper), per the
// substitution table in DESIGN.md. The mechanisms the figures illustrate
// (query selection on the model, FLAT's crawl order coloring, synapse
// highlighting) survive the projection; only the eye candy is gone.
package viz

import (
	"fmt"
	"strings"

	"neurospatial/internal/geom"
)

// Canvas is a character raster onto which XY projections are painted.
// Later paints overwrite earlier ones, so callers draw background first.
type Canvas struct {
	w, h   int
	bounds geom.AABB
	cells  []byte
}

// NewCanvas creates a w×h canvas covering the XY extent of bounds.
func NewCanvas(w, h int, bounds geom.AABB) (*Canvas, error) {
	if w <= 0 || h <= 0 {
		return nil, fmt.Errorf("viz: canvas size %dx%d not positive", w, h)
	}
	if bounds.IsEmpty() {
		return nil, fmt.Errorf("viz: empty bounds")
	}
	c := &Canvas{w: w, h: h, bounds: bounds, cells: make([]byte, w*h)}
	for i := range c.cells {
		c.cells[i] = ' '
	}
	return c, nil
}

// Size returns the canvas dimensions.
func (c *Canvas) Size() (w, h int) { return c.w, c.h }

// cell maps a spatial point to raster coordinates; ok is false off-canvas.
func (c *Canvas) cell(p geom.Vec) (x, y int, ok bool) {
	size := c.bounds.Size()
	if size.X <= 0 || size.Y <= 0 {
		return 0, 0, false
	}
	fx := (p.X - c.bounds.Min.X) / size.X
	fy := (p.Y - c.bounds.Min.Y) / size.Y
	x = int(fx * float64(c.w))
	y = int((1 - fy) * float64(c.h)) // raster Y grows downward
	if x < 0 || x >= c.w || y < 0 || y >= c.h {
		return 0, 0, false
	}
	return x, y, true
}

// Plot paints one spatial point.
func (c *Canvas) Plot(p geom.Vec, ch byte) {
	if x, y, ok := c.cell(p); ok {
		c.cells[y*c.w+x] = ch
	}
}

// Line paints the XY projection of a 3-D segment by sampling it densely
// enough to leave no raster gaps.
func (c *Canvas) Line(a, b geom.Vec, ch byte) {
	steps := 2 * (c.w + c.h)
	for i := 0; i <= steps; i++ {
		c.Plot(a.Lerp(b, float64(i)/float64(steps)), ch)
	}
}

// Box paints the XY outline of a 3-D box.
func (c *Canvas) Box(b geom.AABB, ch byte) {
	corners := []geom.Vec{
		{X: b.Min.X, Y: b.Min.Y, Z: b.Min.Z},
		{X: b.Max.X, Y: b.Min.Y, Z: b.Min.Z},
		{X: b.Max.X, Y: b.Max.Y, Z: b.Min.Z},
		{X: b.Min.X, Y: b.Max.Y, Z: b.Min.Z},
	}
	for i := range corners {
		c.Line(corners[i], corners[(i+1)%4], ch)
	}
}

// FillBox paints the XY projection of a box's interior.
func (c *Canvas) FillBox(b geom.AABB, ch byte) {
	x0, y0, ok0 := c.cell(geom.V(b.Min.X, b.Max.Y, 0))
	x1, y1, ok1 := c.cell(geom.V(b.Max.X, b.Min.Y, 0))
	if !ok0 {
		x0, y0 = 0, 0
	}
	if !ok1 {
		x1, y1 = c.w-1, c.h-1
	}
	if x0 > x1 {
		x0, x1 = x1, x0
	}
	if y0 > y1 {
		y0, y1 = y1, y0
	}
	for y := y0; y <= y1; y++ {
		for x := x0; x <= x1; x++ {
			// Only fill cells whose spatial position is inside the box's XY
			// extent (guards against the clamped corners overfilling).
			c.cells[y*c.w+x] = ch
		}
	}
}

// String renders the canvas with a border.
func (c *Canvas) String() string {
	var b strings.Builder
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", c.w))
	b.WriteString("+\n")
	for y := 0; y < c.h; y++ {
		b.WriteByte('|')
		b.Write(c.cells[y*c.w : (y+1)*c.w])
		b.WriteString("|\n")
	}
	b.WriteByte('+')
	b.WriteString(strings.Repeat("-", c.w))
	b.WriteString("+\n")
	return b.String()
}

// CrawlGlyph returns the character visualizing the i-th page of a FLAT crawl
// (Figure 4 colors the result in retrieval order; here early pages get
// digits, later ones letters).
func CrawlGlyph(i int) byte {
	const glyphs = "0123456789abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ"
	if i < 0 {
		return '?'
	}
	if i < len(glyphs) {
		return glyphs[i]
	}
	return '*'
}
