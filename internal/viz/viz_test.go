package viz

import (
	"strings"
	"testing"

	"neurospatial/internal/geom"
)

func unit() geom.AABB { return geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10)) }

func TestNewCanvasValidation(t *testing.T) {
	if _, err := NewCanvas(0, 5, unit()); err == nil {
		t.Error("zero width accepted")
	}
	if _, err := NewCanvas(5, -1, unit()); err == nil {
		t.Error("negative height accepted")
	}
	if _, err := NewCanvas(5, 5, geom.EmptyAABB()); err == nil {
		t.Error("empty bounds accepted")
	}
}

func TestPlotAndString(t *testing.T) {
	c, err := NewCanvas(10, 10, unit())
	if err != nil {
		t.Fatal(err)
	}
	c.Plot(geom.V(5, 5, 0), '#')
	out := c.String()
	if !strings.Contains(out, "#") {
		t.Error("plotted point not rendered")
	}
	lines := strings.Split(strings.TrimRight(out, "\n"), "\n")
	if len(lines) != 12 { // 10 rows + 2 borders
		t.Fatalf("lines = %d", len(lines))
	}
	for _, l := range lines {
		if len(l) != 12 { // 10 cols + 2 borders
			t.Fatalf("line width %d: %q", len(l), l)
		}
	}
	// Off-canvas plots are ignored.
	c.Plot(geom.V(-5, 5, 0), 'X')
	c.Plot(geom.V(5, 50, 0), 'X')
	if strings.Contains(c.String(), "X") {
		t.Error("off-canvas plot rendered")
	}
}

func TestYAxisOrientation(t *testing.T) {
	c, _ := NewCanvas(10, 10, unit())
	c.Plot(geom.V(1, 9, 0), 'T') // high Y -> top rows
	c.Plot(geom.V(1, 1, 0), 'B') // low Y -> bottom rows
	lines := strings.Split(c.String(), "\n")
	var topRow, botRow int
	for i, l := range lines {
		if strings.Contains(l, "T") {
			topRow = i
		}
		if strings.Contains(l, "B") {
			botRow = i
		}
	}
	if topRow >= botRow {
		t.Errorf("Y axis inverted: T at %d, B at %d", topRow, botRow)
	}
}

func TestLineIsConnected(t *testing.T) {
	c, _ := NewCanvas(20, 20, unit())
	c.Line(geom.V(0.5, 0.5, 0), geom.V(9.5, 9.5, 0), '*')
	// Every raster row between the endpoints must contain the glyph (the
	// diagonal leaves no gaps).
	lines := strings.Split(c.String(), "\n")
	count := 0
	for _, l := range lines {
		if strings.Contains(l, "*") {
			count++
		}
	}
	if count < 18 {
		t.Errorf("diagonal covers only %d rows", count)
	}
}

func TestBoxOutline(t *testing.T) {
	c, _ := NewCanvas(20, 20, unit())
	c.Box(geom.Box(geom.V(2, 2, 0), geom.V(8, 8, 5)), '+')
	out := c.String()
	if strings.Count(out, "+") < 20 { // outline plus 4 border corners
		t.Errorf("box outline too sparse:\n%s", out)
	}
}

func TestFillBox(t *testing.T) {
	c, _ := NewCanvas(10, 10, unit())
	c.FillBox(geom.Box(geom.V(0, 0, 0), geom.V(10, 10, 10)), '.')
	if strings.Count(c.String(), ".") != 100 {
		t.Errorf("full fill painted %d cells", strings.Count(c.String(), "."))
	}
}

func TestCrawlGlyph(t *testing.T) {
	if CrawlGlyph(0) != '0' || CrawlGlyph(9) != '9' || CrawlGlyph(10) != 'a' {
		t.Error("glyph sequence wrong")
	}
	if CrawlGlyph(1000) != '*' {
		t.Error("overflow glyph wrong")
	}
	if CrawlGlyph(-1) != '?' {
		t.Error("negative glyph wrong")
	}
	// Distinct glyphs for the first 62 pages.
	seen := make(map[byte]bool)
	for i := 0; i < 62; i++ {
		g := CrawlGlyph(i)
		if seen[g] {
			t.Fatalf("glyph %c repeats", g)
		}
		seen[g] = true
	}
}
