// Package pager simulates the disk subsystem under the spatial indexes.
//
// The demo's live statistics panel (Figure 3 of the paper) reports "disk
// pages retrieved" for FLAT and the R-tree, and SCOUT's benefit (Figure 6) is
// the page reads it hides inside the user's think time. Reproducing those
// numbers requires a storage layer with deterministic page accounting, so
// this package provides one: fixed-capacity pages of element IDs, an LRU
// buffer pool, and separate counters for demand reads, buffer hits and
// prefetch reads. An analytic latency model converts page counts into the
// simulated wall-clock times the experiment harnesses report; real
// wall-clock time is always measured separately.
package pager

import (
	"fmt"
	"sync"
	"sync/atomic"
	"time"
)

// PageID identifies a page in a Store. Valid IDs are dense, starting at 0.
type PageID int32

// InvalidPage is returned by lookups that find no page.
const InvalidPage PageID = -1

// Store is an immutable collection of pages, each holding the IDs of the
// elements laid out on it. Build one with a Builder.
type Store struct {
	pages    [][]int32
	capacity int
}

// NumPages returns the number of pages in the store.
func (s *Store) NumPages() int { return len(s.pages) }

// Capacity returns the maximum number of element IDs per page.
func (s *Store) Capacity() int { return s.capacity }

// Page returns the element IDs on page id. The returned slice is shared and
// must not be modified.
func (s *Store) Page(id PageID) []int32 {
	return s.pages[id]
}

// PageSource is where a query execution path reads its data pages from. The
// two implementations in this package bracket the storage regimes the
// experiments compare: a bare *Store models a cold read per page, while a
// *BufferPool serves cached pages with full I/O accounting (and receives
// prefetches). Every index behind engine.SpatialIndex reads through a
// PageSource, so the buffer-pool + prefetch stack sits beneath any of them,
// not just FLAT.
type PageSource interface {
	// ReadPage returns the element IDs on page id. The slice is shared and
	// must not be modified.
	ReadPage(id PageID) []int32
}

// ReadPage implements PageSource: a direct store read, modelling one cold
// physical read with no caching or accounting.
//
//neurospatial:hotpath
func (s *Store) ReadPage(id PageID) []int32 { return s.Page(id) }

// Counting wraps a PageSource with an independent read counter — the proof
// harness of the streaming result path's early-stop guarantees: attach one
// under an index and the counter records exactly how many page reads an
// execution issued, independent of the index's own QueryStats accounting.
// It is safe for concurrent use when the wrapped source is.
type Counting struct {
	src   PageSource
	reads atomic.Int64
}

// NewCounting wraps src.
func NewCounting(src PageSource) *Counting { return &Counting{src: src} }

// ReadPage implements PageSource, counting the read.
func (c *Counting) ReadPage(id PageID) []int32 {
	c.reads.Add(1)
	return c.src.ReadPage(id)
}

// Reads returns the number of page reads issued through the wrapper.
func (c *Counting) Reads() int64 { return c.reads.Load() }

// Reset zeroes the counter.
func (c *Counting) Reset() { c.reads.Store(0) }

// Builder accumulates pages for a Store.
type Builder struct {
	store Store
	cur   []int32
}

// NewBuilder returns a builder for pages holding up to capacity element IDs.
func NewBuilder(capacity int) (*Builder, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("pager: page capacity must be positive, got %d", capacity)
	}
	return &Builder{store: Store{capacity: capacity}}, nil
}

// Add appends an element ID to the page under construction, starting a new
// page when the current one is full. It returns the page the element landed
// on.
func (b *Builder) Add(elem int32) PageID {
	if len(b.cur) == b.store.capacity {
		b.FlushPage()
	}
	b.cur = append(b.cur, elem)
	return PageID(len(b.store.pages))
}

// FlushPage closes the page under construction (a no-op when it is empty).
func (b *Builder) FlushPage() {
	if len(b.cur) == 0 {
		return
	}
	b.store.pages = append(b.store.pages, b.cur)
	b.cur = nil
}

// Build finalizes and returns the store. The builder must not be used
// afterwards.
func (b *Builder) Build() *Store {
	b.FlushPage()
	s := b.store
	b.store = Store{}
	return &s
}

// Stats counts the I/O activity of a buffer pool. All counters are
// cumulative; use Sub to compute per-query deltas.
type Stats struct {
	// DemandReads counts physical page reads issued on the query path.
	DemandReads int64
	// PrefetchReads counts physical page reads issued by a prefetcher.
	PrefetchReads int64
	// Hits counts page requests satisfied by the buffer pool.
	Hits int64
	// PrefetchHits counts demand requests satisfied by a page that was
	// brought in by a prefetcher and had not yet been demanded.
	PrefetchHits int64
	// Evictions counts pages dropped by the LRU policy.
	Evictions int64
}

// Sub returns s - o, the activity between two snapshots.
func (s Stats) Sub(o Stats) Stats {
	return Stats{
		DemandReads:   s.DemandReads - o.DemandReads,
		PrefetchReads: s.PrefetchReads - o.PrefetchReads,
		Hits:          s.Hits - o.Hits,
		PrefetchHits:  s.PrefetchHits - o.PrefetchHits,
		Evictions:     s.Evictions - o.Evictions,
	}
}

// PhysicalReads returns the total physical reads (demand + prefetch).
func (s Stats) PhysicalReads() int64 { return s.DemandReads + s.PrefetchReads }

// CostModel converts page accounting into simulated latency. The defaults
// model a magnetic-disk array similar in spirit to the BlueGene/P I/O nodes
// of the paper: seeks dominate, so every page read costs the same.
type CostModel struct {
	// PageRead is the simulated latency of one physical page read.
	PageRead time.Duration
}

// DefaultCostModel returns the model used by the experiment harnesses:
// 5 ms per page read.
func DefaultCostModel() CostModel { return CostModel{PageRead: 5 * time.Millisecond} }

// DemandLatency returns the simulated time a query spent waiting for pages:
// only demand reads stall the user; prefetch reads are overlapped with think
// time by the caller's model.
func (m CostModel) DemandLatency(s Stats) time.Duration {
	return time.Duration(s.DemandReads) * m.PageRead
}

// lruEntry is a node of the intrusive LRU list.
type lruEntry struct {
	id         PageID
	prev, next *lruEntry
	prefetched bool // in pool due to prefetch, not yet demanded
}

// BufferPool is a fixed-capacity LRU cache of pages from one Store. It is
// safe for concurrent use: every operation holds the pool mutex, so each
// Get/Prefetch is atomic and the counters stay consistent (the accounting
// identity Hits + DemandReads == total Gets holds under any interleaving).
// Single-threaded runs remain exactly as deterministic as before; under
// concurrency the *totals* are reproducible for a fixed access multiset,
// while the hit/miss split of an individual request depends on which worker
// reached a shared page first.
type BufferPool struct {
	mu       sync.Mutex
	store    *Store
	capacity int
	entries  map[PageID]*lruEntry
	head     *lruEntry // most recently used
	tail     *lruEntry // least recently used
	stats    Stats
}

// NewBufferPool returns a pool caching up to capacity pages of store.
func NewBufferPool(store *Store, capacity int) (*BufferPool, error) {
	if capacity <= 0 {
		return nil, fmt.Errorf("pager: pool capacity must be positive, got %d", capacity)
	}
	return &BufferPool{
		store:    store,
		capacity: capacity,
		entries:  make(map[PageID]*lruEntry, capacity),
	}, nil
}

// Store returns the underlying page store.
func (p *BufferPool) Store() *Store { return p.store }

// Capacity returns the pool capacity in pages.
func (p *BufferPool) Capacity() int { return p.capacity }

// Len returns the number of pages currently cached.
func (p *BufferPool) Len() int {
	p.mu.Lock()
	defer p.mu.Unlock()
	return len(p.entries)
}

// Stats returns a snapshot of the cumulative counters.
func (p *BufferPool) Stats() Stats {
	p.mu.Lock()
	defer p.mu.Unlock()
	return p.stats
}

// ResetStats zeroes the counters without touching the cached pages.
func (p *BufferPool) ResetStats() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.stats = Stats{}
}

// Contains reports whether page id is cached, without touching LRU order or
// counters.
func (p *BufferPool) Contains(id PageID) bool {
	p.mu.Lock()
	defer p.mu.Unlock()
	_, ok := p.entries[id]
	return ok
}

// Get returns the element IDs of page id, reading it from the store on a
// miss. It is the demand-read path: misses count as DemandReads, hits as
// Hits (and PrefetchHits when the page was prefetched and not yet demanded).
func (p *BufferPool) Get(id PageID) []int32 {
	p.mu.Lock()
	defer p.mu.Unlock()
	if e, ok := p.entries[id]; ok {
		p.stats.Hits++
		if e.prefetched {
			p.stats.PrefetchHits++
			e.prefetched = false
		}
		p.touch(e)
		return p.store.Page(id)
	}
	p.stats.DemandReads++
	p.insert(id, false)
	return p.store.Page(id)
}

// ReadPage implements PageSource via the demand-read path (Get).
//
//neurospatial:hotpath
func (p *BufferPool) ReadPage(id PageID) []int32 { return p.Get(id) }

// Prefetch brings page id into the pool without a demand request. Cached
// pages are left untouched (no counter changes, no LRU promotion — a
// prefetcher re-requesting a hot page should not be able to pin it).
func (p *BufferPool) Prefetch(id PageID) {
	p.mu.Lock()
	defer p.mu.Unlock()
	if _, ok := p.entries[id]; ok {
		return
	}
	p.stats.PrefetchReads++
	p.insert(id, true)
}

// Flush empties the pool (for experiment repetitions needing a cold cache).
// Counters are preserved.
func (p *BufferPool) Flush() {
	p.mu.Lock()
	defer p.mu.Unlock()
	p.entries = make(map[PageID]*lruEntry, p.capacity)
	p.head, p.tail = nil, nil
}

func (p *BufferPool) insert(id PageID, prefetched bool) {
	if len(p.entries) >= p.capacity {
		p.evict()
	}
	e := &lruEntry{id: id, prefetched: prefetched}
	p.entries[id] = e
	p.pushFront(e)
}

func (p *BufferPool) evict() {
	e := p.tail
	if e == nil {
		return
	}
	p.unlink(e)
	delete(p.entries, e.id)
	p.stats.Evictions++
}

func (p *BufferPool) touch(e *lruEntry) {
	if p.head == e {
		return
	}
	p.unlink(e)
	p.pushFront(e)
}

func (p *BufferPool) pushFront(e *lruEntry) {
	e.prev = nil
	e.next = p.head
	if p.head != nil {
		p.head.prev = e
	}
	p.head = e
	if p.tail == nil {
		p.tail = e
	}
}

func (p *BufferPool) unlink(e *lruEntry) {
	if e.prev != nil {
		e.prev.next = e.next
	} else {
		p.head = e.next
	}
	if e.next != nil {
		e.next.prev = e.prev
	} else {
		p.tail = e.prev
	}
	e.prev, e.next = nil, nil
}
