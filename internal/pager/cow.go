package pager

import "fmt"

// CowStats accounts a copy-on-write remap: how much of the previous store a
// rebuilt layout reused versus rewrote. Shared pages are the incremental win —
// a disk-backed implementation would not touch them at all.
type CowStats struct {
	// Shared counts pages carried over unchanged (same backing content as
	// the base store — no copy).
	Shared int
	// Patched counts pages rewritten copy-on-write (some entries dropped).
	Patched int
	// Dropped counts trailing base pages discarded by Truncate.
	Dropped int
	// Appended counts new pages added after the base pages.
	Appended int
}

// Add accumulates o into s (for cumulative per-dataset accounting).
func (s *CowStats) Add(o CowStats) {
	s.Shared += o.Shared
	s.Patched += o.Patched
	s.Dropped += o.Dropped
	s.Appended += o.Appended
}

// CowBuilder derives a new Store from an existing one by copy-on-write page
// remapping: every base page starts out shared (the new store references the
// base page's content without copying), pages holding deleted entries are
// patched into filtered copies in place (their PageID is preserved), trailing
// pages can be truncated, and new pages appended. This is the maintenance
// primitive of the engine's snapshot layouts: a commit touching k of n pages
// produces a new immutable store in O(k), with the other n-k pages shared.
//
// The base store is never modified; the builder is single-use (Build
// invalidates it) and not safe for concurrent use.
type CowBuilder struct {
	base   *Store
	pages  [][]int32
	copied []bool // pages[i] was rewritten (not a base reference)
	stats  CowStats
}

// NewCow returns a builder whose initial state shares every page of base.
func NewCow(base *Store) *CowBuilder {
	pages := make([][]int32, base.NumPages())
	copy(pages, base.pages)
	return &CowBuilder{
		base:   base,
		pages:  pages,
		copied: make([]bool, base.NumPages()),
	}
}

// Truncate discards the pages at index n and beyond (a no-op when the builder
// already holds at most n pages). Snapshot commits use it to drop the
// previous epoch's delta pages before appending the new delta.
func (c *CowBuilder) Truncate(n int) {
	if n < 0 {
		n = 0
	}
	if n >= len(c.pages) {
		return
	}
	c.stats.Dropped += len(c.pages) - n
	c.pages = c.pages[:n]
	c.copied = c.copied[:n]
}

// Patch rewrites page p copy-on-write, keeping only the entries keep accepts.
// When nothing is dropped the page stays shared (no copy, no Patched count).
// The page keeps its PageID, so remaining entries stay addressable at their
// old page.
func (c *CowBuilder) Patch(p PageID, keep func(int32) bool) error {
	if p < 0 || int(p) >= len(c.pages) {
		return fmt.Errorf("pager: Patch of page %d outside [0,%d)", p, len(c.pages))
	}
	old := c.pages[p]
	kept := make([]int32, 0, len(old))
	for _, id := range old {
		if keep(id) {
			kept = append(kept, id)
		}
	}
	if len(kept) == len(old) {
		return nil // nothing dropped: keep sharing
	}
	if !c.copied[p] {
		c.stats.Patched++
	}
	c.pages[p] = kept
	c.copied[p] = true
	return nil
}

// Append adds a new page holding ids (copied). The page content must fit the
// base store's capacity.
func (c *CowBuilder) Append(ids []int32) (PageID, error) {
	if len(ids) > c.base.Capacity() {
		return InvalidPage, fmt.Errorf("pager: Append of %d entries exceeds page capacity %d",
			len(ids), c.base.Capacity())
	}
	page := make([]int32, len(ids))
	copy(page, ids)
	c.pages = append(c.pages, page)
	c.copied = append(c.copied, true)
	c.stats.Appended++
	return PageID(len(c.pages) - 1), nil
}

// Build finalizes the remapped store and reports the reuse accounting. The
// builder must not be used afterwards.
func (c *CowBuilder) Build() (*Store, CowStats) {
	st := c.stats
	for i := range c.pages {
		if !c.copied[i] {
			st.Shared++
		}
	}
	out := &Store{pages: c.pages, capacity: c.base.capacity}
	c.pages, c.copied, c.base = nil, nil, nil
	return out, st
}
