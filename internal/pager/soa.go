package pager

import "neurospatial/internal/geom"

// Coords is the struct-of-arrays coordinate sidecar of a Store: the AABB
// min/max coordinates of every element, stored as six contiguous per-axis
// arrays in page-layout order. A range/point filter over one page becomes a
// sequential scan of six flat float64 runs instead of a per-element strided
// decode of RAM AABB structs — the cache-conscious layout the hot read path
// scans after ReadPage returns the page's resident IDs.
//
// Coords is metadata *beside* the page bytes, keyed by PageID and slice
// position: reads still go through PageSource.ReadPage, so buffer pools,
// Counting taps, snapshots and CoW remaps observe exactly the accounting they
// did before (see the README migration note — code that only consumed
// ReadPage's ID payload is unaffected; code that re-derived geometry from RAM
// AABB slices can switch to the sidecar or keep its own arrays).
//
// A Coords is immutable after BuildCoords and safe for concurrent readers.
type Coords struct {
	// off[p] is the first SoA slot of page p; entry i of page p (the element
	// at position i of Store.Page(p)) lives at slot off[p]+i. len(off) is
	// NumPages+1, so off[p+1]-off[p] is page p's resident count.
	off []int32
	// minX..maxZ hold the per-axis bounds, one slot per laid-out element.
	// Slots of negative (placeholder) IDs hold an empty box that intersects
	// nothing.
	minX, minY, minZ []float64
	maxX, maxY, maxZ []float64
}

// BuildCoords derives the SoA sidecar of a built store. boxOf resolves the
// MBR of a non-negative element ID (the same RAM geometry the strided filters
// read); negative placeholder entries (R-tree internal-node pages) get an
// empty never-intersecting slot.
func BuildCoords(s *Store, boxOf func(id int32) geom.AABB) *Coords {
	total := 0
	for p := 0; p < s.NumPages(); p++ {
		total += len(s.Page(PageID(p)))
	}
	c := &Coords{
		off:  make([]int32, s.NumPages()+1),
		minX: make([]float64, total), minY: make([]float64, total), minZ: make([]float64, total),
		maxX: make([]float64, total), maxY: make([]float64, total), maxZ: make([]float64, total),
	}
	empty := geom.EmptyAABB()
	slot := 0
	for p := 0; p < s.NumPages(); p++ {
		c.off[p] = int32(slot)
		for _, id := range s.Page(PageID(p)) {
			b := empty
			if id >= 0 {
				b = boxOf(id)
			}
			c.minX[slot], c.minY[slot], c.minZ[slot] = b.Min.X, b.Min.Y, b.Min.Z
			c.maxX[slot], c.maxY[slot], c.maxZ[slot] = b.Max.X, b.Max.Y, b.Max.Z
			slot++
		}
	}
	c.off[s.NumPages()] = int32(slot)
	return c
}

// PageOffset returns the first SoA slot of page p (add the element's position
// within the page to address its slot).
func (c *Coords) PageOffset(p PageID) int { return int(c.off[p]) }

// IntersectsAt reports whether the box in slot i intersects q — the
// sequential-load form of geom.AABB.Intersects.
//
//neurospatial:hotpath
func (c *Coords) IntersectsAt(i int, q geom.AABB) bool {
	return c.minX[i] <= q.Max.X && c.maxX[i] >= q.Min.X &&
		c.minY[i] <= q.Max.Y && c.maxY[i] >= q.Min.Y &&
		c.minZ[i] <= q.Max.Z && c.maxZ[i] >= q.Min.Z
}

// FilterPage emits every non-negative resident of page p whose box intersects
// q, scanning the SoA arrays sequentially. ids must be the page's residents
// as returned by ReadPage (position-aligned with the sidecar); the return
// value is the number of box tests performed (the EntriesTested accounting of
// the strided filter it replaces).
//
//neurospatial:hotpath
func (c *Coords) FilterPage(p PageID, ids []int32, q geom.AABB, emit func(int32)) int {
	base := int(c.off[p])
	tested := 0
	for i, id := range ids {
		if id < 0 {
			continue
		}
		tested++
		if c.IntersectsAt(base+i, q) {
			emit(id)
		}
	}
	return tested
}
