package pager

import (
	"math/rand"
	"sync"
	"testing"
)

// TestBufferPoolConcurrentStress hammers one pool from many goroutines —
// demand reads, prefetches, stats snapshots, containment probes and the
// occasional flush — the access pattern of a parallel batch query sharing a
// pool. Run under -race it proves the locking; the assertions prove the
// accounting identities survive any interleaving.
func TestBufferPoolConcurrentStress(t *testing.T) {
	const (
		pages      = 256
		capacity   = 32
		goroutines = 16
		opsPerG    = 2000
	)
	b, err := NewBuilder(4)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < pages*4; i++ {
		b.Add(i)
	}
	store := b.Build()
	if store.NumPages() != pages {
		t.Fatalf("store has %d pages, want %d", store.NumPages(), pages)
	}
	pool, err := NewBufferPool(store, capacity)
	if err != nil {
		t.Fatal(err)
	}

	var gets int64
	var mu sync.Mutex // guards gets (test-side tally, not pool state)
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(int64(g)))
			local := int64(0)
			for op := 0; op < opsPerG; op++ {
				id := PageID(rng.Intn(pages))
				switch rng.Intn(10) {
				case 0:
					pool.Prefetch(id)
				case 1:
					pool.Contains(id)
				case 2:
					_ = pool.Stats()
				case 3:
					if n := pool.Len(); n < 0 || n > capacity {
						t.Errorf("Len() = %d outside [0, %d]", n, capacity)
					}
				case 4:
					if g == 0 && op%500 == 250 {
						pool.Flush()
					} else {
						ids := pool.Get(id)
						local++
						if len(ids) != 4 {
							t.Errorf("page %d has %d ids", id, len(ids))
						}
					}
				default:
					ids := pool.Get(id)
					local++
					if len(ids) != 4 {
						t.Errorf("page %d has %d ids", id, len(ids))
					}
				}
			}
			mu.Lock()
			gets += local
			mu.Unlock()
		}(g)
	}
	wg.Wait()

	st := pool.Stats()
	if st.Hits+st.DemandReads != gets {
		t.Errorf("accounting identity broken: Hits(%d) + DemandReads(%d) != Gets(%d)",
			st.Hits, st.DemandReads, gets)
	}
	if st.PrefetchHits > st.PrefetchReads {
		t.Errorf("more prefetch hits (%d) than prefetch reads (%d)",
			st.PrefetchHits, st.PrefetchReads)
	}
	if pool.Len() > capacity {
		t.Errorf("pool holds %d pages, capacity %d", pool.Len(), capacity)
	}
	// The LRU must still be internally consistent: every cached page
	// reachable, every access accounted.
	if st.DemandReads+st.PrefetchReads < int64(pool.Len()) {
		t.Errorf("cached %d pages but only %d physical reads", pool.Len(), st.PhysicalReads())
	}
}

// TestBufferPoolConcurrentSharedPages has all goroutines fight over a tiny
// hot set so every operation contends, maximizing the chance -race observes
// a real interleaving bug.
func TestBufferPoolConcurrentSharedPages(t *testing.T) {
	b, err := NewBuilder(2)
	if err != nil {
		t.Fatal(err)
	}
	for i := int32(0); i < 16; i++ {
		b.Add(i)
	}
	pool, err := NewBufferPool(b.Build(), 2) // 8 pages, room for 2: constant eviction
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for op := 0; op < 5000; op++ {
				pool.Get(PageID((g + op) % 8))
				if op%7 == 0 {
					pool.Prefetch(PageID(op % 8))
				}
			}
		}(g)
	}
	wg.Wait()
	st := pool.Stats()
	if st.Hits+st.DemandReads != 8*5000 {
		t.Errorf("accounting identity broken: %d hits + %d demand != %d gets",
			st.Hits, st.DemandReads, 8*5000)
	}
}
