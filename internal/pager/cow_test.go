package pager

import (
	"reflect"
	"testing"
)

func buildTestStore(t *testing.T, capacity int, pages ...[]int32) *Store {
	t.Helper()
	b, err := NewBuilder(capacity)
	if err != nil {
		t.Fatal(err)
	}
	for _, pg := range pages {
		for _, id := range pg {
			b.Add(id)
		}
		b.FlushPage()
	}
	return b.Build()
}

func TestCowShareAll(t *testing.T) {
	base := buildTestStore(t, 4, []int32{0, 1, 2, 3}, []int32{4, 5}, []int32{6})
	out, st := NewCow(base).Build()
	if st != (CowStats{Shared: 3}) {
		t.Fatalf("stats = %+v, want 3 shared", st)
	}
	if out.NumPages() != 3 || out.Capacity() != 4 {
		t.Fatalf("out: %d pages cap %d", out.NumPages(), out.Capacity())
	}
	for p := 0; p < 3; p++ {
		if !reflect.DeepEqual(out.Page(PageID(p)), base.Page(PageID(p))) {
			t.Fatalf("page %d diverged", p)
		}
	}
}

func TestCowPatchDropsEntriesInPlace(t *testing.T) {
	base := buildTestStore(t, 4, []int32{0, 1, 2, 3}, []int32{4, 5, 6})
	c := NewCow(base)
	if err := c.Patch(1, func(id int32) bool { return id != 5 }); err != nil {
		t.Fatal(err)
	}
	// Patching the same page twice counts once.
	if err := c.Patch(1, func(id int32) bool { return id != 6 }); err != nil {
		t.Fatal(err)
	}
	out, st := c.Build()
	if st != (CowStats{Shared: 1, Patched: 1}) {
		t.Fatalf("stats = %+v", st)
	}
	if got := out.Page(1); !reflect.DeepEqual(got, []int32{4}) {
		t.Fatalf("patched page = %v", got)
	}
	// The base store is untouched.
	if got := base.Page(1); !reflect.DeepEqual(got, []int32{4, 5, 6}) {
		t.Fatalf("base page mutated: %v", got)
	}
	// A no-op patch keeps the page shared.
	c2 := NewCow(base)
	if err := c2.Patch(0, func(int32) bool { return true }); err != nil {
		t.Fatal(err)
	}
	if _, st2 := c2.Build(); st2 != (CowStats{Shared: 2}) {
		t.Fatalf("no-op patch stats = %+v", st2)
	}
}

func TestCowTruncateAndAppend(t *testing.T) {
	base := buildTestStore(t, 3, []int32{0, 1, 2}, []int32{3, 4}, []int32{5})
	c := NewCow(base)
	c.Truncate(1)
	p, err := c.Append([]int32{9, 10})
	if err != nil {
		t.Fatal(err)
	}
	if p != 1 {
		t.Fatalf("appended page id = %d, want 1", p)
	}
	out, st := c.Build()
	if st != (CowStats{Shared: 1, Dropped: 2, Appended: 1}) {
		t.Fatalf("stats = %+v", st)
	}
	if out.NumPages() != 2 {
		t.Fatalf("pages = %d", out.NumPages())
	}
	if got := out.Page(1); !reflect.DeepEqual(got, []int32{9, 10}) {
		t.Fatalf("appended page = %v", got)
	}
	// An append after truncating below the base page count must not be
	// miscounted as a patch.
	if st.Patched != 0 {
		t.Fatalf("append counted as patch: %+v", st)
	}
}

func TestCowErrors(t *testing.T) {
	base := buildTestStore(t, 2, []int32{0, 1})
	c := NewCow(base)
	if err := c.Patch(5, func(int32) bool { return true }); err == nil {
		t.Fatal("out-of-range Patch succeeded")
	}
	if _, err := c.Append([]int32{1, 2, 3}); err == nil {
		t.Fatal("over-capacity Append succeeded")
	}
}

// TestCowChainedEpochs mirrors the snapshot-commit usage: each epoch derives
// from the previous layout, patching tombstoned base pages and rewriting the
// delta tail, and untouched base pages stay shared across every epoch.
func TestCowChainedEpochs(t *testing.T) {
	layout := buildTestStore(t, 2, []int32{0, 1}, []int32{2, 3}, []int32{4, 5})
	nBase := 3
	dead := map[int32]bool{}

	kill := func(id int32, deltaPages ...[]int32) CowStats {
		dead[id] = true
		c := NewCow(layout)
		c.Truncate(nBase)
		if err := c.Patch(PageID(id/2), func(e int32) bool { return !dead[e] }); err != nil {
			t.Fatal(err)
		}
		for _, dp := range deltaPages {
			if _, err := c.Append(dp); err != nil {
				t.Fatal(err)
			}
		}
		var st CowStats
		layout, st = c.Build()
		return st
	}

	st1 := kill(3, []int32{100})
	if st1.Shared != 2 || st1.Patched != 1 || st1.Appended != 1 {
		t.Fatalf("epoch 1 stats = %+v", st1)
	}
	st2 := kill(2, []int32{100, 101})
	// Page 1 was already a patched copy last epoch; patching it again still
	// counts, pages 0 and 2 remain shared, old delta page dropped.
	if st2.Shared != 2 || st2.Patched != 1 || st2.Dropped != 1 || st2.Appended != 1 {
		t.Fatalf("epoch 2 stats = %+v", st2)
	}
	if got := layout.Page(1); len(got) != 0 {
		t.Fatalf("page 1 not emptied: %v", got)
	}
	if got := layout.Page(3); !reflect.DeepEqual(got, []int32{100, 101}) {
		t.Fatalf("delta page = %v", got)
	}
	if got := layout.Page(0); !reflect.DeepEqual(got, []int32{0, 1}) {
		t.Fatalf("shared page mutated: %v", got)
	}
}
