package pager

import (
	"math/rand"
	"testing"
	"testing/quick"
	"time"
)

func buildStore(t *testing.T, capacity, elems int) *Store {
	t.Helper()
	b, err := NewBuilder(capacity)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < elems; i++ {
		b.Add(int32(i))
	}
	return b.Build()
}

func TestBuilderValidation(t *testing.T) {
	if _, err := NewBuilder(0); err == nil {
		t.Error("capacity 0 accepted")
	}
	if _, err := NewBuilder(-3); err == nil {
		t.Error("negative capacity accepted")
	}
}

func TestBuilderPacksPages(t *testing.T) {
	s := buildStore(t, 4, 10)
	if s.NumPages() != 3 {
		t.Fatalf("pages = %d, want 3", s.NumPages())
	}
	if s.Capacity() != 4 {
		t.Errorf("capacity = %d", s.Capacity())
	}
	want := [][]int32{{0, 1, 2, 3}, {4, 5, 6, 7}, {8, 9}}
	for i, w := range want {
		got := s.Page(PageID(i))
		if len(got) != len(w) {
			t.Fatalf("page %d has %d elements", i, len(got))
		}
		for j := range w {
			if got[j] != w[j] {
				t.Fatalf("page %d element %d = %d", i, j, got[j])
			}
		}
	}
}

func TestBuilderAddReturnsPageID(t *testing.T) {
	b, _ := NewBuilder(2)
	ids := []PageID{b.Add(0), b.Add(1), b.Add(2), b.Add(3), b.Add(4)}
	want := []PageID{0, 0, 1, 1, 2}
	for i := range want {
		if ids[i] != want[i] {
			t.Errorf("Add %d landed on page %d, want %d", i, ids[i], want[i])
		}
	}
}

func TestBuilderFlushPage(t *testing.T) {
	b, _ := NewBuilder(4)
	b.Add(1)
	b.FlushPage()
	b.FlushPage() // idempotent on empty page
	b.Add(2)
	s := b.Build()
	if s.NumPages() != 2 {
		t.Fatalf("pages = %d, want 2", s.NumPages())
	}
	if len(s.Page(0)) != 1 || len(s.Page(1)) != 1 {
		t.Error("flush did not split pages")
	}
}

func TestEmptyStore(t *testing.T) {
	b, _ := NewBuilder(4)
	s := b.Build()
	if s.NumPages() != 0 {
		t.Errorf("empty store has %d pages", s.NumPages())
	}
}

func TestPoolValidation(t *testing.T) {
	s := buildStore(t, 2, 4)
	if _, err := NewBufferPool(s, 0); err == nil {
		t.Error("capacity 0 accepted")
	}
}

func TestPoolDemandReadsAndHits(t *testing.T) {
	s := buildStore(t, 2, 8) // 4 pages
	p, err := NewBufferPool(s, 4)
	if err != nil {
		t.Fatal(err)
	}
	if got := p.Get(0); len(got) != 2 || got[0] != 0 {
		t.Fatalf("Get(0) = %v", got)
	}
	p.Get(1)
	p.Get(0) // hit
	st := p.Stats()
	if st.DemandReads != 2 || st.Hits != 1 || st.PrefetchReads != 0 {
		t.Errorf("stats = %+v", st)
	}
	if p.Len() != 2 {
		t.Errorf("len = %d", p.Len())
	}
}

func TestPoolLRUEviction(t *testing.T) {
	s := buildStore(t, 1, 4) // 4 pages of 1
	p, _ := NewBufferPool(s, 2)
	p.Get(0)
	p.Get(1)
	p.Get(0) // 0 is now MRU
	p.Get(2) // evicts 1 (LRU)
	if !p.Contains(0) || p.Contains(1) || !p.Contains(2) {
		t.Errorf("LRU state wrong: 0=%v 1=%v 2=%v", p.Contains(0), p.Contains(1), p.Contains(2))
	}
	if p.Stats().Evictions != 1 {
		t.Errorf("evictions = %d", p.Stats().Evictions)
	}
}

func TestPrefetchAccounting(t *testing.T) {
	s := buildStore(t, 1, 6)
	p, _ := NewBufferPool(s, 6)
	p.Prefetch(3)
	p.Prefetch(3) // no-op: already cached
	st := p.Stats()
	if st.PrefetchReads != 1 || st.DemandReads != 0 {
		t.Fatalf("stats after prefetch = %+v", st)
	}
	p.Get(3) // prefetch hit
	st = p.Stats()
	if st.Hits != 1 || st.PrefetchHits != 1 {
		t.Fatalf("stats after demand = %+v", st)
	}
	p.Get(3) // ordinary hit now: prefetched flag consumed
	st = p.Stats()
	if st.Hits != 2 || st.PrefetchHits != 1 {
		t.Fatalf("stats after second demand = %+v", st)
	}
}

func TestPrefetchDoesNotPromote(t *testing.T) {
	s := buildStore(t, 1, 4)
	p, _ := NewBufferPool(s, 2)
	p.Get(0)
	p.Get(1)      // LRU order: 1 (MRU), 0
	p.Prefetch(0) // cached: must not promote 0
	p.Get(2)      // evicts 0, not 1
	if p.Contains(0) {
		t.Error("prefetch promoted a cached page")
	}
	if !p.Contains(1) {
		t.Error("wrong page evicted")
	}
}

func TestFlushPreservesStats(t *testing.T) {
	s := buildStore(t, 1, 4)
	p, _ := NewBufferPool(s, 4)
	p.Get(0)
	p.Get(1)
	p.Flush()
	if p.Len() != 0 {
		t.Errorf("len after flush = %d", p.Len())
	}
	if p.Stats().DemandReads != 2 {
		t.Error("flush cleared stats")
	}
	p.Get(0) // miss again after flush
	if p.Stats().DemandReads != 3 {
		t.Error("post-flush read not counted as miss")
	}
	p.ResetStats()
	if p.Stats() != (Stats{}) {
		t.Error("ResetStats did not zero counters")
	}
}

func TestStatsSubAndCost(t *testing.T) {
	a := Stats{DemandReads: 10, PrefetchReads: 4, Hits: 20, PrefetchHits: 3, Evictions: 1}
	b := Stats{DemandReads: 4, PrefetchReads: 1, Hits: 5, PrefetchHits: 1, Evictions: 0}
	d := a.Sub(b)
	if d.DemandReads != 6 || d.PrefetchReads != 3 || d.Hits != 15 || d.PrefetchHits != 2 || d.Evictions != 1 {
		t.Errorf("Sub = %+v", d)
	}
	if a.PhysicalReads() != 14 {
		t.Errorf("PhysicalReads = %d", a.PhysicalReads())
	}
	m := DefaultCostModel()
	if got := m.DemandLatency(d); got != 6*5*time.Millisecond {
		t.Errorf("DemandLatency = %v", got)
	}
}

// Property: under any access sequence the pool never exceeds capacity, and a
// Get immediately after a Get of the same page is always a hit.
func TestPoolInvariantsRandomized(t *testing.T) {
	s := buildStore(t, 2, 100) // 50 pages
	p, _ := NewBufferPool(s, 7)
	rng := rand.New(rand.NewSource(21))
	for i := 0; i < 5000; i++ {
		id := PageID(rng.Intn(50))
		if rng.Intn(3) == 0 {
			p.Prefetch(id)
		} else {
			p.Get(id)
			before := p.Stats().Hits
			p.Get(id)
			if p.Stats().Hits != before+1 {
				t.Fatal("immediate re-Get was not a hit")
			}
		}
		if p.Len() > p.Capacity() {
			t.Fatalf("pool over capacity: %d > %d", p.Len(), p.Capacity())
		}
	}
	st := p.Stats()
	if st.PhysicalReads()+st.Hits == 0 {
		t.Fatal("no activity recorded")
	}
	// Conservation: pages in pool = reads - evictions.
	if int64(p.Len()) != st.PhysicalReads()-st.Evictions {
		t.Fatalf("conservation violated: len=%d reads=%d evictions=%d",
			p.Len(), st.PhysicalReads(), st.Evictions)
	}
}

// Property (testing/quick): Stats.Sub is the inverse of component-wise
// addition and PhysicalReads splits into its two components.
func TestQuickStatsAlgebra(t *testing.T) {
	f := func(d1, p1, h1, ph1, e1, d2, p2, h2, ph2, e2 int32) bool {
		a := Stats{int64(d1), int64(p1), int64(h1), int64(ph1), int64(e1)}
		b := Stats{int64(d2), int64(p2), int64(h2), int64(ph2), int64(e2)}
		sum := Stats{
			a.DemandReads + b.DemandReads,
			a.PrefetchReads + b.PrefetchReads,
			a.Hits + b.Hits,
			a.PrefetchHits + b.PrefetchHits,
			a.Evictions + b.Evictions,
		}
		return sum.Sub(b) == a && sum.Sub(a) == b &&
			a.PhysicalReads() == a.DemandReads+a.PrefetchReads
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}
